// Public configuration for the Bandana store.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "cache/cache_sim.h"
#include "common/types.h"
#include "nvm/nvm_config.h"

namespace bandana {

struct StoreConfig {
  /// NVM transfer unit; every miss costs one such read.
  std::size_t block_bytes = kDefaultBlockBytes;

  /// Bytes per embedding vector; must divide block_bytes. 128 B = the
  /// paper's 64 x fp16 vectors, giving 32 vectors per block.
  std::size_t vector_bytes = kDefaultVectorBytes;

  /// Timing model of the backing device.
  NvmDeviceConfig device;

  /// When true the store tracks simulated IO latency through the device
  /// model; when false it only counts block reads (fast replay mode).
  bool simulate_timing = true;

  /// Independently-locked DRAM cache shards per table, so concurrent
  /// requests to the *same* table proceed in parallel. 0 = one shard per
  /// hardware thread. 1 reproduces the seed single-LRU behavior exactly
  /// (hit/miss/eviction order), which the fidelity tests rely on. Each
  /// table clamps the count to its block and cache-entry counts; vectors
  /// are striped by block so prefetch admission stays shard-local.
  std::uint32_t cache_shards = 0;

  std::uint32_t vectors_per_block() const {
    return static_cast<std::uint32_t>(block_bytes / vector_bytes);
  }

  std::uint32_t resolved_cache_shards() const {
    return cache_shards != 0
               ? cache_shards
               : std::max(1u, std::thread::hardware_concurrency());
  }
};

/// Per-table runtime policy (produced by the Trainer or set manually).
struct TablePolicy {
  std::uint64_t cache_vectors = 0;  ///< DRAM budget for this table.
  PrefetchPolicy policy = PrefetchPolicy::kThreshold;
  std::uint32_t access_threshold = 10;
  double insertion_position = 0.5;
  double shadow_multiplier = 1.5;
};

}  // namespace bandana
