// Offline training pipeline (the paper's full §4 flow):
//
//   1. Partition each table's training trace -> block layout + per-vector
//      access counts. The backend is pluggable (PartitionerConfig): SHP
//      (default, §4.2.2), recursive K-means over embedding values (§4.2.1),
//      or greedy hypergraph min-cut.
//   2. Estimate each table's hit-rate curve with sampled stack distances.
//   3. Split the DRAM budget across tables by greedy marginal utility
//      (§4.3.3, Dynacache-style).
//   4. Tune each table's prefetch admission threshold with miniature-cache
//      simulations at its allocated capacity.
//
// The output StorePlan is everything Store::add_table needs. train()
// consumes materialized traces; train_stream() consumes TraceSources in
// bounded chunks (reservoir sampling), so peak training memory is set by
// PartitionerConfig::max_train_queries, not the trace length.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/mini_cache.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "partition/partitioner.h"
#include "trace/embedding_table.h"
#include "trace/trace.h"
#include "trace/trace_stream.h"

namespace bandana {

struct TrainerConfig {
  /// Total DRAM budget across all tables, in vectors.
  std::uint64_t total_cache_vectors = 400'000;
  /// Partitioner backend + knobs; vectors_per_block is overridden from the
  /// StoreConfig. Per-table seeds are derived as splitmix64(seed + i), so
  /// the SHP default is byte-identical to the pre-seam pipeline.
  PartitionerConfig partitioner;
  /// Miniature-cache tuning knobs (sampling rate, candidate thresholds).
  MiniCacheTunerConfig tuner;
  /// Sampling rate for hit-rate-curve estimation (step 2).
  double hrc_sampling_rate = 0.01;
  /// Allocation granularity for the DRAM split.
  std::uint64_t alloc_chunk = 1024;
  /// false = uniform split (ablation).
  bool use_dram_allocator = true;
};

/// Per-run training telemetry (all-tables totals). Feeds the retrain
/// latency budget in OnlineRetrainer and the runtime-vs-quality benches.
struct TrainerStats {
  double partition_us = 0.0;  ///< Phase 1 wall time (all tables).
  double curve_us = 0.0;      ///< Phases 2-3: hit-rate curves + DRAM split.
  double tune_us = 0.0;       ///< Phase 4: threshold tuning.
  /// Max over tables of the partitioner's estimated peak resident bytes
  /// (trace/reservoir included).
  std::uint64_t peak_training_bytes = 0;
  std::size_t stream_queries = 0;   ///< Streaming mode: queries seen.
  std::size_t sampled_queries = 0;  ///< Streaming mode: queries trained on.
};

struct TablePlan {
  BlockLayout layout;
  std::vector<std::uint32_t> access_counts;
  TablePolicy policy;
  double shp_train_fanout = 0.0;  ///< Backend's final train-set fanout.
};

struct StorePlan {
  std::vector<TablePlan> tables;
};

class Trainer {
 public:
  Trainer(const StoreConfig& store_cfg, TrainerConfig cfg)
      : store_cfg_(store_cfg), cfg_(std::move(cfg)) {}

  /// `train_traces[i]` and `table_sizes[i]` describe table i. `values[i]`
  /// (optional, may be empty) supplies embedding values for value-based
  /// backends; the K-means backend throws without them. When
  /// PartitionerConfig::max_train_queries is nonzero the partitioning
  /// phase trains on a reservoir sample of that many queries.
  StorePlan train(std::span<const Trace> train_traces,
                  std::span<const std::uint32_t> table_sizes,
                  ThreadPool* pool = nullptr,
                  std::span<const EmbeddingTable* const> values = {},
                  TrainerStats* stats = nullptr) const;

  /// Bounded-memory variant: pulls each table's trace from a TraceSource
  /// in chunks, trains on a reservoir sample (max_train_queries must be
  /// nonzero), and tunes thresholds on the sample.
  StorePlan train_stream(std::span<TraceSource* const> sources,
                         std::span<const std::uint32_t> table_sizes,
                         ThreadPool* pool = nullptr,
                         std::span<const EmbeddingTable* const> values = {},
                         TrainerStats* stats = nullptr) const;

 private:
  StorePlan assemble(std::span<const Trace> tuning_traces,
                     std::span<const std::uint32_t> table_sizes,
                     std::vector<PartitionResult>& parts,
                     TrainerStats* stats) const;
  PartitionerConfig table_config(std::size_t table) const;

  StoreConfig store_cfg_;
  TrainerConfig cfg_;
};

}  // namespace bandana
