// Offline training pipeline (the paper's full §4 flow):
//
//   1. Run SHP on each table's training trace -> block layout + per-vector
//      access counts.
//   2. Estimate each table's hit-rate curve with sampled stack distances.
//   3. Split the DRAM budget across tables by greedy marginal utility
//      (§4.3.3, Dynacache-style).
//   4. Tune each table's prefetch admission threshold with miniature-cache
//      simulations at its allocated capacity.
//
// The output StorePlan is everything Store::add_table needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/mini_cache.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "partition/shp.h"
#include "trace/trace.h"

namespace bandana {

struct TrainerConfig {
  /// Total DRAM budget across all tables, in vectors.
  std::uint64_t total_cache_vectors = 400'000;
  /// SHP knobs; vectors_per_block is overridden from the StoreConfig.
  ShpConfig shp;
  /// Miniature-cache tuning knobs (sampling rate, candidate thresholds).
  MiniCacheTunerConfig tuner;
  /// Sampling rate for hit-rate-curve estimation (step 2).
  double hrc_sampling_rate = 0.01;
  /// Allocation granularity for the DRAM split.
  std::uint64_t alloc_chunk = 1024;
  /// false = uniform split (ablation).
  bool use_dram_allocator = true;
};

struct TablePlan {
  BlockLayout layout;
  std::vector<std::uint32_t> access_counts;
  TablePolicy policy;
  double shp_train_fanout = 0.0;  ///< SHP's final train-set fanout.
};

struct StorePlan {
  std::vector<TablePlan> tables;
};

class Trainer {
 public:
  Trainer(const StoreConfig& store_cfg, TrainerConfig cfg)
      : store_cfg_(store_cfg), cfg_(std::move(cfg)) {
    cfg_.shp.vectors_per_block = store_cfg.vectors_per_block();
  }

  /// `train_traces[i]` and `table_sizes[i]` describe table i.
  StorePlan train(std::span<const Trace> train_traces,
                  std::span<const std::uint32_t> table_sizes,
                  ThreadPool* pool = nullptr) const;

 private:
  StoreConfig store_cfg_;
  TrainerConfig cfg_;
};

}  // namespace bandana
