#include "core/trainer.h"

#include <cassert>

#include "cache/dram_allocator.h"

namespace bandana {

StorePlan Trainer::train(std::span<const Trace> train_traces,
                         std::span<const std::uint32_t> table_sizes,
                         ThreadPool* pool) const {
  assert(train_traces.size() == table_sizes.size());
  const std::size_t n = train_traces.size();

  // 1. SHP per table.
  std::vector<ShpResult> shp(n);
  for (std::size_t i = 0; i < n; ++i) {
    ShpConfig sc = cfg_.shp;
    sc.seed = splitmix64(cfg_.shp.seed + i);
    shp[i] = run_shp(train_traces[i], table_sizes[i], sc, pool);
  }

  // 2. Hit-rate curves from sampled stack distances.
  std::vector<HitRateCurve> curves;
  curves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    curves.push_back(approximate_hit_rate_curve(
        train_traces[i], table_sizes[i], cfg_.hrc_sampling_rate));
  }

  // 3. DRAM split.
  const DramAllocation alloc =
      cfg_.use_dram_allocator
          ? allocate_dram(curves, cfg_.total_cache_vectors, cfg_.alloc_chunk)
          : allocate_uniform(curves, cfg_.total_cache_vectors);

  // 4. Threshold tuning per table at its allocated capacity.
  StorePlan plan;
  plan.tables.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BlockLayout layout = BlockLayout::from_order(
        shp[i].order, store_cfg_.vectors_per_block());
    // A table squeezed to zero DRAM still gets a minimal cache so the
    // store can operate; the allocator said it will not benefit anyway.
    const std::uint64_t capacity =
        std::max<std::uint64_t>(alloc.per_table[i], 1024);
    const ThresholdChoice choice =
        tune_threshold(train_traces[i], layout, shp[i].access_counts, capacity,
                       cfg_.tuner);
    TablePolicy policy;
    policy.cache_vectors = capacity;
    policy.policy = PrefetchPolicy::kThreshold;
    policy.access_threshold = choice.threshold;
    plan.tables.push_back(TablePlan{std::move(layout),
                                    std::move(shp[i].access_counts), policy,
                                    shp[i].final_avg_fanout});
  }
  return plan;
}

}  // namespace bandana
