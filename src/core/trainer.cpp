#include "core/trainer.h"

#include <cassert>
#include <chrono>

#include "cache/dram_allocator.h"
#include "common/rng.h"

namespace bandana {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

PartitionerConfig Trainer::table_config(std::size_t table) const {
  // Per-table seeds, derived exactly as the pre-seam pipeline derived its
  // per-table SHP seed (splitmix64(seed + i)) — the replay-golden digests
  // pin this.
  PartitionerConfig pc = cfg_.partitioner;
  pc.shp.seed = splitmix64(cfg_.partitioner.shp.seed + table);
  pc.kmeans.seed = splitmix64(cfg_.partitioner.kmeans.seed + table);
  pc.hypergraph.seed = splitmix64(cfg_.partitioner.hypergraph.seed + table);
  pc.stream_seed = splitmix64(cfg_.partitioner.stream_seed + table);
  return pc;
}

StorePlan Trainer::assemble(std::span<const Trace> tuning_traces,
                            std::span<const std::uint32_t> table_sizes,
                            std::vector<PartitionResult>& parts,
                            TrainerStats* stats) const {
  const std::size_t n = tuning_traces.size();

  // 2. Hit-rate curves from sampled stack distances.
  auto t_curve = std::chrono::steady_clock::now();
  std::vector<HitRateCurve> curves;
  curves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    curves.push_back(approximate_hit_rate_curve(
        tuning_traces[i], table_sizes[i], cfg_.hrc_sampling_rate));
  }

  // 3. DRAM split.
  const DramAllocation alloc =
      cfg_.use_dram_allocator
          ? allocate_dram(curves, cfg_.total_cache_vectors, cfg_.alloc_chunk)
          : allocate_uniform(curves, cfg_.total_cache_vectors);
  if (stats) stats->curve_us += elapsed_us(t_curve);

  // 4. Threshold tuning per table at its allocated capacity.
  auto t_tune = std::chrono::steady_clock::now();
  StorePlan plan;
  plan.tables.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    BlockLayout layout = BlockLayout::from_order(
        parts[i].order, store_cfg_.vectors_per_block());
    // A table squeezed to zero DRAM still gets a minimal cache so the
    // store can operate; the allocator said it will not benefit anyway.
    const std::uint64_t capacity =
        std::max<std::uint64_t>(alloc.per_table[i], 1024);
    const ThresholdChoice choice =
        tune_threshold(tuning_traces[i], layout, parts[i].access_counts,
                       capacity, cfg_.tuner);
    TablePolicy policy;
    policy.cache_vectors = capacity;
    policy.policy = PrefetchPolicy::kThreshold;
    policy.access_threshold = choice.threshold;
    plan.tables.push_back(TablePlan{std::move(layout),
                                    std::move(parts[i].access_counts), policy,
                                    parts[i].final_avg_fanout});
  }
  if (stats) stats->tune_us += elapsed_us(t_tune);
  return plan;
}

StorePlan Trainer::train(std::span<const Trace> train_traces,
                         std::span<const std::uint32_t> table_sizes,
                         ThreadPool* pool,
                         std::span<const EmbeddingTable* const> values,
                         TrainerStats* stats) const {
  assert(train_traces.size() == table_sizes.size());
  const std::size_t n = train_traces.size();

  // 1. Partition per table (reservoir-sampled when max_train_queries > 0).
  auto t_part = std::chrono::steady_clock::now();
  std::vector<PartitionResult> parts(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PartitionerConfig pc = table_config(i);
    const auto part = make_partitioner(pc, store_cfg_.vectors_per_block());
    const EmbeddingTable* vals = i < values.size() ? values[i] : nullptr;
    if (pc.max_train_queries > 0) {
      TraceRefSource source(train_traces[i]);
      parts[i] =
          part->partition_stream(source, table_sizes[i], pc, vals, pool);
    } else {
      parts[i] = part->partition(train_traces[i], table_sizes[i], vals, pool);
    }
    if (stats) {
      stats->peak_training_bytes =
          std::max(stats->peak_training_bytes, parts[i].peak_training_bytes);
      stats->stream_queries += parts[i].stream_queries;
      stats->sampled_queries += parts[i].sampled_queries;
    }
  }
  if (stats) stats->partition_us += elapsed_us(t_part);

  return assemble(train_traces, table_sizes, parts, stats);
}

StorePlan Trainer::train_stream(std::span<TraceSource* const> sources,
                                std::span<const std::uint32_t> table_sizes,
                                ThreadPool* pool,
                                std::span<const EmbeddingTable* const> values,
                                TrainerStats* stats) const {
  assert(sources.size() == table_sizes.size());
  const std::size_t n = sources.size();

  auto t_part = std::chrono::steady_clock::now();
  std::vector<PartitionResult> parts(n);
  std::vector<Trace> samples(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PartitionerConfig pc = table_config(i);
    const auto part = make_partitioner(pc, store_cfg_.vectors_per_block());
    const EmbeddingTable* vals = i < values.size() ? values[i] : nullptr;
    parts[i] = part->partition_stream(*sources[i], table_sizes[i], pc, vals,
                                      pool, &samples[i]);
    if (stats) {
      stats->peak_training_bytes =
          std::max(stats->peak_training_bytes, parts[i].peak_training_bytes);
      stats->stream_queries += parts[i].stream_queries;
      stats->sampled_queries += parts[i].sampled_queries;
    }
  }
  if (stats) stats->partition_us += elapsed_us(t_part);

  // Hit-rate curves and threshold tuning run on the samples — the only
  // materialized traces this path ever holds.
  return assemble(samples, table_sizes, parts, stats);
}

}  // namespace bandana
