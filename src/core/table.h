// One embedding table inside a Bandana store: NVM-resident blocks plus a
// DRAM vector cache with prefetch admission.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cache/lru_cache.h"
#include "core/config.h"
#include "core/metrics.h"
#include "nvm/block_storage.h"
#include "partition/layout.h"
#include "trace/embedding_table.h"

namespace bandana {

/// Internal to Store. Owns the cache state of one table; block data lives in
/// the store-wide BlockStorage starting at `first_block`.
class BandanaTable {
 public:
  BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
               BlockLayout layout, std::vector<std::uint32_t> access_counts,
               BlockId first_block);

  /// Write all vectors of `values` into NVM blocks per the layout.
  void publish(const EmbeddingTable& values, BlockStorage& storage);

  /// Re-publish updated values (retraining, §2.2): rewrites every block and
  /// keeps the cache contents (ids stay valid; bytes are refreshed lazily by
  /// invalidating cached entries).
  void republish(const EmbeddingTable& values, BlockStorage& storage);

  struct LookupOutcome {
    bool hit = false;
    BlockId block_read = 0;   ///< Valid when nvm_read is true.
    bool nvm_read = false;    ///< True if a block read was issued.
  };

  /// Serve one vector: on miss, reads the block from `storage` (the caller
  /// accounts device timing), admits prefetches per policy, and caches the
  /// vector. `same_query_blocks` dedups block reads within a batched query
  /// (pass nullptr to disable batching).
  LookupOutcome lookup(VectorId v, BlockStorage& storage,
                       std::span<std::byte> out,
                       std::vector<std::uint32_t>* block_epoch,
                       std::uint32_t epoch);

  std::uint32_t num_vectors() const { return layout_.num_vectors(); }
  std::uint32_t num_blocks() const { return layout_.num_blocks(); }
  BlockId first_block() const { return first_block_; }
  const BlockLayout& layout() const { return layout_; }
  const TablePolicy& policy() const { return policy_; }
  const TableMetrics& metrics() const { return metrics_; }
  std::size_t vector_bytes() const { return vector_bytes_; }

 private:
  std::span<std::byte> slot_bytes(std::uint32_t slot);
  void cache_vector(VectorId v, std::span<const std::byte> bytes,
                    std::size_t point, bool is_prefetch);
  void admit_prefetches(BlockId local_block, std::span<const std::byte> block);

  TablePolicy policy_;
  BlockLayout layout_;
  std::vector<std::uint32_t> access_counts_;
  BlockId first_block_;
  std::size_t vector_bytes_;
  std::size_t block_bytes_;
  std::uint32_t vectors_per_block_;

  InsertionLru cache_;
  std::size_t low_point_ = 0;  ///< Insertion point index for cold prefetches.
  std::unique_ptr<InsertionLru> shadow_;
  std::vector<std::uint32_t> slot_of_;  ///< vector -> DRAM slot
  std::vector<std::byte> slab_;         ///< cache_vectors * vector_bytes
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint8_t> prefetched_;
  std::vector<std::byte> block_buf_;    ///< scratch for block reads

  TableMetrics metrics_;
};

}  // namespace bandana
