// One embedding table inside a Bandana store: NVM-resident blocks plus a
// sharded DRAM vector cache with prefetch admission.
//
// Concurrency model: the vector universe is striped across N cache shards
// by *block* (shard_of(v) = block_of(v) % N), so a miss, its block read,
// and the prefetch admission of the block's other members all stay inside
// one shard — lookup() takes exactly one shard lock and concurrent
// requests to the same table proceed in parallel on different shards.
// Metrics are relaxed atomics (lock-free snapshot); block-read dedup
// epochs are per-block and therefore shard-local too.
//
// publish/republish mutate NVM storage and require external exclusion
// against lookups (Store holds its storage mutex uniquely around them).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cache/sharded_lru.h"
#include "core/config.h"
#include "core/metrics.h"
#include "nvm/block_storage.h"
#include "partition/layout.h"
#include "trace/embedding_table.h"

namespace bandana {

/// Internal to Store. Owns the cache state of one table; block data lives in
/// the store-wide BlockStorage starting at `first_block`.
class BandanaTable {
 public:
  BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
               BlockLayout layout, std::vector<std::uint32_t> access_counts,
               BlockId first_block);

  /// Write all vectors of `values` into NVM blocks per the layout.
  /// Requires external exclusion against lookups.
  void publish(const EmbeddingTable& values, BlockStorage& storage);

  /// Re-publish updated values (retraining, §2.2): rewrites every block and
  /// keeps the cache contents (ids stay valid; bytes are refreshed lazily by
  /// invalidating cached entries). Requires external exclusion.
  void republish(const EmbeddingTable& values, BlockStorage& storage);

  struct LookupOutcome {
    bool hit = false;
    BlockId block_read = 0;   ///< Valid when nvm_read is true.
    bool nvm_read = false;    ///< True if a block read was issued.
    bool deferred = false;    ///< True if the lookup was not served because
                              ///< its block was not staged (staged_only
                              ///< mode); nothing was counted or mutated —
                              ///< re-run it with the block staged.
  };

  /// Open a block-read dedup scope (one batched query, or one table's id
  /// lists within a multi-get request): lookups sharing the returned epoch
  /// count each block read once. Epochs are monotonic, and a block is
  /// "already read" when its mark is >= the scope's epoch — so when two
  /// concurrent scopes touch the same block, the later fetch coalesces
  /// with the earlier one instead of being double-counted.
  std::uint64_t begin_batch() {
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Serve one vector. Thread-safe: locks the vector's cache shard for the
  /// duration. On miss, consumes the block's bytes from `staged` when the
  /// request pre-fetched them (Store's batched read pipeline), otherwise
  /// reads the block from `storage` inline; either way the caller accounts
  /// device timing. Admits prefetches per policy and caches the vector.
  ///
  /// With `staged_only` (Store's airtight batched pipeline) an unstaged
  /// miss never falls back to an inline read: the lookup returns
  /// `deferred = true` BEFORE touching any state (metrics, LRU, shadow),
  /// so the caller can fetch the block through a batched retry wave and
  /// re-run the lookup as if this call never happened. The deferral check
  /// and the subsequent cache access run under one shard lock, so a block
  /// evicted between the request's staging peek and this lookup is always
  /// caught.
  LookupOutcome lookup(VectorId v, BlockStorage& storage,
                       std::span<std::byte> out, std::uint64_t epoch,
                       const StagedBlockReads* staged = nullptr,
                       bool staged_only = false);

  /// True if v is currently cached. Takes the shard lock but never mutates
  /// LRU state — the staging pass peeks ahead of the real lookups to
  /// collect the blocks a request will miss on.
  bool is_cached(VectorId v) const;

  /// Store-wide block id that serves vector v.
  BlockId global_block_of(VectorId v) const {
    return first_block_ + layout_.block_of(v);
  }

  std::uint32_t num_vectors() const { return layout_.num_vectors(); }
  std::uint32_t num_blocks() const { return layout_.num_blocks(); }
  BlockId first_block() const { return first_block_; }
  const BlockLayout& layout() const { return layout_; }
  const TablePolicy& policy() const { return policy_; }
  std::size_t vector_bytes() const { return vector_bytes_; }

  std::uint32_t num_shards() const { return cache_.num_shards(); }

  /// Lock-free snapshot of the per-shard counters, aggregated on read.
  TableMetrics metrics() const { return metrics_.snapshot(); }

  /// Cache occupancy/traffic of one shard (taken under that shard's lock).
  CacheShardStats shard_stats(std::uint32_t s) const;
  /// Aggregate over all shards.
  CacheShardStats cache_stats() const;

  /// Cached ids, shard by shard, each MRU->LRU (test/diagnostic; takes the
  /// shard locks). With one shard this is the exact LRU eviction order.
  std::vector<VectorId> cache_contents() const;

 private:
  /// Per-shard mutable state; slab slots [slot_base, slot_base + capacity)
  /// belong to this shard, so eviction and reuse never cross shards.
  struct Shard {
    std::mutex mu;
    std::vector<std::uint32_t> free_slots;
    std::vector<std::byte> block_buf;  ///< scratch for block reads
  };

  std::span<std::byte> slot_bytes(std::uint32_t slot);
  void cache_vector(Shard& shard, VectorId v, std::span<const std::byte> bytes,
                    std::size_t point, bool is_prefetch);
  void admit_prefetches(Shard& shard, BlockId local_block,
                        std::span<const std::byte> block);

  TablePolicy policy_;
  BlockLayout layout_;
  std::vector<std::uint32_t> access_counts_;
  BlockId first_block_;
  std::size_t vector_bytes_;
  std::size_t block_bytes_;
  std::uint32_t vectors_per_block_;

  ShardedInsertionLru cache_;
  std::size_t low_point_ = 0;  ///< Insertion point index for cold prefetches.
  std::unique_ptr<ShardedInsertionLru> shadow_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::uint32_t> slot_of_;  ///< vector -> DRAM slot
  std::vector<std::byte> slab_;         ///< cache capacity * vector_bytes
  std::vector<std::uint8_t> prefetched_;
  std::vector<std::uint64_t> block_epochs_;  ///< per-block dedup marks
  std::atomic<std::uint64_t> epoch_{0};

  AtomicTableMetrics metrics_;
};

}  // namespace bandana
