// One embedding table inside a Bandana store: NVM-resident blocks plus a
// sharded DRAM vector cache with prefetch admission.
//
// Concurrency model: the vector universe is striped across N cache shards
// by *block* (shard_of(v) = block_of(v) % N), so a miss, its block read,
// and the prefetch admission of the block's other members all stay inside
// one shard — lookup() takes exactly one shard lock and concurrent
// requests to the same table proceed in parallel on different shards.
// Metrics are relaxed atomics (lock-free snapshot); block-read dedup
// epochs are per-block and therefore shard-local too.
//
// Online retraining (§2.2) swaps the whole layout-dependent state — the
// block layout, the local-block -> global-block map, the cache/shadow
// structures and the shard striping derived from the layout — as one unit:
// everything layout-dependent lives in an immutable-once-published State
// behind an atomic pointer. A lookup loads the pointer, locks the shard
// the state assigns its vector to, and re-validates the pointer under the
// lock; swap_state() installs a fresh State while holding every shard
// lock, so a lookup either completes entirely against the old state (whose
// storage blocks stay valid — a trickle republish writes replacement
// blocks elsewhere) or retries and completes entirely against the new one.
// No lookup ever observes a half-swapped mapping.
//
// publish/republish mutate NVM storage in place and require external
// exclusion against lookups (Store holds its storage mutex uniquely around
// them). swap_state only requires exclusion against other swaps/publishes
// (Store's shared storage lock + one trickle session per table).
//
// Retired states are reclaimed with a two-bank epoch scheme instead of
// being kept for the table's lifetime: every state-dereferencing reader
// enters a striped reader bank (selected by the current generation parity)
// before loading the state pointer and exits it when done. A reclaim pass
// (run by every swap_state, and on demand via reclaim_retired) flips the
// generation so new readers land on the other bank, then observes each
// bank's per-slot entered/exited counters: a bank whose slots all read
// exited == entered (exited loaded first — both counters are monotone, so
// equality proves the slot was empty at the first load and stayed
// untouched until the second) holds no reader that predates the pass. A
// retired state is freed once BOTH banks have been observed drained after
// its retirement, so a straggler that loaded the old pointer just before
// the swap always keeps it alive until it exits. Under a continuous read
// stream each pass drains the bank the previous pass flipped away from,
// so the retired list stays bounded by a couple of retrain cycles rather
// than growing with every push.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cache/sharded_lru.h"
#include "core/config.h"
#include "core/metrics.h"
#include "nvm/block_storage.h"
#include "partition/layout.h"
#include "trace/embedding_table.h"

namespace bandana {

/// Compose local block `b`'s bytes under `layout` from `values`
/// (zero-padded tail for a partial last block). The single definition of
/// block composition: publish, in-place republish and the trickle plan
/// diff must all agree byte-for-byte or the diff would mis-classify
/// blocks.
void compose_block_bytes(const BlockLayout& layout,
                         const EmbeddingTable& values, BlockId b,
                         std::size_t vector_bytes, std::span<std::byte> block);

/// Internal to Store. Owns the cache state of one table; block data lives in
/// the store-wide BlockStorage at the blocks named by the table's current
/// block map (initially the contiguous range starting at `first_block`).
class BandanaTable {
 public:
  BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
               BlockLayout layout, std::vector<std::uint32_t> access_counts,
               BlockId first_block);

  /// Restore construction (Store::open): identical to the primary ctor but
  /// with an explicit local-block -> storage-block map recovered from the
  /// manifest instead of the fresh contiguous range. No blocks are written
  /// — the map points at data already in storage.
  BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
               BlockLayout layout, std::vector<std::uint32_t> access_counts,
               BlockId first_block, std::vector<BlockId> block_map);

  /// Write all vectors of `values` into NVM blocks per the current layout
  /// and block map. Block images are composed wave-by-wave (at most
  /// `wave_blocks` per wave, 0 = 4096-block chunks) into one buffer — a
  /// leased registered wave buffer when the backend offers one — and each
  /// wave goes out as a single batched write_blocks() call. Returns the
  /// number of batches issued (for StoreMetrics::write_batches). Requires
  /// external exclusion against lookups.
  std::uint64_t publish(const EmbeddingTable& values, BlockStorage& storage,
                        std::uint64_t wave_blocks = 0);

  /// What an in-place republish actually rewrote after the plan diff.
  struct RepublishDiff {
    std::uint64_t written_blocks = 0;  ///< Blocks whose bytes changed.
    std::uint64_t skipped_blocks = 0;  ///< Blocks proven byte-identical.
    std::uint64_t written_vectors = 0; ///< Members of the written blocks.
    std::uint64_t write_batches = 0;   ///< Batched write_blocks waves issued.
  };

  /// Re-publish updated values in place (retraining with an unchanged
  /// layout, §4.2.2): diffs each block's new bytes against storage, writes
  /// only the blocks that changed — accumulated into waves of at most
  /// `wave_blocks` blocks (0 = 4096) and flushed as batched write_blocks()
  /// calls — and drops only those blocks' members from the cache
  /// (unchanged blocks keep serving their warm entries). Identical values
  /// are a complete no-op. Requires external exclusion.
  RepublishDiff republish(const EmbeddingTable& values, BlockStorage& storage,
                          std::uint64_t wave_blocks = 0);

  struct LookupOutcome {
    bool hit = false;
    BlockId block_read = 0;   ///< Valid when nvm_read is true.
    bool nvm_read = false;    ///< True if a block read was issued.
    bool deferred = false;    ///< True if the lookup was not served because
                              ///< its block was not staged (staged_only
                              ///< mode); nothing was counted or mutated —
                              ///< re-run it with the block staged.
  };

  /// Open a block-read dedup scope (one batched query, or one table's id
  /// lists within a multi-get request): lookups sharing the returned epoch
  /// count each block read once. Epochs are monotonic, and a block is
  /// "already read" when its mark is >= the scope's epoch — so when two
  /// concurrent scopes touch the same block, the later fetch coalesces
  /// with the earlier one instead of being double-counted.
  std::uint64_t begin_batch() {
    return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Serve one vector. Thread-safe: locks the vector's cache shard for the
  /// duration (re-validating the state pointer under the lock, so a
  /// concurrent swap_state makes it retry against the new mapping). On
  /// miss, consumes the block's bytes from `staged` when the request
  /// pre-fetched them (Store's batched read pipeline), otherwise reads the
  /// block from `storage` inline; either way the caller accounts device
  /// timing. Admits prefetches per policy and caches the vector.
  ///
  /// With `staged_only` (Store's airtight batched pipeline) an unstaged
  /// miss never falls back to an inline read: the lookup returns
  /// `deferred = true` BEFORE touching any state (metrics, LRU, shadow),
  /// so the caller can fetch the block through a batched retry wave and
  /// re-run the lookup as if this call never happened. The deferral check
  /// and the subsequent cache access run under one shard lock, so a block
  /// evicted between the request's staging peek and this lookup — or a
  /// mapping swapped under the request's feet — is always caught.
  LookupOutcome lookup(VectorId v, BlockStorage& storage,
                       std::span<std::byte> out, std::uint64_t epoch,
                       const StagedBlockReads* staged = nullptr,
                       bool staged_only = false);

  /// True if v is currently cached. Takes the shard lock but never mutates
  /// LRU state — the staging pass peeks ahead of the real lookups to
  /// collect the blocks a request will miss on.
  bool is_cached(VectorId v) const;

  /// Store-wide block id that serves vector v under the current mapping.
  /// Lock-free snapshot: a concurrent swap may retarget v immediately
  /// after — the staged_only lookup pipeline re-checks under the shard
  /// lock and defers on any disagreement.
  BlockId global_block_of(VectorId v) const {
    ReadGuard guard(*this);
    const State* st = state_.load(std::memory_order_seq_cst);
    return st->block_map[st->layout.block_of(v)];
  }

  /// A retrained table mapping, installable via swap_state: the new layout,
  /// the storage block backing each local block (unchanged blocks keep
  /// their old global block; changed blocks point at freshly written
  /// replacements), the refreshed per-vector access counts, and the
  /// (re-tuned) policy. The policy's cache_vectors must equal the current
  /// capacity — online retraining re-ranks and re-packs, it does not
  /// re-size DRAM (the slab is fixed at construction).
  struct RetrainedState {
    BlockLayout layout;
    std::vector<BlockId> block_map;
    std::vector<std::uint32_t> access_counts;
    TablePolicy policy;
  };

  /// Atomically install a retrained mapping. Builds the fresh
  /// layout-dependent state off to the side, then takes every shard lock,
  /// publishes the new state pointer and retires the old one (kept alive
  /// for stragglers that loaded the pointer before the swap — they retry
  /// under their shard lock and never mutate it). The cache starts cold:
  /// cached bytes predate the new values. Concurrent lookups are safe; the
  /// caller must exclude concurrent publish/republish/swap_state of this
  /// table (Store: one trickle session per table). Returns the old
  /// mapping's global blocks the new mapping no longer references, for
  /// reuse by the next republish (double buffering).
  std::vector<BlockId> swap_state(RetrainedState next);

  /// Snapshot of the current local-block -> global-block mapping.
  std::vector<BlockId> block_map() const;

  /// Copy of the table's entire current mapping (layout, block map, access
  /// counts, policy) as one consistent unit — what the manifest records per
  /// table. Safe against concurrent lookups; the caller must exclude
  /// concurrent swap_state (Store composes manifests under its manifest
  /// lock, which every shared-lock-path swap also takes).
  RetrainedState mapping_snapshot() const;

  /// Count vectors rewritten by an external republish path (the trickle
  /// session, which writes blocks itself and swaps at completion).
  void note_republished(std::uint64_t vectors) {
    metrics_.republish_writes.fetch_add(vectors, std::memory_order_relaxed);
  }

  std::uint32_t num_vectors() const { return num_vectors_; }
  std::uint32_t num_blocks() const { return num_blocks_; }
  BlockId first_block() const { return first_block_; }
  /// Current layout / policy. References into the current state: the
  /// caller must hold exclusion against swap_state of this table (Store's
  /// unique storage lock, or the table's trickle claim) — a swapped-out
  /// state is reclaimed once no reader epoch can still hold it, so an
  /// unexcluded reference may dangle. Unlocked callers that only need the
  /// policy use policy_snapshot().
  const BlockLayout& layout() const {
    return state_.load(std::memory_order_acquire)->layout;
  }
  const TablePolicy& policy() const {
    return state_.load(std::memory_order_acquire)->policy;
  }
  /// By-value policy read, safe against concurrent swap + reclamation.
  TablePolicy policy_snapshot() const {
    ReadGuard guard(*this);
    return state_.load(std::memory_order_seq_cst)->policy;
  }
  std::size_t vector_bytes() const { return vector_bytes_; }

  std::uint32_t num_shards() const { return num_shards_; }

  /// Lock-free snapshot of the per-shard counters, aggregated on read.
  TableMetrics metrics() const { return metrics_.snapshot(); }

  /// Cache occupancy/traffic of one shard (taken under that shard's lock).
  CacheShardStats shard_stats(std::uint32_t s) const;
  /// Aggregate over all shards.
  CacheShardStats cache_stats() const;

  /// Cached ids, shard by shard, each MRU->LRU (test/diagnostic; takes the
  /// shard locks). With one shard this is the exact LRU eviction order.
  std::vector<VectorId> cache_contents() const;

  /// Run one reclaim pass: flip the reader generation, observe both banks,
  /// and free every retired state whose retirement is covered by a drain
  /// observation of each bank. Returns states freed. swap_state runs a
  /// pass automatically; long-lived serving loops (or tests) call this to
  /// drain stragglers from earlier swaps.
  std::size_t reclaim_retired();

  /// Retired states still awaiting reclamation (diagnostic).
  std::size_t retired_count() const;

 private:
  /// Everything derived from one (layout, block map, policy) triple.
  /// Published at a whole-struct granularity: built, then installed with
  /// an atomic pointer store under all shard locks; never mutated except
  /// through a shard lock of the *current* state. Retired states stay
  /// allocated so a reader that loaded the pointer just before a swap can
  /// still dereference it (it will fail the under-lock re-validation and
  /// retry — it never writes through a retired state).
  struct State {
    BlockLayout layout;
    std::vector<BlockId> block_map;   ///< local block -> storage block
    std::vector<std::uint32_t> access_counts;
    TablePolicy policy;
    ShardedInsertionLru cache;
    std::unique_ptr<ShardedInsertionLru> shadow;
    std::size_t low_point = 0;  ///< Insertion point for cold prefetches.
    std::vector<std::uint32_t> slot_of;   ///< vector -> DRAM slot
    std::vector<std::uint8_t> prefetched;
    std::vector<std::uint64_t> block_epochs;  ///< per-block dedup marks
    std::vector<std::vector<std::uint32_t>> free_slots;  ///< per shard

    State(BlockLayout l, std::vector<BlockId> bm,
          std::vector<std::uint32_t> ac, TablePolicy p,
          ShardedInsertionLru c)
        : layout(std::move(l)),
          block_map(std::move(bm)),
          access_counts(std::move(ac)),
          policy(p),
          cache(std::move(c)) {}
  };

  /// Per-shard lock + scratch. The mutex array is fixed for the table's
  /// lifetime (states swap underneath it).
  struct Shard {
    std::mutex mu;
    std::vector<std::byte> block_buf;  ///< scratch for block reads
  };

  /// Reader-epoch machinery. A reader enters one striped slot of the bank
  /// named by the generation's parity, loads the state pointer (both with
  /// seq_cst, so a reclaim pass that reads the counters and misses the
  /// enter is globally ordered before it — and the reader's state load
  /// then sees the post-swap pointer, never the retired state), and exits
  /// the same slot on destruction. Slots are thread-striped to keep the
  /// hot-path RMW on a mostly-private cache line.
  static constexpr std::uint32_t kReaderSlots = 16;
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> entered{0};
    std::atomic<std::uint64_t> exited{0};
  };
  static std::uint32_t reader_slot() {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t slot =
        next.fetch_add(1, std::memory_order_relaxed) % kReaderSlots;
    return slot;
  }
  class ReadGuard {
   public:
    explicit ReadGuard(const BandanaTable& t)
        : t_(&t),
          bank_(static_cast<std::uint32_t>(
              t.reader_gen_.load(std::memory_order_relaxed) & 1)),
          slot_(reader_slot()) {
      t_->reader_banks_[bank_][slot_].entered.fetch_add(
          1, std::memory_order_seq_cst);
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ~ReadGuard() {
      t_->reader_banks_[bank_][slot_].exited.fetch_add(
          1, std::memory_order_release);
    }

   private:
    const BandanaTable* t_;
    std::uint32_t bank_;
    std::uint32_t slot_;
  };
  /// One retired state plus the retirement sequence it must outlive.
  struct RetiredState {
    std::unique_ptr<State> state;
    std::uint64_t seq = 0;
  };
  /// exited-then-entered per-slot equality check (see class comment).
  bool bank_drained(std::uint32_t bank) const;
  /// The reclaim pass body; caller holds reclaim_mu_.
  std::size_t reclaim_retired_locked();

  std::unique_ptr<State> make_state(TablePolicy policy, BlockLayout layout,
                                    std::vector<std::uint32_t> access_counts,
                                    std::vector<BlockId> block_map) const;
  LookupOutcome lookup_locked(State& st, std::uint32_t shard_idx, VectorId v,
                              BlockStorage& storage, std::span<std::byte> out,
                              std::uint64_t epoch,
                              const StagedBlockReads* staged, bool staged_only);
  std::span<std::byte> slot_bytes(std::uint32_t slot);
  void cache_vector(State& st, std::uint32_t shard_idx, VectorId v,
                    std::span<const std::byte> bytes, std::size_t point,
                    bool is_prefetch);
  void admit_prefetches(State& st, std::uint32_t shard_idx,
                        BlockId local_block, std::span<const std::byte> block);

  std::uint32_t num_vectors_;
  std::uint32_t num_blocks_;
  BlockId first_block_;
  std::size_t vector_bytes_;
  std::size_t block_bytes_;
  std::uint32_t vectors_per_block_;
  std::uint32_t num_shards_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::byte> slab_;  ///< cache capacity * vector_bytes
  std::atomic<std::uint64_t> epoch_{0};

  std::unique_ptr<State> state_owner_;
  std::atomic<State*> state_;

  /// Reader epochs: two banks of striped enter/exit counters; the
  /// generation's parity names the bank new readers enter. Mutable — read
  /// paths on const tables still register.
  mutable ReaderSlot reader_banks_[2][kReaderSlots];
  std::atomic<std::uint64_t> reader_gen_{0};
  /// Guards the retirement bookkeeping below (swap_state's push and
  /// concurrent reclaim passes). Never taken by readers.
  mutable std::mutex reclaim_mu_;
  std::uint64_t retire_seq_ = 0;                ///< Tags handed to retires.
  std::uint64_t bank_drained_seq_[2] = {0, 0};  ///< Latest covered retire.
  /// States replaced by swap_state, kept alive until both reader banks
  /// have been observed drained after their retirement.
  std::vector<RetiredState> retired_;

  AtomicTableMetrics metrics_;
};

}  // namespace bandana
