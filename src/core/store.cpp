#include "core/store.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bandana {

Store::Store(StoreConfig config, std::uint64_t seed)
    : config_(config),
      latency_model_(config.device),
      channel_free_us_(config.device.channels, 0.0),
      rng_(seed),
      endurance_(config.device.capacity_blocks * config.device.block_bytes,
                 config.device.endurance_dwpd) {
  if (config_.block_bytes % config_.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
}

TableId Store::add_table(const EmbeddingTable& values, BlockLayout layout,
                         TablePolicy policy,
                         std::vector<std::uint32_t> access_counts) {
  const std::uint32_t blocks = layout.num_blocks();
  auto table = std::make_unique<BandanaTable>(
      config_, policy, std::move(layout), std::move(access_counts),
      /*first_block=*/next_block_);
  // The store-wide storage is grown table by table: allocate a fresh
  // arena covering all blocks so far plus this table.
  auto grown = std::make_unique<MemoryBlockStorage>(next_block_ + blocks,
                                                    config_.block_bytes);
  if (storage_) {
    std::vector<std::byte> buf(config_.block_bytes);
    for (BlockId b = 0; b < next_block_; ++b) {
      storage_->read_block(b, buf);
      grown->write_block(b, buf);
    }
  }
  storage_ = std::move(grown);
  table->publish(values, *storage_);
  endurance_.record_write(std::uint64_t{blocks} * config_.block_bytes, 0.0);

  block_epochs_.emplace_back(table->num_blocks(), 0);
  epochs_.push_back(0);
  tables_.push_back(std::move(table));
  next_block_ += blocks;
  return static_cast<TableId>(tables_.size() - 1);
}

double Store::lookup_batch(TableId t, std::span<const VectorId> ids,
                           std::span<std::byte> out) {
  assert(t < tables_.size());
  BandanaTable& table = *tables_[t];
  const std::size_t vb = config_.vector_bytes;
  assert(out.size() >= ids.size() * vb);

  const std::uint32_t epoch = ++epochs_[t];
  double max_done = now_us_;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto outcome =
        table.lookup(ids[i], *storage_, out.subspan(i * vb, vb),
                     &block_epochs_[t], epoch);
    if (outcome.nvm_read && config_.simulate_timing) {
      // Batched queries issue their block reads asynchronously at query
      // start; service latency is bounded by the slowest read.
      const double done =
          submit_read(latency_model_, now_us_, channel_free_us_, rng_);
      max_done = std::max(max_done, done);
    }
  }
  const double latency = max_done - now_us_;
  if (config_.simulate_timing) {
    query_latency_.add(latency);
    now_us_ = max_done;
  }
  return latency;
}

double Store::lookup(TableId t, VectorId v, std::span<std::byte> out) {
  const VectorId ids[1] = {v};
  return lookup_batch(t, ids, out);
}

void Store::republish(TableId t, const EmbeddingTable& values, double day) {
  assert(t < tables_.size());
  tables_[t]->republish(values, *storage_);
  endurance_.record_write(
      std::uint64_t{tables_[t]->num_blocks()} * config_.block_bytes, day);
}

const TableMetrics& Store::table_metrics(TableId t) const {
  assert(t < tables_.size());
  return tables_[t]->metrics();
}

TableMetrics Store::total_metrics() const {
  TableMetrics total;
  for (const auto& table : tables_) total += table->metrics();
  return total;
}

}  // namespace bandana
