#include "core/store.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/store_builder.h"
#include "core/trainer.h"

namespace bandana {

namespace detail {
/// One in-flight trickle republish. begin_trickle_republish claims the
/// table under the unique storage lock, runs the whole plan diff under the
/// shared lock (the claim freezes the old mapping) and allocates
/// replacement blocks; pump() calls then drive the waves under `mu`.
/// Changed-block images are NOT buffered here: each pump composes its
/// wave's images lazily from `values` into a wave-sized buffer, so the
/// session's DRAM overhead is O(wave) while the push may be O(table). The
/// caller's values must therefore stay valid until the session is done or
/// destroyed (the plan's layout is owned by `next`).
struct TrickleState {
  TrickleState(Store* st, TableId tid, const RepublishConfig& cfg, double d)
      : store(st), table(tid), limiter(cfg), day(d) {}

  Store* store = nullptr;
  TableId table = 0;
  TrickleRateLimiter limiter;
  double day = 0.0;
  /// The mapping to install at completion (engaged unless the push was a
  /// no-op resolved at begin). Its layout also drives the lazy per-wave
  /// composition until then.
  std::optional<BandanaTable::RetrainedState> next;
  const EmbeddingTable* values = nullptr;  ///< caller-owned retrained values
  std::vector<BlockId> changed;    ///< changed local block ids, diff order
  std::vector<BlockId> targets;    ///< their replacement storage blocks
  std::uint64_t changed_vectors = 0;
  std::uint64_t skipped = 0;
  std::uint64_t written = 0;
  std::uint64_t waves = 0;
  std::uint64_t peak_wave_bytes = 0;  ///< largest compose buffer filled
  bool swapped = false;
  bool installed_mapping = false;  ///< The push replaced the table's plan.
  mutable std::mutex mu;  ///< serializes pump/done/stat reads
};

/// One in-flight streaming table install (Store::begin_table_install) —
/// the receiving half of a cluster shard migration. The reserved blocks
/// were committed as a pending-install manifest record at begin; no table
/// references them until install_finish registers the BandanaTable and
/// drops the record in one commit.
struct InstallState {
  Store* store = nullptr;
  std::uint64_t id = 0;  ///< Key into Store::pending_installs_.
  TablePolicy policy;
  std::optional<BlockLayout> layout;  ///< Moved into the table at finish.
  std::vector<std::uint32_t> access_counts;
  std::vector<BlockId> blocks;  ///< Reserved storage blocks, local order.
  std::uint64_t written = 0;    ///< Blocks streamed so far.
  std::uint64_t waves = 0;      ///< write_blocks() calls so far.
  bool finished = false;
  mutable std::mutex mu;  ///< serializes write/finish/stat reads
};
}  // namespace detail

namespace {
/// Chunk size for streaming published blocks into grown storage: 16 MB of
/// 4 KB blocks, so growth never buffers the whole old storage in memory.
constexpr std::uint64_t kGrowthChunkBlocks = 4096;

/// Cap on blocks staged per batched-read fetch (16 MB of 4 KB blocks).
/// The admission waves bound in-flight device I/O; this bounds the
/// staging buffer itself. Misses beyond the cap are counted
/// (StoreMetrics::stage_truncated_blocks) and their lookups defer to
/// bounded retry waves — never to inline single-block reads.
constexpr std::size_t kMaxStagedBlocks = 4096;
}  // namespace

Store::Store(StoreConfig config, std::uint64_t seed)
    : Store(config, memory_storage_factory(), seed) {}

Store::Store(StoreConfig config, BlockStorageFactory storage_factory,
             std::uint64_t seed)
    : config_(config),
      storage_factory_(std::move(storage_factory)),
      storage_mu_(std::make_unique<std::shared_mutex>()),
      manifest_mu_(std::make_unique<std::mutex>()),
      tap_(std::make_unique<std::atomic<AccessTap*>>(nullptr)),
      timing_mu_(std::make_unique<std::mutex>()),
      engine_(config.device, seed),
      endurance_(config.device.capacity_blocks * config.device.block_bytes,
                 config.device.endurance_dwpd),
      staging_metrics_(std::make_unique<AtomicStoreMetrics>()) {
  if (config_.block_bytes % config_.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
  if (!storage_factory_) {
    throw std::invalid_argument("Store: null storage factory");
  }
}

Store Store::from_plan(const StoreConfig& config, const StorePlan& plan,
                       std::span<const EmbeddingTable> tables,
                       BlockStorageFactory storage_factory,
                       std::uint64_t seed) {
  StoreBuilder builder(config);
  builder.seed(seed);
  if (storage_factory) builder.storage(std::move(storage_factory));
  return builder.add_plan(plan, tables).build();
}

Store Store::open(const StoreConfig& config, const std::string& manifest_path,
                  BlockStorageFactory storage_factory, std::uint64_t seed) {
  std::string err;
  auto m = load_manifest(manifest_path, &err);
  if (!m) throw std::runtime_error("Store::open: " + err);
  if (m->block_bytes != config.block_bytes ||
      m->vector_bytes != config.vector_bytes) {
    throw std::runtime_error(
        "Store::open: config geometry (" + std::to_string(config.block_bytes) +
        "B blocks, " + std::to_string(config.vector_bytes) +
        "B vectors) disagrees with manifest (" +
        std::to_string(m->block_bytes) + "B blocks, " +
        std::to_string(m->vector_bytes) + "B vectors)");
  }
  if (!storage_factory) {
    if (m->block_file.empty()) {
      throw std::runtime_error(
          "Store::open: manifest records no block file (memory-backed "
          "stores are not recoverable) — pass a storage factory");
    }
    // Preserve mode by construction: the factory probes this same manifest,
    // finds it valid, and verifies the block file's size before opening.
    storage_factory = file_storage_factory(m->block_file, manifest_path);
  }
  Store store(config, std::move(storage_factory), seed);
  store.restore_from(*m, manifest_path);
  return store;
}

void Store::restore_from(const Manifest& m, const std::string& manifest_path) {
  std::unique_lock lock(*storage_mu_);
  ensure_capacity(m.storage_blocks);
  const std::uint32_t vpb = config_.vectors_per_block();
  for (std::size_t i = 0; i < m.tables.size(); ++i) {
    const ManifestTable& mt = m.tables[i];
    for (const BlockId g : mt.block_map) {
      if (g >= m.storage_blocks) {
        throw std::runtime_error(
            "Store::open: table " + std::to_string(i) + " maps block " +
            std::to_string(g) + " past the manifest's storage size " +
            std::to_string(m.storage_blocks));
      }
    }
    // from_order validates the permutation; the table ctor validates the
    // map/layout shapes against each other and the config geometry.
    tables_.push_back(std::make_unique<BandanaTable>(
        config_, mt.policy, BlockLayout::from_order(mt.order, vpb),
        mt.access_counts, mt.first_block, mt.block_map));
    free_blocks_.push_back(mt.free_blocks);
    republish_in_flight_.push_back(0);
    retired_.push_back(mt.retired ? 1 : 0);
  }
  free_pool_ = m.free_pool;
  // Crash-orphaned install reservations: the install never finished, so no
  // table references these blocks — reclaim them as free capacity. No
  // re-commit needed; reclaiming again on the next reopen is idempotent,
  // and the next durable commit drops the records.
  for (const std::vector<BlockId>& blocks : m.pending_installs) {
    free_pool_.insert(free_pool_.end(), blocks.begin(), blocks.end());
  }
  next_block_ = static_cast<BlockId>(m.next_block);
  trickle_epoch_ = m.trickle_epoch;
  manifest_seq_ = m.commit_seq;
  manifest_path_ = manifest_path;
  block_file_ = m.block_file;
  // No re-commit: the loaded manifest IS the durable state; the next swap
  // or add_table writes the next version.
}

void Store::attach_manifest(std::string manifest_path, std::string block_file) {
  std::unique_lock lock(*storage_mu_);
  {
    std::lock_guard mlock(*manifest_mu_);
    manifest_path_ = std::move(manifest_path);
    block_file_ = std::move(block_file);
  }
  // Commit immediately: the store is recoverable from this point on.
  commit_manifest();
}

std::uint64_t Store::trickle_epoch() const {
  std::lock_guard mlock(*manifest_mu_);
  return trickle_epoch_;
}

void Store::set_manifest_fault_hooks(ManifestCommitHooks hooks) {
  std::lock_guard mlock(*manifest_mu_);
  manifest_hooks_ = std::move(hooks);
}

Manifest Store::compose_manifest() const {
  Manifest m;
  m.commit_seq = manifest_seq_ + 1;
  m.trickle_epoch = trickle_epoch_;
  m.block_bytes = config_.block_bytes;
  m.vector_bytes = config_.vector_bytes;
  m.vectors_per_block = config_.vectors_per_block();
  m.storage_blocks = storage_ ? storage_->num_blocks() : 0;
  m.next_block = next_block_;
  m.block_file = block_file_;
  m.tables.reserve(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    auto snap = tables_[t]->mapping_snapshot();
    ManifestTable mt;
    mt.first_block = tables_[t]->first_block();
    mt.order = snap.layout.order();
    mt.block_map = std::move(snap.block_map);
    mt.access_counts = std::move(snap.access_counts);
    mt.policy = snap.policy;
    mt.free_blocks = free_blocks_[t];
    mt.retired = retired_[t] != 0;
    m.tables.push_back(std::move(mt));
  }
  m.free_pool = free_pool_;
  m.pending_installs.reserve(pending_installs_.size());
  for (const auto& [id, blocks] : pending_installs_) {
    m.pending_installs.push_back(blocks);
  }
  return m;
}

void Store::commit_manifest() {
  std::lock_guard mlock(*manifest_mu_);
  commit_manifest_mlocked();
}

void Store::commit_manifest_mlocked() {
  if (manifest_path_.empty()) return;
  // Durability barrier BEFORE the pointer flip: every block the new
  // manifest references must survive a crash before the manifest does.
  if (storage_) storage_->sync();
  const Manifest m = compose_manifest();
  write_manifest(manifest_path_, m, &manifest_hooks_);
  manifest_seq_ = m.commit_seq;
  staging_metrics_->manifest_commits.fetch_add(1, std::memory_order_relaxed);
}

void Store::ensure_capacity(std::uint64_t total_blocks) {
  if (storage_ && storage_->num_blocks() >= total_blocks) return;
  const std::uint64_t used = next_block_;
  // Sample the first and last published blocks BEFORE the factory runs:
  // they re-verify the factory's preserve-on-regrowth contract below (a
  // legacy truncate-on-invocation factory would otherwise zero published
  // data silently — better to fail loudly).
  std::vector<std::byte> first_probe, last_probe;
  if (storage_ && used > 0) {
    first_probe.resize(config_.block_bytes);
    last_probe.resize(config_.block_bytes);
    storage_->read_block(0, first_probe);
    storage_->read_block(static_cast<BlockId>(used - 1), last_probe);
  }
  // If the factory throws, the store keeps serving from its old storage
  // untouched: factories preserve existing contents on re-creation (a
  // same-path file factory reopens without truncating), so nothing needs
  // draining or restoring up front.
  auto grown = storage_factory_(total_blocks, config_.block_bytes);
  if (!grown || grown->num_blocks() < total_blocks ||
      grown->block_bytes() != config_.block_bytes) {
    throw std::runtime_error("Store: storage factory produced bad geometry");
  }
  if (storage_ && used > 0) {
    if (!grown->same_backing(*storage_)) {
      // Distinct backends: migrate the published blocks in bounded chunks —
      // a 375 GB file-backed store must never be buffered wholesale through
      // memory. (Same-backing growth resized in place; nothing to copy.)
      const std::uint64_t chunk_blocks = std::min(used, kGrowthChunkBlocks);
      std::vector<std::byte> buf(chunk_blocks * config_.block_bytes);
      std::vector<BlockReadOp> reads(chunk_blocks);
      std::vector<BlockWriteOp> writes(chunk_blocks);
      for (std::uint64_t b0 = 0; b0 < used; b0 += chunk_blocks) {
        const std::uint64_t n = std::min(chunk_blocks, used - b0);
        for (std::uint64_t i = 0; i < n; ++i) {
          const auto block = std::span<std::byte>(buf).subspan(
              i * config_.block_bytes, config_.block_bytes);
          reads[i] = {static_cast<BlockId>(b0 + i), block};
          writes[i] = {static_cast<BlockId>(b0 + i), block};
        }
        // Batched chunk copy: both backends overlap their halves when they
        // can (the old storage's reads, the grown storage's writes).
        storage_->read_blocks(
            std::span<const BlockReadOp>(reads).first(n));
        grown->write_blocks(
            std::span<const BlockWriteOp>(writes).first(n));
        staging_metrics_->write_batches.fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      // Growth migration rewrites every published block: those writes
      // occupy the device channels like any other write traffic. Closed
      // loop — growth is setup, drained before serving resumes.
      schedule_writes(used, /*advance_clock=*/true);
    }
    std::vector<std::byte> check(config_.block_bytes);
    grown->read_block(0, check);
    bool ok = check == first_probe;
    if (ok) {
      grown->read_block(static_cast<BlockId>(used - 1), check);
      ok = check == last_probe;
    }
    if (!ok) {
      throw std::runtime_error(
          "Store: storage factory lost published blocks on growth — "
          "factories must preserve existing contents when re-invoked "
          "(see BlockStorageFactory)");
    }
  }
  storage_ = std::move(grown);
}

void Store::reserve_blocks(std::uint64_t total_blocks) {
  std::unique_lock lock(*storage_mu_);
  ensure_capacity(total_blocks);
  // Keep the durable storage_blocks in step with the real file size (a
  // no-op when no manifest is attached — StoreBuilder attaches at build).
  commit_manifest();
}

TableId Store::add_table(const EmbeddingTable& values, BlockLayout layout,
                         TablePolicy policy,
                         std::vector<std::uint32_t> access_counts) {
  std::unique_lock lock(*storage_mu_);
  const std::uint32_t blocks = layout.num_blocks();
  auto table = std::make_unique<BandanaTable>(
      config_, policy, std::move(layout), std::move(access_counts),
      /*first_block=*/next_block_);
  ensure_capacity(std::uint64_t{next_block_} + blocks);
  staging_metrics_->write_batches.fetch_add(
      table->publish(values, *storage_, real_write_wave_blocks()),
      std::memory_order_relaxed);
  {
    // Endurance mutations and reads serialize on the timing lock (the
    // trickle pump records from background threads).
    std::lock_guard timing_lock(*timing_mu_);
    endurance_.record_write(std::uint64_t{blocks} * config_.block_bytes, 0.0);
  }
  // The publish wave's writes go through the engine's channel FIFOs,
  // closed loop: the table only serves once its blocks have landed, so
  // the backlog drains before the first read arrives.
  schedule_writes(blocks, /*advance_clock=*/true);

  tables_.push_back(std::move(table));
  free_blocks_.emplace_back();
  republish_in_flight_.push_back(0);
  retired_.push_back(0);
  next_block_ += blocks;
  // The table becomes durable only when this commit's pointer flip lands:
  // a crash mid-publish (or mid-commit) recovers to the previous manifest,
  // which simply does not know this table.
  commit_manifest();
  return static_cast<TableId>(tables_.size() - 1);
}

const BandanaTable& Store::checked_table(TableId t) const {
  if (t >= tables_.size()) {
    throw std::out_of_range("Store: bad table id " + std::to_string(t));
  }
  if (t < retired_.size() && retired_[t]) {
    throw std::logic_error("Store: table " + std::to_string(t) +
                           " was retired (migrated out)");
  }
  return *tables_[t];
}

double Store::schedule_reads(std::uint64_t reads, LatencyRecorder& recorder,
                             bool advance_clock, double arrival_us) {
  if (!config_.simulate_timing) return 0.0;
  std::lock_guard lock(*timing_mu_);
  // All of the request's block reads arrive together as one admission wave
  // into the event-driven engine: the gate caps outstanding reads at
  // queue_depth * channels, and each read joins the per-channel FIFO that
  // drains first — so latency grows with the request's own queue depth
  // (paper Fig. 2) and with channel backlog left by earlier requests.
  const double start = arrival_us < 0.0 ? now_us_ : arrival_us;
  const double max_done = engine_.submit_wave(start, reads);
  const double latency = max_done - start;
  recorder.add(latency);
  // Closed loop (lookup_batch): the caller waits for the query, so the
  // clock moves to its completion. Open loop (multi_get): arrivals are
  // paced by the caller via advance_time_us, so the clock stays at the
  // arrival time and overload shows up as channel backlog (paper Fig. 5).
  if (advance_clock) now_us_ = max_done;
  return latency;
}

double Store::schedule_writes(std::uint64_t writes, bool advance_clock) {
  if (writes > 0) {
    // Wave counters track real write traffic whether or not the timing
    // model is on (the golden replay suite pins them per backend).
    staging_metrics_->write_waves.fetch_add(1, std::memory_order_relaxed);
    staging_metrics_->write_blocks.fetch_add(writes,
                                             std::memory_order_relaxed);
  }
  if (!config_.simulate_timing || writes == 0) return 0.0;
  std::lock_guard lock(*timing_mu_);
  // Publish/republish block writes are one admission wave of
  // IoKind::kWrite events: they join the same per-channel FIFOs and hold
  // the same queue_depth x channels gate slots as reads, so write traffic
  // contends with read traffic exactly as the device's shared submission
  // queue would (paper §2.2). Closed loop drains the backlog (initial
  // publish / growth: setup completes before serving); open loop leaves
  // it on the channels (live republish: the Fig. 5 interference).
  const double start = now_us_;
  const double max_done =
      engine_.submit_wave(start, writes, nullptr, IoKind::kWrite);
  const double latency = max_done - start;
  write_latency_.add(latency);
  if (advance_clock) now_us_ = max_done;
  return latency;
}

void Store::stage_miss_blocks(const BandanaTable& table,
                              std::span<const VectorId> ids,
                              StagedBlockReads& staged) const {
  for (const VectorId v : ids) {
    if (table.is_cached(v)) continue;
    const BlockId b = table.global_block_of(v);
    if (staged.contains(b)) continue;
    if (staged.size() >= kMaxStagedBlocks) {
      // Not staged: the lookup will defer to a retry wave. Counted per
      // sighting (not deduplicated among the truncated tail) — a visibility
      // signal, not an exact block count; retry_blocks is the exact one.
      staging_metrics_->stage_truncated_blocks.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    staged.add(b);
  }
}

void Store::fetch_retry_blocks(StagedBlockReads& retry,
                               std::size_t lookups) const {
  retry.fetch(*storage_, real_read_wave_blocks());
  staging_metrics_->retry_waves.fetch_add(1, std::memory_order_relaxed);
  staging_metrics_->retry_blocks.fetch_add(retry.size(),
                                           std::memory_order_relaxed);
  staging_metrics_->deferred_lookups.fetch_add(lookups,
                                               std::memory_order_relaxed);
}

void Store::serve_deferred(
    std::vector<DeferredLookup>& deferred,
    const std::function<void(std::size_t, const BandanaTable::LookupOutcome&)>&
        account) {
  // Blocks evicted between the staging peek and their lookup (or truncated
  // at the staging cap) are re-fetched through the same batched seam, in
  // bounded waves. A retried lookup defers again only if a concurrent
  // mapping swap retargeted its block between collecting the retry set and
  // the lookup — it goes back on the queue and the next wave fetches the
  // block under the new mapping (swaps are finite, so this terminates).
  while (!deferred.empty()) {
    StagedBlockReads retry;
    std::size_t taken = 0;
    while (taken < deferred.size()) {
      const DeferredLookup& d = deferred[taken];
      const BlockId b = d.table->global_block_of(d.id);
      if (!retry.contains(b) && retry.size() >= kMaxStagedBlocks) break;
      retry.add(b);
      ++taken;
    }
    fetch_retry_blocks(retry, taken);
    std::vector<DeferredLookup> again;
    for (std::size_t k = 0; k < taken; ++k) {
      const DeferredLookup& d = deferred[k];
      const auto outcome = d.table->lookup(d.id, *storage_, d.out, d.epoch,
                                           &retry, /*staged_only=*/true);
      if (outcome.deferred) {
        again.push_back(d);
        continue;
      }
      account(d.tag, outcome);
    }
    deferred.erase(deferred.begin(),
                   deferred.begin() + static_cast<std::ptrdiff_t>(taken));
    deferred.insert(deferred.begin(), again.begin(), again.end());
  }
}

std::uint64_t Store::real_read_wave_blocks() const {
  return std::uint64_t{config_.device.queue_depth} * config_.device.channels;
}

std::uint64_t Store::real_write_wave_blocks() const {
  const std::uint64_t wave = real_read_wave_blocks();
  return wave == 0 ? kGrowthChunkBlocks : wave;
}

StoreMetrics Store::store_metrics() const {
  StoreMetrics m = staging_metrics_->snapshot();
  std::shared_lock lock(*storage_mu_);
  if (storage_) {
    const BlockStorageWriteStats ws = storage_->write_stats();
    m.write_short_resubmits = ws.short_resubmits;
    m.registered_buffers_active = ws.registered_buffers_active;
  }
  return m;
}

void Store::note_retrain(double drain_us, double train_us, double diff_us,
                         std::uint64_t peak_training_bytes,
                         bool budget_overrun) {
  auto us = [](double v) {
    return v > 0.0 ? static_cast<std::uint64_t>(v) : 0;
  };
  staging_metrics_->retrain_runs.fetch_add(1, std::memory_order_relaxed);
  staging_metrics_->retrain_drain_us.fetch_add(us(drain_us),
                                               std::memory_order_relaxed);
  staging_metrics_->retrain_train_us.fetch_add(us(train_us),
                                               std::memory_order_relaxed);
  staging_metrics_->retrain_diff_us.fetch_add(us(diff_us),
                                              std::memory_order_relaxed);
  staging_metrics_->note_peak_training_bytes(peak_training_bytes);
  if (budget_overrun) {
    staging_metrics_->retrain_budget_overruns.fetch_add(
        1, std::memory_order_relaxed);
  }
}

double Store::lookup_batch(TableId t, std::span<const VectorId> ids,
                           std::span<std::byte> out) {
  std::shared_lock storage_lock(*storage_mu_);
  BandanaTable& table = checked_table(t);
  const std::size_t vb = config_.vector_bytes;
  if (out.size() < ids.size() * vb) {
    throw std::invalid_argument("lookup_batch: output span too small");
  }
  const std::uint32_t num_vectors = table.num_vectors();
  for (const VectorId v : ids) {
    if (v >= num_vectors) {
      throw std::out_of_range("lookup_batch: bad vector id " +
                              std::to_string(v));
    }
  }
  // Overlapped-read backends: fetch the query's miss blocks up front in
  // admission-sized waves, so real I/O is batched instead of one pread per
  // miss inside the lookup loop. staged_only lookups never fall back to an
  // inline read — an unstaged miss defers to the retry waves below.
  StagedBlockReads staged;
  const bool stage = storage_->prefers_batched_reads();
  if (stage) {
    stage_miss_blocks(table, ids, staged);
    staged.fetch(*storage_, real_read_wave_blocks());
    staging_metrics_->staged_blocks.fetch_add(staged.size(),
                                              std::memory_order_relaxed);
  }
  std::uint64_t reads = 0;
  std::uint64_t hits = 0;
  const std::uint64_t epoch = table.begin_batch();
  std::vector<DeferredLookup> deferred;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto outcome = table.lookup(ids[i], *storage_,
                                      out.subspan(i * vb, vb), epoch,
                                      stage ? &staged : nullptr,
                                      /*staged_only=*/stage);
    if (outcome.deferred) {
      deferred.push_back({&table, ids[i], out.subspan(i * vb, vb), epoch, i});
      continue;
    }
    if (outcome.hit) ++hits;
    if (outcome.nvm_read) ++reads;
  }
  serve_deferred(deferred,
                 [&](std::size_t, const BandanaTable::LookupOutcome& o) {
                   if (o.hit) ++hits;
                   if (o.nvm_read) ++reads;
                 });
  if (AccessTap* tap = tap_->load(std::memory_order_acquire)) {
    tap->on_table_get(t, ids, hits, ids.size() - hits);
  }
  return schedule_reads(reads, query_latency_, /*advance_clock=*/true);
}

double Store::lookup(TableId t, VectorId v, std::span<std::byte> out) {
  const VectorId ids[1] = {v};
  return lookup_batch(t, ids, out);
}

MultiGetResult Store::multi_get(const MultiGetRequest& request) {
  std::shared_lock storage_lock(*storage_mu_);
  return multi_get_impl(request, /*arrival_us=*/-1.0);
}

MultiGetResult Store::multi_get(const MultiGetRequest& request,
                                double arrival_us) {
  std::shared_lock storage_lock(*storage_mu_);
  return multi_get_impl(request, arrival_us);
}

MultiGetResult Store::multi_get_impl(const MultiGetRequest& request,
                                     double arrival_us) {
  const std::size_t vb = config_.vector_bytes;
  // Validate the whole request up front so a bad entry cannot leave it
  // half-served (and half-counted in the metrics).
  for (const auto& get : request.gets) {
    const BandanaTable& table = checked_table(get.table);
    const std::uint32_t num_vectors = table.num_vectors();
    for (const VectorId v : get.ids) {
      if (v >= num_vectors) {
        throw std::out_of_range("multi_get: bad vector id " +
                                std::to_string(v) + " for table " +
                                std::to_string(get.table));
      }
    }
  }

  // Overlapped-read backends: one staging pass over the whole request
  // collects every block the lookups will miss on (deduplicated across
  // tables and repeated id lists) and fetches them as admission-sized
  // batched waves — the request's real I/O overlaps exactly like its
  // simulated channel reads do. staged_only lookups never fall back to an
  // inline read: an unstaged miss defers to the retry waves below.
  StagedBlockReads staged;
  const bool stage = storage_->prefers_batched_reads();
  if (stage) {
    for (const auto& get : request.gets) {
      stage_miss_blocks(*tables_[get.table], get.ids, staged);
    }
    staged.fetch(*storage_, real_read_wave_blocks());
    staging_metrics_->staged_blocks.fetch_add(staged.size(),
                                              std::memory_order_relaxed);
  }

  MultiGetResult result;
  result.vectors.resize(request.gets.size());
  result.per_table.resize(request.gets.size());
  // One dedup epoch per distinct table per request: a block read by an
  // earlier id list (even of the same table appearing twice) is not
  // re-counted. Lookups lock only the touched cache shard, so concurrent
  // requests to the same table interleave freely.
  std::vector<std::pair<TableId, std::uint64_t>> request_epochs;
  std::vector<DeferredLookup> deferred;
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    const auto& get = request.gets[g];
    BandanaTable& table = *tables_[get.table];
    auto& bytes = result.vectors[g];
    auto& stats = result.per_table[g];
    bytes.resize(get.ids.size() * vb);

    std::uint64_t epoch = 0;
    const auto known =
        std::find_if(request_epochs.begin(), request_epochs.end(),
                     [&](const auto& e) { return e.first == get.table; });
    if (known != request_epochs.end()) {
      epoch = known->second;
    } else {
      epoch = table.begin_batch();
      request_epochs.emplace_back(get.table, epoch);
    }
    for (std::size_t i = 0; i < get.ids.size(); ++i) {
      const auto outcome = table.lookup(
          get.ids[i], *storage_,
          std::span<std::byte>(bytes).subspan(i * vb, vb), epoch,
          stage ? &staged : nullptr, /*staged_only=*/stage);
      if (outcome.deferred) {
        // tag = get index: retry accounting lands on the right TableStats.
        deferred.push_back({&table, get.ids[i],
                            std::span<std::byte>(bytes).subspan(i * vb, vb),
                            epoch, g});
        continue;
      }
      if (outcome.hit) ++stats.hits;
      if (outcome.nvm_read) ++stats.block_reads;
    }
  }
  serve_deferred(deferred,
                 [&](std::size_t g, const BandanaTable::LookupOutcome& o) {
                   auto& stats = result.per_table[g];
                   if (o.hit) ++stats.hits;
                   if (o.nvm_read) ++stats.block_reads;
                 });
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    auto& stats = result.per_table[g];
    stats.misses = request.gets[g].ids.size() - stats.hits;
    result.block_reads += stats.block_reads;
  }
  if (AccessTap* tap = tap_->load(std::memory_order_acquire)) {
    // One tap call per table-get, after the whole request settled (the
    // deferred retries above may still have flipped hits/misses).
    for (std::size_t g = 0; g < request.gets.size(); ++g) {
      const auto& stats = result.per_table[g];
      tap->on_table_get(request.gets[g].table, request.gets[g].ids,
                        stats.hits, stats.misses);
    }
  }
  result.service_latency_us =
      schedule_reads(result.block_reads, request_latency_,
                     /*advance_clock=*/false, arrival_us);
  return result;
}

std::future<MultiGetResult> Store::multi_get_async(MultiGetRequest request,
                                                   ThreadPool& pool) {
  auto promise = std::make_shared<std::promise<MultiGetResult>>();
  auto future = promise->get_future();
  auto owned = std::make_shared<MultiGetRequest>(std::move(request));
  // The request arrives NOW, even if the pool serves it later: capture the
  // timestamp so queued requests keep their true simulated arrival order.
  const double arrival_us = now_us();
  pool.submit([this, promise, owned, arrival_us] {
    try {
      std::shared_lock storage_lock(*storage_mu_);
      promise->set_value(multi_get_impl(*owned, arrival_us));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

void Store::set_access_tap(AccessTap* tap) {
  tap_->store(tap, std::memory_order_release);
  // Quiesce: every serving path holds the storage lock (shared) across its
  // tap invocation, so holding it uniquely for an instant guarantees that
  // any request which loaded the previous tap pointer has finished calling
  // it — and that requests admitted after we release observe the new
  // pointer. Without this, detaching a tap and destroying it would race a
  // pool thread mid-on_table_get.
  std::unique_lock<std::shared_mutex> quiesce(*storage_mu_);
}

void Store::record_empty_write_wave() {
  staging_metrics_->write_waves.fetch_add(1, std::memory_order_relaxed);
  if (config_.simulate_timing) {
    std::lock_guard lock(*timing_mu_);
    write_latency_.add(0.0);
  }
}

double Store::republish(TableId t, const EmbeddingTable& values, double day) {
  std::unique_lock lock(*storage_mu_);
  BandanaTable& table = checked_table(t);
  if (republish_in_flight_[t]) {
    throw std::logic_error(
        "republish: a trickle republish of this table is in flight");
  }
  const auto diff =
      table.republish(values, *storage_, real_write_wave_blocks());
  staging_metrics_->republish_skipped_blocks.fetch_add(
      diff.skipped_blocks, std::memory_order_relaxed);
  staging_metrics_->write_batches.fetch_add(diff.write_batches,
                                            std::memory_order_relaxed);
  if (diff.written_blocks == 0) {
    // Plan-diff early-out: identical values are a no-op — no block writes,
    // no endurance burn, no cache flush. The zero-length wave keeps the
    // republish cadence visible to callers watching write_latency_us().
    record_empty_write_wave();
    return 0.0;
  }
  {
    std::lock_guard timing_lock(*timing_mu_);
    endurance_.record_write(diff.written_blocks * config_.block_bytes, day);
  }
  // Open loop: a live republish is background retraining traffic. Its
  // writes stay queued on the channels and in the admission gate at the
  // current clock, so concurrent read requests see the paper's
  // mixed-traffic interference (bench_fig05 read-vs-mixed sweep).
  const double latency =
      schedule_writes(diff.written_blocks, /*advance_clock=*/false);
  // One-shot republish overwrites blocks IN PLACE, so it is NOT
  // crash-atomic mid-flight (a kill between two of its writes leaves mixed
  // old/new bytes under the committed mapping — use the trickle path for
  // crash safety). This commit makes a *completed* republish durable.
  commit_manifest();
  return latency;
}

TrickleRepublish Store::begin_trickle_republish(
    TableId t, const EmbeddingTable& values, TablePlan plan,
    const RepublishConfig& republish_cfg, double day) {
  // Brief exclusive section: validate, claim the table (one session at a
  // time — the claim also freezes its mapping and its old blocks, since
  // republish/swap paths check the flag) and pin the DRAM capacity.
  {
    std::unique_lock lock(*storage_mu_);
    BandanaTable& table = checked_table(t);
    if (republish_in_flight_[t]) {
      throw std::logic_error(
          "begin_trickle_republish: a session for this table is already "
          "active");
    }
    if (values.num_vectors() != table.num_vectors() ||
        values.vector_bytes() != config_.vector_bytes) {
      throw std::invalid_argument(
          "begin_trickle_republish: values shape mismatch");
    }
    if (plan.layout.num_vectors() != table.num_vectors() ||
        plan.layout.vectors_per_block() != config_.vectors_per_block()) {
      throw std::invalid_argument(
          "begin_trickle_republish: layout shape mismatch");
    }
    // Online retraining re-packs and re-tunes admission; it does not
    // re-size the table's DRAM slab.
    plan.policy.cache_vectors = table.policy().cache_vectors;
    republish_in_flight_[t] = 1;
  }
  try {
    return begin_trickle_claimed(t, values, std::move(plan), republish_cfg,
                                 day);
  } catch (...) {
    std::unique_lock lock(*storage_mu_);
    republish_in_flight_[t] = 0;
    throw;
  }
}

TrickleRepublish Store::begin_trickle_claimed(
    TableId t, const EmbeddingTable& values, TablePlan plan,
    const RepublishConfig& republish_cfg, double day) {
  auto s = std::make_unique<detail::TrickleState>(this, t, republish_cfg, day);

  // Plan diff: compose every block of the new plan and byte-compare it
  // with the block currently serving that local index. Unchanged blocks
  // keep their storage block and cost no device writes. Changed blocks get
  // replacement storage: never the old block, which must stay valid for
  // lookups until the swap. This is O(table) real I/O, so it runs under
  // the SHARED lock — the in_flight claim keeps the old mapping and its
  // blocks immutable, and serving reads proceed concurrently instead of
  // stalling behind a full-table diff.
  BandanaTable* table = nullptr;
  std::vector<BlockId> old_map;
  const std::uint32_t new_blocks = plan.layout.num_blocks();
  std::vector<BlockId> block_map(new_blocks, 0);
  std::vector<BlockId>& changed = s->changed;
  std::vector<std::byte> fresh(config_.block_bytes);
  std::vector<std::byte> current(config_.block_bytes);
  s->values = &values;
  {
    std::shared_lock lock(*storage_mu_);
    // The table pointer is stable for the store's lifetime (tables_ holds
    // unique_ptrs), but the vector itself must be indexed under a lock —
    // a concurrent add_table may reallocate it.
    table = tables_[t].get();
    old_map = table->block_map();
    const auto old_blocks = static_cast<std::uint32_t>(old_map.size());
    for (BlockId b = 0; b < new_blocks; ++b) {
      compose_block_bytes(plan.layout, values, b, config_.vector_bytes,
                          fresh);
      bool same = false;
      if (b < old_blocks) {
        storage_->read_block(old_map[b], current);
        same = fresh == current;
      }
      if (same) {
        block_map[b] = old_map[b];
        ++s->skipped;
        continue;
      }
      // The image is NOT buffered: pump() re-composes it lazily from the
      // caller's values when this block's wave goes out (O(wave) DRAM).
      changed.push_back(b);
      s->changed_vectors += plan.layout.block_members(b).size();
    }
  }

  std::unique_lock lock(*storage_mu_);
  if (changed.empty()) {
    // Identical plan: nothing to write. If even the layout is unchanged
    // the push is a complete no-op (warm cache, no swap); a byte-identical
    // permutation still installs the new mapping. (changed.empty() implies
    // every new block matched an old one, so a block-count mismatch always
    // lands in count_changed_blocks.)
    if (count_changed_blocks(table->layout(), plan.layout) != 0) {
      const auto freed = table->swap_state(
          {std::move(plan.layout), std::move(block_map),
           std::move(plan.access_counts), plan.policy});
      auto& fl = free_blocks_[t];
      fl.insert(fl.end(), freed.begin(), freed.end());
      staging_metrics_->mapping_swaps.fetch_add(1, std::memory_order_relaxed);
      s->installed_mapping = true;
    }
    record_empty_write_wave();
    republish_in_flight_[t] = 0;
    s->swapped = true;
    if (s->installed_mapping) {
      // The installed permutation changes the durable mapping even though
      // no block bytes moved — commit it like any other swap.
      std::lock_guard mlock(*manifest_mu_);
      ++trickle_epoch_;
      commit_manifest_mlocked();
    }
    return TrickleRepublish(std::move(s));
  }

  // Allocate replacement blocks: recycle the table's previously retired
  // blocks first (double buffering), then grow storage once for the rest.
  auto& fl = free_blocks_[t];
  const std::uint64_t deficit =
      changed.size() > fl.size() ? changed.size() - fl.size() : 0;
  if (deficit > 0) {
    ensure_capacity(std::uint64_t{next_block_} + deficit);
  }
  s->targets.reserve(changed.size());
  for (const std::uint32_t b : changed) {
    BlockId g;
    if (!fl.empty()) {
      g = fl.back();
      fl.pop_back();
    } else {
      g = next_block_++;
    }
    s->targets.push_back(g);
    block_map[b] = g;
  }
  s->next.emplace(BandanaTable::RetrainedState{
      std::move(plan.layout), std::move(block_map),
      std::move(plan.access_counts), plan.policy});
  return TrickleRepublish(std::move(s));
}

std::size_t Store::pump_trickle(detail::TrickleState& s) {
  std::lock_guard session_lock(s.mu);
  if (s.swapped) return 0;
  const std::uint64_t total = s.targets.size();
  std::uint64_t n = 0;
  if (s.written < total) {
    const double now = now_us();
    n = std::min<std::uint64_t>(s.limiter.allowance(now), total - s.written);
    if (n == 0) return 0;
    {
      // Shared lock: the wave writes only blocks no current mapping
      // references, so it runs concurrently with serving reads — the only
      // contention is the one the device model charges for (the write
      // events below on the shared channel FIFOs).
      std::shared_lock storage_lock(*storage_mu_);
      // Lazy per-wave composition: the allowance (possibly the whole
      // remaining push when the rate is unlimited) is chunked to the
      // admission wave, each chunk's images composed from the caller's
      // values into ONE wave buffer — leased from the backend's
      // registered pool when available — and flushed as a single batched
      // write. Session DRAM never exceeds one wave of images.
      const std::size_t bb = config_.block_bytes;
      const std::uint64_t chunk =
          std::min<std::uint64_t>(n, real_write_wave_blocks());
      const BlockLayout& layout = s.next->layout;
      auto lease = storage_->lease_wave_buffer(chunk * bb);
      std::vector<std::byte> heap;
      std::span<std::byte> buf;
      if (lease) {
        buf = lease.bytes().first(chunk * bb);
      } else {
        heap.resize(chunk * bb);
        buf = heap;
      }
      std::vector<BlockWriteOp> ops;
      ops.reserve(static_cast<std::size_t>(chunk));
      for (std::uint64_t c0 = 0; c0 < n; c0 += chunk) {
        const std::uint64_t m = std::min(chunk, n - c0);
        ops.clear();
        for (std::uint64_t i = 0; i < m; ++i) {
          const std::uint64_t k = s.written + c0 + i;
          const auto img = buf.subspan(i * bb, bb);
          compose_block_bytes(layout, *s.values, s.changed[k],
                              config_.vector_bytes, img);
          ops.push_back({s.targets[k], img});
        }
        storage_->write_blocks(ops);
        staging_metrics_->write_batches.fetch_add(1,
                                                  std::memory_order_relaxed);
        s.peak_wave_bytes = std::max<std::uint64_t>(s.peak_wave_bytes,
                                                    m * bb);
      }
      // Endurance mutations and reads all serialize on the timing lock
      // (pumps of different tables run concurrently under the shared
      // storage lock, and endurance() may be polled at any time).
      std::lock_guard timing_lock(*timing_mu_);
      endurance_.record_write(n * config_.block_bytes, s.day);
    }
    s.limiter.consume(now, n);
    schedule_writes(n, /*advance_clock=*/false);
    s.written += n;
    ++s.waves;
  }
  if (s.written == total) finish_trickle(s);
  return static_cast<std::size_t>(n);
}

void Store::finish_trickle(detail::TrickleState& s) {
  // Shared lock: the swap itself synchronizes with lookups through the
  // table's shard locks; we only need to exclude storage-map mutators.
  // The manifest lock serializes this swap + free-list update with any
  // concurrent manifest compose (another table's finishing session, an
  // incremental add_table's commit) so every committed manifest captures a
  // consistent multi-table snapshot.
  std::shared_lock storage_lock(*storage_mu_);
  std::lock_guard mlock(*manifest_mu_);
  BandanaTable& table = *tables_[s.table];
  auto freed = table.swap_state(std::move(*s.next));
  s.next.reset();
  table.note_republished(s.changed_vectors);
  auto& fl = free_blocks_[s.table];
  fl.insert(fl.end(), freed.begin(), freed.end());
  staging_metrics_->mapping_swaps.fetch_add(1, std::memory_order_relaxed);
  republish_in_flight_[s.table] = 0;
  s.installed_mapping = true;
  s.swapped = true;
  ++trickle_epoch_;
  // Durable commit of the swap: replacement blocks were written to storage
  // blocks no committed manifest references (freshly grown, or freed by an
  // earlier COMMITTED swap), so until this commit's rename lands the
  // durable state is entirely the old plan; after it, entirely the new one.
  // If the commit throws, the in-memory store keeps serving the new plan
  // while the durable state stays on the old plan — crash-consistent
  // either way; the next successful commit re-converges them.
  commit_manifest_mlocked();
}

void Store::abandon_trickle(detail::TrickleState& s) noexcept {
  try {
    std::lock_guard session_lock(s.mu);
    if (s.swapped) return;
    std::unique_lock lock(*storage_mu_);
    // The replacement blocks were written (or reserved) but never became
    // reachable: recycle them and leave the table on the old plan.
    auto& fl = free_blocks_[s.table];
    fl.insert(fl.end(), s.targets.begin(), s.targets.end());
    republish_in_flight_[s.table] = 0;
    s.swapped = true;
  } catch (...) {
    // Destructor context: losing the recycled blocks is survivable
    // (storage grows a little on the next push); crashing is not.
  }
}

// --- Cross-node migration primitives (cluster/rebalance.h) ---------------

void Store::claim_table_for_migration(TableId t) {
  std::unique_lock lock(*storage_mu_);
  checked_table(t);  // throws on bad id / retired table
  if (republish_in_flight_[t]) {
    throw std::logic_error(
        "claim_table_for_migration: a session for this table is already "
        "active");
  }
  republish_in_flight_[t] = 1;
}

void Store::release_table_claim(TableId t) noexcept {
  try {
    std::unique_lock lock(*storage_mu_);
    if (t < republish_in_flight_.size()) republish_in_flight_[t] = 0;
  } catch (...) {
    // Destructor context (RebalanceSession unwind): a leaked claim only
    // blocks future sessions on this table; crashing is worse.
  }
}

BandanaTable::RetrainedState Store::migration_snapshot(TableId t) const {
  std::shared_lock lock(*storage_mu_);
  const BandanaTable& table = checked_table(t);
  if (!republish_in_flight_[t]) {
    throw std::logic_error(
        "migration_snapshot: requires claim_table_for_migration");
  }
  // The claim excludes mapping swaps, so this snapshot stays byte-accurate
  // for the whole read-out stream that follows.
  return table.mapping_snapshot();
}

void Store::read_table_blocks(TableId t, std::uint32_t first_block,
                              std::uint32_t count, std::span<std::byte> out) {
  {
    std::shared_lock lock(*storage_mu_);
    const BandanaTable& table = checked_table(t);
    if (!republish_in_flight_[t]) {
      throw std::logic_error(
          "read_table_blocks: requires claim_table_for_migration");
    }
    const std::size_t bb = config_.block_bytes;
    if (out.size() < std::size_t{count} * bb) {
      throw std::invalid_argument("read_table_blocks: output span too small");
    }
    const std::vector<BlockId> map = table.block_map();
    if (std::uint64_t{first_block} + count > map.size()) {
      throw std::out_of_range("read_table_blocks: range past table end");
    }
    if (count == 0) return;
    // Batched read-out chunked to the admission wave: the donor's stream
    // traffic holds the same gate slots as serving reads would, never more.
    const std::uint64_t wave = real_write_wave_blocks();
    std::vector<BlockReadOp> ops;
    ops.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(wave, count)));
    for (std::uint64_t c0 = 0; c0 < count; c0 += wave) {
      const std::uint64_t n = std::min<std::uint64_t>(wave, count - c0);
      ops.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        ops.push_back({map[first_block + c0 + i],
                       out.subspan((c0 + i) * bb, bb)});
      }
      storage_->read_blocks(ops);
    }
  }
  staging_metrics_->migration_read_blocks.fetch_add(count,
                                                    std::memory_order_relaxed);
  // Open loop: migration read-out is background traffic; its reads stay
  // queued on the channels at the current clock so concurrent serving sees
  // the interference (bench_cluster during-migration sweep).
  schedule_reads(count, migration_latency_, /*advance_clock=*/false);
}

std::vector<BlockId> Store::allocate_blocks(std::uint64_t count) {
  std::vector<BlockId> out;
  out.reserve(static_cast<std::size_t>(count));
  while (out.size() < count && !free_pool_.empty()) {
    out.push_back(free_pool_.back());
    free_pool_.pop_back();
  }
  const std::uint64_t grow = count - out.size();
  if (grow > 0) {
    ensure_capacity(std::uint64_t{next_block_} + grow);
    for (std::uint64_t i = 0; i < grow; ++i) out.push_back(next_block_++);
  }
  return out;
}

TableInstall Store::begin_table_install(
    BlockLayout layout, TablePolicy policy,
    std::vector<std::uint32_t> access_counts) {
  if (layout.vectors_per_block() != config_.vectors_per_block()) {
    throw std::invalid_argument(
        "begin_table_install: layout vectors_per_block disagrees with the "
        "store geometry");
  }
  // Mirror the table ctor's contract: counts are optional (empty) unless
  // the policy needs them, and must match the layout when present.
  if (!access_counts.empty() && access_counts.size() != layout.num_vectors()) {
    throw std::invalid_argument(
        "begin_table_install: access_counts shape mismatch");
  }
  if (policy.policy == PrefetchPolicy::kThreshold && access_counts.empty()) {
    throw std::invalid_argument(
        "begin_table_install: kThreshold requires per-vector access counts");
  }
  auto s = std::make_unique<detail::InstallState>();
  s->store = this;
  s->policy = policy;
  const std::uint32_t blocks = layout.num_blocks();
  s->layout.emplace(std::move(layout));
  s->access_counts = std::move(access_counts);

  std::unique_lock lock(*storage_mu_);
  s->id = ++next_install_id_;
  s->blocks = allocate_blocks(blocks);
  pending_installs_.emplace_back(s->id, s->blocks);
  try {
    // The pending record becomes durable BEFORE any byte streams: a crash
    // mid-install reopens to a manifest that knows the reserved blocks are
    // reclaimable garbage and knows NO table — recovery serves entirely
    // from the donor copy.
    commit_manifest();
  } catch (...) {
    free_pool_.insert(free_pool_.end(), s->blocks.begin(), s->blocks.end());
    pending_installs_.pop_back();
    throw;
  }
  return TableInstall(std::move(s));
}

std::size_t Store::install_write(detail::InstallState& s, std::uint32_t first,
                                 std::span<const std::byte> bytes) {
  std::lock_guard session_lock(s.mu);
  if (s.finished) {
    throw std::logic_error("TableInstall: install already finished");
  }
  const std::size_t bb = config_.block_bytes;
  if (bytes.size() % bb != 0) {
    throw std::invalid_argument(
        "TableInstall: bytes must be whole block images");
  }
  const std::uint64_t count = bytes.size() / bb;
  if (std::uint64_t{first} + count > s.blocks.size()) {
    throw std::out_of_range("TableInstall: write past the reservation");
  }
  if (count == 0) return 0;
  {
    // Shared lock: the reserved blocks are referenced by no mapping, so
    // serving reads proceed concurrently; only storage-map mutators are
    // excluded. Zero-copy: the ops point straight into the caller's wave
    // buffer (the images were composed on the donor).
    std::shared_lock storage_lock(*storage_mu_);
    const std::uint64_t wave = real_write_wave_blocks();
    std::vector<BlockWriteOp> ops;
    ops.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(wave, count)));
    for (std::uint64_t c0 = 0; c0 < count; c0 += wave) {
      const std::uint64_t n = std::min<std::uint64_t>(wave, count - c0);
      ops.clear();
      for (std::uint64_t i = 0; i < n; ++i) {
        ops.push_back({s.blocks[first + c0 + i],
                       bytes.subspan((c0 + i) * bb, bb)});
      }
      storage_->write_blocks(ops);
      staging_metrics_->write_batches.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard timing_lock(*timing_mu_);
    endurance_.record_write(count * config_.block_bytes, 0.0);
  }
  staging_metrics_->migration_write_blocks.fetch_add(
      count, std::memory_order_relaxed);
  // Open loop: install waves are background write traffic on the target's
  // channels, contending with its serving reads (paper §2.2 interference).
  schedule_writes(count, /*advance_clock=*/false);
  s.written += count;
  ++s.waves;
  return static_cast<std::size_t>(count);
}

TableId Store::install_finish(detail::InstallState& s) {
  std::lock_guard session_lock(s.mu);
  if (s.finished) {
    throw std::logic_error("TableInstall: install already finished");
  }
  if (s.written < s.blocks.size()) {
    throw std::logic_error(
        "TableInstall: finish() before every reserved block was written");
  }
  std::unique_lock lock(*storage_mu_);
  // The restore ctor validates layout/map/count shapes against each other
  // and the config geometry, exactly as reopen does.
  auto table = std::make_unique<BandanaTable>(
      config_, s.policy, std::move(*s.layout), std::move(s.access_counts),
      /*first_block=*/s.blocks.empty() ? 0 : s.blocks.front(), s.blocks);
  tables_.push_back(std::move(table));
  free_blocks_.emplace_back();
  republish_in_flight_.push_back(0);
  retired_.push_back(0);
  for (auto it = pending_installs_.begin(); it != pending_installs_.end();
       ++it) {
    if (it->first == s.id) {
      pending_installs_.erase(it);
      break;
    }
  }
  s.finished = true;
  staging_metrics_->table_installs.fetch_add(1, std::memory_order_relaxed);
  // ONE commit flips both facts: the table exists and its pending record is
  // gone. Recovery sees "reclaimable blocks, no table" strictly before the
  // rename lands and "durable table" strictly after — never a half-table.
  commit_manifest();
  return static_cast<TableId>(tables_.size() - 1);
}

void Store::install_abandon(detail::InstallState& s) noexcept {
  try {
    std::lock_guard session_lock(s.mu);
    if (s.finished) return;
    std::unique_lock lock(*storage_mu_);
    free_pool_.insert(free_pool_.end(), s.blocks.begin(), s.blocks.end());
    for (auto it = pending_installs_.begin(); it != pending_installs_.end();
         ++it) {
      if (it->first == s.id) {
        pending_installs_.erase(it);
        break;
      }
    }
    s.finished = true;
    // Drop the pending record durably while the backend still cooperates.
    // If this commit throws (abandon often runs because storage died), the
    // durable record survives and reopen reclaims the blocks — idempotent.
    commit_manifest();
  } catch (...) {
    // Destructor context: a stale pending record or a leaked reservation
    // costs a little storage until the next reopen; crashing is worse.
  }
}

void Store::retire_table(TableId t) {
  std::unique_lock lock(*storage_mu_);
  if (t >= tables_.size()) {
    throw std::out_of_range("retire_table: bad table id " + std::to_string(t));
  }
  if (retired_[t]) return;  // idempotent
  // Reclaim everything the table references — its serving map and its
  // trickle replacement bank — into the store-wide pool for future
  // installs. The BandanaTable object stays (its slot keeps the TableId)
  // but checked_table refuses it from here on.
  const std::vector<BlockId> map = tables_[t]->block_map();
  free_pool_.insert(free_pool_.end(), map.begin(), map.end());
  auto& fl = free_blocks_[t];
  free_pool_.insert(free_pool_.end(), fl.begin(), fl.end());
  fl.clear();
  retired_[t] = 1;
  // Terminal: retiring clears the table's claim bit (the migration's own
  // read-out claim — no trickle session can coexist with it).
  republish_in_flight_[t] = 0;
  staging_metrics_->tables_retired.fetch_add(1, std::memory_order_relaxed);
  // Donor-retire-LAST ordering (cluster/rebalance.h): by the time this
  // commit runs, the target's copy is durable and the placement flipped —
  // a crash on either side of this rename leaves a servable placement with
  // at least one committed replica of every vector.
  commit_manifest();
}

bool Store::table_retired(TableId t) const {
  std::shared_lock lock(*storage_mu_);
  if (t >= tables_.size()) {
    throw std::out_of_range("table_retired: bad table id " +
                            std::to_string(t));
  }
  return retired_[t] != 0;
}

TrickleRepublish::TrickleRepublish(std::unique_ptr<detail::TrickleState> state)
    : state_(std::move(state)) {}

TrickleRepublish::TrickleRepublish(TrickleRepublish&& other) noexcept = default;

TrickleRepublish& TrickleRepublish::operator=(
    TrickleRepublish&& other) noexcept {
  if (this != &other) {
    if (state_) state_->store->abandon_trickle(*state_);
    state_ = std::move(other.state_);
  }
  return *this;
}

TrickleRepublish::~TrickleRepublish() {
  if (state_) state_->store->abandon_trickle(*state_);
}

std::size_t TrickleRepublish::pump() {
  return state_ ? state_->store->pump_trickle(*state_) : 0;
}

bool TrickleRepublish::done() const {
  if (!state_) return true;
  std::lock_guard lock(state_->mu);
  return state_->swapped;
}

bool TrickleRepublish::mapping_swapped() const {
  if (!state_) return false;
  std::lock_guard lock(state_->mu);
  return state_->installed_mapping;
}

TableId TrickleRepublish::table() const {
  return state_ ? state_->table : TableId{0};
}

std::uint64_t TrickleRepublish::total_blocks() const {
  return state_ ? state_->targets.size() : 0;
}

std::uint64_t TrickleRepublish::written_blocks() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->written;
}

std::uint64_t TrickleRepublish::skipped_blocks() const {
  return state_ ? state_->skipped : 0;
}

std::uint64_t TrickleRepublish::waves() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->waves;
}

std::uint64_t TrickleRepublish::peak_wave_bytes() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->peak_wave_bytes;
}

TableInstall::TableInstall(std::unique_ptr<detail::InstallState> state)
    : state_(std::move(state)) {}

TableInstall::TableInstall(TableInstall&& other) noexcept = default;

TableInstall& TableInstall::operator=(TableInstall&& other) noexcept {
  if (this != &other) {
    if (state_) state_->store->install_abandon(*state_);
    state_ = std::move(other.state_);
  }
  return *this;
}

TableInstall::~TableInstall() {
  if (state_) state_->store->install_abandon(*state_);
}

std::size_t TableInstall::write_blocks(std::uint32_t first,
                                       std::span<const std::byte> bytes) {
  if (!state_) throw std::logic_error("TableInstall: moved-from handle");
  return state_->store->install_write(*state_, first, bytes);
}

TableId TableInstall::finish() {
  if (!state_) throw std::logic_error("TableInstall: moved-from handle");
  return state_->store->install_finish(*state_);
}

std::uint32_t TableInstall::total_blocks() const {
  return state_ ? static_cast<std::uint32_t>(state_->blocks.size()) : 0;
}

std::uint64_t TableInstall::written_blocks() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->written;
}

std::uint64_t TableInstall::waves() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->waves;
}

TableMetrics Store::table_metrics(TableId t) const {
  return checked_table(t).metrics();
}

const BandanaTable& Store::table(TableId t) const {
  return checked_table(t);
}

TableMetrics Store::total_metrics() const {
  TableMetrics total;
  for (const auto& table : tables_) total.merge(table->metrics());
  return total;
}

LatencyRecorder Store::query_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return query_latency_;
}

LatencyRecorder Store::request_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return request_latency_;
}

LatencyRecorder Store::write_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return write_latency_;
}

LatencyRecorder Store::migration_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return migration_latency_;
}

EnduranceTracker Store::endurance() const {
  std::lock_guard lock(*timing_mu_);
  return endurance_;
}

std::size_t Store::reclaim_retired_states() {
  std::shared_lock lock(*storage_mu_);
  std::size_t freed = 0;
  for (const auto& table : tables_) freed += table->reclaim_retired();
  return freed;
}

std::size_t Store::retired_states() const {
  std::shared_lock lock(*storage_mu_);
  std::size_t n = 0;
  for (const auto& table : tables_) n += table->retired_count();
  return n;
}

void Store::advance_time_us(double delta) {
  std::lock_guard lock(*timing_mu_);
  now_us_ += delta;
}

double Store::now_us() const {
  std::lock_guard lock(*timing_mu_);
  return now_us_;
}

}  // namespace bandana
