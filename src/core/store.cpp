#include "core/store.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "core/store_builder.h"
#include "core/trainer.h"

namespace bandana {

namespace {
/// Chunk size for streaming published blocks into grown storage: 16 MB of
/// 4 KB blocks, so growth never buffers the whole old storage in memory.
constexpr std::uint64_t kGrowthChunkBlocks = 4096;

/// Cap on blocks staged per batched-read fetch (16 MB of 4 KB blocks).
/// The admission waves bound in-flight device I/O; this bounds the
/// staging buffer itself. Misses beyond the cap are counted
/// (StoreMetrics::stage_truncated_blocks) and their lookups defer to
/// bounded retry waves — never to inline single-block reads.
constexpr std::size_t kMaxStagedBlocks = 4096;
}  // namespace

Store::Store(StoreConfig config, std::uint64_t seed)
    : Store(config, memory_storage_factory(), seed) {}

Store::Store(StoreConfig config, BlockStorageFactory storage_factory,
             std::uint64_t seed)
    : config_(config),
      storage_factory_(std::move(storage_factory)),
      storage_mu_(std::make_unique<std::shared_mutex>()),
      timing_mu_(std::make_unique<std::mutex>()),
      engine_(config.device, seed),
      endurance_(config.device.capacity_blocks * config.device.block_bytes,
                 config.device.endurance_dwpd),
      staging_metrics_(std::make_unique<AtomicStoreMetrics>()) {
  if (config_.block_bytes % config_.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
  if (!storage_factory_) {
    throw std::invalid_argument("Store: null storage factory");
  }
}

Store Store::from_plan(const StoreConfig& config, const StorePlan& plan,
                       std::span<const EmbeddingTable> tables,
                       BlockStorageFactory storage_factory,
                       std::uint64_t seed) {
  StoreBuilder builder(config);
  builder.seed(seed);
  if (storage_factory) builder.storage(std::move(storage_factory));
  return builder.add_plan(plan, tables).build();
}

void Store::ensure_capacity(std::uint64_t total_blocks) {
  if (storage_ && storage_->num_blocks() >= total_blocks) return;
  const std::uint64_t used = next_block_;
  // Sample the first and last published blocks BEFORE the factory runs:
  // they re-verify the factory's preserve-on-regrowth contract below (a
  // legacy truncate-on-invocation factory would otherwise zero published
  // data silently — better to fail loudly).
  std::vector<std::byte> first_probe, last_probe;
  if (storage_ && used > 0) {
    first_probe.resize(config_.block_bytes);
    last_probe.resize(config_.block_bytes);
    storage_->read_block(0, first_probe);
    storage_->read_block(static_cast<BlockId>(used - 1), last_probe);
  }
  // If the factory throws, the store keeps serving from its old storage
  // untouched: factories preserve existing contents on re-creation (a
  // same-path file factory reopens without truncating), so nothing needs
  // draining or restoring up front.
  auto grown = storage_factory_(total_blocks, config_.block_bytes);
  if (!grown || grown->num_blocks() < total_blocks ||
      grown->block_bytes() != config_.block_bytes) {
    throw std::runtime_error("Store: storage factory produced bad geometry");
  }
  if (storage_ && used > 0) {
    if (!grown->same_backing(*storage_)) {
      // Distinct backends: migrate the published blocks in bounded chunks —
      // a 375 GB file-backed store must never be buffered wholesale through
      // memory. (Same-backing growth resized in place; nothing to copy.)
      const std::uint64_t chunk_blocks = std::min(used, kGrowthChunkBlocks);
      std::vector<std::byte> buf(chunk_blocks * config_.block_bytes);
      for (std::uint64_t b0 = 0; b0 < used; b0 += chunk_blocks) {
        const std::uint64_t n = std::min(chunk_blocks, used - b0);
        for (std::uint64_t i = 0; i < n; ++i) {
          const auto block = std::span<std::byte>(buf).subspan(
              i * config_.block_bytes, config_.block_bytes);
          storage_->read_block(static_cast<BlockId>(b0 + i), block);
          grown->write_block(static_cast<BlockId>(b0 + i), block);
        }
      }
      // Growth migration rewrites every published block: those writes
      // occupy the device channels like any other write traffic. Closed
      // loop — growth is setup, drained before serving resumes.
      schedule_writes(used, /*advance_clock=*/true);
    }
    std::vector<std::byte> check(config_.block_bytes);
    grown->read_block(0, check);
    bool ok = check == first_probe;
    if (ok) {
      grown->read_block(static_cast<BlockId>(used - 1), check);
      ok = check == last_probe;
    }
    if (!ok) {
      throw std::runtime_error(
          "Store: storage factory lost published blocks on growth — "
          "factories must preserve existing contents when re-invoked "
          "(see BlockStorageFactory)");
    }
  }
  storage_ = std::move(grown);
}

void Store::reserve_blocks(std::uint64_t total_blocks) {
  std::unique_lock lock(*storage_mu_);
  ensure_capacity(total_blocks);
}

TableId Store::add_table(const EmbeddingTable& values, BlockLayout layout,
                         TablePolicy policy,
                         std::vector<std::uint32_t> access_counts) {
  std::unique_lock lock(*storage_mu_);
  const std::uint32_t blocks = layout.num_blocks();
  auto table = std::make_unique<BandanaTable>(
      config_, policy, std::move(layout), std::move(access_counts),
      /*first_block=*/next_block_);
  ensure_capacity(std::uint64_t{next_block_} + blocks);
  table->publish(values, *storage_);
  endurance_.record_write(std::uint64_t{blocks} * config_.block_bytes, 0.0);
  // The publish wave's writes go through the engine's channel FIFOs,
  // closed loop: the table only serves once its blocks have landed, so
  // the backlog drains before the first read arrives.
  schedule_writes(blocks, /*advance_clock=*/true);

  tables_.push_back(std::move(table));
  next_block_ += blocks;
  return static_cast<TableId>(tables_.size() - 1);
}

const BandanaTable& Store::checked_table(TableId t) const {
  if (t >= tables_.size()) {
    throw std::out_of_range("Store: bad table id " + std::to_string(t));
  }
  return *tables_[t];
}

double Store::schedule_reads(std::uint64_t reads, LatencyRecorder& recorder,
                             bool advance_clock, double arrival_us) {
  if (!config_.simulate_timing) return 0.0;
  std::lock_guard lock(*timing_mu_);
  // All of the request's block reads arrive together as one admission wave
  // into the event-driven engine: the gate caps outstanding reads at
  // queue_depth * channels, and each read joins the per-channel FIFO that
  // drains first — so latency grows with the request's own queue depth
  // (paper Fig. 2) and with channel backlog left by earlier requests.
  const double start = arrival_us < 0.0 ? now_us_ : arrival_us;
  const double max_done = engine_.submit_wave(start, reads);
  const double latency = max_done - start;
  recorder.add(latency);
  // Closed loop (lookup_batch): the caller waits for the query, so the
  // clock moves to its completion. Open loop (multi_get): arrivals are
  // paced by the caller via advance_time_us, so the clock stays at the
  // arrival time and overload shows up as channel backlog (paper Fig. 5).
  if (advance_clock) now_us_ = max_done;
  return latency;
}

double Store::schedule_writes(std::uint64_t writes, bool advance_clock) {
  if (!config_.simulate_timing || writes == 0) return 0.0;
  std::lock_guard lock(*timing_mu_);
  // Publish/republish block writes are one admission wave of
  // IoKind::kWrite events: they join the same per-channel FIFOs and hold
  // the same queue_depth x channels gate slots as reads, so write traffic
  // contends with read traffic exactly as the device's shared submission
  // queue would (paper §2.2). Closed loop drains the backlog (initial
  // publish / growth: setup completes before serving); open loop leaves
  // it on the channels (live republish: the Fig. 5 interference).
  const double start = now_us_;
  const double max_done =
      engine_.submit_wave(start, writes, nullptr, IoKind::kWrite);
  const double latency = max_done - start;
  write_latency_.add(latency);
  if (advance_clock) now_us_ = max_done;
  return latency;
}

void Store::stage_miss_blocks(const BandanaTable& table,
                              std::span<const VectorId> ids,
                              StagedBlockReads& staged) const {
  for (const VectorId v : ids) {
    if (table.is_cached(v)) continue;
    const BlockId b = table.global_block_of(v);
    if (staged.contains(b)) continue;
    if (staged.size() >= kMaxStagedBlocks) {
      // Not staged: the lookup will defer to a retry wave. Counted per
      // sighting (not deduplicated among the truncated tail) — a visibility
      // signal, not an exact block count; retry_blocks is the exact one.
      staging_metrics_->stage_truncated_blocks.fetch_add(
          1, std::memory_order_relaxed);
      continue;
    }
    staged.add(b);
  }
}

void Store::fetch_retry_blocks(StagedBlockReads& retry,
                               std::size_t lookups) const {
  retry.fetch(*storage_, real_read_wave_blocks());
  staging_metrics_->retry_waves.fetch_add(1, std::memory_order_relaxed);
  staging_metrics_->retry_blocks.fetch_add(retry.size(),
                                           std::memory_order_relaxed);
  staging_metrics_->deferred_lookups.fetch_add(lookups,
                                               std::memory_order_relaxed);
}

void Store::serve_deferred(
    std::vector<DeferredLookup>& deferred,
    const std::function<void(std::size_t, const BandanaTable::LookupOutcome&)>&
        account) {
  // Blocks evicted between the staging peek and their lookup (or truncated
  // at the staging cap) are re-fetched through the same batched seam, in
  // bounded waves. A retried lookup cannot defer again: its block is in
  // the retry set, and lookups consume staged bytes under the shard lock.
  while (!deferred.empty()) {
    StagedBlockReads retry;
    std::size_t taken = 0;
    while (taken < deferred.size()) {
      const DeferredLookup& d = deferred[taken];
      const BlockId b = d.table->global_block_of(d.id);
      if (!retry.contains(b) && retry.size() >= kMaxStagedBlocks) break;
      retry.add(b);
      ++taken;
    }
    fetch_retry_blocks(retry, taken);
    for (std::size_t k = 0; k < taken; ++k) {
      const DeferredLookup& d = deferred[k];
      const auto outcome = d.table->lookup(d.id, *storage_, d.out, d.epoch,
                                           &retry, /*staged_only=*/true);
      assert(!outcome.deferred);
      account(d.tag, outcome);
    }
    deferred.erase(deferred.begin(),
                   deferred.begin() + static_cast<std::ptrdiff_t>(taken));
  }
}

std::uint64_t Store::real_read_wave_blocks() const {
  return std::uint64_t{config_.device.queue_depth} * config_.device.channels;
}

double Store::lookup_batch(TableId t, std::span<const VectorId> ids,
                           std::span<std::byte> out) {
  std::shared_lock storage_lock(*storage_mu_);
  BandanaTable& table = checked_table(t);
  const std::size_t vb = config_.vector_bytes;
  if (out.size() < ids.size() * vb) {
    throw std::invalid_argument("lookup_batch: output span too small");
  }
  const std::uint32_t num_vectors = table.num_vectors();
  for (const VectorId v : ids) {
    if (v >= num_vectors) {
      throw std::out_of_range("lookup_batch: bad vector id " +
                              std::to_string(v));
    }
  }
  // Overlapped-read backends: fetch the query's miss blocks up front in
  // admission-sized waves, so real I/O is batched instead of one pread per
  // miss inside the lookup loop. staged_only lookups never fall back to an
  // inline read — an unstaged miss defers to the retry waves below.
  StagedBlockReads staged;
  const bool stage = storage_->prefers_batched_reads();
  if (stage) {
    stage_miss_blocks(table, ids, staged);
    staged.fetch(*storage_, real_read_wave_blocks());
    staging_metrics_->staged_blocks.fetch_add(staged.size(),
                                              std::memory_order_relaxed);
  }
  std::uint64_t reads = 0;
  const std::uint64_t epoch = table.begin_batch();
  std::vector<DeferredLookup> deferred;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto outcome = table.lookup(ids[i], *storage_,
                                      out.subspan(i * vb, vb), epoch,
                                      stage ? &staged : nullptr,
                                      /*staged_only=*/stage);
    if (outcome.deferred) {
      deferred.push_back({&table, ids[i], out.subspan(i * vb, vb), epoch, i});
      continue;
    }
    if (outcome.nvm_read) ++reads;
  }
  serve_deferred(deferred,
                 [&](std::size_t, const BandanaTable::LookupOutcome& o) {
                   if (o.nvm_read) ++reads;
                 });
  return schedule_reads(reads, query_latency_, /*advance_clock=*/true);
}

double Store::lookup(TableId t, VectorId v, std::span<std::byte> out) {
  const VectorId ids[1] = {v};
  return lookup_batch(t, ids, out);
}

MultiGetResult Store::multi_get(const MultiGetRequest& request) {
  std::shared_lock storage_lock(*storage_mu_);
  return multi_get_impl(request, /*arrival_us=*/-1.0);
}

MultiGetResult Store::multi_get_impl(const MultiGetRequest& request,
                                     double arrival_us) {
  const std::size_t vb = config_.vector_bytes;
  // Validate the whole request up front so a bad entry cannot leave it
  // half-served (and half-counted in the metrics).
  for (const auto& get : request.gets) {
    const BandanaTable& table = checked_table(get.table);
    const std::uint32_t num_vectors = table.num_vectors();
    for (const VectorId v : get.ids) {
      if (v >= num_vectors) {
        throw std::out_of_range("multi_get: bad vector id " +
                                std::to_string(v) + " for table " +
                                std::to_string(get.table));
      }
    }
  }

  // Overlapped-read backends: one staging pass over the whole request
  // collects every block the lookups will miss on (deduplicated across
  // tables and repeated id lists) and fetches them as admission-sized
  // batched waves — the request's real I/O overlaps exactly like its
  // simulated channel reads do. staged_only lookups never fall back to an
  // inline read: an unstaged miss defers to the retry waves below.
  StagedBlockReads staged;
  const bool stage = storage_->prefers_batched_reads();
  if (stage) {
    for (const auto& get : request.gets) {
      stage_miss_blocks(*tables_[get.table], get.ids, staged);
    }
    staged.fetch(*storage_, real_read_wave_blocks());
    staging_metrics_->staged_blocks.fetch_add(staged.size(),
                                              std::memory_order_relaxed);
  }

  MultiGetResult result;
  result.vectors.resize(request.gets.size());
  result.per_table.resize(request.gets.size());
  // One dedup epoch per distinct table per request: a block read by an
  // earlier id list (even of the same table appearing twice) is not
  // re-counted. Lookups lock only the touched cache shard, so concurrent
  // requests to the same table interleave freely.
  std::vector<std::pair<TableId, std::uint64_t>> request_epochs;
  std::vector<DeferredLookup> deferred;
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    const auto& get = request.gets[g];
    BandanaTable& table = *tables_[get.table];
    auto& bytes = result.vectors[g];
    auto& stats = result.per_table[g];
    bytes.resize(get.ids.size() * vb);

    std::uint64_t epoch = 0;
    const auto known =
        std::find_if(request_epochs.begin(), request_epochs.end(),
                     [&](const auto& e) { return e.first == get.table; });
    if (known != request_epochs.end()) {
      epoch = known->second;
    } else {
      epoch = table.begin_batch();
      request_epochs.emplace_back(get.table, epoch);
    }
    for (std::size_t i = 0; i < get.ids.size(); ++i) {
      const auto outcome = table.lookup(
          get.ids[i], *storage_,
          std::span<std::byte>(bytes).subspan(i * vb, vb), epoch,
          stage ? &staged : nullptr, /*staged_only=*/stage);
      if (outcome.deferred) {
        // tag = get index: retry accounting lands on the right TableStats.
        deferred.push_back({&table, get.ids[i],
                            std::span<std::byte>(bytes).subspan(i * vb, vb),
                            epoch, g});
        continue;
      }
      if (outcome.hit) ++stats.hits;
      if (outcome.nvm_read) ++stats.block_reads;
    }
  }
  serve_deferred(deferred,
                 [&](std::size_t g, const BandanaTable::LookupOutcome& o) {
                   auto& stats = result.per_table[g];
                   if (o.hit) ++stats.hits;
                   if (o.nvm_read) ++stats.block_reads;
                 });
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    auto& stats = result.per_table[g];
    stats.misses = request.gets[g].ids.size() - stats.hits;
    result.block_reads += stats.block_reads;
  }
  result.service_latency_us =
      schedule_reads(result.block_reads, request_latency_,
                     /*advance_clock=*/false, arrival_us);
  return result;
}

std::future<MultiGetResult> Store::multi_get_async(MultiGetRequest request,
                                                   ThreadPool& pool) {
  auto promise = std::make_shared<std::promise<MultiGetResult>>();
  auto future = promise->get_future();
  auto owned = std::make_shared<MultiGetRequest>(std::move(request));
  // The request arrives NOW, even if the pool serves it later: capture the
  // timestamp so queued requests keep their true simulated arrival order.
  const double arrival_us = now_us();
  pool.submit([this, promise, owned, arrival_us] {
    try {
      std::shared_lock storage_lock(*storage_mu_);
      promise->set_value(multi_get_impl(*owned, arrival_us));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

double Store::republish(TableId t, const EmbeddingTable& values, double day) {
  std::unique_lock lock(*storage_mu_);
  BandanaTable& table = checked_table(t);
  table.republish(values, *storage_);
  endurance_.record_write(
      std::uint64_t{table.num_blocks()} * config_.block_bytes, day);
  // Open loop: a live republish is background retraining traffic. Its
  // writes stay queued on the channels and in the admission gate at the
  // current clock, so concurrent read requests see the paper's
  // mixed-traffic interference (bench_fig05 read-vs-mixed sweep).
  return schedule_writes(table.num_blocks(), /*advance_clock=*/false);
}

TableMetrics Store::table_metrics(TableId t) const {
  return checked_table(t).metrics();
}

const BandanaTable& Store::table(TableId t) const {
  return checked_table(t);
}

TableMetrics Store::total_metrics() const {
  TableMetrics total;
  for (const auto& table : tables_) total += table->metrics();
  return total;
}

LatencyRecorder Store::query_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return query_latency_;
}

LatencyRecorder Store::request_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return request_latency_;
}

LatencyRecorder Store::write_latency_us() const {
  std::lock_guard lock(*timing_mu_);
  return write_latency_;
}

void Store::advance_time_us(double delta) {
  std::lock_guard lock(*timing_mu_);
  now_us_ += delta;
}

double Store::now_us() const {
  std::lock_guard lock(*timing_mu_);
  return now_us_;
}

}  // namespace bandana
