#include "core/manifest.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

namespace bandana {
namespace {

// "BNDMNFST" little-endian.
constexpr std::uint64_t kMagic = 0x5453464e4d444e42ull;

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " +
                           std::system_category().message(errno));
}

// ---- serialization -------------------------------------------------------

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(std::uint8_t(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_bytes(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

template <typename T>
void put_u32_vec(std::vector<std::uint8_t>& out, const std::vector<T>& v) {
  static_assert(sizeof(T) == 4);
  put_u64(out, v.size());
  for (T x : v) put_u32(out, static_cast<std::uint32_t>(x));
}

std::vector<std::uint8_t> serialize_payload(const Manifest& m) {
  std::vector<std::uint8_t> out;
  put_u64(out, m.commit_seq);
  put_u64(out, m.trickle_epoch);
  put_u64(out, m.block_bytes);
  put_u64(out, m.vector_bytes);
  put_u64(out, m.vectors_per_block);
  put_u64(out, m.storage_blocks);
  put_u64(out, m.next_block);
  put_bytes(out, m.block_file);
  put_u64(out, m.tables.size());
  for (const ManifestTable& t : m.tables) {
    put_u32(out, t.first_block);
    put_u64(out, t.policy.cache_vectors);
    put_u32(out, static_cast<std::uint32_t>(t.policy.policy));
    put_u32(out, t.policy.access_threshold);
    put_f64(out, t.policy.insertion_position);
    put_f64(out, t.policy.shadow_multiplier);
    put_u32_vec(out, t.order);
    put_u32_vec(out, t.block_map);
    put_u32_vec(out, t.access_counts);
    put_u32_vec(out, t.free_blocks);
    put_u32(out, t.retired ? 1u : 0u);
  }
  put_u32_vec(out, m.free_pool);
  put_u64(out, m.pending_installs.size());
  for (const std::vector<BlockId>& blocks : m.pending_installs) {
    put_u32_vec(out, blocks);
  }
  return out;
}

// ---- bounds-checked deserialization --------------------------------------

// Cursor over the payload; every get_* either succeeds or flips `ok` and
// returns zero, so the parser can't read past a truncated buffer.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool ok = true;

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(data[pos - 4 + i]) << (8 * i);
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(data[pos - 8 + i]) << (8 * i);
    return v;
  }

  double get_f64() { return std::bit_cast<double>(get_u64()); }

  std::string get_bytes() {
    std::uint64_t n = get_u64();
    if (!take(n)) return {};
    return std::string(reinterpret_cast<const char*>(data + pos - n),
                       static_cast<std::size_t>(n));
  }

  template <typename T>
  std::vector<T> get_u32_vec() {
    static_assert(sizeof(T) == 4);
    std::uint64_t n = get_u64();
    // An element count can't exceed the bytes left to hold it.
    if (!ok || n > (size - pos) / 4) {
      ok = false;
      return {};
    }
    std::vector<T> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(static_cast<T>(get_u32()));
    return v;
  }

  bool take(std::uint64_t n) {
    if (!ok || n > size - pos) {
      ok = false;
      return false;
    }
    pos += static_cast<std::size_t>(n);
    return true;
  }
};

std::optional<Manifest> parse_payload(const std::uint8_t* data,
                                      std::size_t size, std::string* error) {
  Reader r{data, size};
  Manifest m;
  m.commit_seq = r.get_u64();
  m.trickle_epoch = r.get_u64();
  m.block_bytes = r.get_u64();
  m.vector_bytes = r.get_u64();
  m.vectors_per_block = r.get_u64();
  m.storage_blocks = r.get_u64();
  m.next_block = r.get_u64();
  m.block_file = r.get_bytes();
  std::uint64_t num_tables = r.get_u64();
  if (!r.ok || num_tables > (size - r.pos)) {
    if (error) *error = "manifest payload truncated";
    return std::nullopt;
  }
  m.tables.reserve(static_cast<std::size_t>(num_tables));
  for (std::uint64_t i = 0; i < num_tables && r.ok; ++i) {
    ManifestTable t;
    t.first_block = static_cast<BlockId>(r.get_u32());
    t.policy.cache_vectors = r.get_u64();
    t.policy.policy = static_cast<PrefetchPolicy>(r.get_u32());
    t.policy.access_threshold = r.get_u32();
    t.policy.insertion_position = r.get_f64();
    t.policy.shadow_multiplier = r.get_f64();
    t.order = r.get_u32_vec<VectorId>();
    t.block_map = r.get_u32_vec<BlockId>();
    t.access_counts = r.get_u32_vec<std::uint32_t>();
    t.free_blocks = r.get_u32_vec<BlockId>();
    t.retired = r.get_u32() != 0;
    m.tables.push_back(std::move(t));
  }
  m.free_pool = r.get_u32_vec<BlockId>();
  std::uint64_t num_pending = r.get_u64();
  if (!r.ok || num_pending > (size - r.pos)) {
    if (error) *error = "manifest payload truncated";
    return std::nullopt;
  }
  m.pending_installs.reserve(static_cast<std::size_t>(num_pending));
  for (std::uint64_t i = 0; i < num_pending && r.ok; ++i) {
    m.pending_installs.push_back(r.get_u32_vec<BlockId>());
  }
  if (!r.ok || r.pos != size) {
    if (error) *error = "manifest payload truncated or overlong";
    return std::nullopt;
  }
  return m;
}

// RAII fd so every error path closes.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("manifest write failed for " + path);
    }
    off += static_cast<std::size_t>(w);
  }
}

void fsync_path_dir(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  Fd d;
  d.fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (d.fd < 0) throw_errno("manifest directory open failed for " + dir);
  if (::fsync(d.fd) != 0)
    throw_errno("manifest directory fsync failed for " + dir);
}

}  // namespace

void write_manifest(const std::string& path, const Manifest& m,
                    const ManifestCommitHooks* hooks) {
  std::vector<std::uint8_t> payload = serialize_payload(m);
  std::vector<std::uint8_t> blob;
  blob.reserve(28 + payload.size());
  put_u64(blob, kMagic);
  put_u32(blob, kManifestVersion);
  put_u64(blob, payload.size());
  put_u64(blob, fnv1a64(payload.data(), payload.size()));
  blob.insert(blob.end(), payload.begin(), payload.end());

  const std::string tmp = path + ".tmp";
  {
    Fd f;
    f.fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (f.fd < 0) throw_errno("manifest tmp open failed for " + tmp);
    write_all(f.fd, blob.data(), blob.size(), tmp);
    if (::fsync(f.fd) != 0) throw_errno("manifest tmp fsync failed for " + tmp);
  }
  if (hooks && hooks->before_flip) hooks->before_flip();
  // The pointer flip: rename is atomic, so `path` transitions from the
  // previous complete manifest to the new complete one in one step.
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw_errno("manifest rename failed for " + path);
  if (hooks && hooks->after_flip) hooks->after_flip();
  fsync_path_dir(path);
}

std::optional<Manifest> load_manifest(const std::string& path,
                                      std::string* error) {
  Fd f;
  f.fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (f.fd < 0) {
    if (error) *error = "manifest open failed for " + path + ": " +
                        std::system_category().message(errno);
    return std::nullopt;
  }
  struct stat st{};
  if (::fstat(f.fd, &st) != 0 || st.st_size < 28) {
    if (error) *error = "manifest too small at " + path;
    return std::nullopt;
  }
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(st.st_size));
  std::size_t off = 0;
  while (off < blob.size()) {
    ssize_t r = ::read(f.fd, blob.data() + off, blob.size() - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error) *error = "manifest read failed for " + path + ": " +
                          std::system_category().message(errno);
      return std::nullopt;
    }
    if (r == 0) break;
    off += static_cast<std::size_t>(r);
  }
  if (off != blob.size()) {
    if (error) *error = "manifest short read at " + path;
    return std::nullopt;
  }

  Reader h{blob.data(), blob.size()};
  if (h.get_u64() != kMagic) {
    if (error) *error = "manifest bad magic at " + path;
    return std::nullopt;
  }
  std::uint32_t version = h.get_u32();
  if (version != kManifestVersion) {
    if (error)
      *error = "manifest version " + std::to_string(version) +
               " unsupported at " + path;
    return std::nullopt;
  }
  std::uint64_t payload_bytes = h.get_u64();
  std::uint64_t checksum = h.get_u64();
  if (!h.ok || payload_bytes != blob.size() - h.pos) {
    if (error) *error = "manifest payload length mismatch at " + path;
    return std::nullopt;
  }
  const std::uint8_t* payload = blob.data() + h.pos;
  if (fnv1a64(payload, static_cast<std::size_t>(payload_bytes)) != checksum) {
    if (error) *error = "manifest checksum mismatch at " + path;
    return std::nullopt;
  }
  return parse_payload(payload, static_cast<std::size_t>(payload_bytes), error);
}

bool manifest_valid(const std::string& path) {
  return load_manifest(path).has_value();
}

}  // namespace bandana
