// One-shot Store construction from trained TablePlans.
//
// The incremental Store::add_table path discovers the model's total block
// count one table at a time, forcing a copy-grow of the backing storage on
// every call. StoreBuilder consumes the Trainer's output directly, sums the
// block counts up front, allocates storage exactly once (which is what
// makes file backends practical — the file is created at final size), and
// publishes every table:
//
//   StorePlan plan = trainer.train(traces, sizes, &pool);
//   Store store = StoreBuilder(cfg)
//                     .seed(7)
//                     .file_storage("/mnt/nvm/blocks.bin")  // optional
//                     .add_plan(plan, tables)
//                     .build();
//
// Embedding values are held by reference: they must stay alive until
// build() returns. build() consumes the builder (call it once).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/store.h"
#include "core/trainer.h"
#include "nvm/async_file_storage.h"
#include "nvm/block_storage.h"
#include "trace/embedding_table.h"

namespace bandana {

class StoreBuilder {
 public:
  explicit StoreBuilder(StoreConfig config = {}) : config_(config) {}

  StoreBuilder& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  /// Back the store with an arbitrary BlockStorage implementation. A
  /// custom factory bypasses the builder's manifest routing: pass a
  /// manifest-aware factory yourself if you combine this with manifest().
  StoreBuilder& storage(BlockStorageFactory factory) {
    backend_ = Backend::kCustom;
    factory_ = std::move(factory);
    return *this;
  }

  /// Back the store with heap memory (the default).
  StoreBuilder& memory_storage() {
    backend_ = Backend::kMemory;
    factory_ = nullptr;
    return *this;
  }

  /// Back the store with a real file at `path` (created at build()).
  StoreBuilder& file_storage(std::string path) {
    backend_ = Backend::kFile;
    file_path_ = std::move(path);
    factory_ = nullptr;
    return *this;
  }

  /// Back the store with a real file at `path` whose batched reads and
  /// writes overlap (io_uring, or thread-pool preads where unavailable).
  /// The store stages each request's miss blocks through it in
  /// admission-sized waves; a wave_buffer_blocks of 0 here sizes the
  /// backend's registered wave-buffer pool to that same admission wave
  /// (device queue_depth x channels), so staged reads and republish waves
  /// run zero-copy through registered buffers.
  StoreBuilder& async_file_storage(std::string path,
                                   AsyncFileBlockStorage::Options options = {}) {
    if (options.wave_buffer_blocks == 0) {
      const std::uint64_t wave =
          std::uint64_t{config_.device.queue_depth} * config_.device.channels;
      if (wave > 0 && wave <= (1u << 20)) {
        options.wave_buffer_blocks = static_cast<unsigned>(wave);
      }
    }
    backend_ = Backend::kAsyncFile;
    file_path_ = std::move(path);
    async_options_ = options;
    factory_ = nullptr;
    return *this;
  }

  /// Persist the store: build() attaches (and immediately commits) a
  /// manifest at `path`, and every subsequent mapping swap commits a new
  /// version crash-atomically — the store becomes recoverable via
  /// Store::open / open_or_build. The file factories also route their
  /// fresh-vs-preserve decision through this manifest.
  StoreBuilder& manifest(std::string path) {
    manifest_path_ = std::move(path);
    return *this;
  }

  /// Queue one table: its values plus the Trainer's plan entry for it.
  StoreBuilder& add_table(const EmbeddingTable& values, TablePlan plan);

  /// Queue every table of a StorePlan; `tables[i]` holds the values for
  /// `plan.tables[i]`.
  StoreBuilder& add_plan(const StorePlan& plan,
                         std::span<const EmbeddingTable> tables);

  /// Run the whole offline pipeline and queue the result: constructs a
  /// Trainer against this builder's StoreConfig (so vectors_per_block and
  /// the partitioner backend agree with the store), trains on
  /// `train_traces`, and queues every table of the plan with `tables` as
  /// its values. Value-based partitioner backends see `tables`
  /// automatically. `stats` (optional) receives training telemetry.
  StoreBuilder& train_and_add(const TrainerConfig& trainer_cfg,
                              std::span<const Trace> train_traces,
                              std::span<const EmbeddingTable> tables,
                              ThreadPool* pool = nullptr,
                              TrainerStats* stats = nullptr);

  /// Number of NVM blocks the built store will occupy.
  std::uint64_t total_blocks() const;

  /// Allocate storage once and publish all queued tables, in add order.
  /// With manifest() set this is an explicit REBUILD: any previous manifest
  /// at that path is deleted up front (the old store is consciously
  /// discarded — a crash mid-build then recovers to "no store", never to a
  /// torn mix of old and new), the new store is built fresh, and the
  /// manifest is attached and committed before build() returns.
  Store build();

  /// Warm restart when possible, cold build otherwise: with a
  /// checksum-valid manifest at manifest() the queued plans are IGNORED and
  /// the committed store is reopened via Store::open (no retraining, no
  /// block writes, through this builder's configured file backend); with no
  /// valid manifest (first boot, or a crash that predates the first commit)
  /// it falls back to build(). Requires manifest() to have been set.
  Store open_or_build();

 private:
  enum class Backend { kMemory, kFile, kAsyncFile, kCustom };
  struct Pending {
    const EmbeddingTable* values;
    TablePlan plan;
  };

  /// The configured backend as a factory. `for_open` distinguishes
  /// Store::open (file backends route preserve-mode through the manifest)
  /// from build (the stale manifest was just deleted, so the same routing
  /// yields a clean truncate); memory/custom return factory_ as-is
  /// (nullptr for memory lets Store::open reject unrecoverable backends).
  BlockStorageFactory materialize_factory(bool for_open);

  StoreConfig config_;
  std::uint64_t seed_ = 42;
  Backend backend_ = Backend::kMemory;
  BlockStorageFactory factory_;
  std::string file_path_;
  AsyncFileBlockStorage::Options async_options_{};
  std::string manifest_path_;
  std::vector<Pending> pending_;
};

}  // namespace bandana
