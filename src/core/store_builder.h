// One-shot Store construction from trained TablePlans.
//
// The incremental Store::add_table path discovers the model's total block
// count one table at a time, forcing a copy-grow of the backing storage on
// every call. StoreBuilder consumes the Trainer's output directly, sums the
// block counts up front, allocates storage exactly once (which is what
// makes file backends practical — the file is created at final size), and
// publishes every table:
//
//   StorePlan plan = trainer.train(traces, sizes, &pool);
//   Store store = StoreBuilder(cfg)
//                     .seed(7)
//                     .file_storage("/mnt/nvm/blocks.bin")  // optional
//                     .add_plan(plan, tables)
//                     .build();
//
// Embedding values are held by reference: they must stay alive until
// build() returns. build() consumes the builder (call it once).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/store.h"
#include "core/trainer.h"
#include "nvm/async_file_storage.h"
#include "nvm/block_storage.h"
#include "trace/embedding_table.h"

namespace bandana {

class StoreBuilder {
 public:
  explicit StoreBuilder(StoreConfig config = {}) : config_(config) {}

  StoreBuilder& seed(std::uint64_t s) {
    seed_ = s;
    return *this;
  }

  /// Back the store with an arbitrary BlockStorage implementation.
  StoreBuilder& storage(BlockStorageFactory factory) {
    factory_ = std::move(factory);
    return *this;
  }

  /// Back the store with heap memory (the default).
  StoreBuilder& memory_storage() { return storage(memory_storage_factory()); }

  /// Back the store with a real file at `path` (created at build()).
  StoreBuilder& file_storage(std::string path) {
    return storage(file_storage_factory(std::move(path)));
  }

  /// Back the store with a real file at `path` whose batched reads and
  /// writes overlap (io_uring, or thread-pool preads where unavailable).
  /// The store stages each request's miss blocks through it in
  /// admission-sized waves; a wave_buffer_blocks of 0 here sizes the
  /// backend's registered wave-buffer pool to that same admission wave
  /// (device queue_depth x channels), so staged reads and republish waves
  /// run zero-copy through registered buffers.
  StoreBuilder& async_file_storage(std::string path,
                                   AsyncFileBlockStorage::Options options = {}) {
    if (options.wave_buffer_blocks == 0) {
      const std::uint64_t wave =
          std::uint64_t{config_.device.queue_depth} * config_.device.channels;
      if (wave > 0 && wave <= (1u << 20)) {
        options.wave_buffer_blocks = static_cast<unsigned>(wave);
      }
    }
    return storage(async_file_storage_factory(std::move(path), options));
  }

  /// Queue one table: its values plus the Trainer's plan entry for it.
  StoreBuilder& add_table(const EmbeddingTable& values, TablePlan plan);

  /// Queue every table of a StorePlan; `tables[i]` holds the values for
  /// `plan.tables[i]`.
  StoreBuilder& add_plan(const StorePlan& plan,
                         std::span<const EmbeddingTable> tables);

  /// Number of NVM blocks the built store will occupy.
  std::uint64_t total_blocks() const;

  /// Allocate storage once and publish all queued tables, in add order.
  Store build();

 private:
  struct Pending {
    const EmbeddingTable* values;
    TablePlan plan;
  };

  StoreConfig config_;
  std::uint64_t seed_ = 42;
  BlockStorageFactory factory_;
  std::vector<Pending> pending_;
};

}  // namespace bandana
