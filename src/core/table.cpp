#include "core/table.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

namespace bandana {

namespace {
std::vector<double> insertion_points_for(const TablePolicy& policy) {
  const bool uses_position = policy.policy == PrefetchPolicy::kPosition ||
                             policy.policy == PrefetchPolicy::kShadowPosition;
  if (uses_position && policy.insertion_position > 0.0) {
    return {0.0, policy.insertion_position};
  }
  return {0.0};
}

/// Default write-wave chunk when the caller does not pass an admission
/// wave: bounds the compose buffer (16 MB at 4 KB blocks) the same way
/// the growth migration chunks do.
constexpr std::uint64_t kDefaultWriteWaveBlocks = 4096;

/// A wave-sized compose buffer: a leased registered wave buffer when the
/// backend offers one (batched writes then go out as zero-copy
/// WRITE_FIXED), else a plain heap buffer.
struct WaveComposeBuffer {
  WaveComposeBuffer(BlockStorage& storage, std::size_t bytes)
      : lease(storage.lease_wave_buffer(bytes)) {
    if (lease) {
      buf = lease.bytes().first(bytes);
    } else {
      heap.resize(bytes);
      buf = heap;
    }
  }
  BlockStorage::WaveBufferLease lease;
  std::vector<std::byte> heap;
  std::span<std::byte> buf;
};

/// Shard count for the table: one per hardware thread by default, but
/// never more shards than blocks (vectors are striped by block, keeping
/// prefetch admission shard-local) or cache entries (every shard needs at
/// least one slot without inflating the DRAM budget). Fixed at
/// construction: layout swaps keep num_blocks and capacity, so the clamp
/// is invariant.
std::uint32_t shard_count_for(const StoreConfig& cfg,
                              const TablePolicy& policy,
                              const BlockLayout& layout) {
  const std::uint64_t capacity =
      std::max<std::uint64_t>(1, policy.cache_vectors);
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, std::min({static_cast<std::uint64_t>(cfg.resolved_cache_shards()),
                   static_cast<std::uint64_t>(layout.num_blocks()),
                   capacity})));
}
}  // namespace

std::unique_ptr<BandanaTable::State> BandanaTable::make_state(
    TablePolicy policy, BlockLayout layout,
    std::vector<std::uint32_t> access_counts,
    std::vector<BlockId> block_map) const {
  if (layout.num_vectors() != num_vectors_ ||
      layout.vectors_per_block() != vectors_per_block_) {
    throw std::invalid_argument("table state: layout shape mismatch");
  }
  if (block_map.size() != layout.num_blocks()) {
    throw std::invalid_argument("table state: block map size mismatch");
  }
  if (policy.policy == PrefetchPolicy::kThreshold &&
      access_counts.size() != layout.num_vectors()) {
    throw std::invalid_argument("kThreshold requires per-vector access counts");
  }
  const std::uint64_t capacity =
      std::max<std::uint64_t>(1, policy.cache_vectors);
  std::vector<std::uint32_t> shard_of(layout.num_vectors());
  for (VectorId v = 0; v < layout.num_vectors(); ++v) {
    shard_of[v] = layout.block_of(v) % num_shards_;
  }
  ShardedInsertionLru cache{layout.num_vectors(), capacity,
                            insertion_points_for(policy), std::move(shard_of),
                            num_shards_};

  auto st = std::make_unique<State>(std::move(layout), std::move(block_map),
                                    std::move(access_counts), policy,
                                    std::move(cache));
  st->low_point = st->cache.num_insertion_points() - 1;
  st->slot_of.assign(num_vectors_, 0);
  st->prefetched.assign(num_vectors_, 0);
  st->block_epochs.assign(st->layout.num_blocks(), 0);

  // Slab slots are partitioned by shard: shard s owns the contiguous range
  // starting at the sum of earlier shard capacities. Free lists pop in
  // ascending slot order within each shard (matching the seed's fill order).
  st->free_slots.resize(num_shards_);
  std::uint64_t slot_base = 0;
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    const std::uint64_t cap = st->cache.shard_capacity(s);
    auto& free_slots = st->free_slots[s];
    free_slots.reserve(cap);
    for (std::uint64_t i = cap; i > 0; --i) {
      free_slots.push_back(static_cast<std::uint32_t>(slot_base + i - 1));
    }
    slot_base += cap;
  }

  if (policy.policy == PrefetchPolicy::kShadow ||
      policy.policy == PrefetchPolicy::kShadowPosition) {
    const auto shadow_cap = std::max<std::uint64_t>(
        1,
        static_cast<std::uint64_t>(static_cast<double>(st->cache.capacity()) *
                                   policy.shadow_multiplier));
    st->shadow = std::make_unique<ShardedInsertionLru>(
        num_vectors_, shadow_cap, std::vector<double>{0.0},
        st->cache.assignment(), num_shards_);
  }
  return st;
}

BandanaTable::BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
                           BlockLayout layout,
                           std::vector<std::uint32_t> access_counts,
                           BlockId first_block)
    : num_vectors_(layout.num_vectors()),
      num_blocks_(layout.num_blocks()),
      first_block_(first_block),
      vector_bytes_(store_cfg.vector_bytes),
      block_bytes_(store_cfg.block_bytes),
      vectors_per_block_(store_cfg.vectors_per_block()),
      num_shards_(shard_count_for(store_cfg, policy, layout)) {
  if (store_cfg.block_bytes % store_cfg.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
  if (layout.vectors_per_block() != vectors_per_block_) {
    throw std::invalid_argument("layout block size mismatch");
  }
  std::vector<BlockId> block_map(layout.num_blocks());
  for (BlockId b = 0; b < block_map.size(); ++b) {
    block_map[b] = first_block_ + b;
  }
  state_owner_ = make_state(policy, std::move(layout),
                            std::move(access_counts), std::move(block_map));
  state_.store(state_owner_.get(), std::memory_order_release);

  slab_.resize(state_owner_->cache.capacity() * vector_bytes_);
  shards_.reserve(num_shards_);
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->block_buf.resize(block_bytes_);
    shards_.push_back(std::move(shard));
  }
}

BandanaTable::BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
                           BlockLayout layout,
                           std::vector<std::uint32_t> access_counts,
                           BlockId first_block, std::vector<BlockId> block_map)
    : num_vectors_(layout.num_vectors()),
      num_blocks_(layout.num_blocks()),
      first_block_(first_block),
      vector_bytes_(store_cfg.vector_bytes),
      block_bytes_(store_cfg.block_bytes),
      vectors_per_block_(store_cfg.vectors_per_block()),
      num_shards_(shard_count_for(store_cfg, policy, layout)) {
  if (store_cfg.block_bytes % store_cfg.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
  if (layout.vectors_per_block() != vectors_per_block_) {
    throw std::invalid_argument("layout block size mismatch");
  }
  state_owner_ = make_state(policy, std::move(layout),
                            std::move(access_counts), std::move(block_map));
  state_.store(state_owner_.get(), std::memory_order_release);

  slab_.resize(state_owner_->cache.capacity() * vector_bytes_);
  shards_.reserve(num_shards_);
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->block_buf.resize(block_bytes_);
    shards_.push_back(std::move(shard));
  }
}

void compose_block_bytes(const BlockLayout& layout,
                         const EmbeddingTable& values, BlockId b,
                         std::size_t vector_bytes,
                         std::span<std::byte> block) {
  std::memset(block.data(), 0, block.size());
  const auto members = layout.block_members(b);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const auto src = values.vector_bytes_view(members[i]);
    std::memcpy(block.data() + i * vector_bytes, src.data(), vector_bytes);
  }
}

std::span<std::byte> BandanaTable::slot_bytes(std::uint32_t slot) {
  return {slab_.data() + std::size_t{slot} * vector_bytes_, vector_bytes_};
}

std::uint64_t BandanaTable::publish(const EmbeddingTable& values,
                                    BlockStorage& storage,
                                    std::uint64_t wave_blocks) {
  State& st = *state_owner_;
  if (values.num_vectors() != num_vectors_ ||
      values.vector_bytes() != vector_bytes_) {
    throw std::invalid_argument("publish: shape mismatch with layout");
  }
  const std::uint64_t total = st.layout.num_blocks();
  if (total == 0) return 0;
  const std::size_t chunk = static_cast<std::size_t>(std::min(
      wave_blocks == 0 ? kDefaultWriteWaveBlocks : wave_blocks, total));
  WaveComposeBuffer wave(storage, chunk * block_bytes_);
  std::vector<BlockWriteOp> ops;
  ops.reserve(chunk);
  std::uint64_t batches = 0;
  for (BlockId b0 = 0; b0 < total; b0 += chunk) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(chunk, total - b0));
    ops.clear();
    for (std::size_t i = 0; i < n; ++i) {
      const auto img = wave.buf.subspan(i * block_bytes_, block_bytes_);
      compose_block_bytes(st.layout, values, b0 + static_cast<BlockId>(i),
                          vector_bytes_, img);
      ops.push_back({st.block_map[b0 + i], img});
    }
    storage.write_blocks(ops);
    ++batches;
  }
  return batches;
}

BandanaTable::RepublishDiff BandanaTable::republish(
    const EmbeddingTable& values, BlockStorage& storage,
    std::uint64_t wave_blocks) {
  State& st = *state_owner_;
  if (values.num_vectors() != num_vectors_ ||
      values.vector_bytes() != vector_bytes_) {
    throw std::invalid_argument("republish: shape mismatch with layout");
  }
  RepublishDiff diff;
  const std::uint64_t total = st.layout.num_blocks();
  if (total == 0) return diff;
  const std::size_t chunk = static_cast<std::size_t>(std::min(
      wave_blocks == 0 ? kDefaultWriteWaveBlocks : wave_blocks, total));
  // Changed blocks accumulate in the wave buffer and flush as one batched
  // write per full wave; each block's current bytes are read before any
  // pending write touches a DIFFERENT block, so the diff stays exact.
  WaveComposeBuffer wave(storage, chunk * block_bytes_);
  std::vector<std::byte> current(block_bytes_);
  std::vector<BlockWriteOp> ops;
  ops.reserve(chunk);
  const auto flush = [&] {
    if (ops.empty()) return;
    storage.write_blocks(ops);
    ++diff.write_batches;
    ops.clear();
  };
  for (BlockId b = 0; b < total; ++b) {
    const auto fresh =
        wave.buf.subspan(ops.size() * block_bytes_, block_bytes_);
    compose_block_bytes(st.layout, values, b, vector_bytes_, fresh);
    storage.read_block(st.block_map[b], current);
    if (std::memcmp(fresh.data(), current.data(), block_bytes_) == 0) {
      // Plan-diff early-out: the block's bytes are already what the new
      // values say — no write, and its members' cached entries stay warm.
      ++diff.skipped_blocks;
      continue;
    }
    ops.push_back({st.block_map[b], fresh});
    ++diff.written_blocks;
    // Cached bytes of this block's members are stale: drop them (the ids
    // and the learned layout stay valid — that is SHP's advantage over
    // K-means, §4.2.2). The caller excludes lookups, so no shard locks are
    // needed here.
    for (const VectorId v : st.layout.block_members(b)) {
      ++diff.written_vectors;
      if (st.cache.contains(v)) {
        st.cache.erase(v);
        st.free_slots[st.cache.shard_of(v)].push_back(st.slot_of[v]);
        st.prefetched[v] = 0;
      }
    }
    if (ops.size() == chunk) flush();
  }
  flush();
  metrics_.republish_writes.fetch_add(diff.written_vectors,
                                      std::memory_order_relaxed);
  return diff;
}

std::vector<BlockId> BandanaTable::swap_state(RetrainedState next) {
  State& cur = *state_owner_;
  if (next.policy.cache_vectors != cur.policy.cache_vectors) {
    throw std::invalid_argument(
        "swap_state: online retraining must keep the table's DRAM capacity "
        "(the slab is fixed at construction)");
  }
  auto fresh =
      make_state(next.policy, std::move(next.layout),
                 std::move(next.access_counts), std::move(next.block_map));

  // Global blocks only the old mapping referenced become reusable by the
  // next republish once the new state is visible.
  std::unordered_set<BlockId> kept(fresh->block_map.begin(),
                                   fresh->block_map.end());
  std::vector<BlockId> freed;
  for (const BlockId g : cur.block_map) {
    if (kept.find(g) == kept.end()) freed.push_back(g);
  }

  // Install under every shard lock (index order; lookups hold exactly one
  // shard lock, so no ordering hazard). A lookup that loaded the old state
  // pointer re-validates it under its shard lock and retries — it never
  // mutates the retired state.
  std::unique_ptr<State> old;
  {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& shard : shards_) locks.emplace_back(shard->mu);
    const std::size_t slab_needed = fresh->cache.capacity() * vector_bytes_;
    if (slab_needed > slab_.size()) slab_.resize(slab_needed);
    old = std::move(state_owner_);
    state_owner_ = std::move(fresh);
    // seq_cst pairs with the reader guards' enter + state load: a reader
    // the reclaim pass does not observe entered is ordered after this
    // store and therefore loads the NEW state, never the one retired here.
    state_.store(state_owner_.get(), std::memory_order_seq_cst);
  }
  // Retire outside the shard locks (readers never take reclaim_mu_) and
  // immediately run a reclaim pass: with no straggling readers the old
  // state is freed right here, and under load it goes once both banks
  // drain on later passes.
  {
    std::lock_guard reclaim_lock(reclaim_mu_);
    retired_.push_back({std::move(old), ++retire_seq_});
    reclaim_retired_locked();
  }
  return freed;
}

bool BandanaTable::bank_drained(std::uint32_t bank) const {
  for (std::uint32_t s = 0; s < kReaderSlots; ++s) {
    const ReaderSlot& slot = reader_banks_[bank][s];
    // Load exited BEFORE entered: both are monotone and an exit is always
    // preceded by its enter, so exited(t1) == entered(t2) with t1 < t2
    // forces entered(t1) == exited(t1) (nobody inside at t1) and
    // entered(t2) == entered(t1) (nobody entered since) — the slot held no
    // reader that predates this check.
    const std::uint64_t exited = slot.exited.load(std::memory_order_seq_cst);
    const std::uint64_t entered = slot.entered.load(std::memory_order_seq_cst);
    if (entered != exited) return false;
  }
  return true;
}

std::size_t BandanaTable::reclaim_retired_locked() {
  if (retired_.empty()) return 0;
  // Everything retired so far predates the bank observations below (both
  // happen under reclaim_mu_), so a drained bank covers retire_seq_.
  const std::uint64_t seq = retire_seq_;
  // Flip first: new readers move to the other bank, so the bank the
  // previous pass left busy gets its chance to drain by the next pass
  // even under a continuous read stream.
  reader_gen_.fetch_add(1, std::memory_order_seq_cst);
  for (std::uint32_t bank = 0; bank < 2; ++bank) {
    if (bank_drained(bank)) bank_drained_seq_[bank] = seq;
  }
  const std::uint64_t safe =
      std::min(bank_drained_seq_[0], bank_drained_seq_[1]);
  std::size_t freed = 0;
  for (auto it = retired_.begin(); it != retired_.end();) {
    if (it->seq <= safe) {
      it = retired_.erase(it);
      ++freed;
    } else {
      ++it;
    }
  }
  return freed;
}

std::size_t BandanaTable::reclaim_retired() {
  std::lock_guard lock(reclaim_mu_);
  return reclaim_retired_locked();
}

std::size_t BandanaTable::retired_count() const {
  std::lock_guard lock(reclaim_mu_);
  return retired_.size();
}

std::vector<BlockId> BandanaTable::block_map() const {
  ReadGuard guard(*this);
  const State* st = state_.load(std::memory_order_seq_cst);
  return st->block_map;
}

BandanaTable::RetrainedState BandanaTable::mapping_snapshot() const {
  ReadGuard guard(*this);
  const State* st = state_.load(std::memory_order_seq_cst);
  return {st->layout, st->block_map, st->access_counts, st->policy};
}

void BandanaTable::cache_vector(State& st, std::uint32_t shard_idx, VectorId v,
                                std::span<const std::byte> bytes,
                                std::size_t point, bool is_prefetch) {
  const VectorId evicted = st.cache.insert(v, point);
  std::uint32_t slot;
  if (evicted != kInvalidVector) {
    slot = st.slot_of[evicted];  // same shard: eviction is shard-local
  } else {
    auto& free_slots = st.free_slots[shard_idx];
    assert(!free_slots.empty());
    slot = free_slots.back();
    free_slots.pop_back();
  }
  st.slot_of[v] = slot;
  std::memcpy(slot_bytes(slot).data(), bytes.data(), vector_bytes_);
  st.prefetched[v] = is_prefetch ? 1 : 0;
  if (is_prefetch) {
    metrics_.prefetch_inserted.fetch_add(1, std::memory_order_relaxed);
  }
}

void BandanaTable::admit_prefetches(State& st, std::uint32_t shard_idx,
                                    BlockId local_block,
                                    std::span<const std::byte> block) {
  const auto members = st.layout.block_members(local_block);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const VectorId u = members[i];
    if (st.cache.contains(u)) continue;
    const std::span<const std::byte> bytes{block.data() + i * vector_bytes_,
                                           vector_bytes_};
    switch (st.policy.policy) {
      case PrefetchPolicy::kNone:
        return;
      case PrefetchPolicy::kAll:
        cache_vector(st, shard_idx, u, bytes, 0, /*is_prefetch=*/true);
        break;
      case PrefetchPolicy::kPosition:
        cache_vector(st, shard_idx, u, bytes, st.low_point, true);
        break;
      case PrefetchPolicy::kShadow:
        if (st.shadow->contains(u)) {
          cache_vector(st, shard_idx, u, bytes, 0, true);
        }
        break;
      case PrefetchPolicy::kShadowPosition:
        cache_vector(st, shard_idx, u, bytes,
                     st.shadow->contains(u) ? 0 : st.low_point, true);
        break;
      case PrefetchPolicy::kThreshold:
        if (st.access_counts[u] > st.policy.access_threshold) {
          cache_vector(st, shard_idx, u, bytes, 0, true);
        }
        break;
    }
  }
}

bool BandanaTable::is_cached(VectorId v) const {
  assert(v < num_vectors_);
  // Read-only peek: a state retired between the load and the lock is never
  // mutated again, so its answer is merely stale (the staged_only lookup
  // pipeline re-checks under the lock and defers on any disagreement).
  // The guard keeps a just-retired state alive across the deref.
  ReadGuard guard(*this);
  const State* st = state_.load(std::memory_order_seq_cst);
  std::lock_guard lock(shards_[st->cache.shard_of(v)]->mu);
  return st->cache.contains(v);
}

BandanaTable::LookupOutcome BandanaTable::lookup(
    VectorId v, BlockStorage& storage, std::span<std::byte> out,
    std::uint64_t epoch, const StagedBlockReads* staged, bool staged_only) {
  assert(v < num_vectors_);
  assert(out.size() >= vector_bytes_);
  // The guard spans the whole retry loop: every state pointer loaded below
  // stays alive until we return, even if a concurrent swap retires it and
  // a reclaim pass runs before we reach the shard lock.
  ReadGuard guard(*this);
  State* st = state_.load(std::memory_order_seq_cst);
  for (;;) {
    // Everything a lookup touches — the cache entry, the block, its other
    // members, the shadow entry, the slab slots — lives in the one shard
    // the state's layout assigns v to.
    Shard& shard = *shards_[st->cache.shard_of(v)];
    std::lock_guard lock(shard.mu);
    // Re-validate under the lock: swap_state publishes the new state while
    // holding every shard lock, so a stale pointer here means the swap
    // fully completed — retry against the new mapping (which may stripe v
    // to a different shard). Nothing was mutated yet.
    State* cur = state_.load(std::memory_order_acquire);
    if (cur != st) {
      st = cur;
      continue;
    }
    return lookup_locked(*st, st->cache.shard_of(v), v, storage, out, epoch,
                         staged, staged_only);
  }
}

BandanaTable::LookupOutcome BandanaTable::lookup_locked(
    State& st, std::uint32_t shard_idx, VectorId v, BlockStorage& storage,
    std::span<std::byte> out, std::uint64_t epoch,
    const StagedBlockReads* staged, bool staged_only) {
  LookupOutcome outcome;
  Shard& shard = *shards_[shard_idx];
  // Airtight staged mode: if this lookup would miss and its block was not
  // staged (evicted between the request's peek and now, truncated at the
  // staging cap, or retargeted by a mapping swap since the peek), defer it
  // before mutating ANY state — same shard lock, so the contains() peek
  // and the access() below cannot disagree. The caller re-runs the lookup
  // after a batched retry fetch.
  const BlockId local_b = st.layout.block_of(v);
  const BlockId global_b = st.block_map[local_b];
  if (staged_only && staged != nullptr && !st.cache.contains(v) &&
      staged->find(global_b).empty()) {
    outcome.deferred = true;
    return outcome;
  }
  metrics_.lookups.fetch_add(1, std::memory_order_relaxed);
  metrics_.app_bytes_served.fetch_add(vector_bytes_,
                                      std::memory_order_relaxed);

  if (st.shadow) {
    if (!st.shadow->access(v)) st.shadow->insert(v);
  }

  if (st.cache.access(v)) {
    metrics_.hits.fetch_add(1, std::memory_order_relaxed);
    outcome.hit = true;
    if (st.prefetched[v]) {
      metrics_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      st.prefetched[v] = 0;
    }
    std::memcpy(out.data(), slot_bytes(st.slot_of[v]).data(), vector_bytes_);
    return outcome;
  }

  // Miss: fetch the block (the epoch mark is shard-local because blocks
  // never span shards). ">=" rather than "==": a mark left by a *newer*
  // concurrent scope means the block was just fetched, so this scope's
  // read coalesces with it instead of being re-counted (and re-admitted).
  metrics_.miss_bytes.fetch_add(vector_bytes_, std::memory_order_relaxed);
  const bool already_read = st.block_epochs[local_b] >= epoch;
  // The request's staging pass may already hold this block's bytes (one
  // batched overlapped read for the whole request). Store's staged_only
  // pipeline guarantees the block is staged by the time we get here; the
  // inline fallback below only serves callers running without staging.
  std::span<const std::byte> block_bytes;
  if (staged != nullptr) {
    block_bytes = staged->find(global_b);
  }
  if (block_bytes.empty()) {
    storage.read_block(global_b, shard.block_buf);
    block_bytes = shard.block_buf;
  }
  if (!already_read) {
    st.block_epochs[local_b] = epoch;
    metrics_.nvm_block_reads.fetch_add(1, std::memory_order_relaxed);
    metrics_.nvm_bytes_read.fetch_add(block_bytes_,
                                      std::memory_order_relaxed);
    outcome.nvm_read = true;
    outcome.block_read = global_b;
  }

  const std::uint32_t pos_in_block =
      st.layout.position_of(v) % vectors_per_block_;
  const std::span<const std::byte> vector_view =
      block_bytes.subspan(std::size_t{pos_in_block} * vector_bytes_,
                          vector_bytes_);
  std::memcpy(out.data(), vector_view.data(), vector_bytes_);
  cache_vector(st, shard_idx, v, vector_view, 0, /*is_prefetch=*/false);
  if (!already_read && st.policy.policy != PrefetchPolicy::kNone) {
    admit_prefetches(st, shard_idx, local_b, block_bytes);
  }
  return outcome;
}

CacheShardStats BandanaTable::shard_stats(std::uint32_t s) const {
  ReadGuard guard(*this);
  const State* st = state_.load(std::memory_order_seq_cst);
  std::lock_guard lock(shards_[s]->mu);
  return st->cache.shard_stats(s);
}

CacheShardStats BandanaTable::cache_stats() const {
  CacheShardStats total;
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    total += shard_stats(s);
  }
  return total;
}

std::vector<VectorId> BandanaTable::cache_contents() const {
  ReadGuard guard(*this);
  const State* st = state_.load(std::memory_order_seq_cst);
  std::vector<VectorId> out;
  for (std::uint32_t s = 0; s < num_shards_; ++s) {
    std::lock_guard lock(shards_[s]->mu);
    const auto shard = st->cache.shard_contents(s);
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

}  // namespace bandana
