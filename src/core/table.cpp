#include "core/table.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace bandana {

namespace {
std::vector<double> insertion_points_for(const TablePolicy& policy) {
  const bool uses_position = policy.policy == PrefetchPolicy::kPosition ||
                             policy.policy == PrefetchPolicy::kShadowPosition;
  if (uses_position && policy.insertion_position > 0.0) {
    return {0.0, policy.insertion_position};
  }
  return {0.0};
}

/// Builds the table's cache: one shard per hardware thread by default, but
/// never more shards than blocks (vectors are striped by block, keeping
/// prefetch admission shard-local) or cache entries (every shard needs at
/// least one slot without inflating the DRAM budget).
ShardedInsertionLru make_cache(const StoreConfig& cfg,
                               const TablePolicy& policy,
                               const BlockLayout& layout) {
  const std::uint64_t capacity =
      std::max<std::uint64_t>(1, policy.cache_vectors);
  const auto num_shards = static_cast<std::uint32_t>(std::max<std::uint64_t>(
      1, std::min({static_cast<std::uint64_t>(cfg.resolved_cache_shards()),
                   static_cast<std::uint64_t>(layout.num_blocks()),
                   capacity})));
  std::vector<std::uint32_t> shard_of(layout.num_vectors());
  for (VectorId v = 0; v < layout.num_vectors(); ++v) {
    shard_of[v] = layout.block_of(v) % num_shards;
  }
  return {layout.num_vectors(), capacity, insertion_points_for(policy),
          std::move(shard_of), num_shards};
}
}  // namespace

BandanaTable::BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
                           BlockLayout layout,
                           std::vector<std::uint32_t> access_counts,
                           BlockId first_block)
    : policy_(policy),
      layout_(std::move(layout)),
      access_counts_(std::move(access_counts)),
      first_block_(first_block),
      vector_bytes_(store_cfg.vector_bytes),
      block_bytes_(store_cfg.block_bytes),
      vectors_per_block_(store_cfg.vectors_per_block()),
      cache_(make_cache(store_cfg, policy, layout_)),
      slot_of_(layout_.num_vectors(), 0),
      prefetched_(layout_.num_vectors(), 0),
      block_epochs_(layout_.num_blocks(), 0) {
  if (store_cfg.block_bytes % store_cfg.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
  if (layout_.vectors_per_block() != vectors_per_block_) {
    throw std::invalid_argument("layout block size mismatch");
  }
  if (policy_.policy == PrefetchPolicy::kThreshold &&
      access_counts_.size() != layout_.num_vectors()) {
    throw std::invalid_argument("kThreshold requires per-vector access counts");
  }
  low_point_ = cache_.num_insertion_points() - 1;
  slab_.resize(cache_.capacity() * vector_bytes_);

  // Slab slots are partitioned by shard: shard s owns the contiguous range
  // starting at the sum of earlier shard capacities. Free lists pop in
  // ascending slot order within each shard (matching the seed's fill order).
  shards_.reserve(cache_.num_shards());
  std::uint64_t slot_base = 0;
  for (std::uint32_t s = 0; s < cache_.num_shards(); ++s) {
    auto shard = std::make_unique<Shard>();
    const std::uint64_t cap = cache_.shard_capacity(s);
    shard->free_slots.reserve(cap);
    for (std::uint64_t i = cap; i > 0; --i) {
      shard->free_slots.push_back(
          static_cast<std::uint32_t>(slot_base + i - 1));
    }
    shard->block_buf.resize(block_bytes_);
    shards_.push_back(std::move(shard));
    slot_base += cap;
  }

  if (policy_.policy == PrefetchPolicy::kShadow ||
      policy_.policy == PrefetchPolicy::kShadowPosition) {
    const auto shadow_cap = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(cache_.capacity()) *
                                      policy_.shadow_multiplier));
    shadow_ = std::make_unique<ShardedInsertionLru>(
        layout_.num_vectors(), shadow_cap, std::vector<double>{0.0},
        cache_.assignment(), cache_.num_shards());
  }
}

std::span<std::byte> BandanaTable::slot_bytes(std::uint32_t slot) {
  return {slab_.data() + std::size_t{slot} * vector_bytes_, vector_bytes_};
}

void BandanaTable::publish(const EmbeddingTable& values,
                           BlockStorage& storage) {
  if (values.num_vectors() != layout_.num_vectors() ||
      values.vector_bytes() != vector_bytes_) {
    throw std::invalid_argument("publish: shape mismatch with layout");
  }
  std::vector<std::byte> block(block_bytes_);
  for (BlockId b = 0; b < layout_.num_blocks(); ++b) {
    std::memset(block.data(), 0, block.size());
    const auto members = layout_.block_members(b);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto src = values.vector_bytes_view(members[i]);
      std::memcpy(block.data() + i * vector_bytes_, src.data(), vector_bytes_);
    }
    storage.write_block(first_block_ + b, block);
  }
}

void BandanaTable::republish(const EmbeddingTable& values,
                             BlockStorage& storage) {
  publish(values, storage);
  // Cached bytes are stale: drop everything (the ids and the learned layout
  // stay valid — that is SHP's advantage over K-means, §4.2.2). The caller
  // excludes lookups, so no shard locks are needed here.
  for (VectorId v = 0; v < layout_.num_vectors(); ++v) {
    if (cache_.contains(v)) {
      cache_.erase(v);
      shards_[cache_.shard_of(v)]->free_slots.push_back(slot_of_[v]);
      prefetched_[v] = 0;
    }
  }
  metrics_.republish_writes.fetch_add(layout_.num_vectors(),
                                      std::memory_order_relaxed);
}

void BandanaTable::cache_vector(Shard& shard, VectorId v,
                                std::span<const std::byte> bytes,
                                std::size_t point, bool is_prefetch) {
  const VectorId evicted = cache_.insert(v, point);
  std::uint32_t slot;
  if (evicted != kInvalidVector) {
    slot = slot_of_[evicted];  // same shard: eviction is shard-local
  } else {
    assert(!shard.free_slots.empty());
    slot = shard.free_slots.back();
    shard.free_slots.pop_back();
  }
  slot_of_[v] = slot;
  std::memcpy(slot_bytes(slot).data(), bytes.data(), vector_bytes_);
  prefetched_[v] = is_prefetch ? 1 : 0;
  if (is_prefetch) {
    metrics_.prefetch_inserted.fetch_add(1, std::memory_order_relaxed);
  }
}

void BandanaTable::admit_prefetches(Shard& shard, BlockId local_block,
                                    std::span<const std::byte> block) {
  const auto members = layout_.block_members(local_block);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const VectorId u = members[i];
    if (cache_.contains(u)) continue;
    const std::span<const std::byte> bytes{block.data() + i * vector_bytes_,
                                           vector_bytes_};
    switch (policy_.policy) {
      case PrefetchPolicy::kNone:
        return;
      case PrefetchPolicy::kAll:
        cache_vector(shard, u, bytes, 0, /*is_prefetch=*/true);
        break;
      case PrefetchPolicy::kPosition:
        cache_vector(shard, u, bytes, low_point_, true);
        break;
      case PrefetchPolicy::kShadow:
        if (shadow_->contains(u)) cache_vector(shard, u, bytes, 0, true);
        break;
      case PrefetchPolicy::kShadowPosition:
        cache_vector(shard, u, bytes, shadow_->contains(u) ? 0 : low_point_,
                     true);
        break;
      case PrefetchPolicy::kThreshold:
        if (access_counts_[u] > policy_.access_threshold) {
          cache_vector(shard, u, bytes, 0, true);
        }
        break;
    }
  }
}

bool BandanaTable::is_cached(VectorId v) const {
  assert(v < layout_.num_vectors());
  std::lock_guard lock(shards_[cache_.shard_of(v)]->mu);
  return cache_.contains(v);
}

BandanaTable::LookupOutcome BandanaTable::lookup(
    VectorId v, BlockStorage& storage, std::span<std::byte> out,
    std::uint64_t epoch, const StagedBlockReads* staged, bool staged_only) {
  assert(v < layout_.num_vectors());
  assert(out.size() >= vector_bytes_);
  LookupOutcome outcome;
  // Everything a lookup touches — the cache entry, the block, its other
  // members, the shadow entry, the slab slots — lives in this one shard.
  Shard& shard = *shards_[cache_.shard_of(v)];
  std::lock_guard lock(shard.mu);
  // Airtight staged mode: if this lookup would miss and its block was not
  // staged (evicted between the request's peek and now, or truncated at
  // the staging cap), defer it before mutating ANY state — same shard
  // lock, so the contains() peek and the access() below cannot disagree.
  // The caller re-runs the lookup after a batched retry fetch.
  if (staged_only && staged != nullptr && !cache_.contains(v) &&
      staged->find(global_block_of(v)).empty()) {
    outcome.deferred = true;
    return outcome;
  }
  metrics_.lookups.fetch_add(1, std::memory_order_relaxed);
  metrics_.app_bytes_served.fetch_add(vector_bytes_,
                                      std::memory_order_relaxed);

  if (shadow_) {
    if (!shadow_->access(v)) shadow_->insert(v);
  }

  if (cache_.access(v)) {
    metrics_.hits.fetch_add(1, std::memory_order_relaxed);
    outcome.hit = true;
    if (prefetched_[v]) {
      metrics_.prefetch_hits.fetch_add(1, std::memory_order_relaxed);
      prefetched_[v] = 0;
    }
    std::memcpy(out.data(), slot_bytes(slot_of_[v]).data(), vector_bytes_);
    return outcome;
  }

  // Miss: fetch the block (the epoch mark is shard-local because blocks
  // never span shards). ">=" rather than "==": a mark left by a *newer*
  // concurrent scope means the block was just fetched, so this scope's
  // read coalesces with it instead of re-counting (and re-admitting).
  const BlockId local_b = layout_.block_of(v);
  metrics_.miss_bytes.fetch_add(vector_bytes_, std::memory_order_relaxed);
  const bool already_read = block_epochs_[local_b] >= epoch;
  // The request's staging pass may already hold this block's bytes (one
  // batched overlapped read for the whole request). Store's staged_only
  // pipeline guarantees the block is staged by the time we get here; the
  // inline fallback below only serves callers running without staging.
  std::span<const std::byte> block_bytes;
  if (staged != nullptr) {
    block_bytes = staged->find(first_block_ + local_b);
  }
  if (block_bytes.empty()) {
    storage.read_block(first_block_ + local_b, shard.block_buf);
    block_bytes = shard.block_buf;
  }
  if (!already_read) {
    block_epochs_[local_b] = epoch;
    metrics_.nvm_block_reads.fetch_add(1, std::memory_order_relaxed);
    metrics_.nvm_bytes_read.fetch_add(block_bytes_,
                                      std::memory_order_relaxed);
    outcome.nvm_read = true;
    outcome.block_read = first_block_ + local_b;
  }

  const std::uint32_t pos_in_block =
      layout_.position_of(v) % vectors_per_block_;
  const std::span<const std::byte> vector_view =
      block_bytes.subspan(std::size_t{pos_in_block} * vector_bytes_,
                          vector_bytes_);
  std::memcpy(out.data(), vector_view.data(), vector_bytes_);
  cache_vector(shard, v, vector_view, 0, /*is_prefetch=*/false);
  if (!already_read && policy_.policy != PrefetchPolicy::kNone) {
    admit_prefetches(shard, local_b, block_bytes);
  }
  return outcome;
}

CacheShardStats BandanaTable::shard_stats(std::uint32_t s) const {
  std::lock_guard lock(shards_[s]->mu);
  return cache_.shard_stats(s);
}

CacheShardStats BandanaTable::cache_stats() const {
  CacheShardStats total;
  for (std::uint32_t s = 0; s < cache_.num_shards(); ++s) {
    total += shard_stats(s);
  }
  return total;
}

std::vector<VectorId> BandanaTable::cache_contents() const {
  std::vector<VectorId> out;
  for (std::uint32_t s = 0; s < cache_.num_shards(); ++s) {
    std::lock_guard lock(shards_[s]->mu);
    const auto shard = cache_.shard_contents(s);
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

}  // namespace bandana
