#include "core/table.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace bandana {

namespace {
std::vector<double> insertion_points_for(const TablePolicy& policy) {
  const bool uses_position = policy.policy == PrefetchPolicy::kPosition ||
                             policy.policy == PrefetchPolicy::kShadowPosition;
  if (uses_position && policy.insertion_position > 0.0) {
    return {0.0, policy.insertion_position};
  }
  return {0.0};
}
}  // namespace

BandanaTable::BandanaTable(const StoreConfig& store_cfg, TablePolicy policy,
                           BlockLayout layout,
                           std::vector<std::uint32_t> access_counts,
                           BlockId first_block)
    : policy_(policy),
      layout_(std::move(layout)),
      access_counts_(std::move(access_counts)),
      first_block_(first_block),
      vector_bytes_(store_cfg.vector_bytes),
      block_bytes_(store_cfg.block_bytes),
      vectors_per_block_(store_cfg.vectors_per_block()),
      cache_(layout_.num_vectors(),
             std::max<std::uint64_t>(1, policy.cache_vectors),
             insertion_points_for(policy)),
      slot_of_(layout_.num_vectors(), 0),
      prefetched_(layout_.num_vectors(), 0),
      block_buf_(block_bytes_) {
  if (store_cfg.block_bytes % store_cfg.vector_bytes != 0) {
    throw std::invalid_argument("vector_bytes must divide block_bytes");
  }
  if (layout_.vectors_per_block() != vectors_per_block_) {
    throw std::invalid_argument("layout block size mismatch");
  }
  if (policy_.policy == PrefetchPolicy::kThreshold &&
      access_counts_.size() != layout_.num_vectors()) {
    throw std::invalid_argument("kThreshold requires per-vector access counts");
  }
  low_point_ = cache_.num_insertion_points() - 1;
  const std::uint64_t cap = cache_.capacity();
  slab_.resize(cap * vector_bytes_);
  free_slots_.reserve(cap);
  for (std::uint64_t s = cap; s > 0; --s) {
    free_slots_.push_back(static_cast<std::uint32_t>(s - 1));
  }
  if (policy_.policy == PrefetchPolicy::kShadow ||
      policy_.policy == PrefetchPolicy::kShadowPosition) {
    const auto shadow_cap = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(cap) *
                                      policy_.shadow_multiplier));
    shadow_ = std::make_unique<InsertionLru>(layout_.num_vectors(), shadow_cap);
  }
}

std::span<std::byte> BandanaTable::slot_bytes(std::uint32_t slot) {
  return {slab_.data() + std::size_t{slot} * vector_bytes_, vector_bytes_};
}

void BandanaTable::publish(const EmbeddingTable& values,
                           BlockStorage& storage) {
  if (values.num_vectors() != layout_.num_vectors() ||
      values.vector_bytes() != vector_bytes_) {
    throw std::invalid_argument("publish: shape mismatch with layout");
  }
  std::vector<std::byte> block(block_bytes_);
  for (BlockId b = 0; b < layout_.num_blocks(); ++b) {
    std::memset(block.data(), 0, block.size());
    const auto members = layout_.block_members(b);
    for (std::size_t i = 0; i < members.size(); ++i) {
      const auto src = values.vector_bytes_view(members[i]);
      std::memcpy(block.data() + i * vector_bytes_, src.data(), vector_bytes_);
    }
    storage.write_block(first_block_ + b, block);
  }
}

void BandanaTable::republish(const EmbeddingTable& values,
                             BlockStorage& storage) {
  publish(values, storage);
  // Cached bytes are stale: drop everything (the ids and the learned layout
  // stay valid — that is SHP's advantage over K-means, §4.2.2).
  for (VectorId v = 0; v < layout_.num_vectors(); ++v) {
    if (cache_.contains(v)) {
      cache_.erase(v);
      free_slots_.push_back(slot_of_[v]);
      prefetched_[v] = 0;
    }
  }
  metrics_.republish_writes += layout_.num_vectors();
}

void BandanaTable::cache_vector(VectorId v, std::span<const std::byte> bytes,
                                std::size_t point, bool is_prefetch) {
  const VectorId evicted = cache_.insert(v, point);
  std::uint32_t slot;
  if (evicted != kInvalidVector) {
    slot = slot_of_[evicted];
  } else {
    assert(!free_slots_.empty());
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  slot_of_[v] = slot;
  std::memcpy(slot_bytes(slot).data(), bytes.data(), vector_bytes_);
  prefetched_[v] = is_prefetch ? 1 : 0;
  if (is_prefetch) ++metrics_.prefetch_inserted;
}

void BandanaTable::admit_prefetches(BlockId local_block,
                                    std::span<const std::byte> block) {
  const auto members = layout_.block_members(local_block);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const VectorId u = members[i];
    if (cache_.contains(u)) continue;
    const std::span<const std::byte> bytes{block.data() + i * vector_bytes_,
                                           vector_bytes_};
    switch (policy_.policy) {
      case PrefetchPolicy::kNone:
        return;
      case PrefetchPolicy::kAll:
        cache_vector(u, bytes, 0, /*is_prefetch=*/true);
        break;
      case PrefetchPolicy::kPosition:
        cache_vector(u, bytes, low_point_, true);
        break;
      case PrefetchPolicy::kShadow:
        if (shadow_->contains(u)) cache_vector(u, bytes, 0, true);
        break;
      case PrefetchPolicy::kShadowPosition:
        cache_vector(u, bytes, shadow_->contains(u) ? 0 : low_point_, true);
        break;
      case PrefetchPolicy::kThreshold:
        if (access_counts_[u] > policy_.access_threshold) {
          cache_vector(u, bytes, 0, true);
        }
        break;
    }
  }
}

BandanaTable::LookupOutcome BandanaTable::lookup(
    VectorId v, BlockStorage& storage, std::span<std::byte> out,
    std::vector<std::uint32_t>* block_epoch, std::uint32_t epoch) {
  assert(v < layout_.num_vectors());
  assert(out.size() >= vector_bytes_);
  LookupOutcome outcome;
  ++metrics_.lookups;
  metrics_.app_bytes_served += vector_bytes_;

  if (shadow_) {
    if (!shadow_->access(v)) shadow_->insert(v);
  }

  if (cache_.access(v)) {
    ++metrics_.hits;
    outcome.hit = true;
    if (prefetched_[v]) {
      ++metrics_.prefetch_hits;
      prefetched_[v] = 0;
    }
    std::memcpy(out.data(), slot_bytes(slot_of_[v]).data(), vector_bytes_);
    return outcome;
  }

  // Miss: fetch the block (dedup within a batched query via block_epoch).
  const BlockId local_b = layout_.block_of(v);
  metrics_.miss_bytes += vector_bytes_;
  const bool already_read =
      block_epoch != nullptr && (*block_epoch)[local_b] == epoch;
  storage.read_block(first_block_ + local_b, block_buf_);
  if (!already_read) {
    if (block_epoch != nullptr) (*block_epoch)[local_b] = epoch;
    ++metrics_.nvm_block_reads;
    metrics_.nvm_bytes_read += block_bytes_;
    outcome.nvm_read = true;
    outcome.block_read = first_block_ + local_b;
  }

  const std::uint32_t pos_in_block =
      layout_.position_of(v) % vectors_per_block_;
  std::memcpy(out.data(),
              block_buf_.data() + std::size_t{pos_in_block} * vector_bytes_,
              vector_bytes_);
  cache_vector(v, {block_buf_.data() + std::size_t{pos_in_block} * vector_bytes_,
                   vector_bytes_},
               0, /*is_prefetch=*/false);
  if (!already_read && policy_.policy != PrefetchPolicy::kNone) {
    admit_prefetches(local_b, block_buf_);
  }
  return outcome;
}

}  // namespace bandana
