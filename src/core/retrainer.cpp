#include "core/retrainer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "partition/layout.h"

namespace bandana {

TrafficSampler::TrafficSampler(std::size_t num_tables, SamplerConfig cfg)
    : cfg_(cfg) {
  if (cfg_.reservoir_queries == 0) {
    throw std::invalid_argument("TrafficSampler: reservoir_queries must be > 0");
  }
  tables_.reserve(num_tables);
  for (std::size_t t = 0; t < num_tables; ++t) {
    tables_.push_back(std::make_unique<TableSampler>(
        splitmix64(cfg_.seed ^ (0x5EED5EEDULL + t))));
  }
}

void TrafficSampler::on_table_get(TableId table, std::span<const VectorId> ids,
                                  std::uint64_t hits, std::uint64_t misses) {
  if (table >= tables_.size() || ids.empty()) return;
  TableSampler& ts = *tables_[table];
  ts.seen.fetch_add(1, std::memory_order_relaxed);
  ts.lookups.fetch_add(hits + misses, std::memory_order_relaxed);
  ts.hits.fetch_add(hits, std::memory_order_relaxed);

  // Sampling-rate gate, lock-free: admit iff a hash of the table's stream
  // position clears the rate (SHARDS-style, like cache/mini_cache.h's
  // in_sample) — rejected queries never touch the mutex, so the tap does
  // not serialize the hot path. Deterministic in a single-threaded
  // schedule (the position sequence is the draw).
  const std::uint64_t pos = ts.stream.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.sampling_rate < 1.0 &&
      static_cast<double>(splitmix64(pos ^ ts.gate_salt)) >=
          cfg_.sampling_rate * 18446744073709551616.0 /* 2^64 */) {
    return;
  }

  std::lock_guard lock(ts.mu);
  // Vitter's algorithm R over the admitted stream: every admitted query
  // ends up in the reservoir with equal probability, so the retrain input
  // is an unbiased window of recent traffic whatever the volume. The
  // replacement draw comes from the table's own seeded stream.
  ++ts.admitted;
  total_sampled_.fetch_add(1, std::memory_order_relaxed);
  if (ts.reservoir.size() < cfg_.reservoir_queries) {
    ts.reservoir.emplace_back(ids.begin(), ids.end());
    return;
  }
  const std::uint64_t j = ts.rng.next_below(ts.admitted);
  if (j < cfg_.reservoir_queries) {
    ts.reservoir[j].assign(ids.begin(), ids.end());
  }
}

std::uint64_t TrafficSampler::reservoir_size(TableId t) const {
  TableSampler& ts = *tables_.at(t);
  std::lock_guard lock(ts.mu);
  return ts.reservoir.size();
}

TableTrafficStats TrafficSampler::traffic(TableId t) const {
  const TableSampler& ts = *tables_.at(t);
  TableTrafficStats s;
  s.seen_queries = ts.seen.load(std::memory_order_relaxed);
  s.lookups = ts.lookups.load(std::memory_order_relaxed);
  s.hits = ts.hits.load(std::memory_order_relaxed);
  return s;
}

std::vector<Trace> TrafficSampler::drain() {
  std::vector<Trace> traces;
  traces.reserve(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    traces.push_back(drain_table(static_cast<TableId>(t)));
  }
  return traces;
}

Trace TrafficSampler::drain_table(TableId t) {
  TableSampler& ts = *tables_.at(t);
  Trace trace;
  std::lock_guard lock(ts.mu);
  for (const auto& ids : ts.reservoir) {
    trace.add_query(ids);
  }
  ts.reservoir.clear();
  ts.admitted = 0;  // next window restarts algorithm R
  return trace;
}

OnlineRetrainer::OnlineRetrainer(Store& store, RetrainerConfig cfg,
                                 ValuesProvider values)
    : store_(store),
      cfg_(std::move(cfg)),
      values_(std::move(values)),
      sampler_(store.num_tables(), cfg_.sampler) {
  if (!values_) {
    throw std::invalid_argument("OnlineRetrainer: null values provider");
  }
  store_.set_access_tap(&sampler_);
}

OnlineRetrainer::~OnlineRetrainer() {
  stop();
  store_.set_access_tap(nullptr);
}

std::size_t OnlineRetrainer::retrain_now() { return retrain_impl(); }

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

std::size_t OnlineRetrainer::retrain_impl() {
  // Phase 1 (under mu_): claim the retrain slot and drain the reservoirs
  // of every table with sampled traffic and no push still in flight. A
  // mid-trickle table is skipped WITHOUT draining: its reservoir keeps
  // accumulating, so the drift signal survives until the push lands and a
  // later retrain can use it.
  std::vector<TableId> chosen;
  std::vector<Trace> traces;
  std::vector<std::uint32_t> sizes;
  std::uint64_t capacity_sum = 0;
  const auto t_drain = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mu_);
    if (retrain_running_) return 0;  // another thread is mid-retrain
    sampled_at_last_retrain_.store(sampler_.total_sampled(),
                                   std::memory_order_relaxed);
    for (std::size_t t = 0;
         t < sampler_.num_tables() && t < store_.num_tables(); ++t) {
      const auto table_id = static_cast<TableId>(t);
      const bool busy =
          std::any_of(sessions_.begin(), sessions_.end(),
                      [&](const TrickleRepublish& s) {
                        return s.table() == table_id && !s.done();
                      });
      if (busy) continue;
      Trace trace = sampler_.drain_table(table_id);
      if (trace.num_queries() == 0) continue;
      chosen.push_back(table_id);
      traces.push_back(std::move(trace));
      sizes.push_back(store_.table(table_id).num_vectors());
      // Snapshot, not a reference: a pump on another thread may swap (and
      // reclaim) this table's state while we read its policy.
      capacity_sum += store_.table(table_id).policy_snapshot().cache_vectors;
    }
    if (chosen.empty()) return 0;
    ++stats_.retrains;
    retrain_running_ = true;
  }

  // Phase 2 (unlocked): the offline pipeline on the sampled window —
  // seconds of pure CPU at realistic sizes, so stats()/republishing()/
  // pump() must not stall behind it. DRAM does not move: the allocator
  // runs over the affected tables' existing total (its split is discarded
  // anyway — begin_trickle_republish pins each table's capacity), so
  // threshold tuning sees realistic sizes.
  const double drain_us = elapsed_us(t_drain);
  std::size_t opened = 0;
  try {
    TrainerConfig trainer_cfg = cfg_.trainer;
    trainer_cfg.total_cache_vectors =
        std::max<std::uint64_t>(1, capacity_sum);
    Trainer trainer(store_.config(), trainer_cfg);
    // Value-based backends (K-means) need the embedding values the push
    // will carry; trace-based backends ignore them.
    std::vector<const EmbeddingTable*> vals;
    vals.reserve(chosen.size());
    for (const TableId t : chosen) vals.push_back(&values_(t));
    TrainerStats tstats;
    const auto t_train = std::chrono::steady_clock::now();
    StorePlan plan = trainer.train(traces, sizes, nullptr, vals, &tstats);
    const double train_us = elapsed_us(t_train);

    // Phase 3 (under mu_): open the trickle sessions. The chosen tables
    // cannot have grown a session meanwhile (only retrains open sessions
    // and the retrain slot is claimed), and the store would throw on a
    // duplicate anyway.
    const auto t_diff = std::chrono::steady_clock::now();
    std::uint64_t diff_blocks = 0;
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const TableId t = chosen[i];
      TrickleRepublish session = store_.begin_trickle_republish(
          t, values_(t), std::move(plan.tables[i]), cfg_.republish);
      if (session.done()) {
        // The push resolved at begin: either a complete no-op, or a
        // byte-identical permutation whose mapping swap happened eagerly.
        stats_.blocks_skipped += session.skipped_blocks();
        if (session.mapping_swapped()) {
          ++stats_.swaps;
        } else {
          ++stats_.tables_unchanged;
        }
        continue;
      }
      diff_blocks += session.total_blocks();
      sessions_.push_back(std::move(session));
      ++stats_.sessions_opened;
      ++opened;
    }
    const double diff_us = elapsed_us(t_diff);

    // Latency budget: with a rate-limited trickle, the push of this plan
    // takes ~ceil(diff_blocks / blocks_per_interval) * interval_us of
    // simulated time. A training phase slower than that can never keep up
    // with its own republish cadence — warn, and count it where dashboards
    // look (StoreMetrics::retrain_budget_overruns).
    bool overrun = false;
    if (cfg_.republish.blocks_per_interval > 0 && diff_blocks > 0) {
      const double push_us =
          static_cast<double>((diff_blocks +
                               cfg_.republish.blocks_per_interval - 1) /
                              cfg_.republish.blocks_per_interval) *
          cfg_.republish.interval_us;
      if (train_us > push_us) {
        overrun = true;
        std::fprintf(stderr,
                     "bandana: retrain training wall time %.0f us exceeds "
                     "trickle push budget %.0f us (%llu diff blocks at %llu "
                     "blocks per %.0f us interval)\n",
                     train_us, push_us,
                     static_cast<unsigned long long>(diff_blocks),
                     static_cast<unsigned long long>(
                         cfg_.republish.blocks_per_interval),
                     cfg_.republish.interval_us);
      }
    }
    stats_.drain_us += static_cast<std::uint64_t>(drain_us);
    stats_.train_us += static_cast<std::uint64_t>(train_us);
    stats_.diff_us += static_cast<std::uint64_t>(diff_us);
    stats_.peak_training_bytes =
        std::max(stats_.peak_training_bytes, tstats.peak_training_bytes);
    if (overrun) ++stats_.budget_overruns;
    store_.note_retrain(drain_us, train_us, diff_us,
                        tstats.peak_training_bytes, overrun);
    retrain_running_ = false;
  } catch (...) {
    std::lock_guard lock(mu_);
    retrain_running_ = false;
    throw;
  }
  return opened;
}

std::size_t OnlineRetrainer::pump() {
  std::lock_guard lock(mu_);
  return pump_locked();
}

std::size_t OnlineRetrainer::pump_locked() {
  std::size_t wrote = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    wrote += it->pump();
    if (it->done()) {
      stats_.blocks_written += it->written_blocks();
      stats_.blocks_skipped += it->skipped_blocks();
      stats_.waves += it->waves();
      ++stats_.swaps;
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  return wrote;
}

bool OnlineRetrainer::republishing() const {
  std::lock_guard lock(mu_);
  return !sessions_.empty();
}

RetrainerStats OnlineRetrainer::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void OnlineRetrainer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { run(); });
}

void OnlineRetrainer::stop() {
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void OnlineRetrainer::run() {
  const auto poll = std::chrono::duration<double, std::milli>(
      std::max(0.01, cfg_.poll_interval_ms));
  while (running_.load(std::memory_order_acquire)) {
    // An exception escaping a std::thread body would terminate the whole
    // serving process: catch everything (e.g. a backend write error mid
    // pump), log it, and keep the loop (and serving) alive.
    try {
      bool idle;
      {
        std::lock_guard lock(mu_);
        idle = sessions_.empty();
        if (!idle) pump_locked();
      }
      if (idle && cfg_.min_sampled_queries > 0 &&
          sampler_.total_sampled() -
                  sampled_at_last_retrain_.load(std::memory_order_relaxed) >=
              cfg_.min_sampled_queries) {
        retrain_impl();
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bandana: background retrain error: %s\n",
                   e.what());
      std::lock_guard lock(mu_);
      ++stats_.background_errors;
    } catch (...) {
      std::fprintf(stderr, "bandana: background retrain error (unknown)\n");
      std::lock_guard lock(mu_);
      ++stats_.background_errors;
    }
    std::this_thread::sleep_for(
        std::chrono::duration_cast<std::chrono::microseconds>(poll));
  }
}

}  // namespace bandana
