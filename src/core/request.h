// Request-level serving types.
//
// A DLRM ranking request fans out across *many* embedding tables (one id
// list per sparse feature). MultiGetRequest carries the whole request;
// Store::multi_get serves it as a unit, deduplicating block reads across
// all id lists and scheduling the resulting NVM reads together.
//
// Id lists are owned (not spans) so a request can be moved onto a
// ThreadPool for async serving without dangling references.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace bandana {

struct MultiGetRequest {
  struct TableGet {
    TableId table = 0;
    std::vector<VectorId> ids;
  };

  std::vector<TableGet> gets;

  /// Append one table's id list. Returns *this for chaining:
  ///   req.add(users, user_ids).add(ads, ad_ids);
  MultiGetRequest& add(TableId table, std::span<const VectorId> ids) {
    gets.push_back({table, {ids.begin(), ids.end()}});
    return *this;
  }

  MultiGetRequest& add(TableId table, std::vector<VectorId> ids) {
    gets.push_back({table, std::move(ids)});
    return *this;
  }

  std::size_t total_ids() const {
    std::size_t n = 0;
    for (const auto& g : gets) n += g.ids.size();
    return n;
  }
};

struct MultiGetResult {
  struct TableStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t block_reads = 0;  ///< After request-wide dedup.
  };

  /// vectors[i] holds gets[i].ids.size() * vector_bytes bytes, in id order.
  std::vector<std::vector<std::byte>> vectors;

  /// per_table[i] describes how gets[i] was served.
  std::vector<TableStats> per_table;

  /// NVM block reads issued for the whole request (deduplicated across all
  /// id lists, including repeats of the same table).
  std::uint64_t block_reads = 0;

  /// Simulated service latency in microseconds (0 when timing is off):
  /// all block reads are submitted at request arrival and scheduled across
  /// the device channels; the request completes with its slowest read.
  /// Includes queueing behind earlier requests' channel backlog (arrivals
  /// are open-loop — see Store::multi_get).
  double service_latency_us = 0.0;

  std::uint64_t hits() const {
    std::uint64_t h = 0;
    for (const auto& s : per_table) h += s.hits;
    return h;
  }
  std::uint64_t lookups() const {
    std::uint64_t n = 0;
    for (const auto& s : per_table) n += s.hits + s.misses;
    return n;
  }
};

}  // namespace bandana
