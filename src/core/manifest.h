// Versioned, checksummed store manifest — the durable root of the
// persistence layer (crash recovery + warm restart).
//
// The manifest lives in its own small file next to the block file and
// records everything Store::open needs to reconstruct serving state
// without retraining: store geometry, per-table config (layout order,
// policy, access counts), each table's local-block -> storage-block map,
// the replacement-block free banks (so double buffering keeps alternating
// across restarts instead of growing storage), the trickle epoch, and the
// block-file path.
//
// Commit protocol (write_manifest): the whole manifest is serialized into
// one buffer, written to `<path>.tmp`, fsync'd, and then atomically
// rename(2)'d over `path`, followed by an fsync of the parent directory so
// the directory entry itself is durable. rename is the pointer flip: a
// crash at ANY instant leaves either the complete previous manifest or the
// complete new one — never a torn mix. Store orders its commits so the
// data a manifest references is durable (BlockStorage::sync) BEFORE the
// flip, and blocks referenced by the currently-durable manifest are never
// overwritten until a newer manifest that drops them has committed (the
// trickle path's double-buffered replacement blocks provide exactly this
// alternation). Recovery therefore always lands on an entirely-old or
// entirely-new plan.
//
// Validation (load_manifest): magic, format version, payload length and an
// FNV-1a checksum over the payload must all match; any short read,
// truncation or flipped byte makes the manifest invalid. Callers decide
// what invalid means — Store::open refuses to guess and throws, while the
// manifest-routed storage factories treat "no valid manifest" as
// permission to start fresh (truncate).
//
// The format is fixed-width little-endian (the platforms we serve on);
// bump kManifestVersion for any layout change — older binaries then
// cleanly reject newer manifests instead of misparsing them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/config.h"

namespace bandana {

/// Current on-disk format version. Loaders reject anything else.
/// v2 added live-migration state: per-table retired tombstones, the
/// store-wide reclaimed free pool, and pending-install block reservations.
inline constexpr std::uint32_t kManifestVersion = 2;

/// One table's recoverable state.
struct ManifestTable {
  BlockId first_block = 0;               ///< Initial contiguous publish base.
  std::vector<VectorId> order;           ///< Layout permutation (position->v).
  std::vector<BlockId> block_map;        ///< local block -> storage block
  std::vector<std::uint32_t> access_counts;
  TablePolicy policy;
  /// Storage blocks retired by this table's completed swaps, free for its
  /// next republish (the replacement bank).
  std::vector<BlockId> free_blocks;
  /// Tombstone: the table was migrated out (Store::retire_table) — its
  /// slot keeps the TableId but it no longer serves, and its blocks were
  /// reclaimed into the store-wide free pool.
  bool retired = false;
};

/// Everything Store::open needs, plus the commit bookkeeping.
struct Manifest {
  std::uint64_t commit_seq = 0;     ///< Monotonic per-store commit counter.
  std::uint64_t trickle_epoch = 0;  ///< Completed mapping swaps (all tables).
  std::uint64_t block_bytes = 0;
  std::uint64_t vector_bytes = 0;
  std::uint64_t vectors_per_block = 0;
  std::uint64_t storage_blocks = 0;  ///< Blocks the backing file is sized to.
  std::uint64_t next_block = 0;      ///< First never-allocated storage block.
  /// Path of the block file this manifest describes, as given to the
  /// factory (empty for memory-backed stores, which are not recoverable).
  std::string block_file;
  std::vector<ManifestTable> tables;
  /// Store-wide free pool: blocks reclaimed from retired tables, handed to
  /// future streaming installs before the file grows.
  std::vector<BlockId> free_pool;
  /// Blocks reserved by streaming installs still in flight at commit time
  /// (Store::begin_table_install). No table references them yet; recovery
  /// reclaims each list into the free pool and drops the record, so a
  /// crash mid-stream leaves no half-table and leaks no storage.
  std::vector<std::vector<BlockId>> pending_installs;
};

/// Test seam for crash injection around the commit's atomic pointer flip.
/// `before_flip` runs after the tmp file is written and fsync'd but before
/// the rename; `after_flip` runs after the rename, before the directory
/// fsync. A hook that throws models a kill at exactly that boundary.
struct ManifestCommitHooks {
  std::function<void()> before_flip;
  std::function<void()> after_flip;
};

/// Serialize `m` and commit it crash-atomically at `path` (tmp file +
/// fsync + rename + parent-directory fsync). Throws std::runtime_error on
/// any I/O failure — the previous manifest (if any) is still intact then.
void write_manifest(const std::string& path, const Manifest& m,
                    const ManifestCommitHooks* hooks = nullptr);

/// Load and fully validate the manifest at `path`. Returns std::nullopt
/// (with a human-readable reason in *error when non-null) on a missing
/// file, bad magic, unknown version, truncation, checksum mismatch or any
/// structural overrun — never throws for invalid content.
std::optional<Manifest> load_manifest(const std::string& path,
                                      std::string* error = nullptr);

/// True iff `path` holds a complete, checksum-valid manifest. The
/// manifest-routed storage factories probe this to decide fresh-vs-preserve
/// on their first invocation.
bool manifest_valid(const std::string& path);

}  // namespace bandana
