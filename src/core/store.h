// bandana::Store — the public entry point: an NVM-backed embedding store
// with locality-aware placement and a simulation-tuned DRAM cache.
//
// Construction is one-shot from a trained plan (see examples/quickstart.cpp):
//
//   StorePlan plan = trainer.train(traces, sizes, &pool);
//   Store store = StoreBuilder(cfg).add_plan(plan, tables).build();
//   // or, against a real file instead of heap-backed simulation storage:
//   Store ssd = StoreBuilder(cfg).file_storage("/mnt/nvm/blocks.bin")
//                   .add_plan(plan, tables).build();
//
// Serving is request-level: one MultiGetRequest fans out across many
// embedding tables (a DLRM ranking request). Block reads are deduplicated
// across the whole request, submitted together at request arrival, and
// admission-controlled to the device's queue-depth cap (paper §2.2; see
// nvm/admission.h), so oversized bursts queue at the gate instead of
// monopolizing the channels:
//
//   MultiGetRequest req;
//   req.add(user_table, user_ids).add(ads_table, ad_ids);
//   MultiGetResult res = store.multi_get(req);
//   // res.vectors[i], res.per_table[i], res.service_latency_us
//
// `multi_get_async` serves concurrent request streams on a ThreadPool.
// Each table's DRAM cache is sharded (StoreConfig::cache_shards) with one
// lock per shard, so concurrent requests proceed in parallel even inside
// a single table. The per-table `lookup_batch` path remains for
// single-table callers.
//
// Simulated IO timing runs on the event-driven per-channel NvmIoEngine
// (nvm/io_engine.h): each request's deduplicated block reads are one
// admission wave through per-channel FIFO queues. When the backend
// prefers batched reads (async_file_storage_factory — io_uring, with a
// thread-pool pread fallback), the same admission geometry throttles the
// *real* I/O: the request's miss blocks are staged through
// BlockStorage::read_blocks in waves of at most queue_depth x channels
// blocks, each wave one batched overlapped submission.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/config.h"
#include "core/manifest.h"
#include "core/metrics.h"
#include "core/request.h"
#include "core/table.h"
#include "nvm/block_storage.h"
#include "nvm/endurance.h"
#include "nvm/io_engine.h"
#include "trace/trace.h"

namespace bandana {

struct StorePlan;  // trainer.h
struct TablePlan;  // trainer.h
class TrickleRepublish;
class TableInstall;

namespace detail {
struct TrickleState;  // store.cpp
struct InstallState;  // store.cpp
}  // namespace detail

/// Serving-path hook: when attached (Store::set_access_tap), the store
/// invokes the tap once per served table-get — after multi_get finishes a
/// request, and after each lookup_batch — with the id list and its
/// hit/miss split. The OnlineRetrainer's TrafficSampler implements this to
/// reservoir-sample live traffic (core/retrainer.h). Implementations must
/// be thread-safe (multi_get_async serves from many pool threads) and
/// must not call back into the store.
class AccessTap {
 public:
  virtual ~AccessTap() = default;
  virtual void on_table_get(TableId table, std::span<const VectorId> ids,
                            std::uint64_t hits, std::uint64_t misses) = 0;
};

class Store {
 public:
  /// Default backend: heap-backed MemoryBlockStorage (pure simulation).
  explicit Store(StoreConfig config, std::uint64_t seed = 42);

  /// Pluggable backend: `storage_factory` is invoked once the block count
  /// is known (use file_storage_factory(path) to run against a real file).
  Store(StoreConfig config, BlockStorageFactory storage_factory,
        std::uint64_t seed = 42);

  Store(Store&&) = default;
  Store& operator=(Store&&) = default;

  /// One-shot construction from a Trainer plan: `tables[i]` holds the
  /// values for `plan.tables[i]`. Storage is allocated exactly once.
  static Store from_plan(const StoreConfig& config, const StorePlan& plan,
                         std::span<const EmbeddingTable> tables,
                         BlockStorageFactory storage_factory = nullptr,
                         std::uint64_t seed = 42);

  /// Warm restart: reconstruct a store from the durable manifest at
  /// `manifest_path` — every table's layout, block map, access counts and
  /// policy come back exactly as of the last committed mapping swap, with
  /// NO retraining and NO block writes (the block file already holds the
  /// committed plan bytes; only the DRAM caches start cold). The config's
  /// block/vector geometry must match the manifest's. With the default
  /// null factory the store reopens the manifest's recorded block file via
  /// file_storage_factory(block_file, manifest_path) — preserve mode, with
  /// the file's size verified against the manifest geometry; pass an
  /// explicit factory to reopen through a different backend on the same
  /// bytes (e.g. async_file_storage_factory). Throws std::runtime_error
  /// when the manifest is missing/corrupt or disagrees with the config or
  /// the block file. The reopened store stays attached to the manifest:
  /// subsequent swaps keep committing durably.
  static Store open(const StoreConfig& config, const std::string& manifest_path,
                    BlockStorageFactory storage_factory = nullptr,
                    std::uint64_t seed = 42);

  /// Attach a manifest and commit it immediately: from this call on, every
  /// completed mapping swap (trickle finish, no-op plan install), add_table
  /// and one-shot republish commits a new manifest version crash-atomically
  /// (BlockStorage::sync barrier, then tmp + fsync + rename pointer flip).
  /// `block_file` is recorded so Store::open can find the backing file
  /// (leave empty for storage Store::open will never reopen by path).
  /// StoreBuilder::manifest wires this up at build; call it directly when
  /// constructing a Store by hand.
  void attach_manifest(std::string manifest_path, std::string block_file = "");

  /// The attached manifest path (empty = persistence off).
  const std::string& manifest_path() const { return manifest_path_; }

  /// Completed mapping swaps since the store (lineage) was created —
  /// restored across Store::open, so a warm restart continues the count.
  std::uint64_t trickle_epoch() const;

  /// Test seam: hooks forwarded into write_manifest around the commit's
  /// rename pointer flip (crash injection at the pre/post-flip boundaries).
  void set_manifest_fault_hooks(ManifestCommitHooks hooks);

  /// Pre-size the backing storage to `total_blocks` so subsequent
  /// add_table calls need no copy-grow. StoreBuilder calls this with the
  /// exact plan-wide total.
  void reserve_blocks(std::uint64_t total_blocks);

  /// Register a table: writes `values` to NVM per `layout` and sets up its
  /// DRAM cache. `access_counts` (SHP-run query counts) are required for
  /// the kThreshold policy. Returns the table handle. Prefer StoreBuilder /
  /// from_plan, which size storage once for the whole model; incremental
  /// growth streams already-published blocks through a bounded chunk
  /// buffer, never the whole old storage.
  TableId add_table(const EmbeddingTable& values, BlockLayout layout,
                    TablePolicy policy,
                    std::vector<std::uint32_t> access_counts = {});

  std::size_t num_tables() const { return tables_.size(); }

  /// Serve one whole request. Block reads are deduplicated across every id
  /// list in the request (including repeats of a table) and scheduled
  /// together across the NVM channels, capped at the device queue depth.
  /// Timing is open-loop: reads are submitted at the current clock and the
  /// clock is NOT advanced to the request's completion — pace arrivals with
  /// advance_time_us, and overload shows up as channel backlog growing
  /// request over request (paper Fig. 5). Throws std::out_of_range on a bad
  /// table or vector id, before any part of the request is served.
  MultiGetResult multi_get(const MultiGetRequest& request);

  /// multi_get with an explicit simulated arrival timestamp (negative =
  /// current clock). The cluster router stamps every node sub-request with
  /// the request's arrival at scatter time, so sub-requests served later
  /// (async gather) keep their true arrival order — the same contract
  /// multi_get_async implements internally.
  MultiGetResult multi_get(const MultiGetRequest& request, double arrival_us);

  /// Asynchronous multi_get on `pool`. The request is moved onto the task;
  /// per-shard cache locks let concurrent requests proceed in parallel,
  /// even within one table.
  std::future<MultiGetResult> multi_get_async(MultiGetRequest request,
                                              ThreadPool& pool);

  /// Serve one single-table query (batched lookups) against table `t`.
  /// Writes the vectors contiguously into `out` (ids.size() *
  /// vector_bytes). Returns the simulated service latency in microseconds
  /// (0 when timing is disabled). Block reads within the query are
  /// deduplicated. Throws std::out_of_range on a bad table or vector id
  /// and std::invalid_argument if `out` is too small.
  double lookup_batch(TableId t, std::span<const VectorId> ids,
                      std::span<std::byte> out);

  /// Convenience single lookup.
  double lookup(TableId t, VectorId v, std::span<std::byte> out);

  /// Re-publish a table after retraining (§2.2), in place and in one shot;
  /// counts endurance writes. The new values are plan-diffed against the
  /// bytes already in storage: only changed blocks are rewritten (and only
  /// their members' cached entries dropped — unchanged blocks keep serving
  /// warm), and identical values are a complete no-op that records a
  /// zero-length write wave. The block writes are enqueued on the NVM
  /// channel FIFOs at the current simulated clock WITHOUT advancing it
  /// (open-loop, like multi_get): a live republish leaves write backlog on
  /// the channels and in the admission gate, so concurrent read traffic
  /// sees the paper's mixed-traffic interference (bench_fig05's
  /// read-vs-mixed sweep). Returns the simulated latency of the write wave
  /// (0 when timing is off). This is the unlimited-rate endpoint of the
  /// trickle below: same diff, but the whole wave lands at once.
  double republish(TableId t, const EmbeddingTable& values, double day = 0.0);

  /// Begin a rate-limited trickle republish of table `t` — the production
  /// §2.2 retraining push as a first-class background process. The plan
  /// (typically `Trainer::train` output on freshly sampled traffic; see
  /// core/retrainer.h) may carry a *new layout*: at begin, every block of
  /// the new plan is byte-diffed against the table's current storage,
  /// changed blocks get replacement storage blocks (recycled from the
  /// table's previous republish when possible, else freshly grown — old
  /// blocks are never overwritten), and unchanged blocks are skipped
  /// entirely. Each `TrickleRepublish::pump()` then writes at most the
  /// rate limit's current allowance (`republish_cfg.blocks_per_interval`
  /// per `interval_us` of simulated time) as one IoKind::kWrite wave on
  /// the shared channel FIFOs, open loop, interleaved with serving reads.
  /// When the last wave lands, the table's mapping is swapped atomically
  /// (BandanaTable::swap_state): lookups are always served from a
  /// consistent mapping — entirely old-plan until the swap, entirely
  /// new-plan after — never a mix.
  ///
  /// The plan's cache_vectors is overridden to the table's current DRAM
  /// capacity (online retraining re-packs; it does not re-size DRAM). One
  /// session per table at a time (throws std::logic_error otherwise); the
  /// session must not outlive the store, and an abandoned (destroyed,
  /// unfinished) session returns its replacement blocks for reuse and
  /// leaves the table serving the old plan. A plan identical to what is
  /// already stored completes immediately as a no-op (zero-length wave,
  /// cache kept warm).
  ///
  /// Lifetime: `values` must stay valid until the session is done (or
  /// destroyed). Replacement-block images are NOT buffered up front — each
  /// pump() composes its wave's images lazily from `values` into a
  /// wave-sized buffer, so the session's DRAM overhead is O(wave), not
  /// O(changed blocks) (TrickleRepublish::peak_wave_bytes reports it).
  TrickleRepublish begin_trickle_republish(TableId t,
                                           const EmbeddingTable& values,
                                           TablePlan plan,
                                           const RepublishConfig& republish_cfg,
                                           double day = 0.0);

  // --- Cross-node migration primitives (the donor and target halves of a
  // cluster RebalanceSession; see cluster/rebalance.h) ---

  /// Claim table `t` for a migration read-out: the same one-session-per-
  /// table exclusivity bit as a trickle republish, so the table's mapping
  /// — and therefore every storage block the read-out streams — cannot
  /// swap mid-stream. Serving is unaffected. Throws std::logic_error when
  /// a trickle session or another migration already owns the table, or the
  /// table is retired. Pair with release_table_claim (or retire_table,
  /// which clears the claim terminally).
  void claim_table_for_migration(TableId t);
  void release_table_claim(TableId t) noexcept;

  /// The claimed table's full mapping snapshot (layout, block map, access
  /// counts, policy) — everything a receiving node needs to install an
  /// equivalent table. Requires the migration claim (it is what makes the
  /// snapshot stable across the stream that follows).
  BandanaTable::RetrainedState migration_snapshot(TableId t) const;

  /// Donor-side stream read: copy table t's local blocks
  /// [first_block, first_block + count) into `out` (count x block_bytes)
  /// via batched BlockStorage::read_blocks chunked to the admission wave
  /// size, under the shared storage lock — serving proceeds concurrently —
  /// and account the blocks as one open-loop read wave on the engine, so
  /// migration read-out contends with serving like any other I/O (latency
  /// recorded in migration_latency_us()). Requires the migration claim.
  void read_table_blocks(TableId t, std::uint32_t first_block,
                         std::uint32_t count, std::span<std::byte> out);

  /// Begin a streaming table install — the receiving half of a migration.
  /// Storage for the table is reserved up front (recycling the store-wide
  /// free pool left by retired tables before growing the file) and a
  /// manifest with a pending-install record naming the reserved blocks is
  /// committed BEFORE any byte lands: a crash mid-stream reopens with the
  /// blocks reclaimed and NO half-table. The returned handle streams block
  /// images in admission-sized batched write waves; finish() registers the
  /// table and atomically replaces the pending record with the table in
  /// one commit. Destroying an unfinished handle abandons the install
  /// (blocks return to the free pool). `layout`/`access_counts` must match
  /// the store geometry (vectors_per_block).
  TableInstall begin_table_install(BlockLayout layout, TablePolicy policy,
                                   std::vector<std::uint32_t> access_counts);

  /// Retire table `t`: stop serving it (lookups on a retired table throw
  /// std::logic_error), reclaim its storage blocks — current map plus
  /// replacement bank — into the store-wide free pool for future installs,
  /// and commit. The slot keeps its TableId (a tombstone): later tables do
  /// not shift. Idempotent. A migration retires the donor copy LAST, after
  /// the target's install committed and the placement flipped, so a crash
  /// anywhere in a migration leaves at least one committed replica of
  /// every vector.
  void retire_table(TableId t);
  bool table_retired(TableId t) const;

  /// Attach (or with nullptr detach) the serving-path access tap. Safe to
  /// flip while serving is live: after the call returns, no in-flight
  /// request can still invoke the PREVIOUS tap (the store quiesces on its
  /// serving lock), so the caller may destroy it immediately
  /// (~OnlineRetrainer relies on this).
  void set_access_tap(AccessTap* tap);

  /// Metrics accessors are lock-free snapshots of per-shard counters
  /// (aggregated on read), so polling them never stalls in-flight
  /// multi_get_async requests. Latency accessors take the timing lock.
  TableMetrics table_metrics(TableId t) const;
  TableMetrics total_metrics() const;
  /// Staged-read-pipeline and write-path counters. The staged counters are
  /// a lock-free snapshot like the table metrics; the backend write stats
  /// (write_short_resubmits, registered_buffers_active) are sampled from
  /// the storage under a brief shared lock — it never blocks on serving
  /// reads, only on an in-flight add_table/republish begin.
  StoreMetrics store_metrics() const;
  /// Record one online retrain's phase telemetry into the store counters
  /// (retrain_* in StoreMetrics). Lock-free; called by OnlineRetrainer
  /// after each training run, so dashboards watching store_metrics() see
  /// the retrain latency budget next to the serving counters it protects.
  void note_retrain(double drain_us, double train_us, double diff_us,
                    std::uint64_t peak_training_bytes, bool budget_overrun);
  LatencyRecorder query_latency_us() const;
  /// Per-request service latency of multi_get / multi_get_async calls.
  LatencyRecorder request_latency_us() const;
  /// Per-wave service latency of publish/republish/growth write waves
  /// through the engine (empty when timing is off).
  LatencyRecorder write_latency_us() const;
  /// Per-wave service latency of migration read-out waves
  /// (read_table_blocks) through the engine (empty when timing is off).
  LatencyRecorder migration_latency_us() const;
  /// Snapshot of the endurance accounting (copy taken under the timing
  /// lock — a background trickle may be recording writes concurrently).
  EnduranceTracker endurance() const;
  const StoreConfig& config() const { return config_; }
  const BandanaTable& table(TableId t) const;
  /// The backing storage (memory or file). Valid once a table exists or
  /// reserve_blocks ran.
  const BlockStorage& storage() const { return *storage_; }

  /// Force one epoch-reclaim pass on every table, freeing retired swap
  /// states no straggling lookup can still reference. Each completed
  /// trickle swap already runs a pass on its table; long-lived serving
  /// loops call this to drain stragglers. Returns states freed.
  std::size_t reclaim_retired_states();
  /// Retired table states still awaiting reclamation, summed over tables.
  std::size_t retired_states() const;

  /// Advance the simulated clock (e.g. between request arrivals).
  void advance_time_us(double delta);
  double now_us() const;

 private:
  friend class TrickleRepublish;
  friend class TableInstall;

  /// Grow storage to `total_blocks` via the factory, streaming published
  /// blocks across in bounded chunks (file factories keep their existing
  /// contents on re-creation, so old and new storage coexist).
  void ensure_capacity(std::uint64_t total_blocks);
  /// Peek table t's cache for `ids` (no LRU mutation) and stage every
  /// block the lookups would miss on, up to the staging cap. Miss blocks
  /// seen past the cap are counted (stage_truncated_blocks), not staged —
  /// their lookups defer to a retry wave. The peek is best-effort under
  /// concurrency; the lookups' staged_only deferral makes the pipeline
  /// airtight anyway.
  void stage_miss_blocks(const BandanaTable& table,
                         std::span<const VectorId> ids,
                         StagedBlockReads& staged) const;
  /// Fetch a retry set of deferred lookups' blocks through
  /// BlockStorage::read_blocks in admission-sized waves, counting the
  /// wave, its blocks and the `lookups` it serves in the staging metrics.
  void fetch_retry_blocks(StagedBlockReads& retry, std::size_t lookups) const;
  /// One lookup the staged_only pipeline deferred (block unstaged at
  /// lookup time), queued for a retry wave. `tag` is caller context
  /// handed back through serve_deferred's `account`.
  struct DeferredLookup {
    BandanaTable* table;
    VectorId id;
    std::span<std::byte> out;
    std::uint64_t epoch;
    std::size_t tag;
  };
  /// Serve every deferred lookup through bounded retry waves — the single
  /// place the airtight-pipeline invariant lives: at most kMaxStagedBlocks
  /// distinct blocks per wave, blocks deduplicated across the whole set,
  /// and a retried lookup cannot defer again (its block is in the retry
  /// set, consumed under the shard lock). Invokes `account(tag, outcome)`
  /// for each served lookup, in deferral order.
  void serve_deferred(
      std::vector<DeferredLookup>& deferred,
      const std::function<void(std::size_t,
                               const BandanaTable::LookupOutcome&)>& account);
  /// Blocks per real-I/O wave: the admission cap (queue_depth x channels),
  /// or 0 (single wave) when admission is unbounded.
  std::uint64_t real_read_wave_blocks() const;
  /// Blocks per batched write_blocks() call: the admission cap, or a
  /// bounded default chunk when admission is unbounded (write waves always
  /// bound their compose buffer, unlike the single-wave read case).
  std::uint64_t real_write_wave_blocks() const;
  const BandanaTable& checked_table(TableId t) const;
  BandanaTable& checked_table(TableId t) {
    return const_cast<BandanaTable&>(std::as_const(*this).checked_table(t));
  }
  /// Submit `reads` block reads at `arrival_us` (or the current clock when
  /// negative) through the admission gate and record the latency to the
  /// slowest completion. `advance_clock` selects closed-loop (clock moves
  /// to completion) vs open-loop (clock stays at arrival) semantics.
  double schedule_reads(std::uint64_t reads, LatencyRecorder& recorder,
                        bool advance_clock, double arrival_us = -1.0);
  /// Submit `writes` block writes at the current clock as one admission
  /// wave of IoKind::kWrite events on the engine's channel FIFOs (no-op
  /// when timing is off). Closed loop (`advance_clock`, publish/growth:
  /// the caller waits for the write to land) moves the clock to the wave's
  /// completion, draining the backlog before serving resumes; open loop
  /// (republish: background retraining traffic) leaves the clock at
  /// submission so the write backlog interferes with subsequent reads.
  double schedule_writes(std::uint64_t writes, bool advance_clock);
  /// `arrival_us`: simulated arrival timestamp (negative = current clock).
  /// multi_get_async captures it at submission so that queued requests keep
  /// their true arrival order even when serving lags.
  MultiGetResult multi_get_impl(const MultiGetRequest& request,
                                double arrival_us);

  // Trickle-session plumbing (called by TrickleRepublish on its state).
  /// Diff + arm phase of begin_trickle_republish, entered with the table
  /// already claimed (republish_in_flight_[t] set): the O(table) byte diff
  /// runs under the shared lock, then a brief unique section allocates
  /// replacement blocks. On throw the caller releases the claim.
  TrickleRepublish begin_trickle_claimed(TableId t,
                                         const EmbeddingTable& values,
                                         TablePlan plan,
                                         const RepublishConfig& republish_cfg,
                                         double day);
  std::size_t pump_trickle(detail::TrickleState& s);
  void finish_trickle(detail::TrickleState& s);
  void abandon_trickle(detail::TrickleState& s) noexcept;

  // Streaming-install plumbing (called by TableInstall on its state).
  /// Stream `bytes` (whole block images) into the install's reserved
  /// blocks starting at local index `first`, as admission-sized batched
  /// write waves under the shared lock (the blocks are referenced by no
  /// mapping, so serving proceeds). Returns blocks written.
  std::size_t install_write(detail::InstallState& s, std::uint32_t first,
                            std::span<const std::byte> bytes);
  TableId install_finish(detail::InstallState& s);
  void install_abandon(detail::InstallState& s) noexcept;
  /// Hand out `count` fresh storage blocks: the store-wide free pool
  /// first (blocks reclaimed from retired tables), then tail growth via
  /// ensure_capacity. Caller holds the unique storage lock.
  std::vector<BlockId> allocate_blocks(std::uint64_t count);
  /// Rebuild tables_/free_blocks_/next_block_ from a validated manifest
  /// (Store::open). Caller: fresh store, no tables yet.
  void restore_from(const Manifest& m, const std::string& manifest_path);
  /// Serialize the store's current durable state. Caller holds storage_mu_
  /// (shared or unique) AND manifest_mu_ — the manifest lock is what keeps
  /// the multi-table snapshot consistent against concurrent shared-lock
  /// swaps (finish_trickle takes it around its swap + free-list update).
  Manifest compose_manifest() const;
  /// sync + compose + write_manifest + seq bump, under manifest_mu_ (taken
  /// here). No-op when no manifest is attached. Caller holds storage_mu_.
  /// On throw the previous durable manifest is intact; in-memory state is
  /// unchanged except that data writes may now be synced.
  void commit_manifest();
  /// commit_manifest body for callers already holding manifest_mu_.
  void commit_manifest_mlocked();
  /// Record a zero-length republish write wave (no-op diff): the cadence
  /// stays visible in write_latency_us() and the wave counters.
  void record_empty_write_wave();

  StoreConfig config_;
  BlockStorageFactory storage_factory_;
  std::unique_ptr<BlockStorage> storage_;
  /// Unique: add_table / republish / trickle begin+abandon (storage-map
  /// mutation). Shared: serving and trickle write waves (they write only
  /// blocks no current mapping references).
  std::unique_ptr<std::shared_mutex> storage_mu_;
  std::vector<std::unique_ptr<BandanaTable>> tables_;
  BlockId next_block_ = 0;
  /// Per-table storage blocks retired by completed trickle swaps, reused
  /// by the table's next republish (double buffering: storage stabilizes
  /// near 2x the changed footprint instead of growing per push). Entry t
  /// is touched under the unique lock (begin/abandon) or by table t's
  /// single active session (finish, under the shared lock).
  std::vector<std::vector<BlockId>> free_blocks_;
  /// Per-table flag: a trickle session OR a migration read-out claim is
  /// mid-flight (one per table; both exclude mapping swaps).
  std::vector<std::uint8_t> republish_in_flight_;
  /// Per-table tombstones: retired (migrated-out) tables keep their slot
  /// but no longer serve (checked_table throws).
  std::vector<std::uint8_t> retired_;
  /// Store-wide free pool: blocks reclaimed from retired tables, consumed
  /// by allocate_blocks before the file grows. Distinct from the per-table
  /// free_blocks_ replacement banks (those stay with their table's trickle
  /// double buffer). Touched under the unique storage lock.
  std::vector<BlockId> free_pool_;
  /// In-flight streaming installs' reserved blocks, keyed by install id —
  /// composed into every manifest commit as pending-install records so a
  /// crash mid-stream reclaims them on reopen.
  std::vector<std::pair<std::uint64_t, std::vector<BlockId>>>
      pending_installs_;
  std::uint64_t next_install_id_ = 0;
  /// Persistence (empty path = off). manifest_mu_ serializes manifest
  /// compose/commit against the shared-lock-path mapping swaps and
  /// free-list updates (finish_trickle) — lock order: storage_mu_ (either
  /// mode) then manifest_mu_. seq/epoch are mutated under manifest_mu_ or
  /// the unique storage lock (restore/attach).
  std::string manifest_path_;
  std::string block_file_;
  std::uint64_t manifest_seq_ = 0;
  std::uint64_t trickle_epoch_ = 0;
  std::unique_ptr<std::mutex> manifest_mu_;
  ManifestCommitHooks manifest_hooks_;
  /// Serving-path access tap (behind a pointer so the Store stays movable).
  std::unique_ptr<std::atomic<AccessTap*>> tap_;

  std::unique_ptr<std::mutex> timing_mu_;  ///< Clock, engine, recorders.
  /// Event-driven per-channel device model; all of a request's reads form
  /// one admission wave, and publish/republish writes join the same
  /// channel FIFOs (exercised under timing_mu_).
  NvmIoEngine engine_;
  double now_us_ = 0.0;
  LatencyRecorder query_latency_;
  LatencyRecorder request_latency_;
  LatencyRecorder write_latency_;
  LatencyRecorder migration_latency_;
  EnduranceTracker endurance_;
  /// Staged-read-pipeline counters (relaxed atomics behind a pointer so
  /// the Store stays movable).
  std::unique_ptr<AtomicStoreMetrics> staging_metrics_;
};

/// Handle on one in-flight trickle republish (Store::begin_trickle_republish).
/// pump() is thread-safe against concurrent serving and against pumps of
/// other tables' sessions; calls on one session serialize internally, so a
/// background retrainer thread and a test driver can share it. The session
/// holds a pointer to its store: it must not outlive the store, and the
/// store must not be moved while sessions exist. Destroying an unfinished
/// session abandons the push (replacement blocks are recycled; the table
/// keeps serving the old plan).
class TrickleRepublish {
 public:
  TrickleRepublish(TrickleRepublish&& other) noexcept;
  TrickleRepublish& operator=(TrickleRepublish&& other) noexcept;
  ~TrickleRepublish();

  /// Write up to the rate limit's allowance at the store's current
  /// simulated clock as one open-loop IoKind::kWrite wave; on the final
  /// wave, swap the table's mapping. Returns blocks written by this call
  /// (0 when the interval's allowance is exhausted or the session is done).
  std::size_t pump();

  /// True once the mapping swap happened (or the plan was a no-op).
  bool done() const;

  /// True if this push installed a new mapping (cold-started the cache) —
  /// false only for a complete no-op (identical layout AND bytes).
  bool mapping_swapped() const;

  TableId table() const;
  /// Blocks the plan diff must write (changed blocks only).
  std::uint64_t total_blocks() const;
  std::uint64_t written_blocks() const;
  /// Blocks the diff proved unchanged (they keep their storage blocks).
  std::uint64_t skipped_blocks() const;
  /// Write waves issued so far.
  std::uint64_t waves() const;
  /// Largest compose buffer any pump() of this session filled, in bytes —
  /// the session's peak DRAM overhead for block images. Bounded by
  /// real_write_wave_blocks x block_bytes regardless of push size.
  std::uint64_t peak_wave_bytes() const;

 private:
  friend class Store;
  explicit TrickleRepublish(std::unique_ptr<detail::TrickleState> state);
  std::unique_ptr<detail::TrickleState> state_;
};

/// Handle on one in-flight streaming table install
/// (Store::begin_table_install) — the receiving half of a cluster shard
/// migration. The blocks were reserved (and recorded in a durable
/// pending-install manifest record) at begin; write_blocks() streams block
/// images into them; finish() registers the table and commits. Like
/// TrickleRepublish, calls on one handle serialize internally, the handle
/// must not outlive its store, and destroying it unfinished abandons the
/// install (blocks return to the free pool; a durable commit drops the
/// pending record when possible — a crash before that is recovered by
/// reopen, which reclaims pending blocks).
class TableInstall {
 public:
  TableInstall(TableInstall&& other) noexcept;
  TableInstall& operator=(TableInstall&& other) noexcept;
  ~TableInstall();

  /// Stream `bytes` — a whole number of block images — into the reserved
  /// blocks at local indices [first, first + bytes.size()/block_bytes), as
  /// admission-sized batched write waves (open loop, concurrent with
  /// serving). Returns blocks written. Throws std::out_of_range past the
  /// reservation and std::logic_error after finish().
  std::size_t write_blocks(std::uint32_t first,
                           std::span<const std::byte> bytes);

  /// Register the table and commit: the table appears and the pending
  /// record disappears in ONE manifest flip — recovery sees "no table,
  /// reclaimable blocks" before it and "durable table" after it, never a
  /// half-table. Returns the new TableId.
  TableId finish();

  std::uint32_t total_blocks() const;
  std::uint64_t written_blocks() const;
  std::uint64_t waves() const;

 private:
  friend class Store;
  explicit TableInstall(std::unique_ptr<detail::InstallState> state);
  std::unique_ptr<detail::InstallState> state_;
};

}  // namespace bandana
