// bandana::Store — the public entry point: an NVM-backed embedding store
// with locality-aware placement and a simulation-tuned DRAM cache.
//
// Typical use (see examples/quickstart.cpp):
//
//   StoreConfig cfg;                       // 4 KB blocks, 128 B vectors
//   Store store(cfg);
//   TableId t = store.add_table(values, layout, policy, access_counts);
//   std::vector<float> out(dim);
//   store.lookup_batch(t, query_ids, out_buffer);   // one user request
//
// Misses read whole 4 KB blocks; co-located vectors are admitted to the
// cache per the table's policy. When `simulate_timing` is on, block reads
// flow through the NVM device model and per-query latency is recorded.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/stats.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/table.h"
#include "nvm/block_storage.h"
#include "nvm/endurance.h"
#include "nvm/nvm_device.h"
#include "trace/trace.h"

namespace bandana {

class Store {
 public:
  explicit Store(StoreConfig config, std::uint64_t seed = 42);

  /// Register a table: writes `values` to NVM per `layout` and sets up its
  /// DRAM cache. `access_counts` (SHP-run query counts) are required for
  /// the kThreshold policy. Returns the table handle.
  TableId add_table(const EmbeddingTable& values, BlockLayout layout,
                    TablePolicy policy,
                    std::vector<std::uint32_t> access_counts = {});

  std::size_t num_tables() const { return tables_.size(); }

  /// Serve one query (batched lookups) against table `t`. Writes the
  /// vectors contiguously into `out` (ids.size() * vector_bytes).
  /// Returns the simulated service latency in microseconds (0 when timing
  /// is disabled). Block reads within the query are deduplicated.
  double lookup_batch(TableId t, std::span<const VectorId> ids,
                      std::span<std::byte> out);

  /// Convenience single lookup.
  double lookup(TableId t, VectorId v, std::span<std::byte> out);

  /// Re-publish a table after retraining (§2.2); counts endurance writes.
  void republish(TableId t, const EmbeddingTable& values,
                 double day = 0.0);

  const TableMetrics& table_metrics(TableId t) const;
  TableMetrics total_metrics() const;
  const LatencyRecorder& query_latency_us() const { return query_latency_; }
  const EnduranceTracker& endurance() const { return endurance_; }
  const StoreConfig& config() const { return config_; }
  const BandanaTable& table(TableId t) const { return *tables_[t]; }

  /// Advance the simulated clock (e.g. between request waves).
  void advance_time_us(double delta) { now_us_ += delta; }
  double now_us() const { return now_us_; }

 private:
  StoreConfig config_;
  std::unique_ptr<MemoryBlockStorage> storage_;
  std::vector<std::unique_ptr<BandanaTable>> tables_;
  std::vector<std::vector<std::uint32_t>> block_epochs_;  // per-table dedup
  std::vector<std::uint32_t> epochs_;
  BlockId next_block_ = 0;

  NvmLatencyModel latency_model_;
  std::vector<double> channel_free_us_;
  Rng rng_;
  double now_us_ = 0.0;
  LatencyRecorder query_latency_;
  EnduranceTracker endurance_;
};

}  // namespace bandana
