// Online retraining: close the loop from live serving traffic back to the
// partitioner (paper §2.2 — production embedding models are retrained and
// re-pushed continuously, 10-20 times a day, while serving).
//
// Three pieces:
//
//  * TrafficSampler — an AccessTap on the store's serving path. Every
//    served table-get bumps lock-free per-table counters (seen queries,
//    lookups, hits — the drift monitor) and, at the configured sampling
//    rate, enters a bounded per-table reservoir (Vitter's algorithm R) of
//    whole queries. Queries, not ids: SHP learns from co-access, so the
//    sample must preserve which vectors appeared together.
//
//  * OnlineRetrainer::retrain_now — drains the reservoirs into per-table
//    Traces, re-runs the offline pipeline (Trainer::train: SHP + hit-rate
//    curves + threshold tuning) on the sampled traffic, and opens one
//    rate-limited trickle republish session per table whose plan actually
//    changed (Store::begin_trickle_republish diffs block-by-block; a table
//    whose layout and values are unchanged costs one zero-length wave).
//    DRAM capacities are preserved — online retraining re-packs blocks and
//    re-tunes admission, it does not move DRAM between tables.
//
//  * The background mode (start/stop) — a thread that auto-retrains once
//    enough fresh queries have been sampled and pumps the open sessions,
//    so the whole retrain → trickle → swap cycle runs concurrently with
//    serving. This is the new concurrency boundary: the thread only
//    touches the store through begin_trickle_republish (brief unique
//    lock) and pump (shared lock), and the mapping swap synchronizes with
//    lookups inside BandanaTable.
//
// Determinism: the sampler's reservoir decisions derive from its seed, and
// everything downstream (Trainer, plan diff, trickle waves) is already
// seed-deterministic — a single-threaded serve/retrain/republish schedule
// replays bit-identically (tests/test_replay_golden.cpp). Under concurrent
// serving the reservoir contents depend on arrival interleaving, as a real
// sampler's would.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/store.h"
#include "core/trainer.h"
#include "trace/trace.h"

namespace bandana {

struct SamplerConfig {
  /// Reservoir capacity per table, in queries. Bounds retrain input (and
  /// memory) regardless of traffic volume.
  std::uint64_t reservoir_queries = 2048;
  /// Fraction of served table-gets offered to the reservoir. 1.0 samples
  /// everything (small deployments / tests); production would run at a few
  /// percent, like the paper's SHARDS-style sampling elsewhere.
  double sampling_rate = 1.0;
  std::uint64_t seed = 42;
};

/// Lock-free drift counters of one table (snapshot).
struct TableTrafficStats {
  std::uint64_t seen_queries = 0;  ///< Table-gets offered to the sampler.
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;

  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }
};

class TrafficSampler final : public AccessTap {
 public:
  TrafficSampler(std::size_t num_tables, SamplerConfig cfg);

  /// Serving-path hook (thread-safe): counters are relaxed atomics and the
  /// sampling-rate gate is a lock-free hash of the table's stream position
  /// — the table's small mutex is taken only for the (rare, at production
  /// sampling rates) admitted queries, so the tap does not re-serialize
  /// the sharded cache's same-table parallelism.
  void on_table_get(TableId table, std::span<const VectorId> ids,
                    std::uint64_t hits, std::uint64_t misses) override;

  std::size_t num_tables() const { return tables_.size(); }
  /// Queries admitted into reservoirs since construction (all tables).
  std::uint64_t total_sampled() const {
    return total_sampled_.load(std::memory_order_relaxed);
  }
  /// Queries currently held in table t's reservoir.
  std::uint64_t reservoir_size(TableId t) const;
  TableTrafficStats traffic(TableId t) const;

  /// Move every table's reservoir out as a Trace (one per table, possibly
  /// empty) and reset the reservoirs for the next window. Traffic counters
  /// are cumulative and are NOT reset.
  std::vector<Trace> drain();

  /// Drain one table's reservoir (the retrainer uses this to leave the
  /// windows of tables with a push still in flight accumulating).
  Trace drain_table(TableId t);

 private:
  struct TableSampler {
    std::mutex mu;
    std::vector<std::vector<VectorId>> reservoir;
    Rng rng;                     ///< Reservoir replacement draws (under mu).
    std::uint64_t admitted = 0;  ///< Stream position of algorithm R.
    std::uint64_t gate_salt = 0;
    std::atomic<std::uint64_t> stream{0};  ///< Gate position (lock-free).
    std::atomic<std::uint64_t> seen{0};
    std::atomic<std::uint64_t> lookups{0};
    std::atomic<std::uint64_t> hits{0};

    explicit TableSampler(std::uint64_t seed)
        : rng(seed), gate_salt(splitmix64(seed ^ 0x6A7E6A7EULL)) {}
  };

  SamplerConfig cfg_;
  std::vector<std::unique_ptr<TableSampler>> tables_;
  std::atomic<std::uint64_t> total_sampled_{0};
};

struct RetrainerConfig {
  SamplerConfig sampler;
  /// Offline-pipeline knobs for the retrain runs. total_cache_vectors is
  /// overridden per retrain to the affected tables' current capacities
  /// (DRAM does not move); shp.vectors_per_block follows the store config.
  TrainerConfig trainer;
  /// Trickle rate limit of the republish push (0 blocks_per_interval =
  /// unlimited, the one-shot endpoint).
  RepublishConfig republish;
  /// Background mode: auto-retrain once this many queries were sampled
  /// since the last retrain (0 = never auto-retrain; retrain_now only).
  std::uint64_t min_sampled_queries = 512;
  /// Background thread poll cadence (real time).
  double poll_interval_ms = 1.0;
};

struct RetrainerStats {
  std::uint64_t retrains = 0;          ///< retrain_now invocations that ran.
  std::uint64_t sessions_opened = 0;   ///< Trickle sessions with work to do.
  std::uint64_t tables_unchanged = 0;  ///< Pushes resolved as no-ops.
  std::uint64_t blocks_written = 0;    ///< Across completed sessions.
  std::uint64_t blocks_skipped = 0;    ///< Diff-skipped, across pushes.
  std::uint64_t waves = 0;             ///< Write waves of completed sessions.
  std::uint64_t swaps = 0;             ///< Completed mapping swaps.
  std::uint64_t background_errors = 0; ///< Exceptions the background thread
                                       ///< caught (logged to stderr; the
                                       ///< push was abandoned, serving and
                                       ///< the thread keep running).
  /// Retrain latency budget (also mirrored into StoreMetrics retrain_*):
  /// cumulative wall time per phase, the max training-memory estimate, and
  /// how often training outran the RepublishConfig-derived push budget —
  /// a retrain slower than its own trickle push means stale plans queue up.
  std::uint64_t drain_us = 0;           ///< Phase 1: reservoir drain.
  std::uint64_t train_us = 0;           ///< Phase 2: Trainer::train.
  std::uint64_t diff_us = 0;            ///< Phase 3: plan diff/session open.
  std::uint64_t peak_training_bytes = 0;  ///< Max over retrains.
  std::uint64_t budget_overruns = 0;    ///< train_us > push budget events.
};

/// Ties a Store, a TrafficSampler and the Trainer into the live retraining
/// loop. Construction attaches the sampler to the store's serving path;
/// destruction stops the background thread (if started) and detaches it.
/// The retrainer must be destroyed before the store, and the store must
/// not be moved while the retrainer exists. `values(t)` supplies the
/// embedding bytes to push for table t — in production the freshly
/// retrained values; it is called from whichever thread retrains, and the
/// returned reference must stay valid until that push's trickle session
/// completes (block images are composed lazily per wave, so the session
/// reads from the values for its whole lifetime — the retrainer pumps
/// every session it opens to completion before it returns or retrains
/// again, so a provider whose referents outlive the retrainer satisfies
/// this automatically).
class OnlineRetrainer {
 public:
  using ValuesProvider = std::function<const EmbeddingTable&(TableId)>;

  OnlineRetrainer(Store& store, RetrainerConfig cfg, ValuesProvider values);
  ~OnlineRetrainer();

  OnlineRetrainer(const OnlineRetrainer&) = delete;
  OnlineRetrainer& operator=(const OnlineRetrainer&) = delete;

  TrafficSampler& sampler() { return sampler_; }
  const TrafficSampler& sampler() const { return sampler_; }

  /// Synchronous retrain: drain the reservoirs, run Trainer::train on
  /// every table with sampled traffic (and no session already in flight),
  /// and open trickle sessions for the tables whose plan changed. Returns
  /// the number of sessions opened (no-op pushes complete immediately and
  /// count as tables_unchanged). Safe to call while the background thread
  /// runs: the training itself runs outside the retrainer lock (so
  /// stats()/pump() never stall behind it), and a retrain already in
  /// progress on another thread makes this call return 0.
  std::size_t retrain_now();

  /// Pump every open session once at the store's current simulated clock;
  /// completed sessions are retired into stats(). Returns blocks written.
  std::size_t pump();

  /// True while any trickle session is unfinished.
  bool republishing() const;

  RetrainerStats stats() const;

  /// Start/stop the background thread (idempotent). While running it
  /// pumps open sessions and auto-retrains per min_sampled_queries.
  void start();
  void stop();

 private:
  std::size_t retrain_impl();
  std::size_t pump_locked();
  void run();

  Store& store_;
  RetrainerConfig cfg_;
  ValuesProvider values_;
  TrafficSampler sampler_;

  mutable std::mutex mu_;  ///< sessions_ + stats_ + retrain_running_.
  std::vector<TrickleRepublish> sessions_;
  RetrainerStats stats_;
  /// A retrain is between its drain and session-open phases (training
  /// runs unlocked; this keeps a second retrain from double-draining).
  bool retrain_running_ = false;
  std::atomic<std::uint64_t> sampled_at_last_retrain_{0};

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace bandana
