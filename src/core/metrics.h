// Operational counters exposed by the store (per table and aggregated).
#pragma once

#include <atomic>
#include <cstdint>

namespace bandana {

struct TableMetrics {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t nvm_block_reads = 0;
  std::uint64_t prefetch_inserted = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t nvm_bytes_read = 0;   ///< block_bytes * nvm_block_reads
  std::uint64_t miss_bytes = 0;       ///< vector_bytes * (lookups - hits)
  std::uint64_t app_bytes_served = 0; ///< vector_bytes * lookups
  std::uint64_t republish_writes = 0; ///< vectors rewritten via update()

  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }

  /// Fraction of NVM read traffic that carried application-requested bytes
  /// ("effective bandwidth", paper §4.1 — 4 % for the naive baseline).
  double effective_bandwidth_fraction() const {
    return nvm_bytes_read ? static_cast<double>(miss_bytes) /
                                static_cast<double>(nvm_bytes_read)
                          : 0.0;
  }

  TableMetrics& operator+=(const TableMetrics& o) {
    lookups += o.lookups;
    hits += o.hits;
    nvm_block_reads += o.nvm_block_reads;
    prefetch_inserted += o.prefetch_inserted;
    prefetch_hits += o.prefetch_hits;
    nvm_bytes_read += o.nvm_bytes_read;
    miss_bytes += o.miss_bytes;
    app_bytes_served += o.app_bytes_served;
    republish_writes += o.republish_writes;
    return *this;
  }
};

/// Write side of TableMetrics for the sharded serving path: shard-local
/// lookups bump relaxed atomics (no lock, no cross-shard cache-line
/// ping-pong beyond the counter itself), and readers take a lock-free
/// snapshot at any time — metrics accessors never stall serving.
struct AtomicTableMetrics {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> nvm_block_reads{0};
  std::atomic<std::uint64_t> prefetch_inserted{0};
  std::atomic<std::uint64_t> prefetch_hits{0};
  std::atomic<std::uint64_t> nvm_bytes_read{0};
  std::atomic<std::uint64_t> miss_bytes{0};
  std::atomic<std::uint64_t> app_bytes_served{0};
  std::atomic<std::uint64_t> republish_writes{0};

  /// Each counter is individually consistent; the set is as consistent as
  /// any point-in-time poll of a live system can be.
  TableMetrics snapshot() const {
    TableMetrics m;
    m.lookups = lookups.load(std::memory_order_relaxed);
    m.hits = hits.load(std::memory_order_relaxed);
    m.nvm_block_reads = nvm_block_reads.load(std::memory_order_relaxed);
    m.prefetch_inserted = prefetch_inserted.load(std::memory_order_relaxed);
    m.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    m.nvm_bytes_read = nvm_bytes_read.load(std::memory_order_relaxed);
    m.miss_bytes = miss_bytes.load(std::memory_order_relaxed);
    m.app_bytes_served = app_bytes_served.load(std::memory_order_relaxed);
    m.republish_writes = republish_writes.load(std::memory_order_relaxed);
    return m;
  }
};

}  // namespace bandana
