// Operational counters exposed by the store (per table and aggregated).
#pragma once

#include <cstdint>

namespace bandana {

struct TableMetrics {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t nvm_block_reads = 0;
  std::uint64_t prefetch_inserted = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t nvm_bytes_read = 0;   ///< block_bytes * nvm_block_reads
  std::uint64_t miss_bytes = 0;       ///< vector_bytes * (lookups - hits)
  std::uint64_t app_bytes_served = 0; ///< vector_bytes * lookups
  std::uint64_t republish_writes = 0; ///< vectors rewritten via update()

  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }

  /// Fraction of NVM read traffic that carried application-requested bytes
  /// ("effective bandwidth", paper §4.1 — 4 % for the naive baseline).
  double effective_bandwidth_fraction() const {
    return nvm_bytes_read ? static_cast<double>(miss_bytes) /
                                static_cast<double>(nvm_bytes_read)
                          : 0.0;
  }

  TableMetrics& operator+=(const TableMetrics& o) {
    lookups += o.lookups;
    hits += o.hits;
    nvm_block_reads += o.nvm_block_reads;
    prefetch_inserted += o.prefetch_inserted;
    prefetch_hits += o.prefetch_hits;
    nvm_bytes_read += o.nvm_bytes_read;
    miss_bytes += o.miss_bytes;
    app_bytes_served += o.app_bytes_served;
    republish_writes += o.republish_writes;
    return *this;
  }
};

}  // namespace bandana
