// Operational counters exposed by the store (per table and aggregated).
#pragma once

#include <atomic>
#include <cstdint>

namespace bandana {

struct TableMetrics {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t nvm_block_reads = 0;
  std::uint64_t prefetch_inserted = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t nvm_bytes_read = 0;   ///< block_bytes * nvm_block_reads
  std::uint64_t miss_bytes = 0;       ///< vector_bytes * (lookups - hits)
  std::uint64_t app_bytes_served = 0; ///< vector_bytes * lookups
  std::uint64_t republish_writes = 0; ///< vectors rewritten via update()

  double hit_rate() const {
    return lookups ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
  }

  /// Fraction of NVM read traffic that carried application-requested bytes
  /// ("effective bandwidth", paper §4.1 — 4 % for the naive baseline).
  double effective_bandwidth_fraction() const {
    return nvm_bytes_read ? static_cast<double>(miss_bytes) /
                                static_cast<double>(nvm_bytes_read)
                          : 0.0;
  }

  /// Snapshot aggregation: fold another table's (or node's) counters into
  /// this rollup. The per-table rollups (Store::total_metrics, the bench
  /// sweeps) and the cluster-wide rollup (cluster/store_cluster.h) all go
  /// through here.
  TableMetrics& merge(const TableMetrics& o) {
    lookups += o.lookups;
    hits += o.hits;
    nvm_block_reads += o.nvm_block_reads;
    prefetch_inserted += o.prefetch_inserted;
    prefetch_hits += o.prefetch_hits;
    nvm_bytes_read += o.nvm_bytes_read;
    miss_bytes += o.miss_bytes;
    app_bytes_served += o.app_bytes_served;
    republish_writes += o.republish_writes;
    return *this;
  }

  TableMetrics& operator+=(const TableMetrics& o) { return merge(o); }
};

/// Store-wide counters of the staged (batched real-I/O) read pipeline.
/// They make the pipeline's coverage gaps visible: a healthy staged path
/// serves every miss from staged bytes (inline_reads stays 0) and stages
/// every miss block up front (deferred counters stay near 0 — they grow
/// only when concurrency evicts a peeked block before its lookup, or the
/// staging cap truncates).
struct StoreMetrics {
  std::uint64_t staged_blocks = 0;       ///< Blocks fetched by the peek pass.
  std::uint64_t stage_truncated_blocks = 0;  ///< Miss-block sightings past the
                                             ///< staging cap (not staged, not
                                             ///< deduplicated across sightings).
  std::uint64_t deferred_lookups = 0;    ///< Lookups whose block was unstaged
                                         ///< (evicted peek->lookup, or
                                         ///< truncated) and went to a retry.
  std::uint64_t retry_blocks = 0;        ///< Deduplicated blocks fetched by
                                         ///< retry waves.
  std::uint64_t retry_waves = 0;         ///< Batched retry fetches issued.
  std::uint64_t write_waves = 0;         ///< Publish/republish/growth write
                                         ///< waves scheduled on the engine
                                         ///< (including zero-length no-op
                                         ///< republish waves).
  std::uint64_t write_blocks = 0;        ///< Blocks carried by those waves.
  std::uint64_t write_batches = 0;       ///< Batched write_blocks() calls the
                                         ///< store's write paths issued
                                         ///< (publish/republish/growth/
                                         ///< trickle waves). Chunking is
                                         ///< decided by the store, so the
                                         ///< count is backend-identical.
  std::uint64_t write_short_resubmits = 0;  ///< Partial device writes the
                                            ///< async backend resubmitted for
                                            ///< the remaining byte range
                                            ///< (0 on inline backends).
  std::uint64_t republish_skipped_blocks = 0;  ///< Blocks a republish plan
                                               ///< diff proved unchanged and
                                               ///< never rewrote.
  std::uint64_t mapping_swaps = 0;       ///< Trickle republishes that
                                         ///< completed and swapped a table's
                                         ///< block mapping.
  std::uint64_t manifest_commits = 0;    ///< Durable manifest commits (sync +
                                         ///< pointer flip) the store made; 0
                                         ///< when no manifest is attached.
  std::uint64_t retrain_runs = 0;        ///< Online retrains that trained.
  std::uint64_t retrain_drain_us = 0;    ///< Cumulative sample-drain wall us.
  std::uint64_t retrain_train_us = 0;    ///< Cumulative training wall us.
  std::uint64_t retrain_diff_us = 0;     ///< Cumulative plan-diff/session-
                                         ///< open wall us.
  std::uint64_t retrain_peak_training_bytes = 0;  ///< Max over retrains of
                                                  ///< the trainer's peak
                                                  ///< resident estimate.
  std::uint64_t retrain_budget_overruns = 0;  ///< Retrains whose training
                                              ///< wall time exceeded the
                                              ///< RepublishConfig-derived
                                              ///< push budget.
  std::uint64_t migration_read_blocks = 0;   ///< Donor blocks read out by
                                             ///< read_table_blocks waves.
  std::uint64_t migration_write_blocks = 0;  ///< Blocks streamed into tables
                                             ///< via TableInstall waves.
  std::uint64_t table_installs = 0;          ///< Streaming installs finished
                                             ///< (migrated-in tables).
  std::uint64_t tables_retired = 0;          ///< Tables retired (migrated
                                             ///< out, blocks reclaimed).
  bool registered_buffers_active = false;  ///< The backend carries waves on
                                           ///< an io_uring registered-buffer
                                           ///< pool (zero-copy FIXED ops).

  /// Snapshot aggregation: fold another store's counters into this rollup
  /// (the cluster tier merges every node's snapshot into one
  /// ClusterMetrics; a 1-node cluster's merged rollup is field-identical
  /// to the bare store's snapshot).
  StoreMetrics& merge(const StoreMetrics& o) {
    staged_blocks += o.staged_blocks;
    stage_truncated_blocks += o.stage_truncated_blocks;
    deferred_lookups += o.deferred_lookups;
    retry_blocks += o.retry_blocks;
    retry_waves += o.retry_waves;
    write_waves += o.write_waves;
    write_blocks += o.write_blocks;
    write_batches += o.write_batches;
    write_short_resubmits += o.write_short_resubmits;
    republish_skipped_blocks += o.republish_skipped_blocks;
    mapping_swaps += o.mapping_swaps;
    manifest_commits += o.manifest_commits;
    retrain_runs += o.retrain_runs;
    retrain_drain_us += o.retrain_drain_us;
    retrain_train_us += o.retrain_train_us;
    retrain_diff_us += o.retrain_diff_us;
    retrain_peak_training_bytes =
        retrain_peak_training_bytes > o.retrain_peak_training_bytes
            ? retrain_peak_training_bytes
            : o.retrain_peak_training_bytes;
    retrain_budget_overruns += o.retrain_budget_overruns;
    migration_read_blocks += o.migration_read_blocks;
    migration_write_blocks += o.migration_write_blocks;
    table_installs += o.table_installs;
    tables_retired += o.tables_retired;
    // A rollup is "registered" when any node carries its waves zero-copy.
    registered_buffers_active = registered_buffers_active ||
                                o.registered_buffers_active;
    return *this;
  }

  StoreMetrics& operator+=(const StoreMetrics& o) { return merge(o); }
};

/// Write side of StoreMetrics: bumped from concurrent request streams with
/// relaxed atomics, snapshotted lock-free like AtomicTableMetrics.
struct AtomicStoreMetrics {
  std::atomic<std::uint64_t> staged_blocks{0};
  std::atomic<std::uint64_t> stage_truncated_blocks{0};
  std::atomic<std::uint64_t> deferred_lookups{0};
  std::atomic<std::uint64_t> retry_blocks{0};
  std::atomic<std::uint64_t> retry_waves{0};
  std::atomic<std::uint64_t> write_waves{0};
  std::atomic<std::uint64_t> write_blocks{0};
  std::atomic<std::uint64_t> write_batches{0};
  std::atomic<std::uint64_t> republish_skipped_blocks{0};
  std::atomic<std::uint64_t> mapping_swaps{0};
  std::atomic<std::uint64_t> manifest_commits{0};
  std::atomic<std::uint64_t> retrain_runs{0};
  std::atomic<std::uint64_t> retrain_drain_us{0};
  std::atomic<std::uint64_t> retrain_train_us{0};
  std::atomic<std::uint64_t> retrain_diff_us{0};
  std::atomic<std::uint64_t> retrain_peak_training_bytes{0};
  std::atomic<std::uint64_t> retrain_budget_overruns{0};
  std::atomic<std::uint64_t> migration_read_blocks{0};
  std::atomic<std::uint64_t> migration_write_blocks{0};
  std::atomic<std::uint64_t> table_installs{0};
  std::atomic<std::uint64_t> tables_retired{0};
  // write_short_resubmits and registered_buffers_active live in the
  // storage backend (BlockStorage::write_stats); Store::store_metrics()
  // samples them into the snapshot.

  /// Monotonic max (the peak is a high-water mark, not a sum).
  void note_peak_training_bytes(std::uint64_t bytes) {
    std::uint64_t cur =
        retrain_peak_training_bytes.load(std::memory_order_relaxed);
    while (bytes > cur && !retrain_peak_training_bytes.compare_exchange_weak(
                              cur, bytes, std::memory_order_relaxed)) {
    }
  }

  StoreMetrics snapshot() const {
    StoreMetrics m;
    m.staged_blocks = staged_blocks.load(std::memory_order_relaxed);
    m.stage_truncated_blocks =
        stage_truncated_blocks.load(std::memory_order_relaxed);
    m.deferred_lookups = deferred_lookups.load(std::memory_order_relaxed);
    m.retry_blocks = retry_blocks.load(std::memory_order_relaxed);
    m.retry_waves = retry_waves.load(std::memory_order_relaxed);
    m.write_waves = write_waves.load(std::memory_order_relaxed);
    m.write_blocks = write_blocks.load(std::memory_order_relaxed);
    m.write_batches = write_batches.load(std::memory_order_relaxed);
    m.republish_skipped_blocks =
        republish_skipped_blocks.load(std::memory_order_relaxed);
    m.mapping_swaps = mapping_swaps.load(std::memory_order_relaxed);
    m.manifest_commits = manifest_commits.load(std::memory_order_relaxed);
    m.retrain_runs = retrain_runs.load(std::memory_order_relaxed);
    m.retrain_drain_us = retrain_drain_us.load(std::memory_order_relaxed);
    m.retrain_train_us = retrain_train_us.load(std::memory_order_relaxed);
    m.retrain_diff_us = retrain_diff_us.load(std::memory_order_relaxed);
    m.retrain_peak_training_bytes =
        retrain_peak_training_bytes.load(std::memory_order_relaxed);
    m.retrain_budget_overruns =
        retrain_budget_overruns.load(std::memory_order_relaxed);
    m.migration_read_blocks =
        migration_read_blocks.load(std::memory_order_relaxed);
    m.migration_write_blocks =
        migration_write_blocks.load(std::memory_order_relaxed);
    m.table_installs = table_installs.load(std::memory_order_relaxed);
    m.tables_retired = tables_retired.load(std::memory_order_relaxed);
    return m;
  }
};

/// Write side of TableMetrics for the sharded serving path: shard-local
/// lookups bump relaxed atomics (no lock, no cross-shard cache-line
/// ping-pong beyond the counter itself), and readers take a lock-free
/// snapshot at any time — metrics accessors never stall serving.
struct AtomicTableMetrics {
  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> nvm_block_reads{0};
  std::atomic<std::uint64_t> prefetch_inserted{0};
  std::atomic<std::uint64_t> prefetch_hits{0};
  std::atomic<std::uint64_t> nvm_bytes_read{0};
  std::atomic<std::uint64_t> miss_bytes{0};
  std::atomic<std::uint64_t> app_bytes_served{0};
  std::atomic<std::uint64_t> republish_writes{0};

  /// Each counter is individually consistent; the set is as consistent as
  /// any point-in-time poll of a live system can be.
  TableMetrics snapshot() const {
    TableMetrics m;
    m.lookups = lookups.load(std::memory_order_relaxed);
    m.hits = hits.load(std::memory_order_relaxed);
    m.nvm_block_reads = nvm_block_reads.load(std::memory_order_relaxed);
    m.prefetch_inserted = prefetch_inserted.load(std::memory_order_relaxed);
    m.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    m.nvm_bytes_read = nvm_bytes_read.load(std::memory_order_relaxed);
    m.miss_bytes = miss_bytes.load(std::memory_order_relaxed);
    m.app_bytes_served = app_bytes_served.load(std::memory_order_relaxed);
    m.republish_writes = republish_writes.load(std::memory_order_relaxed);
    return m;
  }
};

}  // namespace bandana
