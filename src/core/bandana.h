// Umbrella header: everything a Bandana user needs.
//
// Bandana (Eisenman et al., MLSYS 2019) stores deep-learning embedding
// tables on NVM with a small DRAM cache, recovering NVM's read bandwidth by
// (a) packing co-accessed vectors into the same 4 KB block via hypergraph
// partitioning (SHP) and (b) tuning prefetch admission per table with
// miniature cache simulations.
#pragma once

#include "cache/cache_sim.h"        // IWYU pragma: export
#include "cache/dram_allocator.h"   // IWYU pragma: export
#include "cache/lru_cache.h"        // IWYU pragma: export
#include "cache/mini_cache.h"       // IWYU pragma: export
#include "cache/sharded_lru.h"      // IWYU pragma: export
#include "cluster/router.h"         // IWYU pragma: export
#include "cluster/store_cluster.h"  // IWYU pragma: export
#include "core/config.h"            // IWYU pragma: export
#include "core/manifest.h"          // IWYU pragma: export
#include "core/metrics.h"           // IWYU pragma: export
#include "core/request.h"           // IWYU pragma: export
#include "core/retrainer.h"         // IWYU pragma: export
#include "core/store.h"             // IWYU pragma: export
#include "core/store_builder.h"     // IWYU pragma: export
#include "core/trainer.h"           // IWYU pragma: export
#include "nvm/admission.h"          // IWYU pragma: export
#include "nvm/async_file_storage.h" // IWYU pragma: export
#include "nvm/block_storage.h"      // IWYU pragma: export
#include "nvm/endurance.h"          // IWYU pragma: export
#include "nvm/io_engine.h"          // IWYU pragma: export
#include "nvm/nvm_device.h"         // IWYU pragma: export
#include "partition/fanout.h"       // IWYU pragma: export
#include "partition/hypergraph.h"   // IWYU pragma: export
#include "partition/kmeans.h"       // IWYU pragma: export
#include "partition/layout.h"       // IWYU pragma: export
#include "partition/partitioner.h"  // IWYU pragma: export
#include "partition/shp.h"          // IWYU pragma: export
#include "trace/characterizer.h"    // IWYU pragma: export
#include "trace/paper_workload.h"   // IWYU pragma: export
#include "trace/stack_distance.h"   // IWYU pragma: export
#include "trace/trace_generator.h"  // IWYU pragma: export
#include "trace/trace_stream.h"     // IWYU pragma: export
