#include "core/store_builder.h"

#include <stdexcept>

namespace bandana {

StoreBuilder& StoreBuilder::add_table(const EmbeddingTable& values,
                                      TablePlan plan) {
  pending_.push_back({&values, std::move(plan)});
  return *this;
}

StoreBuilder& StoreBuilder::add_plan(const StorePlan& plan,
                                     std::span<const EmbeddingTable> tables) {
  if (tables.size() != plan.tables.size()) {
    throw std::invalid_argument(
        "add_plan: one EmbeddingTable per TablePlan required");
  }
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    add_table(tables[i], plan.tables[i]);
  }
  return *this;
}

std::uint64_t StoreBuilder::total_blocks() const {
  std::uint64_t total = 0;
  for (const auto& p : pending_) total += p.plan.layout.num_blocks();
  return total;
}

Store StoreBuilder::build() {
  Store store(config_, factory_ ? std::move(factory_)
                                : memory_storage_factory(),
              seed_);
  store.reserve_blocks(total_blocks());
  for (auto& p : pending_) {
    store.add_table(*p.values, std::move(p.plan.layout),
                    std::move(p.plan.policy), std::move(p.plan.access_counts));
  }
  pending_.clear();
  return store;
}

}  // namespace bandana
