#include "core/store_builder.h"

#include <cstdio>
#include <stdexcept>

#include "core/manifest.h"

namespace bandana {

StoreBuilder& StoreBuilder::add_table(const EmbeddingTable& values,
                                      TablePlan plan) {
  pending_.push_back({&values, std::move(plan)});
  return *this;
}

StoreBuilder& StoreBuilder::add_plan(const StorePlan& plan,
                                     std::span<const EmbeddingTable> tables) {
  if (tables.size() != plan.tables.size()) {
    throw std::invalid_argument(
        "add_plan: one EmbeddingTable per TablePlan required");
  }
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    add_table(tables[i], plan.tables[i]);
  }
  return *this;
}

StoreBuilder& StoreBuilder::train_and_add(
    const TrainerConfig& trainer_cfg, std::span<const Trace> train_traces,
    std::span<const EmbeddingTable> tables, ThreadPool* pool,
    TrainerStats* stats) {
  if (train_traces.size() != tables.size()) {
    throw std::invalid_argument(
        "train_and_add: one training trace per EmbeddingTable required");
  }
  std::vector<std::uint32_t> sizes;
  std::vector<const EmbeddingTable*> values;
  sizes.reserve(tables.size());
  values.reserve(tables.size());
  for (const EmbeddingTable& t : tables) {
    sizes.push_back(t.num_vectors());
    values.push_back(&t);
  }
  const Trainer trainer(config_, trainer_cfg);
  StorePlan plan = trainer.train(train_traces, sizes, pool, values, stats);
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    add_table(tables[i], std::move(plan.tables[i]));
  }
  return *this;
}

std::uint64_t StoreBuilder::total_blocks() const {
  std::uint64_t total = 0;
  for (const auto& p : pending_) total += p.plan.layout.num_blocks();
  return total;
}

BlockStorageFactory StoreBuilder::materialize_factory(bool for_open) {
  switch (backend_) {
    case Backend::kCustom:
      return factory_;
    case Backend::kMemory:
      // nullptr for open: Store::open then rejects a manifest with no block
      // file instead of silently opening empty heap storage.
      return for_open ? nullptr : memory_storage_factory();
    case Backend::kFile:
      return file_storage_factory(file_path_, manifest_path_);
    case Backend::kAsyncFile:
      return async_file_storage_factory(file_path_, async_options_,
                                        manifest_path_);
  }
  return nullptr;
}

Store StoreBuilder::build() {
  if (!manifest_path_.empty()) {
    // Explicit rebuild: delete any previous store's manifest FIRST, so the
    // manifest-routed factories see nothing to recover and truncate
    // cleanly. A crash mid-build recovers to "no store" — never to a torn
    // mix of the old store and the half-built one.
    std::remove(manifest_path_.c_str());
    std::remove((manifest_path_ + ".tmp").c_str());
  }
  Store store(config_, materialize_factory(/*for_open=*/false), seed_);
  store.reserve_blocks(total_blocks());
  for (auto& p : pending_) {
    store.add_table(*p.values, std::move(p.plan.layout),
                    std::move(p.plan.policy), std::move(p.plan.access_counts));
  }
  pending_.clear();
  if (!manifest_path_.empty()) {
    const bool file_backed =
        backend_ == Backend::kFile || backend_ == Backend::kAsyncFile;
    store.attach_manifest(manifest_path_, file_backed ? file_path_ : "");
  }
  return store;
}

Store StoreBuilder::open_or_build() {
  if (manifest_path_.empty()) {
    throw std::logic_error("open_or_build: manifest(path) must be set");
  }
  if (manifest_valid(manifest_path_)) {
    pending_.clear();
    return Store::open(config_, manifest_path_,
                       materialize_factory(/*for_open=*/true), seed_);
  }
  return build();
}

}  // namespace bandana
