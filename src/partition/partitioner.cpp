#include "partition/partitioner.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"
#include "partition/coaccess.h"

namespace bandana {

const char* backend_name(PartitionerBackend backend) {
  switch (backend) {
    case PartitionerBackend::kShp:
      return "shp";
    case PartitionerBackend::kRecursiveKMeans:
      return "kmeans";
    case PartitionerBackend::kHypergraph:
      return "hypergraph";
  }
  return "unknown";
}

void validate(const PartitionerConfig& config) {
  switch (config.backend) {
    case PartitionerBackend::kShp:
      validate(config.shp);
      break;
    case PartitionerBackend::kRecursiveKMeans:
      validate(config.kmeans);
      break;
    case PartitionerBackend::kHypergraph:
      validate(config.hypergraph);
      break;
    default:
      throw std::invalid_argument("PartitionerConfig: unknown backend");
  }
  if (config.chunk_queries == 0) {
    throw std::invalid_argument("PartitionerConfig: chunk_queries must be > 0");
  }
}

PartitionResult ShpPartitioner::partition(const Trace& train,
                                          std::uint32_t num_vectors,
                                          const EmbeddingTable* /*values*/,
                                          ThreadPool* pool) const {
  ShpResult shp = run_shp(train, num_vectors, config_, pool);
  PartitionResult out;
  out.order = std::move(shp.order);
  out.access_counts = std::move(shp.access_counts);
  out.initial_avg_fanout = shp.initial_avg_fanout;
  out.final_avg_fanout = shp.final_avg_fanout;
  out.peak_training_bytes = shp.peak_memory_bytes + trace_byte_size(train);
  return out;
}

PartitionResult RecursiveKMeansPartitioner::partition(
    const Trace& train, std::uint32_t num_vectors,
    const EmbeddingTable* values, ThreadPool* pool) const {
  if (values == nullptr) {
    throw std::invalid_argument(
        "RecursiveKMeansPartitioner: embedding values required (semantic "
        "partitioning clusters vectors, not accesses)");
  }
  if (values->num_vectors() != num_vectors) {
    throw std::invalid_argument(
        "RecursiveKMeansPartitioner: values table size mismatch");
  }
  validate(config_);
  if (train.num_queries() == 0) {
    throw std::invalid_argument(
        "RecursiveKMeansPartitioner: empty training trace");
  }
  // The trace still supplies access counts (admission filter) and the
  // fanout quality metric; only the placement itself is value-based.
  const CoAccessGraph h = build_coaccess(train, num_vectors, 0);
  PartitionResult out;
  out.access_counts.resize(num_vectors);
  for (VectorId v = 0; v < num_vectors; ++v) {
    out.access_counts[v] = h.degree(v);
  }
  const std::uint32_t vpb = vectors_per_block_;
  const std::uint32_t num_blocks = (num_vectors + vpb - 1) / vpb;
  {
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t v = 0; v < num_vectors; ++v) block_of[v] = v / vpb;
    out.initial_avg_fanout = coaccess_fanout(h, block_of, num_blocks);
  }
  RecursiveKMeansResult km = recursive_kmeans(*values, config_, pool);
  out.order = std::move(km.order);
  {
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t i = 0; i < num_vectors; ++i) {
      block_of[out.order[i]] = i / vpb;
    }
    out.final_avg_fanout = coaccess_fanout(h, block_of, num_blocks);
  }
  // CSR + order/block_of + centroid/sum scratch of the widest Lloyd stage.
  out.peak_training_bytes =
      h.byte_size() + trace_byte_size(train) +
      std::uint64_t{num_vectors} * (4 + 4) +
      std::uint64_t{config_.top_clusters} * values->dim() * 12;
  return out;
}

PartitionResult HypergraphPartitioner::partition(
    const Trace& train, std::uint32_t num_vectors,
    const EmbeddingTable* /*values*/, ThreadPool* /*pool*/) const {
  HypergraphResult hg = run_hypergraph(train, num_vectors, config_);
  PartitionResult out;
  out.order = std::move(hg.order);
  out.access_counts = std::move(hg.access_counts);
  out.initial_avg_fanout = hg.initial_avg_fanout;
  out.final_avg_fanout = hg.final_avg_fanout;
  out.peak_training_bytes = hg.peak_memory_bytes + trace_byte_size(train);
  return out;
}

PartitionResult Partitioner::partition_stream(TraceSource& source,
                                              std::uint32_t num_vectors,
                                              const PartitionerConfig& config,
                                              const EmbeddingTable* values,
                                              ThreadPool* pool,
                                              Trace* sampled_out) const {
  validate(config);
  if (config.max_train_queries == 0) {
    throw std::invalid_argument(
        "partition_stream: max_train_queries must be > 0 (reservoir size)");
  }
  const std::size_t cap = config.max_train_queries;
  std::vector<std::vector<VectorId>> reservoir;
  reservoir.reserve(cap);
  std::vector<std::uint32_t> counts(num_vectors, 0);
  Rng rng(config.stream_seed);
  Trace chunk;
  std::vector<VectorId> dedup;
  std::size_t seen = 0;
  std::uint64_t reservoir_bytes = 0;
  std::uint64_t peak_bytes = 0;

  for (;;) {
    chunk = Trace();
    const std::size_t got = source.next_chunk(chunk, config.chunk_queries);
    if (got == 0) break;
    for (std::size_t q = 0; q < got; ++q, ++seen) {
      const auto ids = chunk.query(q);
      // Full-stream access counts, deduplicated per query (the same
      // statistic the batch hypergraph degree measures).
      dedup.assign(ids.begin(), ids.end());
      std::sort(dedup.begin(), dedup.end());
      dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
      for (const VectorId v : dedup) ++counts[v];
      // Vitter's Algorithm R.
      if (reservoir.size() < cap) {
        reservoir.emplace_back(ids.begin(), ids.end());
        reservoir_bytes += ids.size() * sizeof(VectorId);
      } else {
        const std::size_t j = rng.next_below(seen + 1);
        if (j < cap) {
          reservoir_bytes -= reservoir[j].size() * sizeof(VectorId);
          reservoir[j].assign(ids.begin(), ids.end());
          reservoir_bytes += ids.size() * sizeof(VectorId);
        }
      }
    }
    peak_bytes = std::max(peak_bytes, reservoir_bytes + trace_byte_size(chunk));
  }
  if (reservoir.empty()) {
    throw std::invalid_argument("partition_stream: empty training stream");
  }

  // Materialize only the sample, release the reservoir, run the backend.
  Trace sampled;
  {
    std::uint64_t lookups = 0;
    for (const auto& q : reservoir) lookups += q.size();
    sampled.reserve(reservoir.size(), lookups);
  }
  for (const auto& q : reservoir) sampled.add_query(q);
  peak_bytes =
      std::max(peak_bytes, reservoir_bytes + trace_byte_size(sampled));
  reservoir.clear();
  reservoir.shrink_to_fit();

  PartitionResult out = partition(sampled, num_vectors, values, pool);
  out.peak_training_bytes = std::max(peak_bytes, out.peak_training_bytes);
  out.access_counts = std::move(counts);
  out.stream_queries = seen;
  out.sampled_queries = sampled.num_queries();
  if (sampled_out) *sampled_out = std::move(sampled);
  return out;
}

std::unique_ptr<Partitioner> make_partitioner(const PartitionerConfig& config,
                                              std::uint32_t vectors_per_block) {
  if (vectors_per_block == 0) {
    throw std::invalid_argument(
        "make_partitioner: vectors_per_block must be > 0");
  }
  PartitionerConfig cfg = config;
  cfg.shp.vectors_per_block = vectors_per_block;
  cfg.hypergraph.vectors_per_block = vectors_per_block;
  validate(cfg);
  switch (cfg.backend) {
    case PartitionerBackend::kShp:
      return std::make_unique<ShpPartitioner>(cfg.shp);
    case PartitionerBackend::kRecursiveKMeans:
      return std::make_unique<RecursiveKMeansPartitioner>(cfg.kmeans,
                                                          vectors_per_block);
    case PartitionerBackend::kHypergraph:
      return std::make_unique<HypergraphPartitioner>(cfg.hypergraph);
  }
  throw std::invalid_argument("make_partitioner: unknown backend");
}

}  // namespace bandana
