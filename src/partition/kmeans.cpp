#include "partition/kmeans.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"

namespace bandana {

namespace {

float sq_dist(const float* a, const float* b, std::uint16_t dim) {
  float s = 0.0f;
  for (std::uint16_t d = 0; d < dim; ++d) {
    const float diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

/// k-means++ seeding over a sample of row indices.
std::vector<float> seed_centroids(const EmbeddingTable& table,
                                  std::span<const VectorId> rows,
                                  std::uint32_t k, std::uint32_t sample_cap,
                                  Rng& rng) {
  const std::uint16_t dim = table.dim();
  // Down-sample the candidate rows if necessary.
  std::vector<VectorId> sample;
  if (rows.size() > sample_cap) {
    sample.reserve(sample_cap);
    for (std::uint32_t i = 0; i < sample_cap; ++i) {
      sample.push_back(rows[rng.next_below(rows.size())]);
    }
    rows = sample;
  }
  std::vector<float> centroids(static_cast<std::size_t>(k) * dim);
  std::vector<float> dist(rows.size(), std::numeric_limits<float>::max());

  // First centroid uniform, the rest D^2-weighted.
  VectorId first = rows[rng.next_below(rows.size())];
  std::copy_n(table.vector(first).data(), dim, centroids.begin());
  for (std::uint32_t c = 1; c < k; ++c) {
    const float* prev = centroids.data() + std::size_t{c - 1} * dim;
    double total = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      dist[i] = std::min(dist[i], sq_dist(table.vector(rows[i]).data(), prev, dim));
      total += dist[i];
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      double r = rng.next_double() * total;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        r -= dist[i];
        if (r <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng.next_below(rows.size());
    }
    std::copy_n(table.vector(rows[pick]).data(), dim,
                centroids.begin() + std::size_t{c} * dim);
  }
  return centroids;
}

/// Lloyd iterations restricted to `rows` (all rows for flat K-means; one
/// parent cluster's rows for the recursive second stage).
KMeansResult lloyd(const EmbeddingTable& table, std::span<const VectorId> rows,
                   const KMeansConfig& config, ThreadPool* pool) {
  const std::uint16_t dim = table.dim();
  const std::uint32_t k =
      std::min<std::uint32_t>(config.k, static_cast<std::uint32_t>(rows.size()));
  KMeansResult result;
  result.k = k;
  result.assignment.assign(rows.size(), 0);
  if (k == 0) return result;

  Rng rng(config.seed);
  result.centroids = seed_centroids(table, rows, k, config.seeding_sample, rng);

  std::vector<double> sums(static_cast<std::size_t>(k) * dim);
  std::vector<std::uint64_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::max();

  for (std::uint32_t iter = 0; iter < config.max_iters; ++iter) {
    // Assignment step (parallel over rows).
    std::vector<double> chunk_inertia(pool ? pool->size() : 1, 0.0);
    auto assign_range = [&](std::size_t begin, std::size_t end,
                            double* inertia_out) {
      double local = 0.0;
      for (std::size_t i = begin; i < end; ++i) {
        const float* x = table.vector(rows[i]).data();
        float best = std::numeric_limits<float>::max();
        std::uint32_t best_c = 0;
        for (std::uint32_t c = 0; c < k; ++c) {
          const float d =
              sq_dist(x, result.centroids.data() + std::size_t{c} * dim, dim);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        result.assignment[i] = best_c;
        local += best;
      }
      *inertia_out = local;
    };
    if (pool && rows.size() > 4096) {
      const std::size_t chunks = pool->size();
      const std::size_t per = (rows.size() + chunks - 1) / chunks;
      std::size_t chunk_idx = 0;
      for (std::size_t begin = 0; begin < rows.size(); begin += per) {
        const std::size_t end = std::min(rows.size(), begin + per);
        double* out = &chunk_inertia[chunk_idx++];
        pool->submit([&, begin, end, out] { assign_range(begin, end, out); });
      }
      pool->wait_idle();
    } else {
      assign_range(0, rows.size(), &chunk_inertia[0]);
    }
    result.inertia =
        std::accumulate(chunk_inertia.begin(), chunk_inertia.end(), 0.0);
    result.iters_run = iter + 1;

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint32_t c = result.assignment[i];
      const float* x = table.vector(rows[i]).data();
      double* s = sums.data() + std::size_t{c} * dim;
      for (std::uint16_t d = 0; d < dim; ++d) s[d] += x[d];
      ++counts[c];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random row.
        const VectorId v = rows[rng.next_below(rows.size())];
        std::copy_n(table.vector(v).data(), dim,
                    result.centroids.begin() + std::size_t{c} * dim);
        continue;
      }
      float* ctr = result.centroids.data() + std::size_t{c} * dim;
      const double* s = sums.data() + std::size_t{c} * dim;
      for (std::uint16_t d = 0; d < dim; ++d) {
        ctr[d] = static_cast<float>(s[d] / static_cast<double>(counts[c]));
      }
    }

    if (prev_inertia < std::numeric_limits<double>::max() &&
        prev_inertia - result.inertia <= config.tolerance * prev_inertia) {
      break;
    }
    prev_inertia = result.inertia;
  }
  return result;
}

}  // namespace

void validate(const KMeansConfig& config) {
  if (config.k == 0) {
    throw std::invalid_argument("KMeansConfig: k must be > 0");
  }
  if (config.max_iters == 0) {
    throw std::invalid_argument("KMeansConfig: max_iters must be > 0");
  }
  if (!(config.tolerance > 0.0)) {
    throw std::invalid_argument("KMeansConfig: tolerance must be > 0");
  }
  if (config.seeding_sample == 0) {
    throw std::invalid_argument("KMeansConfig: seeding_sample must be > 0");
  }
}

void validate(const RecursiveKMeansConfig& config) {
  if (config.top_clusters == 0) {
    throw std::invalid_argument(
        "RecursiveKMeansConfig: top_clusters must be > 0");
  }
  if (config.total_leaves == 0) {
    throw std::invalid_argument(
        "RecursiveKMeansConfig: total_leaves must be > 0");
  }
  if (config.total_leaves < config.top_clusters) {
    throw std::invalid_argument(
        "RecursiveKMeansConfig: total_leaves must be >= top_clusters");
  }
  if (config.max_iters == 0) {
    throw std::invalid_argument("RecursiveKMeansConfig: max_iters must be > 0");
  }
}

KMeansResult kmeans(const EmbeddingTable& table, const KMeansConfig& config,
                    ThreadPool* pool) {
  validate(config);
  std::vector<VectorId> rows(table.num_vectors());
  std::iota(rows.begin(), rows.end(), 0);
  return lloyd(table, rows, config, pool);
}

std::vector<VectorId> cluster_major_order(
    const std::vector<std::uint32_t>& assignment, std::uint32_t k) {
  // Counting sort by cluster, preserving id order inside clusters.
  std::vector<std::uint32_t> offsets(k + 1, 0);
  for (std::uint32_t c : assignment) ++offsets[c + 1];
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());
  std::vector<VectorId> order(assignment.size());
  for (std::uint32_t v = 0; v < assignment.size(); ++v) {
    order[offsets[assignment[v]]++] = v;
  }
  return order;
}

RecursiveKMeansResult recursive_kmeans(const EmbeddingTable& table,
                                       const RecursiveKMeansConfig& config,
                                       ThreadPool* pool) {
  validate(config);
  RecursiveKMeansResult out;
  // Stage 1: coarse clustering of the whole table.
  KMeansConfig top;
  top.k = config.top_clusters;
  top.max_iters = config.max_iters;
  top.seed = config.seed;
  const KMeansResult stage1 = kmeans(table, top, pool);
  out.iters_top = stage1.iters_run;

  // Group rows per top cluster.
  std::vector<std::vector<VectorId>> groups(stage1.k);
  for (std::uint32_t v = 0; v < table.num_vectors(); ++v) {
    groups[stage1.assignment[v]].push_back(v);
  }

  // Stage 2: sub-cluster each group; leaf budget proportional to size.
  out.order.reserve(table.num_vectors());
  std::uint32_t leaves_total = 0;
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    auto& rows = groups[g];
    if (rows.empty()) continue;
    const double share = static_cast<double>(rows.size()) /
                         static_cast<double>(table.num_vectors());
    std::uint32_t k2 = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(share * config.total_leaves)));
    k2 = std::min<std::uint32_t>(k2, static_cast<std::uint32_t>(rows.size()));
    KMeansConfig sub;
    sub.k = k2;
    sub.max_iters = config.max_iters;
    sub.seed = splitmix64(config.seed ^ (0xABCDull + g));
    const KMeansResult stage2 = lloyd(table, rows, sub, pool);
    leaves_total += stage2.k;
    // Emit rows leaf-major.
    std::vector<std::uint32_t> leaf_offsets(stage2.k + 1, 0);
    for (std::uint32_t c : stage2.assignment) ++leaf_offsets[c + 1];
    std::partial_sum(leaf_offsets.begin(), leaf_offsets.end(),
                     leaf_offsets.begin());
    std::vector<VectorId> local(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      local[leaf_offsets[stage2.assignment[i]]++] = rows[i];
    }
    out.order.insert(out.order.end(), local.begin(), local.end());
  }
  out.leaves = leaves_total;
  return out;
}

}  // namespace bandana
