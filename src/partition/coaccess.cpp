#include "partition/coaccess.h"

#include <algorithm>
#include <numeric>

namespace bandana {

CoAccessGraph build_coaccess(const Trace& train, std::uint32_t num_vectors,
                             std::uint32_t max_query_size) {
  CoAccessGraph h;
  h.q_offsets.push_back(0);
  std::vector<VectorId> scratch;
  for (std::size_t q = 0; q < train.num_queries(); ++q) {
    auto ids = train.query(q);
    scratch.assign(ids.begin(), ids.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;  // singleton edges carry no signal
    if (max_query_size != 0 && scratch.size() > max_query_size) continue;
    h.q_verts.insert(h.q_verts.end(), scratch.begin(), scratch.end());
    h.q_offsets.push_back(h.q_verts.size());
  }
  h.num_queries = static_cast<std::uint32_t>(h.q_offsets.size() - 1);

  // Invert to vertex -> queries.
  h.v_offsets.assign(num_vectors + 1, 0);
  for (VectorId v : h.q_verts) ++h.v_offsets[v + 1];
  std::partial_sum(h.v_offsets.begin(), h.v_offsets.end(), h.v_offsets.begin());
  h.v_queries.resize(h.q_verts.size());
  std::vector<std::uint64_t> cursor(h.v_offsets.begin(), h.v_offsets.end() - 1);
  for (std::uint32_t q = 0; q < h.num_queries; ++q) {
    for (std::uint64_t i = h.q_offsets[q]; i < h.q_offsets[q + 1]; ++i) {
      h.v_queries[cursor[h.q_verts[i]]++] = q;
    }
  }
  return h;
}

double coaccess_fanout(const CoAccessGraph& h,
                       const std::vector<std::uint32_t>& block_of,
                       std::uint32_t num_blocks) {
  if (h.num_queries == 0) return 0.0;
  std::vector<std::uint32_t> epoch(num_blocks, 0);
  std::uint32_t e = 0;
  std::uint64_t touches = 0;
  for (std::uint32_t q = 0; q < h.num_queries; ++q) {
    ++e;
    for (std::uint64_t i = h.q_offsets[q]; i < h.q_offsets[q + 1]; ++i) {
      const std::uint32_t b = block_of[h.q_verts[i]];
      if (epoch[b] != e) {
        epoch[b] = e;
        ++touches;
      }
    }
  }
  return static_cast<double>(touches) / static_cast<double>(h.num_queries);
}

std::uint64_t trace_byte_size(const Trace& trace) {
  return trace.total_lookups() * sizeof(VectorId) +
         (trace.num_queries() + 1) * sizeof(std::uint64_t);
}

}  // namespace bandana
