// Social Hash Partitioner (paper §4.2.2; Kabiljo et al., VLDB 2017).
//
// Supervised placement: a training trace is a hypergraph whose vertices are
// embedding vectors and whose hyperedges are queries. SHP finds a balanced
// partition of vectors into 4 KB blocks minimizing average query *fanout*
// (Eq. 3: the number of distinct blocks a query touches), by recursive
// bisection with swap-based local refinement:
//
//   * Each level splits every bucket into two balanced halves.
//   * Refinement iterations compute, per vertex, the fanout gain of moving
//     it to the other half — for query q with n_A(q)/n_B(q) bucket-local
//     members on each side, moving v from A to B changes fanout by
//     -[n_A(q)==1] + [n_B(q)==0] — and then swap equal numbers of
//     highest-gain vertices pairwise while the combined gain is positive,
//     preserving balance exactly.
//   * Recursion stops when buckets reach vectors_per_block.
//
// Parallelism: with a ThreadPool, deep levels parallelize across buckets
// (disjoint vertex ranges) and wide levels parallelize *inside* a bucket's
// refinement — per-query side counts are accumulated into per-worker
// scratch and merged by a deterministic partitioned reduction, and move
// gains are computed into a position-indexed array. Both decompositions
// are value-exact (integer sums, read-only gain evaluation), so the
// resulting plan is byte-identical for ANY thread count, including the
// sequential seed path (pinned by tests/test_partitioner.cpp).
//
// Unlike K-means, SHP depends only on vector *identities*, so retraining
// the embedding values does not invalidate the layout (paper §4.2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "trace/trace.h"

namespace bandana {

struct ShpConfig {
  std::uint32_t vectors_per_block = 32;
  std::uint32_t iters_per_level = 16;  ///< Paper runs 16 refinement passes.
  /// Fraction of each side swapped per refinement pass. Gains are computed
  /// once per pass, so swapping every positive pair acts on stale counts
  /// and thrashes; damping converges to better partitions on sparse
  /// hypergraphs.
  double max_swap_fraction = 0.15;
  std::uint64_t seed = 1;
  /// Queries with more distinct vectors than this are dropped from the
  /// hypergraph (degenerate edges add cost but carry little signal). 0 = keep
  /// all.
  std::uint32_t max_query_size = 0;
};

/// Throws std::invalid_argument naming the offending field when the config
/// is degenerate (zero vectors_per_block, zero refinement iterations, or a
/// swap fraction outside (0, 1]). run_shp validates on entry, so a bad
/// config fails loudly instead of dividing by zero or looping forever.
void validate(const ShpConfig& config);

struct ShpResult {
  /// Placement order: position i holds order[i]; block = i / vectors_per_block.
  std::vector<VectorId> order;
  /// Per-vector hyperedge degree: in how many training queries the vector
  /// appeared (deduplicated per query). This is the statistic the
  /// frequency-based admission filter of §4.3.2 thresholds on.
  std::vector<std::uint32_t> access_counts;
  std::uint32_t levels = 0;
  std::uint64_t total_swaps = 0;
  double initial_avg_fanout = 0.0;  ///< Fanout of the random initial order.
  double final_avg_fanout = 0.0;    ///< Fanout after refinement (train set).
  /// Estimated peak resident bytes of the training run: the co-access CSR
  /// plus refinement scratch (per-worker partitioned-reduction arrays
  /// included). Excludes the input trace itself, which the caller owns —
  /// the Partitioner seam adds it (PartitionStats::peak_training_bytes).
  std::uint64_t peak_memory_bytes = 0;
};

/// Throws std::invalid_argument on a degenerate config or an empty training
/// trace (which would otherwise yield a silently random plan).
ShpResult run_shp(const Trace& train, std::uint32_t num_vectors,
                  const ShpConfig& config, ThreadPool* pool = nullptr);

}  // namespace bandana
