// Social Hash Partitioner (paper §4.2.2; Kabiljo et al., VLDB 2017).
//
// Supervised placement: a training trace is a hypergraph whose vertices are
// embedding vectors and whose hyperedges are queries. SHP finds a balanced
// partition of vectors into 4 KB blocks minimizing average query *fanout*
// (Eq. 3: the number of distinct blocks a query touches), by recursive
// bisection with swap-based local refinement:
//
//   * Each level splits every bucket into two balanced halves.
//   * Refinement iterations compute, per vertex, the fanout gain of moving
//     it to the other half — for query q with n_A(q)/n_B(q) bucket-local
//     members on each side, moving v from A to B changes fanout by
//     -[n_A(q)==1] + [n_B(q)==0] — and then swap equal numbers of
//     highest-gain vertices pairwise while the combined gain is positive,
//     preserving balance exactly.
//   * Recursion stops when buckets reach vectors_per_block.
//
// Unlike K-means, SHP depends only on vector *identities*, so retraining
// the embedding values does not invalidate the layout (paper §4.2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "trace/trace.h"

namespace bandana {

struct ShpConfig {
  std::uint32_t vectors_per_block = 32;
  std::uint32_t iters_per_level = 16;  ///< Paper runs 16 refinement passes.
  /// Fraction of each side swapped per refinement pass. Gains are computed
  /// once per pass, so swapping every positive pair acts on stale counts
  /// and thrashes; damping converges to better partitions on sparse
  /// hypergraphs.
  double max_swap_fraction = 0.15;
  std::uint64_t seed = 1;
  /// Queries with more distinct vectors than this are dropped from the
  /// hypergraph (degenerate edges add cost but carry little signal). 0 = keep
  /// all.
  std::uint32_t max_query_size = 0;
};

struct ShpResult {
  /// Placement order: position i holds order[i]; block = i / vectors_per_block.
  std::vector<VectorId> order;
  /// Per-vector hyperedge degree: in how many training queries the vector
  /// appeared (deduplicated per query). This is the statistic the
  /// frequency-based admission filter of §4.3.2 thresholds on.
  std::vector<std::uint32_t> access_counts;
  std::uint32_t levels = 0;
  std::uint64_t total_swaps = 0;
  double initial_avg_fanout = 0.0;  ///< Fanout of the random initial order.
  double final_avg_fanout = 0.0;    ///< Fanout after refinement (train set).
};

ShpResult run_shp(const Trace& train, std::uint32_t num_vectors,
                  const ShpConfig& config, ThreadPool* pool = nullptr);

}  // namespace bandana
