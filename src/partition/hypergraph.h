// Greedy hypergraph min-cut placement.
//
// Alternative supervised backend to SHP: instead of recursive bisection,
// fill blocks one at a time. Vertices are vectors weighted by access
// frequency (hyperedge degree); hyperedges are deduplicated co-access sets.
// Each block is seeded with the hottest unplaced vector and grown by
// connectivity — the candidate sharing the most hyperedges with the block's
// current members wins, so co-accessed vectors land in the same 4 KB block
// and query fanout (paper Eq. 3) drops. Deterministic: all ties break by
// (score desc, weight desc, id asc).
//
// Trades refinement quality for a single streaming pass over the edge
// lists: no per-level shuffles, no swap iterations. Useful as a cheaper
// backend and as an independent check on SHP's fanout numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace bandana {

struct HypergraphConfig {
  std::uint32_t vectors_per_block = 32;
  /// Hyperedges larger than this are dropped at graph build (0 = keep all).
  std::uint32_t max_query_size = 0;
  /// During scoring, edges with more members than this contribute only
  /// their first `scoring_edge_cap` members (giant edges touch every block
  /// anyway; walking them fully is O(edge^2) for no placement signal).
  std::uint32_t scoring_edge_cap = 128;
  std::uint64_t seed = 1;  ///< Reserved for future randomized variants.
};

/// Throws std::invalid_argument when vectors_per_block or scoring_edge_cap
/// is zero.
void validate(const HypergraphConfig& config);

struct HypergraphResult {
  std::vector<VectorId> order;  ///< Position i holds order[i]; block = i/vpb.
  std::vector<std::uint32_t> access_counts;  ///< Hyperedge degrees.
  double initial_avg_fanout = 0.0;  ///< Fanout of identity order (train set).
  double final_avg_fanout = 0.0;    ///< Fanout after placement (train set).
  std::uint64_t peak_memory_bytes = 0;  ///< CSR + placement scratch.
};

/// Throws std::invalid_argument on a degenerate config or empty trace.
HypergraphResult run_hypergraph(const Trace& train, std::uint32_t num_vectors,
                                const HypergraphConfig& config);

}  // namespace bandana
