#include "partition/hypergraph.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "partition/coaccess.h"

namespace bandana {

void validate(const HypergraphConfig& config) {
  if (config.vectors_per_block == 0) {
    throw std::invalid_argument(
        "HypergraphConfig: vectors_per_block must be > 0");
  }
  if (config.scoring_edge_cap == 0) {
    throw std::invalid_argument(
        "HypergraphConfig: scoring_edge_cap must be > 0");
  }
}

HypergraphResult run_hypergraph(const Trace& train, std::uint32_t num_vectors,
                                const HypergraphConfig& config) {
  validate(config);
  if (train.num_queries() == 0) {
    throw std::invalid_argument("run_hypergraph: empty training trace");
  }
  const CoAccessGraph h =
      build_coaccess(train, num_vectors, config.max_query_size);

  HypergraphResult result;
  result.access_counts.resize(num_vectors);
  for (VectorId v = 0; v < num_vectors; ++v) {
    result.access_counts[v] = h.degree(v);
  }
  const std::uint32_t vpb = config.vectors_per_block;
  const std::uint32_t num_blocks = (num_vectors + vpb - 1) / vpb;
  {
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t v = 0; v < num_vectors; ++v) block_of[v] = v / vpb;
    result.initial_avg_fanout = coaccess_fanout(h, block_of, num_blocks);
  }

  // Seed order: hottest first, ties by id — the block seeds, and the
  // fallback when a block's frontier goes cold.
  std::vector<VectorId> by_weight(num_vectors);
  std::iota(by_weight.begin(), by_weight.end(), 0);
  std::sort(by_weight.begin(), by_weight.end(), [&](VectorId a, VectorId b) {
    if (result.access_counts[a] != result.access_counts[b]) {
      return result.access_counts[a] > result.access_counts[b];
    }
    return a < b;
  });

  std::vector<std::uint8_t> placed(num_vectors, 0);
  // Connectivity scores, epoch-stamped per block: score[u] counts the
  // (member, shared edge) pairs between candidate u and the block so far.
  std::vector<std::uint32_t> score(num_vectors, 0);
  std::vector<std::uint32_t> score_epoch(num_vectors, 0);
  std::uint32_t epoch = 0;
  std::vector<VectorId> frontier;  // candidates scored this block

  result.order.reserve(num_vectors);
  std::size_t seed_cursor = 0;

  // Walk v's edges and credit every unplaced co-member.
  auto expand = [&](VectorId v) {
    for (std::uint64_t i = h.v_offsets[v]; i < h.v_offsets[v + 1]; ++i) {
      const std::uint32_t q = h.v_queries[i];
      const std::uint64_t begin = h.q_offsets[q];
      const std::uint64_t end =
          std::min(h.q_offsets[q + 1], begin + config.scoring_edge_cap);
      for (std::uint64_t j = begin; j < end; ++j) {
        const VectorId u = h.q_verts[j];
        if (placed[u]) continue;
        if (score_epoch[u] != epoch) {
          score_epoch[u] = epoch;
          score[u] = 0;
          frontier.push_back(u);
        }
        ++score[u];
      }
    }
  };

  auto place = [&](VectorId v) {
    placed[v] = 1;
    result.order.push_back(v);
    expand(v);
  };

  while (result.order.size() < num_vectors) {
    ++epoch;
    frontier.clear();
    while (seed_cursor < num_vectors && placed[by_weight[seed_cursor]]) {
      ++seed_cursor;
    }
    place(by_weight[seed_cursor]);
    const std::size_t block_end =
        std::min<std::size_t>(result.order.size() - 1 + vpb, num_vectors);
    while (result.order.size() < block_end) {
      // Best unplaced frontier candidate: score desc, weight desc, id asc.
      VectorId best = num_vectors;
      std::uint32_t best_score = 0;
      for (const VectorId u : frontier) {
        if (placed[u] || score[u] == 0) continue;
        if (best == num_vectors || score[u] > best_score ||
            (score[u] == best_score &&
             (result.access_counts[u] > result.access_counts[best] ||
              (result.access_counts[u] == result.access_counts[best] &&
               u < best)))) {
          best = u;
          best_score = score[u];
        }
      }
      if (best == num_vectors) {
        // Frontier exhausted: fall back to the hottest unplaced vector.
        while (seed_cursor < num_vectors && placed[by_weight[seed_cursor]]) {
          ++seed_cursor;
        }
        best = by_weight[seed_cursor];
      }
      place(best);
    }
  }

  {
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t i = 0; i < num_vectors; ++i) {
      block_of[result.order[i]] = i / vpb;
    }
    result.final_avg_fanout = coaccess_fanout(h, block_of, num_blocks);
  }
  // CSR + order/by_weight/placed/score/score_epoch/block_of arrays.
  result.peak_memory_bytes =
      h.byte_size() + std::uint64_t{num_vectors} * (4 + 4 + 1 + 4 + 4 + 4);
  return result;
}

}  // namespace bandana
