// Pluggable partitioner backends behind one seam.
//
// Every supervised placement strategy in the paper reduces to the same
// contract: consume a training signal (co-access trace and/or embedding
// values), emit a placement order plus per-vector access counts. The
// Partitioner interface pins that contract so Trainer, OnlineRetrainer and
// the benches select a backend by config instead of hard-coding run_shp:
//
//   * ShpPartitioner          — recursive bisection (paper §4.2.2). The
//     default; byte-identical to calling run_shp directly.
//   * RecursiveKMeansPartitioner — semantic clustering of embedding values
//     (paper §4.2.1). Requires `values`; throws without them.
//   * HypergraphPartitioner   — greedy min-cut block filling over the
//     co-access hypergraph; cheaper single-pass alternative to SHP.
//
// partition_stream() is the bounded-memory entry point: it consumes a
// TraceSource chunk by chunk, reservoir-samples the training set (Vitter's
// Algorithm R) and accumulates access counts over the FULL stream, so peak
// training memory is governed by the reservoir size, not the trace length.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "partition/hypergraph.h"
#include "partition/kmeans.h"
#include "partition/shp.h"
#include "trace/embedding_table.h"
#include "trace/trace.h"
#include "trace/trace_stream.h"

namespace bandana {

enum class PartitionerBackend : std::uint8_t {
  kShp = 0,
  kRecursiveKMeans = 1,
  kHypergraph = 2,
};

const char* backend_name(PartitionerBackend backend);

struct PartitionerConfig {
  PartitionerBackend backend = PartitionerBackend::kShp;
  ShpConfig shp;
  RecursiveKMeansConfig kmeans;
  HypergraphConfig hypergraph;
  /// Streaming mode: reservoir capacity in queries (0 = train on the full
  /// trace; partition_stream requires nonzero).
  std::size_t max_train_queries = 0;
  /// Streaming mode: queries pulled from the TraceSource per chunk.
  std::size_t chunk_queries = 4096;
  /// Seed of the reservoir sampler (independent of the backend seeds).
  std::uint64_t stream_seed = 1;
};

/// Validates the selected backend's config plus the streaming knobs
/// (chunk_queries must be > 0). Throws std::invalid_argument.
void validate(const PartitionerConfig& config);

struct PartitionResult {
  /// Placement order: position i holds order[i]; block = i / vectors_per_block.
  std::vector<VectorId> order;
  /// Per-vector access frequency (deduplicated per query). Batch mode:
  /// hyperedge degree over the backend's kept edges. Streaming mode:
  /// accumulated over the FULL stream (every deduplicated query), not just
  /// the sampled training set — the admission filter sees all traffic.
  std::vector<std::uint32_t> access_counts;
  double initial_avg_fanout = 0.0;
  double final_avg_fanout = 0.0;
  /// Estimated peak resident training bytes, input trace (or reservoir +
  /// in-flight chunk) included.
  std::uint64_t peak_training_bytes = 0;
  /// Streaming mode only: queries seen / queries kept in the sample.
  std::size_t stream_queries = 0;
  std::size_t sampled_queries = 0;
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual const char* name() const = 0;
  /// Train on a fully materialized trace. `values` may be nullptr for
  /// trace-only backends; RecursiveKMeansPartitioner throws without it.
  virtual PartitionResult partition(const Trace& train,
                                    std::uint32_t num_vectors,
                                    const EmbeddingTable* values,
                                    ThreadPool* pool) const = 0;
  /// Bounded-memory training: reservoir-sample `max_train_queries` queries
  /// from the source in `chunk_queries`-sized chunks, then run the backend
  /// on the sample. Never materializes the full trace. `sampled_out`
  /// (optional) receives the sampled trace, for callers that tune on it.
  PartitionResult partition_stream(TraceSource& source,
                                   std::uint32_t num_vectors,
                                   const PartitionerConfig& config,
                                   const EmbeddingTable* values,
                                   ThreadPool* pool,
                                   Trace* sampled_out = nullptr) const;
};

class ShpPartitioner final : public Partitioner {
 public:
  explicit ShpPartitioner(const ShpConfig& config) : config_(config) {}
  const char* name() const override { return "shp"; }
  PartitionResult partition(const Trace& train, std::uint32_t num_vectors,
                            const EmbeddingTable* values,
                            ThreadPool* pool) const override;

 private:
  ShpConfig config_;
};

class RecursiveKMeansPartitioner final : public Partitioner {
 public:
  RecursiveKMeansPartitioner(const RecursiveKMeansConfig& config,
                             std::uint32_t vectors_per_block)
      : config_(config), vectors_per_block_(vectors_per_block) {}
  const char* name() const override { return "kmeans"; }
  PartitionResult partition(const Trace& train, std::uint32_t num_vectors,
                            const EmbeddingTable* values,
                            ThreadPool* pool) const override;

 private:
  RecursiveKMeansConfig config_;
  std::uint32_t vectors_per_block_;
};

class HypergraphPartitioner final : public Partitioner {
 public:
  explicit HypergraphPartitioner(const HypergraphConfig& config)
      : config_(config) {}
  const char* name() const override { return "hypergraph"; }
  PartitionResult partition(const Trace& train, std::uint32_t num_vectors,
                            const EmbeddingTable* values,
                            ThreadPool* pool) const override;

 private:
  HypergraphConfig config_;
};

/// Builds the configured backend. `vectors_per_block` is authoritative: it
/// overrides the per-backend block-size fields so every layer agrees with
/// StoreConfig. Validates the config.
std::unique_ptr<Partitioner> make_partitioner(const PartitionerConfig& config,
                                              std::uint32_t vectors_per_block);

}  // namespace bandana
