#include "partition/layout.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bandana {

BlockLayout::BlockLayout(std::vector<VectorId> order, std::uint32_t vpb)
    : order_(std::move(order)), vectors_per_block_(vpb) {
  assert(vpb > 0);
  position_of_.assign(order_.size(), kInvalidVector);
  for (std::uint32_t i = 0; i < order_.size(); ++i) {
    const VectorId v = order_[i];
    if (v >= order_.size() || position_of_[v] != kInvalidVector) {
      throw std::invalid_argument("BlockLayout: order is not a permutation");
    }
    position_of_[v] = i;
  }
}

BlockLayout BlockLayout::identity(std::uint32_t num_vectors,
                                  std::uint32_t vectors_per_block) {
  std::vector<VectorId> order(num_vectors);
  for (std::uint32_t i = 0; i < num_vectors; ++i) order[i] = i;
  return BlockLayout(std::move(order), vectors_per_block);
}

BlockLayout BlockLayout::random(std::uint32_t num_vectors,
                                std::uint32_t vectors_per_block,
                                std::uint64_t seed) {
  std::vector<VectorId> order(num_vectors);
  for (std::uint32_t i = 0; i < num_vectors; ++i) order[i] = i;
  Rng rng(seed);
  for (std::uint32_t i = num_vectors; i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }
  return BlockLayout(std::move(order), vectors_per_block);
}

BlockLayout BlockLayout::from_order(std::vector<VectorId> order,
                                    std::uint32_t vectors_per_block) {
  return BlockLayout(std::move(order), vectors_per_block);
}

std::span<const VectorId> BlockLayout::block_members(BlockId b) const {
  assert(b < num_blocks());
  const std::size_t begin = static_cast<std::size_t>(b) * vectors_per_block_;
  const std::size_t end =
      std::min<std::size_t>(order_.size(), begin + vectors_per_block_);
  return {order_.data() + begin, end - begin};
}

std::vector<std::uint8_t> changed_blocks(const BlockLayout& from,
                                         const BlockLayout& to) {
  const std::uint32_t common = std::min(from.num_blocks(), to.num_blocks());
  const std::uint32_t total = std::max(from.num_blocks(), to.num_blocks());
  std::vector<std::uint8_t> changed(total, 1);
  for (BlockId b = 0; b < common; ++b) {
    const auto a = from.block_members(b);
    const auto z = to.block_members(b);
    changed[b] = !(a.size() == z.size() &&
                   std::equal(a.begin(), a.end(), z.begin()));
  }
  return changed;
}

std::uint64_t count_changed_blocks(const BlockLayout& from,
                                   const BlockLayout& to) {
  const auto changed = changed_blocks(from, to);
  std::uint64_t n = 0;
  for (const std::uint8_t c : changed) n += c;
  return n;
}

}  // namespace bandana
