// Deduplicated co-access hypergraph of a training trace.
//
// Vertices are embedding vectors, hyperedges are queries (paper §4.2.2):
// the structure every supervised partitioner trains on. Stored CSR-style in
// both directions so a backend can walk query -> members (placement
// scoring) or vector -> queries (SHP gain computation). Singleton edges are
// dropped (they carry no co-access signal), as are edges larger than
// `max_query_size` when nonzero — the exact edge-filtering rules the seed
// SHP implementation used, now shared by every backend.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace bandana {

struct CoAccessGraph {
  std::vector<std::uint64_t> q_offsets;  // query -> member vectors
  std::vector<VectorId> q_verts;
  std::vector<std::uint64_t> v_offsets;  // vector -> queries
  std::vector<std::uint32_t> v_queries;
  std::uint32_t num_queries = 0;

  /// Hyperedge degree of v: in how many (deduplicated, kept) training
  /// queries the vector appeared. The §4.3.2 admission filter thresholds
  /// on this statistic.
  std::uint32_t degree(VectorId v) const {
    return static_cast<std::uint32_t>(v_offsets[v + 1] - v_offsets[v]);
  }

  /// Resident bytes of the CSR arrays (training-memory accounting).
  std::uint64_t byte_size() const {
    return q_offsets.size() * sizeof(std::uint64_t) +
           q_verts.size() * sizeof(VectorId) +
           v_offsets.size() * sizeof(std::uint64_t) +
           v_queries.size() * sizeof(std::uint32_t);
  }
};

CoAccessGraph build_coaccess(const Trace& train, std::uint32_t num_vectors,
                             std::uint32_t max_query_size);

/// Average fanout of the graph's edges under a vector -> block map.
double coaccess_fanout(const CoAccessGraph& h,
                       const std::vector<std::uint32_t>& block_of,
                       std::uint32_t num_blocks);

/// Resident bytes of a trace's CSR arrays (training-memory accounting for
/// the partitioners, which receive the trace by reference).
std::uint64_t trace_byte_size(const Trace& trace);

}  // namespace bandana
