// Physical placement of embedding vectors into NVM blocks.
//
// A BlockLayout is a permutation of a table's vectors: position i of the
// order lives in block i / vectors_per_block. The partitioners (K-means,
// SHP) produce orders; the cache simulator and the Store consume the
// vector -> block mapping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace bandana {

class BlockLayout {
 public:
  /// Identity order: vector v at position v (the paper's "original table").
  static BlockLayout identity(std::uint32_t num_vectors,
                              std::uint32_t vectors_per_block);

  /// Uniformly random order (control baseline).
  static BlockLayout random(std::uint32_t num_vectors,
                            std::uint32_t vectors_per_block, std::uint64_t seed);

  /// order[i] = vector stored at position i; must be a permutation.
  static BlockLayout from_order(std::vector<VectorId> order,
                                std::uint32_t vectors_per_block);

  std::uint32_t num_vectors() const {
    return static_cast<std::uint32_t>(order_.size());
  }
  std::uint32_t vectors_per_block() const { return vectors_per_block_; }
  std::uint32_t num_blocks() const {
    return (num_vectors() + vectors_per_block_ - 1) / vectors_per_block_;
  }

  BlockId block_of(VectorId v) const { return position_of_[v] / vectors_per_block_; }
  std::uint32_t position_of(VectorId v) const { return position_of_[v]; }

  /// Vectors co-located in block b (the prefetch set), in position order.
  std::span<const VectorId> block_members(BlockId b) const;

  const std::vector<VectorId>& order() const { return order_; }

 private:
  BlockLayout(std::vector<VectorId> order, std::uint32_t vpb);

  std::vector<VectorId> order_;        // position -> vector
  std::vector<std::uint32_t> position_of_;  // vector -> position
  std::uint32_t vectors_per_block_;
};

/// Per-block diff of two layouts over the same vector universe: entry b is
/// nonzero iff block b's member list (the exact position order within the
/// block) differs between `from` and `to`, or exists in only one of them.
/// A retrained plan usually leaves many blocks untouched — SHP refinement
/// moves a minority of vectors — and a trickle republish skips unchanged
/// blocks entirely (they keep serving from their existing storage).
/// Sized to max(from.num_blocks(), to.num_blocks()).
std::vector<std::uint8_t> changed_blocks(const BlockLayout& from,
                                         const BlockLayout& to);

/// Number of nonzero entries of changed_blocks(from, to); 0 means the two
/// layouts place every vector identically (republish can no-op).
std::uint64_t count_changed_blocks(const BlockLayout& from,
                                   const BlockLayout& to);

}  // namespace bandana
