#include "partition/shp.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"
#include "partition/coaccess.h"

namespace bandana {

namespace {

/// Per-bucket-pair scratch, reused across iterations within one range.
struct Scratch {
  explicit Scratch(std::uint32_t num_queries)
      : cnt_a(num_queries, 0), cnt_b(num_queries, 0), q_epoch(num_queries, 0) {}
  std::vector<std::uint32_t> cnt_a;
  std::vector<std::uint32_t> cnt_b;
  std::vector<std::uint32_t> q_epoch;
  std::uint32_t epoch = 0;
  std::vector<std::pair<std::int32_t, VectorId>> cand_a;
  std::vector<std::pair<std::int32_t, VectorId>> cand_b;
};

/// Per-worker counting scratch of the wide (within-range) parallel path.
/// Each worker accumulates bucket-local per-query side counts over its own
/// static chunk of the range; the owner merges the chunks in worker order.
/// Counts are integer sums, so the merged values — and everything computed
/// from them — are independent of the chunk decomposition, which is what
/// makes the parallel plan byte-identical to the sequential one.
struct WideScratch {
  explicit WideScratch(std::uint32_t num_queries)
      : cnt_a(num_queries, 0), cnt_b(num_queries, 0), q_epoch(num_queries, 0) {}
  std::vector<std::uint32_t> cnt_a;
  std::vector<std::uint32_t> cnt_b;
  std::vector<std::uint32_t> q_epoch;
  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> touched;  ///< Queries first-touched this pass.
};

/// Within-range parallel context: the pool plus lazily-built per-worker
/// scratch. Used when a level has fewer active ranges than workers (the
/// top levels, where each range is large).
struct WideCtx {
  ThreadPool* pool = nullptr;
  std::vector<std::unique_ptr<WideScratch>> workers;
  std::vector<std::int32_t> gains;  ///< Position-indexed move gains.
};

/// Ranges below this size refine sequentially even when a WideCtx is
/// available: fork/join overhead dominates at small n, and the result is
/// identical either way (the wide path is value-exact).
constexpr std::size_t kMinWideVerts = 1024;

struct RangeResult {
  std::uint64_t swaps = 0;
};

/// Refine one bucket (verts[begin, end)) into two halves of sizes
/// (half, n - half). `half` is block-aligned by the caller so that final
/// buckets coincide with physical blocks. `wide` (optional) parallelizes
/// the counting and gain phases across the pool; the swap phase and the
/// physical partition stay sequential, so the refined order is the same
/// bytes whatever the thread count.
RangeResult process_range(std::span<VectorId> verts, std::size_t half,
                          const CoAccessGraph& h,
                          std::vector<std::uint8_t>& side, Scratch& scratch,
                          std::uint32_t iters, double max_swap_fraction,
                          std::uint64_t seed, WideCtx* wide) {
  RangeResult result;
  const std::size_t n = verts.size();
  // Deterministic shuffle, then first `half` -> side 0, rest -> side 1.
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(verts[i - 1], verts[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) side[verts[i]] = i >= half;

  const bool parallel = wide && wide->pool && wide->pool->size() > 1 &&
                        n >= kMinWideVerts;
  const std::size_t chunks =
      parallel ? std::min(n, wide->pool->size()) : 1;
  if (parallel) {
    const std::uint32_t nq =
        static_cast<std::uint32_t>(scratch.cnt_a.size());
    while (wide->workers.size() < chunks) {
      wide->workers.push_back(std::make_unique<WideScratch>(nq));
    }
  }

  for (std::uint32_t iter = 0; iter < iters; ++iter) {
    // Bucket-local per-query side counts.
    ++scratch.epoch;
    if (parallel) {
      // Phase 1: per-worker partial counts over static chunks.
      const std::size_t per = (n + chunks - 1) / chunks;
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * per;
        const std::size_t end = std::min(n, begin + per);
        if (begin >= end) break;
        WideScratch* w = wide->workers[c].get();
        wide->pool->submit([&, w, begin, end] {
          ++w->epoch;
          w->touched.clear();
          for (std::size_t i = begin; i < end; ++i) {
            const VectorId v = verts[i];
            const std::uint8_t s = side[v];
            for (std::uint64_t j = h.v_offsets[v]; j < h.v_offsets[v + 1];
                 ++j) {
              const std::uint32_t q = h.v_queries[j];
              if (w->q_epoch[q] != w->epoch) {
                w->q_epoch[q] = w->epoch;
                w->cnt_a[q] = 0;
                w->cnt_b[q] = 0;
                w->touched.push_back(q);
              }
              if (s == 0) {
                ++w->cnt_a[q];
              } else {
                ++w->cnt_b[q];
              }
            }
          }
        });
      }
      wide->pool->wait_idle();
      // Phase 2: deterministic merge, workers in index order. The merged
      // count of each query is a plain sum, so it does not depend on the
      // chunking (and therefore not on the thread count).
      for (std::size_t c = 0; c < chunks; ++c) {
        const WideScratch& w = *wide->workers[c];
        for (const std::uint32_t q : w.touched) {
          if (scratch.q_epoch[q] != scratch.epoch) {
            scratch.q_epoch[q] = scratch.epoch;
            scratch.cnt_a[q] = 0;
            scratch.cnt_b[q] = 0;
          }
          scratch.cnt_a[q] += w.cnt_a[q];
          scratch.cnt_b[q] += w.cnt_b[q];
        }
      }
    } else {
      for (VectorId v : verts) {
        const std::uint8_t s = side[v];
        for (std::uint64_t i = h.v_offsets[v]; i < h.v_offsets[v + 1]; ++i) {
          const std::uint32_t q = h.v_queries[i];
          if (scratch.q_epoch[q] != scratch.epoch) {
            scratch.q_epoch[q] = scratch.epoch;
            scratch.cnt_a[q] = 0;
            scratch.cnt_b[q] = 0;
          }
          if (s == 0) {
            ++scratch.cnt_a[q];
          } else {
            ++scratch.cnt_b[q];
          }
        }
      }
    }
    // Move gains. The gain of a vertex depends only on the merged counts
    // and its own side — read-only inputs — so the parallel path computes
    // them into a position-indexed array and the candidate lists are built
    // sequentially in the same vertex order as the sequential path.
    auto gain_of = [&](VectorId v) {
      std::int32_t gain = 0;
      const std::uint8_t s = side[v];
      for (std::uint64_t i = h.v_offsets[v]; i < h.v_offsets[v + 1]; ++i) {
        const std::uint32_t q = h.v_queries[i];
        if (scratch.q_epoch[q] != scratch.epoch) continue;  // unreachable
        const std::uint32_t here = s == 0 ? scratch.cnt_a[q] : scratch.cnt_b[q];
        const std::uint32_t there = s == 0 ? scratch.cnt_b[q] : scratch.cnt_a[q];
        if (here == 1) ++gain;   // this side stops touching q
        if (there == 0) --gain;  // other side starts touching q
      }
      return gain;
    };
    scratch.cand_a.clear();
    scratch.cand_b.clear();
    if (parallel) {
      wide->gains.resize(n);
      wide->pool->parallel_for(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          wide->gains[i] = gain_of(verts[i]);
        }
      });
      for (std::size_t i = 0; i < n; ++i) {
        const VectorId v = verts[i];
        (side[v] == 0 ? scratch.cand_a : scratch.cand_b)
            .emplace_back(wide->gains[i], v);
      }
    } else {
      for (VectorId v : verts) {
        (side[v] == 0 ? scratch.cand_a : scratch.cand_b)
            .emplace_back(gain_of(v), v);
      }
    }
    // Pairwise swap of the highest-gain vertices from each side.
    auto desc = [](const auto& x, const auto& y) { return x > y; };
    std::sort(scratch.cand_a.begin(), scratch.cand_a.end(), desc);
    std::sort(scratch.cand_b.begin(), scratch.cand_b.end(), desc);
    const std::size_t cap = std::max<std::size_t>(
        1, static_cast<std::size_t>(max_swap_fraction *
                                    static_cast<double>(verts.size() / 2)));
    const std::size_t pairs =
        std::min({scratch.cand_a.size(), scratch.cand_b.size(), cap});
    std::uint64_t swapped = 0;
    for (std::size_t i = 0; i < pairs; ++i) {
      if (scratch.cand_a[i].first + scratch.cand_b[i].first <= 0) break;
      side[scratch.cand_a[i].second] = 1;
      side[scratch.cand_b[i].second] = 0;
      ++swapped;
    }
    result.swaps += swapped;
    if (swapped == 0) break;
  }

  // Physically partition the range by side (stable for determinism).
  std::stable_partition(verts.begin(), verts.end(),
                        [&](VectorId v) { return side[v] == 0; });
  return result;
}

}  // namespace

void validate(const ShpConfig& config) {
  if (config.vectors_per_block == 0) {
    throw std::invalid_argument("ShpConfig: vectors_per_block must be > 0");
  }
  if (config.iters_per_level == 0) {
    throw std::invalid_argument("ShpConfig: iters_per_level must be > 0");
  }
  if (!(config.max_swap_fraction > 0.0) || config.max_swap_fraction > 1.0) {
    throw std::invalid_argument(
        "ShpConfig: max_swap_fraction must be in (0, 1]");
  }
}

ShpResult run_shp(const Trace& train, std::uint32_t num_vectors,
                  const ShpConfig& config, ThreadPool* pool) {
  validate(config);
  if (train.num_queries() == 0) {
    throw std::invalid_argument("run_shp: empty training trace");
  }
  const CoAccessGraph h =
      build_coaccess(train, num_vectors, config.max_query_size);

  ShpResult result;
  result.access_counts.resize(num_vectors);
  for (VectorId v = 0; v < num_vectors; ++v) {
    result.access_counts[v] = h.degree(v);
  }

  // Vertex order array; ranges are [begin, end) slices of it.
  result.order.resize(num_vectors);
  std::iota(result.order.begin(), result.order.end(), 0);

  auto block_of_order = [&](std::uint32_t vpb) {
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t i = 0; i < num_vectors; ++i) {
      block_of[result.order[i]] = i / vpb;
    }
    return block_of;
  };
  {
    // Initial fanout: seeded random order (what "no partitioning" gives).
    Rng rng(config.seed ^ 0xF00DULL);
    std::vector<VectorId> shuffled = result.order;
    for (std::uint32_t i = num_vectors; i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t i = 0; i < num_vectors; ++i) {
      block_of[shuffled[i]] = i / config.vectors_per_block;
    }
    result.initial_avg_fanout = coaccess_fanout(
        h, block_of,
        (num_vectors + config.vectors_per_block - 1) / config.vectors_per_block);
  }

  const std::size_t workers = pool && pool->size() > 1 ? pool->size() : 1;
  {
    // Peak training memory, estimated at known allocation sites: CSR both
    // directions, order/side/counts/block_of arrays, one counting scratch
    // per concurrently-refining range (or per wide worker), candidate
    // lists, and the wide gain array. The input trace is the caller's.
    const std::uint64_t per_scratch = std::uint64_t{h.num_queries} * 12;
    result.peak_memory_bytes =
        h.byte_size() + std::uint64_t{num_vectors} * (4 + 1 + 4 + 4) +
        per_scratch * workers + std::uint64_t{num_vectors} * 16 +
        (workers > 1 ? per_scratch * workers + std::uint64_t{num_vectors} * 4
                     : 0);
  }

  std::vector<std::uint8_t> side(num_vectors, 0);
  struct Range {
    std::uint32_t begin, end;
  };
  const std::uint32_t vpb = config.vectors_per_block;
  // Split so the left child always holds a whole number of blocks: final
  // buckets then coincide exactly with physical block boundaries.
  auto aligned_half = [vpb](std::uint32_t n) -> std::uint32_t {
    const std::uint32_t blocks = (n + vpb - 1) / vpb;
    return std::min(n, ((blocks + 1) / 2) * vpb);
  };
  std::vector<Range> active{{0, num_vectors}};
  std::vector<std::uint64_t> swap_counts;
  WideCtx wide_ctx;
  wide_ctx.pool = pool;

  while (!active.empty()) {
    ++result.levels;
    swap_counts.assign(active.size(), 0);
    auto range_seed = [&](const Range& range) {
      return splitmix64(config.seed ^ (std::uint64_t{result.levels} << 32) ^
                        range.begin);
    };
    auto process_chunk = [&](std::size_t rb, std::size_t re) {
      Scratch scratch(h.num_queries);
      for (std::size_t r = rb; r < re; ++r) {
        const Range range = active[r];
        std::span<VectorId> verts(result.order.data() + range.begin,
                                  range.end - range.begin);
        swap_counts[r] =
            process_range(verts, aligned_half(range.end - range.begin), h,
                          side, scratch, config.iters_per_level,
                          config.max_swap_fraction, range_seed(range),
                          /*wide=*/nullptr)
                .swaps;
      }
    };
    if (workers > 1 && active.size() >= workers) {
      // Deep levels: more ranges than workers — one task per range chunk,
      // each refining its (disjoint) vertex slices sequentially.
      pool->parallel_for(active.size(), process_chunk);
    } else if (workers > 1) {
      // Wide levels: fewer ranges than workers — refine ranges one at a
      // time, parallelizing the counting + gain phases inside each.
      Scratch scratch(h.num_queries);
      for (std::size_t r = 0; r < active.size(); ++r) {
        const Range range = active[r];
        std::span<VectorId> verts(result.order.data() + range.begin,
                                  range.end - range.begin);
        swap_counts[r] =
            process_range(verts, aligned_half(range.end - range.begin), h,
                          side, scratch, config.iters_per_level,
                          config.max_swap_fraction, range_seed(range),
                          &wide_ctx)
                .swaps;
      }
    } else {
      process_chunk(0, active.size());
    }
    for (std::uint64_t s : swap_counts) result.total_swaps += s;

    // Split ranges; keep those still larger than a block.
    std::vector<Range> next;
    next.reserve(active.size() * 2);
    for (const Range& range : active) {
      const std::uint32_t n = range.end - range.begin;
      const std::uint32_t half = aligned_half(n);
      const Range child_a{range.begin, range.begin + half};
      const Range child_b{range.begin + half, range.end};
      for (const Range& c : {child_a, child_b}) {
        if (c.end - c.begin > config.vectors_per_block) next.push_back(c);
      }
    }
    active = std::move(next);
  }

  result.final_avg_fanout = coaccess_fanout(
      h, block_of_order(config.vectors_per_block),
      (num_vectors + config.vectors_per_block - 1) / config.vectors_per_block);
  return result;
}

}  // namespace bandana
