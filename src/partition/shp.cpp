#include "partition/shp.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.h"

namespace bandana {

namespace {

/// Deduplicated hypergraph in CSR form, both directions.
struct Hypergraph {
  std::vector<std::uint64_t> q_offsets;  // query -> verts
  std::vector<VectorId> q_verts;
  std::vector<std::uint64_t> v_offsets;  // vert -> queries
  std::vector<std::uint32_t> v_queries;
  std::uint32_t num_queries = 0;
};

Hypergraph build_hypergraph(const Trace& train, std::uint32_t num_vectors,
                            std::uint32_t max_query_size) {
  Hypergraph h;
  h.q_offsets.push_back(0);
  std::vector<VectorId> scratch;
  for (std::size_t q = 0; q < train.num_queries(); ++q) {
    auto ids = train.query(q);
    scratch.assign(ids.begin(), ids.end());
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
    if (scratch.size() < 2) continue;  // singleton edges carry no signal
    if (max_query_size != 0 && scratch.size() > max_query_size) continue;
    h.q_verts.insert(h.q_verts.end(), scratch.begin(), scratch.end());
    h.q_offsets.push_back(h.q_verts.size());
  }
  h.num_queries = static_cast<std::uint32_t>(h.q_offsets.size() - 1);

  // Invert to vertex -> queries.
  h.v_offsets.assign(num_vectors + 1, 0);
  for (VectorId v : h.q_verts) ++h.v_offsets[v + 1];
  std::partial_sum(h.v_offsets.begin(), h.v_offsets.end(), h.v_offsets.begin());
  h.v_queries.resize(h.q_verts.size());
  std::vector<std::uint64_t> cursor(h.v_offsets.begin(), h.v_offsets.end() - 1);
  for (std::uint32_t q = 0; q < h.num_queries; ++q) {
    for (std::uint64_t i = h.q_offsets[q]; i < h.q_offsets[q + 1]; ++i) {
      h.v_queries[cursor[h.q_verts[i]]++] = q;
    }
  }
  return h;
}

/// Average fanout of the training hypergraph under a vector -> block map.
double hypergraph_fanout(const Hypergraph& h,
                         const std::vector<std::uint32_t>& block_of,
                         std::uint32_t num_blocks) {
  if (h.num_queries == 0) return 0.0;
  std::vector<std::uint32_t> epoch(num_blocks, 0);
  std::uint32_t e = 0;
  std::uint64_t touches = 0;
  for (std::uint32_t q = 0; q < h.num_queries; ++q) {
    ++e;
    for (std::uint64_t i = h.q_offsets[q]; i < h.q_offsets[q + 1]; ++i) {
      const std::uint32_t b = block_of[h.q_verts[i]];
      if (epoch[b] != e) {
        epoch[b] = e;
        ++touches;
      }
    }
  }
  return static_cast<double>(touches) / static_cast<double>(h.num_queries);
}

/// Per-bucket-pair scratch, reused across iterations within one range.
struct Scratch {
  explicit Scratch(std::uint32_t num_queries)
      : cnt_a(num_queries, 0), cnt_b(num_queries, 0), q_epoch(num_queries, 0) {}
  std::vector<std::uint32_t> cnt_a;
  std::vector<std::uint32_t> cnt_b;
  std::vector<std::uint32_t> q_epoch;
  std::uint32_t epoch = 0;
  std::vector<std::pair<std::int32_t, VectorId>> cand_a;
  std::vector<std::pair<std::int32_t, VectorId>> cand_b;
};

struct RangeResult {
  std::uint64_t swaps = 0;
};

/// Refine one bucket (verts[begin, end)) into two halves of sizes
/// (half, n - half). `half` is block-aligned by the caller so that final
/// buckets coincide with physical blocks.
RangeResult process_range(std::span<VectorId> verts, std::size_t half,
                          const Hypergraph& h, std::vector<std::uint8_t>& side,
                          Scratch& scratch, std::uint32_t iters,
                          double max_swap_fraction, std::uint64_t seed) {
  RangeResult result;
  const std::size_t n = verts.size();
  // Deterministic shuffle, then first `half` -> side 0, rest -> side 1.
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(verts[i - 1], verts[rng.next_below(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) side[verts[i]] = i >= half;

  for (std::uint32_t iter = 0; iter < iters; ++iter) {
    // Bucket-local per-query side counts.
    ++scratch.epoch;
    for (VectorId v : verts) {
      const std::uint8_t s = side[v];
      for (std::uint64_t i = h.v_offsets[v]; i < h.v_offsets[v + 1]; ++i) {
        const std::uint32_t q = h.v_queries[i];
        if (scratch.q_epoch[q] != scratch.epoch) {
          scratch.q_epoch[q] = scratch.epoch;
          scratch.cnt_a[q] = 0;
          scratch.cnt_b[q] = 0;
        }
        if (s == 0) {
          ++scratch.cnt_a[q];
        } else {
          ++scratch.cnt_b[q];
        }
      }
    }
    // Move gains.
    scratch.cand_a.clear();
    scratch.cand_b.clear();
    for (VectorId v : verts) {
      std::int32_t gain = 0;
      const std::uint8_t s = side[v];
      for (std::uint64_t i = h.v_offsets[v]; i < h.v_offsets[v + 1]; ++i) {
        const std::uint32_t q = h.v_queries[i];
        if (scratch.q_epoch[q] != scratch.epoch) continue;  // unreachable
        const std::uint32_t here = s == 0 ? scratch.cnt_a[q] : scratch.cnt_b[q];
        const std::uint32_t there = s == 0 ? scratch.cnt_b[q] : scratch.cnt_a[q];
        if (here == 1) ++gain;   // this side stops touching q
        if (there == 0) --gain;  // other side starts touching q
      }
      (s == 0 ? scratch.cand_a : scratch.cand_b).emplace_back(gain, v);
    }
    // Pairwise swap of the highest-gain vertices from each side.
    auto desc = [](const auto& x, const auto& y) { return x > y; };
    std::sort(scratch.cand_a.begin(), scratch.cand_a.end(), desc);
    std::sort(scratch.cand_b.begin(), scratch.cand_b.end(), desc);
    const std::size_t cap = std::max<std::size_t>(
        1, static_cast<std::size_t>(max_swap_fraction *
                                    static_cast<double>(verts.size() / 2)));
    const std::size_t pairs =
        std::min({scratch.cand_a.size(), scratch.cand_b.size(), cap});
    std::uint64_t swapped = 0;
    for (std::size_t i = 0; i < pairs; ++i) {
      if (scratch.cand_a[i].first + scratch.cand_b[i].first <= 0) break;
      side[scratch.cand_a[i].second] = 1;
      side[scratch.cand_b[i].second] = 0;
      ++swapped;
    }
    result.swaps += swapped;
    if (swapped == 0) break;
  }

  // Physically partition the range by side (stable for determinism).
  std::stable_partition(verts.begin(), verts.end(),
                        [&](VectorId v) { return side[v] == 0; });
  return result;
}

}  // namespace

ShpResult run_shp(const Trace& train, std::uint32_t num_vectors,
                  const ShpConfig& config, ThreadPool* pool) {
  assert(config.vectors_per_block > 0);
  const Hypergraph h =
      build_hypergraph(train, num_vectors, config.max_query_size);

  ShpResult result;
  result.access_counts.resize(num_vectors);
  for (VectorId v = 0; v < num_vectors; ++v) {
    result.access_counts[v] =
        static_cast<std::uint32_t>(h.v_offsets[v + 1] - h.v_offsets[v]);
  }

  // Vertex order array; ranges are [begin, end) slices of it.
  result.order.resize(num_vectors);
  std::iota(result.order.begin(), result.order.end(), 0);

  auto block_of_order = [&](std::uint32_t vpb) {
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t i = 0; i < num_vectors; ++i) {
      block_of[result.order[i]] = i / vpb;
    }
    return block_of;
  };
  {
    // Initial fanout: seeded random order (what "no partitioning" gives).
    Rng rng(config.seed ^ 0xF00DULL);
    std::vector<VectorId> shuffled = result.order;
    for (std::uint32_t i = num_vectors; i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    std::vector<std::uint32_t> block_of(num_vectors);
    for (std::uint32_t i = 0; i < num_vectors; ++i) {
      block_of[shuffled[i]] = i / config.vectors_per_block;
    }
    result.initial_avg_fanout = hypergraph_fanout(
        h, block_of,
        (num_vectors + config.vectors_per_block - 1) / config.vectors_per_block);
  }

  std::vector<std::uint8_t> side(num_vectors, 0);
  struct Range {
    std::uint32_t begin, end;
  };
  const std::uint32_t vpb = config.vectors_per_block;
  // Split so the left child always holds a whole number of blocks: final
  // buckets then coincide exactly with physical block boundaries.
  auto aligned_half = [vpb](std::uint32_t n) -> std::uint32_t {
    const std::uint32_t blocks = (n + vpb - 1) / vpb;
    return std::min(n, ((blocks + 1) / 2) * vpb);
  };
  std::vector<Range> active{{0, num_vectors}};
  std::vector<std::uint64_t> swap_counts;

  while (!active.empty()) {
    ++result.levels;
    swap_counts.assign(active.size(), 0);
    auto process_chunk = [&](std::size_t rb, std::size_t re) {
      Scratch scratch(h.num_queries);
      for (std::size_t r = rb; r < re; ++r) {
        const Range range = active[r];
        std::span<VectorId> verts(result.order.data() + range.begin,
                                  range.end - range.begin);
        const std::uint64_t seed =
            splitmix64(config.seed ^ (std::uint64_t{result.levels} << 32) ^
                       range.begin);
        swap_counts[r] = process_range(verts, aligned_half(range.end - range.begin),
                                       h, side, scratch,
                                       config.iters_per_level,
                                       config.max_swap_fraction, seed)
                             .swaps;
      }
    };
    if (pool && active.size() > 1) {
      pool->parallel_for(active.size(), process_chunk);
    } else {
      process_chunk(0, active.size());
    }
    for (std::uint64_t s : swap_counts) result.total_swaps += s;

    // Split ranges; keep those still larger than a block.
    std::vector<Range> next;
    next.reserve(active.size() * 2);
    for (const Range& range : active) {
      const std::uint32_t n = range.end - range.begin;
      const std::uint32_t half = aligned_half(n);
      const Range child_a{range.begin, range.begin + half};
      const Range child_b{range.begin + half, range.end};
      for (const Range& c : {child_a, child_b}) {
        if (c.end - c.begin > config.vectors_per_block) next.push_back(c);
      }
    }
    active = std::move(next);
  }

  result.final_avg_fanout = hypergraph_fanout(
      h, block_of_order(config.vectors_per_block),
      (num_vectors + config.vectors_per_block - 1) / config.vectors_per_block);
  return result;
}

}  // namespace bandana
