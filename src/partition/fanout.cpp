#include "partition/fanout.h"

#include <vector>

namespace bandana {

FanoutStats compute_fanout(const Trace& trace, const BlockLayout& layout) {
  FanoutStats stats;
  stats.queries = trace.num_queries();
  // Epoch-stamped scratch avoids clearing per query.
  std::vector<std::uint32_t> block_epoch(layout.num_blocks(), 0);
  std::vector<std::uint32_t> vec_epoch(layout.num_vectors(), 0);
  std::uint32_t epoch = 0;
  std::uint64_t total_unique = 0;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    ++epoch;
    for (VectorId v : trace.query(q)) {
      if (vec_epoch[v] != epoch) {
        vec_epoch[v] = epoch;
        ++total_unique;
      }
      const BlockId b = layout.block_of(v);
      if (block_epoch[b] != epoch) {
        block_epoch[b] = epoch;
        ++stats.total_block_touches;
      }
    }
  }
  if (stats.queries > 0) {
    stats.avg_fanout = static_cast<double>(stats.total_block_touches) /
                       static_cast<double>(stats.queries);
    stats.avg_unique_lookups = static_cast<double>(total_unique) /
                               static_cast<double>(stats.queries);
  }
  return stats;
}

}  // namespace bandana
