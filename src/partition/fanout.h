// Query fanout metrics (paper Eq. 3): how many distinct NVM blocks must be
// read to satisfy each query under a given layout. This is both SHP's
// objective and the quantity that determines effective bandwidth with an
// unlimited cache.
#pragma once

#include <cstdint>

#include "partition/layout.h"
#include "trace/trace.h"

namespace bandana {

struct FanoutStats {
  double avg_fanout = 0.0;          ///< Mean distinct blocks per query.
  double avg_unique_lookups = 0.0;  ///< Mean distinct vectors per query.
  std::uint64_t total_block_touches = 0;
  std::size_t queries = 0;

  /// Blocks read per distinct vector; 1/vectors_per_block is optimal.
  double blocks_per_unique_lookup() const {
    return avg_unique_lookups > 0.0 ? avg_fanout / avg_unique_lookups : 0.0;
  }
};

FanoutStats compute_fanout(const Trace& trace, const BlockLayout& layout);

}  // namespace bandana
