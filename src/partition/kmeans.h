// K-means clustering of embedding vectors (paper §4.2.1, Figs. 6-8).
//
// "Semantic partitioning": vectors close in Euclidean space are assumed to
// be accessed together, so we cluster with Lloyd's algorithm (k-means++
// seeding) and lay vectors out cluster-major. Flat K-means is the Fig. 6
// configuration; the two-stage recursive variant (cluster into a coarse
// level, then sub-cluster each cluster) is Fig. 7b/8's scalability fix.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "trace/embedding_table.h"

namespace bandana {

struct KMeansConfig {
  std::uint32_t k = 256;
  std::uint32_t max_iters = 20;
  std::uint64_t seed = 1;
  /// Relative inertia improvement below which Lloyd stops early.
  double tolerance = 1e-4;
  /// Sample size for k-means++ seeding (full data is unnecessary).
  std::uint32_t seeding_sample = 16'384;
};

struct KMeansResult {
  std::vector<std::uint32_t> assignment;  ///< vector -> cluster
  std::vector<float> centroids;           ///< k x dim row-major
  std::uint32_t k = 0;
  double inertia = 0.0;                   ///< Sum of squared distances.
  std::uint32_t iters_run = 0;
};

/// Throws std::invalid_argument naming the offending field when the config
/// is degenerate (zero clusters, zero iterations, non-positive tolerance).
void validate(const KMeansConfig& config);

/// Lloyd's algorithm; `pool` parallelizes the assignment step (nullptr =
/// sequential). Deterministic given config.seed and pool size. Validates
/// the config on entry.
KMeansResult kmeans(const EmbeddingTable& table, const KMeansConfig& config,
                    ThreadPool* pool = nullptr);

struct RecursiveKMeansConfig {
  std::uint32_t top_clusters = 64;    ///< Paper uses 256 at full scale.
  std::uint32_t total_leaves = 4096;  ///< Total sub-clusters (Fig. 8 x-axis).
  std::uint32_t max_iters = 20;
  std::uint64_t seed = 1;
};

struct RecursiveKMeansResult {
  std::vector<VectorId> order;  ///< Leaf-major placement order.
  std::uint32_t leaves = 0;
  std::uint32_t iters_top = 0;
};

/// Throws std::invalid_argument when top_clusters, total_leaves, or
/// max_iters is zero, or total_leaves < top_clusters (each top cluster
/// needs at least one leaf).
void validate(const RecursiveKMeansConfig& config);

/// Two-stage K-means: cluster into top_clusters, then sub-cluster each
/// proportionally so the leaf count totals ~total_leaves. Validates the
/// config on entry.
RecursiveKMeansResult recursive_kmeans(const EmbeddingTable& table,
                                       const RecursiveKMeansConfig& config,
                                       ThreadPool* pool = nullptr);

/// Cluster-major order: vectors sorted by (cluster, id).
std::vector<VectorId> cluster_major_order(
    const std::vector<std::uint32_t>& assignment, std::uint32_t k);

}  // namespace bandana
