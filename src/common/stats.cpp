#include "common/stats.h"

#include <cassert>

namespace bandana {

double LatencyRecorder::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(rank, sorted_.size() - 1)];
}

}  // namespace bandana
