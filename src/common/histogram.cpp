#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace bandana {

LinearHistogram::LinearHistogram(std::uint64_t max_value, std::size_t buckets)
    : max_value_(max_value),
      width_((max_value + buckets - 1) / buckets),
      counts_(buckets + 1, 0) {
  assert(buckets > 0);
  assert(width_ > 0);
}

void LinearHistogram::add(std::uint64_t value, std::uint64_t count) {
  const std::size_t b =
      value >= max_value_ ? counts_.size() - 1
                          : static_cast<std::size_t>(value / width_);
  counts_[b] += count;
  total_ += count;
}

std::pair<std::uint64_t, std::uint64_t> LinearHistogram::bucket_range(
    std::size_t b) const {
  if (b == counts_.size() - 1) {
    return {max_value_, static_cast<std::uint64_t>(-1)};
  }
  return {b * width_, (b + 1) * width_};
}

void Log2Histogram::add(std::uint64_t value, std::uint64_t count) {
  const std::size_t b =
      value <= 1 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  counts_[b] += count;
  total_ += count;
}

std::pair<std::uint64_t, std::uint64_t> Log2Histogram::bucket_range(
    std::size_t b) const {
  if (b == 0) return {0, 2};
  return {1ULL << b, 1ULL << (b + 1)};
}

}  // namespace bandana
