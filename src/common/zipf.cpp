#include "common/zipf.h"

#include <cassert>

namespace bandana {

// Rejection-inversion after Hormann & Derflinger, "Rejection-inversion to
// generate variates from monotone discrete distributions" (1996), as used in
// e.g. Apache Commons. h(x) = ((x)^(1-s) - 1) / (1-s) is the integral of the
// density x^-s (with the s==1 limit ln x).
ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  t_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -s));
}

double ZipfSampler::h(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (s_ == 0.0) return rng.next_below(n_);  // uniform fast path
  while (true) {
    const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
    const double x = h_inv(u);
    // Clamp to the valid rank range.
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= t_ ||
        u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k - 1;  // 0-based rank
    }
  }
}

}  // namespace bandana
