// Fundamental type aliases shared across all Bandana modules.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bandana {

/// Index of an embedding vector within one table (column id in the paper).
using VectorId = std::uint32_t;

/// Index of a 4 KB physical block on the NVM device.
using BlockId = std::uint32_t;

/// Index of an embedding table within a model.
using TableId = std::uint16_t;

/// Simulated time in nanoseconds.
using SimTimeNs = std::uint64_t;

inline constexpr std::size_t kDefaultBlockBytes = 4096;
inline constexpr std::size_t kDefaultVectorBytes = 128;  // 64 x fp16 in paper
inline constexpr VectorId kInvalidVector = static_cast<VectorId>(-1);

}  // namespace bandana
