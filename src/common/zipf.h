// Zipf-distributed sampling over {0, ..., n-1}.
//
// Embedding-table popularity in production recommender workloads is heavily
// skewed (paper §3, Fig. 4); we model per-table popularity with Zipf
// distributions of varying exponents. Uses Hormann & Derflinger
// rejection-inversion, O(1) per sample and exact, so tables with 10^5..10^7
// items are cheap.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/rng.h"

namespace bandana {

class ZipfSampler {
 public:
  /// Ranks 0..n-1; rank r has probability proportional to 1/(r+1)^s.
  /// s == 0 degenerates to uniform.
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double h_inv(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double t_;  // threshold for the left-most point
};

}  // namespace bandana
