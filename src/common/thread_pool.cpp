#include "common/thread_pool.h"

#include <algorithm>

namespace bandana {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    submit([&fn, begin, end] { fn(begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace bandana
