// Aligned plain-text table output used by every bench binary to print
// paper-style rows/series.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace bandana {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render to stdout (or any FILE*). Columns are padded to the widest cell.
  void print(std::FILE* out = stdout) const;

  static std::string fmt(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bandana
