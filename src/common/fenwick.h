// Fenwick (binary indexed) tree over uint32 counts.
//
// Used by the exact Mattson stack-distance analyzer (trace/stack_distance):
// we keep a 1 at each "currently most recent access" timestamp and compute a
// vector's reuse (stack) distance as the number of distinct vectors touched
// since its previous access, via a prefix sum. O(log n) per operation.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace bandana {

class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n = 0) : tree_(n + 1, 0) {}

  std::size_t size() const { return tree_.size() - 1; }

  void resize(std::size_t n) { tree_.assign(n + 1, 0); }

  /// Add delta at 0-based index i.
  void add(std::size_t i, std::int64_t delta) {
    assert(i < size());
    for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of [0, i) — the first i elements; prefix_sum(0) == 0.
  std::int64_t prefix_sum(std::size_t i) const {
    assert(i <= size());
    std::int64_t s = 0;
    for (std::size_t j = i; j > 0; j -= j & (~j + 1)) s += tree_[j];
    return s;
  }

  /// Sum of the closed-open range [lo, hi).
  std::int64_t range_sum(std::size_t lo, std::size_t hi) const {
    return prefix_sum(hi) - prefix_sum(lo);
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace bandana
