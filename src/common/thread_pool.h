// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The partitioners (K-means assignment, SHP gain computation) are
// embarrassingly parallel over vectors/buckets; this pool gives them
// deterministic work decomposition (static chunking) so results do not
// depend on scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bandana {

class ThreadPool {
 public:
  /// threads == 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue an arbitrary task.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  /// Run fn(begin, end) over [0, n) split into one static chunk per worker.
  /// Blocks until complete. Chunk boundaries depend only on n and the pool
  /// size, so any reduction the caller does per-chunk is reproducible.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace bandana
