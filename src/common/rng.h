// Deterministic, fast random number generation.
//
// All stochastic components in Bandana (trace generation, the NVM latency
// model, partitioner initialization, cache sampling) take an explicit Rng so
// experiments are reproducible bit-for-bit given a seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace bandana {

/// SplitMix64 — used to seed and to hash ids (e.g. SHARDS spatial sampling).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna. Small, fast, high quality.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& si : s_) si = x = splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Lemire's multiply-shift rejection-free mapping
  /// (slightly biased for huge n, irrelevant at our scales).
  std::uint64_t next_below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next_u64()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as a log() argument.
  double next_double_open() {
    return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (polar-free variant; two uniforms).
  double next_normal() {
    const double u1 = next_double_open();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586476925286766559 * u2);
  }

  /// Lognormal with parameters of the underlying normal.
  double next_lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * next_normal());
  }

  /// Exponential with the given rate (mean 1/rate).
  double next_exponential(double rate) {
    return -std::log(next_double_open()) / rate;
  }

  bool next_bernoulli(double p) { return next_double() < p; }

  /// Derive an independent stream (e.g. one per table / per thread).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace bandana
