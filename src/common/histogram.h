// Linear- and log-bucketed histograms for access-count statistics (Fig. 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bandana {

/// Fixed-width linear histogram over [0, max). Values >= max land in the
/// final overflow bucket.
class LinearHistogram {
 public:
  LinearHistogram(std::uint64_t max_value, std::size_t buckets);

  void add(std::uint64_t value, std::uint64_t count = 1);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket_value(std::size_t b) const { return counts_[b]; }
  /// Closed-open value range covered by bucket b.
  std::pair<std::uint64_t, std::uint64_t> bucket_range(std::size_t b) const;
  std::uint64_t total() const { return total_; }

 private:
  std::uint64_t max_value_;
  std::uint64_t width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Power-of-two bucketed histogram: bucket b covers [2^b, 2^(b+1)), with
/// bucket 0 covering {0, 1}. Suits the paper's log-scale access histograms.
class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);

  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket_value(std::size_t b) const { return counts_[b]; }
  std::pair<std::uint64_t, std::uint64_t> bucket_range(std::size_t b) const;
  std::uint64_t total() const { return total_; }

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace bandana
