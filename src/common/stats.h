// Streaming statistics and latency percentile recording.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace bandana {

/// Welford running mean/variance. O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Records samples (e.g. per-IO latencies in ns) and answers percentile
/// queries. Stores raw samples; our simulations produce at most a few
/// million IOs so exact percentiles are affordable and simplest.
class LatencyRecorder {
 public:
  void reserve(std::size_t n) { samples_.reserve(n); }
  void add(double v) {
    samples_.push_back(v);
    stats_.add(v);
  }
  std::uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.max(); }

  /// q in [0,1]; e.g. 0.99 for P99. Exact (nearest-rank on sorted copy,
  /// cached until the next add()).
  double percentile(double q) const;

  void clear() {
    samples_.clear();
    sorted_.clear();
    stats_ = RunningStats{};
  }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  RunningStats stats_;
};

}  // namespace bandana
