#include "common/table_printer.h"

#include <algorithm>
#include <cassert>

namespace bandana {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                   c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 != widths.size()) sep.append("  ");
  }
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace bandana
