// The 8-table scaled reproduction of the paper's production workload.
//
// Table 1 of the paper characterizes 8 user-embedding tables of 10-20 M
// vectors each, observed over a 1 B-lookup trace. We reproduce the same
// relative structure at ~1:100 scale (so every experiment runs on a laptop
// in seconds-to-minutes):
//
//   table  vectors  mean lookups/query  compulsory%   notes
//   1      100 K    8.7                 ~4 %          highly cacheable
//   2      100 K    23.2                ~2 %          top lookup share
//   3      200 K    6.7                 ~24 %
//   4      200 K    6.3                 ~19 %
//   5      100 K    7.6                 ~23 %
//   6      100 K    13.4                ~27 %
//   7      100 K    13.6                ~11 %
//   8      200 K    4.4                 ~61 %         cache-hostile
//
// Mean lookups are the paper's values scaled by 1/4 to keep trace volume
// proportional to the table scale. Per-table popularity skew, profile
// structure, and semantic alignment are chosen so the qualitative results
// (which tables benefit from partitioning/caching, Fig. 3/4/6/9/13) match.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/table_config.h"

namespace bandana {

struct PaperWorkloadOptions {
  /// Multiplies table sizes and profile pools; 1.0 = the 1:100 default.
  double scale = 1.0;
  /// Embedding dimension (floats); 32 = 128 B vectors as in the paper.
  std::uint16_t dim = 32;
};

/// The 8 scaled table configurations, index 0 = paper's table 1.
std::vector<TableWorkloadConfig> paper_tables(
    const PaperWorkloadOptions& opts = {});

/// Number of queries such that the total lookup volume across all 8 tables
/// is roughly `lookups`.
std::size_t queries_for_lookups(const std::vector<TableWorkloadConfig>& tables,
                                std::uint64_t lookups);

}  // namespace bandana
