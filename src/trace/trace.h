// Access traces: sequences of lookup queries against one embedding table.
//
// A query (the paper's "request", one per ranked user) contains many vector
// lookups against the same table — 17..92 on average depending on the table
// (Table 1). Stored CSR-style: one flat id array plus per-query offsets.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace bandana {

class Trace {
 public:
  Trace() : offsets_{0} {}

  void add_query(std::span<const VectorId> ids) {
    ids_.insert(ids_.end(), ids.begin(), ids.end());
    offsets_.push_back(static_cast<std::uint64_t>(ids_.size()));
  }

  std::size_t num_queries() const { return offsets_.size() - 1; }
  std::uint64_t total_lookups() const { return ids_.size(); }

  std::span<const VectorId> query(std::size_t q) const {
    return {ids_.data() + offsets_[q],
            static_cast<std::size_t>(offsets_[q + 1] - offsets_[q])};
  }

  std::span<const VectorId> all_lookups() const { return ids_; }

  /// Prefix of the first `n` queries (cheap copy of the id slice).
  Trace head(std::size_t n) const;

  void reserve(std::size_t queries, std::uint64_t lookups) {
    offsets_.reserve(queries + 1);
    ids_.reserve(lookups);
  }

  /// Binary serialization (magic + offsets + ids).
  void save(const std::string& path) const;
  static Trace load(const std::string& path);

  bool operator==(const Trace& other) const = default;

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<VectorId> ids_;
};

}  // namespace bandana
