#include "trace/trace_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bandana {

std::uint32_t poisson_sample(Rng& rng, double mean) {
  assert(mean >= 0.0);
  // Knuth for small means; normal approximation for large ones.
  if (mean > 64.0) {
    const double x = mean + std::sqrt(mean) * rng.next_normal();
    return x < 0.0 ? 0u : static_cast<std::uint32_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  double p = 1.0;
  std::uint32_t k = 0;
  do {
    ++k;
    p *= rng.next_double_open();
  } while (p > limit);
  return k - 1;
}

TraceGenerator::TraceGenerator(TableWorkloadConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      value_seed_(splitmix64(seed ^ 0xE5CA1ADEULL)),
      popularity_(config_.num_vectors, config_.popularity_skew),
      profile_pick_(std::max<std::uint32_t>(1, config_.num_profiles),
                    config_.profile_skew),
      within_profile_(std::max<std::uint32_t>(1, config_.profile_size),
                      config_.within_profile_skew) {
  const std::uint32_t n = config_.num_vectors;

  // Latent order: a fixed random permutation. Rank in this order determines
  // both global popularity and community membership, so popular vectors are
  // spread across table ids (the "original" layout has no locality) while
  // communities are coherent in embedding space.
  latent_order_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) latent_order_[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(latent_order_[i - 1], latent_order_[rng_.next_below(i)]);
  }
  rank_of_.resize(n);
  for (std::uint32_t r = 0; r < n; ++r) rank_of_[latent_order_[r]] = r;

  pop_order_ = latent_order_;
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(pop_order_[i - 1], pop_order_[rng_.next_below(i)]);
  }

  seen_.assign(n, false);

  // Fresh stack: its own shuffle so compulsory misses are spread over ids.
  fresh_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) fresh_[i] = i;
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(fresh_[i - 1], fresh_[rng_.next_below(i)]);
  }

  // Profile pool. Each profile owns one home community and draws its
  // members from it with probability semantic_strength (else by global
  // popularity). One home community keeps profile overlap low, so the
  // co-access structure is learnable.
  const std::uint32_t num_comm = config_.num_communities();
  ZipfSampler comm_pick(num_comm, 0.3);
  profiles_.resize(config_.num_profiles);
  for (auto& members : profiles_) {
    fill_profile(members, static_cast<std::uint32_t>(comm_pick(rng_)));
  }
}

void TraceGenerator::fill_profile(std::vector<VectorId>& members,
                                  std::uint32_t home_community) {
  const std::uint32_t n = config_.num_vectors;
  const std::uint32_t lo = home_community * config_.community_size;
  const std::uint32_t hi =
      std::min<std::uint32_t>(n, lo + config_.community_size);
  members.clear();
  members.reserve(config_.profile_size);
  for (std::uint32_t m = 0; m < config_.profile_size; ++m) {
    VectorId v;
    if (rng_.next_bernoulli(config_.semantic_strength)) {
      v = latent_order_[lo + rng_.next_below(hi - lo)];
    } else {
      v = pop_order_[popularity_(rng_)];
    }
    members.push_back(v);
  }
}

void TraceGenerator::apply_drift(double profile_fraction,
                                 double popularity_fraction) {
  const std::uint32_t n = config_.num_vectors;
  // Popularity shift: swap the head ranks with uniformly random ranks, so
  // part of the hot set is replaced by previously-cold vectors (they were
  // never profile members, so the old layout scattered them).
  const auto head = static_cast<std::uint32_t>(
      popularity_fraction * static_cast<double>(n));
  for (std::uint32_t i = 0; i < head; ++i) {
    std::swap(pop_order_[i], pop_order_[rng_.next_below(n)]);
  }
  // Interest shift: a fraction of the profile pool is re-drawn wholesale
  // (new home community, new members). Queries that land on a re-drawn
  // profile now co-access vector sets the trained layout never packed
  // together — the signal an online retrainer must pick up from sampled
  // traffic.
  ZipfSampler comm_pick(config_.num_communities(), 0.3);
  for (auto& members : profiles_) {
    if (!rng_.next_bernoulli(profile_fraction)) continue;
    fill_profile(members, static_cast<std::uint32_t>(comm_pick(rng_)));
  }
}

VectorId TraceGenerator::draw_fresh(Rng& rng) {
  while (fresh_top_ < fresh_.size() && seen_[fresh_[fresh_top_]]) {
    ++fresh_top_;
  }
  if (fresh_top_ < fresh_.size()) return fresh_[fresh_top_++];
  // Table exhausted: fall back to a uniform draw (reuse is unavoidable).
  return static_cast<VectorId>(rng.next_below(config_.num_vectors));
}

VectorId TraceGenerator::draw_popular(Rng& rng) {
  return pop_order_[popularity_(rng)];
}

VectorId TraceGenerator::draw_from_profile(Rng& rng, std::uint32_t profile) {
  const auto& members = profiles_[profile];
  std::uint64_t r = within_profile_(rng);
  if (r >= members.size()) r = members.size() - 1;
  return members[r];
}

VectorId TraceGenerator::draw_lookup(Rng& rng, std::uint32_t profile) {
  VectorId v;
  if (rng.next_bernoulli(config_.new_vector_prob)) {
    v = draw_fresh(rng);
  } else if (!profiles_.empty() && rng.next_bernoulli(config_.profile_frac)) {
    v = draw_from_profile(rng, profile);
  } else {
    v = draw_popular(rng);
  }
  seen_[v] = true;
  return v;
}

Trace TraceGenerator::generate(std::size_t num_queries) {
  Trace trace;
  trace.reserve(num_queries,
                static_cast<std::uint64_t>(
                    num_queries * (config_.mean_lookups_per_query + 1)));
  std::vector<VectorId> ids;
  for (std::size_t q = 0; q < num_queries; ++q) {
    const std::uint32_t k =
        1 + poisson_sample(rng_, std::max(0.0, config_.mean_lookups_per_query - 1));
    const std::uint32_t profile =
        profiles_.empty() ? 0 : static_cast<std::uint32_t>(profile_pick_(rng_));
    ids.clear();
    ids.reserve(k);
    for (std::uint32_t i = 0; i < k; ++i) {
      ids.push_back(draw_lookup(rng_, profile));
    }
    trace.add_query(ids);
  }
  return trace;
}

EmbeddingTable TraceGenerator::make_embeddings() const {
  EmbeddingTable table(config_.num_vectors, config_.dim);
  Rng rng(value_seed_);
  // Community centroids on the unit sphere (approximately).
  const std::uint32_t num_comm = config_.num_communities();
  std::vector<float> centroids(static_cast<std::size_t>(num_comm) * config_.dim);
  for (auto& c : centroids) c = static_cast<float>(rng.next_normal());

  for (VectorId v = 0; v < config_.num_vectors; ++v) {
    const std::uint32_t c = community_of(v);
    auto out = table.vector(v);
    const float* centroid = centroids.data() + std::size_t{c} * config_.dim;
    for (std::uint16_t d = 0; d < config_.dim; ++d) {
      // Per-vector noise must be a deterministic function of (v, d), not of
      // iteration order, so embeddings are stable regardless of call site.
      Rng vr(splitmix64(value_seed_ ^ (std::uint64_t{v} << 20) ^ d));
      out[d] = centroid[d] +
               static_cast<float>(config_.embedding_noise * vr.next_normal());
    }
  }
  return table;
}

std::uint32_t TraceGenerator::community_of(VectorId v) const {
  return rank_of_[v] / config_.community_size;
}

}  // namespace bandana
