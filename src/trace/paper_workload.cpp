#include "trace/paper_workload.h"

#include <algorithm>
#include <cmath>

namespace bandana {

namespace {
struct Row {
  const char* name;
  std::uint32_t vectors;
  double mean_lookups;   // paper value / 4
  double compulsory;     // paper's compulsory-miss rate
  double pop_skew;
  double profile_frac;
  double semantic;       // community/co-access alignment
};

// Tuned so the measured Table-1 statistics and the partitioning/caching
// result *shapes* match the paper (see EXPERIMENTS.md).
constexpr Row kRows[8] = {
    //        vectors  look  comp   skew  prof  sem
    {"table1", 100'000, 8.71, 0.042, 1.05, 0.90, 0.90},
    {"table2", 100'000, 23.19, 0.022, 1.10, 0.90, 0.85},
    {"table3", 200'000, 6.67, 0.243, 0.70, 0.65, 0.55},
    {"table4", 200'000, 6.29, 0.195, 0.72, 0.68, 0.55},
    {"table5", 100'000, 7.56, 0.227, 0.72, 0.65, 0.50},
    {"table6", 100'000, 13.38, 0.269, 0.65, 0.60, 0.45},
    {"table7", 100'000, 13.59, 0.060, 0.85, 0.75, 0.40},
    {"table8", 200'000, 4.42, 0.608, 0.30, 0.30, 0.20},
};
}  // namespace

std::vector<TableWorkloadConfig> paper_tables(
    const PaperWorkloadOptions& opts) {
  std::vector<TableWorkloadConfig> out;
  out.reserve(8);
  for (const Row& r : kRows) {
    TableWorkloadConfig cfg;
    cfg.name = r.name;
    cfg.num_vectors = static_cast<std::uint32_t>(
        std::max(1.0, std::round(r.vectors * opts.scale)));
    cfg.dim = opts.dim;
    cfg.mean_lookups_per_query = r.mean_lookups;
    cfg.new_vector_prob = r.compulsory;
    cfg.popularity_skew = r.pop_skew;
    cfg.profile_frac = r.profile_frac;
    cfg.semantic_strength = r.semantic;
    cfg.num_profiles = static_cast<std::uint32_t>(
        std::max(64.0, std::round(cfg.num_vectors / 32.0)));
    // Profiles sized to the query so a first activation is a co-access
    // burst; see table_config.h.
    cfg.profile_size = static_cast<std::uint32_t>(
        std::clamp(std::round(1.5 * r.mean_lookups), 16.0, 48.0));
    cfg.profile_skew = 0.7;
    cfg.within_profile_skew = 0.2;
    cfg.community_size = 64;
    out.push_back(cfg);
  }
  return out;
}

std::size_t queries_for_lookups(const std::vector<TableWorkloadConfig>& tables,
                                std::uint64_t lookups) {
  double per_query = 0.0;
  for (const auto& t : tables) per_query += t.mean_lookups_per_query;
  if (per_query <= 0.0) return 0;
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(lookups) / per_query));
}

}  // namespace bandana
