// Synthetic embedding-lookup trace generator (the substitute for the
// paper's proprietary production trace; see table_config.h for the model).
//
// The generator is stateful: successive generate() calls continue the same
// workload stream (same latent communities, same profile pool, same fresh-
// vector stack), so a training trace and an evaluation trace drawn from one
// generator share co-access structure — exactly the property that lets SHP
// trained on history help future queries (paper §4.2.2).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "trace/embedding_table.h"
#include "trace/table_config.h"
#include "trace/trace.h"

namespace bandana {

class TraceGenerator {
 public:
  TraceGenerator(TableWorkloadConfig config, std::uint64_t seed);

  const TableWorkloadConfig& config() const { return config_; }

  /// Generate the next `num_queries` queries of the stream.
  Trace generate(std::size_t num_queries);

  /// Shift the workload (production traffic drift, §2.2): re-draws
  /// `profile_fraction` of the profile pool — new member sets, possibly
  /// from new home communities, so a layout trained on earlier traffic
  /// stops matching the co-access structure — and swaps
  /// `popularity_fraction` of the popularity head with random ranks, so
  /// previously-cold vectors become hot. Subsequent generate() calls
  /// sample the shifted stream. Deterministic (advances the generator's
  /// own rng stream); a generator that never calls this is bit-identical
  /// to before this method existed. The no-argument overload uses the
  /// config's drift_* fractions.
  void apply_drift(double profile_fraction, double popularity_fraction);
  void apply_drift() {
    apply_drift(config_.drift_profile_fraction,
                config_.drift_popularity_fraction);
  }

  /// Materialize embedding values consistent with the latent communities
  /// (community centroid + Gaussian noise). Deterministic per seed.
  EmbeddingTable make_embeddings() const;

  /// Latent community of a vector (test/diagnostic hook).
  std::uint32_t community_of(VectorId v) const;

 private:
  void fill_profile(std::vector<VectorId>& members,
                    std::uint32_t home_community);
  VectorId draw_lookup(Rng& rng, std::uint32_t profile);
  VectorId draw_fresh(Rng& rng);
  VectorId draw_popular(Rng& rng);
  VectorId draw_from_profile(Rng& rng, std::uint32_t profile);

  TableWorkloadConfig config_;
  Rng rng_;
  std::uint64_t value_seed_;

  /// latent_order_[rank] = vector id; the rank determines the community.
  std::vector<VectorId> latent_order_;
  std::vector<std::uint32_t> rank_of_;  // inverse permutation
  /// Independent permutation for global popularity: pop_order_[rank] is the
  /// rank-th most popular vector. Kept separate from the community order so
  /// the Zipf head is NOT community-clustered (K-means must earn its gains
  /// from semantic structure, not from a popularity artifact).
  std::vector<VectorId> pop_order_;

  /// Fresh stack: vectors not yet touched, in pop order. Pops skip vectors
  /// the stream already touched via profile/popularity draws, so a fresh
  /// draw is a true compulsory miss until the table is exhausted.
  std::vector<VectorId> fresh_;
  std::size_t fresh_top_ = 0;
  std::vector<bool> seen_;

  /// Profile pool: profiles_[p] is a persistent member list.
  std::vector<std::vector<VectorId>> profiles_;

  ZipfSampler popularity_;
  ZipfSampler profile_pick_;
  ZipfSampler within_profile_;
};

/// Draw a Poisson variate (Knuth's method; means here are <= ~100).
std::uint32_t poisson_sample(Rng& rng, double mean);

}  // namespace bandana
