#include "trace/trace_stream.h"

#include <algorithm>

namespace bandana {

std::size_t TraceRefSource::next_chunk(Trace& out, std::size_t max_queries) {
  const std::size_t end =
      std::min(trace_.num_queries(), next_ + max_queries);
  const std::size_t emitted = end - next_;
  for (; next_ < end; ++next_) out.add_query(trace_.query(next_));
  return emitted;
}

std::size_t SyntheticTraceSource::next_chunk(Trace& out,
                                             std::size_t max_queries) {
  const std::size_t emitted = std::min(remaining_, max_queries);
  for (std::size_t q = 0; q < emitted; ++q) {
    scratch_.clear();
    // Pick a hot cluster of ~64 adjacent ids, then draw most lookups from
    // it and the rest uniformly — queries re-hitting a cluster co-access
    // the same vectors, which is the structure SHP exploits.
    const std::uint32_t clusters = std::max<std::uint32_t>(1, num_vectors_ / 64);
    const std::uint32_t cluster =
        static_cast<std::uint32_t>(rng_.next_below(clusters));
    for (std::uint32_t i = 0; i < query_len_; ++i) {
      if (rng_.next_below(10) < 8) {
        const std::uint32_t base = cluster * 64;
        scratch_.push_back(
            std::min<VectorId>(num_vectors_ - 1,
                               base + static_cast<std::uint32_t>(
                                          rng_.next_below(64))));
      } else {
        scratch_.push_back(
            static_cast<VectorId>(rng_.next_below(num_vectors_)));
      }
    }
    out.add_query(scratch_);
  }
  remaining_ -= emitted;
  return emitted;
}

}  // namespace bandana
