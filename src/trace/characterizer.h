// Workload characterization (paper §3, Table 1 & Fig. 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "trace/trace.h"

namespace bandana {

struct TableCharacterization {
  std::uint32_t num_vectors = 0;
  std::uint64_t total_lookups = 0;
  std::size_t num_queries = 0;
  std::uint64_t unique_vectors = 0;  ///< Distinct vectors touched.

  double avg_lookups_per_query() const {
    return num_queries ? static_cast<double>(total_lookups) /
                             static_cast<double>(num_queries)
                       : 0.0;
  }
  /// Paper's "compulsory misses": fraction of lookups that touch a vector
  /// never read before in the trace.
  double compulsory_miss_rate() const {
    return total_lookups ? static_cast<double>(unique_vectors) /
                               static_cast<double>(total_lookups)
                         : 0.0;
  }
};

/// Single pass over a trace.
TableCharacterization characterize(const Trace& trace,
                                   std::uint32_t num_vectors);

/// Per-vector access counts (input to Fig. 4's histograms and to the
/// SHP-frequency admission threshold of §4.3.2).
std::vector<std::uint32_t> access_counts(const Trace& trace,
                                         std::uint32_t num_vectors);

/// Fig. 4: how many vectors were accessed a given number of times.
/// Returns a linear histogram over [0, max_accesses) with `buckets` bars.
LinearHistogram access_histogram(const std::vector<std::uint32_t>& counts,
                                 std::uint64_t max_accesses,
                                 std::size_t buckets);

}  // namespace bandana
