// Per-table synthetic workload parameters.
//
// The paper's production trace is proprietary; this config parameterizes a
// generator that reproduces the *properties* the paper's results depend on
// (§3, Table 1):
//   * per-table lookup volume and mean lookups per query,
//   * compulsory-miss rate (fraction of lookups touching never-seen
//     vectors), modeled by an explicit fresh-vector process,
//   * skewed popularity (Fig. 4's heavy-tailed access histograms),
//   * query-level co-access structure ("profiles": stable sets of vectors
//     that recur together across queries — what SHP learns), and
//   * semantic structure (embedding values clustered by community, with a
//     configurable correlation between communities and co-access — what
//     K-means can exploit, strongly for tables like 1 and 2 and weakly for
//     others, matching Fig. 6 vs Fig. 9).
#pragma once

#include <cstdint>
#include <string>

namespace bandana {

struct TableWorkloadConfig {
  std::string name = "table";

  /// Number of embedding vectors (columns) in the table.
  std::uint32_t num_vectors = 100'000;

  /// Embedding dimension in float32 elements (32 -> 128 B vectors, the
  /// paper's default byte size; 16/64 give the 64 B / 256 B points of
  /// Fig. 16).
  std::uint16_t dim = 32;

  /// Mean vector lookups per query (Poisson + 1).
  double mean_lookups_per_query = 20.0;

  /// Probability that a lookup targets a never-accessed vector (drawn from
  /// a shuffled fresh stack). Directly controls the compulsory-miss rate.
  double new_vector_prob = 0.1;

  /// Zipf exponent of the global popularity distribution.
  double popularity_skew = 0.8;

  /// Co-access structure: queries draw most lookups from one "profile"
  /// (a persistent set of vectors recurring together — a user's interest
  /// set). Profiles are close to block-sized and sampled near-uniformly,
  /// so a profile's first activation pulls in most of its members at once:
  /// the bursty co-access that makes block packing pay off.
  std::uint32_t num_profiles = 4000;
  std::uint32_t profile_size = 32;
  double profile_skew = 0.8;    ///< Zipf over which profile a query uses.
  double profile_frac = 0.7;    ///< Fraction of lookups from the profile.
  double within_profile_skew = 0.2;  ///< Zipf over members inside a profile.

  /// Semantic structure: vectors belong to latent communities of this size;
  /// embedding values are community centroid + noise.
  std::uint32_t community_size = 64;
  /// Probability that a profile member is drawn from the profile's own
  /// communities (vs anywhere): 1.0 -> co-access aligns perfectly with
  /// embedding-space clusters (K-means does well), 0.0 -> no alignment.
  double semantic_strength = 0.6;
  /// Gaussian noise added around the community centroid.
  double embedding_noise = 0.15;

  /// Traffic-drift defaults (TraceGenerator::apply_drift): production
  /// traffic shifts continuously — user interests move and yesterday's hot
  /// vectors cool off (paper §2.2: models are retrained and re-pushed
  /// because of exactly this). One drift event re-draws this fraction of
  /// the profile pool (new member sets, possibly new home communities, so
  /// the learned co-access layout goes stale)...
  double drift_profile_fraction = 0.5;
  /// ...and re-ranks this fraction of the popularity head (previously-cold
  /// vectors become hot).
  double drift_popularity_fraction = 0.25;

  std::size_t vector_bytes() const { return std::size_t{dim} * sizeof(float); }
  std::uint32_t num_communities() const {
    return (num_vectors + community_size - 1) / community_size;
  }
};

}  // namespace bandana
