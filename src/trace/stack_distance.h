// Exact Mattson stack-distance analysis and LRU hit-rate curves (Fig. 3).
//
// The stack distance of an access is the vector's rank in an infinite LRU
// stack at access time (1 = top). An LRU cache of capacity C hits exactly
// the accesses with stack distance <= C, so one pass yields the full
// hit-rate curve. Computed exactly with a Fenwick tree over access
// timestamps, O(M log M) for M lookups.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "trace/trace.h"

namespace bandana {

/// hit_rate(c) for every LRU capacity c, plus compulsory-miss accounting.
class HitRateCurve {
 public:
  HitRateCurve() = default;
  /// `hits_by_distance[d]` = number of accesses with stack distance d+1.
  HitRateCurve(std::vector<std::uint64_t> hits_by_distance,
               std::uint64_t total_accesses, std::uint64_t compulsory);

  /// Fraction of accesses that hit in an LRU cache of `cache_vectors`.
  double hit_rate(std::uint64_t cache_vectors) const;

  /// Absolute number of hits at the given capacity.
  std::uint64_t hits(std::uint64_t cache_vectors) const;

  /// Additional hits from growing the cache from c to c+delta.
  std::uint64_t marginal_hits(std::uint64_t c, std::uint64_t delta) const;

  std::uint64_t total_accesses() const { return total_; }
  std::uint64_t compulsory_misses() const { return compulsory_; }
  /// Number of distinct vectors seen (largest useful cache size).
  std::uint64_t max_useful_size() const { return cumulative_.size(); }

  /// Down-scale a sampled curve back to full-cache coordinates: capacities
  /// multiply by 1/rate and counts by 1/rate (SHARDS-style rescaling).
  HitRateCurve scaled(double rate) const;

 private:
  std::vector<std::uint64_t> cumulative_;  // cumulative_[c-1] = hits(c)
  std::uint64_t total_ = 0;
  std::uint64_t compulsory_ = 0;
  /// For sampled curves: full capacity C maps to index C * capacity_scale_
  /// and sampled counts scale by count_scale_ (= 1/rate).
  double capacity_scale_ = 1.0;
  double count_scale_ = 1.0;
};

/// Streaming exact stack-distance computation over per-vector accesses.
class StackDistanceAnalyzer {
 public:
  explicit StackDistanceAnalyzer(std::uint32_t num_vectors,
                                 std::uint64_t expected_accesses = 0);

  /// Feed one access; returns its stack distance (1-based) or 0 for a
  /// compulsory miss (first touch).
  std::uint64_t access(VectorId v);

  void access_all(std::span<const VectorId> ids) {
    for (VectorId v : ids) access(v);
  }

  HitRateCurve curve() const;

  std::uint64_t total_accesses() const { return total_; }
  std::uint64_t compulsory_misses() const { return compulsory_; }

 private:
  void grow_time();

  std::uint32_t num_vectors_;
  std::vector<std::int64_t> tree_;        // Fenwick over timestamps
  std::vector<std::uint64_t> last_pos_;   // per vector: last timestamp + 1
  std::vector<std::uint64_t> hist_;       // hits by stack distance - 1
  std::uint64_t now_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t compulsory_ = 0;
};

/// Convenience: full curve of a trace in one call.
HitRateCurve compute_hit_rate_curve(const Trace& trace,
                                    std::uint32_t num_vectors);

}  // namespace bandana
