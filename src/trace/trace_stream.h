// Chunked trace iteration for bounded-memory training.
//
// A TraceSource hands out queries in caller-sized chunks so a consumer
// (Partitioner::partition_stream) can reservoir-sample a training set
// without ever materializing the full trace — the paper's production
// setting, where a day of access logs does not fit next to the serving
// process. TraceRefSource adapts an in-memory Trace (tests, benches);
// SyntheticTraceSource generates queries on the fly, so benches can sweep
// trace sizes far past what full materialization would allow.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "trace/trace.h"

namespace bandana {

class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Append up to `max_queries` next queries to `out`. Returns the number
  /// appended; 0 means the stream is exhausted.
  virtual std::size_t next_chunk(Trace& out, std::size_t max_queries) = 0;
};

/// Streams an existing in-memory trace chunk by chunk.
class TraceRefSource final : public TraceSource {
 public:
  explicit TraceRefSource(const Trace& trace) : trace_(trace) {}
  std::size_t next_chunk(Trace& out, std::size_t max_queries) override;
  void reset() { next_ = 0; }

 private:
  const Trace& trace_;
  std::size_t next_ = 0;
};

/// Generates a skewed synthetic workload query by query: each query draws
/// `query_len` lookups from a Zipf-ish hot set, so co-access structure
/// exists for the partitioners to find. Never holds more than one query.
class SyntheticTraceSource final : public TraceSource {
 public:
  SyntheticTraceSource(std::uint32_t num_vectors, std::size_t num_queries,
                       std::uint32_t query_len, std::uint64_t seed)
      : num_vectors_(num_vectors),
        remaining_(num_queries),
        query_len_(query_len),
        rng_(seed) {}
  std::size_t next_chunk(Trace& out, std::size_t max_queries) override;

 private:
  std::uint32_t num_vectors_;
  std::size_t remaining_;
  std::uint32_t query_len_;
  Rng rng_;
  std::vector<VectorId> scratch_;
};

}  // namespace bandana
