#include "trace/stack_distance.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace bandana {

HitRateCurve::HitRateCurve(std::vector<std::uint64_t> hits_by_distance,
                           std::uint64_t total_accesses,
                           std::uint64_t compulsory)
    : cumulative_(std::move(hits_by_distance)),
      total_(total_accesses),
      compulsory_(compulsory) {
  // Trim trailing zeros, then prefix-sum in place.
  while (!cumulative_.empty() && cumulative_.back() == 0) cumulative_.pop_back();
  std::partial_sum(cumulative_.begin(), cumulative_.end(), cumulative_.begin());
}

std::uint64_t HitRateCurve::hits(std::uint64_t cache_vectors) const {
  // A curve sampled at rate r lives in mini-cache coordinates: a full cache
  // of C vectors corresponds to mini capacity C * r.
  const auto scaled_cap = static_cast<std::uint64_t>(
      static_cast<double>(cache_vectors) * capacity_scale_);
  if (scaled_cap == 0 || cumulative_.empty()) return 0;
  const std::uint64_t idx = std::min<std::uint64_t>(scaled_cap, cumulative_.size());
  return static_cast<std::uint64_t>(
      static_cast<double>(cumulative_[idx - 1]) * count_scale_);
}

double HitRateCurve::hit_rate(std::uint64_t cache_vectors) const {
  const double scaled_total = static_cast<double>(total_) * count_scale_;
  if (scaled_total <= 0.0) return 0.0;
  return static_cast<double>(hits(cache_vectors)) / scaled_total;
}

std::uint64_t HitRateCurve::marginal_hits(std::uint64_t c,
                                          std::uint64_t delta) const {
  return hits(c + delta) - hits(c);
}

HitRateCurve HitRateCurve::scaled(double rate) const {
  assert(rate > 0.0 && rate <= 1.0);
  HitRateCurve out = *this;
  out.capacity_scale_ = capacity_scale_ * rate;
  out.count_scale_ = count_scale_ / rate;
  return out;
}

StackDistanceAnalyzer::StackDistanceAnalyzer(std::uint32_t num_vectors,
                                             std::uint64_t expected_accesses)
    : num_vectors_(num_vectors),
      last_pos_(num_vectors, 0),
      hist_(num_vectors, 0) {
  std::uint64_t cap = 2 * std::uint64_t{num_vectors} + 1024;
  cap = std::max(cap, expected_accesses / 8 + 1024);
  tree_.assign(cap + 1, 0);
}

namespace {
inline void fenwick_add(std::vector<std::int64_t>& tree, std::uint64_t i,
                        std::int64_t delta) {
  for (std::uint64_t j = i + 1; j < tree.size(); j += j & (~j + 1)) {
    tree[j] += delta;
  }
}
inline std::int64_t fenwick_prefix(const std::vector<std::int64_t>& tree,
                                   std::uint64_t i) {
  std::int64_t s = 0;
  for (std::uint64_t j = i; j > 0; j -= j & (~j + 1)) s += tree[j];
  return s;
}
}  // namespace

void StackDistanceAnalyzer::grow_time() {
  // Compact timestamps: only each vector's most recent access matters.
  // Collect live (vector, last_pos), re-number along the same order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> live;
  live.reserve(num_vectors_);
  for (std::uint32_t v = 0; v < num_vectors_; ++v) {
    if (last_pos_[v] > 0) live.emplace_back(last_pos_[v], v);
  }
  std::sort(live.begin(), live.end());
  std::fill(tree_.begin(), tree_.end(), 0);
  std::uint64_t t = 0;
  for (auto& [pos, v] : live) {
    fenwick_add(tree_, t, 1);
    last_pos_[v] = t + 1;
    ++t;
  }
  now_ = t;
}

std::uint64_t StackDistanceAnalyzer::access(VectorId v) {
  assert(v < num_vectors_);
  if (now_ + 1 >= tree_.size()) grow_time();
  std::uint64_t sd = 0;
  ++total_;
  if (last_pos_[v] > 0) {
    const std::uint64_t p = last_pos_[v] - 1;
    const std::int64_t distinct_between =
        fenwick_prefix(tree_, now_) - fenwick_prefix(tree_, p + 1);
    sd = static_cast<std::uint64_t>(distinct_between) + 1;
    assert(sd <= num_vectors_);
    ++hist_[sd - 1];
    fenwick_add(tree_, p, -1);
  } else {
    ++compulsory_;
  }
  fenwick_add(tree_, now_, 1);
  last_pos_[v] = now_ + 1;
  ++now_;
  return sd;
}

HitRateCurve StackDistanceAnalyzer::curve() const {
  return HitRateCurve(hist_, total_, compulsory_);
}

HitRateCurve compute_hit_rate_curve(const Trace& trace,
                                    std::uint32_t num_vectors) {
  StackDistanceAnalyzer a(num_vectors, trace.total_lookups());
  a.access_all(trace.all_lookups());
  return a.curve();
}

}  // namespace bandana
