#include "trace/characterizer.h"

#include <cassert>

namespace bandana {

TableCharacterization characterize(const Trace& trace,
                                   std::uint32_t num_vectors) {
  TableCharacterization c;
  c.num_vectors = num_vectors;
  c.num_queries = trace.num_queries();
  c.total_lookups = trace.total_lookups();
  std::vector<bool> seen(num_vectors, false);
  for (VectorId v : trace.all_lookups()) {
    assert(v < num_vectors);
    if (!seen[v]) {
      seen[v] = true;
      ++c.unique_vectors;
    }
  }
  return c;
}

std::vector<std::uint32_t> access_counts(const Trace& trace,
                                         std::uint32_t num_vectors) {
  std::vector<std::uint32_t> counts(num_vectors, 0);
  for (VectorId v : trace.all_lookups()) {
    assert(v < num_vectors);
    ++counts[v];
  }
  return counts;
}

LinearHistogram access_histogram(const std::vector<std::uint32_t>& counts,
                                 std::uint64_t max_accesses,
                                 std::size_t buckets) {
  LinearHistogram h(max_accesses, buckets);
  for (std::uint32_t c : counts) {
    if (c > 0) h.add(c);
  }
  return h;
}

}  // namespace bandana
