#include "trace/trace.h"

#include <cstdio>
#include <memory>
#include <stdexcept>

namespace bandana {

namespace {
constexpr std::uint64_t kMagic = 0x42414E44414E4131ULL;  // "BANDANA1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void write_vec(std::FILE* f, const std::vector<T>& v) {
  const std::uint64_t n = v.size();
  if (std::fwrite(&n, sizeof(n), 1, f) != 1 ||
      (n > 0 && std::fwrite(v.data(), sizeof(T), n, f) != n)) {
    throw std::runtime_error("Trace::save: write failed");
  }
}

template <typename T>
std::vector<T> read_vec(std::FILE* f) {
  std::uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    throw std::runtime_error("Trace::load: truncated file");
  }
  std::vector<T> v(n);
  if (n > 0 && std::fread(v.data(), sizeof(T), n, f) != n) {
    throw std::runtime_error("Trace::load: truncated file");
  }
  return v;
}
}  // namespace

Trace Trace::head(std::size_t n) const {
  Trace t;
  const std::size_t q = std::min(n, num_queries());
  t.offsets_.assign(offsets_.begin(), offsets_.begin() + q + 1);
  t.ids_.assign(ids_.begin(), ids_.begin() + offsets_[q]);
  return t;
}

void Trace::save(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) throw std::runtime_error("Trace::save: cannot open " + path);
  if (std::fwrite(&kMagic, sizeof(kMagic), 1, f.get()) != 1) {
    throw std::runtime_error("Trace::save: write failed");
  }
  write_vec(f.get(), offsets_);
  write_vec(f.get(), ids_);
}

Trace Trace::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("Trace::load: cannot open " + path);
  std::uint64_t magic = 0;
  if (std::fread(&magic, sizeof(magic), 1, f.get()) != 1 || magic != kMagic) {
    throw std::runtime_error("Trace::load: bad magic in " + path);
  }
  Trace t;
  t.offsets_ = read_vec<std::uint64_t>(f.get());
  t.ids_ = read_vec<VectorId>(f.get());
  if (t.offsets_.empty() || t.offsets_.front() != 0 ||
      t.offsets_.back() != t.ids_.size()) {
    throw std::runtime_error("Trace::load: inconsistent offsets in " + path);
  }
  return t;
}

}  // namespace bandana
