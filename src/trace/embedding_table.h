// Dense embedding-table values (the actual bytes Bandana stores on NVM).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace bandana {

/// num_vectors x dim row-major float matrix. The paper uses 64 x fp16
/// (128 B); we use float32 with dim chosen to match the byte footprint.
class EmbeddingTable {
 public:
  EmbeddingTable(std::uint32_t num_vectors, std::uint16_t dim)
      : num_vectors_(num_vectors),
        dim_(dim),
        data_(static_cast<std::size_t>(num_vectors) * dim) {}

  std::uint32_t num_vectors() const { return num_vectors_; }
  std::uint16_t dim() const { return dim_; }
  std::size_t vector_bytes() const { return std::size_t{dim_} * sizeof(float); }

  std::span<float> vector(VectorId v) {
    return {data_.data() + static_cast<std::size_t>(v) * dim_, dim_};
  }
  std::span<const float> vector(VectorId v) const {
    return {data_.data() + static_cast<std::size_t>(v) * dim_, dim_};
  }

  std::span<const std::byte> vector_bytes_view(VectorId v) const {
    return {reinterpret_cast<const std::byte*>(data_.data() +
                                               static_cast<std::size_t>(v) * dim_),
            vector_bytes()};
  }

  const std::vector<float>& raw() const { return data_; }

 private:
  std::uint32_t num_vectors_;
  std::uint16_t dim_;
  std::vector<float> data_;
};

}  // namespace bandana
