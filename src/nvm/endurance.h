// NVM endurance accounting.
//
// Unlike DRAM, NVM wears out with writes: the paper's devices sustain ~30
// whole-device rewrites per day (DWPD), and Facebook's embedding tables are
// retrained and republished 10-20 times a day — safely below the limit
// (§2.2). EnduranceTracker lets the Store verify that a given republish
// cadence stays within budget and estimates device lifetime.
#pragma once

#include <cstdint>

namespace bandana {

class EnduranceTracker {
 public:
  /// `device_bytes` — raw capacity; `dwpd_limit` — rated drive writes per
  /// day; `lifetime_days` — rating period (typically 5 years).
  EnduranceTracker(std::uint64_t device_bytes, double dwpd_limit,
                   double lifetime_days = 5.0 * 365.0);

  /// Record `bytes` written at day offset `day` (fractional days allowed).
  void record_write(std::uint64_t bytes, double day);

  std::uint64_t total_bytes_written() const { return total_bytes_; }

  /// Average device writes per day over the observed window.
  double observed_dwpd() const;

  /// True if the observed write rate is within the rated DWPD.
  bool within_budget() const;

  /// Projected years until the rated total-bytes-written budget is
  /// exhausted at the observed rate; +inf if nothing written yet.
  double projected_lifetime_years() const;

 private:
  std::uint64_t device_bytes_;
  double dwpd_limit_;
  double lifetime_days_;
  std::uint64_t total_bytes_ = 0;
  double first_day_ = 0.0;
  double last_day_ = 0.0;
  bool any_ = false;
};

}  // namespace bandana
