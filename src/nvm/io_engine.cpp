#include "nvm/io_engine.h"

#include <algorithm>
#include <stdexcept>

namespace bandana {

NvmIoEngine::NvmIoEngine(const NvmDeviceConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      model_(cfg),
      seed_(seed),
      admission_(cfg.channels, cfg.queue_depth) {
  if (cfg.channels == 0) {
    throw std::invalid_argument("NvmIoEngine: channels must be >= 1");
  }
  channels_.resize(cfg.channels);
  for (unsigned c = 0; c < cfg.channels; ++c) {
    channels_[c].rng.reseed(channel_stream_seed(seed, c));
    channels_[c].write_rng.reseed(channel_write_stream_seed(seed, c));
  }
}

void NvmIoEngine::reset() {
  admission_.reset();
  pending_ = {};
  next_id_ = 0;
  delivered_ = 0;
  for (unsigned c = 0; c < channels_.size(); ++c) {
    channels_[c] = Channel();
    channels_[c].rng.reseed(channel_stream_seed(seed_, c));
    channels_[c].write_rng.reseed(channel_write_stream_seed(seed_, c));
  }
}

std::uint64_t NvmIoEngine::submit(double arrival_us, IoKind kind) {
  // Submission boundary: the admission gate releases the IO at its
  // arrival, or at the earliest outstanding completion when the
  // queue_depth x channels cap is full (the IO takes that slot). Reads
  // and writes hold slots of the same gate.
  const double submit_us = admission_.admit(arrival_us);

  // Route to the per-channel FIFO that drains first. With equal tails the
  // lowest index wins, which matches the legacy dispatch queue's
  // min_element tie-break. Writes join the same FIFOs — that shared queue
  // is the whole interference model.
  Channel* best = &channels_[0];
  for (auto& ch : channels_) {
    if (ch.tail_free_us < best->tail_free_us) best = &ch;
  }
  const unsigned channel = static_cast<unsigned>(best - channels_.data());

  // FIFO service: the IO starts when both it has been released and every
  // earlier IO in this channel's queue has left the media. The fixed
  // submission/completion overhead adds end-to-end latency but overlaps
  // with other IOs (saturated bandwidth stays channels/service, Fig. 2).
  // Each kind draws from its own stream so the interleaving alone — never
  // the draws — couples the two traffic classes.
  const double start_us = std::max(submit_us, best->tail_free_us);
  const double service_us = kind == IoKind::kWrite
                                ? model_.sample_write_service_us(best->write_rng)
                                : model_.sample_service_us(best->rng);
  const double complete_us = start_us + service_us + model_.base_latency_us();
  best->tail_free_us = start_us + service_us;
  if (kind == IoKind::kWrite) {
    best->write_busy_us += service_us;
    ++best->writes;
  } else {
    best->busy_us += service_us;
    ++best->ios;
  }
  admission_.on_submitted(complete_us);

  IoCompletion done;
  done.id = next_id_++;
  done.channel = channel;
  done.kind = kind;
  done.arrival_us = arrival_us;
  done.submit_us = submit_us;
  done.start_us = start_us;
  done.complete_us = complete_us;
  pending_.push(done);
  return done.id;
}

std::optional<IoCompletion> NvmIoEngine::next_completion() {
  if (pending_.empty()) return std::nullopt;
  IoCompletion done = pending_.top();
  pending_.pop();
  ++delivered_;
  return done;
}

double NvmIoEngine::submit_wave(double arrival_us, std::uint64_t count,
                                std::vector<IoCompletion>* sink, IoKind kind) {
  for (std::uint64_t i = 0; i < count; ++i) submit(arrival_us, kind);
  double max_done = arrival_us;
  while (auto done = next_completion()) {
    max_done = std::max(max_done, done->complete_us);
    if (sink != nullptr) sink->push_back(*done);
  }
  return max_done;
}

IoChannelStats NvmIoEngine::channel_stats(unsigned c) const {
  const Channel& ch = channels_.at(c);
  return {ch.ios, ch.busy_us, ch.tail_free_us, ch.writes, ch.write_busy_us};
}

}  // namespace bandana
