#include "nvm/admission.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bandana {

TrickleRateLimiter::TrickleRateLimiter(const RepublishConfig& cfg)
    : cfg_(cfg) {
  if (cfg_.blocks_per_interval > 0 && !(cfg_.interval_us > 0.0)) {
    throw std::invalid_argument(
        "TrickleRateLimiter: interval_us must be positive when "
        "blocks_per_interval > 0");
  }
}

std::int64_t TrickleRateLimiter::interval_of(double now_us) const {
  return static_cast<std::int64_t>(std::floor(now_us / cfg_.interval_us));
}

std::uint64_t TrickleRateLimiter::allowance(double now_us) const {
  if (unlimited()) return std::numeric_limits<std::uint64_t>::max();
  if (interval_of(now_us) != interval_) return cfg_.blocks_per_interval;
  return cfg_.blocks_per_interval - used_;
}

void TrickleRateLimiter::consume(double now_us, std::uint64_t blocks) {
  if (unlimited()) return;
  const std::int64_t interval = interval_of(now_us);
  if (interval != interval_) {
    interval_ = interval;
    used_ = 0;
  }
  // Saturate rather than trust the caller: a pump that sized its wave from
  // a stale allowance (e.g. across a many-interval idle gap) must not carry
  // the excess into this interval as a catch-up burst. The interval absorbs
  // at most blocks_per_interval no matter what was handed in.
  used_ += std::min(blocks, cfg_.blocks_per_interval - used_);
}

double submit_reads(const NvmLatencyModel& model, double arrival_us,
                    std::uint64_t count, std::vector<double>& channel_free_us,
                    AdmissionController& admission, Rng& rng) {
  double max_done = arrival_us;
  for (std::uint64_t i = 0; i < count; ++i) {
    const double submit_us = admission.admit(arrival_us);
    const double done = submit_read(model, submit_us, channel_free_us, rng);
    admission.on_submitted(done);
    max_done = std::max(max_done, done);
  }
  return max_done;
}

}  // namespace bandana
