#include "nvm/admission.h"

#include <algorithm>

namespace bandana {

double submit_reads(const NvmLatencyModel& model, double arrival_us,
                    std::uint64_t count, std::vector<double>& channel_free_us,
                    AdmissionController& admission, Rng& rng) {
  double max_done = arrival_us;
  for (std::uint64_t i = 0; i < count; ++i) {
    const double submit_us = admission.admit(arrival_us);
    const double done = submit_read(model, submit_us, channel_free_us, rng);
    admission.on_submitted(done);
    max_done = std::max(max_done, done);
  }
  return max_done;
}

}  // namespace bandana
