// Queue-depth admission control for block-IO submission (paper §2.2).
//
// The paper keeps the NVM device's queue depth bounded: latency past the
// bandwidth knee is a queueing artifact, and an unbounded submitter turns
// one oversized request into a device-monopolizing burst. This controller
// caps the number of outstanding block IOs at queue_depth × channels —
// reads AND writes: the write-aware NvmIoEngine routes publish/republish
// traffic through the same gate, so a live republish consumes read slots
// exactly like the device's shared submission queue would. submit_reads()
// splits a request's read batch into depth-bounded waves — an IO past the
// cap is only submitted once an earlier one completes, so the Fig. 5
// hockey stick emerges from queueing at the admission gate rather than
// from unbounded submission.
//
// A slot is held through the IO's full completion (channel service plus
// the fixed submission/completion overhead), which reproduces Fig. 2's
// queue-depth trade-off: at per-channel depth 1 the overhead is exposed
// (channels idle between reads, bandwidth below peak), while a depth of
// roughly 1 + base_latency/service hides it and the channel queue becomes
// the binding constraint again.
//
// Simulated-time semantics: completions are tracked as timestamps, so the
// controller is exercised under the owner's timing lock (Store holds
// timing_mu_) and needs no synchronization of its own.
//
// The event-driven NvmIoEngine (nvm/io_engine.h) embeds this controller at
// its submission boundary; submit_reads() below is the legacy
// single-dispatch-queue wave submitter, kept as the reference model for
// the engine's channels=1 equivalence suite.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "nvm/nvm_device.h"

namespace bandana {

class AdmissionController {
 public:
  /// `queue_depth` is the per-channel cap on outstanding IOs (reads plus
  /// writes); 0 disables admission control (unbounded submission, the
  /// pre-admission behavior).
  AdmissionController(unsigned channels, unsigned queue_depth)
      : max_outstanding_(static_cast<std::uint64_t>(channels) * queue_depth) {}

  bool bounded() const { return max_outstanding_ > 0; }
  std::uint64_t max_outstanding() const { return max_outstanding_; }
  std::size_t outstanding() const { return completions_.size(); }

  /// Earliest simulated time (>= arrival_us) at which the next read may be
  /// submitted. Reads completed by arrival_us free their slots first; if
  /// the gate is still full, the read waits for the earliest completion
  /// (whose slot it consumes).
  double admit(double arrival_us) {
    if (!bounded()) return arrival_us;
    while (!completions_.empty() && completions_.top() <= arrival_us) {
      completions_.pop();
    }
    if (completions_.size() < max_outstanding_) return arrival_us;
    const double freed_at = completions_.top();
    completions_.pop();
    return freed_at;
  }

  /// Record a submitted read's completion time (it holds a slot until then).
  void on_submitted(double completion_us) {
    if (bounded()) completions_.push(completion_us);
  }

  void reset() { completions_ = {}; }

 private:
  std::uint64_t max_outstanding_;
  std::priority_queue<double, std::vector<double>, std::greater<>>
      completions_;
};

/// Submit `count` block reads arriving together at `arrival_us`, gated by
/// `admission`, onto the device channels. Returns the completion time of
/// the slowest read (== arrival_us when count is 0). With an unbounded
/// controller this reproduces the plain submit_read loop exactly.
double submit_reads(const NvmLatencyModel& model, double arrival_us,
                    std::uint64_t count, std::vector<double>& channel_free_us,
                    AdmissionController& admission, Rng& rng);

/// Token bucket over simulated-time intervals for trickle republish
/// (Store::begin_trickle_republish): interval k is
/// [k * interval_us, (k+1) * interval_us), and at most
/// `blocks_per_interval` block writes may be admitted inside any one
/// interval. Unused allowance does NOT roll over — a stalled pump cannot
/// save up a burst that defeats the rate limit. Like AdmissionController
/// this is simulated-time bookkeeping: the owner serializes calls (the
/// trickle session holds its own mutex).
class TrickleRateLimiter {
 public:
  /// Throws std::invalid_argument when rate-limited (blocks_per_interval
  /// > 0) with a non-positive interval_us.
  explicit TrickleRateLimiter(const RepublishConfig& cfg);

  bool unlimited() const { return cfg_.blocks_per_interval == 0; }
  const RepublishConfig& config() const { return cfg_; }

  /// Blocks admissible at simulated time `now_us` (UINT64_MAX when
  /// unlimited). now_us may repeat or move backwards within an interval;
  /// consumption is tracked per interval index.
  std::uint64_t allowance(double now_us) const;

  /// Consume `blocks` of the interval containing `now_us`. `blocks` must
  /// not exceed allowance(now_us); consumption past the interval's budget
  /// saturates at blocks_per_interval (so a caller holding a stale
  /// allowance from before an idle gap cannot bank a catch-up burst).
  void consume(double now_us, std::uint64_t blocks);

 private:
  std::int64_t interval_of(double now_us) const;

  RepublishConfig cfg_;
  std::int64_t interval_ = -1;  ///< Interval index last consumed in.
  std::uint64_t used_ = 0;      ///< Blocks consumed in that interval.
};

}  // namespace bandana
