#include "nvm/nvm_device.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "nvm/io_engine.h"

namespace bandana {

double NvmDeviceConfig::mean_service_us() const {
  // Lognormal mean = median * exp(sigma^2 / 2).
  return service_median_us * std::exp(service_sigma * service_sigma / 2.0);
}

double NvmDeviceConfig::mean_write_service_us() const {
  return write_service_median_us *
         std::exp(write_service_sigma * write_service_sigma / 2.0);
}

double NvmDeviceConfig::peak_bandwidth_bytes_per_s() const {
  return static_cast<double>(channels) * static_cast<double>(block_bytes) /
         (mean_service_us() * 1e-6);
}

double submit_read(const NvmLatencyModel& model, double now_us,
                   std::vector<double>& channel_free_us, Rng& rng) {
  auto it = std::min_element(channel_free_us.begin(), channel_free_us.end());
  const double start = std::max(now_us, *it);
  // The channel is occupied for the media service time only; the fixed
  // submission/completion overhead adds end-to-end latency but overlaps
  // with other IOs (so saturated bandwidth is channels/service, Fig. 2).
  const double channel_busy_until = start + model.sample_service_us(rng);
  *it = channel_busy_until;
  return channel_busy_until + model.base_latency_us();
}

DeviceRunResult run_closed_loop_legacy(const NvmDeviceConfig& cfg,
                                       unsigned queue_depth,
                                       std::uint64_t num_ios,
                                       std::uint64_t seed) {
  Rng rng(seed);
  NvmLatencyModel model(cfg);
  std::vector<double> channel_free(cfg.channels, 0.0);
  std::priority_queue<double, std::vector<double>, std::greater<>> clients;
  for (unsigned i = 0; i < queue_depth; ++i) clients.push(0.0);
  DeviceRunResult result;
  result.latency_us.reserve(num_ios);
  double end_time = 0.0;
  for (std::uint64_t i = 0; i < num_ios; ++i) {
    const double issue = clients.top();
    clients.pop();
    const double done = submit_read(model, issue, channel_free, rng);
    result.latency_us.add(done - issue);
    clients.push(done);
    end_time = std::max(end_time, done);
  }
  result.ios = num_ios;
  result.elapsed_us = end_time;
  return result;
}

namespace {
/// The drivers are raw fio-style characterization sweeps: `queue_depth`
/// here is the client count (or the arrival rate sets the load), and the
/// store-side admission cap must not gate them — outstanding IOs are
/// bounded by the sweep itself, exactly as in the legacy drivers.
NvmDeviceConfig ungated(NvmDeviceConfig cfg) {
  cfg.queue_depth = 0;
  return cfg;
}
}  // namespace

DeviceRunResult run_closed_loop(const NvmDeviceConfig& cfg,
                                unsigned queue_depth, std::uint64_t num_ios,
                                std::uint64_t seed) {
  NvmIoEngine engine(ungated(cfg), seed);
  DeviceRunResult result;
  result.latency_us.reserve(num_ios);
  // `queue_depth` logical clients all issue at t=0; each completion event
  // triggers that client's next submission.
  std::uint64_t issued = 0;
  for (unsigned i = 0; i < queue_depth && issued < num_ios; ++i, ++issued) {
    engine.submit(0.0);
  }
  double end_time = 0.0;
  while (auto done = engine.next_completion()) {
    result.latency_us.add(done->latency_us());
    end_time = std::max(end_time, done->complete_us);
    if (issued < num_ios) {
      engine.submit(done->complete_us);
      ++issued;
    }
  }
  result.ios = num_ios;
  result.elapsed_us = end_time;
  return result;
}

DeviceRunResult run_open_loop(const NvmDeviceConfig& cfg,
                              double arrivals_per_s, std::uint64_t num_ios,
                              std::uint64_t seed) {
  NvmIoEngine engine(ungated(cfg), seed);
  // Arrivals draw from their own seed-derived stream, disjoint from every
  // channel's service stream, so each process is independently replayable.
  Rng arrival_rng(arrival_stream_seed(seed));
  const double rate_per_us = arrivals_per_s * 1e-6;

  DeviceRunResult result;
  result.latency_us.reserve(num_ios);
  double arrival = 0.0;
  for (std::uint64_t i = 0; i < num_ios; ++i) {
    arrival += arrival_rng.next_exponential(rate_per_us);
    engine.submit(arrival);
  }
  double end_time = 0.0;
  while (auto done = engine.next_completion()) {
    result.latency_us.add(done->latency_us());
    end_time = std::max(end_time, done->complete_us);
  }
  result.ios = num_ios;
  result.elapsed_us = end_time;
  return result;
}

}  // namespace bandana
