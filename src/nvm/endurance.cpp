#include "nvm/endurance.h"

#include <algorithm>
#include <limits>

namespace bandana {

EnduranceTracker::EnduranceTracker(std::uint64_t device_bytes,
                                   double dwpd_limit, double lifetime_days)
    : device_bytes_(device_bytes),
      dwpd_limit_(dwpd_limit),
      lifetime_days_(lifetime_days) {}

void EnduranceTracker::record_write(std::uint64_t bytes, double day) {
  if (!any_) {
    first_day_ = day;
    any_ = true;
  }
  last_day_ = std::max(last_day_, day);
  total_bytes_ += bytes;
}

double EnduranceTracker::observed_dwpd() const {
  if (!any_) return 0.0;
  const double window = std::max(last_day_ - first_day_, 1.0);
  return static_cast<double>(total_bytes_) /
         static_cast<double>(device_bytes_) / window;
}

bool EnduranceTracker::within_budget() const {
  return observed_dwpd() <= dwpd_limit_;
}

double EnduranceTracker::projected_lifetime_years() const {
  const double dwpd = observed_dwpd();
  if (dwpd <= 0.0) return std::numeric_limits<double>::infinity();
  // Rated budget: dwpd_limit_ * lifetime_days_ device-writes in total.
  const double budget_writes = dwpd_limit_ * lifetime_days_;
  return budget_writes / dwpd / 365.0;
}

}  // namespace bandana
