// Event-driven per-channel NVM I/O engine.
//
// The legacy model (submit_read in nvm_device.h) fed all `channels` service
// units from one global dispatch queue: a read always landed on the
// earliest-free channel and drew its service time from one shared stream.
// That shape cannot express per-channel queueing — the structure behind the
// paper's device characterization (§2.2, Fig. 2) and its overload behavior
// (Fig. 5) — and it let one oversized request monopolize every channel.
//
// NvmIoEngine restructures the device as explicit submit/complete events
// over per-channel FIFO queues:
//
//   submit(arrival)  — the read passes the AdmissionController at the
//                      submission boundary (at most queue_depth x channels
//                      outstanding; a read past the cap waits for the
//                      earliest completion and takes its slot), then joins
//                      the FIFO of the channel whose queue drains first.
//   complete event   — delivered in simulated-time order via
//                      next_completion(); closed-loop drivers re-submit on
//                      each completion, open-loop drivers pace arrivals.
//
// Every IoCompletion records the full event timeline (arrival, admission
// release, channel service start, completion), so fairness and queueing
// properties are directly observable per channel and per request stream.
//
// Equivalence with the legacy model: per-IO service times are independent
// of queue state, so routing a read at submission to the channel whose FIFO
// drains first and computing start = max(release, tail) is exactly the
// trajectory an event-at-a-time simulation of the same FIFO system produces
// (the event loop is collapsed onto the queue-tail timestamps). With
// channels = 1 the engine's single FIFO degenerates to the legacy global
// dispatch queue: identical routing, identical service stream (see
// channel_stream_seed), bit-identical completion order and latencies —
// tests/test_io_engine.cpp pins this equivalence.
//
// Writes (publish/republish/growth traffic, paper §2.2) enqueue
// IoKind::kWrite events on the SAME per-channel FIFOs and pass the SAME
// admission gate as reads — queue_depth x channels bounds reads plus
// writes outstanding — so live republish traffic inflates read tail
// latency exactly as channel contention predicts (the Fig. 5
// mixed-traffic sweep in bench_fig05). The write path is purely additive:
// writes draw service times from disjoint per-channel streams
// (channel_write_stream_seed), so a read-only trace is bit-identical with
// or without the write model, and with channels = 1 interleaved writes
// delay reads without changing any read's service draw.
//
// Determinism: all randomness derives from the run seed. Channel c draws
// read service times from an independent stream seeded by
// channel_stream_seed(seed, c); channel 0 keeps the run seed's own stream
// so a single-channel engine replays the legacy draw sequence exactly.
// Nothing on this path touches std::random_device or the wall clock, so
// every run is replayable from its seed alone.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "nvm/admission.h"
#include "nvm/nvm_config.h"
#include "nvm/nvm_device.h"

namespace bandana {

/// Seed of channel `channel`'s service-time stream for a run seeded with
/// `run_seed`. Channel 0 keeps the run seed itself (legacy-equivalence);
/// other channels get splitmix-derived independent streams. Pure function:
/// the whole engine is replayable from the run seed.
constexpr std::uint64_t channel_stream_seed(std::uint64_t run_seed,
                                            unsigned channel) {
  return channel == 0
             ? run_seed
             : splitmix64(run_seed ^
                          (0x9E3779B97F4A7C15ULL * (std::uint64_t{channel})));
}

/// Seed of the arrival-process stream (open-loop drivers), kept disjoint
/// from every channel stream.
constexpr std::uint64_t arrival_stream_seed(std::uint64_t run_seed) {
  return splitmix64(run_seed ^ 0xA5A5A5A55A5A5A5AULL);
}

/// Seed of channel `channel`'s *write* service-time stream. Disjoint from
/// every read stream (including channel 0's legacy stream), so interleaved
/// writes delay reads through the shared FIFOs without ever perturbing the
/// read service draws — read-only traffic stays bit-identical whether or
/// not the run also publishes.
constexpr std::uint64_t channel_write_stream_seed(std::uint64_t run_seed,
                                                  unsigned channel) {
  return splitmix64(channel_stream_seed(run_seed, channel) ^
                    0xC3C3C3C33C3C3C3CULL);
}

/// What an IO does to the media. Reads and writes share the per-channel
/// FIFO queues and the admission gate (queue_depth x channels bounds reads
/// PLUS writes outstanding); they differ only in which service distribution
/// and which per-channel stream they draw from.
enum class IoKind : std::uint8_t { kRead, kWrite };

/// One IO's full event timeline through the engine.
struct IoCompletion {
  std::uint64_t id = 0;      ///< Monotone submission sequence number.
  unsigned channel = 0;      ///< Service unit that executed the IO.
  IoKind kind = IoKind::kRead;
  double arrival_us = 0.0;   ///< When the IO arrived at the engine.
  double submit_us = 0.0;    ///< When the admission gate released it.
  double start_us = 0.0;     ///< When its channel began servicing it.
  double complete_us = 0.0;  ///< start + service + completion overhead.

  double latency_us() const { return complete_us - arrival_us; }
  double admission_wait_us() const { return submit_us - arrival_us; }
  double queue_wait_us() const { return start_us - submit_us; }
};

/// Per-channel service counters (cumulative since construction/reset).
struct IoChannelStats {
  std::uint64_t ios = 0;          ///< Reads serviced by this channel.
  double busy_us = 0.0;           ///< Total read media service time.
  double tail_free_us = 0;        ///< When the channel's FIFO drains.
  std::uint64_t writes = 0;       ///< Writes serviced by this channel.
  double write_busy_us = 0.0;     ///< Total write media service time.
};

class NvmIoEngine {
 public:
  NvmIoEngine(const NvmDeviceConfig& cfg, std::uint64_t seed);

  /// Submit one IO arriving at `arrival_us`: admission gate (reads and
  /// writes share the queue_depth x channels cap), then the per-channel
  /// FIFO whose tail drains first (ties go to the lowest channel index).
  /// Its completion event is queued for delivery. Returns the IO's id.
  /// Arrivals need not be monotone (concurrent request streams
  /// interleave), but determinism is per submission order. Writes draw
  /// from a disjoint per-channel stream, so the write path is purely
  /// additive to the read timeline: a read-only trace is bit-identical
  /// with or without the write model configured.
  std::uint64_t submit(double arrival_us, IoKind kind = IoKind::kRead);

  /// Deliver the earliest pending completion event (ties by submission
  /// id). Empty when every submitted IO has been delivered.
  std::optional<IoCompletion> next_completion();

  /// Submit `count` IOs of `kind` arriving together at `arrival_us` (one
  /// admission wave) and deliver every pending completion. Returns the
  /// latest completion time (`arrival_us` when the engine is idle and
  /// count is 0). If `sink` is non-null the delivered completions are
  /// appended to it.
  double submit_wave(double arrival_us, std::uint64_t count,
                     std::vector<IoCompletion>* sink = nullptr,
                     IoKind kind = IoKind::kRead);

  /// Forget all state and re-derive every stream from the original seed.
  void reset();

  unsigned channels() const { return static_cast<unsigned>(channels_.size()); }
  const NvmDeviceConfig& config() const { return cfg_; }
  std::uint64_t seed() const { return seed_; }
  std::uint64_t submitted() const { return next_id_; }
  std::uint64_t completed() const { return delivered_; }
  /// Completion events queued but not yet delivered.
  std::size_t pending_completions() const { return pending_.size(); }
  IoChannelStats channel_stats(unsigned c) const;
  const AdmissionController& admission() const { return admission_; }

 private:
  struct Channel {
    double tail_free_us = 0.0;  ///< When the FIFO's last IO leaves media.
    Rng rng;        ///< Read service-time stream (seed-derived).
    Rng write_rng;  ///< Write service-time stream (disjoint, seed-derived).
    std::uint64_t ios = 0;
    double busy_us = 0.0;
    std::uint64_t writes = 0;
    double write_busy_us = 0.0;
  };

  struct LaterCompletion {
    bool operator()(const IoCompletion& a, const IoCompletion& b) const {
      if (a.complete_us != b.complete_us) return a.complete_us > b.complete_us;
      return a.id > b.id;
    }
  };

  NvmDeviceConfig cfg_;
  NvmLatencyModel model_;
  std::uint64_t seed_;
  std::vector<Channel> channels_;
  AdmissionController admission_;
  std::uint64_t next_id_ = 0;
  std::uint64_t delivered_ = 0;
  std::priority_queue<IoCompletion, std::vector<IoCompletion>, LaterCompletion>
      pending_;
};

}  // namespace bandana
