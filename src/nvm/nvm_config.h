// Configuration of the simulated NVM block device.
//
// The paper (§2.2, Fig. 2) characterizes a 375 GB first-generation Optane
// block device: ~10 us read latency at queue depth 1, saturating at
// ~2.3 GB/s with latency rising to the tens of microseconds as the queue
// deepens, and endurance of ~30 drive-writes-per-day (DWPD). We model the
// device as `channels` parallel service units with lognormally distributed
// per-4KB-read service times plus a fixed software/submission overhead.
// This reproduces the latency/bandwidth trade-off shape of Fig. 2: at low
// queue depth latency is service-bound and bandwidth scales with queue
// depth; past `channels` outstanding IOs bandwidth saturates and latency
// grows with queueing delay.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace bandana {

struct NvmDeviceConfig {
  /// Transfer unit. NVM block devices only reach full bandwidth at >= 4 KB
  /// reads (paper §1), which is the entire motivation for Bandana.
  std::size_t block_bytes = kDefaultBlockBytes;

  /// Internal parallelism: number of independent service units.
  unsigned channels = 4;

  /// Admission cap on outstanding block reads per channel (paper §2.2
  /// keeps device queue depth bounded). The store submits at most
  /// queue_depth * channels reads at once; oversized request batches are
  /// split into depth-bounded waves (nvm/admission.h). 0 = unbounded
  /// submission. Distinct from run_closed_loop's queue_depth parameter,
  /// which is the number of logical Fio clients.
  unsigned queue_depth = 32;

  /// Fixed submission/completion overhead per IO, microseconds.
  double base_latency_us = 2.8;

  /// Lognormal service time of one 4 KB read on a channel: exp(mu) is the
  /// median in microseconds, sigma the shape (controls the P99 tail).
  double service_median_us = 6.4;
  double service_sigma = 0.32;

  /// Lognormal service time of one 4 KB write on a channel. Publish and
  /// republish traffic occupies the same channel FIFOs as reads (paper
  /// §2.2: reads and retraining writes contend for the device), so live
  /// republishes inflate read tail latency — the Fig. 5 mixed-traffic
  /// interference. First-generation Optane block writes land roughly 2x
  /// the read service time with a fatter tail.
  double write_service_median_us = 12.8;
  double write_service_sigma = 0.40;

  /// Device capacity in blocks (375 GB / 4 KB by default). Only enforced by
  /// BlockStorage, not by the timing model.
  std::uint64_t capacity_blocks = 375ULL * 1000 * 1000 * 1000 / 4096;

  /// Endurance: sustainable whole-device rewrites per day (paper: ~30).
  double endurance_dwpd = 30.0;

  double mean_service_us() const;
  double mean_write_service_us() const;

  /// Saturated read bandwidth in bytes/second (all channels busy).
  double peak_bandwidth_bytes_per_s() const;
};

/// Rate limit of a trickle republish (Store::begin_trickle_republish): the
/// §2.2 retraining push is modeled as a background process that writes at
/// most `blocks_per_interval` blocks per `interval_us` of simulated time,
/// instead of dumping the whole retrained table onto the channel queues as
/// one open-loop wave. Tightening the rate trades republish duration for
/// read tail latency (bench_fig05's trickle sweep).
struct RepublishConfig {
  /// Blocks admitted per interval; 0 = unlimited (the one-shot endpoint:
  /// the entire plan diff goes out as a single write wave).
  std::uint32_t blocks_per_interval = 0;

  /// Length of one rate-limit interval in simulated microseconds. Must be
  /// positive when blocks_per_interval > 0.
  double interval_us = 1000.0;
};

}  // namespace bandana
