// Discrete-event timing simulator for an NVM block device.
//
// Two drivers, matching the paper's two device experiments:
//  * run_closed_loop — `queue_depth` logical clients, each re-issuing a read
//    the moment its previous one completes (Fio with iodepth=q). Regenerates
//    Fig. 2 (latency & bandwidth vs queue depth).
//  * run_open_loop — Poisson arrivals at a configured rate. Regenerates
//    Fig. 5 (latency vs application throughput; the hockey-stick as offered
//    load approaches device bandwidth).
//
// Both drivers run on the event-driven per-channel NvmIoEngine
// (nvm/io_engine.h): closed loop re-submits on each completion event, open
// loop paces arrivals from a seed-derived stream. The legacy single
// dispatch-queue primitive `submit_read` is kept below as the reference
// model — with channels = 1 the engine reproduces it bit-for-bit
// (tests/test_io_engine.cpp), and tests pin gate semantics against it.
//
// The device is `channels` parallel service units; per-IO service times
// are lognormal (nvm_config.h).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "nvm/nvm_config.h"

namespace bandana {

/// Draws per-IO service times. Separated from the device so tests can pin it.
class NvmLatencyModel {
 public:
  explicit NvmLatencyModel(const NvmDeviceConfig& cfg) : cfg_(cfg) {}

  /// One 4 KB read's channel-service time, microseconds.
  double sample_service_us(Rng& rng) const {
    return rng.next_lognormal(std::log(cfg_.service_median_us),
                              cfg_.service_sigma);
  }

  /// One 4 KB write's channel-service time, microseconds. Drawn from its
  /// own stream so interleaved writes never perturb the read draws.
  double sample_write_service_us(Rng& rng) const {
    return rng.next_lognormal(std::log(cfg_.write_service_median_us),
                              cfg_.write_service_sigma);
  }

  double base_latency_us() const { return cfg_.base_latency_us; }

 private:
  NvmDeviceConfig cfg_;
};

struct DeviceRunResult {
  LatencyRecorder latency_us;   ///< Per-IO end-to-end latency.
  std::uint64_t ios = 0;        ///< Completed reads.
  double elapsed_us = 0.0;      ///< Simulated wall time.

  double bandwidth_bytes_per_s(std::size_t block_bytes) const {
    if (elapsed_us <= 0.0) return 0.0;
    return static_cast<double>(ios) * static_cast<double>(block_bytes) /
           (elapsed_us * 1e-6);
  }
  double iops() const {
    return elapsed_us > 0.0 ? static_cast<double>(ios) / (elapsed_us * 1e-6)
                            : 0.0;
  }
};

/// Fixed number of outstanding IOs; each completion immediately triggers the
/// next submission from that client.
DeviceRunResult run_closed_loop(const NvmDeviceConfig& cfg,
                                unsigned queue_depth, std::uint64_t num_ios,
                                std::uint64_t seed);

/// Poisson arrivals of block reads at `arrivals_per_s`. If the offered load
/// exceeds device bandwidth the dispatch queue grows and latency diverges,
/// exactly the overload behaviour Fig. 5 shows.
DeviceRunResult run_open_loop(const NvmDeviceConfig& cfg,
                              double arrivals_per_s, std::uint64_t num_ios,
                              std::uint64_t seed);

/// Legacy single-dispatch-queue timing primitive: submits one read at
/// `now_us` given per-channel free times, returns the completion time.
/// `channel_free_us` must have cfg.channels entries. The serving path now
/// runs on NvmIoEngine (nvm/io_engine.h); this stays as the reference
/// model for the engine's channels=1 equivalence suite.
double submit_read(const NvmLatencyModel& model, double now_us,
                   std::vector<double>& channel_free_us, Rng& rng);

/// The pre-engine closed loop, kept verbatim as the canonical reference:
/// one global service stream Rng(seed), a min-heap of per-client
/// next-issue times, earliest-free-channel routing, no admission gate.
/// The engine's channels=1 bit-for-bit equivalence (test_io_engine.cpp)
/// and bench_fig02's engine-vs-legacy sweep both compare against this one
/// implementation.
DeviceRunResult run_closed_loop_legacy(const NvmDeviceConfig& cfg,
                                       unsigned queue_depth,
                                       std::uint64_t num_ios,
                                       std::uint64_t seed);

}  // namespace bandana
