#include "nvm/block_storage.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "core/manifest.h"

namespace bandana {

namespace detail {

std::uint64_t checked_file_bytes(std::uint64_t num_blocks,
                                 std::size_t block_bytes) {
  // num_blocks * block_bytes must fit an off_t or ftruncate would size a
  // silently-wrapped (wrong) file.
  if (block_bytes != 0 &&
      num_blocks > std::numeric_limits<std::uint64_t>::max() / block_bytes) {
    throw std::runtime_error(
        "FileBlockStorage: file size overflows for " +
        std::to_string(num_blocks) + " blocks x " +
        std::to_string(block_bytes) + " bytes");
  }
  const std::uint64_t bytes = num_blocks * block_bytes;
  if (bytes > static_cast<std::uint64_t>(std::numeric_limits<off_t>::max())) {
    throw std::runtime_error(
        "FileBlockStorage: file size " + std::to_string(bytes) +
        " exceeds off_t for " + std::to_string(num_blocks) + " blocks x " +
        std::to_string(block_bytes) + " bytes");
  }
  return bytes;
}

}  // namespace detail

void BlockStorage::read_blocks(std::span<const BlockReadOp> ops) const {
  for (const auto& op : ops) read_block(op.block, op.out);
}

void BlockStorage::write_blocks(std::span<const BlockWriteOp> ops) {
  for (const auto& op : ops) write_block(op.block, op.in);
}

void StagedBlockReads::fetch(const BlockStorage& storage,
                             std::uint64_t wave_blocks) {
  block_bytes_ = storage.block_bytes();
  const std::size_t total = blocks_.size() * block_bytes_;
  std::span<std::byte> dst;
  lease_ = total > 0 ? storage.lease_wave_buffer(total)
                     : BlockStorage::WaveBufferLease{};
  if (lease_) {
    dst = lease_.bytes().first(total);
  } else {
    bytes_.resize(total);
    dst = bytes_;
  }
  data_ = dst.data();
  std::vector<BlockReadOp> ops(blocks_.size());
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    ops[i] = {blocks_[i], dst.subspan(i * block_bytes_, block_bytes_)};
  }
  const std::size_t wave =
      wave_blocks == 0 ? ops.size() : static_cast<std::size_t>(wave_blocks);
  for (std::size_t i = 0; i < ops.size(); i += wave) {
    const std::size_t n = std::min(wave, ops.size() - i);
    storage.read_blocks(std::span<const BlockReadOp>(ops).subspan(i, n));
  }
}

MemoryBlockStorage::MemoryBlockStorage(std::uint64_t num_blocks,
                                       std::size_t block_bytes)
    : num_blocks_(num_blocks),
      block_bytes_(block_bytes),
      data_(num_blocks * block_bytes) {}

void MemoryBlockStorage::read_block(BlockId b, std::span<std::byte> out) const {
  assert(b < num_blocks_);
  assert(out.size() == block_bytes_);
  std::memcpy(out.data(), data_.data() + static_cast<std::size_t>(b) * block_bytes_,
              block_bytes_);
}

void MemoryBlockStorage::write_block(BlockId b,
                                     std::span<const std::byte> in) {
  assert(b < num_blocks_);
  assert(in.size() == block_bytes_);
  std::memcpy(data_.data() + static_cast<std::size_t>(b) * block_bytes_, in.data(),
              block_bytes_);
}

std::span<const std::byte> MemoryBlockStorage::block_view(BlockId b) const {
  assert(b < num_blocks_);
  return {data_.data() + static_cast<std::size_t>(b) * block_bytes_, block_bytes_};
}

FileBlockStorage::FileBlockStorage(const std::string& path,
                                   std::uint64_t num_blocks,
                                   std::size_t block_bytes,
                                   bool preserve_contents)
    : num_blocks_(num_blocks), block_bytes_(block_bytes) {
  const std::uint64_t file_bytes =
      detail::checked_file_bytes(num_blocks, block_bytes);
  const int flags =
      preserve_contents ? O_RDWR | O_CREAT : O_RDWR | O_CREAT | O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw std::runtime_error("FileBlockStorage: cannot open " + path);
  if (::ftruncate(fd_, static_cast<off_t>(file_bytes)) != 0) {
    ::close(fd_);
    throw std::runtime_error("FileBlockStorage: cannot size " + path);
  }
}

FileBlockStorage::~FileBlockStorage() {
  if (fd_ >= 0) ::close(fd_);
}

void FileBlockStorage::read_block(BlockId b, std::span<std::byte> out) const {
  assert(b < num_blocks_);
  assert(out.size() == block_bytes_);
  const auto off = static_cast<off_t>(static_cast<std::uint64_t>(b) * block_bytes_);
  std::size_t done = 0;
  while (done < block_bytes_) {
    const ssize_t r = ::pread(fd_, out.data() + done, block_bytes_ - done,
                              off + static_cast<off_t>(done));
    if (r < 0 && errno == EINTR) continue;  // interrupted, not failed
    if (r == 0) {
      throw std::runtime_error(
          "FileBlockStorage: pread of block " + std::to_string(b) +
          " hit EOF at byte " + std::to_string(done) +
          " (file shorter than its block geometry)");
    }
    if (r < 0) {
      throw std::runtime_error(
          "FileBlockStorage: pread of block " + std::to_string(b) +
          " failed at byte " + std::to_string(done) + ": " +
          std::strerror(errno));
    }
    done += static_cast<std::size_t>(r);
  }
}

void FileBlockStorage::write_block(BlockId b, std::span<const std::byte> in) {
  assert(b < num_blocks_);
  assert(in.size() == block_bytes_);
  const auto off = static_cast<off_t>(static_cast<std::uint64_t>(b) * block_bytes_);
  std::size_t done = 0;
  while (done < block_bytes_) {
    const ssize_t r = ::pwrite(fd_, in.data() + done, block_bytes_ - done,
                               off + static_cast<off_t>(done));
    if (r < 0 && errno == EINTR) continue;  // interrupted, not failed
    if (r == 0) {
      throw std::runtime_error(
          "FileBlockStorage: pwrite of block " + std::to_string(b) +
          " made no progress at byte " + std::to_string(done));
    }
    if (r < 0) {
      throw std::runtime_error(
          "FileBlockStorage: pwrite of block " + std::to_string(b) +
          " failed at byte " + std::to_string(done) + ": " +
          std::strerror(errno));
    }
    done += static_cast<std::size_t>(r);
  }
}

void FileBlockStorage::sync() {
  if (::fdatasync(fd_) != 0) {
    throw std::runtime_error(std::string("FileBlockStorage: fdatasync failed: ") +
                             std::strerror(errno));
  }
}

bool FileBlockStorage::same_backing(const BlockStorage& other) const {
  if (this == &other) return true;
  const auto* file = dynamic_cast<const FileBlockStorage*>(&other);
  if (file == nullptr) return false;
  struct stat a{}, b{};
  if (::fstat(fd_, &a) != 0 || ::fstat(file->fd_, &b) != 0) return false;
  return a.st_dev == b.st_dev && a.st_ino == b.st_ino;
}

BlockStorageFactory memory_storage_factory() {
  return [](std::uint64_t num_blocks, std::size_t block_bytes) {
    return std::make_unique<MemoryBlockStorage>(num_blocks, block_bytes);
  };
}

namespace detail {

// Fresh-vs-preserve for a file factory's FIRST invocation. Invocation
// order alone is wrong after a crash: truncating on "first call of this
// process" would destroy a store the manifest can still recover. So the
// decision is routed through the manifest — a valid one means the block
// file holds committed data and must be preserved (and its geometry
// verified); no valid manifest means there is nothing to recover and a
// clean slate is correct.
bool preserve_for_first_open(const std::string& path,
                             const std::string& manifest_path,
                             std::uint64_t num_blocks,
                             std::size_t block_bytes) {
  if (manifest_path.empty() || !manifest_valid(manifest_path)) return false;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    throw std::runtime_error(
        "FileBlockStorage: manifest " + manifest_path +
        " is valid but block file " + path + " is missing: " +
        std::strerror(errno));
  }
  const std::uint64_t need = checked_file_bytes(num_blocks, block_bytes);
  if (static_cast<std::uint64_t>(st.st_size) < need) {
    throw std::runtime_error(
        "FileBlockStorage: block file " + path + " holds " +
        std::to_string(st.st_size) + " bytes but the manifest geometry needs " +
        std::to_string(need) + " (" + std::to_string(num_blocks) +
        " blocks x " + std::to_string(block_bytes) + " bytes)");
  }
  return true;
}

}  // namespace detail

BlockStorageFactory file_storage_factory(std::string path,
                                         std::string manifest_path) {
  // The first invocation consults the manifest for fresh-vs-preserve (see
  // preserve_for_first_open); growth re-invocations resize the same file in
  // place so the store can stream published blocks without a full drain.
  return [path = std::move(path), manifest_path = std::move(manifest_path),
          created = false](std::uint64_t num_blocks,
                           std::size_t block_bytes) mutable {
    const bool preserve =
        created || detail::preserve_for_first_open(path, manifest_path,
                                                   num_blocks, block_bytes);
    auto storage = std::make_unique<FileBlockStorage>(
        path, num_blocks, block_bytes, /*preserve_contents=*/preserve);
    created = true;
    return storage;
  };
}

}  // namespace bandana
