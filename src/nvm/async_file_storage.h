// AsyncFileBlockStorage — real-file block storage whose batched reads
// overlap, the way the simulated NVM channels do.
//
// Same byte contract as FileBlockStorage (it *is* one: single-block
// read_block/write_block, in-place growth preserve, inode-based
// same_backing), plus an overlapped read_blocks():
//
//  * io_uring path — the whole wave is written into the submission queue
//    and submitted with one io_uring_enter(GETEVENTS) call; the kernel
//    services the readv's concurrently and we reap every completion. The
//    rings are built with raw syscalls (no liburing dependency; the
//    original 5.1 op set, so any io_uring kernel works). A small pool of
//    rings (Options::ring_count) lets concurrent request streams overlap
//    their waves instead of serializing on one submitter.
//  * thread-pool fallback — where the io_uring syscalls are unavailable
//    (older kernels, seccomp-filtered sandboxes, non-Linux), the same wave
//    fans out as preads on a small owned ThreadPool behind the identical
//    interface; each wave waits on its own completion latch, so concurrent
//    waves share workers without waiting on each other's reads.
//    `Options::force_thread_pool` pins this path for tests.
//
// The probe is at construction time: if io_uring_setup fails for any
// reason the storage silently uses the fallback (io_uring_active() tells
// which path is live). A partial io_uring completion resubmits the
// remaining byte range of its block (offset advanced past the landed
// bytes) so the wave stays overlapped; a per-op I/O error or unexpected
// EOF raises an exception naming the failing block once the wave's
// in-flight ops have drained. Both paths are byte-equivalent to
// FileBlockStorage.
//
// bandana::Store stages each request's miss blocks through read_blocks()
// in admission-sized waves (queue_depth x channels blocks per wave), so
// the AdmissionController throttles *real* I/O here, not just simulated
// timing.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "nvm/block_storage.h"

namespace bandana {

struct AsyncFileStorageOptions {
  /// Submission-queue entries per io_uring (waves larger than this are
  /// chunked internally). Rounded up to a power of two by the kernel.
  unsigned ring_entries = 256;
  /// Rings in the pool: up to this many concurrent request streams submit
  /// waves in parallel (overflow streams spread round-robin across the
  /// rings).
  unsigned ring_count = 4;
  /// Threads of the pread fallback pool (0 = hardware concurrency).
  unsigned fallback_threads = 4;
  /// Skip the io_uring probe and always use the thread-pool path.
  bool force_thread_pool = false;
};

class AsyncFileBlockStorage : public FileBlockStorage {
 public:
  using Options = AsyncFileStorageOptions;

  AsyncFileBlockStorage(const std::string& path, std::uint64_t num_blocks,
                        std::size_t block_bytes,
                        bool preserve_contents = false, Options options = {});
  ~AsyncFileBlockStorage() override;

  void read_blocks(std::span<const BlockReadOp> ops) const override;
  bool prefers_batched_reads() const override { return true; }

  /// True when the io_uring path is live (false = thread-pool preads).
  bool io_uring_active() const { return !rings_.empty(); }

 private:
  struct Ring;  // mmap'd SQ/CQ geometry + its submitter lock (io_uring)

  void init_rings(const Options& options);
  void read_wave_uring(Ring& ring, std::span<const BlockReadOp> ops) const;
  void read_wave_threads(std::span<const BlockReadOp> ops) const;

  Options options_;
  /// Ring pool: a wave grabs the first free ring (try-lock sweep) so
  /// concurrent request streams overlap their device I/O; when all rings
  /// are busy, overflow waves round-robin on this counter.
  std::vector<std::unique_ptr<Ring>> rings_;
  mutable std::atomic<std::size_t> overflow_ring_{0};
  /// Built at construction when the io_uring probe fails (or is skipped).
  /// Waves share the workers but each waits on its own completion latch,
  /// so one wave never blocks on another wave's reads.
  std::unique_ptr<ThreadPool> fallback_pool_;
};

/// Real-file storage at `path` whose batched reads overlap (io_uring or
/// thread-pool preads). First invocation truncates; growth re-invocations
/// resize in place, preserving published blocks — the same factory
/// contract as file_storage_factory.
BlockStorageFactory async_file_storage_factory(
    std::string path, AsyncFileBlockStorage::Options options = {});

}  // namespace bandana
