// AsyncFileBlockStorage — real-file block storage whose batched reads
// AND writes overlap, the way the simulated NVM channels do.
//
// Same byte contract as FileBlockStorage (it *is* one: single-block
// read_block/write_block, in-place growth preserve, inode-based
// same_backing), plus overlapped read_blocks() / write_blocks():
//
//  * io_uring path — the whole wave is written into the submission queue
//    and submitted with one io_uring_enter(GETEVENTS) call; the kernel
//    services the readv's/writev's concurrently and we reap every
//    completion. The rings are built with raw syscalls (no liburing
//    dependency; the original 5.1 op set, so any io_uring kernel works).
//    A small pool of rings (Options::ring_count) lets concurrent request
//    streams overlap their waves instead of serializing on one submitter.
//  * thread-pool fallback — where the io_uring syscalls are unavailable
//    (older kernels, seccomp-filtered sandboxes, non-Linux), the same wave
//    fans out as preads/pwrites on a small owned ThreadPool behind the
//    identical interface; each wave waits on its own completion latch, so
//    concurrent waves share workers without waiting on each other's I/O.
//    `Options::force_thread_pool` pins this path for tests.
//
// Zero-copy wave buffers: at construction the storage allocates a small
// pool of wave-sized buffers (Options::wave_buffer_blocks x block_bytes,
// Options::wave_buffer_count of them) and registers them on every ring
// with IORING_REGISTER_BUFFERS, plus the backing fd with
// IORING_REGISTER_FILES. Producers lease a pool buffer through
// BlockStorage::lease_wave_buffer() — the staged-read path stages into
// one, publish/republish/trickle waves compose block images into one —
// and any op whose data lies inside a registered buffer is submitted as
// READ_FIXED/WRITE_FIXED against the fixed fd: the kernel skips the
// per-op get_user_pages pin and fd refcount on every submission. Ops
// outside the pool (heap fallback, oversized waves) use plain
// READV/WRITEV on the same ring; both kinds mix freely in one wave.
// If registration is unavailable (old kernel, EPERM, no
// __NR_io_uring_register) the pool still exists — leases still recycle
// warm buffers — but ops fall back to the unregistered opcodes.
//
// The probe is at construction time: if io_uring_setup fails for any
// reason the storage silently uses the fallback (io_uring_active() tells
// which path is live). A partial io_uring completion resubmits the
// remaining byte range of its block (offset advanced past the landed
// bytes) so the wave stays overlapped — write_stats().short_resubmits
// counts the write-side resubmissions; a per-op I/O error or unexpected
// EOF raises an exception naming the failing block and byte offset once
// the wave's in-flight ops have drained. Both paths are byte-equivalent
// to FileBlockStorage.
//
// bandana::Store stages each request's miss blocks through read_blocks()
// and issues publish/republish/trickle waves through write_blocks() in
// admission-sized waves (queue_depth x channels blocks per wave), so the
// AdmissionController throttles *real* I/O here, not just simulated
// timing.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "nvm/block_storage.h"

namespace bandana {

struct AsyncFileStorageOptions {
  /// Submission-queue entries per io_uring (waves larger than this are
  /// chunked internally). Rounded up to a power of two by the kernel.
  unsigned ring_entries = 256;
  /// Rings in the pool: up to this many concurrent request streams submit
  /// waves in parallel (overflow streams spread round-robin across the
  /// rings).
  unsigned ring_count = 4;
  /// Threads of the pread fallback pool (0 = hardware concurrency).
  unsigned fallback_threads = 4;
  /// Skip the io_uring probe and always use the thread-pool path.
  bool force_thread_pool = false;
  /// Blocks per registered wave buffer. 0 = auto (128, the default device
  /// admission wave: queue_depth 32 x channels 4). StoreBuilder sizes it
  /// to the store's real admission wave so one lease holds one wave.
  unsigned wave_buffer_blocks = 0;
  /// Buffers in the registered pool; concurrent leases beyond this fall
  /// back to heap buffers (and plain READV/WRITEV).
  unsigned wave_buffer_count = 4;
  /// Test-only: cap every write SQE at this many bytes (0 = whole
  /// remainder) so completions come back short and the resubmission path
  /// genuinely runs.
  std::size_t max_write_bytes_per_sqe = 0;
};

class AsyncFileBlockStorage : public FileBlockStorage {
 public:
  using Options = AsyncFileStorageOptions;

  AsyncFileBlockStorage(const std::string& path, std::uint64_t num_blocks,
                        std::size_t block_bytes,
                        bool preserve_contents = false, Options options = {});
  ~AsyncFileBlockStorage() override;

  void read_blocks(std::span<const BlockReadOp> ops) const override;
  void write_blocks(std::span<const BlockWriteOp> ops) override;
  bool prefers_batched_reads() const override { return true; }
  bool prefers_batched_writes() const override { return true; }
  BlockStorageWriteStats write_stats() const override;
  WaveBufferLease lease_wave_buffer(std::size_t bytes) const override;

  // sync() is inherited from FileBlockStorage (fdatasync): both wave paths
  // fully drain their in-flight writes before write_blocks returns, so by
  // the time a caller reaches sync() every write already sits in the page
  // cache and fdatasync flushes exactly the right bytes.

  /// True when the io_uring path is live (false = thread-pool preads).
  bool io_uring_active() const { return !rings_.empty(); }
  /// True when the wave-buffer pool is registered on the rings
  /// (IORING_REGISTER_BUFFERS succeeded) and FIXED ops are in use.
  bool registered_buffers_active() const { return buffers_registered_; }

 protected:
  void release_wave_buffer(unsigned index) const override;

 private:
  struct Ring;  // mmap'd SQ/CQ geometry + its submitter lock (io_uring)

  void init_rings(const Options& options);
  void init_wave_pool(const Options& options);
  void register_rings();
  /// Pool buffer index containing [p, p+len), or -1 when the range is not
  /// inside a registered buffer (FIXED ops need the whole range in one).
  int pool_buf_index(const void* p, std::size_t len) const;
  void read_wave_uring(Ring& ring, std::span<const BlockReadOp> ops) const;
  void read_wave_threads(std::span<const BlockReadOp> ops) const;
  void write_wave_uring(Ring& ring, std::span<const BlockWriteOp> ops);
  void write_wave_threads(std::span<const BlockWriteOp> ops);

  Options options_;
  /// Registered wave-buffer pool. Declared before rings_ so the rings
  /// (whose registrations reference this memory) are torn down first.
  std::size_t wave_buffer_bytes_ = 0;
  std::vector<std::unique_ptr<std::byte[]>> wave_buffers_;
  std::unique_ptr<std::atomic<bool>[]> wave_buffer_in_use_;
  bool buffers_registered_ = false;
  bool files_registered_ = false;
  mutable std::atomic<std::uint64_t> write_short_resubmits_{0};
  /// Ring pool: a wave grabs the first free ring (try-lock sweep) so
  /// concurrent request streams overlap their device I/O; when all rings
  /// are busy, overflow waves round-robin on this counter.
  std::vector<std::unique_ptr<Ring>> rings_;
  mutable std::atomic<std::size_t> overflow_ring_{0};
  /// Built at construction when the io_uring probe fails (or is skipped).
  /// Waves share the workers but each waits on its own completion latch,
  /// so one wave never blocks on another wave's reads.
  std::unique_ptr<ThreadPool> fallback_pool_;
};

/// Real-file storage at `path` whose batched reads overlap (io_uring or
/// thread-pool preads). The same factory contract as file_storage_factory:
/// fresh-vs-preserve on the first invocation is routed through
/// `manifest_path` (valid manifest ⇒ preserve + verify geometry; none ⇒
/// truncate); growth re-invocations resize in place, preserving published
/// blocks.
BlockStorageFactory async_file_storage_factory(
    std::string path, AsyncFileBlockStorage::Options options = {},
    std::string manifest_path = "");

}  // namespace bandana
