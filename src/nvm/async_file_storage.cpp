#include "nvm/async_file_storage.h"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <stdexcept>

// io_uring via raw syscalls. IORING_OP_READV is part of the original 5.1
// op set, so any kernel (and any UAPI header) that has io_uring at all can
// build and run this path; hosts whose headers lack the syscall numbers
// compile the thread-pool fallback only.
#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define BANDANA_HAS_IO_URING 1
#endif
#if defined(BANDANA_HAS_IO_URING) && defined(__NR_io_uring_register)
#define BANDANA_HAS_IO_URING_REGISTER 1
#endif
#endif

namespace bandana {

#ifdef BANDANA_HAS_IO_URING

namespace {
int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}
int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}
#ifdef BANDANA_HAS_IO_URING_REGISTER
int sys_io_uring_register(int fd, unsigned opcode, const void* arg,
                          unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr_args));
}
#endif
}  // namespace

/// One mmap'd submission/completion ring plus its submitter lock. All
/// index pointers alias kernel-shared memory; head/tail crossings use
/// acquire/release.
struct AsyncFileBlockStorage::Ring {
  std::mutex mu;  ///< one submitter per ring; the pool gives concurrency
  int fd = -1;
  void* sq_ptr = nullptr;
  std::size_t sq_len = 0;
  void* cq_ptr = nullptr;  ///< == sq_ptr under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_len = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  unsigned entries = 0;

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_ptr != nullptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_len);
    if (sq_ptr != nullptr) ::munmap(sq_ptr, sq_len);
    if (fd >= 0) ::close(fd);
  }
};

void AsyncFileBlockStorage::init_rings(const Options& options) {
  for (unsigned r = 0; r < std::max(1u, options.ring_count); ++r) {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(std::max(1u, options.ring_entries),
                                      &params);
    if (fd < 0) break;  // ENOSYS/EPERM/...: whatever we have so far

    auto ring = std::make_unique<Ring>();
    ring->fd = fd;
    ring->entries = params.sq_entries;
    ring->sq_len = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    ring->cq_len =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    // Pre-5.4 UAPI headers have neither io_uring_params::features nor the
    // single-mmap feature bit; two mmaps always work.
    bool single_mmap = false;
#ifdef IORING_FEAT_SINGLE_MMAP
    single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
#endif
    if (single_mmap) {
      ring->sq_len = ring->cq_len = std::max(ring->sq_len, ring->cq_len);
    }
    ring->sq_ptr = ::mmap(nullptr, ring->sq_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (ring->sq_ptr == MAP_FAILED) {
      ring->sq_ptr = nullptr;
      break;
    }
    if (single_mmap) {
      ring->cq_ptr = ring->sq_ptr;
    } else {
      ring->cq_ptr = ::mmap(nullptr, ring->cq_len, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (ring->cq_ptr == MAP_FAILED) {
        ring->cq_ptr = nullptr;
        break;
      }
    }
    ring->sqes_len = params.sq_entries * sizeof(io_uring_sqe);
    ring->sqes = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, ring->sqes_len, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
    if (ring->sqes == MAP_FAILED) {
      ring->sqes = nullptr;
      break;
    }

    auto* sq = static_cast<std::uint8_t*>(ring->sq_ptr);
    auto* cq = static_cast<std::uint8_t*>(ring->cq_ptr);
    ring->sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    ring->sq_mask = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    ring->cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    ring->cq_mask = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    rings_.push_back(std::move(ring));
  }
}

void AsyncFileBlockStorage::register_rings() {
#ifdef BANDANA_HAS_IO_URING_REGISTER
  if (rings_.empty() || wave_buffers_.empty()) return;
  std::vector<iovec> iovs(wave_buffers_.size());
  for (std::size_t i = 0; i < wave_buffers_.size(); ++i) {
    iovs[i] = {wave_buffers_[i].get(), wave_buffer_bytes_};
  }
  const std::int32_t raw_fd = fd();
  bool bufs_ok = true;
  bool files_ok = true;
  for (auto& ring : rings_) {
    if (bufs_ok &&
        sys_io_uring_register(ring->fd, IORING_REGISTER_BUFFERS, iovs.data(),
                              static_cast<unsigned>(iovs.size())) < 0) {
      bufs_ok = false;  // RLIMIT_MEMLOCK, EPERM, ...: plain READV/WRITEV
    }
    if (files_ok && sys_io_uring_register(ring->fd, IORING_REGISTER_FILES,
                                          &raw_fd, 1) < 0) {
      files_ok = false;
    }
  }
  // All-or-nothing: a FIXED op assumes the same buf_index / file slot on
  // whichever ring the wave lands on, so one refused ring disables the
  // feature everywhere (the kernel drops per-ring registrations at ring
  // close; leftover registrations on accepting rings are harmless).
  buffers_registered_ = bufs_ok;
  files_registered_ = files_ok;
#endif
}

void AsyncFileBlockStorage::read_wave_uring(
    Ring& ring, std::span<const BlockReadOp> ops) const {
  const std::size_t bb = block_bytes();
  // Waves larger than the ring are chunked; each chunk is one batched
  // submission (one io_uring_enter with GETEVENTS) and a reap loop. A
  // partial completion resubmits the REMAINING byte range of its block
  // (offset advanced by the bytes already landed) instead of re-reading
  // the whole block through a synchronous pread — the wave stays fully
  // overlapped even when the kernel splits an op.
  for (std::size_t base = 0; base < ops.size(); base += ring.entries) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(ring.entries, ops.size() - base));
    // Bytes already landed per in-chunk op; a resubmitted SQE reads
    // [done, bb) of its block into the tail of the caller's buffer.
    std::vector<std::size_t> done_bytes(n, 0);
    // One iovec per OP (not per SQ slot): an iovec must stay valid until
    // its op completes, and the SQ tail cycles — a resubmit landing on a
    // still-in-flight op's slot would corrupt that op's read. Keying by
    // op index is safe: an op is resubmitted only after its previous
    // submission completed.
    std::vector<iovec> iovecs(n);
    const auto push_sqe = [&](unsigned op_idx) {
      const unsigned tail = std::atomic_ref<unsigned>(*ring.sq_tail)
                                .load(std::memory_order_relaxed);
      const unsigned idx = tail & ring.sq_mask;
      const BlockReadOp& op = ops[base + op_idx];
      const std::size_t done = done_bytes[op_idx];
      std::byte* dst = op.out.data() + done;
      const std::size_t len = bb - done;
      io_uring_sqe& sqe = ring.sqes[idx];
      std::memset(&sqe, 0, sizeof(sqe));
      // Destinations inside the registered pool (staged reads leased a
      // wave buffer) go zero-copy: READ_FIXED skips the per-op page pin.
      const int buf = pool_buf_index(dst, len);
      if (buf >= 0) {
        sqe.opcode = IORING_OP_READ_FIXED;
        sqe.addr = reinterpret_cast<std::uint64_t>(dst);
        sqe.len = static_cast<unsigned>(len);
        sqe.buf_index = static_cast<std::uint16_t>(buf);
      } else {
        iovecs[op_idx] = {dst, len};
        sqe.opcode = IORING_OP_READV;
        sqe.addr = reinterpret_cast<std::uint64_t>(&iovecs[op_idx]);
        sqe.len = 1;
      }
      if (files_registered_) {
        sqe.fd = 0;  // slot 0 of the registered file table
        sqe.flags |= IOSQE_FIXED_FILE;
      } else {
        sqe.fd = fd();
      }
      sqe.off = static_cast<std::uint64_t>(op.block) * bb + done;
      sqe.user_data = op_idx;
      ring.sq_array[idx] = idx;
      std::atomic_ref<unsigned>(*ring.sq_tail)
          .store(tail + 1, std::memory_order_release);
    };
    for (unsigned i = 0; i < n; ++i) push_sqe(i);

    unsigned to_submit = n;
    unsigned finished = 0;
    unsigned enter_failures = 0;
    // A fatal error — per-op OR from io_uring_enter itself — is deferred
    // until every in-flight op of the chunk has completed: the kernel may
    // still be writing into the caller's buffers, so bailing out
    // mid-flight would dangle them.
    std::string error;
    std::vector<unsigned> resubmit;
    while (finished < n) {
      // Wait for every op already inside the kernel rather than one CQE
      // at a time: each op keeps at most one SQE in flight, so the
      // in-kernel count before this call is n - finished - to_submit.
      // Asking for exactly that many completions drains the chunk in
      // O(1) enters instead of one wakeup per completion (the first
      // call, where everything is still unsubmitted, waits for at least
      // one so progress is guaranteed).
      const unsigned in_kernel = n - finished - to_submit;
      const int ret = sys_io_uring_enter(ring.fd, to_submit,
                                         std::max(1u, in_kernel),
                                         IORING_ENTER_GETEVENTS);
      if (ret < 0) {
        if (errno == EINTR) continue;
        if (error.empty()) {
          error =
              std::string("AsyncFileBlockStorage: io_uring_enter failed: ") +
              std::strerror(errno);
        }
        // Unsubmitted SQEs will never complete: account them as finished
        // and keep reaping the in-flight ops. If the syscall keeps
        // failing we cannot drain — give up rather than spin forever
        // (the in-flight ops may still land in soon-to-be-freed buffers,
        // but there is nothing further we can do from here).
        finished += to_submit;
        to_submit = 0;
        if (++enter_failures > 8) {
          throw std::runtime_error(error + " (in-flight drain abandoned)");
        }
      } else {
        to_submit -= static_cast<unsigned>(ret);
      }
      unsigned head = std::atomic_ref<unsigned>(*ring.cq_head)
                          .load(std::memory_order_relaxed);
      const unsigned cq_tail = std::atomic_ref<unsigned>(*ring.cq_tail)
                                   .load(std::memory_order_acquire);
      resubmit.clear();
      while (head != cq_tail) {
        const io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
        const auto op_idx = static_cast<unsigned>(cqe.user_data);
        const BlockReadOp& op = ops[base + op_idx];
        if (cqe.res < 0) {
          // Transient kernel-side interruptions retry the remainder; a
          // real I/O error names the failing block and poisons the wave.
          if (cqe.res == -EINTR || cqe.res == -EAGAIN) {
            resubmit.push_back(op_idx);
          } else {
            if (error.empty()) {
              error = "AsyncFileBlockStorage: read of block " +
                      std::to_string(op.block) +
                      " failed: " + std::strerror(-cqe.res);
            }
            ++finished;
          }
        } else if (cqe.res == 0) {
          // EOF inside a block the geometry says exists: the backing file
          // is shorter than num_blocks x block_bytes.
          if (error.empty()) {
            error = "AsyncFileBlockStorage: unexpected EOF reading block " +
                    std::to_string(op.block) + " at byte " +
                    std::to_string(done_bytes[op_idx]);
          }
          ++finished;
        } else {
          done_bytes[op_idx] += static_cast<std::size_t>(cqe.res);
          if (done_bytes[op_idx] >= bb) {
            ++finished;
          } else {
            resubmit.push_back(op_idx);  // short read: fetch the rest
          }
        }
        ++head;
      }
      std::atomic_ref<unsigned>(*ring.cq_head)
          .store(head, std::memory_order_release);
      if (error.empty()) {
        for (const unsigned op_idx : resubmit) {
          push_sqe(op_idx);
          ++to_submit;
        }
      } else {
        finished += static_cast<unsigned>(resubmit.size());
      }
    }
    if (!error.empty()) throw std::runtime_error(error);
  }
}

void AsyncFileBlockStorage::write_wave_uring(Ring& ring,
                                             std::span<const BlockWriteOp> ops) {
  const std::size_t bb = block_bytes();
  // Test-only short-write injection: capping every SQE below block_bytes
  // forces genuinely short completions through the resubmission path.
  const std::size_t cap = options_.max_write_bytes_per_sqe;
  // The mirror of read_wave_uring: waves larger than the ring are chunked,
  // each chunk is one batched submission and a reap loop, and a partial
  // completion resubmits the REMAINING byte range (offset and source
  // pointer advanced past the landed bytes) so the wave stays fully
  // overlapped. Source buffers inside the registered pool (producers lease
  // a wave buffer to compose block images in) go out as WRITE_FIXED
  // against the fixed fd — zero-copy, no per-op page pin.
  //
  // Adjacent ops whose blocks are consecutive ON DISK and whose source
  // bytes are consecutive IN MEMORY coalesce into one run = one SQE: a
  // trickle or publish wave composed in order into a leased wave buffer
  // over a contiguously allocated replacement region collapses from one
  // SQE per block to a handful of large writes, so the kernel-side write
  // path runs once per run instead of once per block.
  struct Run {
    std::uint64_t block;     ///< first block of the run
    const std::byte* src;    ///< start of its contiguous source bytes
    std::size_t bytes;       ///< run length in bytes (multiple of bb)
  };
  std::vector<Run> runs;
  runs.reserve(ops.size());
  for (const BlockWriteOp& op : ops) {
    if (!runs.empty()) {
      Run& r = runs.back();
      if (op.block == r.block + r.bytes / bb && op.in.data() == r.src + r.bytes) {
        r.bytes += bb;
        continue;
      }
    }
    runs.push_back(Run{op.block, op.in.data(), bb});
  }
  for (std::size_t base = 0; base < runs.size(); base += ring.entries) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(ring.entries, runs.size() - base));
    std::vector<std::size_t> done_bytes(n, 0);
    // One iovec per RUN (not per SQ slot) for the same lifetime reason as
    // the read path: the SQ tail cycles, a run is only resubmitted after
    // its previous submission completed.
    std::vector<iovec> iovecs(n);
    const auto push_sqe = [&](unsigned op_idx) {
      const unsigned tail = std::atomic_ref<unsigned>(*ring.sq_tail)
                                .load(std::memory_order_relaxed);
      const unsigned idx = tail & ring.sq_mask;
      const Run& op = runs[base + op_idx];
      const std::size_t done = done_bytes[op_idx];
      const std::size_t len =
          cap != 0 ? std::min(cap, op.bytes - done) : op.bytes - done;
      const std::byte* src = op.src + done;
      io_uring_sqe& sqe = ring.sqes[idx];
      std::memset(&sqe, 0, sizeof(sqe));
      const int buf = pool_buf_index(src, len);
      if (buf >= 0) {
        sqe.opcode = IORING_OP_WRITE_FIXED;
        sqe.addr = reinterpret_cast<std::uint64_t>(src);
        sqe.len = static_cast<unsigned>(len);
        sqe.buf_index = static_cast<std::uint16_t>(buf);
      } else {
        iovecs[op_idx] = {const_cast<std::byte*>(src), len};
        sqe.opcode = IORING_OP_WRITEV;
        sqe.addr = reinterpret_cast<std::uint64_t>(&iovecs[op_idx]);
        sqe.len = 1;
      }
      if (files_registered_) {
        sqe.fd = 0;  // slot 0 of the registered file table
        sqe.flags |= IOSQE_FIXED_FILE;
      } else {
        sqe.fd = fd();
      }
      sqe.off = static_cast<std::uint64_t>(op.block) * bb + done;
      sqe.user_data = op_idx;
      ring.sq_array[idx] = idx;
      std::atomic_ref<unsigned>(*ring.sq_tail)
          .store(tail + 1, std::memory_order_release);
    };
    for (unsigned i = 0; i < n; ++i) push_sqe(i);

    unsigned to_submit = n;
    unsigned finished = 0;
    unsigned enter_failures = 0;
    // Errors are deferred until every in-flight op of the chunk drains:
    // the kernel may still be reading from the caller's buffers.
    std::string error;
    std::vector<unsigned> resubmit;
    while (finished < n) {
      // Same single-wakeup drain as the read path: wait for every op the
      // kernel already holds (n - finished - to_submit; each op has at
      // most one SQE in flight) instead of returning per completion.
      const unsigned in_kernel = n - finished - to_submit;
      const int ret = sys_io_uring_enter(ring.fd, to_submit,
                                         std::max(1u, in_kernel),
                                         IORING_ENTER_GETEVENTS);
      if (ret < 0) {
        if (errno == EINTR) continue;
        if (error.empty()) {
          error =
              std::string("AsyncFileBlockStorage: io_uring_enter failed: ") +
              std::strerror(errno);
        }
        finished += to_submit;
        to_submit = 0;
        if (++enter_failures > 8) {
          throw std::runtime_error(error + " (in-flight drain abandoned)");
        }
      } else {
        to_submit -= static_cast<unsigned>(ret);
      }
      unsigned head = std::atomic_ref<unsigned>(*ring.cq_head)
                          .load(std::memory_order_relaxed);
      const unsigned cq_tail = std::atomic_ref<unsigned>(*ring.cq_tail)
                                   .load(std::memory_order_acquire);
      resubmit.clear();
      while (head != cq_tail) {
        const io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
        const auto op_idx = static_cast<unsigned>(cqe.user_data);
        const Run& op = runs[base + op_idx];
        // Errors name the failing BLOCK and its byte offset even when the
        // run coalesced several: the stall point is done bytes into the
        // run, i.e. done/bb blocks past its first block.
        const std::size_t done = done_bytes[op_idx];
        if (cqe.res < 0) {
          if (cqe.res == -EINTR || cqe.res == -EAGAIN) {
            resubmit.push_back(op_idx);
          } else {
            if (error.empty()) {
              error = "AsyncFileBlockStorage: write of block " +
                      std::to_string(op.block + done / bb) +
                      " failed at byte " + std::to_string(done % bb) + ": " +
                      std::strerror(-cqe.res);
            }
            ++finished;
          }
        } else if (cqe.res == 0) {
          if (error.empty()) {
            error = "AsyncFileBlockStorage: no progress writing block " +
                    std::to_string(op.block + done / bb) + " at byte " +
                    std::to_string(done % bb);
          }
          ++finished;
        } else {
          done_bytes[op_idx] += static_cast<std::size_t>(cqe.res);
          if (done_bytes[op_idx] >= op.bytes) {
            ++finished;
          } else {
            // Short write: push the remaining [done, run bytes) back out.
            write_short_resubmits_.fetch_add(1, std::memory_order_relaxed);
            resubmit.push_back(op_idx);
          }
        }
        ++head;
      }
      std::atomic_ref<unsigned>(*ring.cq_head)
          .store(head, std::memory_order_release);
      if (error.empty()) {
        for (const unsigned op_idx : resubmit) {
          push_sqe(op_idx);
          ++to_submit;
        }
      } else {
        finished += static_cast<unsigned>(resubmit.size());
      }
    }
    if (!error.empty()) throw std::runtime_error(error);
  }
}

#else  // !BANDANA_HAS_IO_URING

struct AsyncFileBlockStorage::Ring {};
void AsyncFileBlockStorage::init_rings(const Options&) {}
void AsyncFileBlockStorage::register_rings() {}
void AsyncFileBlockStorage::read_wave_uring(
    Ring&, std::span<const BlockReadOp>) const {}
void AsyncFileBlockStorage::write_wave_uring(Ring&,
                                             std::span<const BlockWriteOp>) {}

#endif  // BANDANA_HAS_IO_URING

AsyncFileBlockStorage::AsyncFileBlockStorage(const std::string& path,
                                             std::uint64_t num_blocks,
                                             std::size_t block_bytes,
                                             bool preserve_contents,
                                             Options options)
    : FileBlockStorage(path, num_blocks, block_bytes, preserve_contents),
      options_(options) {
  init_wave_pool(options_);
  if (!options_.force_thread_pool) init_rings(options_);
  if (rings_.empty()) {
    fallback_pool_ = std::make_unique<ThreadPool>(options_.fallback_threads);
  } else {
    register_rings();
  }
}

AsyncFileBlockStorage::~AsyncFileBlockStorage() = default;

void AsyncFileBlockStorage::init_wave_pool(const Options& options) {
  // Pool buffers exist on every path (the thread-pool fallback still
  // recycles warm wave buffers through leases); registration on top is
  // what turns them into zero-copy FIXED ops.
  const unsigned blocks =
      options.wave_buffer_blocks != 0 ? options.wave_buffer_blocks : 128u;
  const unsigned count = std::max(1u, options.wave_buffer_count);
  wave_buffer_bytes_ = static_cast<std::size_t>(blocks) * block_bytes();
  if (wave_buffer_bytes_ == 0) return;
  wave_buffers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    wave_buffers_.push_back(std::make_unique<std::byte[]>(wave_buffer_bytes_));
  }
  wave_buffer_in_use_ = std::make_unique<std::atomic<bool>[]>(count);
  for (unsigned i = 0; i < count; ++i) {
    wave_buffer_in_use_[i].store(false, std::memory_order_relaxed);
  }
}

int AsyncFileBlockStorage::pool_buf_index(const void* p,
                                          std::size_t len) const {
  if (!buffers_registered_) return -1;
  const auto* c = static_cast<const std::byte*>(p);
  for (std::size_t i = 0; i < wave_buffers_.size(); ++i) {
    const std::byte* begin = wave_buffers_[i].get();
    if (c >= begin && c + len <= begin + wave_buffer_bytes_) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

BlockStorage::WaveBufferLease AsyncFileBlockStorage::lease_wave_buffer(
    std::size_t bytes) const {
  if (bytes == 0 || bytes > wave_buffer_bytes_) return {};
  for (std::size_t i = 0; i < wave_buffers_.size(); ++i) {
    bool expected = false;
    if (wave_buffer_in_use_[i].compare_exchange_strong(
            expected, true, std::memory_order_acquire,
            std::memory_order_relaxed)) {
      return make_wave_lease(static_cast<unsigned>(i),
                             {wave_buffers_[i].get(), wave_buffer_bytes_});
    }
  }
  return {};  // every buffer leased out: caller uses its own heap buffer
}

void AsyncFileBlockStorage::release_wave_buffer(unsigned index) const {
  wave_buffer_in_use_[index].store(false, std::memory_order_release);
}

BlockStorageWriteStats AsyncFileBlockStorage::write_stats() const {
  return {write_short_resubmits_.load(std::memory_order_relaxed),
          buffers_registered_};
}

void AsyncFileBlockStorage::read_wave_threads(
    std::span<const BlockReadOp> ops) const {
  // Per-wave completion latch: concurrent waves share the pool's workers
  // but each returns as soon as ITS chunks finish (ThreadPool::wait_idle
  // would couple every wave to global pool idleness).
  const std::size_t chunks = std::min(ops.size(), fallback_pool_->size());
  const std::size_t per = (ops.size() + chunks - 1) / chunks;
  std::mutex mu;
  std::condition_variable done_cv;
  // Fully counted before any task runs: workers only ever decrement.
  std::size_t remaining = (ops.size() + per - 1) / per;
  for (std::size_t begin = 0; begin < ops.size(); begin += per) {
    const std::size_t end = std::min(ops.size(), begin + per);
    fallback_pool_->submit([this, ops, begin, end, &mu, &done_cv,
                            &remaining] {
      for (std::size_t i = begin; i < end; ++i) {
        read_block(ops[i].block, ops[i].out);
      }
      std::lock_guard lock(mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void AsyncFileBlockStorage::read_blocks(
    std::span<const BlockReadOp> ops) const {
  if (ops.empty()) return;
  if (ops.size() == 1) {
    read_block(ops[0].block, ops[0].out);
    return;
  }
  if (rings_.empty()) {
    // Each wave waits on its own completion latch inside
    // read_wave_threads, so concurrent waves share the pool's workers
    // without waiting on each other's reads.
    read_wave_threads(ops);
    return;
  }
#ifdef BANDANA_HAS_IO_URING
  // Grab the first free ring so concurrent request streams overlap their
  // waves; when every ring is busy, overflow streams spread round-robin
  // across the pool instead of piling onto one ring.
  for (auto& ring : rings_) {
    std::unique_lock lock(ring->mu, std::try_to_lock);
    if (lock.owns_lock()) {
      read_wave_uring(*ring, ops);
      return;
    }
  }
  Ring& ring = *rings_[overflow_ring_.fetch_add(1, std::memory_order_relaxed) %
                       rings_.size()];
  std::lock_guard lock(ring.mu);
  read_wave_uring(ring, ops);
#endif
}

void AsyncFileBlockStorage::write_wave_threads(
    std::span<const BlockWriteOp> ops) {
  // Same per-wave completion latch as read_wave_threads: concurrent waves
  // share the pool's workers but each returns as soon as ITS chunks
  // finish. write_block's pwrite loop absorbs partial writes natively.
  const std::size_t chunks = std::min(ops.size(), fallback_pool_->size());
  const std::size_t per = (ops.size() + chunks - 1) / chunks;
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = (ops.size() + per - 1) / per;
  for (std::size_t begin = 0; begin < ops.size(); begin += per) {
    const std::size_t end = std::min(ops.size(), begin + per);
    fallback_pool_->submit([this, ops, begin, end, &mu, &done_cv,
                            &remaining] {
      for (std::size_t i = begin; i < end; ++i) {
        write_block(ops[i].block, ops[i].in);
      }
      std::lock_guard lock(mu);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock lock(mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void AsyncFileBlockStorage::write_blocks(std::span<const BlockWriteOp> ops) {
  if (ops.empty()) return;
  if (ops.size() == 1) {
    write_block(ops[0].block, ops[0].in);
    return;
  }
  if (rings_.empty()) {
    write_wave_threads(ops);
    return;
  }
#ifdef BANDANA_HAS_IO_URING
  // Same ring-pool policy as the read path: first free ring via try-lock
  // sweep, round-robin overflow when every ring is busy. Reads and writes
  // share the pool, so a republish wave and a serving wave overlap on
  // different rings the way they overlap on different simulated channels.
  for (auto& ring : rings_) {
    std::unique_lock lock(ring->mu, std::try_to_lock);
    if (lock.owns_lock()) {
      write_wave_uring(*ring, ops);
      return;
    }
  }
  Ring& ring = *rings_[overflow_ring_.fetch_add(1, std::memory_order_relaxed) %
                       rings_.size()];
  std::lock_guard lock(ring.mu);
  write_wave_uring(ring, ops);
#endif
}

BlockStorageFactory async_file_storage_factory(
    std::string path, AsyncFileBlockStorage::Options options,
    std::string manifest_path) {
  // Same contract as file_storage_factory: the first invocation routes
  // fresh-vs-preserve through the manifest (and overflow-checks the
  // geometry); growth re-invocations resize in place and preserve
  // published blocks.
  return [path = std::move(path), options,
          manifest_path = std::move(manifest_path), created = false](
             std::uint64_t num_blocks, std::size_t block_bytes) mutable {
    const bool preserve =
        created || detail::preserve_for_first_open(path, manifest_path,
                                                   num_blocks, block_bytes);
    auto storage = std::make_unique<AsyncFileBlockStorage>(
        path, num_blocks, block_bytes, /*preserve_contents=*/preserve,
        options);
    created = true;
    return storage;
  };
}

}  // namespace bandana
