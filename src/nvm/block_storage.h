// Byte storage for NVM blocks.
//
// The timing model (nvm_device.h, nvm/io_engine.h) answers "when does this
// read complete"; BlockStorage answers "what bytes live in block b".
// bandana::Store composes the two. Three backends:
//  * MemoryBlockStorage — heap-backed, used by simulations and tests.
//  * FileBlockStorage  — a real file accessed with pread/pwrite, so the
//    whole system can run against an actual SSD (the repro substitution for
//    NVM hardware).
//  * AsyncFileBlockStorage (nvm/async_file_storage.h) — the same file
//    contract, but read_blocks() submits a whole admission wave as one
//    batched io_uring submission (thread-pool preads where io_uring is
//    unavailable), so real-file serving overlaps reads the way the
//    simulated channels do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace bandana {

/// One entry of a batched read: fill `out` (block_bytes() long) from
/// block `block`.
struct BlockReadOp {
  BlockId block = 0;
  std::span<std::byte> out;
};

class BlockStorage {
 public:
  virtual ~BlockStorage() = default;

  virtual std::size_t block_bytes() const = 0;
  virtual std::uint64_t num_blocks() const = 0;

  /// Copy block `b` into `out` (out.size() == block_bytes()).
  virtual void read_block(BlockId b, std::span<std::byte> out) const = 0;

  /// Overwrite block `b` from `in` (in.size() == block_bytes()).
  virtual void write_block(BlockId b, std::span<const std::byte> in) = 0;

  /// Read many blocks; returns when all of `ops` are filled. Backends may
  /// overlap the reads (the async file backend batches them into one
  /// io_uring submission). Duplicate block ids are allowed. The default is
  /// a sequential read_block loop.
  virtual void read_blocks(std::span<const BlockReadOp> ops) const;

  /// True when read_blocks() genuinely overlaps I/O and the store should
  /// stage a request's miss blocks through it in admission-sized waves
  /// rather than read one block per miss inline.
  virtual bool prefers_batched_reads() const { return false; }

  /// True if `other` reads and writes the same bytes as this storage (e.g.
  /// two FileBlockStorage handles on one inode). Lets the store skip the
  /// block migration when a growth factory resized the backing in place.
  virtual bool same_backing(const BlockStorage& other) const {
    return this == &other;
  }
};

/// A request-scoped set of prefetched block bytes: the store's read
/// pipeline collects a request's miss blocks, fetches them through
/// read_blocks() in admission-gated waves, and lets each table lookup
/// consume the staged bytes instead of issuing an inline read.
class StagedBlockReads {
 public:
  StagedBlockReads() = default;

  /// Reserve a slot for `b` (deduplicating). Call before fetch().
  void add(BlockId b) {
    if (index_.emplace(b, blocks_.size()).second) blocks_.push_back(b);
  }

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  std::span<const BlockId> blocks() const { return blocks_; }
  /// True if `b` has a reserved slot (fetched or not).
  bool contains(BlockId b) const { return index_.count(b) != 0; }

  /// Fetch every added block from `storage`, at most `wave_blocks` per
  /// read_blocks() call (0 = one wave). This is where admission control
  /// throttles *real* I/O: each wave is one batched submission, and wave
  /// k+1 is only submitted once wave k has completed.
  void fetch(const BlockStorage& storage, std::uint64_t wave_blocks = 0);

  /// Staged bytes of block `b`, or an empty span when b was not staged.
  std::span<const std::byte> find(BlockId b) const {
    const auto it = index_.find(b);
    if (it == index_.end() || bytes_.empty()) return {};
    return {bytes_.data() + it->second * block_bytes_, block_bytes_};
  }

 private:
  std::vector<BlockId> blocks_;
  std::unordered_map<BlockId, std::size_t> index_;
  std::vector<std::byte> bytes_;
  std::size_t block_bytes_ = 0;
};

class MemoryBlockStorage final : public BlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t num_blocks, std::size_t block_bytes);

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;

  /// Zero-copy view of a block, for internal fast paths.
  std::span<const std::byte> block_view(BlockId b) const;

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  std::vector<std::byte> data_;
};

class FileBlockStorage : public BlockStorage {
 public:
  /// Opens `path` sized to num_blocks * block_bytes. With
  /// `preserve_contents` the existing bytes survive (growth resizes in
  /// place); otherwise the file is truncated to a clean slate first.
  FileBlockStorage(const std::string& path, std::uint64_t num_blocks,
                   std::size_t block_bytes, bool preserve_contents = false);
  ~FileBlockStorage() override;

  FileBlockStorage(const FileBlockStorage&) = delete;
  FileBlockStorage& operator=(const FileBlockStorage&) = delete;

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;
  /// Two file storages share a backing iff they are open on the same inode.
  bool same_backing(const BlockStorage& other) const override;

 protected:
  int fd() const { return fd_; }

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  int fd_ = -1;
};

/// How a Store obtains its backing storage. Called with the exact geometry
/// once it is known (StoreBuilder knows it up front; the incremental
/// add_table path may call it again with a larger block count). Repeat
/// invocations must preserve already-written contents — the store streams
/// published blocks from the old storage to the new one in bounded chunks,
/// so old and new must be able to coexist (a same-path file factory
/// achieves this by resizing in place instead of truncating).
using BlockStorageFactory = std::function<std::unique_ptr<BlockStorage>(
    std::uint64_t num_blocks, std::size_t block_bytes)>;

/// Heap-backed simulation storage (the default).
BlockStorageFactory memory_storage_factory();

/// Real-file storage at `path` (pread/pwrite), the repro substitution for
/// NVM hardware. The first invocation creates or truncates the file;
/// growth re-invocations resize it in place, preserving published blocks.
BlockStorageFactory file_storage_factory(std::string path);

}  // namespace bandana
