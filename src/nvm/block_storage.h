// Byte storage for NVM blocks.
//
// The timing model (nvm_device.h) answers "when does this read complete";
// BlockStorage answers "what bytes live in block b". bandana::Store composes
// the two. Two backends:
//  * MemoryBlockStorage — heap-backed, used by simulations and tests.
//  * FileBlockStorage  — a real file accessed with pread/pwrite, so the
//    whole system can run against an actual SSD (the repro substitution for
//    NVM hardware).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace bandana {

class BlockStorage {
 public:
  virtual ~BlockStorage() = default;

  virtual std::size_t block_bytes() const = 0;
  virtual std::uint64_t num_blocks() const = 0;

  /// Copy block `b` into `out` (out.size() == block_bytes()).
  virtual void read_block(BlockId b, std::span<std::byte> out) const = 0;

  /// Overwrite block `b` from `in` (in.size() == block_bytes()).
  virtual void write_block(BlockId b, std::span<const std::byte> in) = 0;
};

class MemoryBlockStorage final : public BlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t num_blocks, std::size_t block_bytes);

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;

  /// Zero-copy view of a block, for internal fast paths.
  std::span<const std::byte> block_view(BlockId b) const;

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  std::vector<std::byte> data_;
};

class FileBlockStorage final : public BlockStorage {
 public:
  /// Creates (or truncates) `path` sized num_blocks * block_bytes.
  FileBlockStorage(const std::string& path, std::uint64_t num_blocks,
                   std::size_t block_bytes);
  ~FileBlockStorage() override;

  FileBlockStorage(const FileBlockStorage&) = delete;
  FileBlockStorage& operator=(const FileBlockStorage&) = delete;

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  int fd_ = -1;
};

/// How a Store obtains its backing storage. Called with the exact geometry
/// once it is known (StoreBuilder knows it up front; the incremental
/// add_table path may call it again with a larger block count).
using BlockStorageFactory = std::function<std::unique_ptr<BlockStorage>(
    std::uint64_t num_blocks, std::size_t block_bytes)>;

/// Heap-backed simulation storage (the default).
BlockStorageFactory memory_storage_factory();

/// Real-file storage at `path` (pread/pwrite), the repro substitution for
/// NVM hardware. The file is created or truncated when the factory runs.
BlockStorageFactory file_storage_factory(std::string path);

}  // namespace bandana
