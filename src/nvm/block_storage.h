// Byte storage for NVM blocks.
//
// The timing model (nvm_device.h, nvm/io_engine.h) answers "when does this
// read complete"; BlockStorage answers "what bytes live in block b".
// bandana::Store composes the two. Three backends:
//  * MemoryBlockStorage — heap-backed, used by simulations and tests.
//  * FileBlockStorage  — a real file accessed with pread/pwrite, so the
//    whole system can run against an actual SSD (the repro substitution for
//    NVM hardware).
//  * AsyncFileBlockStorage (nvm/async_file_storage.h) — the same file
//    contract, but read_blocks() submits a whole admission wave as one
//    batched io_uring submission (thread-pool preads where io_uring is
//    unavailable), so real-file serving overlaps reads the way the
//    simulated channels do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace bandana {

/// One entry of a batched read: fill `out` (block_bytes() long) from
/// block `block`.
struct BlockReadOp {
  BlockId block = 0;
  std::span<std::byte> out;
};

/// One entry of a batched write: overwrite block `block` from `in`
/// (block_bytes() long). Unlike reads, duplicate block ids in one batch
/// are NOT allowed — backends may overlap the writes, so two entries
/// targeting the same block would race with an unspecified winner.
struct BlockWriteOp {
  BlockId block = 0;
  std::span<const std::byte> in;
};

/// Backend-side write-path counters, sampled by Store::store_metrics().
struct BlockStorageWriteStats {
  /// Partial device writes re-submitted for the remaining byte range
  /// (io_uring short completions on the async backend).
  std::uint64_t short_resubmits = 0;
  /// True when the backend has a live io_uring registered-buffer pool
  /// (IORING_REGISTER_BUFFERS) carrying zero-copy reads and writes.
  bool registered_buffers_active = false;
};

class BlockStorage {
 public:
  virtual ~BlockStorage() = default;

  /// A leased buffer from the backend's registered wave-buffer pool (see
  /// lease_wave_buffer). Move-only; returns the buffer on destruction.
  class WaveBufferLease {
   public:
    WaveBufferLease() = default;
    WaveBufferLease(WaveBufferLease&& o) noexcept
        : owner_(o.owner_), index_(o.index_), span_(o.span_) {
      o.owner_ = nullptr;
      o.span_ = {};
    }
    WaveBufferLease& operator=(WaveBufferLease&& o) noexcept {
      if (this != &o) {
        release();
        owner_ = o.owner_;
        index_ = o.index_;
        span_ = o.span_;
        o.owner_ = nullptr;
        o.span_ = {};
      }
      return *this;
    }
    WaveBufferLease(const WaveBufferLease&) = delete;
    WaveBufferLease& operator=(const WaveBufferLease&) = delete;
    ~WaveBufferLease() { release(); }

    std::span<std::byte> bytes() const { return span_; }
    explicit operator bool() const { return owner_ != nullptr; }

   private:
    friend class BlockStorage;
    WaveBufferLease(const BlockStorage* owner, unsigned index,
                    std::span<std::byte> span)
        : owner_(owner), index_(index), span_(span) {}
    void release() {
      if (owner_ != nullptr) owner_->release_wave_buffer(index_);
      owner_ = nullptr;
      span_ = {};
    }
    const BlockStorage* owner_ = nullptr;
    unsigned index_ = 0;
    std::span<std::byte> span_;
  };

  virtual std::size_t block_bytes() const = 0;
  virtual std::uint64_t num_blocks() const = 0;

  /// Copy block `b` into `out` (out.size() == block_bytes()).
  virtual void read_block(BlockId b, std::span<std::byte> out) const = 0;

  /// Overwrite block `b` from `in` (in.size() == block_bytes()).
  virtual void write_block(BlockId b, std::span<const std::byte> in) = 0;

  /// Read many blocks; returns when all of `ops` are filled. Backends may
  /// overlap the reads (the async file backend batches them into one
  /// io_uring submission). Duplicate block ids are allowed. The default is
  /// a sequential read_block loop.
  virtual void read_blocks(std::span<const BlockReadOp> ops) const;

  /// Write many blocks; returns when all of `ops` are durable in the
  /// backend's view (same durability as write_block — page cache for
  /// files). Backends may overlap the writes (the async file backend
  /// batches them into one io_uring submission), so duplicate block ids
  /// are not allowed. The default is a sequential write_block loop, which
  /// keeps single-method test shims and the two inline backends exact.
  virtual void write_blocks(std::span<const BlockWriteOp> ops);

  /// True when read_blocks() genuinely overlaps I/O and the store should
  /// stage a request's miss blocks through it in admission-sized waves
  /// rather than read one block per miss inline.
  virtual bool prefers_batched_reads() const { return false; }

  /// True when write_blocks() genuinely overlaps I/O, i.e. publish and
  /// republish waves get real batching out of one call per wave.
  virtual bool prefers_batched_writes() const { return false; }

  /// Backend write-path counters; the default backend has none.
  virtual BlockStorageWriteStats write_stats() const { return {}; }

  /// Flush every completed write to durable media. This is the durability
  /// barrier the manifest commit relies on: after sync() returns, all bytes
  /// written by earlier write_block/write_blocks calls survive a crash or
  /// power loss. fdatasync on the file backends (the async backend's write
  /// waves fully drain before write_blocks returns, so fdatasync covers
  /// them too); a no-op for memory storage, which has no durable media.
  virtual void sync() {}

  /// Try to lease a buffer of at least `bytes` from the backend's
  /// registered wave-buffer pool. Composing wave images (or staging wave
  /// reads) inside a leased buffer lets the async backend issue
  /// READ_FIXED/WRITE_FIXED against pre-registered memory — zero-copy, no
  /// per-wave pin/unpin. Returns an empty lease when the backend has no
  /// pool, every buffer is in use, or `bytes` exceeds the buffer size;
  /// callers fall back to their own heap buffer.
  virtual WaveBufferLease lease_wave_buffer(std::size_t bytes) const {
    (void)bytes;
    return {};
  }

  /// True if `other` reads and writes the same bytes as this storage (e.g.
  /// two FileBlockStorage handles on one inode). Lets the store skip the
  /// block migration when a growth factory resized the backing in place.
  virtual bool same_backing(const BlockStorage& other) const {
    return this == &other;
  }

 protected:
  /// Return pool buffer `index` to the free set. Only ever invoked by a
  /// lease this backend minted via make_wave_lease().
  virtual void release_wave_buffer(unsigned index) const { (void)index; }

  WaveBufferLease make_wave_lease(unsigned index,
                                  std::span<std::byte> span) const {
    return WaveBufferLease(this, index, span);
  }
};

/// A request-scoped set of prefetched block bytes: the store's read
/// pipeline collects a request's miss blocks, fetches them through
/// read_blocks() in admission-gated waves, and lets each table lookup
/// consume the staged bytes instead of issuing an inline read.
class StagedBlockReads {
 public:
  StagedBlockReads() = default;

  /// Reserve a slot for `b` (deduplicating). Call before fetch().
  void add(BlockId b) {
    if (index_.emplace(b, blocks_.size()).second) blocks_.push_back(b);
  }

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  std::span<const BlockId> blocks() const { return blocks_; }
  /// True if `b` has a reserved slot (fetched or not).
  bool contains(BlockId b) const { return index_.count(b) != 0; }

  /// Fetch every added block from `storage`, at most `wave_blocks` per
  /// read_blocks() call (0 = one wave). This is where admission control
  /// throttles *real* I/O: each wave is one batched submission, and wave
  /// k+1 is only submitted once wave k has completed. Stages into a
  /// leased wave buffer when the backend offers one (registered-buffer
  /// zero-copy reads), falling back to a request-local heap buffer.
  void fetch(const BlockStorage& storage, std::uint64_t wave_blocks = 0);

  /// Staged bytes of block `b`, or an empty span when b was not staged.
  std::span<const std::byte> find(BlockId b) const {
    const auto it = index_.find(b);
    if (it == index_.end() || data_ == nullptr) return {};
    return {data_ + it->second * block_bytes_, block_bytes_};
  }

 private:
  std::vector<BlockId> blocks_;
  std::unordered_map<BlockId, std::size_t> index_;
  std::vector<std::byte> bytes_;
  BlockStorage::WaveBufferLease lease_;
  const std::byte* data_ = nullptr;
  std::size_t block_bytes_ = 0;
};

class MemoryBlockStorage final : public BlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t num_blocks, std::size_t block_bytes);

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;

  /// Zero-copy view of a block, for internal fast paths.
  std::span<const std::byte> block_view(BlockId b) const;

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  std::vector<std::byte> data_;
};

class FileBlockStorage : public BlockStorage {
 public:
  /// Opens `path` sized to num_blocks * block_bytes. With
  /// `preserve_contents` the existing bytes survive (growth resizes in
  /// place); otherwise the file is truncated to a clean slate first.
  FileBlockStorage(const std::string& path, std::uint64_t num_blocks,
                   std::size_t block_bytes, bool preserve_contents = false);
  ~FileBlockStorage() override;

  FileBlockStorage(const FileBlockStorage&) = delete;
  FileBlockStorage& operator=(const FileBlockStorage&) = delete;

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;
  /// fdatasync: data blocks durable; file metadata (size) was already made
  /// durable by the sizing ftruncate at open.
  void sync() override;
  /// Two file storages share a backing iff they are open on the same inode.
  bool same_backing(const BlockStorage& other) const override;

 protected:
  int fd() const { return fd_; }

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  int fd_ = -1;
};

/// How a Store obtains its backing storage. Called with the exact geometry
/// once it is known (StoreBuilder knows it up front; the incremental
/// add_table path may call it again with a larger block count). Repeat
/// invocations must preserve already-written contents — the store streams
/// published blocks from the old storage to the new one in bounded chunks,
/// so old and new must be able to coexist (a same-path file factory
/// achieves this by resizing in place instead of truncating).
using BlockStorageFactory = std::function<std::unique_ptr<BlockStorage>(
    std::uint64_t num_blocks, std::size_t block_bytes)>;

/// Heap-backed simulation storage (the default).
BlockStorageFactory memory_storage_factory();

/// Real-file storage at `path` (pread/pwrite), the repro substitution for
/// NVM hardware. Fresh-vs-preserve on the first invocation is routed
/// through the manifest: when `manifest_path` names a checksum-valid
/// manifest the existing file is preserved (a recoverable store must not be
/// destroyed by reopening it) and its size is verified against the
/// requested geometry; with no valid manifest — including the default empty
/// path — the file is truncated to a clean slate. Growth re-invocations
/// always resize in place, preserving published blocks.
BlockStorageFactory file_storage_factory(std::string path,
                                         std::string manifest_path = "");

namespace detail {

/// num_blocks * block_bytes with overflow detection; throws naming the
/// requested geometry when the product wraps uint64 or exceeds off_t.
std::uint64_t checked_file_bytes(std::uint64_t num_blocks,
                                 std::size_t block_bytes);

/// The manifest-routed fresh-vs-preserve decision shared by the file
/// factories' first invocations: true (preserve) iff `manifest_path` names
/// a checksum-valid manifest; then also verifies the block file exists and
/// is at least the requested geometry, throwing on mismatch.
bool preserve_for_first_open(const std::string& path,
                             const std::string& manifest_path,
                             std::uint64_t num_blocks,
                             std::size_t block_bytes);

}  // namespace detail

}  // namespace bandana
