// Byte storage for NVM blocks.
//
// The timing model (nvm_device.h) answers "when does this read complete";
// BlockStorage answers "what bytes live in block b". bandana::Store composes
// the two. Two backends:
//  * MemoryBlockStorage — heap-backed, used by simulations and tests.
//  * FileBlockStorage  — a real file accessed with pread/pwrite, so the
//    whole system can run against an actual SSD (the repro substitution for
//    NVM hardware).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace bandana {

class BlockStorage {
 public:
  virtual ~BlockStorage() = default;

  virtual std::size_t block_bytes() const = 0;
  virtual std::uint64_t num_blocks() const = 0;

  /// Copy block `b` into `out` (out.size() == block_bytes()).
  virtual void read_block(BlockId b, std::span<std::byte> out) const = 0;

  /// Overwrite block `b` from `in` (in.size() == block_bytes()).
  virtual void write_block(BlockId b, std::span<const std::byte> in) = 0;

  /// True if `other` reads and writes the same bytes as this storage (e.g.
  /// two FileBlockStorage handles on one inode). Lets the store skip the
  /// block migration when a growth factory resized the backing in place.
  virtual bool same_backing(const BlockStorage& other) const {
    return this == &other;
  }
};

class MemoryBlockStorage final : public BlockStorage {
 public:
  MemoryBlockStorage(std::uint64_t num_blocks, std::size_t block_bytes);

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;

  /// Zero-copy view of a block, for internal fast paths.
  std::span<const std::byte> block_view(BlockId b) const;

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  std::vector<std::byte> data_;
};

class FileBlockStorage final : public BlockStorage {
 public:
  /// Opens `path` sized to num_blocks * block_bytes. With
  /// `preserve_contents` the existing bytes survive (growth resizes in
  /// place); otherwise the file is truncated to a clean slate first.
  FileBlockStorage(const std::string& path, std::uint64_t num_blocks,
                   std::size_t block_bytes, bool preserve_contents = false);
  ~FileBlockStorage() override;

  FileBlockStorage(const FileBlockStorage&) = delete;
  FileBlockStorage& operator=(const FileBlockStorage&) = delete;

  std::size_t block_bytes() const override { return block_bytes_; }
  std::uint64_t num_blocks() const override { return num_blocks_; }
  void read_block(BlockId b, std::span<std::byte> out) const override;
  void write_block(BlockId b, std::span<const std::byte> in) override;
  /// Two file storages share a backing iff they are open on the same inode.
  bool same_backing(const BlockStorage& other) const override;

 private:
  std::uint64_t num_blocks_;
  std::size_t block_bytes_;
  int fd_ = -1;
};

/// How a Store obtains its backing storage. Called with the exact geometry
/// once it is known (StoreBuilder knows it up front; the incremental
/// add_table path may call it again with a larger block count). Repeat
/// invocations must preserve already-written contents — the store streams
/// published blocks from the old storage to the new one in bounded chunks,
/// so old and new must be able to coexist (a same-path file factory
/// achieves this by resizing in place instead of truncating).
using BlockStorageFactory = std::function<std::unique_ptr<BlockStorage>(
    std::uint64_t num_blocks, std::size_t block_bytes)>;

/// Heap-backed simulation storage (the default).
BlockStorageFactory memory_storage_factory();

/// Real-file storage at `path` (pread/pwrite), the repro substitution for
/// NVM hardware. The first invocation creates or truncates the file;
/// growth re-invocations resize it in place, preserving published blocks.
BlockStorageFactory file_storage_factory(std::string path);

}  // namespace bandana
