// ClusterRouter — scatter-gather serving front end of a StoreCluster.
//
// multi_get takes a request against the cluster's LOGICAL tables, splits
// it into at most one sub-request per node (every id a node owns for this
// request rides in that one sub-request, so the node-local Store's
// request-wide block-read dedup keeps its guarantee: a key appearing in
// two id lists is fetched once per owning node, never once per id list),
// serves the sub-requests against the node stores, and merges the results
// back into the request's shape: result.vectors[g] holds gets[g]'s bytes
// in id order, exactly as a bare Store would lay them out.
//
// Replica choice is made once per (table, range) per request — both
// balancers (round-robin, least-outstanding) rotate ACROSS requests, not
// within one, which is what keeps a request's repeated keys on one node.
// A down node is never chosen: the balancer fails over to an alive
// replica (counted in RouterMetrics::failovers); if no replica is alive,
// the (table, range) group is reported as a failed sub-request, its ids
// are zero-filled, and the per-request ClusterMultiGetResult carries the
// partial-failure accounting.
//
// The merged service latency is the slowest sub-request, after each
// node's degrade multiplier (StoreCluster::set_node_degraded) scales its
// sub-latency — one busy node drags the whole request's tail, which is
// precisely the paper's motivation for replicating the popularity head.
//
// Every request (sync and async) routes and serves under one
// StoreCluster::PlacementLease: the placement map it scattered against
// stays alive — and the donor replicas it routed to stay un-retired —
// until the request's last sub-request completes, even while a live
// rebalance flips the placement mid-flight. A request therefore sees
// entirely-old or entirely-new routing, never a torn mix.
#pragma once

#include <cstdint>
#include <future>
#include <mutex>
#include <vector>

#include "cluster/store_cluster.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/request.h"

namespace bandana {

/// A merged cluster response: the byte-identical MultiGetResult plus this
/// request's partial-failure report.
struct ClusterMultiGetResult {
  MultiGetResult result;
  std::uint64_t sub_requests = 0;      ///< Node sub-requests dispatched.
  std::uint64_t failed_sub_requests = 0;  ///< (table, range) groups lost —
                                          ///< no alive replica.
  std::uint64_t failed_lookups = 0;    ///< Ids zero-filled by those losses.
  std::uint64_t failovers = 0;         ///< Down-node reroutes this request.

  bool complete() const { return failed_lookups == 0; }
};

class ClusterRouter {
 public:
  explicit ClusterRouter(StoreCluster& cluster);

  /// Serve one request: scatter, serve each contacted node in node order,
  /// merge. Throws std::out_of_range on a bad logical table or vector id
  /// before any sub-request is dispatched (the Store::multi_get contract).
  ClusterMultiGetResult multi_get(const MultiGetRequest& request);

  /// Asynchronous scatter-gather on `pool`: routing happens inline (so
  /// bad requests still throw here), then each node sub-request becomes
  /// one pool task; the last task to finish merges and fulfils the
  /// future. Tasks never block on other tasks — a pool of any size makes
  /// progress. The request's arrival is stamped at submission, like
  /// Store::multi_get_async.
  std::future<ClusterMultiGetResult> multi_get_async(MultiGetRequest request,
                                                     ThreadPool& pool);

  /// Lock-free snapshot of the router counters.
  RouterMetrics metrics() const;

  /// Merged per-request service latency (degrade multipliers applied).
  LatencyRecorder request_latency_us() const;

 private:
  /// One routed per-node sub-request plus the merge-back bookkeeping.
  struct SubRequest {
    std::uint32_t node = 0;
    MultiGetRequest req;
    /// entry_get[e] = index into the original request's gets that
    /// req.gets[e] serves (every entry serves exactly one original get).
    std::vector<std::size_t> entry_get;
  };
  /// Where one id of the original request went: sub-request `sub`'s entry
  /// `entry`, position `offset` — or nowhere (sub < 0: no alive replica).
  struct IdSlot {
    std::int32_t sub = -1;
    std::uint32_t entry = 0;
    std::uint32_t offset = 0;
  };
  struct Scatter {
    std::vector<SubRequest> subs;
    std::vector<std::vector<IdSlot>> slots;  ///< per get, per id
    std::uint64_t failed_sub_requests = 0;
    std::uint64_t failed_lookups = 0;
    std::uint64_t failovers = 0;
  };

  /// Validate and route the whole request against `pm` (replica choice
  /// cached per (table, range)); throws before any side effect on the
  /// metrics. `pm` comes from a request-scoped placement lease the caller
  /// holds until the request is fully served, so a concurrent rebalance
  /// flip cannot retire donor state this request still routes to.
  Scatter scatter(const PlacementMap& pm, const MultiGetRequest& request);
  /// Balance a (table, range) onto an alive replica. Returns the node, or
  /// -1 when every replica is down. `failover` reports a down node pushed
  /// the choice off the balancer's pick.
  std::int32_t pick_replica(TableId t, std::size_t range_idx,
                            const PlacementMap::Range& range, bool& failover);
  ClusterMultiGetResult merge(const MultiGetRequest& request, Scatter&& sc,
                              std::vector<MultiGetResult>&& sub_results);

  StoreCluster& cluster_;
  /// Flat per-(table, range) round-robin counters; range_offset_[t] is
  /// table t's first slot.
  std::vector<std::size_t> range_offset_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> rr_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> sub_requests_{0};
  std::atomic<std::uint64_t> failed_sub_requests_{0};
  std::atomic<std::uint64_t> failed_lookups_{0};
  std::atomic<std::uint64_t> failovers_{0};

  mutable std::mutex latency_mu_;
  LatencyRecorder request_latency_;
};

}  // namespace bandana
