#include "cluster/router.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>

namespace bandana {

ClusterRouter::ClusterRouter(StoreCluster& cluster) : cluster_(cluster) {
  // Rebalance flips re-point a range's replica but never change range
  // boundaries or counts, so the flat rotation state sized here stays
  // valid across every later placement map.
  std::size_t total = 0;
  range_offset_.reserve(cluster_.placement().tables.size());
  for (const auto& ranges : cluster_.placement().tables) {
    range_offset_.push_back(total);
    total += ranges.size();
  }
  rr_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      std::max<std::size_t>(1, total));
  for (std::size_t i = 0; i < total; ++i) {
    rr_[i].store(0, std::memory_order_relaxed);
  }
}

std::int32_t ClusterRouter::pick_replica(TableId t, std::size_t range_idx,
                                         const PlacementMap::Range& range,
                                         bool& failover) {
  failover = false;
  const std::uint32_t r = range.replicas();
  // The rotation ticket advances per routing decision (across requests);
  // within one request the caller caches the choice per (table, range),
  // which is what keeps a request's repeated keys on one node.
  const std::uint64_t ticket = rr_[range_offset_[t] + range_idx].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint32_t start = static_cast<std::uint32_t>(ticket % r);

  // The balancer's preferred pick, liveness ignored: round-robin takes the
  // rotation slot; least-outstanding takes the replica whose node carries
  // the fewest router-outstanding sub-requests (ties resolved in rotation
  // order, so idle replicas still alternate).
  std::uint32_t pref = start;
  if (cluster_.cfg_.read_balance == ReadBalance::kLeastOutstanding) {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t i = 0; i < r; ++i) {
      const std::uint32_t k = (start + i) % r;
      const std::uint64_t out =
          cluster_.nodes_[range.nodes[k]]->outstanding.load(
              std::memory_order_relaxed);
      if (out < best) {
        best = out;
        pref = k;
      }
    }
  }
  // Serve from the preferred replica, or fail over to the next alive one.
  for (std::uint32_t i = 0; i < r; ++i) {
    const std::uint32_t k = (pref + i) % r;
    const std::uint32_t n = range.nodes[k];
    if (!cluster_.nodes_[n]->down.load(std::memory_order_acquire)) {
      failover = i > 0;
      return static_cast<std::int32_t>(n);
    }
  }
  return -1;  // every replica down
}

ClusterRouter::Scatter ClusterRouter::scatter(const PlacementMap& pm,
                                              const MultiGetRequest& request) {
  // Validate the whole request before routing mutates anything (the
  // Store::multi_get contract: throw before any part is served).
  for (const auto& get : request.gets) {
    if (get.table >= cluster_.num_tables()) {
      throw std::out_of_range("cluster multi_get: bad table id " +
                              std::to_string(get.table));
    }
    const std::uint32_t nv = cluster_.table_vectors_[get.table];
    for (const VectorId v : get.ids) {
      if (v >= nv) {
        throw std::out_of_range("cluster multi_get: bad vector id " +
                                std::to_string(v) + " for table " +
                                std::to_string(get.table));
      }
    }
  }

  Scatter sc;
  sc.slots.resize(request.gets.size());
  // node -> index into sc.subs (one sub-request per contacted node: the
  // node-local Store dedups block reads across its whole sub-request).
  std::vector<std::int32_t> node_sub(cluster_.num_nodes(), -1);
  // Replica choice per (table, range), made once per request.
  constexpr std::int32_t kUnrouted = -2;
  std::vector<std::pair<std::size_t, std::int32_t>> choices;
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    const auto& get = request.gets[g];
    sc.slots[g].resize(get.ids.size());
    // (node, local table) -> entry in that node's sub-request, for THIS
    // get: each original get maps to its own sub-request entries, so the
    // merged result keeps the request's shape.
    std::vector<std::tuple<std::int32_t, TableId, std::uint32_t>> entries;
    for (std::size_t i = 0; i < get.ids.size(); ++i) {
      const VectorId v = get.ids[i];
      const std::size_t ri = pm.range_index_of(get.table, v);
      const PlacementMap::Range& range = pm.tables[get.table][ri];
      const std::size_t flat = range_offset_[get.table] + ri;

      std::int32_t chosen = kUnrouted;
      for (const auto& c : choices) {
        if (c.first == flat) {
          chosen = c.second;
          break;
        }
      }
      if (chosen == kUnrouted) {
        bool failover = false;
        chosen = pick_replica(get.table, ri, range, failover);
        if (failover) ++sc.failovers;
        if (chosen < 0) ++sc.failed_sub_requests;  // counted once per range
        choices.emplace_back(flat, chosen);
      }
      if (chosen < 0) {
        ++sc.failed_lookups;  // slot stays sub = -1: zero-filled at merge
        continue;
      }

      const auto rep =
          std::find(range.nodes.begin(), range.nodes.end(),
                    static_cast<std::uint32_t>(chosen)) -
          range.nodes.begin();
      const TableId local = range.local_ids[static_cast<std::size_t>(rep)];
      if (node_sub[chosen] < 0) {
        node_sub[chosen] = static_cast<std::int32_t>(sc.subs.size());
        sc.subs.push_back({static_cast<std::uint32_t>(chosen), {}, {}});
      }
      SubRequest& sub = sc.subs[static_cast<std::size_t>(node_sub[chosen])];

      std::int32_t entry = -1;
      for (const auto& [en, el, ei] : entries) {
        if (en == chosen && el == local) {
          entry = static_cast<std::int32_t>(ei);
          break;
        }
      }
      if (entry < 0) {
        entry = static_cast<std::int32_t>(sub.req.gets.size());
        sub.req.gets.push_back({local, {}});
        sub.entry_get.push_back(g);
        entries.emplace_back(chosen, local,
                             static_cast<std::uint32_t>(entry));
      }
      auto& ids = sub.req.gets[static_cast<std::size_t>(entry)].ids;
      sc.slots[g][i] = {node_sub[chosen], static_cast<std::uint32_t>(entry),
                        static_cast<std::uint32_t>(ids.size())};
      ids.push_back(v - range.lo);
    }
  }
  return sc;
}

ClusterMultiGetResult ClusterRouter::merge(
    const MultiGetRequest& request, Scatter&& sc,
    std::vector<MultiGetResult>&& sub_results) {
  const std::size_t vb = cluster_.cfg_.store.vector_bytes;
  ClusterMultiGetResult out;
  out.sub_requests = sc.subs.size();
  out.failed_sub_requests = sc.failed_sub_requests;
  out.failed_lookups = sc.failed_lookups;
  out.failovers = sc.failovers;

  MultiGetResult& res = out.result;
  res.vectors.resize(request.gets.size());
  res.per_table.resize(request.gets.size());
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    // Zero-filled: ids lost to a down node keep deterministic bytes.
    res.vectors[g].assign(request.gets[g].ids.size() * vb, std::byte{0});
  }

  for (std::size_t s = 0; s < sc.subs.size(); ++s) {
    const MultiGetResult& sub_res = sub_results[s];
    // A degraded node inflates its sub-request's service latency; the
    // merged request completes with its slowest sub-request, so one slow
    // node drags the whole request's tail.
    const double scaled = sub_res.service_latency_us *
                          cluster_.node_degrade(sc.subs[s].node);
    res.service_latency_us = std::max(res.service_latency_us, scaled);
    res.block_reads += sub_res.block_reads;
    for (std::size_t e = 0; e < sub_res.per_table.size(); ++e) {
      auto& stats = res.per_table[sc.subs[s].entry_get[e]];
      stats.hits += sub_res.per_table[e].hits;
      stats.block_reads += sub_res.per_table[e].block_reads;
    }
  }
  for (std::size_t g = 0; g < request.gets.size(); ++g) {
    for (std::size_t i = 0; i < request.gets[g].ids.size(); ++i) {
      const IdSlot& slot = sc.slots[g][i];
      if (slot.sub < 0) continue;
      const auto& src =
          sub_results[static_cast<std::size_t>(slot.sub)].vectors[slot.entry];
      std::memcpy(res.vectors[g].data() + i * vb,
                  src.data() + std::size_t{slot.offset} * vb, vb);
    }
    // Lost ids count as misses: they were not served from DRAM (the
    // failed_lookups counter is the authoritative loss report).
    res.per_table[g].misses =
        request.gets[g].ids.size() - res.per_table[g].hits;
  }
  return out;
}

namespace {
void bump(std::atomic<std::uint64_t>& c, std::uint64_t v) {
  if (v) c.fetch_add(v, std::memory_order_relaxed);
}
}  // namespace

ClusterMultiGetResult ClusterRouter::multi_get(const MultiGetRequest& request) {
  // One lease for the whole request: route and serve against the same map,
  // released only after the last sub-request finished (see router.h).
  const StoreCluster::PlacementLease lease = cluster_.placement_lease();
  Scatter sc = scatter(lease.map(), request);
  std::vector<MultiGetResult> sub_results(sc.subs.size());
  for (std::size_t s = 0; s < sc.subs.size(); ++s) {
    auto& node = *cluster_.nodes_[sc.subs[s].node];
    node.outstanding.fetch_add(1, std::memory_order_relaxed);
    try {
      sub_results[s] = node.store->multi_get(sc.subs[s].req);
    } catch (...) {
      // Decrement on EVERY completion path: a throwing sub-request must
      // not ratchet the least-outstanding count, or the node looks ever
      // busier and is never picked again once healthy.
      node.outstanding.fetch_sub(1, std::memory_order_relaxed);
      throw;
    }
    node.outstanding.fetch_sub(1, std::memory_order_relaxed);
  }
  ClusterMultiGetResult out =
      merge(request, std::move(sc), std::move(sub_results));
  requests_.fetch_add(1, std::memory_order_relaxed);
  bump(sub_requests_, out.sub_requests);
  bump(failed_sub_requests_, out.failed_sub_requests);
  bump(failed_lookups_, out.failed_lookups);
  bump(failovers_, out.failovers);
  {
    std::lock_guard lock(latency_mu_);
    request_latency_.add(out.result.service_latency_us);
  }
  return out;
}

std::future<ClusterMultiGetResult> ClusterRouter::multi_get_async(
    MultiGetRequest request, ThreadPool& pool) {
  struct AsyncState {
    MultiGetRequest request;
    /// Held until the state dies — i.e. until the last sub-task finished —
    /// so a concurrent rebalance flip waits for this request before
    /// retiring the donor replicas it routed to.
    StoreCluster::PlacementLease lease;
    Scatter sc;
    std::vector<MultiGetResult> sub_results;
    std::vector<double> arrivals;
    std::atomic<std::size_t> remaining{0};
    std::mutex error_mu;
    std::exception_ptr error;
    std::promise<ClusterMultiGetResult> promise;
  };
  auto state = std::make_shared<AsyncState>();
  state->request = std::move(request);
  state->lease = cluster_.placement_lease();
  // Bad requests throw here, inline.
  state->sc = scatter(state->lease.map(), state->request);
  auto future = state->promise.get_future();

  const std::size_t n_subs = state->sc.subs.size();
  const auto finish = [this, state] {
    {
      std::lock_guard lock(state->error_mu);
      if (state->error) {
        state->promise.set_exception(state->error);
        return;
      }
    }
    ClusterMultiGetResult out =
        merge(state->request, std::move(state->sc),
              std::move(state->sub_results));
    requests_.fetch_add(1, std::memory_order_relaxed);
    bump(sub_requests_, out.sub_requests);
    bump(failed_sub_requests_, out.failed_sub_requests);
    bump(failed_lookups_, out.failed_lookups);
    bump(failovers_, out.failovers);
    {
      std::lock_guard lock(latency_mu_);
      request_latency_.add(out.result.service_latency_us);
    }
    state->promise.set_value(std::move(out));
  };
  if (n_subs == 0) {
    // Nothing routable (empty request, or everything down): settle now.
    finish();
    return future;
  }

  state->sub_results.resize(n_subs);
  state->arrivals.resize(n_subs);
  state->remaining.store(n_subs, std::memory_order_relaxed);
  for (std::size_t s = 0; s < n_subs; ++s) {
    auto& node = *cluster_.nodes_[state->sc.subs[s].node];
    // Arrival stamped at submission (each node's own clock), and the
    // outstanding count raised before the task queues — a concurrent
    // least-outstanding pick must see queued-but-unserved work.
    state->arrivals[s] = node.store->now_us();
    node.outstanding.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < n_subs; ++s) {
    // Tasks call the node store synchronously and count down; the last one
    // merges. No task ever waits on another, so any pool size progresses.
    pool.submit([this, state, s, finish] {
      auto& node = *cluster_.nodes_[state->sc.subs[s].node];
      try {
        state->sub_results[s] =
            node.store->multi_get(state->sc.subs[s].req, state->arrivals[s]);
      } catch (...) {
        std::lock_guard lock(state->error_mu);
        if (!state->error) state->error = std::current_exception();
      }
      node.outstanding.fetch_sub(1, std::memory_order_relaxed);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        finish();
      }
    });
  }
  return future;
}

RouterMetrics ClusterRouter::metrics() const {
  RouterMetrics m;
  m.requests = requests_.load(std::memory_order_relaxed);
  m.sub_requests = sub_requests_.load(std::memory_order_relaxed);
  m.failed_sub_requests =
      failed_sub_requests_.load(std::memory_order_relaxed);
  m.failed_lookups = failed_lookups_.load(std::memory_order_relaxed);
  m.failovers = failovers_.load(std::memory_order_relaxed);
  return m;
}

LatencyRecorder ClusterRouter::request_latency_us() const {
  std::lock_guard lock(latency_mu_);
  return request_latency_;
}

}  // namespace bandana
