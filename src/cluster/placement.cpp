#include "cluster/placement.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "cluster/cluster_config.h"
#include "common/rng.h"

namespace bandana {

namespace {

/// Deterministic node hash for table t: independent of iteration order and
/// stable across runs for a given seed.
std::uint32_t hashed_node(std::uint64_t seed, TableId t, std::uint32_t nodes) {
  return static_cast<std::uint32_t>(
      splitmix64(seed + 0x9E3779B97F4A7C15ULL * (std::uint64_t{t} + 1)) %
      nodes);
}

/// Replica set for a range: r distinct nodes starting at `primary`,
/// wrapping around the ring.
std::vector<std::uint32_t> replica_ring(std::uint32_t primary,
                                        std::uint32_t replicas,
                                        std::uint32_t nodes) {
  const std::uint32_t r = std::min(std::max(1u, replicas), nodes);
  std::vector<std::uint32_t> out;
  out.reserve(r);
  for (std::uint32_t k = 0; k < r; ++k) out.push_back((primary + k) % nodes);
  return out;
}

std::uint32_t blocks_for(std::uint32_t num_vectors,
                         std::uint32_t vectors_per_block) {
  return (num_vectors + vectors_per_block - 1) / vectors_per_block;
}

}  // namespace

const PlacementMap::Range& PlacementMap::range_of(TableId t,
                                                  VectorId v) const {
  return tables[t][range_index_of(t, v)];
}

std::size_t PlacementMap::range_index_of(TableId t, VectorId v) const {
  const auto& ranges = tables[t];
  // Last range whose lo <= v (ranges are sorted, contiguous, gap-free).
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), v,
      [](VectorId id, const Range& r) { return id < r.lo; });
  if (it == ranges.begin()) {
    throw std::out_of_range("placement: vector below first range");
  }
  return static_cast<std::size_t>(it - ranges.begin()) - 1;
}

std::vector<std::uint8_t> hot_table_flags(const StorePlan& plan,
                                          std::uint32_t hot_tables) {
  const std::size_t n = plan.tables.size();
  std::vector<std::uint8_t> hot(n, 0);
  if (hot_tables == 0) return hot;
  std::vector<std::uint64_t> mass(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    mass[t] = std::accumulate(plan.tables[t].access_counts.begin(),
                              plan.tables[t].access_counts.end(),
                              std::uint64_t{0});
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (mass[a] != mass[b]) return mass[a] > mass[b];
    return a < b;
  });
  for (std::size_t k = 0; k < std::min<std::size_t>(hot_tables, n); ++k) {
    hot[order[k]] = 1;
  }
  return hot;
}

TablePlan slice_table_plan(const TablePlan& plan, VectorId lo, VectorId hi,
                           std::uint32_t vectors_per_block) {
  const std::uint32_t nv = plan.layout.num_vectors();
  if (lo >= hi || hi > nv) {
    throw std::invalid_argument("slice_table_plan: bad range");
  }
  if (lo == 0 && hi == nv) return plan;  // whole table: the plan verbatim

  // Filter the trained order to the range's members and re-base to local
  // ids: vectors SHP co-located stay co-located inside the slice.
  std::vector<VectorId> order;
  order.reserve(hi - lo);
  for (const VectorId v : plan.layout.order()) {
    if (v >= lo && v < hi) order.push_back(v - lo);
  }
  TablePlan out{BlockLayout::from_order(std::move(order), vectors_per_block),
                {},
                plan.policy,
                plan.shp_train_fanout};
  if (plan.access_counts.size() == nv) {
    out.access_counts.assign(plan.access_counts.begin() + lo,
                             plan.access_counts.begin() + hi);
  }
  if (plan.policy.cache_vectors > 0) {
    // Proportional DRAM split, at least one vector per shard.
    out.policy.cache_vectors = std::max<std::uint64_t>(
        1, plan.policy.cache_vectors * (hi - lo) / nv);
  }
  return out;
}

EmbeddingTable slice_embedding_table(const EmbeddingTable& values, VectorId lo,
                                     VectorId hi) {
  if (lo >= hi || hi > values.num_vectors()) {
    throw std::invalid_argument("slice_embedding_table: bad range");
  }
  EmbeddingTable out(hi - lo, values.dim());
  for (VectorId v = lo; v < hi; ++v) {
    const auto src = values.vector(v);
    std::memcpy(out.vector(v - lo).data(), src.data(),
                src.size() * sizeof(float));
  }
  return out;
}

PlacementMap HashPlacement::place(const StorePlan& plan,
                                  std::span<const EmbeddingTable> tables,
                                  const ClusterConfig& cfg) const {
  (void)tables;
  const auto hot = hot_table_flags(plan, cfg.hot_tables);
  PlacementMap map;
  map.tables.resize(plan.tables.size());
  for (std::size_t t = 0; t < plan.tables.size(); ++t) {
    const std::uint32_t primary =
        hashed_node(cfg.seed, static_cast<TableId>(t), cfg.nodes);
    PlacementMap::Range range;
    range.lo = 0;
    range.hi = plan.tables[t].layout.num_vectors();
    range.nodes =
        replica_ring(primary, hot[t] ? cfg.replicas : 1, cfg.nodes);
    map.tables[t].push_back(std::move(range));
  }
  return map;
}

PlacementMap PlanAwarePlacement::place(const StorePlan& plan,
                                       std::span<const EmbeddingTable> tables,
                                       const ClusterConfig& cfg) const {
  (void)tables;
  const auto hot = hot_table_flags(plan, cfg.hot_tables);
  const std::uint32_t vpb = cfg.store.vectors_per_block();
  PlacementMap map;
  map.tables.resize(plan.tables.size());

  // Running per-node block load; range-split tables and every replica
  // charge the nodes they land on, so the bin-packing below sees them.
  std::vector<std::uint64_t> load(cfg.nodes, 0);
  const auto charge = [&](const std::vector<std::uint32_t>& nodes,
                          std::uint64_t blocks) {
    for (const std::uint32_t n : nodes) load[n] += blocks;
  };

  // Pass 1: range-split the huge tables — one contiguous vector-id range
  // per node, ring-offset by the table hash so table heads do not all pile
  // onto node 0.
  std::vector<std::size_t> small;
  for (std::size_t t = 0; t < plan.tables.size(); ++t) {
    const std::uint32_t nv = plan.tables[t].layout.num_vectors();
    if (cfg.nodes < 2 || nv < cfg.split_min_vectors || nv < cfg.nodes) {
      small.push_back(t);
      continue;
    }
    const std::uint32_t start =
        hashed_node(cfg.seed, static_cast<TableId>(t), cfg.nodes);
    const std::uint32_t parts = cfg.nodes;
    const std::uint32_t base = nv / parts;
    const std::uint32_t rem = nv % parts;
    VectorId lo = 0;
    for (std::uint32_t j = 0; j < parts; ++j) {
      const std::uint32_t len = base + (j < rem ? 1 : 0);
      PlacementMap::Range range;
      range.lo = lo;
      range.hi = lo + len;
      range.nodes = replica_ring((start + j) % cfg.nodes,
                                 hot[t] ? cfg.replicas : 1, cfg.nodes);
      charge(range.nodes, blocks_for(len, vpb));
      map.tables[t].push_back(std::move(range));
      lo += len;
    }
  }

  // Pass 2: greedy bin-packing of the remaining tables, biggest first
  // (ties by table id so the pack is deterministic), each onto the
  // least-loaded node at its turn.
  std::sort(small.begin(), small.end(), [&](std::size_t a, std::size_t b) {
    const std::uint32_t ba = plan.tables[a].layout.num_blocks();
    const std::uint32_t bb = plan.tables[b].layout.num_blocks();
    if (ba != bb) return ba > bb;
    return a < b;
  });
  for (const std::size_t t : small) {
    std::uint32_t best = 0;
    for (std::uint32_t n = 1; n < cfg.nodes; ++n) {
      if (load[n] < load[best]) best = n;
    }
    PlacementMap::Range range;
    range.lo = 0;
    range.hi = plan.tables[t].layout.num_vectors();
    range.nodes = replica_ring(best, hot[t] ? cfg.replicas : 1, cfg.nodes);
    charge(range.nodes, plan.tables[t].layout.num_blocks());
    map.tables[t].push_back(std::move(range));
  }
  return map;
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const ClusterConfig& cfg) {
  switch (cfg.placement) {
    case PlacementKind::kHash:
      return std::make_unique<HashPlacement>();
    case PlacementKind::kPlanAware:
      return std::make_unique<PlanAwarePlacement>();
  }
  throw std::invalid_argument("unknown placement kind");
}

}  // namespace bandana
