#include "cluster/store_cluster.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "cluster/router.h"
#include "core/store_builder.h"

namespace bandana {

StoreCluster::StoreCluster(ClusterConfig cfg, const StorePlan& plan,
                           std::span<const EmbeddingTable> tables,
                           BlockStorageFactory storage_factory,
                           const PlacementPolicy* placement)
    : cfg_(std::move(cfg)) {
  if (cfg_.nodes == 0) {
    throw std::invalid_argument("StoreCluster: nodes must be >= 1");
  }
  if (plan.tables.size() != tables.size()) {
    throw std::invalid_argument(
        "StoreCluster: plan/tables size mismatch");
  }
  std::unique_ptr<PlacementPolicy> owned_policy;
  if (placement == nullptr) {
    owned_policy = make_placement_policy(cfg_);
    placement = owned_policy.get();
  }
  placement_ = placement->place(plan, tables, cfg_);
  if (placement_.tables.size() != plan.tables.size()) {
    throw std::logic_error("StoreCluster: placement covers wrong table count");
  }

  table_vectors_.reserve(plan.tables.size());
  for (const auto& tp : plan.tables) {
    table_vectors_.push_back(tp.layout.num_vectors());
  }

  // One builder per node; node n's seed is cfg.seed + n so node 0 of a
  // 1-node cluster is bit-identical to a bare Store built with cfg.seed.
  std::vector<StoreBuilder> builders;
  builders.reserve(cfg_.nodes);
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    builders.emplace_back(cfg_.store);
    builders.back().seed(cfg_.seed + n);
    if (storage_factory) builders.back().storage(storage_factory);
  }

  // Register every (table, range, replica) in deterministic order —
  // tables ascending, ranges ascending, replicas primary-first — handing
  // out node-local table ids as we go. Split ranges own their sliced
  // values until every node has built (builders hold references).
  const std::uint32_t vpb = cfg_.store.vectors_per_block();
  std::vector<std::unique_ptr<EmbeddingTable>> slices;
  std::vector<TableId> next_local(cfg_.nodes, 0);
  for (std::size_t t = 0; t < plan.tables.size(); ++t) {
    const std::uint32_t nv = plan.tables[t].layout.num_vectors();
    auto& ranges = placement_.tables[t];
    if (ranges.empty()) {
      throw std::logic_error("StoreCluster: table with no placement range");
    }
    for (auto& range : ranges) {
      if (range.lo >= range.hi || range.hi > nv || range.nodes.empty()) {
        throw std::logic_error("StoreCluster: malformed placement range");
      }
      TablePlan sub = slice_table_plan(plan.tables[t], range.lo, range.hi, vpb);
      const EmbeddingTable* values = &tables[t];
      if (range.lo != 0 || range.hi != nv) {
        slices.push_back(std::make_unique<EmbeddingTable>(
            slice_embedding_table(tables[t], range.lo, range.hi)));
        values = slices.back().get();
      }
      range.local_ids.clear();
      range.local_ids.reserve(range.nodes.size());
      for (const std::uint32_t n : range.nodes) {
        if (n >= cfg_.nodes) {
          throw std::logic_error("StoreCluster: range names a bad node");
        }
        range.local_ids.push_back(next_local[n]++);
        builders[n].add_table(*values, sub);
      }
    }
  }

  nodes_.reserve(cfg_.nodes);
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    auto node = std::make_unique<Node>();
    node->store = std::make_unique<Store>(builders[n].build());
    nodes_.push_back(std::move(node));
  }
  router_ = std::make_unique<ClusterRouter>(*this);
}

StoreCluster::~StoreCluster() = default;

void StoreCluster::set_node_down(std::uint32_t n, bool down) {
  nodes_.at(n)->down.store(down, std::memory_order_release);
}

void StoreCluster::set_node_degraded(std::uint32_t n,
                                     double latency_multiplier) {
  if (latency_multiplier < 1.0) {
    throw std::invalid_argument(
        "set_node_degraded: multiplier must be >= 1 (1 = healthy)");
  }
  nodes_.at(n)->degrade.store(latency_multiplier, std::memory_order_release);
}

bool StoreCluster::node_down(std::uint32_t n) const {
  return nodes_.at(n)->down.load(std::memory_order_acquire);
}

double StoreCluster::node_degrade(std::uint32_t n) const {
  return nodes_.at(n)->degrade.load(std::memory_order_acquire);
}

ClusterMetrics StoreCluster::metrics() const {
  ClusterMetrics m;
  m.per_node_tables.reserve(nodes_.size());
  m.per_node_store.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    m.per_node_tables.push_back(node->store->total_metrics());
    m.per_node_store.push_back(node->store->store_metrics());
    m.tables.merge(m.per_node_tables.back());
    m.store.merge(m.per_node_store.back());
  }
  m.router = router_->metrics();
  return m;
}

TableMetrics StoreCluster::table_metrics(TableId t) const {
  TableMetrics total;
  for (const auto& range : placement_.tables.at(t)) {
    for (std::size_t r = 0; r < range.nodes.size(); ++r) {
      total.merge(
          nodes_[range.nodes[r]]->store->table_metrics(range.local_ids[r]));
    }
  }
  return total;
}

double StoreCluster::republish(TableId t, const EmbeddingTable& values,
                               double day) {
  if (t >= num_tables()) {
    throw std::out_of_range("republish: bad logical table id");
  }
  if (values.num_vectors() != table_vectors_[t]) {
    throw std::invalid_argument("republish: values shape mismatch");
  }
  double max_latency = 0.0;
  for (const auto& range : placement_.tables[t]) {
    const bool whole = range.lo == 0 && range.hi == table_vectors_[t];
    EmbeddingTable sliced(1, 1);
    if (!whole) sliced = slice_embedding_table(values, range.lo, range.hi);
    const EmbeddingTable& vals = whole ? values : sliced;
    for (std::size_t r = 0; r < range.nodes.size(); ++r) {
      max_latency = std::max(
          max_latency, nodes_[range.nodes[r]]->store->republish(
                           range.local_ids[r], vals, day));
    }
  }
  return max_latency;
}

ClusterRepublish StoreCluster::begin_trickle_republish(
    TableId t, const EmbeddingTable& values, const TablePlan& plan,
    const RepublishConfig& republish_cfg, double day) {
  if (t >= num_tables()) {
    throw std::out_of_range("begin_trickle_republish: bad logical table id");
  }
  if (values.num_vectors() != table_vectors_[t] ||
      plan.layout.num_vectors() != table_vectors_[t]) {
    throw std::invalid_argument(
        "begin_trickle_republish: plan/values shape mismatch");
  }
  const std::uint32_t vpb = cfg_.store.vectors_per_block();
  ClusterRepublish push(t);
  // The node sessions compose their block images lazily per wave, so each
  // per-range slice must live as long as its sessions: the push owns them
  // (owned_values_ outlives sessions_ by member order). Whole-table ranges
  // read the caller's `values` directly, which the single-store contract
  // already requires to outlive the sessions.
  for (const auto& range : placement_.tables[t]) {
    const bool whole = range.lo == 0 && range.hi == table_vectors_[t];
    TablePlan sub_plan = slice_table_plan(plan, range.lo, range.hi, vpb);
    const EmbeddingTable* vals = &values;
    if (!whole) {
      push.owned_values_.push_back(std::make_unique<EmbeddingTable>(
          slice_embedding_table(values, range.lo, range.hi)));
      vals = push.owned_values_.back().get();
    }
    for (std::size_t r = 0; r < range.nodes.size(); ++r) {
      push.sessions_.push_back(
          nodes_[range.nodes[r]]->store->begin_trickle_republish(
              range.local_ids[r], *vals, sub_plan, republish_cfg, day));
    }
  }
  return push;
}

void StoreCluster::advance_time_us(double delta) {
  for (const auto& node : nodes_) node->store->advance_time_us(delta);
}

double StoreCluster::now_us() const { return nodes_.front()->store->now_us(); }

std::size_t StoreCluster::reclaim_retired_states() {
  std::size_t freed = 0;
  for (const auto& node : nodes_) freed += node->store->reclaim_retired_states();
  return freed;
}

std::size_t StoreCluster::retired_states() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node->store->retired_states();
  return n;
}

std::size_t ClusterRepublish::pump() {
  std::size_t written = 0;
  for (auto& s : sessions_) written += s.pump();
  return written;
}

bool ClusterRepublish::done() const {
  return std::all_of(sessions_.begin(), sessions_.end(),
                     [](const TrickleRepublish& s) { return s.done(); });
}

bool ClusterRepublish::mapping_swapped() const {
  return std::any_of(sessions_.begin(), sessions_.end(),
                     [](const TrickleRepublish& s) {
                       return s.mapping_swapped();
                     });
}

std::uint64_t ClusterRepublish::total_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.total_blocks();
  return n;
}

std::uint64_t ClusterRepublish::written_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.written_blocks();
  return n;
}

std::uint64_t ClusterRepublish::skipped_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.skipped_blocks();
  return n;
}

}  // namespace bandana
