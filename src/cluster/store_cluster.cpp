#include "cluster/store_cluster.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "cluster/router.h"
#include "core/store_builder.h"

namespace bandana {

StoreCluster::StoreCluster(ClusterConfig cfg, const StorePlan& plan,
                           std::span<const EmbeddingTable> tables,
                           BlockStorageFactory storage_factory,
                           const PlacementPolicy* placement,
                           const NodeSetup& node_setup)
    : cfg_(std::move(cfg)) {
  if (cfg_.nodes == 0) {
    throw std::invalid_argument("StoreCluster: nodes must be >= 1");
  }
  if (plan.tables.size() != tables.size()) {
    throw std::invalid_argument(
        "StoreCluster: plan/tables size mismatch");
  }
  std::unique_ptr<PlacementPolicy> owned_policy;
  if (placement == nullptr) {
    owned_policy = make_placement_policy(cfg_);
    placement = owned_policy.get();
  }
  PlacementMap placement_map = placement->place(plan, tables, cfg_);
  if (placement_map.tables.size() != plan.tables.size()) {
    throw std::logic_error("StoreCluster: placement covers wrong table count");
  }

  table_vectors_.reserve(plan.tables.size());
  for (const auto& tp : plan.tables) {
    table_vectors_.push_back(tp.layout.num_vectors());
  }

  // One builder per node. Node seeds come from cluster_node_seed
  // (cluster_config.h): splitmix64-derived per-node streams, with node 0
  // keeping the raw seed so a 1-node cluster stays bit-identical to a bare
  // Store built with cfg.seed.
  std::vector<StoreBuilder> builders;
  builders.reserve(cfg_.nodes);
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    builders.emplace_back(cfg_.store);
    builders.back().seed(cluster_node_seed(cfg_.seed, n));
    if (storage_factory) builders.back().storage(storage_factory);
    if (node_setup) node_setup(n, builders.back());
  }

  // Register every (table, range, replica) in deterministic order —
  // tables ascending, ranges ascending, replicas primary-first — handing
  // out node-local table ids as we go. Split ranges own their sliced
  // values until every node has built (builders hold references).
  const std::uint32_t vpb = cfg_.store.vectors_per_block();
  std::vector<std::unique_ptr<EmbeddingTable>> slices;
  std::vector<TableId> next_local(cfg_.nodes, 0);
  for (std::size_t t = 0; t < plan.tables.size(); ++t) {
    const std::uint32_t nv = plan.tables[t].layout.num_vectors();
    auto& ranges = placement_map.tables[t];
    if (ranges.empty()) {
      throw std::logic_error("StoreCluster: table with no placement range");
    }
    for (auto& range : ranges) {
      if (range.lo >= range.hi || range.hi > nv || range.nodes.empty()) {
        throw std::logic_error("StoreCluster: malformed placement range");
      }
      TablePlan sub = slice_table_plan(plan.tables[t], range.lo, range.hi, vpb);
      const EmbeddingTable* values = &tables[t];
      if (range.lo != 0 || range.hi != nv) {
        slices.push_back(std::make_unique<EmbeddingTable>(
            slice_embedding_table(tables[t], range.lo, range.hi)));
        values = slices.back().get();
      }
      range.local_ids.clear();
      range.local_ids.reserve(range.nodes.size());
      for (const std::uint32_t n : range.nodes) {
        if (n >= cfg_.nodes) {
          throw std::logic_error("StoreCluster: range names a bad node");
        }
        range.local_ids.push_back(next_local[n]++);
        builders[n].add_table(*values, sub);
      }
    }
  }

  nodes_.reserve(cfg_.nodes);
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    auto node = std::make_unique<Node>();
    node->store = std::make_unique<Store>(builders[n].build());
    nodes_.push_back(std::move(node));
  }
  placement_owner_ =
      std::make_unique<const PlacementMap>(std::move(placement_map));
  placement_ptr_.store(placement_owner_.get(), std::memory_order_release);
  router_ = std::make_unique<ClusterRouter>(*this);
}

StoreCluster::~StoreCluster() = default;

std::uint32_t StoreCluster::lease_slot() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kLeaseSlots;
  return slot;
}

StoreCluster::PlacementLease StoreCluster::placement_lease() const {
  PlacementLease lease;
  lease.c_ = this;
  lease.bank_ = static_cast<std::uint32_t>(
      lease_gen_.load(std::memory_order_relaxed) & 1);
  lease.slot_ = lease_slot();
  // seq_cst enter THEN seq_cst map load: a flip's drain scan that does not
  // observe this enter is seq_cst-ordered before it, and therefore before
  // the map load — which then sees the flipped pointer. Either the flip
  // waits for this lease, or this lease already routes on the new map.
  lease_banks_[lease.bank_][lease.slot_].entered.fetch_add(
      1, std::memory_order_seq_cst);
  lease.map_ = placement_ptr_.load(std::memory_order_seq_cst);
  return lease;
}

void StoreCluster::PlacementLease::release() noexcept {
  if (c_ == nullptr) return;
  c_->lease_banks_[bank_][slot_].exited.fetch_add(1,
                                                  std::memory_order_release);
  c_ = nullptr;
}

bool StoreCluster::lease_bank_drained(std::uint32_t bank) const {
  for (std::uint32_t s = 0; s < kLeaseSlots; ++s) {
    // exited first: both counters are monotone, so observing
    // exited >= entered proves the slot was empty at some instant between
    // the two loads.
    const std::uint64_t exited =
        lease_banks_[bank][s].exited.load(std::memory_order_acquire);
    const std::uint64_t entered =
        lease_banks_[bank][s].entered.load(std::memory_order_seq_cst);
    if (entered != exited) return false;
  }
  return true;
}

void StoreCluster::flip_placement(std::unique_ptr<const PlacementMap> next) {
  std::lock_guard<std::mutex> flip_lock(flip_mu_);
  const PlacementMap* fresh = next.get();
  std::unique_ptr<const PlacementMap> old = std::move(placement_owner_);
  placement_owner_ = std::move(next);
  placement_ptr_.store(fresh, std::memory_order_seq_cst);
  placement_flips_.fetch_add(1, std::memory_order_relaxed);
  // Two-phase drain: flip the lease generation so fresh leases land on the
  // other bank (a continuous request stream can't keep a bank busy
  // forever), then wait for the old-generation bank to empty; repeat for
  // the second bank, since a lease may have read the generation just
  // before the first flip. A lease the scans miss is seq_cst-ordered after
  // the pointer store above, i.e. it routes on the NEW map (see
  // placement_lease()); every lease that could still hold `old` is
  // therefore waited out here, making it safe for the caller to retire
  // donor-side state once we return.
  for (int phase = 0; phase < 2; ++phase) {
    const std::uint32_t old_bank = static_cast<std::uint32_t>(
        lease_gen_.fetch_add(1, std::memory_order_seq_cst) & 1);
    while (!lease_bank_drained(old_bank)) std::this_thread::yield();
  }
  // `old` dies here — no reader can reference it.
}

void StoreCluster::flip_range(TableId t, std::size_t range_idx,
                              std::uint32_t replica, std::uint32_t target_node,
                              TableId target_local) {
  auto next = std::make_unique<PlacementMap>(placement());
  auto& range = next->tables.at(t).at(range_idx);
  range.nodes.at(replica) = target_node;
  range.local_ids.at(replica) = target_local;
  flip_placement(
      std::unique_ptr<const PlacementMap>(std::move(next)));
}

void StoreCluster::set_node_down(std::uint32_t n, bool down) {
  nodes_.at(n)->down.store(down, std::memory_order_release);
}

void StoreCluster::set_node_degraded(std::uint32_t n,
                                     double latency_multiplier) {
  if (latency_multiplier < 1.0) {
    throw std::invalid_argument(
        "set_node_degraded: multiplier must be >= 1 (1 = healthy)");
  }
  nodes_.at(n)->degrade.store(latency_multiplier, std::memory_order_release);
}

bool StoreCluster::node_down(std::uint32_t n) const {
  return nodes_.at(n)->down.load(std::memory_order_acquire);
}

double StoreCluster::node_degrade(std::uint32_t n) const {
  return nodes_.at(n)->degrade.load(std::memory_order_acquire);
}

ClusterMetrics StoreCluster::metrics() const {
  ClusterMetrics m;
  m.per_node_tables.reserve(nodes_.size());
  m.per_node_store.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    m.per_node_tables.push_back(node->store->total_metrics());
    m.per_node_store.push_back(node->store->store_metrics());
    m.tables.merge(m.per_node_tables.back());
    m.store.merge(m.per_node_store.back());
  }
  m.router = router_->metrics();
  return m;
}

TableMetrics StoreCluster::table_metrics(TableId t) const {
  TableMetrics total;
  const PlacementLease lease = placement_lease();
  for (const auto& range : lease.map().tables.at(t)) {
    for (std::size_t r = 0; r < range.nodes.size(); ++r) {
      total.merge(
          nodes_[range.nodes[r]]->store->table_metrics(range.local_ids[r]));
    }
  }
  return total;
}

double StoreCluster::republish(TableId t, const EmbeddingTable& values,
                               double day) {
  if (t >= num_tables()) {
    throw std::out_of_range("republish: bad logical table id");
  }
  if (values.num_vectors() != table_vectors_[t]) {
    throw std::invalid_argument("republish: values shape mismatch");
  }
  double max_latency = 0.0;
  const PlacementLease lease = placement_lease();
  for (const auto& range : lease.map().tables[t]) {
    const bool whole = range.lo == 0 && range.hi == table_vectors_[t];
    EmbeddingTable sliced(1, 1);
    if (!whole) sliced = slice_embedding_table(values, range.lo, range.hi);
    const EmbeddingTable& vals = whole ? values : sliced;
    for (std::size_t r = 0; r < range.nodes.size(); ++r) {
      max_latency = std::max(
          max_latency, nodes_[range.nodes[r]]->store->republish(
                           range.local_ids[r], vals, day));
    }
  }
  return max_latency;
}

ClusterRepublish StoreCluster::begin_trickle_republish(
    TableId t, const EmbeddingTable& values, const TablePlan& plan,
    const RepublishConfig& republish_cfg, double day) {
  if (t >= num_tables()) {
    throw std::out_of_range("begin_trickle_republish: bad logical table id");
  }
  if (values.num_vectors() != table_vectors_[t] ||
      plan.layout.num_vectors() != table_vectors_[t]) {
    throw std::invalid_argument(
        "begin_trickle_republish: plan/values shape mismatch");
  }
  const std::uint32_t vpb = cfg_.store.vectors_per_block();
  ClusterRepublish push(t);
  // The node sessions compose their block images lazily per wave, so each
  // per-range slice must live as long as its sessions: the push owns them
  // (owned_values_ outlives sessions_ by member order). Whole-table ranges
  // read the caller's `values` directly, which the single-store contract
  // already requires to outlive the sessions.
  const PlacementLease lease = placement_lease();
  for (const auto& range : lease.map().tables[t]) {
    const bool whole = range.lo == 0 && range.hi == table_vectors_[t];
    TablePlan sub_plan = slice_table_plan(plan, range.lo, range.hi, vpb);
    const EmbeddingTable* vals = &values;
    if (!whole) {
      push.owned_values_.push_back(std::make_unique<EmbeddingTable>(
          slice_embedding_table(values, range.lo, range.hi)));
      vals = push.owned_values_.back().get();
    }
    for (std::size_t r = 0; r < range.nodes.size(); ++r) {
      push.sessions_.push_back(
          nodes_[range.nodes[r]]->store->begin_trickle_republish(
              range.local_ids[r], *vals, sub_plan, republish_cfg, day));
    }
  }
  return push;
}

void StoreCluster::advance_time_us(double delta) {
  for (const auto& node : nodes_) node->store->advance_time_us(delta);
}

double StoreCluster::now_us() const { return nodes_.front()->store->now_us(); }

std::size_t StoreCluster::reclaim_retired_states() {
  std::size_t freed = 0;
  for (const auto& node : nodes_) freed += node->store->reclaim_retired_states();
  return freed;
}

std::size_t StoreCluster::retired_states() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) n += node->store->retired_states();
  return n;
}

std::size_t ClusterRepublish::pump() {
  std::size_t written = 0;
  for (auto& s : sessions_) written += s.pump();
  return written;
}

bool ClusterRepublish::done() const {
  return std::all_of(sessions_.begin(), sessions_.end(),
                     [](const TrickleRepublish& s) { return s.done(); });
}

bool ClusterRepublish::mapping_swapped() const {
  return std::any_of(sessions_.begin(), sessions_.end(),
                     [](const TrickleRepublish& s) {
                       return s.mapping_swapped();
                     });
}

std::uint64_t ClusterRepublish::total_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.total_blocks();
  return n;
}

std::uint64_t ClusterRepublish::written_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.written_blocks();
  return n;
}

std::uint64_t ClusterRepublish::skipped_blocks() const {
  std::uint64_t n = 0;
  for (const auto& s : sessions_) n += s.skipped_blocks();
  return n;
}

}  // namespace bandana
