#include "cluster/rebalance.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace bandana {

namespace detail {
/// One in-flight range migration. begin_rebalance claims the donor's local
/// table (freezing its mapping), snapshots it, and reserves + commits the
/// target install; pump() calls then relay waves under `mu`. The relay
/// buffer holds ONE wave of block images, so session DRAM is O(wave) while
/// the move may be O(range).
struct RebalanceState {
  explicit RebalanceState(const RepublishConfig& rate) : limiter(rate) {}

  StoreCluster* cluster = nullptr;
  TableId table = 0;
  std::size_t range_idx = 0;
  std::uint32_t replica = 0;
  std::uint32_t donor = 0;
  std::uint32_t target = 0;
  TableId donor_local = 0;
  TableId target_local = 0;  ///< Valid once completed.
  std::optional<TableInstall> install;
  TrickleRateLimiter limiter;
  std::uint64_t total = 0;     ///< Blocks in the migrating range.
  std::uint64_t streamed = 0;  ///< Blocks relayed so far.
  std::uint64_t waves = 0;
  bool completed = false;
  std::vector<std::byte> buf;  ///< Relay buffer, one wave of images.
  mutable std::mutex mu;       ///< serializes pump/done/stat reads
};
}  // namespace detail

namespace {
/// Cap on blocks relayed per pump (16 MB of 4 KB blocks): bounds the relay
/// buffer when the limiter is unlimited or its interval budget is huge.
constexpr std::uint64_t kMaxRelayWaveBlocks = 4096;
}  // namespace

RebalanceSession StoreCluster::begin_rebalance(TableId t,
                                               std::size_t range_idx,
                                               std::uint32_t replica,
                                               std::uint32_t target_node,
                                               const RepublishConfig& rate) {
  // One session per cluster at a time: the flag also freezes the placement
  // (flips only happen inside a session's completion), so reading it
  // directly below is safe.
  if (rebalance_active_.exchange(true, std::memory_order_acq_rel)) {
    throw std::logic_error(
        "begin_rebalance: a rebalance session is already active");
  }
  try {
    const PlacementMap& pm = placement();
    if (t >= pm.tables.size()) {
      throw std::out_of_range("begin_rebalance: bad table id " +
                              std::to_string(t));
    }
    if (range_idx >= pm.tables[t].size()) {
      throw std::out_of_range("begin_rebalance: bad range index " +
                              std::to_string(range_idx));
    }
    const PlacementMap::Range& r = pm.tables[t][range_idx];
    if (replica >= r.nodes.size()) {
      throw std::out_of_range("begin_rebalance: bad replica " +
                              std::to_string(replica));
    }
    if (target_node >= num_nodes()) {
      throw std::out_of_range("begin_rebalance: bad target node " +
                              std::to_string(target_node));
    }
    const std::uint32_t donor = r.nodes[replica];
    if (donor == target_node) {
      throw std::invalid_argument("begin_rebalance: self-move");
    }
    for (const std::uint32_t hosting : r.nodes) {
      if (hosting == target_node) {
        throw std::invalid_argument(
            "begin_rebalance: target already hosts a replica of this range");
      }
    }
    const TableId donor_local = r.local_ids[replica];
    Store& donor_store = node(donor);
    donor_store.claim_table_for_migration(donor_local);
    try {
      // The claim freezes the donor mapping, so this snapshot — and the
      // block indices the stream reads — stay accurate for the whole move.
      BandanaTable::RetrainedState snap =
          donor_store.migration_snapshot(donor_local);
      auto s = std::make_unique<detail::RebalanceState>(rate);
      s->cluster = this;
      s->table = t;
      s->range_idx = range_idx;
      s->replica = replica;
      s->donor = donor;
      s->target = target_node;
      s->donor_local = donor_local;
      s->total = snap.layout.num_blocks();
      // Reserves the target's storage and commits its pending-install
      // record before any byte moves (core/store.h crash ordering).
      s->install.emplace(node(target_node).begin_table_install(
          std::move(snap.layout), snap.policy, std::move(snap.access_counts)));
      return RebalanceSession(std::move(s));
    } catch (...) {
      donor_store.release_table_claim(donor_local);
      throw;
    }
  } catch (...) {
    rebalance_active_.store(false, std::memory_order_release);
    throw;
  }
}

RebalanceSession::RebalanceSession(
    std::unique_ptr<detail::RebalanceState> state)
    : state_(std::move(state)) {}

RebalanceSession::RebalanceSession(RebalanceSession&& other) noexcept = default;

RebalanceSession& RebalanceSession::operator=(
    RebalanceSession&& other) noexcept {
  if (this != &other) {
    abandon();
    state_ = std::move(other.state_);
  }
  return *this;
}

RebalanceSession::~RebalanceSession() { abandon(); }

void RebalanceSession::abandon() noexcept {
  if (!state_) return;
  try {
    detail::RebalanceState& s = *state_;
    std::lock_guard lock(s.mu);
    if (s.completed) return;
    // Unwind in reverse begin order: the target install abandons (its
    // reserved blocks return to the free pool; a durable pending record a
    // dead backend can't drop is reclaimed at reopen), the donor's claim
    // releases (it never stopped serving), and the cluster slot frees.
    s.install.reset();
    s.cluster->node(s.donor).release_table_claim(s.donor_local);
    s.cluster->rebalance_active_.store(false, std::memory_order_release);
    s.completed = true;
  } catch (...) {
    // Destructor context: a leaked claim or cluster slot beats crashing.
  }
}

std::size_t RebalanceSession::pump() {
  if (!state_) return 0;
  detail::RebalanceState& s = *state_;
  std::lock_guard lock(s.mu);
  if (s.completed) return 0;
  StoreCluster& c = *s.cluster;
  std::uint64_t n = 0;
  if (s.streamed < s.total) {
    Store& donor = c.node(s.donor);
    const double now = donor.now_us();
    n = std::min<std::uint64_t>(s.limiter.allowance(now),
                                s.total - s.streamed);
    n = std::min(n, kMaxRelayWaveBlocks);
    if (n == 0) return 0;  // rate-limited: caller advances the clock
    const std::size_t bb = c.config().store.block_bytes;
    s.buf.resize(static_cast<std::size_t>(n) * bb);
    // Donor batched read-out, target batched write-in — each side chunks
    // to its own admission wave and accounts the I/O open-loop on its own
    // engine, so the migration contends with serving on both nodes.
    donor.read_table_blocks(s.donor_local,
                            static_cast<std::uint32_t>(s.streamed),
                            static_cast<std::uint32_t>(n), s.buf);
    s.install->write_blocks(static_cast<std::uint32_t>(s.streamed), s.buf);
    s.limiter.consume(now, n);
    s.streamed += n;
    ++s.waves;
  }
  if (s.streamed == s.total) {
    // Completion, in crash-safe durability order (file comment): target
    // finish commit, then the lease-drained placement flip, then — only
    // once no request can still route to it — the donor retire commit.
    s.target_local = s.install->finish();
    c.flip_range(s.table, s.range_idx, s.replica, s.target, s.target_local);
    c.node(s.donor).retire_table(s.donor_local);
    c.rebalance_active_.store(false, std::memory_order_release);
    s.completed = true;
  }
  return static_cast<std::size_t>(n);
}

void RebalanceSession::run_to_completion() {
  while (!done()) {
    if (pump() == 0 && !done()) {
      const RepublishConfig& rate = state_->limiter.config();
      state_->cluster->advance_time_us(
          rate.interval_us > 0.0 ? rate.interval_us : 1000.0);
    }
  }
}

bool RebalanceSession::done() const {
  if (!state_) return true;
  std::lock_guard lock(state_->mu);
  return state_->completed;
}

TableId RebalanceSession::table() const {
  return state_ ? state_->table : TableId{0};
}

std::size_t RebalanceSession::range_index() const {
  return state_ ? state_->range_idx : 0;
}

std::uint32_t RebalanceSession::replica() const {
  return state_ ? state_->replica : 0;
}

std::uint32_t RebalanceSession::donor() const {
  return state_ ? state_->donor : 0;
}

std::uint32_t RebalanceSession::target() const {
  return state_ ? state_->target : 0;
}

TableId RebalanceSession::target_local() const {
  if (!state_) return TableId{0};
  std::lock_guard lock(state_->mu);
  return state_->target_local;
}

std::uint64_t RebalanceSession::total_blocks() const {
  return state_ ? state_->total : 0;
}

std::uint64_t RebalanceSession::streamed_blocks() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->streamed;
}

std::uint64_t RebalanceSession::waves() const {
  if (!state_) return 0;
  std::lock_guard lock(state_->mu);
  return state_->waves;
}

double Rebalancer::node_load(std::uint32_t n) const {
  const TableMetrics tm = cluster_.node(n).total_metrics();
  return static_cast<double>(tm.lookups) +
         cfg_.miss_weight * static_cast<double>(tm.nvm_block_reads) +
         static_cast<double>(cluster_.node_outstanding(n));
}

std::optional<MoveProposal> Rebalancer::propose() const {
  const std::uint32_t n = cluster_.num_nodes();
  if (n < 2) return std::nullopt;
  std::vector<double> load(n);
  for (std::uint32_t i = 0; i < n; ++i) load[i] = node_load(i);
  std::uint32_t donor = 0, target = 0;
  for (std::uint32_t i = 1; i < n; ++i) {
    if (load[i] > load[donor]) donor = i;
    if (load[i] < load[target]) target = i;
  }
  if (donor == target) return std::nullopt;
  if (load[donor] < cfg_.skew_threshold * std::max(load[target], 1.0)) {
    return std::nullopt;
  }
  if (cluster_.node(donor).total_metrics().lookups < cfg_.min_donor_lookups) {
    return std::nullopt;
  }
  // Hottest movable range hosted by the donor: a range is movable when no
  // replica of it already lives on the target.
  const StoreCluster::PlacementLease lease = cluster_.placement_lease();
  const PlacementMap& pm = lease.map();
  std::optional<MoveProposal> best;
  std::uint64_t best_heat = 0;
  for (TableId t = 0; t < pm.tables.size(); ++t) {
    for (std::size_t ri = 0; ri < pm.tables[t].size(); ++ri) {
      const PlacementMap::Range& r = pm.tables[t][ri];
      bool covers_target = false;
      for (const std::uint32_t hosting : r.nodes) {
        covers_target |= hosting == target;
      }
      if (covers_target) continue;
      for (std::uint32_t rep = 0; rep < r.replicas(); ++rep) {
        if (r.nodes[rep] != donor) continue;
        const std::uint64_t heat =
            cluster_.node(donor).table_metrics(r.local_ids[rep]).lookups;
        if (!best || heat > best_heat) {
          best = MoveProposal{t,     ri,           rep,
                              donor, target,       load[donor],
                              load[target]};
          best_heat = heat;
        }
      }
    }
  }
  return best;
}

}  // namespace bandana
