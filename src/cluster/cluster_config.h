// Configuration of the distributed serving tier (cluster/store_cluster.h).
//
// A production DLRM deployment spreads its embedding tables across many
// Bandana nodes and replicates the popularity head so skewed traffic does
// not melt one machine. ClusterConfig describes that topology: node count,
// replication degree of the hot tables, how tables are placed onto nodes
// (hashed whole-table placement, or plan-aware placement that range-splits
// huge tables by vector id), and how reads are balanced across replicas.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/config.h"

namespace bandana {

/// How logical tables map onto nodes (cluster/placement.h).
enum class PlacementKind {
  /// Every table lives whole on splitmix64(seed, table) % nodes.
  kHash,
  /// Tables with at least split_min_vectors vectors are split into
  /// contiguous vector-id ranges (one per node, each with its own
  /// SHP-derived sub-layout); smaller tables are greedily bin-packed onto
  /// the least-loaded node by block count.
  kPlanAware,
};

/// How a replicated (table, range) picks the replica serving a request.
enum class ReadBalance {
  /// Rotate through the replica set with a per-range counter.
  kRoundRobin,
  /// Pick the replica whose node has the fewest router-outstanding
  /// sub-requests (admission-gate style back-pressure), rotating on ties.
  kLeastOutstanding,
};

struct ClusterConfig {
  /// Serving nodes; each owns a full Store (own NvmIoEngine, DRAM cache,
  /// block storage).
  std::uint32_t nodes = 1;

  /// Replicas per hot (popularity-head) table, clamped to `nodes`.
  /// Non-hot tables always have exactly one replica.
  std::uint32_t replicas = 1;

  /// Top-K tables by plan access mass (sum of SHP access counts, ties by
  /// table id) that get `replicas`-way replication. 0 = no replication.
  std::uint32_t hot_tables = 0;

  PlacementKind placement = PlacementKind::kHash;
  ReadBalance read_balance = ReadBalance::kRoundRobin;

  /// kPlanAware: tables at least this big are range-split across nodes.
  std::uint32_t split_min_vectors = 1u << 20;

  /// Cluster seed; node n's store is seeded with cluster_node_seed(seed, n)
  /// below. Node 0 keeps the raw seed, so node 0 of a 1-node cluster is
  /// bit-identical to a bare Store built with `seed`.
  std::uint64_t seed = 42;

  /// Per-node store configuration (block geometry, device model, cache
  /// sharding) — identical on every node.
  StoreConfig store;
};

/// Seed of node n's store. Derived through splitmix64 rather than the naive
/// `seed + n`: additive seeding aliases adjacent cluster seeds — node n of a
/// cluster seeded s IS node n-1 of a cluster seeded s+1, so two experiments
/// meant to be independent share node RNG streams. Node 0 keeps the raw seed
/// to preserve the 1-node/1-replica == bare-Store identity contract.
inline std::uint64_t cluster_node_seed(std::uint64_t seed, std::uint32_t n) {
  if (n == 0) return seed;
  return splitmix64(seed ^ (0x9E3779B97F4A7C15ULL * std::uint64_t{n}));
}

}  // namespace bandana
