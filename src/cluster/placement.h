// Table -> node placement for the distributed serving tier.
//
// A PlacementMap assigns every logical table a list of contiguous vector-id
// ranges; each range names the replica nodes serving it (primary first) and
// the node-local table id the range's values occupy inside each replica's
// Store. The map is a pure function of (plan, tables, ClusterConfig) — the
// determinism tests pin that: same seed + config, same map.
//
// Two policies live behind the PlacementPolicy seam:
//  - HashPlacement: every table whole on splitmix64(seed, table) % nodes.
//  - PlanAwarePlacement: huge tables (>= split_min_vectors) are split into
//    one contiguous range per node, each range carrying a sub-layout
//    filtered out of the table's trained SHP order (so intra-block locality
//    survives the split); the remaining tables are greedily bin-packed onto
//    the least-loaded node by block count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/trainer.h"
#include "trace/embedding_table.h"

namespace bandana {

struct ClusterConfig;  // cluster_config.h

struct PlacementMap {
  /// One contiguous slice [lo, hi) of a logical table, served by
  /// `nodes[r]` as that node's local table `local_ids[r]`.
  struct Range {
    VectorId lo = 0;
    VectorId hi = 0;
    std::vector<std::uint32_t> nodes;  ///< Replica nodes, primary first.
    std::vector<TableId> local_ids;    ///< Per replica: node-local table id.

    bool operator==(const Range&) const = default;
    std::uint32_t replicas() const {
      return static_cast<std::uint32_t>(nodes.size());
    }
  };

  /// tables[t] = table t's ranges, sorted by lo, covering [0, num_vectors)
  /// without gaps or overlap.
  std::vector<std::vector<Range>> tables;

  bool operator==(const PlacementMap&) const = default;

  /// The range serving vector v of table t.
  const Range& range_of(TableId t, VectorId v) const;
  /// Index into tables[t] of that range.
  std::size_t range_index_of(TableId t, VectorId v) const;
};

/// Placement seam: maps a trained plan onto a cluster topology. place()
/// fills every Range's [lo, hi) and nodes; the local ids are assigned by
/// StoreCluster as it registers the ranges with each node's builder (in
/// deterministic table/range/replica order).
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual PlacementMap place(const StorePlan& plan,
                             std::span<const EmbeddingTable> tables,
                             const ClusterConfig& cfg) const = 0;
  virtual const char* name() const = 0;
};

class HashPlacement : public PlacementPolicy {
 public:
  PlacementMap place(const StorePlan& plan,
                     std::span<const EmbeddingTable> tables,
                     const ClusterConfig& cfg) const override;
  const char* name() const override { return "hash"; }
};

class PlanAwarePlacement : public PlacementPolicy {
 public:
  PlacementMap place(const StorePlan& plan,
                     std::span<const EmbeddingTable> tables,
                     const ClusterConfig& cfg) const override;
  const char* name() const override { return "plan-aware"; }
};

/// The policy a ClusterConfig asks for (cfg.placement).
std::unique_ptr<PlacementPolicy> make_placement_policy(
    const ClusterConfig& cfg);

/// The top-K tables by plan access mass (sum of access counts, ties broken
/// by lower table id), as a per-table hot flag. K = cfg.hot_tables.
std::vector<std::uint8_t> hot_table_flags(const StorePlan& plan,
                                          std::uint32_t hot_tables);

/// Slice a table's plan to the vector range [lo, hi): the layout order is
/// filtered to the range's members and re-based to local ids (v - lo), so
/// SHP's co-access grouping survives; access counts are sliced; the DRAM
/// budget is split proportionally to the range's share of the table (at
/// least 1 vector). A full-range slice returns the plan unchanged — that
/// is what makes a 1-node cluster bit-identical to a bare Store.
TablePlan slice_table_plan(const TablePlan& plan, VectorId lo, VectorId hi,
                           std::uint32_t vectors_per_block);

/// Row-copy values for [lo, hi) (local id v maps to source row lo + v).
EmbeddingTable slice_embedding_table(const EmbeddingTable& values, VectorId lo,
                                     VectorId hi);

}  // namespace bandana
