// Live shard rebalancing: online migration of one (table, range, replica)
// between nodes while both keep serving, plus the skew-driven policy that
// proposes such moves.
//
// A RebalanceSession (StoreCluster::begin_rebalance) is the cross-node
// analogue of a trickle republish: the donor's copy is claimed (its
// mapping frozen — serving unaffected), a streaming install reserves
// storage on the target and commits a pending-install manifest record,
// and pump() then moves the range's blocks in admission-sized, rate-
// limited waves — donor batched read-out, target batched write-in, both
// open-loop so the migration contends with serving like any background
// I/O. When the last wave lands, the session completes in three ordered
// durability steps:
//
//   1. target: install finish — ONE manifest commit registers the table
//      and drops the pending record (never a half-table);
//   2. cluster: placement flip — publish the re-pointed map and block
//      until every placement lease on older maps drains (no in-flight
//      request can still route to the donor copy);
//   3. donor: retire LAST — tombstone the local table and reclaim its
//      blocks, with its own commit.
//
// A crash (kill -9) at ANY boundary recovers to a servable state: before
// step 1's rename the target reopens with the reserved blocks reclaimed
// and only the donor serves; between 1 and 3 both copies are durable (the
// recovered placement decides which serves); after 3 only the target
// serves. Every vector is classifiable as served-by-donor or
// served-by-target — never lost (test_rebalance crash matrix).
//
// The Rebalancer is the policy half: it reads live per-node signals —
// request mass, NVM read traffic, router-outstanding sub-requests — and
// proposes a single move (hottest movable range, most-loaded donor,
// least-loaded target) when the load skew crosses a threshold. Mechanism
// and policy stay separate: callers decide when to act on a proposal.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/store_cluster.h"
#include "nvm/nvm_config.h"

namespace bandana {

namespace detail {
struct RebalanceState;  // rebalance.cpp
}  // namespace detail

/// Handle on one in-flight range migration (StoreCluster::begin_rebalance).
/// Move-only; calls on one handle serialize internally. Destroying an
/// incomplete session abandons it: the target's reserved blocks return to
/// its free pool, the donor keeps serving its copy, and the cluster is
/// free to begin another session.
class RebalanceSession {
 public:
  RebalanceSession(RebalanceSession&& other) noexcept;
  RebalanceSession& operator=(RebalanceSession&& other) noexcept;
  ~RebalanceSession();

  /// Move at most one rate-limiter allowance of blocks donor -> target
  /// (chunked to the admission wave inside each store). Returns blocks
  /// moved this call; 0 when rate-limited (advance the cluster clock) or
  /// already complete. The final pump also runs the completion flip
  /// (steps 1-3 above) before returning.
  std::size_t pump();

  /// Pump to completion, advancing the cluster clock by one limiter
  /// interval whenever a pump is rate-limited. For tests and synchronous
  /// callers; live callers interleave pump() with serving.
  void run_to_completion();

  /// True once the placement flipped and the donor copy was retired.
  bool done() const;

  TableId table() const;
  std::size_t range_index() const;
  std::uint32_t replica() const;
  std::uint32_t donor() const;
  std::uint32_t target() const;
  /// The target node's local table id for the migrated range (valid once
  /// done()).
  TableId target_local() const;
  std::uint64_t total_blocks() const;
  std::uint64_t streamed_blocks() const;
  std::uint64_t waves() const;

 private:
  friend class StoreCluster;
  explicit RebalanceSession(std::unique_ptr<detail::RebalanceState> state);
  void abandon() noexcept;
  std::unique_ptr<detail::RebalanceState> state_;
};

/// One proposed migration: move (table, range_index)'s replica `replica`
/// off `donor` onto `target`.
struct MoveProposal {
  TableId table = 0;
  std::size_t range_index = 0;
  std::uint32_t replica = 0;
  std::uint32_t donor = 0;
  std::uint32_t target = 0;
  double donor_load = 0.0;   ///< Donor's load score at proposal time.
  double target_load = 0.0;  ///< Target's load score at proposal time.
};

struct RebalancerConfig {
  /// Propose only when donor_load >= skew_threshold * target_load.
  double skew_threshold = 1.25;
  /// Minimum lookups the donor must have absorbed — suppresses proposals
  /// off cold-start noise.
  std::uint64_t min_donor_lookups = 1024;
  /// Weight of an NVM block read vs a (cached) lookup in the load score:
  /// misses cost device time, hits cost almost nothing.
  double miss_weight = 4.0;
};

/// Skew-driven move policy over live cluster metrics. Stateless between
/// calls: each propose() re-reads the per-node counters (cumulative since
/// construction) and the current placement.
class Rebalancer {
 public:
  explicit Rebalancer(const StoreCluster& cluster, RebalancerConfig cfg = {})
      : cluster_(cluster), cfg_(cfg) {}

  /// Load score of node n: request mass + weighted NVM reads + currently
  /// outstanding router sub-requests (the live-pressure term).
  double node_load(std::uint32_t n) const;

  /// The single best move, or nullopt when the cluster is balanced (skew
  /// under threshold), the donor is too cold, or nothing on the donor can
  /// move (every range's other replicas already cover the target, or the
  /// donor hosts nothing). Picks the most-loaded donor, the least-loaded
  /// target, and the donor's hottest movable range.
  std::optional<MoveProposal> propose() const;

  const RebalancerConfig& config() const { return cfg_; }

 private:
  const StoreCluster& cluster_;
  RebalancerConfig cfg_;
};

}  // namespace bandana
