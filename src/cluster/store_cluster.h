// bandana::StoreCluster — the distributed serving tier: N node-local
// Stores (each with its own NvmIoEngine, DRAM cache, and block-storage
// backend) behind a placement policy, with R-way replication of the
// popularity-head tables and per-node fault injection.
//
// Construction mirrors Store::from_plan, plus the topology:
//
//   ClusterConfig ccfg;
//   ccfg.nodes = 4; ccfg.replicas = 2; ccfg.hot_tables = 2;
//   ccfg.placement = PlacementKind::kPlanAware;
//   ccfg.store = cfg;                      // per-node StoreConfig
//   StoreCluster cluster(ccfg, plan, tables);
//   ClusterMultiGetResult res = cluster.router().multi_get(req);
//
// Requests address LOGICAL tables (the plan's numbering); the router
// scatters them into per-node sub-requests against each node's local
// table ids (cluster/router.h) and merges the results byte-identically
// with the single-node path: a cluster with nodes=1, replicas=1 returns
// the same bytes, the same metrics counters, and the same latencies as a
// bare Store built from the same plan and seed.
//
// Fault injection: a node can be marked down (its replicas stop being
// routable — lookups fail over to alive replicas, and ids with no alive
// replica are zero-filled and counted in the per-request partial-failure
// report) or degraded (a latency multiplier applied to its sub-request
// service latency at merge — a simple tail-inflation model of a busy or
// throttled node). Fault injection models the SERVING path only: the
// republish paths below still write to down nodes, so data is never lost
// and a node marked back up serves fresh bytes.
//
// Retraining pushes go through the cluster, not a single store: republish
// and begin_trickle_republish fan a new plan out to every replica of
// every range of the changed table (slicing the plan and values per range
// for split tables).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/placement.h"
#include "core/metrics.h"
#include "core/store.h"
#include "core/trainer.h"
#include "nvm/block_storage.h"
#include "trace/embedding_table.h"

namespace bandana {

class ClusterRouter;  // cluster/router.h

/// Router-side counters: requests routed, sub-requests dispatched and
/// lost, lookups zero-filled, and replica failovers.
struct RouterMetrics {
  std::uint64_t requests = 0;          ///< Cluster multi_gets served.
  std::uint64_t sub_requests = 0;      ///< Per-node requests dispatched.
  std::uint64_t failed_sub_requests = 0;  ///< Per-request (table, range)
                                          ///< groups with no alive replica.
  std::uint64_t failed_lookups = 0;    ///< Ids zero-filled by those losses.
  std::uint64_t failovers = 0;         ///< Routing decisions pushed off the
                                       ///< balancer's pick by a down node.

  RouterMetrics& merge(const RouterMetrics& o) {
    requests += o.requests;
    sub_requests += o.sub_requests;
    failed_sub_requests += o.failed_sub_requests;
    failed_lookups += o.failed_lookups;
    failovers += o.failovers;
    return *this;
  }
  RouterMetrics& operator+=(const RouterMetrics& o) { return merge(o); }
};

/// Cluster-wide rollup: every node's TableMetrics and StoreMetrics merged
/// (core/metrics.h merge()), the router counters, and the per-node
/// snapshots the rollup was built from. A 1-node cluster's rollup equals
/// the bare store's snapshots field for field.
struct ClusterMetrics {
  TableMetrics tables;
  StoreMetrics store;
  RouterMetrics router;
  std::vector<TableMetrics> per_node_tables;
  std::vector<StoreMetrics> per_node_store;
};

/// One cluster-wide trickle republish: a per-replica TrickleRepublish
/// session for every (range, replica) of the table. pump() pumps every
/// session (each node's rate limiter gates its own writes); done() once
/// every replica swapped. Destroying it unfinished abandons every
/// outstanding session (those replicas keep serving the old plan).
///
/// The sessions compose their block images lazily per wave, so the push
/// owns the per-range value slices it was built from (owned_values_); the
/// caller's whole-table `values` must outlive the push, like the
/// single-store contract (core/store.h).
class ClusterRepublish {
 public:
  /// Pump every session once; returns blocks written across the cluster.
  std::size_t pump();
  /// True once every replica's session completed.
  bool done() const;
  /// True if any replica installed a new mapping.
  bool mapping_swapped() const;

  TableId table() const { return table_; }
  std::size_t sessions() const { return sessions_.size(); }
  std::uint64_t total_blocks() const;
  std::uint64_t written_blocks() const;
  std::uint64_t skipped_blocks() const;

 private:
  friend class StoreCluster;
  explicit ClusterRepublish(TableId t) : table_(t) {}
  TableId table_;
  /// Sliced values the sessions read from; declared before sessions_ so
  /// the sessions are abandoned before their slices die.
  std::vector<std::unique_ptr<EmbeddingTable>> owned_values_;
  std::vector<TrickleRepublish> sessions_;
};

class StoreCluster {
 public:
  /// Build the cluster from a trained plan. `tables[i]` holds the values
  /// for `plan.tables[i]`; node n's store is seeded cfg.seed + n. The
  /// storage factory (default: heap memory) is invoked once per node — a
  /// file-backed cluster needs a factory that derives a distinct path per
  /// invocation. `placement` overrides the policy cfg.placement names.
  StoreCluster(ClusterConfig cfg, const StorePlan& plan,
               std::span<const EmbeddingTable> tables,
               BlockStorageFactory storage_factory = nullptr,
               const PlacementPolicy* placement = nullptr);
  ~StoreCluster();

  StoreCluster(const StoreCluster&) = delete;
  StoreCluster& operator=(const StoreCluster&) = delete;

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  /// Logical tables (the plan's numbering, which requests address).
  std::size_t num_tables() const { return table_vectors_.size(); }
  std::uint32_t table_vectors(TableId t) const { return table_vectors_[t]; }
  const PlacementMap& placement() const { return placement_; }
  const ClusterConfig& config() const { return cfg_; }

  Store& node(std::uint32_t n) { return *nodes_[n]->store; }
  const Store& node(std::uint32_t n) const { return *nodes_[n]->store; }

  /// The scatter-gather serving front end (cluster/router.h).
  ClusterRouter& router() { return *router_; }

  // --- Fault injection (serving path only; see file comment) ---
  void set_node_down(std::uint32_t n, bool down);
  void set_node_degraded(std::uint32_t n, double latency_multiplier);
  bool node_down(std::uint32_t n) const;
  double node_degrade(std::uint32_t n) const;

  // --- Metrics ---
  /// Cluster-wide rollup (per-node snapshots merged + router counters).
  ClusterMetrics metrics() const;
  /// Logical table t's counters, merged over its ranges and replicas.
  TableMetrics table_metrics(TableId t) const;

  // --- Retraining pushes (fan out to every replica of the table) ---
  /// One-shot in-place republish on every replica; returns the slowest
  /// replica's write-wave latency.
  double republish(TableId t, const EmbeddingTable& values, double day = 0.0);
  /// Rate-limited trickle republish on every replica (one session per
  /// (range, replica); split tables get per-range plan/value slices, which
  /// the returned push owns). `values` must stay valid until the push is
  /// done or destroyed — the sessions read from it lazily per wave.
  ClusterRepublish begin_trickle_republish(TableId t,
                                           const EmbeddingTable& values,
                                           const TablePlan& plan,
                                           const RepublishConfig& republish_cfg,
                                           double day = 0.0);

  /// Advance every node's simulated clock (arrival pacing).
  void advance_time_us(double delta);
  /// Node 0's clock (all nodes advance in lockstep through the cluster).
  double now_us() const;

  /// Epoch-reclaim pass on every table of every node; returns states freed.
  std::size_t reclaim_retired_states();
  std::size_t retired_states() const;

 private:
  friend class ClusterRouter;

  struct Node {
    std::unique_ptr<Store> store;
    std::atomic<bool> down{false};
    std::atomic<double> degrade{1.0};
    /// Router-outstanding sub-requests (the kLeastOutstanding signal).
    std::atomic<std::uint64_t> outstanding{0};
  };

  ClusterConfig cfg_;
  PlacementMap placement_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint32_t> table_vectors_;
  std::unique_ptr<ClusterRouter> router_;
};

}  // namespace bandana
