// bandana::StoreCluster — the distributed serving tier: N node-local
// Stores (each with its own NvmIoEngine, DRAM cache, and block-storage
// backend) behind a placement policy, with R-way replication of the
// popularity-head tables and per-node fault injection.
//
// Construction mirrors Store::from_plan, plus the topology:
//
//   ClusterConfig ccfg;
//   ccfg.nodes = 4; ccfg.replicas = 2; ccfg.hot_tables = 2;
//   ccfg.placement = PlacementKind::kPlanAware;
//   ccfg.store = cfg;                      // per-node StoreConfig
//   StoreCluster cluster(ccfg, plan, tables);
//   ClusterMultiGetResult res = cluster.router().multi_get(req);
//
// Requests address LOGICAL tables (the plan's numbering); the router
// scatters them into per-node sub-requests against each node's local
// table ids (cluster/router.h) and merges the results byte-identically
// with the single-node path: a cluster with nodes=1, replicas=1 returns
// the same bytes, the same metrics counters, and the same latencies as a
// bare Store built from the same plan and seed.
//
// Fault injection: a node can be marked down (its replicas stop being
// routable — lookups fail over to alive replicas, and ids with no alive
// replica are zero-filled and counted in the per-request partial-failure
// report) or degraded (a latency multiplier applied to its sub-request
// service latency at merge — a simple tail-inflation model of a busy or
// throttled node). Fault injection models the SERVING path only: the
// republish paths below still write to down nodes, so data is never lost
// and a node marked back up serves fresh bytes.
//
// Retraining pushes go through the cluster, not a single store: republish
// and begin_trickle_republish fan a new plan out to every replica of
// every range of the changed table (slicing the plan and values per range
// for split tables).
//
// Live rebalancing: the placement is no longer static. begin_rebalance
// (cluster/rebalance.h) streams one (table, range, replica) from its donor
// node to a target node while the donor keeps serving, then atomically
// re-points the placement entry. Routing reads the placement through
// PlacementLease — a two-bank reader-epoch guard (the BandanaTable swap
// idiom, applied to the placement map) — so every request routes AND
// serves against exactly one map: entirely-old or entirely-new, never
// torn. The flip blocks until every lease on the old map drains, which is
// what makes it safe to retire the donor's copy afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/placement.h"
#include "core/metrics.h"
#include "core/store.h"
#include "core/trainer.h"
#include "nvm/block_storage.h"
#include "trace/embedding_table.h"

namespace bandana {

class ClusterRouter;     // cluster/router.h
class RebalanceSession;  // cluster/rebalance.h
class StoreBuilder;      // core/store_builder.h

/// Router-side counters: requests routed, sub-requests dispatched and
/// lost, lookups zero-filled, and replica failovers.
struct RouterMetrics {
  std::uint64_t requests = 0;          ///< Cluster multi_gets served.
  std::uint64_t sub_requests = 0;      ///< Per-node requests dispatched.
  std::uint64_t failed_sub_requests = 0;  ///< Per-request (table, range)
                                          ///< groups with no alive replica.
  std::uint64_t failed_lookups = 0;    ///< Ids zero-filled by those losses.
  std::uint64_t failovers = 0;         ///< Routing decisions pushed off the
                                       ///< balancer's pick by a down node.

  RouterMetrics& merge(const RouterMetrics& o) {
    requests += o.requests;
    sub_requests += o.sub_requests;
    failed_sub_requests += o.failed_sub_requests;
    failed_lookups += o.failed_lookups;
    failovers += o.failovers;
    return *this;
  }
  RouterMetrics& operator+=(const RouterMetrics& o) { return merge(o); }
};

/// Cluster-wide rollup: every node's TableMetrics and StoreMetrics merged
/// (core/metrics.h merge()), the router counters, and the per-node
/// snapshots the rollup was built from. A 1-node cluster's rollup equals
/// the bare store's snapshots field for field.
struct ClusterMetrics {
  TableMetrics tables;
  StoreMetrics store;
  RouterMetrics router;
  std::vector<TableMetrics> per_node_tables;
  std::vector<StoreMetrics> per_node_store;
};

/// One cluster-wide trickle republish: a per-replica TrickleRepublish
/// session for every (range, replica) of the table. pump() pumps every
/// session (each node's rate limiter gates its own writes); done() once
/// every replica swapped. Destroying it unfinished abandons every
/// outstanding session (those replicas keep serving the old plan).
///
/// The sessions compose their block images lazily per wave, so the push
/// owns the per-range value slices it was built from (owned_values_); the
/// caller's whole-table `values` must outlive the push, like the
/// single-store contract (core/store.h).
class ClusterRepublish {
 public:
  /// Pump every session once; returns blocks written across the cluster.
  std::size_t pump();
  /// True once every replica's session completed.
  bool done() const;
  /// True if any replica installed a new mapping.
  bool mapping_swapped() const;

  TableId table() const { return table_; }
  std::size_t sessions() const { return sessions_.size(); }
  std::uint64_t total_blocks() const;
  std::uint64_t written_blocks() const;
  std::uint64_t skipped_blocks() const;

 private:
  friend class StoreCluster;
  explicit ClusterRepublish(TableId t) : table_(t) {}
  TableId table_;
  /// Sliced values the sessions read from; declared before sessions_ so
  /// the sessions are abandoned before their slices die.
  std::vector<std::unique_ptr<EmbeddingTable>> owned_values_;
  std::vector<TrickleRepublish> sessions_;
};

class StoreCluster {
 public:
  /// Per-node builder hook: invoked once per node (after seed and storage
  /// are applied) so callers can give each node its own backend/manifest —
  /// e.g. `.file_storage(dir/"node3.blocks").manifest(dir/"node3.manifest")`
  /// — without threading state through a shared factory.
  using NodeSetup = std::function<void(std::uint32_t node, StoreBuilder&)>;

  /// Build the cluster from a trained plan. `tables[i]` holds the values
  /// for `plan.tables[i]`; node n's store is seeded
  /// cluster_node_seed(cfg.seed, n) (cluster_config.h). The storage
  /// factory (default: heap memory) is invoked once per node — a
  /// file-backed cluster needs a factory that derives a distinct path per
  /// invocation, or a `node_setup` hook that configures each builder.
  /// `placement` overrides the policy cfg.placement names.
  StoreCluster(ClusterConfig cfg, const StorePlan& plan,
               std::span<const EmbeddingTable> tables,
               BlockStorageFactory storage_factory = nullptr,
               const PlacementPolicy* placement = nullptr,
               const NodeSetup& node_setup = nullptr);
  ~StoreCluster();

  StoreCluster(const StoreCluster&) = delete;
  StoreCluster& operator=(const StoreCluster&) = delete;

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  /// Logical tables (the plan's numbering, which requests address).
  std::size_t num_tables() const { return table_vectors_.size(); }
  std::uint32_t table_vectors(TableId t) const { return table_vectors_[t]; }
  const ClusterConfig& config() const { return cfg_; }

  /// RAII read lease on the current placement map. A request routes and
  /// serves against lease.map() for its whole lifetime; a concurrent
  /// placement flip publishes a new map and BLOCKS until every lease taken
  /// against any older map releases, so donor-side state is only retired
  /// once no in-flight request can still reach it. Cheap (two striped
  /// atomic ops), move-only, and safe to hold across blocking serving
  /// calls.
  class PlacementLease {
   public:
    PlacementLease() = default;
    PlacementLease(PlacementLease&& o) noexcept
        : c_(o.c_), map_(o.map_), bank_(o.bank_), slot_(o.slot_) {
      o.c_ = nullptr;
    }
    PlacementLease& operator=(PlacementLease&& o) noexcept {
      if (this != &o) {
        release();
        c_ = o.c_;
        map_ = o.map_;
        bank_ = o.bank_;
        slot_ = o.slot_;
        o.c_ = nullptr;
      }
      return *this;
    }
    ~PlacementLease() { release(); }

    explicit operator bool() const { return c_ != nullptr; }
    const PlacementMap& map() const { return *map_; }

   private:
    friend class StoreCluster;
    void release() noexcept;
    const StoreCluster* c_ = nullptr;
    const PlacementMap* map_ = nullptr;
    std::uint32_t bank_ = 0;
    std::uint32_t slot_ = 0;
  };

  /// Take a read lease on the placement (see PlacementLease).
  PlacementLease placement_lease() const;

  /// The current placement map. Convenience for quiescent callers (tests,
  /// setup code): the reference is only stable while no rebalance can
  /// flip — concurrent readers must hold a placement_lease() instead.
  const PlacementMap& placement() const {
    return *placement_ptr_.load(std::memory_order_acquire);
  }

  /// Completed placement flips (one per finished migration).
  std::uint64_t placement_flips() const {
    return placement_flips_.load(std::memory_order_relaxed);
  }

  /// Router-outstanding sub-requests on node n — the kLeastOutstanding
  /// balancing signal, exposed so tests can pin its bookkeeping (a failed
  /// sub-request must decrement too, or the node is blacklisted forever).
  std::uint64_t node_outstanding(std::uint32_t n) const {
    return nodes_.at(n)->outstanding.load(std::memory_order_relaxed);
  }

  /// Begin a live migration of (table t, range range_idx)'s replica
  /// `replica` from its current node to `target_node` (cluster/rebalance.h
  /// — session lifecycle, rate limiting, crash ordering). One session at a
  /// time per cluster; throws std::logic_error if one is active, and
  /// std::invalid_argument for a self-move or a target already hosting the
  /// range.
  RebalanceSession begin_rebalance(TableId t, std::size_t range_idx,
                                   std::uint32_t replica,
                                   std::uint32_t target_node,
                                   const RepublishConfig& rate = {});

  Store& node(std::uint32_t n) { return *nodes_[n]->store; }
  const Store& node(std::uint32_t n) const { return *nodes_[n]->store; }

  /// The scatter-gather serving front end (cluster/router.h).
  ClusterRouter& router() { return *router_; }

  // --- Fault injection (serving path only; see file comment) ---
  void set_node_down(std::uint32_t n, bool down);
  void set_node_degraded(std::uint32_t n, double latency_multiplier);
  bool node_down(std::uint32_t n) const;
  double node_degrade(std::uint32_t n) const;

  // --- Metrics ---
  /// Cluster-wide rollup (per-node snapshots merged + router counters).
  ClusterMetrics metrics() const;
  /// Logical table t's counters, merged over its ranges and replicas.
  TableMetrics table_metrics(TableId t) const;

  // --- Retraining pushes (fan out to every replica of the table) ---
  /// One-shot in-place republish on every replica; returns the slowest
  /// replica's write-wave latency.
  double republish(TableId t, const EmbeddingTable& values, double day = 0.0);
  /// Rate-limited trickle republish on every replica (one session per
  /// (range, replica); split tables get per-range plan/value slices, which
  /// the returned push owns). `values` must stay valid until the push is
  /// done or destroyed — the sessions read from it lazily per wave.
  ClusterRepublish begin_trickle_republish(TableId t,
                                           const EmbeddingTable& values,
                                           const TablePlan& plan,
                                           const RepublishConfig& republish_cfg,
                                           double day = 0.0);

  /// Advance every node's simulated clock (arrival pacing).
  void advance_time_us(double delta);
  /// Node 0's clock (all nodes advance in lockstep through the cluster).
  double now_us() const;

  /// Epoch-reclaim pass on every table of every node; returns states freed.
  std::size_t reclaim_retired_states();
  std::size_t retired_states() const;

 private:
  friend class ClusterRouter;
  friend class RebalanceSession;

  struct Node {
    std::unique_ptr<Store> store;
    std::atomic<bool> down{false};
    std::atomic<double> degrade{1.0};
    /// Router-outstanding sub-requests (the kLeastOutstanding signal).
    std::atomic<std::uint64_t> outstanding{0};
  };

  /// Re-point (t, range_idx, replica) at (target_node, target_local) and
  /// flip: publish the new map and block until every lease on older maps
  /// drains. Range boundaries and counts are unchanged, so the router's
  /// flat per-range round-robin state stays valid across flips.
  void flip_range(TableId t, std::size_t range_idx, std::uint32_t replica,
                  std::uint32_t target_node, TableId target_local);
  /// Publish `next` and block until old-map leases drain (two-phase bank
  /// drain — see placement_lease()).
  void flip_placement(std::unique_ptr<const PlacementMap> next);
  bool lease_bank_drained(std::uint32_t bank) const;

  ClusterConfig cfg_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::uint32_t> table_vectors_;
  std::unique_ptr<ClusterRouter> router_;

  // --- Placement, behind reader epochs (the BandanaTable two-bank idiom:
  // leases enter a bank with a seq_cst increment then load the map pointer
  // seq_cst; a flip that misses an enter during its drain scan is globally
  // ordered before it, so that lease read the NEW map). ---
  static constexpr std::uint32_t kLeaseSlots = 16;
  struct alignas(64) LeaseSlot {
    std::atomic<std::uint64_t> entered{0};
    std::atomic<std::uint64_t> exited{0};
  };
  static std::uint32_t lease_slot();

  std::unique_ptr<const PlacementMap> placement_owner_;
  std::atomic<const PlacementMap*> placement_ptr_{nullptr};
  mutable LeaseSlot lease_banks_[2][kLeaseSlots];
  std::atomic<std::uint64_t> lease_gen_{0};
  /// Serializes placement flips (at most one migration completes at a
  /// time; begin_rebalance also guards with rebalance_active_).
  std::mutex flip_mu_;
  std::atomic<std::uint64_t> placement_flips_{0};
  std::atomic<bool> rebalance_active_{false};
};

}  // namespace bandana
