// Sharded insertion-position LRU (intra-table cache concurrency).
//
// Stripes a dense vector-id universe across N independent InsertionLru
// shards so that concurrent lookups touching different shards never
// contend. Each shard keeps the full insertion-point semantics of
// lru_cache.h — the same fractional insertion depths applied to the
// shard's own capacity — so positioned prefetch admission (paper §4.3.1)
// is preserved per shard. Capacity is split across shards proportionally
// to each shard's slice of the universe (largest-remainder rounding), so
// aggregate hit rates track the unsharded cache on skewed workloads.
//
// With one shard this class is byte-identical to a single InsertionLru:
// same hits, same eviction victims, same MRU→LRU order (the fidelity
// tests rely on this).
//
// Like InsertionLru, the class itself is NOT thread-safe: the caller
// (BandanaTable) holds one lock per shard and must hold the lock of
// shard_of(v) around any access/insert/erase of v. Whole-cache accessors
// (contents, size, rollup) are for tests and diagnostics and expect
// external quiescence.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/lru_cache.h"
#include "common/types.h"

namespace bandana {

/// Per-shard occupancy and traffic counters (aggregate with operator+=).
struct CacheShardStats {
  std::uint64_t size = 0;
  std::uint64_t capacity = 0;
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;

  CacheShardStats& operator+=(const CacheShardStats& o) {
    size += o.size;
    capacity += o.capacity;
    accesses += o.accesses;
    hits += o.hits;
    inserts += o.inserts;
    evictions += o.evictions;
    return *this;
  }
};

class ShardedInsertionLru {
 public:
  /// `shard_of[v]` assigns vector v to a shard in [0, num_shards); pass an
  /// empty vector with num_shards == 1 for the unsharded (seed) layout.
  /// `capacity` is the total entry budget; every shard receives at least 1
  /// entry, so the effective total (see capacity()) can exceed the request
  /// when capacity < num_shards.
  ShardedInsertionLru(std::uint32_t universe, std::uint64_t capacity,
                      std::vector<double> insertion_points = {0.0},
                      std::vector<std::uint32_t> shard_of = {},
                      std::uint32_t num_shards = 1);

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t shard_of(VectorId v) const { return shard_of_[v]; }
  /// The full id->shard mapping (e.g. to build a co-sharded shadow cache).
  const std::vector<std::uint32_t>& assignment() const { return shard_of_; }
  std::size_t num_insertion_points() const {
    return shards_.front().num_insertion_points();
  }

  /// Sum of per-shard capacities (== requested capacity unless clamped up).
  std::uint64_t capacity() const { return total_capacity_; }
  std::uint64_t shard_capacity(std::uint32_t s) const {
    return shards_[s].capacity();
  }

  // Single-entry operations: the caller must hold the lock of shard_of(v).
  bool contains(VectorId v) const {
    return shards_[shard_of_[v]].contains(local_id_[v]);
  }
  bool access(VectorId v);
  VectorId insert(VectorId v, std::size_t point = 0);
  bool erase(VectorId v);

  /// Occupancy + counters of one shard (caller holds that shard's lock).
  CacheShardStats shard_stats(std::uint32_t s) const;
  /// Aggregate over all shards (diagnostic; expects quiescence).
  CacheShardStats rollup() const;

  /// Whole-cache size / contents (tests; expect quiescence). contents()
  /// concatenates shards in index order, each MRU→LRU; with one shard this
  /// is exactly InsertionLru::contents().
  std::uint64_t size() const;
  std::vector<VectorId> contents() const;
  std::vector<VectorId> shard_contents(std::uint32_t s) const;

 private:
  std::vector<std::uint32_t> shard_of_;   // global id -> shard
  std::vector<VectorId> local_id_;        // global id -> dense id in shard
  std::vector<std::vector<VectorId>> global_of_;  // shard, local -> global
  std::vector<InsertionLru> shards_;
  std::vector<CacheShardStats> stats_;
  std::uint64_t total_capacity_ = 0;
};

}  // namespace bandana
