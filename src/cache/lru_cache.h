// Exact LRU queue with configurable insertion positions (paper §4.3.1).
//
// Bandana inserts application-requested vectors at the top (MRU end) of the
// eviction queue but may insert *prefetched* vectors lower — e.g. at the
// middle (position 0.5) — so speculative data cannot evict hot data. This
// class implements a single logical LRU list with K insertion points,
// realized as K contiguous segments delimited by marker nodes. Inserting at
// point j places the entry at depth floor(f_j * capacity); hits promote to
// the global MRU position; eviction takes the global LRU tail. All
// operations are O(#insertion points).
//
// The id universe is dense (VectorId < universe), so the index is a flat
// array rather than a hash table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace bandana {

class InsertionLru {
 public:
  /// `insertion_points` are fractions of capacity, sorted ascending; the
  /// first must be 0.0 (the MRU end). {0.0} gives a plain LRU.
  InsertionLru(std::uint32_t universe, std::uint64_t capacity,
               std::vector<double> insertion_points = {0.0});

  std::uint64_t size() const { return size_; }
  std::uint64_t capacity() const { return capacity_; }
  std::size_t num_insertion_points() const { return targets_.size(); }

  bool contains(VectorId v) const { return node_of_[v] >= 0; }

  /// If present: promote to global MRU and return true.
  bool access(VectorId v);

  /// Insert at insertion point `point` (default: MRU). The entry must not be
  /// present. Returns the evicted victim, or kInvalidVector if none.
  VectorId insert(VectorId v, std::size_t point = 0);

  /// Remove a specific entry (e.g. on table republish). Returns false if
  /// absent.
  bool erase(VectorId v);

  /// Entry ids from MRU to LRU (test/diagnostic; O(size)).
  std::vector<VectorId> contents() const;

 private:
  using NodeIdx = std::int32_t;
  static constexpr NodeIdx kNil = -1;

  struct Node {
    NodeIdx prev = kNil;
    NodeIdx next = kNil;
    VectorId id = kInvalidVector;
    std::int16_t segment = -1;  ///< -1 for markers and free nodes.
  };

  void link_after(NodeIdx pos, NodeIdx node);
  void unlink(NodeIdx node);
  /// Push overflow from segment s downward toward the tail.
  void cascade(std::size_t s);
  NodeIdx alloc_node();

  std::uint64_t capacity_;
  std::vector<Node> nodes_;       // [0..K-1]: segment markers, [K]: end sentinel
  std::vector<NodeIdx> node_of_;  // id -> node (or -1)
  std::vector<std::uint64_t> seg_size_;
  std::vector<std::uint64_t> targets_;  // per-segment capacity
  std::vector<NodeIdx> free_;
  std::uint64_t size_ = 0;
  std::size_t num_segments_;
  NodeIdx end_sentinel_;
};

}  // namespace bandana
