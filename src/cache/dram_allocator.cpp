#include "cache/dram_allocator.h"

#include <queue>

namespace bandana {

DramAllocation allocate_dram(const std::vector<HitRateCurve>& curves,
                             std::uint64_t total_vectors, std::uint64_t chunk) {
  DramAllocation out;
  out.per_table.assign(curves.size(), 0);
  if (curves.empty() || chunk == 0) return out;

  // Max-heap of (marginal hits for the next chunk, table).
  using Entry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<Entry> heap;
  for (std::size_t t = 0; t < curves.size(); ++t) {
    heap.emplace(curves[t].marginal_hits(0, chunk), t);
  }
  std::uint64_t remaining = total_vectors;
  while (remaining >= chunk && !heap.empty()) {
    auto [gain, t] = heap.top();
    heap.pop();
    if (gain == 0) {
      // No table benefits from more DRAM; stop early.
      break;
    }
    out.per_table[t] += chunk;
    out.expected_hits += gain;
    remaining -= chunk;
    heap.emplace(curves[t].marginal_hits(out.per_table[t], chunk), t);
  }
  return out;
}

DramAllocation allocate_uniform(const std::vector<HitRateCurve>& curves,
                                std::uint64_t total_vectors) {
  DramAllocation out;
  out.per_table.assign(curves.size(), 0);
  if (curves.empty()) return out;
  const std::uint64_t share = total_vectors / curves.size();
  for (std::size_t t = 0; t < curves.size(); ++t) {
    out.per_table[t] = share;
    out.expected_hits += curves[t].hits(share);
  }
  return out;
}

}  // namespace bandana
