// DRAM partitioning across embedding tables (paper §4.3.3; Dynacache-style
// greedy allocation, Cidon et al. HotCloud'15).
//
// Given per-table hit-rate curves (exact or mini-cache approximated), split
// a total DRAM budget (in vectors) to maximize total hits. The curves we
// observe are concave ("convex" in the paper's miss-curve phrasing), so a
// greedy marginal-utility allocation in fixed-size chunks is optimal up to
// chunk granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/stack_distance.h"

namespace bandana {

struct DramAllocation {
  std::vector<std::uint64_t> per_table;  ///< Vectors assigned to each table.
  std::uint64_t expected_hits = 0;       ///< Sum of curve hits at allocation.
};

/// Greedy: repeatedly give `chunk` vectors to the table with the highest
/// marginal hit gain. Tables may end with zero allocation.
DramAllocation allocate_dram(const std::vector<HitRateCurve>& curves,
                             std::uint64_t total_vectors,
                             std::uint64_t chunk = 1024);

/// Uniform split (ablation baseline).
DramAllocation allocate_uniform(const std::vector<HitRateCurve>& curves,
                                std::uint64_t total_vectors);

}  // namespace bandana
