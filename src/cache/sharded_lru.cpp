#include "cache/sharded_lru.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace bandana {

namespace {

/// Split `capacity` across shards proportionally to `count` (largest
/// remainder), then raise empties to 1 entry, stealing from the largest
/// shares while any can spare one.
std::vector<std::uint64_t> split_capacity(
    std::uint64_t capacity, const std::vector<std::uint32_t>& count) {
  const std::size_t n = count.size();
  std::vector<std::uint64_t> caps(n, 0);
  if (n == 1) {
    caps[0] = capacity;
    return caps;
  }
  const std::uint64_t universe =
      std::accumulate(count.begin(), count.end(), std::uint64_t{0});
  std::uint64_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> remainder(n);
  for (std::size_t s = 0; s < n; ++s) {
    const double exact =
        universe == 0
            ? static_cast<double>(capacity) / static_cast<double>(n)
            : static_cast<double>(capacity) * static_cast<double>(count[s]) /
                  static_cast<double>(universe);
    caps[s] = static_cast<std::uint64_t>(exact);
    assigned += caps[s];
    remainder[s] = {exact - static_cast<double>(caps[s]), s};
  }
  std::sort(remainder.begin(), remainder.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = 0; assigned < capacity; ++i) {
    ++caps[remainder[i % n].second];
    ++assigned;
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (caps[s] > 0) continue;
    const auto richest = std::max_element(caps.begin(), caps.end());
    if (*richest > 1) --*richest;  // else the total grows past `capacity`
    caps[s] = 1;
  }
  return caps;
}

}  // namespace

ShardedInsertionLru::ShardedInsertionLru(std::uint32_t universe,
                                         std::uint64_t capacity,
                                         std::vector<double> insertion_points,
                                         std::vector<std::uint32_t> shard_of,
                                         std::uint32_t num_shards)
    : shard_of_(std::move(shard_of)) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedInsertionLru: zero shards");
  }
  if (capacity == 0) {
    throw std::invalid_argument("ShardedInsertionLru: capacity 0");
  }
  if (shard_of_.empty()) {
    if (num_shards != 1) {
      throw std::invalid_argument(
          "ShardedInsertionLru: shard assignment required for >1 shard");
    }
    shard_of_.assign(universe, 0);
  }
  if (shard_of_.size() != universe) {
    throw std::invalid_argument(
        "ShardedInsertionLru: shard assignment size mismatch");
  }

  std::vector<std::uint32_t> count(num_shards, 0);
  local_id_.resize(universe);
  for (VectorId v = 0; v < universe; ++v) {
    if (shard_of_[v] >= num_shards) {
      throw std::invalid_argument("ShardedInsertionLru: shard out of range");
    }
    local_id_[v] = count[shard_of_[v]]++;
  }

  const std::vector<std::uint64_t> caps = split_capacity(capacity, count);
  shards_.reserve(num_shards);
  global_of_.resize(num_shards);
  stats_.resize(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    shards_.emplace_back(count[s], caps[s], insertion_points);
    global_of_[s].resize(count[s]);
    stats_[s].capacity = caps[s];
    total_capacity_ += caps[s];
  }
  for (VectorId v = 0; v < universe; ++v) {
    global_of_[shard_of_[v]][local_id_[v]] = v;
  }
}

bool ShardedInsertionLru::access(VectorId v) {
  const std::uint32_t s = shard_of_[v];
  ++stats_[s].accesses;
  if (!shards_[s].access(local_id_[v])) return false;
  ++stats_[s].hits;
  return true;
}

VectorId ShardedInsertionLru::insert(VectorId v, std::size_t point) {
  const std::uint32_t s = shard_of_[v];
  ++stats_[s].inserts;
  const VectorId local_evicted = shards_[s].insert(local_id_[v], point);
  if (local_evicted == kInvalidVector) return kInvalidVector;
  ++stats_[s].evictions;
  return global_of_[s][local_evicted];
}

bool ShardedInsertionLru::erase(VectorId v) {
  return shards_[shard_of_[v]].erase(local_id_[v]);
}

CacheShardStats ShardedInsertionLru::shard_stats(std::uint32_t s) const {
  CacheShardStats stats = stats_[s];
  stats.size = shards_[s].size();
  return stats;
}

CacheShardStats ShardedInsertionLru::rollup() const {
  CacheShardStats total;
  for (std::uint32_t s = 0; s < num_shards(); ++s) total += shard_stats(s);
  return total;
}

std::uint64_t ShardedInsertionLru::size() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) n += shard.size();
  return n;
}

std::vector<VectorId> ShardedInsertionLru::shard_contents(
    std::uint32_t s) const {
  std::vector<VectorId> out = shards_[s].contents();
  for (VectorId& v : out) v = global_of_[s][v];
  return out;
}

std::vector<VectorId> ShardedInsertionLru::contents() const {
  std::vector<VectorId> out;
  out.reserve(size());
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    const auto shard = shard_contents(s);
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

}  // namespace bandana
