#include "cache/mini_cache.h"

#include <algorithm>

namespace bandana {

Trace sample_trace(const Trace& trace, double rate, std::uint64_t salt) {
  Trace out;
  std::vector<VectorId> kept;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    kept.clear();
    for (VectorId v : trace.query(q)) {
      if (in_sample(v, rate, salt)) kept.push_back(v);
    }
    if (!kept.empty()) out.add_query(kept);
  }
  return out;
}

ThresholdChoice tune_threshold(const Trace& trace, const BlockLayout& layout,
                               std::span<const std::uint32_t> access_counts,
                               std::uint64_t capacity,
                               const MiniCacheTunerConfig& config) {
  const Trace mini = sample_trace(trace, config.sampling_rate, config.salt);
  const auto mini_capacity = std::max<std::uint64_t>(
      16, static_cast<std::uint64_t>(static_cast<double>(capacity) *
                                     config.sampling_rate));

  ThresholdChoice best;
  bool first = true;
  for (std::uint32_t t : config.candidates) {
    CachePolicyConfig pc;
    pc.capacity_vectors = mini_capacity;
    pc.policy = PrefetchPolicy::kThreshold;
    pc.access_threshold = t;
    const CacheSimResult r = simulate_cache(mini, layout, pc, access_counts);
    // Minimize NVM block reads; ties break toward the higher (more
    // conservative) threshold, which is safer on the full cache.
    if (first || r.nvm_block_reads <= best.mini_result.nvm_block_reads) {
      best.threshold = t;
      best.mini_result = r;
      first = false;
    }
  }
  return best;
}

HitRateCurve approximate_hit_rate_curve(const Trace& trace,
                                        std::uint32_t num_vectors, double rate,
                                        std::uint64_t salt) {
  if (rate >= 1.0) return compute_hit_rate_curve(trace, num_vectors);
  const Trace mini = sample_trace(trace, rate, salt);
  return compute_hit_rate_curve(mini, num_vectors).scaled(rate);
}

}  // namespace bandana
