#include "cache/cache_sim.h"

#include <cassert>
#include <memory>

#include "cache/lru_cache.h"

namespace bandana {

const char* to_string(PrefetchPolicy p) {
  switch (p) {
    case PrefetchPolicy::kNone: return "none";
    case PrefetchPolicy::kAll: return "all";
    case PrefetchPolicy::kPosition: return "position";
    case PrefetchPolicy::kShadow: return "shadow";
    case PrefetchPolicy::kShadowPosition: return "shadow+position";
    case PrefetchPolicy::kThreshold: return "threshold";
  }
  return "?";
}

CacheSimResult simulate_cache(const Trace& trace, const BlockLayout& layout,
                              const CachePolicyConfig& config,
                              std::span<const std::uint32_t> access_counts) {
  const std::uint32_t universe = layout.num_vectors();
  const bool uses_position = config.policy == PrefetchPolicy::kPosition ||
                             config.policy == PrefetchPolicy::kShadowPosition;
  const bool uses_shadow = config.policy == PrefetchPolicy::kShadow ||
                           config.policy == PrefetchPolicy::kShadowPosition;
  if (config.policy == PrefetchPolicy::kThreshold) {
    assert(access_counts.size() == universe &&
           "kThreshold needs per-vector SHP access counts");
  }

  const std::uint64_t capacity =
      config.unlimited ? universe : config.capacity_vectors;
  std::vector<double> points{0.0};
  std::size_t low_point = 0;
  if (uses_position && config.insertion_position > 0.0) {
    points.push_back(config.insertion_position);
    low_point = 1;
  }
  InsertionLru cache(universe, capacity, points);

  std::unique_ptr<InsertionLru> shadow;
  if (uses_shadow) {
    const auto shadow_cap = static_cast<std::uint64_t>(
        static_cast<double>(capacity) * config.shadow_multiplier);
    shadow = std::make_unique<InsertionLru>(universe,
                                            std::max<std::uint64_t>(1, shadow_cap));
  }

  // Tracks which cached vectors were admitted via prefetch and not yet
  // touched by the application (to attribute prefetch_hits).
  std::vector<std::uint8_t> prefetched(universe, 0);

  // Per-query dedup stamps.
  std::vector<std::uint32_t> vec_epoch(universe, 0);
  std::vector<std::uint32_t> block_epoch(layout.num_blocks(), 0);
  std::uint32_t epoch = 0;

  CacheSimResult result;
  result.lookups = trace.total_lookups();

  auto admit_prefetch = [&](VectorId u) {
    switch (config.policy) {
      case PrefetchPolicy::kNone:
        return;
      case PrefetchPolicy::kAll:
        cache.insert(u, 0);
        break;
      case PrefetchPolicy::kPosition:
        cache.insert(u, low_point);
        break;
      case PrefetchPolicy::kShadow:
        if (!shadow->contains(u)) return;
        cache.insert(u, 0);
        break;
      case PrefetchPolicy::kShadowPosition:
        cache.insert(u, shadow->contains(u) ? 0 : low_point);
        break;
      case PrefetchPolicy::kThreshold:
        if (access_counts[u] <= config.access_threshold) return;
        cache.insert(u, 0);
        break;
    }
    prefetched[u] = 1;
    ++result.prefetch_inserted;
  };

  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    ++epoch;
    for (VectorId v : trace.query(q)) {
      if (vec_epoch[v] == epoch) continue;  // duplicate within the query
      vec_epoch[v] = epoch;
      ++result.unique_lookups;

      if (shadow) {
        // The shadow cache sees only application reads, never prefetches.
        if (!shadow->access(v)) shadow->insert(v);
      }

      if (cache.access(v)) {
        ++result.hits;
        if (prefetched[v]) {
          ++result.prefetch_hits;
          prefetched[v] = 0;  // count first-touch only
        }
        continue;
      }

      // Miss. One block read per block per query (batched lookups), unless
      // batching is disabled (the paper's single-vector-read baseline).
      const BlockId b = layout.block_of(v);
      const bool block_already_read =
          config.batch_dedup && block_epoch[b] == epoch;
      if (!block_already_read) {
        block_epoch[b] = epoch;
        ++result.nvm_block_reads;
      }
      // The requested vector always enters at the MRU end.
      cache.insert(v, 0);
      prefetched[v] = 0;
      // Prefetch admission for co-located vectors (only on a fresh read;
      // if the block was read earlier in this query the policy already ran).
      if (!block_already_read && config.policy != PrefetchPolicy::kNone) {
        for (VectorId u : layout.block_members(b)) {
          if (u == v || cache.contains(u)) continue;
          admit_prefetch(u);
        }
      }
    }
  }
  return result;
}

}  // namespace bandana
