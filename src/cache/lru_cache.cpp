#include "cache/lru_cache.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace bandana {

InsertionLru::InsertionLru(std::uint32_t universe, std::uint64_t capacity,
                           std::vector<double> insertion_points)
    : capacity_(capacity), node_of_(universe, kNil) {
  if (capacity == 0) throw std::invalid_argument("InsertionLru: capacity 0");
  if (insertion_points.empty() || insertion_points.front() != 0.0) {
    throw std::invalid_argument("InsertionLru: first insertion point must be 0");
  }
  for (std::size_t i = 1; i < insertion_points.size(); ++i) {
    if (insertion_points[i] <= insertion_points[i - 1] ||
        insertion_points[i] >= 1.0) {
      throw std::invalid_argument("InsertionLru: points must be ascending in [0,1)");
    }
  }
  num_segments_ = insertion_points.size();

  // Segment s spans depths [floor(f_s*C), floor(f_{s+1}*C)).
  targets_.resize(num_segments_);
  std::vector<std::uint64_t> bounds(num_segments_ + 1);
  for (std::size_t s = 0; s < num_segments_; ++s) {
    bounds[s] = static_cast<std::uint64_t>(
        std::floor(insertion_points[s] * static_cast<double>(capacity)));
  }
  bounds[num_segments_] = capacity;
  for (std::size_t s = 0; s < num_segments_; ++s) {
    targets_[s] = bounds[s + 1] - bounds[s];
  }
  seg_size_.assign(num_segments_, 0);

  // Marker nodes 0..K-1, end sentinel K, then the entry pool.
  nodes_.resize(num_segments_ + 1);
  end_sentinel_ = static_cast<NodeIdx>(num_segments_);
  for (std::size_t i = 0; i <= num_segments_; ++i) {
    nodes_[i].prev = static_cast<NodeIdx>(i) - 1;  // node 0 gets kNil
    nodes_[i].next =
        i == num_segments_ ? kNil : static_cast<NodeIdx>(i) + 1;
  }
}

InsertionLru::NodeIdx InsertionLru::alloc_node() {
  if (!free_.empty()) {
    const NodeIdx n = free_.back();
    free_.pop_back();
    return n;
  }
  nodes_.emplace_back();
  return static_cast<NodeIdx>(nodes_.size() - 1);
}

void InsertionLru::link_after(NodeIdx pos, NodeIdx node) {
  Node& p = nodes_[pos];
  Node& n = nodes_[node];
  n.prev = pos;
  n.next = p.next;
  if (p.next != kNil) nodes_[p.next].prev = node;
  p.next = node;
}

void InsertionLru::unlink(NodeIdx node) {
  Node& n = nodes_[node];
  if (n.prev != kNil) nodes_[n.prev].next = n.next;
  if (n.next != kNil) nodes_[n.next].prev = n.prev;
  n.prev = n.next = kNil;
}

void InsertionLru::cascade(std::size_t s) {
  // Shift one node at a time from an over-full segment to the head of the
  // next; amortized O(K) because each insert adds a single node.
  for (; s + 1 < num_segments_; ++s) {
    if (seg_size_[s] <= targets_[s]) return;
    // Last real node of segment s is the one before marker s+1.
    const NodeIdx victim = nodes_[static_cast<NodeIdx>(s) + 1].prev;
    assert(victim > end_sentinel_);  // must be a real node
    unlink(victim);
    link_after(static_cast<NodeIdx>(s) + 1, victim);
    nodes_[victim].segment = static_cast<std::int16_t>(s + 1);
    --seg_size_[s];
    ++seg_size_[s + 1];
  }
}

bool InsertionLru::access(VectorId v) {
  const NodeIdx node = node_of_[v];
  if (node == kNil) return false;
  const auto seg = static_cast<std::size_t>(nodes_[node].segment);
  unlink(node);
  --seg_size_[seg];
  link_after(0, node);
  nodes_[node].segment = 0;
  ++seg_size_[0];
  cascade(0);
  return true;
}

VectorId InsertionLru::insert(VectorId v, std::size_t point) {
  assert(point < num_segments_);
  assert(node_of_[v] == kNil && "insert of an already-cached id");
  // Segments with zero capacity (e.g. position 0.99 of a tiny cache)
  // degrade to the previous segment.
  while (point > 0 && targets_[point] == 0) --point;

  VectorId evicted = kInvalidVector;
  if (size_ == capacity_) {
    // Global LRU tail: last real node, walking back over markers.
    NodeIdx tail = nodes_[end_sentinel_].prev;
    while (tail != kNil && tail <= end_sentinel_) tail = nodes_[tail].prev;
    assert(tail != kNil);
    evicted = nodes_[tail].id;
    --seg_size_[static_cast<std::size_t>(nodes_[tail].segment)];
    unlink(tail);
    node_of_[evicted] = kNil;
    free_.push_back(tail);
    --size_;
  }

  const NodeIdx node = alloc_node();
  nodes_[node].id = v;
  nodes_[node].segment = static_cast<std::int16_t>(point);
  link_after(static_cast<NodeIdx>(point), node);
  node_of_[v] = node;
  ++seg_size_[point];
  ++size_;
  cascade(point);
  return evicted;
}

bool InsertionLru::erase(VectorId v) {
  const NodeIdx node = node_of_[v];
  if (node == kNil) return false;
  --seg_size_[static_cast<std::size_t>(nodes_[node].segment)];
  unlink(node);
  node_of_[v] = kNil;
  free_.push_back(node);
  --size_;
  return true;
}

std::vector<VectorId> InsertionLru::contents() const {
  std::vector<VectorId> out;
  out.reserve(size_);
  for (NodeIdx n = nodes_[0].next; n != kNil; n = nodes_[n].next) {
    if (n > end_sentinel_) out.push_back(nodes_[n].id);
  }
  return out;
}

}  // namespace bandana
