// Cache replay simulator — the measurement engine behind Figs. 6, 8-16 and
// Tables 1-2.
//
// Replays a trace against a DRAM cache of embedding vectors backed by a
// block-partitioned NVM table, counting 4 KB NVM block reads. Queries are
// batched: within one query, misses that fall in the same block cost one
// block read (this is exactly the fanout SHP minimizes). On each block read
// the admission policy decides which of the co-located vectors to keep:
//
//   kNone            — cache only the requested vector (the paper baseline).
//   kAll             — cache all co-located vectors at the MRU end (§4.3 Fig. 10).
//   kPosition        — cache all, but at queue depth `insertion_position`
//                      (§4.3.1 Fig. 11a).
//   kShadow          — cache a prefetched vector at MRU only if a shadow
//                      LRU of past application reads contains it (Fig. 11b).
//   kShadowPosition  — shadow hit -> MRU, shadow miss -> insertion_position
//                      (Fig. 11c).
//   kThreshold       — cache a prefetched vector only if its SHP-run access
//                      count exceeds `access_threshold` (§4.3.2 Fig. 12 —
//                      Bandana's production policy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "partition/layout.h"
#include "trace/trace.h"

namespace bandana {

enum class PrefetchPolicy {
  kNone,
  kAll,
  kPosition,
  kShadow,
  kShadowPosition,
  kThreshold,
};

const char* to_string(PrefetchPolicy p);

struct CachePolicyConfig {
  std::uint64_t capacity_vectors = 80'000;
  PrefetchPolicy policy = PrefetchPolicy::kNone;
  /// Queue depth fraction for kPosition / kShadowPosition (0 = MRU).
  double insertion_position = 0.5;
  /// Shadow cache size as a multiple of the real cache size (Fig. 11b).
  double shadow_multiplier = 1.5;
  /// Admission threshold t for kThreshold: prefetch only vectors whose
  /// SHP-run access count is strictly greater than t.
  std::uint32_t access_threshold = 10;
  /// Unlimited cache (no evictions), for the §4.2 experiments.
  bool unlimited = false;
  /// Batched queries: misses of one query that fall in the same block share
  /// one 4 KB read (how Bandana issues IO — and the benefit partitioning
  /// creates even before any prefetched vector is *retained*). The paper's
  /// baseline policy (§4.1) issues an independent NVM read per vector:
  /// set batch_dedup = false to model it.
  bool batch_dedup = true;
};

struct CacheSimResult {
  std::uint64_t lookups = 0;         ///< Total vector lookups replayed.
  std::uint64_t unique_lookups = 0;  ///< Deduplicated within each query.
  std::uint64_t hits = 0;            ///< Unique lookups served from DRAM.
  std::uint64_t nvm_block_reads = 0; ///< 4 KB reads issued to NVM.
  std::uint64_t prefetch_inserted = 0;
  std::uint64_t prefetch_hits = 0;   ///< Hits on vectors cached via prefetch.

  double hit_rate() const {
    return unique_lookups ? static_cast<double>(hits) /
                                static_cast<double>(unique_lookups)
                          : 0.0;
  }
  /// Application bytes per NVM byte read, given vector/block sizes.
  double effective_bandwidth(std::size_t vector_bytes,
                             std::size_t block_bytes) const {
    if (nvm_block_reads == 0) return 0.0;
    return static_cast<double>(unique_lookups - hits) *
           static_cast<double>(vector_bytes) /
           (static_cast<double>(nvm_block_reads) *
            static_cast<double>(block_bytes));
  }
};

/// Replay `trace` under `config`. `access_counts` is required for
/// kThreshold (per-vector SHP-run query counts; see ShpResult).
CacheSimResult simulate_cache(const Trace& trace, const BlockLayout& layout,
                              const CachePolicyConfig& config,
                              std::span<const std::uint32_t> access_counts = {});

/// The paper's §4.1 baseline policy: cache single requested vectors, one
/// independent NVM read per missed vector (no batching, no prefetch).
inline CachePolicyConfig baseline_policy(std::uint64_t capacity,
                                         bool unlimited = false) {
  CachePolicyConfig pc;
  pc.capacity_vectors = capacity;
  pc.policy = PrefetchPolicy::kNone;
  pc.unlimited = unlimited;
  pc.batch_dedup = false;
  return pc;
}

/// Paper's headline metric: block reads of the baseline policy divided by
/// block reads of the evaluated policy, minus 1.
inline double effective_bw_increase(std::uint64_t baseline_reads,
                                    std::uint64_t policy_reads) {
  if (policy_reads == 0) return 0.0;
  return static_cast<double>(baseline_reads) /
             static_cast<double>(policy_reads) -
         1.0;
}

}  // namespace bandana
