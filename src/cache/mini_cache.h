// Miniature-cache simulation (paper §4.3.3, Table 2, Fig. 14; after
// Waldspurger et al., ATC'17).
//
// Bandana picks the prefetch admission threshold t per table by simulating
// the cache at many candidate thresholds — but on a spatially-sampled slice
// of the workload: vector v is in the sample iff hash(v) < rate * 2^64
// (SHARDS), and the simulated capacity is rate * capacity. A 0.1 % sample
// tracks ~1/1000th of the vectors yet selects nearly the same threshold as
// a full-size simulation (Table 2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cache_sim.h"
#include "partition/layout.h"
#include "trace/stack_distance.h"
#include "trace/trace.h"

namespace bandana {

/// True iff vector v falls in the spatial sample at `rate`.
inline bool in_sample(VectorId v, double rate, std::uint64_t salt) {
  // hash < rate * 2^64, computed without overflow at rate == 1.
  if (rate >= 1.0) return true;
  const std::uint64_t h = splitmix64(static_cast<std::uint64_t>(v) ^ salt);
  return static_cast<double>(h) <
         rate * 18446744073709551616.0 /* 2^64 */;
}

/// Filter a trace to sampled vectors (queries keep their boundaries;
/// queries that become empty are dropped).
Trace sample_trace(const Trace& trace, double rate, std::uint64_t salt);

struct ThresholdChoice {
  std::uint32_t threshold = 0;
  CacheSimResult mini_result;  ///< Result of the winning mini simulation.
};

struct MiniCacheTunerConfig {
  double sampling_rate = 0.001;
  std::uint64_t salt = 0x5A17;
  /// Candidate admission thresholds to simulate (paper sweeps 5..20).
  std::vector<std::uint32_t> candidates{0, 5, 10, 15, 20};
};

/// Pick the admission threshold maximizing effective bandwidth (minimizing
/// NVM block reads) for `capacity` using miniature caches.
ThresholdChoice tune_threshold(const Trace& trace, const BlockLayout& layout,
                               std::span<const std::uint32_t> access_counts,
                               std::uint64_t capacity,
                               const MiniCacheTunerConfig& config);

/// Approximate a table's LRU hit-rate curve from a sampled trace
/// (SHARDS-style scaling); rate == 1 gives the exact curve.
HitRateCurve approximate_hit_rate_curve(const Trace& trace,
                                        std::uint32_t num_vectors, double rate,
                                        std::uint64_t salt = 0x5A17);

}  // namespace bandana
