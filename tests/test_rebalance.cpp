// Live shard rebalancing: online range migration with crash-safe placement
// flips (cluster/rebalance.h).
//
// The serving invariant under test: a migration streams a (table, range,
// replica) donor -> target in rate-limited waves WHILE the donor serves,
// then flips the placement entry behind reader leases — so every lookup
// issued at any point before, during, or after the move returns the exact
// table bytes, with zero failed lookups and no torn routing. The crash
// matrix pins the durability ordering (target pending-install commit,
// streamed waves, target finish commit, placement flip, donor retire
// commit): a kill-9 at EVERY write-wave boundary and on both sides of both
// manifest renames must reopen to at least one committed replica of every
// vector of the migrating range — never a half-table, never data loss.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/placement.h"
#include "cluster/rebalance.h"
#include "cluster/router.h"
#include "cluster/store_cluster.h"
#include "common/rng.h"
#include "core/manifest.h"
#include "core/store_builder.h"
#include "nvm/block_storage.h"
#include "partition/layout.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

constexpr std::size_t kVecBytes = 128;  // dim 32 x fp32
constexpr std::uint32_t kVpb = 32;      // 4 KB blocks / 128 B vectors

TableWorkloadConfig table_config(std::uint32_t vectors) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = vectors;
  cfg.dim = 32;
  cfg.mean_lookups_per_query = 10;
  cfg.num_profiles = 64;
  return cfg;
}

StoreConfig store_config() {
  StoreConfig cfg;
  cfg.simulate_timing = false;
  cfg.cache_shards = 1;
  return cfg;
}

TablePolicy test_policy() {
  TablePolicy pol;
  pol.cache_vectors = 256;
  pol.policy = PrefetchPolicy::kNone;
  return pol;
}

TablePlan plan_of(std::uint32_t vectors, std::uint64_t layout_seed) {
  return TablePlan{layout_seed == 0
                       ? BlockLayout::identity(vectors, kVpb)
                       : BlockLayout::random(vectors, kVpb, layout_seed),
                   /*access_counts=*/{}, test_policy(),
                   /*shp_train_fanout=*/0.0};
}

/// Two tables with distinct value sets and layouts.
struct Model {
  StorePlan plan;
  std::vector<EmbeddingTable> values;
};

Model make_model(std::uint32_t vectors) {
  Model m;
  m.values.push_back(TraceGenerator(table_config(vectors), 1).make_embeddings());
  m.values.push_back(TraceGenerator(table_config(vectors), 2).make_embeddings());
  m.plan.tables.push_back(plan_of(vectors, 0));
  m.plan.tables.push_back(plan_of(vectors, 7));
  return m;
}

ClusterConfig cluster_config(std::uint32_t nodes, std::uint32_t replicas,
                             std::uint32_t hot_tables) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replicas = replicas;
  cfg.hot_tables = hot_tables;
  cfg.store = store_config();
  return cfg;
}

/// Deterministic placement for migration tests: table t lives whole on
/// node_of[t], one replica. Makes donor/target known up front instead of
/// reverse-engineering the hash policy.
class FixedPlacement final : public PlacementPolicy {
 public:
  explicit FixedPlacement(std::vector<std::uint32_t> node_of)
      : node_of_(std::move(node_of)) {}

  PlacementMap place(const StorePlan& plan,
                     std::span<const EmbeddingTable> tables,
                     const ClusterConfig&) const override {
    PlacementMap pm;
    pm.tables.resize(plan.tables.size());
    for (std::size_t t = 0; t < plan.tables.size(); ++t) {
      PlacementMap::Range r;
      r.lo = 0;
      r.hi = tables[t].num_vectors();
      r.nodes = {node_of_.at(t)};
      pm.tables[t].push_back(std::move(r));
    }
    return pm;
  }
  const char* name() const override { return "fixed"; }

 private:
  std::vector<std::uint32_t> node_of_;
};

bool bytes_match(const EmbeddingTable& values, VectorId v,
                 const std::byte* got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got, want.data(), want.size()) == 0;
}

/// Sweep every vector of every table through the router and demand exact
/// bytes — the post-migration ground truth check.
void expect_router_serves_model(StoreCluster& c, const Model& m) {
  for (TableId t = 0; t < m.values.size(); ++t) {
    const std::uint32_t n = m.values[t].num_vectors();
    for (std::uint32_t lo = 0; lo < n; lo += 256) {
      std::vector<VectorId> ids(std::min<std::uint32_t>(256, n - lo));
      std::iota(ids.begin(), ids.end(), lo);
      MultiGetRequest req;
      req.add(t, ids);
      const ClusterMultiGetResult got = c.router().multi_get(req);
      ASSERT_TRUE(got.complete());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_TRUE(bytes_match(m.values[t], ids[i],
                                got.result.vectors[0].data() + i * kVecBytes))
            << "table " << t << " vector " << ids[i];
      }
    }
  }
}

// --- Fault-free migration: every lookup served, bytes move intact --------

TEST(Rebalance, MigrationServesEveryLookupAndMovesTheRange) {
  const Model m = make_model(2048);
  const ClusterConfig ccfg = cluster_config(2, 1, 0);
  const FixedPlacement fixed({0, 1});
  StoreCluster cluster(ccfg, m.plan, m.values, nullptr, &fixed);
  ASSERT_EQ(cluster.placement().tables[0][0].nodes,
            std::vector<std::uint32_t>{0});
  const TableId donor_local = cluster.placement().tables[0][0].local_ids[0];

  RepublishConfig rate;
  rate.blocks_per_interval = 16;  // 64-block table -> at least 4 waves
  rate.interval_us = 100.0;
  RebalanceSession s = cluster.begin_rebalance(0, 0, 0, 1, rate);
  EXPECT_EQ(s.donor(), 0u);
  EXPECT_EQ(s.target(), 1u);
  EXPECT_EQ(s.total_blocks(), 64u);

  // Serve live traffic against BOTH tables while the move streams; the
  // donor keeps serving table 0 until the flip, and no request ever fails
  // or reads torn bytes.
  TraceGenerator gen(table_config(2048), 9);
  const Trace trace = gen.generate(200);
  std::size_t q = 0;
  std::uint64_t rate_limited_pumps = 0;
  while (!s.done()) {
    MultiGetRequest req;
    req.add(0, trace.query(q % trace.num_queries()));
    req.add(1, trace.query((q + 1) % trace.num_queries()));
    ++q;
    const ClusterMultiGetResult got = cluster.router().multi_get(req);
    ASSERT_TRUE(got.complete());
    for (std::size_t g = 0; g < req.gets.size(); ++g) {
      const auto& get = req.gets[g];
      for (std::size_t i = 0; i < get.ids.size(); ++i) {
        ASSERT_TRUE(bytes_match(m.values[get.table], get.ids[i],
                                got.result.vectors[g].data() + i * kVecBytes));
      }
    }
    if (s.pump() == 0 && !s.done()) {
      ++rate_limited_pumps;
      cluster.advance_time_us(rate.interval_us);
    }
  }
  EXPECT_EQ(s.streamed_blocks(), 64u);
  EXPECT_GE(s.waves(), 4u);
  EXPECT_GT(rate_limited_pumps, 0u);  // the limiter actually gated the move
  EXPECT_GT(cluster.node(0).total_metrics().lookups, 0u);  // donor stayed live

  // The placement entry flipped exactly once and now names the target.
  EXPECT_EQ(cluster.placement_flips(), 1u);
  const PlacementMap::Range& r = cluster.placement().tables[0][0];
  EXPECT_EQ(r.nodes, std::vector<std::uint32_t>{1});
  EXPECT_EQ(r.local_ids[0], s.target_local());
  EXPECT_TRUE(cluster.node(0).table_retired(donor_local));

  // Migration accounting landed on the right sides.
  EXPECT_EQ(cluster.node(0).store_metrics().migration_read_blocks, 64u);
  EXPECT_EQ(cluster.node(0).store_metrics().tables_retired, 1u);
  EXPECT_EQ(cluster.node(1).store_metrics().migration_write_blocks, 64u);
  EXPECT_EQ(cluster.node(1).store_metrics().table_installs, 1u);
  EXPECT_EQ(cluster.metrics().router.failed_lookups, 0u);

  expect_router_serves_model(cluster, m);

  // Byte equivalence against a cold-built cluster with the post-move
  // placement: the migrated cluster serves the exact bytes a cluster built
  // that way from scratch would.
  const FixedPlacement moved({1, 1});
  StoreCluster cold(ccfg, m.plan, m.values, nullptr, &moved);
  for (std::size_t i = 0; i < 50; ++i) {
    MultiGetRequest req;
    req.add(0, trace.query(i)).add(1, trace.query(i + 50));
    const ClusterMultiGetResult a = cluster.router().multi_get(req);
    const ClusterMultiGetResult b = cold.router().multi_get(req);
    ASSERT_EQ(a.result.vectors, b.result.vectors) << "request " << i;
  }
}

TEST(Rebalance, AbandonedSessionKeepsDonorServingAndIsRestartable) {
  const Model m = make_model(2048);
  const ClusterConfig ccfg = cluster_config(2, 1, 0);
  const FixedPlacement fixed({0, 1});
  StoreCluster cluster(ccfg, m.plan, m.values, nullptr, &fixed);

  RepublishConfig rate;
  rate.blocks_per_interval = 8;
  rate.interval_us = 100.0;
  {
    RebalanceSession s = cluster.begin_rebalance(0, 0, 0, 1, rate);
    EXPECT_GT(s.pump(), 0u);
    EXPECT_FALSE(s.done());
    // Destroyed mid-stream: the move is abandoned.
  }
  // Nothing flipped, the donor still owns and serves the range, and the
  // target kept no half-table.
  EXPECT_EQ(cluster.placement_flips(), 0u);
  EXPECT_EQ(cluster.placement().tables[0][0].nodes,
            std::vector<std::uint32_t>{0});
  EXPECT_FALSE(cluster.node(0).table_retired(0));
  EXPECT_EQ(cluster.node(1).num_tables(), 1u);
  expect_router_serves_model(cluster, m);

  // The abandon released both the cluster slot and the donor claim: a new
  // session starts cleanly and completes.
  RebalanceSession again = cluster.begin_rebalance(0, 0, 0, 1, rate);
  again.run_to_completion();
  EXPECT_TRUE(again.done());
  EXPECT_EQ(cluster.placement_flips(), 1u);
  expect_router_serves_model(cluster, m);
}

TEST(Rebalance, BeginValidationAndSingleSessionGuard) {
  const Model m = make_model(2048);
  // 3 nodes, both tables hot with 2 replicas: every range leaves exactly
  // one node free to be a legal target.
  StoreCluster cluster(cluster_config(3, 2, 2), m.plan, m.values);
  const PlacementMap::Range r = cluster.placement().tables[0][0];
  ASSERT_EQ(r.nodes.size(), 2u);
  std::uint32_t free_node = 0;
  for (std::uint32_t n = 0; n < 3; ++n) {
    if (n != r.nodes[0] && n != r.nodes[1]) free_node = n;
  }

  EXPECT_THROW(cluster.begin_rebalance(99, 0, 0, free_node),
               std::out_of_range);
  EXPECT_THROW(cluster.begin_rebalance(0, 9, 0, free_node),
               std::out_of_range);
  EXPECT_THROW(cluster.begin_rebalance(0, 0, 9, free_node),
               std::out_of_range);
  EXPECT_THROW(cluster.begin_rebalance(0, 0, 0, 99), std::out_of_range);
  EXPECT_THROW(cluster.begin_rebalance(0, 0, 0, r.nodes[0]),
               std::invalid_argument);  // self-move
  EXPECT_THROW(cluster.begin_rebalance(0, 0, 0, r.nodes[1]),
               std::invalid_argument);  // target already hosts the range

  // Every failed begin released the session slot: a valid begin works, and
  // only ONE session may exist at a time.
  const std::uint64_t donor_blocks_before =
      cluster.node(r.nodes[0]).storage().num_blocks();
  RebalanceSession s = cluster.begin_rebalance(0, 0, 0, free_node);
  EXPECT_THROW(cluster.begin_rebalance(1, 0, 0, 0), std::logic_error);
  s.run_to_completion();
  EXPECT_EQ(cluster.placement_flips(), 1u);
  EXPECT_EQ(cluster.placement().tables[0][0].nodes[0], free_node);

  // Round trip: move the replica back. The original donor's retired blocks
  // sit in its free pool, so the returning install reuses them without
  // growing storage.
  RebalanceSession back = cluster.begin_rebalance(0, 0, 0, r.nodes[0]);
  back.run_to_completion();
  EXPECT_EQ(cluster.placement_flips(), 2u);
  EXPECT_EQ(cluster.placement().tables[0][0].nodes[0], r.nodes[0]);
  EXPECT_EQ(cluster.node(r.nodes[0]).storage().num_blocks(),
            donor_blocks_before);
  expect_router_serves_model(cluster, m);
}

// --- Rebalancer policy ----------------------------------------------------

TEST(Rebalancer, ProposesHottestRangeUnderSkewAndMoveExecutes) {
  const Model m = make_model(2048);
  const ClusterConfig ccfg = cluster_config(2, 1, 0);
  // Both tables piled onto node 0; node 1 idle — the textbook skew.
  const FixedPlacement fixed({0, 0});
  StoreCluster cluster(ccfg, m.plan, m.values, nullptr, &fixed);

  RebalancerConfig rcfg;
  rcfg.min_donor_lookups = 64;
  const Rebalancer reb(cluster, rcfg);
  EXPECT_FALSE(reb.propose().has_value());  // idle cluster: no signal

  // Table 0 takes 10x table 1's traffic.
  TraceGenerator gen(table_config(2048), 5);
  const Trace trace = gen.generate(200);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q));
    if (q % 10 == 0) req.add(1, trace.query(q));
    cluster.router().multi_get(req);
  }

  const std::optional<MoveProposal> p = reb.propose();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->donor, 0u);
  EXPECT_EQ(p->target, 1u);
  EXPECT_EQ(p->table, 0u);  // the hottest range moves first
  EXPECT_GT(p->donor_load, p->target_load);
  EXPECT_GE(reb.node_load(0), rcfg.skew_threshold * 1.0);

  RebalanceSession s =
      cluster.begin_rebalance(p->table, p->range_index, p->replica, p->target);
  s.run_to_completion();
  EXPECT_EQ(cluster.placement().tables[0][0].nodes[0], 1u);
  expect_router_serves_model(cluster, m);
}

// --- Serve-while-migrating stress (run under TSan in CI) ------------------

TEST(Rebalance, ServeWhileMigratingIsRaceFreeAndUntorn) {
  const Model m = make_model(2048);
  const ClusterConfig ccfg = cluster_config(2, 1, 0);
  const FixedPlacement fixed({0, 1});
  StoreCluster cluster(ccfg, m.plan, m.values, nullptr, &fixed);

  RepublishConfig rate;
  rate.blocks_per_interval = 8;
  rate.interval_us = 50.0;
  RebalanceSession session = cluster.begin_rebalance(0, 0, 0, 1, rate);

  std::atomic<bool> torn{false};
  std::atomic<std::uint64_t> served{0};
  auto serve = [&](std::uint64_t tid) {
    std::uint64_t x = splitmix64(0x51ED + tid);
    for (int it = 0; it < 300 && !torn.load(std::memory_order_relaxed);
         ++it) {
      std::vector<VectorId> ids0(8), ids1(8);
      for (std::size_t j = 0; j < 8; ++j) {
        x = splitmix64(x);
        ids0[j] = static_cast<VectorId>(x % 2048);
        x = splitmix64(x);
        ids1[j] = static_cast<VectorId>(x % 2048);
      }
      MultiGetRequest req;
      req.add(0, ids0).add(1, ids1);
      const ClusterMultiGetResult got = cluster.router().multi_get(req);
      if (!got.complete()) {
        torn.store(true, std::memory_order_relaxed);
        break;
      }
      for (std::size_t g = 0; g < req.gets.size(); ++g) {
        const auto& get = req.gets[g];
        for (std::size_t i = 0; i < get.ids.size(); ++i) {
          if (!bytes_match(m.values[get.table], get.ids[i],
                           got.result.vectors[g].data() + i * kVecBytes)) {
            torn.store(true, std::memory_order_relaxed);
          }
        }
      }
      served.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> servers;
  for (std::uint64_t t = 0; t < 3; ++t) servers.emplace_back(serve, t);
  std::thread migrator([&] {
    while (!session.done()) {
      if (session.pump() == 0 && !session.done()) {
        cluster.advance_time_us(rate.interval_us);
      }
    }
  });
  for (auto& t : servers) t.join();
  migrator.join();

  EXPECT_FALSE(torn.load());
  EXPECT_GT(served.load(), 0u);
  EXPECT_TRUE(session.done());
  EXPECT_EQ(cluster.placement_flips(), 1u);
  EXPECT_EQ(cluster.metrics().router.failed_lookups, 0u);
  expect_router_serves_model(cluster, m);
}

// --- Crash-boundary matrix ------------------------------------------------
// Kill-9-style injection mirroring tests/test_crash_recovery.cpp: the
// target's storage dies (and stays dead) at the Nth install write call, and
// manifest hooks die just before / just after the two completion renames
// (target finish, donor retire). After every crash both nodes reopen from
// their durable manifests and every vector of the migrating range must be
// servable from the donor copy or the target copy — exactly as the
// boundary's durability state dictates, never lost and never half-there.

constexpr std::uint32_t kCrashVectors = 1024;
constexpr std::uint32_t kCrashBlocks = kCrashVectors / kVpb;  // 32

StoreConfig crash_store_config() {
  StoreConfig cfg;
  cfg.cache_shards = 1;
  cfg.simulate_timing = false;
  // 8-block admission wave (queue_depth x channels): the 32-block install
  // spans several write_blocks calls, each one a crash point.
  cfg.device.queue_depth = 4;
  cfg.device.channels = 2;
  return cfg;
}

/// Deterministic value matrix; distinct tags give byte-distinct tables.
EmbeddingTable crash_values(std::uint32_t tag) {
  EmbeddingTable e(kCrashVectors, 32);
  for (std::uint32_t v = 0; v < kCrashVectors; ++v) {
    auto row = e.vector(v);
    for (std::uint16_t d = 0; d < 32; ++d) {
      row[d] = static_cast<float>(tag) * 1000.0f + static_cast<float>(v) +
               static_cast<float>(d) * 0.5f;
    }
  }
  return e;
}

Model crash_model() {
  Model m;
  m.values.push_back(crash_values(1));
  m.values.push_back(crash_values(2));
  m.plan.tables.push_back(plan_of(kCrashVectors, 0));
  m.plan.tables.push_back(plan_of(kCrashVectors, 0xF00D));
  return m;
}

struct CrashInjected : std::runtime_error {
  explicit CrashInjected(const std::string& what) : std::runtime_error(what) {}
};

struct FaultPlan {
  bool armed = false;
  std::uint64_t crash_at = 0;  ///< 1-based write call to die on (0 = never).
  std::uint64_t calls = 0;     ///< Write calls observed while armed.
  bool dead = false;
};

/// Transparent BlockStorage wrapper that dies on the plan's armed write
/// call and stays dead (a crashed process issues no more IO — including
/// the sync barrier ahead of any later manifest commit).
class FaultInjectedStorage final : public BlockStorage {
 public:
  FaultInjectedStorage(std::unique_ptr<BlockStorage> inner,
                       std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  std::size_t block_bytes() const override { return inner_->block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }
  void read_block(BlockId b, std::span<std::byte> out) const override {
    inner_->read_block(b, out);
  }
  void read_blocks(std::span<const BlockReadOp> ops) const override {
    inner_->read_blocks(ops);
  }
  void write_block(BlockId b, std::span<const std::byte> in) override {
    before_write();
    inner_->write_block(b, in);
  }
  void write_blocks(std::span<const BlockWriteOp> ops) override {
    before_write();
    inner_->write_blocks(ops);
  }
  bool prefers_batched_reads() const override {
    return inner_->prefers_batched_reads();
  }
  bool prefers_batched_writes() const override {
    return inner_->prefers_batched_writes();
  }
  BlockStorageWriteStats write_stats() const override {
    return inner_->write_stats();
  }
  void sync() override {
    if (plan_->dead) throw CrashInjected("sync on dead storage");
    inner_->sync();
  }
  WaveBufferLease lease_wave_buffer(std::size_t bytes) const override {
    return inner_->lease_wave_buffer(bytes);
  }
  bool same_backing(const BlockStorage& other) const override {
    const auto* w = dynamic_cast<const FaultInjectedStorage*>(&other);
    return inner_->same_backing(w != nullptr ? *w->inner_ : other);
  }

 private:
  void before_write() {
    if (!plan_->armed) return;
    if (plan_->dead) throw CrashInjected("write on dead storage");
    ++plan_->calls;
    if (plan_->crash_at != 0 && plan_->calls >= plan_->crash_at) {
      plan_->dead = true;
      throw CrashInjected("injected crash at write call " +
                          std::to_string(plan_->calls));
    }
  }

  std::unique_ptr<BlockStorage> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

struct Paths {
  std::string block;
  std::string manifest;
};

Paths node_paths(const std::string& name, std::uint32_t node) {
  const std::string base = "/tmp/bandana_rebalance_" +
                           std::to_string(::getpid()) + "_" + name + "_n" +
                           std::to_string(node);
  return {base + ".bin", base + ".manifest"};
}

void cleanup(const Paths& p) {
  std::remove(p.block.c_str());
  std::remove(p.manifest.c_str());
  std::remove((p.manifest + ".tmp").c_str());
}

BlockStorageFactory real_node_factory(const Paths& p) {
  return file_storage_factory(p.block, p.manifest);
}

BlockStorageFactory faulty_node_factory(const Paths& p,
                                        std::shared_ptr<FaultPlan> plan) {
  return [real = real_node_factory(p), plan = std::move(plan)](
             std::uint64_t num_blocks, std::size_t block_bytes) mutable
             -> std::unique_ptr<BlockStorage> {
    return std::make_unique<FaultInjectedStorage>(
        real(num_blocks, block_bytes), plan);
  };
}

/// True iff table t of the reopened store serves EXACTLY `v`'s bytes.
bool serves_exactly(Store& s, TableId t, const EmbeddingTable& v) {
  std::vector<VectorId> ids(v.num_vectors());
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::byte> out(ids.size() * v.vector_bytes());
  try {
    s.lookup_batch(t, ids, out);
  } catch (...) {
    return false;  // retired or absent
  }
  return std::memcmp(out.data(), v.raw().data(), out.size()) == 0;
}

enum class HookPoint {
  kNone,
  kTargetFinishBefore,  ///< Die before the target finish-commit rename.
  kTargetFinishAfter,   ///< Die just after it.
  kDonorRetireBefore,   ///< Die before the donor retire-commit rename.
  kDonorRetireAfter,    ///< Die just after it.
};

struct CrashOutcome {
  bool crashed = false;
  std::uint64_t write_calls = 0;  ///< Target write calls while armed.
};

/// Build a fresh 2-node file-backed cluster (table 0 on node 0, table 1 on
/// node 1), then migrate table 0 to node 1 with the fault armed.
CrashOutcome run_crash_migration(const Paths& p0, const Paths& p1,
                                 std::uint64_t crash_at_write,
                                 HookPoint hook) {
  cleanup(p0);
  cleanup(p1);
  auto fault = std::make_shared<FaultPlan>();
  const Model m = crash_model();
  ClusterConfig ccfg = cluster_config(2, 1, 0);
  ccfg.store = crash_store_config();
  const FixedPlacement fixed({0, 1});
  const StoreCluster::NodeSetup setup = [&](std::uint32_t n,
                                            StoreBuilder& b) {
    const Paths& p = n == 0 ? p0 : p1;
    if (n == 1) {
      b.storage(faulty_node_factory(p, fault));
    } else {
      b.storage(real_node_factory(p));
    }
    b.manifest(p.manifest);
  };
  StoreCluster cluster(ccfg, m.plan, m.values, nullptr, &fixed, setup);
  // Pre-size the target so the install never regrows the file: the armed
  // phase then contains exactly the install write waves.
  cluster.node(1).reserve_blocks(2 * kCrashBlocks);
  fault->armed = true;
  fault->crash_at = crash_at_write;

  CrashOutcome out;
  try {
    RebalanceSession s = cluster.begin_rebalance(0, 0, 0, 1);
    if (hook != HookPoint::kNone) {
      ManifestCommitHooks hooks;
      auto die = [] { throw CrashInjected("injected crash at manifest flip"); };
      const bool after = hook == HookPoint::kTargetFinishAfter ||
                         hook == HookPoint::kDonorRetireAfter;
      if (after) {
        hooks.after_flip = die;
      } else {
        hooks.before_flip = die;
      }
      const bool on_target = hook == HookPoint::kTargetFinishBefore ||
                             hook == HookPoint::kTargetFinishAfter;
      // The first commit the hooked store issues after begin_rebalance is
      // exactly the boundary under test: the target commits next at
      // install_finish, the donor only at retire_table.
      cluster.node(on_target ? 1 : 0).set_manifest_fault_hooks(hooks);
    }
    s.run_to_completion();
  } catch (const CrashInjected&) {
    out.crashed = true;
  }
  out.write_calls = fault->calls;
  return out;
}

/// Reopen both nodes from their durable manifests and classify the
/// migrating range: served by the donor copy, the target copy, or both —
/// as the crash boundary dictates — and NEVER lost or half-installed.
void expect_recovered(const Paths& p0, const Paths& p1, bool expect_donor,
                      bool expect_target) {
  const Model m = crash_model();
  const StoreConfig cfg = crash_store_config();
  Store donor = Store::open(cfg, p0.manifest, real_node_factory(p0));
  Store target = Store::open(cfg, p1.manifest, real_node_factory(p1));
  ASSERT_EQ(donor.num_tables(), 1u);
  ASSERT_GE(target.num_tables(), 1u);
  // The target's own table is untouched by the migration.
  EXPECT_TRUE(serves_exactly(target, 0, m.values[1]));

  const bool donor_serves =
      !donor.table_retired(0) && serves_exactly(donor, 0, m.values[0]);
  const bool target_serves = target.num_tables() == 2 &&
                             !target.table_retired(1) &&
                             serves_exactly(target, 1, m.values[0]);
  EXPECT_TRUE(donor_serves || target_serves)
      << "migrating range lost: no committed replica survived";
  EXPECT_EQ(donor_serves, expect_donor);
  EXPECT_EQ(target_serves, expect_target);

  if (!target_serves) {
    // Strictly before the finish commit there is never a half-table...
    EXPECT_EQ(target.num_tables(), 1u);
    // ...and reopen reclaimed the pending reservation idempotently: a
    // fresh install reuses those blocks without growing storage.
    const std::uint64_t before = target.storage().num_blocks();
    TableInstall install = target.begin_table_install(
        BlockLayout::identity(kCrashVectors, kVpb), test_policy(),
        std::vector<std::uint32_t>(kCrashVectors, 0));
    EXPECT_EQ(target.storage().num_blocks(), before);
    // The probe install is abandoned on scope exit.
  }
}

TEST(RebalanceCrash, EveryWaveAndFlipBoundaryKeepsACommittedReplica) {
  const Paths p0 = node_paths("matrix", 0);
  const Paths p1 = node_paths("matrix", 1);

  // Dry run: the move completes, the donor copy is retired, the target
  // serves. Its write-call count defines the boundary sweep.
  const CrashOutcome dry =
      run_crash_migration(p0, p1, 0, HookPoint::kNone);
  ASSERT_FALSE(dry.crashed);
  ASSERT_GE(dry.write_calls, 2u);  // 32 blocks in 8-block admission waves
  expect_recovered(p0, p1, /*expect_donor=*/false, /*expect_target=*/true);

  // The target's storage dies at every install write-wave boundary. All of
  // them predate the finish commit, so recovery serves entirely from the
  // donor and the target reopens with no half-table.
  for (std::uint64_t k = 1; k <= dry.write_calls; ++k) {
    SCOPED_TRACE("crash at install write call " + std::to_string(k));
    const CrashOutcome run = run_crash_migration(p0, p1, k, HookPoint::kNone);
    EXPECT_TRUE(run.crashed);
    expect_recovered(p0, p1, /*expect_donor=*/true, /*expect_target=*/false);
  }

  // Crash just before the target's finish-commit rename: the pending
  // record is still the durable truth — donor only.
  CrashOutcome run =
      run_crash_migration(p0, p1, 0, HookPoint::kTargetFinishBefore);
  EXPECT_TRUE(run.crashed);
  expect_recovered(p0, p1, /*expect_donor=*/true, /*expect_target=*/false);

  // Just after it: the target's copy is durable, the donor not yet
  // retired — both serve (the safe intermediate state the retire-LAST
  // ordering guarantees).
  run = run_crash_migration(p0, p1, 0, HookPoint::kTargetFinishAfter);
  EXPECT_TRUE(run.crashed);
  expect_recovered(p0, p1, /*expect_donor=*/true, /*expect_target=*/true);

  // Just before the donor's retire rename: same intermediate state.
  run = run_crash_migration(p0, p1, 0, HookPoint::kDonorRetireBefore);
  EXPECT_TRUE(run.crashed);
  expect_recovered(p0, p1, /*expect_donor=*/true, /*expect_target=*/true);

  // Just after it: the handoff is fully durable — target only.
  run = run_crash_migration(p0, p1, 0, HookPoint::kDonorRetireAfter);
  EXPECT_TRUE(run.crashed);
  expect_recovered(p0, p1, /*expect_donor=*/false, /*expect_target=*/true);

  cleanup(p0);
  cleanup(p1);
}

}  // namespace
}  // namespace bandana
