// Epoch-based reclamation of retired BandanaTable swap states.
//
// Every completed trickle republish swaps the table's immutable state and
// retires the old one; the two-bank reader-epoch scheme must free retired
// states once no straggling lookup can still reference them — immediately
// when the store is quiescent, eventually under continuous serving — and
// must never free one a concurrent lookup is still dereferencing (the
// TSan stress below is the teeth of that claim).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/store.h"
#include "core/store_builder.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

constexpr std::uint32_t kVectors = 512;
constexpr std::size_t kVecBytes = 128;

TableWorkloadConfig table_config() {
  TableWorkloadConfig cfg;
  cfg.num_vectors = kVectors;
  cfg.dim = 32;
  cfg.mean_lookups_per_query = 8;
  cfg.num_profiles = 32;
  return cfg;
}

TablePlan plan_with_layout(std::uint64_t layout_seed) {
  TablePolicy policy;
  policy.cache_vectors = 64;
  policy.policy = PrefetchPolicy::kNone;
  return TablePlan{layout_seed == 0
                       ? BlockLayout::identity(kVectors, 32)
                       : BlockLayout::random(kVectors, 32, layout_seed),
                   {}, policy, 0.0};
}

Store one_table_store(const EmbeddingTable& values) {
  StoreConfig cfg;
  cfg.simulate_timing = false;
  StoreBuilder builder(cfg);
  builder.add_table(values, plan_with_layout(0));
  return builder.build();
}

/// Run one full trickle republish (unlimited rate: one pump per wave).
void run_trickle(Store& store, const EmbeddingTable& values,
                 std::uint64_t layout_seed) {
  RepublishConfig rcfg;  // blocks_per_interval = 0: unlimited
  TrickleRepublish push = store.begin_trickle_republish(
      0, values, plan_with_layout(layout_seed), rcfg);
  int pumps = 0;
  while (!push.done()) {
    push.pump();
    ASSERT_LT(++pumps, 1000);
  }
  ASSERT_TRUE(push.mapping_swapped());
}

TEST(StateReclaim, QuiescentSwapFreesTheRetiredStateImmediately) {
  const EmbeddingTable values = TraceGenerator(table_config(), 1)
                                    .make_embeddings();
  Store store = one_table_store(values);
  EXPECT_EQ(store.retired_states(), 0u);
  // Ten re-layout pushes; with no concurrent readers, each swap's inline
  // reclaim pass frees the retired state before the push returns.
  for (std::uint64_t cycle = 1; cycle <= 10; ++cycle) {
    run_trickle(store, values, cycle);
    EXPECT_EQ(store.retired_states(), 0u) << "cycle " << cycle;
  }
  // The store still serves the right bytes from the latest layout.
  std::vector<std::byte> out(kVecBytes);
  for (VectorId v = 0; v < kVectors; v += 37) {
    store.lookup(0, v, out);
    EXPECT_EQ(std::memcmp(out.data(), values.vector_bytes_view(v).data(),
                          kVecBytes),
              0)
        << "vector " << v;
  }
}

TEST(StateReclaim, ExplicitReclaimPassReportsNothingWhenEmpty) {
  const EmbeddingTable values = TraceGenerator(table_config(), 2)
                                    .make_embeddings();
  Store store = one_table_store(values);
  EXPECT_EQ(store.reclaim_retired_states(), 0u);
}

TEST(StateReclaim, ConcurrentServingSwapAndReclaimStress) {
  // The TSan target: reader threads hammer lookups while the main thread
  // swaps the table's state over and over (alternating value sets A/B and
  // re-randomized layouts) and a third party forces reclaim passes. Every
  // served vector must be bit-exact A bytes or bit-exact B bytes — a
  // lookup that raced a swap reads one consistent state, never a freed
  // one, never a mix.
  const EmbeddingTable a = TraceGenerator(table_config(), 3).make_embeddings();
  EmbeddingTable b = a;
  for (VectorId v = 0; v < kVectors; ++v) {
    for (float& x : b.vector(v)) x += 7.0f;
  }
  Store store = one_table_store(a);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      TraceGenerator gen(table_config(), 100 + r);
      const Trace trace = gen.generate(50);
      std::vector<std::byte> out(kVecBytes * kVectors);
      std::size_t q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto ids = trace.query(q++ % trace.num_queries());
        store.lookup_batch(0, ids, out);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          const std::byte* got = out.data() + i * kVecBytes;
          const bool is_a =
              std::memcmp(got, a.vector_bytes_view(ids[i]).data(),
                          kVecBytes) == 0;
          const bool is_b =
              std::memcmp(got, b.vector_bytes_view(ids[i]).data(),
                          kVecBytes) == 0;
          if (!is_a && !is_b) bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (std::uint64_t cycle = 1; cycle <= 12; ++cycle) {
    const EmbeddingTable& next = (cycle % 2 == 1) ? b : a;
    RepublishConfig rcfg;
    TrickleRepublish push =
        store.begin_trickle_republish(0, next, plan_with_layout(cycle), rcfg);
    while (!push.done()) push.pump();
    store.reclaim_retired_states();
    // Bounded garbage: under continuous reads each pass may leave the
    // freshest retiree waiting for its bank to drain, never a pile.
    EXPECT_LE(store.retired_states(), 4u) << "cycle " << cycle;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0u);

  // Readers are gone: one pass (flip + both banks provably empty) frees
  // every straggler.
  std::size_t left = store.retired_states();
  for (int pass = 0; pass < 3 && left > 0; ++pass) {
    store.reclaim_retired_states();
    left = store.retired_states();
  }
  EXPECT_EQ(left, 0u);
}

}  // namespace
}  // namespace bandana
