#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace bandana {
namespace {

TEST(Trace, AddAndQuery) {
  Trace t;
  const VectorId q0[] = {1, 2, 3};
  const VectorId q1[] = {7};
  t.add_query(q0);
  t.add_query(q1);
  EXPECT_EQ(t.num_queries(), 2u);
  EXPECT_EQ(t.total_lookups(), 4u);
  ASSERT_EQ(t.query(0).size(), 3u);
  EXPECT_EQ(t.query(0)[2], 3u);
  ASSERT_EQ(t.query(1).size(), 1u);
  EXPECT_EQ(t.query(1)[0], 7u);
}

TEST(Trace, EmptyQueryAllowed) {
  Trace t;
  t.add_query({});
  EXPECT_EQ(t.num_queries(), 1u);
  EXPECT_EQ(t.query(0).size(), 0u);
}

TEST(Trace, Head) {
  Trace t;
  const VectorId a[] = {1, 2};
  const VectorId b[] = {3};
  const VectorId c[] = {4, 5, 6};
  t.add_query(a);
  t.add_query(b);
  t.add_query(c);
  const Trace h = t.head(2);
  EXPECT_EQ(h.num_queries(), 2u);
  EXPECT_EQ(h.total_lookups(), 3u);
  EXPECT_EQ(h.query(1)[0], 3u);
  // head beyond size returns everything
  EXPECT_EQ(t.head(10), t);
}

TEST(Trace, SaveLoadRoundtrip) {
  Trace t;
  const VectorId a[] = {10, 20, 30};
  const VectorId b[] = {40};
  t.add_query(a);
  t.add_query(b);
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.bin";
  t.save(path);
  const Trace loaded = Trace::load(path);
  EXPECT_EQ(loaded, t);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/trace_garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, LoadMissingFileThrows) {
  EXPECT_THROW(Trace::load("/nonexistent/trace.bin"), std::runtime_error);
}

}  // namespace
}  // namespace bandana
