#include "nvm/nvm_device.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

NvmDeviceConfig test_config() {
  NvmDeviceConfig cfg;
  return cfg;
}

TEST(NvmConfig, PeakBandwidthMatchesChannels) {
  NvmDeviceConfig cfg;
  cfg.channels = 4;
  cfg.service_median_us = 8.0;
  cfg.service_sigma = 0.0;  // deterministic
  EXPECT_NEAR(cfg.mean_service_us(), 8.0, 1e-9);
  EXPECT_NEAR(cfg.peak_bandwidth_bytes_per_s(), 4.0 * 4096 / 8e-6, 1.0);
}

TEST(SubmitRead, UsesEarliestChannel) {
  NvmDeviceConfig cfg;
  cfg.base_latency_us = 1.0;
  cfg.service_median_us = 10.0;
  cfg.service_sigma = 0.0;
  NvmLatencyModel model(cfg);
  Rng rng(1);
  std::vector<double> channels{5.0, 0.0};
  // now = 0; earliest channel free at 0 -> done at 11.
  EXPECT_NEAR(submit_read(model, 0.0, channels, rng), 11.0, 1e-9);
  // That channel is now busy until 11; next read waits on channel at 5.
  EXPECT_NEAR(submit_read(model, 0.0, channels, rng), 16.0, 1e-9);
}

TEST(ClosedLoop, LatencyGrowsWithQueueDepth) {
  const auto cfg = test_config();
  const auto qd1 = run_closed_loop(cfg, 1, 20000, 7);
  const auto qd8 = run_closed_loop(cfg, 8, 20000, 7);
  EXPECT_GT(qd8.latency_us.mean(), qd1.latency_us.mean());
  EXPECT_GT(qd8.latency_us.percentile(0.99), qd1.latency_us.percentile(0.99));
}

TEST(ClosedLoop, BandwidthGrowsThenSaturates) {
  const auto cfg = test_config();
  const double bw1 =
      run_closed_loop(cfg, 1, 20000, 7).bandwidth_bytes_per_s(cfg.block_bytes);
  const double bw4 =
      run_closed_loop(cfg, 4, 20000, 7).bandwidth_bytes_per_s(cfg.block_bytes);
  const double bw8 =
      run_closed_loop(cfg, 8, 20000, 7).bandwidth_bytes_per_s(cfg.block_bytes);
  EXPECT_GT(bw4, 1.8 * bw1);  // scales while channels are idle
  EXPECT_GT(bw8, bw4 * 0.95);
  EXPECT_LT(bw8, cfg.peak_bandwidth_bytes_per_s() * 1.05);  // saturates
}

TEST(ClosedLoop, ClientCountIsNotCappedByDeviceAdmissionDepth) {
  // run_closed_loop's queue_depth is the fio client count; the store-side
  // admission cap (NvmDeviceConfig::queue_depth) must not gate the raw
  // characterization sweep.
  NvmDeviceConfig cfg;    // 4 channels
  cfg.queue_depth = 1;    // a store would cap at 4 outstanding reads
  const auto r = run_closed_loop(cfg, 16, 20000, 7);
  EXPECT_GT(r.bandwidth_bytes_per_s(cfg.block_bytes),
            0.9 * cfg.peak_bandwidth_bytes_per_s());
}

TEST(ClosedLoop, QD1LatencyIsServicePlusBase) {
  NvmDeviceConfig cfg;
  cfg.service_sigma = 0.0;
  const auto r = run_closed_loop(cfg, 1, 1000, 3);
  EXPECT_NEAR(r.latency_us.mean(), cfg.base_latency_us + cfg.service_median_us,
              1e-6);
}

TEST(OpenLoop, LowLoadLatencyNearService) {
  const auto cfg = test_config();
  // 1% of peak bandwidth: essentially no queueing.
  const double rate = 0.01 * cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;
  const auto r = run_open_loop(cfg, rate, 20000, 5);
  EXPECT_LT(r.latency_us.mean(),
            1.5 * (cfg.mean_service_us() + cfg.base_latency_us));
}

TEST(OpenLoop, OverloadLatencyDiverges) {
  const auto cfg = test_config();
  const double peak_iops = cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;
  const auto ok = run_open_loop(cfg, 0.7 * peak_iops, 30000, 5);
  const auto over = run_open_loop(cfg, 1.3 * peak_iops, 30000, 5);
  EXPECT_GT(over.latency_us.mean(), 10.0 * ok.latency_us.mean());
}

// ---- Fig. 5 hockey-stick shape properties on the per-channel engine
// (guards the shape, not exact numbers). ----

TEST(OpenLoop, MeanLatencyNonDecreasingInArrivalRate) {
  const auto cfg = test_config();
  const double peak_iops = cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;
  double previous = 0.0;
  for (const double util : {0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.4}) {
    const auto r = run_open_loop(cfg, util * peak_iops, 30000, 5);
    // Same seed per point; 2% slack absorbs sampling noise in the flat
    // low-load region where queueing is negligible.
    EXPECT_GE(r.latency_us.mean(), 0.98 * previous) << "util " << util;
    previous = r.latency_us.mean();
  }
}

TEST(OpenLoop, LatencyDivergesPastPeakBandwidthButNotBelowIt) {
  const auto cfg = test_config();
  const double peak_iops = cfg.peak_bandwidth_bytes_per_s() / cfg.block_bytes;
  // Past the knee the queue grows without bound, so the mean scales with
  // the run length; below the knee it is run-length independent.
  const auto over_short = run_open_loop(cfg, 1.2 * peak_iops, 20000, 5);
  const auto over_long = run_open_loop(cfg, 1.2 * peak_iops, 60000, 5);
  EXPECT_GT(over_long.latency_us.mean(), 2.0 * over_short.latency_us.mean());
  const auto ok_short = run_open_loop(cfg, 0.8 * peak_iops, 20000, 5);
  const auto ok_long = run_open_loop(cfg, 0.8 * peak_iops, 60000, 5);
  EXPECT_LT(ok_long.latency_us.mean(), 2.0 * ok_short.latency_us.mean());
}

TEST(DeviceRunResult, BandwidthComputation) {
  DeviceRunResult r;
  r.ios = 1000;
  r.elapsed_us = 1e6;  // 1 second
  EXPECT_NEAR(r.bandwidth_bytes_per_s(4096), 4096000.0, 1.0);
  EXPECT_NEAR(r.iops(), 1000.0, 1e-9);
}

}  // namespace
}  // namespace bandana
