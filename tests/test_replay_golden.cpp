// Deterministic end-to-end replay regression suite: a fixed-seed drifting
// workload through the full lifecycle — build (Trainer on an initial
// window) -> serve -> traffic drift -> sample -> retrain -> rate-limited
// trickle republish (serving throughout) -> serve — replayed across the
// Memory / File / AsyncFile backends.
//
// Pins, in decreasing strictness:
//  * Byte identity: an FNV-1a digest over every byte every multi_get
//    returned, equal across ALL backends and across duplicate runs (the
//    staged pipeline and the mapping swap may reorder cache internals,
//    never bytes).
//  * Counter identity: TableMetrics, the StoreMetrics write-wave counters,
//    retrainer session stats, endurance bytes and the simulated write-wave
//    latencies are equal between Memory and File (same inline read path)
//    and across duplicate runs (replay determinism). The async backend is
//    pinned separately (its staged pipeline legitimately reorders cache
//    admissions) on bytes, write-path counters and pipeline invariants.
//  * Structural goldens (platform-independent): publish/trickle write
//    conservation (write_blocks == publish + trickle waves; trickle
//    written + skipped == plan size), zero staging activity on inline
//    backends, zero stage truncation, one mapping swap per pushed table.
//  * Behavior: drift drops the hit rate; retraining on sampled drifted
//    traffic recovers a measurable part of it.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/retrainer.h"
#include "core/store.h"
#include "core/trainer.h"
#include "nvm/async_file_storage.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

constexpr std::uint32_t kVectors = 4096;
constexpr std::uint32_t kVpb = 32;
constexpr std::uint32_t kTableBlocks = kVectors / kVpb;
constexpr std::size_t kTables = 2;
constexpr std::size_t kTrainQueries = 600;
constexpr std::size_t kWarm = 150;
constexpr std::size_t kPhaseA = 250;
constexpr std::size_t kPhaseB = 600;
constexpr std::size_t kPhaseC = 300;
constexpr std::size_t kPhaseD = 300;  ///< Served after a warm restart.
constexpr double kInterarrivalUs = 50.0;

TableWorkloadConfig workload(std::size_t table) {
  TableWorkloadConfig wl;
  wl.name = "t" + std::to_string(table);
  wl.num_vectors = kVectors;
  wl.dim = 32;
  wl.mean_lookups_per_query = 14.0;
  wl.new_vector_prob = 0.02;
  wl.num_profiles = 128;
  wl.profile_size = 32;
  wl.profile_frac = 0.85;
  wl.within_profile_skew = 0.2;
  // Strong drift: most of the profile pool is re-drawn, so the trained
  // layout's co-access packing goes stale and retraining has real signal.
  wl.drift_profile_fraction = 0.9;
  wl.drift_popularity_fraction = 0.3;
  return wl;
}

struct PhaseRates {
  double a = 0.0;       ///< Hit rate while the trained layout matches.
  double b = 0.0;       ///< After drift, before retraining.
  double c = 0.0;       ///< After the trickle push landed.
  double blocks_a = 0.0;  ///< NVM block reads per lookup, per phase.
  double blocks_b = 0.0;
  double blocks_c = 0.0;
};

struct ReplayResult {
  std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  PhaseRates rates;
  TableMetrics totals;
  StoreMetrics store_metrics;
  RetrainerStats retrainer_stats;
  std::uint64_t endurance_bytes = 0;
  std::uint64_t write_latency_count = 0;
  std::uint64_t storage_blocks = 0;
  std::uint64_t trickle_pumps = 0;  ///< Requests served during the push.
};

void fnv_mix(std::uint64_t& h, const std::byte* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
}

ReplayResult run_replay(BlockStorageFactory factory,
                        const std::string& manifest_path = "",
                        const std::string& block_file = "") {
  ReplayResult r;
  r.digest = 0xcbf29ce484222325ULL;

  // Fixed-seed generators; each table is one continuing stream, so the
  // training window, the serving phases and the drift all share structure.
  std::vector<TraceGenerator> gens;
  gens.reserve(kTables);
  std::vector<EmbeddingTable> values;
  std::vector<Trace> train;
  std::vector<std::uint32_t> sizes;
  for (std::size_t t = 0; t < kTables; ++t) {
    gens.emplace_back(workload(t), splitmix64(0xB00B00 + t));
    values.push_back(gens[t].make_embeddings());
    train.push_back(gens[t].generate(kTrainQueries));
    sizes.push_back(kVectors);
  }

  StoreConfig cfg;
  cfg.cache_shards = 1;  // deterministic single-LRU serving order
  TrainerConfig trainer_cfg;
  trainer_cfg.total_cache_vectors = kTables * kVectors / 4;
  trainer_cfg.partitioner.shp.iters_per_level = 6;
  // Tables this small make the SHARDS mini-cache degenerate (a 0.1% sample
  // of 4096 vectors is ~4); tune thresholds on the exact trace instead.
  trainer_cfg.tuner.sampling_rate = 1.0;
  Trainer trainer(cfg, trainer_cfg);
  const StorePlan plan = trainer.train(train, sizes);

  Store store(cfg, std::move(factory));
  // Reserve the steady-state footprint up front (tables + one replacement
  // region each): no backend ever regrows mid-run, so Memory and File see
  // the identical write-wave schedule.
  store.reserve_blocks(2 * kTables * kTableBlocks);
  for (std::size_t t = 0; t < kTables; ++t) {
    store.add_table(values[t], plan.tables[t].layout, plan.tables[t].policy,
                    plan.tables[t].access_counts);
  }
  if (!manifest_path.empty()) {
    // Persist: from here on every mapping swap commits a manifest version,
    // and the warm-restart phase below can reopen the committed store.
    store.attach_manifest(manifest_path, block_file);
  }

  RetrainerConfig rc;
  rc.sampler.reservoir_queries = 1024;
  rc.sampler.seed = 99;
  rc.trainer = trainer_cfg;
  rc.republish.blocks_per_interval = 16;
  rc.republish.interval_us = 4.0 * kInterarrivalUs;
  OnlineRetrainer retrainer(
      store, rc,
      [&](TableId t) -> const EmbeddingTable& { return values[t]; });

  const auto serve_one = [&](std::size_t q) {
    store.advance_time_us(kInterarrivalUs);
    MultiGetRequest req;
    for (std::size_t t = 0; t < kTables; ++t) {
      // Each phase consumes its queries from the table's continuing stream.
      const Trace slice = gens[t].generate(1);
      req.add(static_cast<TableId>(t), slice.query(0));
    }
    const MultiGetResult res = store.multi_get(req);
    for (const auto& bytes : res.vectors) {
      fnv_mix(r.digest, bytes.data(), bytes.size());
    }
    (void)q;
  };

  const auto phase_delta = [&](const TableMetrics& before, double& hit_rate,
                               double& blocks_per_lookup) {
    const TableMetrics now = store.total_metrics();
    const std::uint64_t lookups = now.lookups - before.lookups;
    const std::uint64_t hits = now.hits - before.hits;
    const std::uint64_t reads = now.nvm_block_reads - before.nvm_block_reads;
    hit_rate = lookups
                   ? static_cast<double>(hits) / static_cast<double>(lookups)
                   : 0.0;
    blocks_per_lookup =
        lookups ? static_cast<double>(reads) / static_cast<double>(lookups)
                : 0.0;
  };

  // Warm the cache, then phase A: the trained layout matches the traffic.
  // (Measured phases always follow an unmeasured warm window, so the rates
  // compare steady states, not cold-start transients.)
  for (std::size_t q = 0; q < kWarm; ++q) serve_one(q);
  TableMetrics mark = store.total_metrics();
  for (std::size_t q = 0; q < kPhaseA; ++q) serve_one(q);
  phase_delta(mark, r.rates.a, r.rates.blocks_a);

  // Drift. The LRU adapts to the new hot set within the warm window — the
  // damage that persists is the stale *packing* (profiles scattered across
  // blocks, prefetch useless). Discard the pre-drift sample window so the
  // retrainer trains purely on drifted traffic.
  for (auto& gen : gens) gen.apply_drift();
  retrainer.sampler().drain();
  for (std::size_t q = 0; q < kWarm; ++q) serve_one(q);
  mark = store.total_metrics();
  for (std::size_t q = 0; q < kPhaseB; ++q) serve_one(q);
  phase_delta(mark, r.rates.b, r.rates.blocks_b);

  // Retrain on the sampled drifted window and trickle the push out while
  // serving continues (rate-limited write waves interleave with reads).
  retrainer.retrain_now();
  std::size_t q = 0;
  while (retrainer.republishing()) {
    serve_one(q++);
    retrainer.pump();
    ++r.trickle_pumps;
  }

  // Phase C: the re-packed layout serves the drifted traffic (after a warm
  // window — the swap restarts the cache cold).
  for (std::size_t i = 0; i < kWarm; ++i) serve_one(i);
  mark = store.total_metrics();
  for (std::size_t i = 0; i < kPhaseC; ++i) serve_one(i);
  phase_delta(mark, r.rates.c, r.rates.blocks_c);

  std::printf(
      "[replay] hit rate A/B/C = %.4f / %.4f / %.4f   blocks per lookup "
      "A/B/C = %.4f / %.4f / %.4f\n",
      r.rates.a, r.rates.b, r.rates.c, r.rates.blocks_a, r.rates.blocks_b,
      r.rates.blocks_c);
  {
    const TableMetrics tm = store.total_metrics();
    std::printf("[replay] prefetch inserted=%llu hits=%llu threshold0=%u\n",
                (unsigned long long)tm.prefetch_inserted,
                (unsigned long long)tm.prefetch_hits,
                store.table(0).policy().access_threshold);
  }
  r.totals = store.total_metrics();
  r.store_metrics = store.store_metrics();
  r.retrainer_stats = retrainer.stats();
  r.endurance_bytes = store.endurance().total_bytes_written();
  r.write_latency_count = store.write_latency_us().count();
  r.storage_blocks = store.storage().num_blocks();
  return r;
}

void expect_table_metrics_eq(const TableMetrics& a, const TableMetrics& b,
                             const char* what) {
  EXPECT_EQ(a.lookups, b.lookups) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.nvm_block_reads, b.nvm_block_reads) << what;
  EXPECT_EQ(a.prefetch_inserted, b.prefetch_inserted) << what;
  EXPECT_EQ(a.prefetch_hits, b.prefetch_hits) << what;
  EXPECT_EQ(a.nvm_bytes_read, b.nvm_bytes_read) << what;
  EXPECT_EQ(a.miss_bytes, b.miss_bytes) << what;
  EXPECT_EQ(a.app_bytes_served, b.app_bytes_served) << what;
  EXPECT_EQ(a.republish_writes, b.republish_writes) << what;
}

void expect_write_path_eq(const ReplayResult& a, const ReplayResult& b,
                          const char* what) {
  EXPECT_EQ(a.store_metrics.write_waves, b.store_metrics.write_waves) << what;
  EXPECT_EQ(a.store_metrics.write_blocks, b.store_metrics.write_blocks)
      << what;
  // Batched write submissions are counted at the store level (one bump per
  // physical write_blocks call), so the count is backend-identical even
  // though only the async backend genuinely overlaps the writes.
  EXPECT_EQ(a.store_metrics.write_batches, b.store_metrics.write_batches)
      << what;
  EXPECT_EQ(a.store_metrics.republish_skipped_blocks,
            b.store_metrics.republish_skipped_blocks)
      << what;
  EXPECT_EQ(a.store_metrics.mapping_swaps, b.store_metrics.mapping_swaps)
      << what;
  EXPECT_EQ(a.retrainer_stats.sessions_opened,
            b.retrainer_stats.sessions_opened)
      << what;
  EXPECT_EQ(a.retrainer_stats.blocks_written, b.retrainer_stats.blocks_written)
      << what;
  EXPECT_EQ(a.retrainer_stats.blocks_skipped, b.retrainer_stats.blocks_skipped)
      << what;
  EXPECT_EQ(a.retrainer_stats.waves, b.retrainer_stats.waves) << what;
  EXPECT_EQ(a.retrainer_stats.swaps, b.retrainer_stats.swaps) << what;
  EXPECT_EQ(a.endurance_bytes, b.endurance_bytes) << what;
  EXPECT_EQ(a.write_latency_count, b.write_latency_count) << what;
  EXPECT_EQ(a.storage_blocks, b.storage_blocks) << what;
  EXPECT_EQ(a.trickle_pumps, b.trickle_pumps) << what;
}

/// Structural goldens that hold on every backend and platform.
void check_structural_goldens(const ReplayResult& r, bool inline_backend) {
  // The push had work to do: drift changed the plan of both tables.
  EXPECT_EQ(r.retrainer_stats.retrains, 1u);
  EXPECT_GE(r.retrainer_stats.sessions_opened, 1u);
  EXPECT_EQ(r.retrainer_stats.swaps, r.retrainer_stats.sessions_opened);
  EXPECT_EQ(r.store_metrics.mapping_swaps, r.retrainer_stats.swaps);
  EXPECT_GT(r.retrainer_stats.blocks_written, 0u);
  // Plan-diff conservation: every block of a pushed table was either
  // written exactly once by the trickle or proven unchanged.
  EXPECT_EQ(r.retrainer_stats.blocks_written + r.retrainer_stats.blocks_skipped,
            (r.retrainer_stats.sessions_opened +
             r.retrainer_stats.tables_unchanged) *
                kTableBlocks);
  // Write conservation: initial publishes + trickle waves, nothing else.
  EXPECT_EQ(r.store_metrics.write_blocks,
            kTables * kTableBlocks + r.retrainer_stats.blocks_written);
  EXPECT_EQ(r.store_metrics.write_waves,
            kTables + r.retrainer_stats.waves +
                r.retrainer_stats.tables_unchanged);
  // Batch conservation: each publish fits one admission wave (kTableBlocks
  // == queue_depth x channels) and each rate-limited trickle wave (<= 16
  // blocks) is one batched submission, so batches == publishes + waves —
  // unchanged-table pushes record a zero-length wave but submit nothing.
  EXPECT_EQ(r.store_metrics.write_batches,
            kTables + r.retrainer_stats.waves);
  // Endurance: publish + trickle block writes, byte-exact.
  EXPECT_EQ(r.endurance_bytes, r.store_metrics.write_blocks * 4096u);
  // Double buffering: storage never grew beyond the reserved footprint.
  EXPECT_EQ(r.storage_blocks, 2 * kTables * kTableBlocks);
  EXPECT_EQ(r.store_metrics.stage_truncated_blocks, 0u);
  if (inline_backend) {
    // Inline backends have no io_uring pool: no registered buffers, no
    // short-completion resubmissions.
    EXPECT_FALSE(r.store_metrics.registered_buffers_active);
    EXPECT_EQ(r.store_metrics.write_short_resubmits, 0u);
    // No staging, no deferrals, no retries on pread-per-miss backends.
    EXPECT_EQ(r.store_metrics.staged_blocks, 0u);
    EXPECT_EQ(r.store_metrics.deferred_lookups, 0u);
    EXPECT_EQ(r.store_metrics.retry_blocks, 0u);
    EXPECT_EQ(r.store_metrics.retry_waves, 0u);
  } else {
    EXPECT_GT(r.store_metrics.staged_blocks, 0u);
  }
  // Drift must hurt and retraining must measurably recover — on the hit
  // rate (prefetched co-members stop arriving once the packing is stale)
  // and on NVM block reads per lookup (the paper's effective-bandwidth
  // lens: scattered profiles defeat request-level dedup too). The margins
  // are ~half the observed effect sizes (~12pp hit rate, ~0.12 blocks per
  // lookup), so platform libm differences in the generated trace cannot
  // flip them.
  EXPECT_LT(r.rates.b, r.rates.a - 0.05) << "drift did not reduce hit rate";
  EXPECT_GT(r.rates.c, r.rates.b + 0.05) << "retraining did not recover";
  EXPECT_GT(r.rates.blocks_b, r.rates.blocks_a + 0.05)
      << "drift did not inflate NVM reads per lookup";
  EXPECT_LT(r.rates.blocks_c, r.rates.blocks_b - 0.05)
      << "retraining did not recover read amplification";
}

struct WarmResult {
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  double hit_rate = 0.0;
  std::uint64_t storage_blocks = 0;
  std::uint64_t write_blocks = 0;
  std::uint64_t endurance_bytes = 0;
  std::uint64_t manifest_commits = 0;
  std::uint64_t trickle_epoch = 0;
};

/// Reopen the committed store from its manifest (no retraining, no block
/// writes) and serve phase D from the workload's CONTINUING traffic: fresh
/// fixed-seed generators are fast-forwarded through exactly the call
/// sequence the cold run consumed (`trickle_pumps` queries were served
/// while the push trickled out), so phase D picks up where phase C left
/// off. Only the DRAM cache restarts cold, hence the unmeasured warm
/// window before the measured phase.
WarmResult serve_warm_restart(BlockStorageFactory factory,
                              const std::string& manifest_path,
                              std::uint64_t trickle_pumps) {
  StoreConfig cfg;
  cfg.cache_shards = 1;
  Store store = Store::open(cfg, manifest_path, std::move(factory));

  std::vector<TraceGenerator> gens;
  gens.reserve(kTables);
  for (std::size_t t = 0; t < kTables; ++t) {
    gens.emplace_back(workload(t), splitmix64(0xB00B00 + t));
    (void)gens[t].make_embeddings();
    (void)gens[t].generate(kTrainQueries);
  }
  const auto skip = [&](std::size_t n) {
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t t = 0; t < kTables; ++t) (void)gens[t].generate(1);
    }
  };
  skip(kWarm + kPhaseA);
  for (auto& gen : gens) gen.apply_drift();
  skip(kWarm + kPhaseB + trickle_pumps + kWarm + kPhaseC);

  WarmResult w;
  const auto serve_one = [&](bool measure) {
    store.advance_time_us(kInterarrivalUs);
    MultiGetRequest req;
    for (std::size_t t = 0; t < kTables; ++t) {
      const Trace slice = gens[t].generate(1);
      req.add(static_cast<TableId>(t), slice.query(0));
    }
    const MultiGetResult res = store.multi_get(req);
    if (measure) {
      for (const auto& bytes : res.vectors) {
        fnv_mix(w.digest, bytes.data(), bytes.size());
      }
    }
  };
  for (std::size_t q = 0; q < kWarm; ++q) serve_one(false);
  const TableMetrics mark = store.total_metrics();
  for (std::size_t q = 0; q < kPhaseD; ++q) serve_one(true);
  const TableMetrics now = store.total_metrics();
  const std::uint64_t lookups = now.lookups - mark.lookups;
  w.hit_rate = lookups ? static_cast<double>(now.hits - mark.hits) /
                             static_cast<double>(lookups)
                       : 0.0;
  w.storage_blocks = store.storage().num_blocks();
  w.write_blocks = store.store_metrics().write_blocks;
  w.endurance_bytes = store.endurance().total_bytes_written();
  w.manifest_commits = store.store_metrics().manifest_commits;
  w.trickle_epoch = store.trickle_epoch();
  return w;
}

TEST(ReplayGolden, WarmRestartRecoversCommittedPlanAcrossBackends) {
  const std::string block = "/tmp/bandana_replay_warm.bin";
  const std::string manifest = block + ".manifest";
  std::remove(block.c_str());
  std::remove(manifest.c_str());
  std::remove((manifest + ".tmp").c_str());

  // The cold lifecycle, persisted: attaching a manifest must not perturb
  // the replay — every structural golden still holds.
  const ReplayResult cold =
      run_replay(file_storage_factory(block, manifest), manifest, block);
  check_structural_goldens(cold, /*inline_backend=*/true);
  // One commit per durable transition: the attach, the reserve has already
  // happened by then, and every installed mapping swap.
  EXPECT_GE(cold.store_metrics.manifest_commits,
            1 + cold.store_metrics.mapping_swaps);

  // Warm restart through the plain file backend.
  const WarmResult file_warm = serve_warm_restart(
      file_storage_factory(block, manifest), manifest, cold.trickle_pumps);
  std::printf("[replay] warm restart hit rate D = %.4f (B %.4f, C %.4f)\n",
              file_warm.hit_rate, cold.rates.b, cold.rates.c);
  // No retraining, no block writes, no new commits — serving only.
  EXPECT_EQ(file_warm.write_blocks, 0u);
  EXPECT_EQ(file_warm.endurance_bytes, 0u);
  EXPECT_EQ(file_warm.manifest_commits, 0u);
  // The durable state came back whole: storage footprint and swap lineage.
  EXPECT_EQ(file_warm.storage_blocks, cold.storage_blocks);
  EXPECT_EQ(file_warm.trickle_epoch, cold.store_metrics.mapping_swaps);
  // Hit-rate continuity: the recovered layout is the RETRAINED one — the
  // restart serves the drifted traffic at phase-C level, well above the
  // pre-retraining phase-B floor, without any retraining of its own.
  EXPECT_GT(file_warm.hit_rate, cold.rates.b + 0.05);
  EXPECT_GT(file_warm.hit_rate, cold.rates.c - 0.05);

  // The same manifest reopened through the async (batched/staged) backend
  // serves byte-identical phase-D traffic.
  const WarmResult async_warm =
      serve_warm_restart(async_file_storage_factory(block, {}, manifest),
                         manifest, cold.trickle_pumps);
  EXPECT_EQ(async_warm.digest, file_warm.digest);
  EXPECT_EQ(async_warm.storage_blocks, file_warm.storage_blocks);
  EXPECT_EQ(async_warm.trickle_epoch, file_warm.trickle_epoch);
  EXPECT_EQ(async_warm.write_blocks, 0u);

  std::remove(block.c_str());
  std::remove(manifest.c_str());
}

TEST(ReplayGolden, MemoryBackendIsDeterministicAcrossRuns) {
  const ReplayResult a = run_replay(memory_storage_factory());
  const ReplayResult b = run_replay(memory_storage_factory());
  EXPECT_EQ(a.digest, b.digest);
  expect_table_metrics_eq(a.totals, b.totals, "memory replay");
  expect_write_path_eq(a, b, "memory replay");
  EXPECT_EQ(a.store_metrics.staged_blocks, b.store_metrics.staged_blocks);
  EXPECT_EQ(a.store_metrics.deferred_lookups,
            b.store_metrics.deferred_lookups);
  EXPECT_DOUBLE_EQ(a.rates.a, b.rates.a);
  EXPECT_DOUBLE_EQ(a.rates.b, b.rates.b);
  EXPECT_DOUBLE_EQ(a.rates.c, b.rates.c);
  check_structural_goldens(a, /*inline_backend=*/true);
}

TEST(ReplayGolden, FileBackendMatchesMemoryExactly) {
  const std::string path = "/tmp/bandana_replay_golden_file.bin";
  const ReplayResult mem = run_replay(memory_storage_factory());
  const ReplayResult file = run_replay(file_storage_factory(path));
  std::remove(path.c_str());
  EXPECT_EQ(mem.digest, file.digest);
  expect_table_metrics_eq(mem.totals, file.totals, "file vs memory");
  expect_write_path_eq(mem, file, "file vs memory");
  EXPECT_EQ(file.store_metrics.staged_blocks, 0u);
  check_structural_goldens(file, /*inline_backend=*/true);
}

TEST(ReplayGolden, AsyncFileBackendServesIdenticalBytes) {
  const std::string auto_path = "/tmp/bandana_replay_golden_async.bin";
  const std::string pool_path = "/tmp/bandana_replay_golden_pool.bin";
  const ReplayResult mem = run_replay(memory_storage_factory());
  const ReplayResult async_auto =
      run_replay(async_file_storage_factory(auto_path));
  AsyncFileBlockStorage::Options pool_opts;
  pool_opts.force_thread_pool = true;
  const ReplayResult async_pool =
      run_replay(async_file_storage_factory(pool_path, pool_opts));
  std::remove(auto_path.c_str());
  std::remove(pool_path.c_str());

  // Byte identity across the staged pipeline, whichever async path the
  // host kernel provides.
  EXPECT_EQ(mem.digest, async_auto.digest);
  EXPECT_EQ(mem.digest, async_pool.digest);
  // The io_uring and thread-pool paths are the same pipeline: full counter
  // identity between them.
  expect_table_metrics_eq(async_auto.totals, async_pool.totals,
                          "async auto vs thread-pool");
  expect_write_path_eq(async_auto, async_pool, "async auto vs thread-pool");
  // Against memory: the write path (publish + trickle) is identical; the
  // read path differs only in staging bookkeeping.
  expect_write_path_eq(mem, async_auto, "async vs memory write path");
  EXPECT_EQ(mem.totals.lookups, async_auto.totals.lookups);
  EXPECT_EQ(mem.totals.app_bytes_served, async_auto.totals.app_bytes_served);
  check_structural_goldens(async_auto, /*inline_backend=*/false);
}

}  // namespace
}  // namespace bandana
