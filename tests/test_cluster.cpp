// Distributed serving tier: StoreCluster + ClusterRouter.
//
// The identity contract anchors everything: a 1-node, 1-replica cluster
// must be bit-equivalent to a bare Store built from the same plan and
// seed — same bytes, same metrics counters, same latencies. The rest of
// the suite exercises what the cluster adds on top: deterministic
// placement, range splits, replica read balancing, down-node failover
// with partial-failure accounting, per-owning-node block-read dedup,
// degraded-node latency inflation, async scatter-gather, and republish
// fan-out to every replica.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/router.h"
#include "cluster/store_cluster.h"
#include "core/store_builder.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

constexpr std::size_t kVecBytes = 128;  // dim 32 x fp32

TableWorkloadConfig table_config(std::uint32_t vectors = 2048) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = vectors;
  cfg.dim = 32;
  cfg.mean_lookups_per_query = 10;
  cfg.num_profiles = 64;
  return cfg;
}

StoreConfig store_config(bool timing = false) {
  StoreConfig cfg;
  cfg.simulate_timing = timing;
  cfg.cache_shards = 1;  // deterministic LRU order for identity checks
  return cfg;
}

TablePlan simple_plan(std::uint32_t vectors, std::uint64_t cache_vectors,
                      std::uint64_t layout_seed) {
  TablePolicy policy;
  policy.cache_vectors = cache_vectors;
  policy.policy = PrefetchPolicy::kNone;
  return TablePlan{layout_seed == 0
                       ? BlockLayout::identity(vectors, 32)
                       : BlockLayout::random(vectors, 32, layout_seed),
                   /*access_counts=*/{}, policy, /*shp_train_fanout=*/0.0};
}

/// Two 2048-vector tables with distinct value sets and layouts.
struct Model {
  StorePlan plan;
  std::vector<EmbeddingTable> values;
};

Model two_table_model(std::uint64_t cache_vectors = 256) {
  Model m;
  m.values.push_back(TraceGenerator(table_config(), 1).make_embeddings());
  m.values.push_back(TraceGenerator(table_config(), 2).make_embeddings());
  m.plan.tables.push_back(simple_plan(2048, cache_vectors, 0));
  m.plan.tables.push_back(simple_plan(2048, cache_vectors, 7));
  return m;
}

ClusterConfig cluster_config(std::uint32_t nodes, std::uint32_t replicas,
                             std::uint32_t hot_tables, bool timing = false) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replicas = replicas;
  cfg.hot_tables = hot_tables;
  cfg.store = store_config(timing);
  return cfg;
}

bool bytes_match(const EmbeddingTable& values, VectorId v,
                 const std::byte* got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got, want.data(), want.size()) == 0;
}

void expect_table_metrics_eq(const TableMetrics& a, const TableMetrics& b) {
  EXPECT_EQ(a.lookups, b.lookups);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.nvm_block_reads, b.nvm_block_reads);
  EXPECT_EQ(a.prefetch_inserted, b.prefetch_inserted);
  EXPECT_EQ(a.prefetch_hits, b.prefetch_hits);
  EXPECT_EQ(a.nvm_bytes_read, b.nvm_bytes_read);
  EXPECT_EQ(a.miss_bytes, b.miss_bytes);
  EXPECT_EQ(a.app_bytes_served, b.app_bytes_served);
  EXPECT_EQ(a.republish_writes, b.republish_writes);
}

void expect_store_metrics_eq(const StoreMetrics& a, const StoreMetrics& b) {
  EXPECT_EQ(a.staged_blocks, b.staged_blocks);
  EXPECT_EQ(a.stage_truncated_blocks, b.stage_truncated_blocks);
  EXPECT_EQ(a.deferred_lookups, b.deferred_lookups);
  EXPECT_EQ(a.retry_blocks, b.retry_blocks);
  EXPECT_EQ(a.retry_waves, b.retry_waves);
  EXPECT_EQ(a.write_waves, b.write_waves);
  EXPECT_EQ(a.write_blocks, b.write_blocks);
  EXPECT_EQ(a.republish_skipped_blocks, b.republish_skipped_blocks);
  EXPECT_EQ(a.mapping_swaps, b.mapping_swaps);
}

/// Fault-injection shim for the serving path: delegates to memory storage
/// but throws on reads while armed (a dying device mid-sub-request).
/// Writes always succeed so publish/setup work.
class ThrowingReadStorage final : public BlockStorage {
 public:
  ThrowingReadStorage(std::uint64_t blocks, std::size_t bytes,
                      std::shared_ptr<std::atomic<bool>> armed)
      : inner_(blocks, bytes), armed_(std::move(armed)) {}

  std::size_t block_bytes() const override { return inner_.block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_.num_blocks(); }
  void read_block(BlockId b, std::span<std::byte> out) const override {
    if (armed_->load()) throw std::runtime_error("injected read fault");
    inner_.read_block(b, out);
  }
  void read_blocks(std::span<const BlockReadOp> ops) const override {
    if (armed_->load()) throw std::runtime_error("injected read fault");
    inner_.read_blocks(ops);
  }
  void write_block(BlockId b, std::span<const std::byte> in) override {
    inner_.write_block(b, in);
  }

 private:
  MemoryBlockStorage inner_;
  std::shared_ptr<std::atomic<bool>> armed_;
};

// --- The identity contract -------------------------------------------------

TEST(StoreCluster, OneNodeOneReplicaIsBitEquivalentToBareStore) {
  const Model m = two_table_model();
  StoreBuilder builder(store_config(/*timing=*/true));
  builder.seed(42);
  builder.add_table(m.values[0], m.plan.tables[0]);
  builder.add_table(m.values[1], m.plan.tables[1]);
  Store bare = builder.build();

  ClusterConfig ccfg = cluster_config(1, 1, 0, /*timing=*/true);
  ccfg.seed = 42;
  StoreCluster cluster(ccfg, m.plan, m.values);

  TraceGenerator gen(table_config(), 9);
  const Trace trace = gen.generate(150);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    const MultiGetResult want = bare.multi_get(req);
    const ClusterMultiGetResult got = cluster.router().multi_get(req);
    ASSERT_EQ(got.result.vectors, want.vectors) << "request " << q;
    ASSERT_EQ(got.result.block_reads, want.block_reads) << "request " << q;
    ASSERT_DOUBLE_EQ(got.result.service_latency_us, want.service_latency_us)
        << "request " << q;
    ASSERT_EQ(got.sub_requests, 1u);
    EXPECT_TRUE(got.complete());
    for (std::size_t g = 0; g < 2; ++g) {
      EXPECT_EQ(got.result.per_table[g].hits, want.per_table[g].hits);
      EXPECT_EQ(got.result.per_table[g].misses, want.per_table[g].misses);
      EXPECT_EQ(got.result.per_table[g].block_reads,
                want.per_table[g].block_reads);
    }
    // Both clocks pace the same arrivals.
    bare.advance_time_us(50.0);
    cluster.advance_time_us(50.0);
  }

  const ClusterMetrics cm = cluster.metrics();
  expect_table_metrics_eq(cm.tables, bare.total_metrics());
  expect_store_metrics_eq(cm.store, bare.store_metrics());
  expect_table_metrics_eq(cluster.table_metrics(0), bare.table_metrics(0));
  EXPECT_EQ(cm.router.requests, trace.num_queries());
  EXPECT_EQ(cm.router.sub_requests, trace.num_queries());
  EXPECT_EQ(cm.router.failed_sub_requests, 0u);
  EXPECT_EQ(cm.router.failovers, 0u);

  const LatencyRecorder cluster_lat = cluster.router().request_latency_us();
  const LatencyRecorder bare_lat = bare.request_latency_us();
  EXPECT_EQ(cluster_lat.count(), bare_lat.count());
  EXPECT_DOUBLE_EQ(cluster_lat.mean(), bare_lat.mean());
  EXPECT_DOUBLE_EQ(cluster_lat.max(), bare_lat.max());
}

// --- Placement -------------------------------------------------------------

TEST(Placement, SameSeedAndConfigYieldsIdenticalMap) {
  const Model m = two_table_model();
  for (const PlacementKind kind :
       {PlacementKind::kHash, PlacementKind::kPlanAware}) {
    ClusterConfig ccfg = cluster_config(4, 2, 1);
    ccfg.placement = kind;
    ccfg.split_min_vectors = 1024;  // the 2048-vector tables split
    StoreCluster a(ccfg, m.plan, m.values);
    StoreCluster b(ccfg, m.plan, m.values);
    EXPECT_EQ(a.placement(), b.placement())
        << "placement kind " << static_cast<int>(kind);
  }
}

TEST(Placement, DifferentSeedsMovePrimaries) {
  // Not a strict requirement per table, but across 16 tables two seeds
  // agreeing everywhere would mean the seed is ignored.
  StorePlan plan;
  std::vector<EmbeddingTable> values;
  for (int t = 0; t < 16; ++t) {
    values.push_back(
        TraceGenerator(table_config(128), 100 + t).make_embeddings());
    plan.tables.push_back(simple_plan(128, 0, 0));
  }
  ClusterConfig a_cfg = cluster_config(5, 1, 0);
  ClusterConfig b_cfg = a_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  StoreCluster a(a_cfg, plan, values);
  StoreCluster b(b_cfg, plan, values);
  EXPECT_NE(a.placement(), b.placement());
}

TEST(Placement, PlanAwareSplitsHugeTablesAcrossAllNodes) {
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(3, 1, 0);
  ccfg.placement = PlacementKind::kPlanAware;
  ccfg.split_min_vectors = 256;
  StoreCluster cluster(ccfg, m.plan, m.values);
  for (TableId t = 0; t < 2; ++t) {
    const auto& ranges = cluster.placement().tables[t];
    ASSERT_EQ(ranges.size(), 3u);
    VectorId expect_lo = 0;
    std::vector<bool> node_seen(3, false);
    for (const auto& r : ranges) {
      EXPECT_EQ(r.lo, expect_lo);  // contiguous, gap-free
      expect_lo = r.hi;
      ASSERT_EQ(r.nodes.size(), 1u);
      node_seen[r.nodes[0]] = true;
    }
    EXPECT_EQ(expect_lo, 2048u);
    EXPECT_TRUE(node_seen[0] && node_seen[1] && node_seen[2]);
  }
}

TEST(StoreCluster, RangeSplitClusterServesIdenticalBytes) {
  const Model m = two_table_model();
  StoreBuilder builder(store_config());
  builder.seed(42);
  builder.add_table(m.values[0], m.plan.tables[0]);
  builder.add_table(m.values[1], m.plan.tables[1]);
  Store bare = builder.build();

  ClusterConfig ccfg = cluster_config(3, 1, 0);
  ccfg.placement = PlacementKind::kPlanAware;
  ccfg.split_min_vectors = 256;
  StoreCluster cluster(ccfg, m.plan, m.values);

  TraceGenerator gen(table_config(), 11);
  const Trace trace = gen.generate(150);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    const MultiGetResult want = bare.multi_get(req);
    const ClusterMultiGetResult got = cluster.router().multi_get(req);
    // Caching and block geometry differ across the split — the bytes, the
    // result shape, and the loss-free accounting must not.
    ASSERT_EQ(got.result.vectors, want.vectors) << "request " << q;
    EXPECT_TRUE(got.complete());
    EXPECT_LE(got.sub_requests, 3u);
  }
  const ClusterMetrics cm = cluster.metrics();
  EXPECT_EQ(cm.tables.lookups, bare.total_metrics().lookups);
  EXPECT_EQ(cm.router.failed_lookups, 0u);
}

// --- Replication and read balancing ---------------------------------------

TEST(StoreCluster, ReplicaReadBalancingIsWithinTolerance) {
  for (const ReadBalance rb :
       {ReadBalance::kRoundRobin, ReadBalance::kLeastOutstanding}) {
    const Model m = two_table_model();
    ClusterConfig ccfg = cluster_config(2, 2, 2);
    ccfg.read_balance = rb;
    StoreCluster cluster(ccfg, m.plan, m.values);
    // Both tables are hot: every range is on both nodes.
    for (TableId t = 0; t < 2; ++t) {
      ASSERT_EQ(cluster.placement().tables[t][0].nodes.size(), 2u);
    }

    const std::size_t kRequests = 200;
    const std::vector<VectorId> ids = {1, 2, 3, 4};
    for (std::size_t q = 0; q < kRequests; ++q) {
      MultiGetRequest req;
      req.add(0, ids);
      const ClusterMultiGetResult res = cluster.router().multi_get(req);
      EXPECT_TRUE(res.complete());
    }
    const std::uint64_t a = cluster.node(0).total_metrics().lookups;
    const std::uint64_t b = cluster.node(1).total_metrics().lookups;
    const std::uint64_t total = a + b;
    EXPECT_EQ(total, kRequests * ids.size());
    // Both balancers must split an idle-cluster stream near 50/50.
    EXPECT_LE(std::llabs(static_cast<long long>(a) -
                         static_cast<long long>(b)),
              static_cast<long long>(total / 10))
        << "balance " << static_cast<int>(rb) << ": " << a << " vs " << b;
  }
}

TEST(StoreCluster, DownNodeKeepsServingReplicatedTables) {
  const Model m = two_table_model();
  // Table 0 is the popularity head (hot_table_flags tie-break: lowest id);
  // table 1 stays single-copy.
  ClusterConfig ccfg = cluster_config(2, 2, 1);
  StoreCluster cluster(ccfg, m.plan, m.values);
  ASSERT_EQ(cluster.placement().tables[0][0].nodes.size(), 2u);
  ASSERT_EQ(cluster.placement().tables[1][0].nodes.size(), 1u);
  const std::uint32_t lone_node = cluster.placement().tables[1][0].nodes[0];

  cluster.set_node_down(lone_node, true);
  EXPECT_TRUE(cluster.node_down(lone_node));

  TraceGenerator gen(table_config(), 13);
  const Trace trace = gen.generate(100);
  std::uint64_t lost_ids = 0, lost_groups = 0;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    const auto ids = trace.query(q);
    MultiGetRequest req;
    req.add(0, ids).add(1, ids);
    const ClusterMultiGetResult res = cluster.router().multi_get(req);
    // The replicated table survives: every one of its ids carries real
    // bytes, served from the alive replica.
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(bytes_match(m.values[0], ids[i],
                              res.result.vectors[0].data() + i * kVecBytes))
          << "request " << q << " id " << ids[i];
    }
    // The single-copy table is lost — one failed sub-request group, every
    // id zero-filled and accounted.
    EXPECT_EQ(res.failed_sub_requests, 1u);
    EXPECT_EQ(res.failed_lookups, ids.size());
    EXPECT_FALSE(res.complete());
    lost_ids += ids.size();
    ++lost_groups;
    const std::vector<std::byte> zeros(ids.size() * kVecBytes, std::byte{0});
    EXPECT_EQ(res.result.vectors[1], zeros);
    EXPECT_EQ(res.result.per_table[1].hits, 0u);
    EXPECT_EQ(res.result.per_table[1].misses, ids.size());
  }
  const RouterMetrics rm = cluster.router().metrics();
  EXPECT_EQ(rm.failed_sub_requests, lost_groups);
  EXPECT_EQ(rm.failed_lookups, lost_ids);
  // Whenever the balancer preferred the down node for table 0, it failed
  // over; over 100 alternating requests that must have happened.
  EXPECT_GT(rm.failovers, 0u);
  // The down node was never dispatched to.
  EXPECT_EQ(cluster.node(lone_node).total_metrics().lookups, 0u);

  // Recovery: mark the node back up and everything serves again.
  cluster.set_node_down(lone_node, false);
  MultiGetRequest req;
  req.add(1, std::vector<VectorId>{5, 6, 7});
  const ClusterMultiGetResult res = cluster.router().multi_get(req);
  EXPECT_TRUE(res.complete());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(bytes_match(m.values[1], static_cast<VectorId>(5 + i),
                            res.result.vectors[0].data() + i * kVecBytes));
  }
}

TEST(StoreCluster, AllReplicasDownZeroFillsAndRecovers) {
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(2, 2, 2);
  StoreCluster cluster(ccfg, m.plan, m.values);
  cluster.set_node_down(0, true);
  cluster.set_node_down(1, true);
  MultiGetRequest req;
  req.add(0, std::vector<VectorId>{1, 2});
  const ClusterMultiGetResult res = cluster.router().multi_get(req);
  EXPECT_EQ(res.sub_requests, 0u);
  EXPECT_EQ(res.failed_sub_requests, 1u);
  EXPECT_EQ(res.failed_lookups, 2u);
  EXPECT_EQ(res.result.vectors[0],
            std::vector<std::byte>(2 * kVecBytes, std::byte{0}));
  cluster.set_node_down(0, false);
  EXPECT_TRUE(cluster.router().multi_get(req).complete());
}

// --- Scatter-gather details ------------------------------------------------

TEST(StoreCluster, ScatterPreservesPerNodeBlockReadDedup) {
  // Regression: a key (block) appearing in two id lists of one request
  // must be fetched once per OWNING NODE — the router must route both
  // lists into the one sub-request where the node-local request-wide
  // dedup can see them.
  const Model m = two_table_model();
  StorePlan plan;
  plan.tables.push_back(simple_plan(2048, /*cache_vectors=*/1, 0));
  ClusterConfig ccfg = cluster_config(2, 1, 0);
  StoreCluster cluster(ccfg, plan, std::span(m.values.data(), 1));

  // Identity layout, 32 vectors per block: all four ids live in block 0.
  MultiGetRequest req;
  req.add(0, std::vector<VectorId>{0, 1}).add(0, std::vector<VectorId>{2, 3});
  const ClusterMultiGetResult res = cluster.router().multi_get(req);
  EXPECT_EQ(res.sub_requests, 1u);  // one owning node, one sub-request
  EXPECT_EQ(res.result.block_reads, 1u);
  EXPECT_EQ(cluster.table_metrics(0).nvm_block_reads, 1u);
  for (std::size_t g = 0; g < 2; ++g) {
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_TRUE(bytes_match(m.values[0],
                              static_cast<VectorId>(g * 2 + i),
                              res.result.vectors[g].data() + i * kVecBytes));
    }
  }
}

TEST(StoreCluster, DegradedNodeInflatesMergedLatency) {
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(1, 1, 0, /*timing=*/true);
  StoreCluster healthy(ccfg, m.plan, m.values);
  StoreCluster degraded(ccfg, m.plan, m.values);
  degraded.set_node_degraded(0, 4.0);
  EXPECT_DOUBLE_EQ(degraded.node_degrade(0), 4.0);

  MultiGetRequest req;
  req.add(0, std::vector<VectorId>{0, 100, 500});
  const double base = healthy.router().multi_get(req).result.service_latency_us;
  const double slow = degraded.router().multi_get(req).result.service_latency_us;
  EXPECT_GT(base, 0.0);  // cold store: all misses
  EXPECT_DOUBLE_EQ(slow, 4.0 * base);

  EXPECT_THROW(degraded.set_node_degraded(0, 0.5), std::invalid_argument);
}

TEST(StoreCluster, ValidatesBeforeServing) {
  const Model m = two_table_model();
  StoreCluster cluster(cluster_config(2, 1, 0), m.plan, m.values);
  MultiGetRequest bad_table;
  bad_table.add(9, std::vector<VectorId>{0});
  EXPECT_THROW(cluster.router().multi_get(bad_table), std::out_of_range);
  MultiGetRequest bad_vector;
  bad_vector.add(0, std::vector<VectorId>{99'999});
  EXPECT_THROW(cluster.router().multi_get(bad_vector), std::out_of_range);
  const RouterMetrics rm = cluster.router().metrics();
  EXPECT_EQ(rm.requests, 0u);
  EXPECT_EQ(rm.sub_requests, 0u);

  const ClusterMultiGetResult res =
      cluster.router().multi_get(MultiGetRequest{});
  EXPECT_TRUE(res.complete());
  EXPECT_EQ(res.sub_requests, 0u);
}

TEST(StoreCluster, AsyncScatterGatherMatchesSyncBytes) {
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(3, 2, 2);
  ccfg.placement = PlacementKind::kPlanAware;
  ccfg.split_min_vectors = 256;
  StoreCluster sync_cluster(ccfg, m.plan, m.values);
  StoreCluster async_cluster(ccfg, m.plan, m.values);
  ThreadPool pool(4);

  TraceGenerator gen(table_config(), 17);
  const Trace trace = gen.generate(200);
  std::vector<std::future<ClusterMultiGetResult>> futures;
  std::vector<MultiGetResult> want;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    want.push_back(sync_cluster.router().multi_get(req).result);
    futures.push_back(async_cluster.router().multi_get_async(req, pool));
  }
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const ClusterMultiGetResult res = futures[q].get();
    // Scheduling order may change hit/miss splits, never the bytes.
    EXPECT_EQ(res.result.vectors, want[q].vectors) << "request " << q;
    EXPECT_TRUE(res.complete());
  }
  const ClusterMetrics cm = async_cluster.metrics();
  EXPECT_EQ(cm.router.requests, trace.num_queries());
  EXPECT_EQ(cm.tables.lookups,
            sync_cluster.metrics().tables.lookups);

  MultiGetRequest bad;
  bad.add(42, std::vector<VectorId>{0});
  EXPECT_THROW(async_cluster.router().multi_get_async(bad, pool),
               std::out_of_range);
}

TEST(StoreCluster, AsyncServesUnderConcurrentFaultFlips) {
  // TSan target: async scatter-gather racing fault injection. Bytes must
  // stay correct for every id that was actually served; the loss
  // accounting must stay internally consistent.
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(3, 2, 2);
  StoreCluster cluster(ccfg, m.plan, m.values);
  ThreadPool pool(4);

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    std::uint32_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      cluster.set_node_down(n % 3, (n / 3) % 2 == 0);
      cluster.set_node_degraded(n % 3, 1.0 + (n % 4));
      ++n;
      std::this_thread::yield();
    }
    for (std::uint32_t k = 0; k < 3; ++k) cluster.set_node_down(k, false);
  });

  TraceGenerator gen(table_config(), 19);
  const Trace trace = gen.generate(300);
  std::vector<std::future<ClusterMultiGetResult>> futures;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    futures.push_back(cluster.router().multi_get_async(std::move(req), pool));
  }
  std::uint64_t lost = 0;
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const ClusterMultiGetResult res = futures[q].get();
    const auto ids = trace.query(q);
    lost += res.failed_lookups;
    for (int t = 0; t < 2; ++t) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        const std::byte* got = res.result.vectors[t].data() + i * kVecBytes;
        const std::vector<std::byte> zeros(kVecBytes, std::byte{0});
        if (std::memcmp(got, zeros.data(), kVecBytes) != 0) {
          ASSERT_TRUE(bytes_match(m.values[t], ids[i], got))
              << "request " << q << " table " << t << " id " << ids[i];
        }
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  flipper.join();
  EXPECT_EQ(cluster.router().metrics().failed_lookups, lost);
}

TEST(StoreCluster, FailedSubRequestReleasesOutstandingCount) {
  // Regression: the kLeastOutstanding balancer counts in-flight
  // sub-requests per node. A sub-request that THROWS (dying device) must
  // decrement on that path too — a leaked count permanently biases the
  // balancer away from the node after it recovers.
  const Model m = two_table_model(/*cache_vectors=*/1);
  ClusterConfig ccfg = cluster_config(2, 2, 2);
  ccfg.read_balance = ReadBalance::kLeastOutstanding;
  const auto armed = std::make_shared<std::atomic<bool>>(false);
  StoreCluster cluster(
      ccfg, m.plan, m.values, nullptr, nullptr,
      [&](std::uint32_t n, StoreBuilder& b) {
        if (n != 0) return;
        b.storage([armed](std::uint64_t blocks, std::size_t bytes) {
          return std::make_unique<ThrowingReadStorage>(blocks, bytes, armed);
        });
      });
  ASSERT_EQ(cluster.placement().tables[0][0].nodes.size(), 2u);

  armed->store(true);
  std::size_t faults = 0;
  for (std::size_t q = 0; q < 40; ++q) {
    // Fresh ids every request: the tiny cache guarantees storage reads, so
    // whichever request routes to node 0 hits the injected fault.
    const VectorId base = static_cast<VectorId>((q * 4) % 2040);
    MultiGetRequest req;
    req.add(0, std::vector<VectorId>{base, base + 1, base + 2, base + 3});
    try {
      cluster.router().multi_get(req);
    } catch (const std::runtime_error&) {
      ++faults;
    }
    // Every completion path — success or throw — returned its slot.
    ASSERT_EQ(cluster.node_outstanding(0), 0u) << "request " << q;
    ASSERT_EQ(cluster.node_outstanding(1), 0u) << "request " << q;
  }
  ASSERT_GT(faults, 0u);  // the balancer did route to the faulty node

  // Recovery: with the fault disarmed the balancer must still split the
  // stream near 50/50 — a leaked count would starve node 0 forever.
  armed->store(false);
  const std::uint64_t before_a = cluster.node(0).total_metrics().lookups;
  const std::uint64_t before_b = cluster.node(1).total_metrics().lookups;
  const std::size_t kRequests = 200;
  for (std::size_t q = 0; q < kRequests; ++q) {
    MultiGetRequest req;
    req.add(0, std::vector<VectorId>{1, 2, 3, 4});
    EXPECT_TRUE(cluster.router().multi_get(req).complete());
  }
  const std::uint64_t a = cluster.node(0).total_metrics().lookups - before_a;
  const std::uint64_t b = cluster.node(1).total_metrics().lookups - before_b;
  EXPECT_EQ(a + b, kRequests * 4);
  EXPECT_LE(std::llabs(static_cast<long long>(a) -
                       static_cast<long long>(b)),
            static_cast<long long>((a + b) / 10))
      << a << " vs " << b;
}

// --- Node seed derivation --------------------------------------------------

TEST(ClusterNodeSeed, AvoidsAdjacentSeedAliasingAndKeepsIdentityContract) {
  // Node 0 keeps the raw seed — that is what makes a 1-node cluster
  // bit-identical to a bare Store with cfg.seed (the identity test above).
  EXPECT_EQ(cluster_node_seed(42, 0), 42u);
  EXPECT_EQ(cluster_node_seed(0, 0), 0u);
  // Regression: the old `seed + n` scheme made cluster seed s's node n
  // share its RNG stream with cluster seed s+n's node 0, so adjacent-seed
  // experiment arms were partially correlated. The splitmix64 derivation
  // must collide with neither the raw adjacent seeds nor its own node 0.
  for (std::uint64_t s = 0; s < 64; ++s) {
    for (std::uint32_t n = 1; n < 8; ++n) {
      EXPECT_NE(cluster_node_seed(s, n), s + n) << "seed " << s << " node "
                                                << n;
      EXPECT_NE(cluster_node_seed(s, n), cluster_node_seed(s + n, 0));
      EXPECT_NE(cluster_node_seed(s, n), cluster_node_seed(s, 0));
    }
  }
  // Distinct nodes of one cluster draw distinct streams.
  std::set<std::uint64_t> seen;
  for (std::uint32_t n = 0; n < 16; ++n) {
    seen.insert(cluster_node_seed(7, n));
  }
  EXPECT_EQ(seen.size(), 16u);
  // Determinism: the derivation is a pure function.
  EXPECT_EQ(cluster_node_seed(7, 3), cluster_node_seed(7, 3));
}

// --- Republish fan-out -----------------------------------------------------

TEST(StoreCluster, TrickleRepublishFansOutToEveryReplica) {
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(2, 2, 1);
  StoreCluster cluster(ccfg, m.plan, m.values);
  const auto& range = cluster.placement().tables[0][0];
  ASSERT_EQ(range.nodes.size(), 2u);

  // Retrained values for table 0: every vector perturbed.
  EmbeddingTable fresh = m.values[0];
  for (VectorId v = 0; v < fresh.num_vectors(); ++v) {
    for (float& x : fresh.vector(v)) x += 1.0f;
  }
  RepublishConfig rcfg;
  rcfg.blocks_per_interval = 8;
  rcfg.interval_us = 100.0;
  ClusterRepublish push = cluster.begin_trickle_republish(
      0, fresh, m.plan.tables[0], rcfg);
  EXPECT_EQ(push.sessions(), 2u);  // one per replica
  EXPECT_EQ(push.table(), 0u);
  EXPECT_GT(push.total_blocks(), 0u);
  std::size_t pumps = 0;
  while (!push.done()) {
    push.pump();
    cluster.advance_time_us(100.0);
    ASSERT_LT(++pumps, 10'000u);
  }
  EXPECT_TRUE(push.mapping_swapped());
  // Every session wrote its full diff; the two replicas did equal work.
  EXPECT_EQ(push.written_blocks(), push.total_blocks());

  // EVERY replica serves the fresh bytes: force each node in turn by
  // downing the other.
  for (std::uint32_t down = 0; down < 2; ++down) {
    cluster.set_node_down(down, true);
    MultiGetRequest req;
    req.add(0, std::vector<VectorId>{3, 300});
    const ClusterMultiGetResult res = cluster.router().multi_get(req);
    ASSERT_TRUE(res.complete());
    EXPECT_TRUE(bytes_match(fresh, 3, res.result.vectors[0].data()));
    EXPECT_TRUE(
        bytes_match(fresh, 300, res.result.vectors[0].data() + kVecBytes));
    cluster.set_node_down(down, false);
  }
  // Both replicas swapped mappings.
  EXPECT_EQ(cluster.metrics().store.mapping_swaps, 2u);
}

TEST(StoreCluster, OneShotRepublishReachesSplitRanges) {
  const Model m = two_table_model();
  ClusterConfig ccfg = cluster_config(3, 1, 0);
  ccfg.placement = PlacementKind::kPlanAware;
  ccfg.split_min_vectors = 256;
  StoreCluster cluster(ccfg, m.plan, m.values);
  ASSERT_EQ(cluster.placement().tables[0].size(), 3u);

  EmbeddingTable fresh = m.values[0];
  for (VectorId v = 0; v < fresh.num_vectors(); ++v) {
    for (float& x : fresh.vector(v)) x -= 2.5f;
  }
  cluster.republish(0, fresh);

  TraceGenerator gen(table_config(), 23);
  const Trace trace = gen.generate(50);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    const auto ids = trace.query(q);
    MultiGetRequest req;
    req.add(0, ids);
    const ClusterMultiGetResult res = cluster.router().multi_get(req);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(bytes_match(fresh, ids[i],
                              res.result.vectors[0].data() + i * kVecBytes))
          << "request " << q << " id " << ids[i];
    }
  }
}

}  // namespace
}  // namespace bandana
