#include "nvm/admission.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/store.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TEST(AdmissionController, UnboundedAdmitsAtArrival) {
  AdmissionController gate(/*channels=*/4, /*queue_depth=*/0);
  EXPECT_FALSE(gate.bounded());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gate.admit(5.0), 5.0);
    gate.on_submitted(1000.0 + i);
  }
  EXPECT_EQ(gate.outstanding(), 0u);  // unbounded tracks nothing
}

TEST(AdmissionController, BoundedDelaysReadsBeyondTheCap) {
  AdmissionController gate(/*channels=*/2, /*queue_depth=*/2);
  ASSERT_TRUE(gate.bounded());
  ASSERT_EQ(gate.max_outstanding(), 4u);

  // Four reads fit at arrival; their completions land at 10, 12, 14, 16.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(gate.admit(0.0), 0.0);
    gate.on_submitted(10.0 + 2 * i);
  }
  EXPECT_EQ(gate.outstanding(), 4u);
  // The fifth read waits for the earliest completion and takes its slot.
  EXPECT_EQ(gate.admit(0.0), 10.0);
  gate.on_submitted(20.0);
  // The sixth frees the t=12 slot.
  EXPECT_EQ(gate.admit(0.0), 12.0);
  gate.on_submitted(22.0);
}

TEST(AdmissionController, DrainsCompletionsAtArrival) {
  AdmissionController gate(/*channels=*/1, /*queue_depth=*/2);
  EXPECT_EQ(gate.admit(0.0), 0.0);
  gate.on_submitted(10.0);
  EXPECT_EQ(gate.admit(0.0), 0.0);
  gate.on_submitted(12.0);
  // A read arriving after both completions sees an empty gate.
  EXPECT_EQ(gate.admit(50.0), 50.0);
  EXPECT_EQ(gate.outstanding(), 0u);
}

TEST(SubmitReads, BoundedBatchIsStrictlySlowerThanUnbounded) {
  NvmDeviceConfig cfg;
  cfg.channels = 2;
  NvmLatencyModel model(cfg);
  const std::uint64_t count = 64;

  auto run = [&](unsigned depth) {
    std::vector<double> channels(cfg.channels, 0.0);
    AdmissionController gate(cfg.channels, depth);
    Rng rng(99);  // same seed: identical per-read service draws
    return submit_reads(model, 0.0, count, channels, gate, rng);
  };

  const double unbounded = run(0);
  const double bounded = run(1);
  EXPECT_GT(unbounded, 0.0);
  // At depth 1 each slot is held through the read's completion overhead,
  // so the channel idles between reads (Fig. 2's low-queue-depth regime)
  // and the batch makespan strictly grows.
  EXPECT_GT(bounded, unbounded);
  // A deeper gate hides the completion overhead: the channel queue is the
  // binding constraint again and the single-batch makespan is unchanged.
  EXPECT_EQ(run(2), unbounded);
  // A batch within the cap is untouched by the gate.
  auto run_small = [&](unsigned depth) {
    std::vector<double> channels(cfg.channels, 0.0);
    AdmissionController gate(cfg.channels, depth);
    Rng rng(99);
    return submit_reads(model, 0.0, 2, channels, gate, rng);
  };
  EXPECT_EQ(run_small(0), run_small(1));
}

// ---- Store-level: oversized requests complete correctly, just later. ----

StoreConfig admission_config(unsigned queue_depth) {
  StoreConfig cfg;
  cfg.simulate_timing = true;
  cfg.cache_shards = 1;
  cfg.device.channels = 2;
  cfg.device.queue_depth = queue_depth;
  return cfg;
}

TEST(StoreAdmission, OversizedRequestCompletesCorrectlyAndQueuesAtTheGate) {
  TableWorkloadConfig wl;
  wl.num_vectors = 4096;
  wl.dim = 32;
  TraceGenerator gen(wl, 21);
  const EmbeddingTable values = gen.make_embeddings();
  TablePolicy policy;
  policy.cache_vectors = 1;  // every distinct block is a real NVM read
  policy.policy = PrefetchPolicy::kNone;

  // One id per block for 64 blocks: far beyond queue_depth(1) x channels(2).
  std::vector<VectorId> ids;
  for (VectorId v = 0; v < 64 * 32; v += 32) ids.push_back(v);
  MultiGetRequest req;
  req.add(0, ids);

  auto serve = [&](unsigned depth) {
    Store store(admission_config(depth), /*seed=*/77);
    store.add_table(values, BlockLayout::identity(4096, 32), policy);
    return store.multi_get(req);
  };

  const MultiGetResult unbounded = serve(0);
  const MultiGetResult bounded = serve(1);

  // Identical serving result: the gate shapes timing, never bytes.
  ASSERT_EQ(bounded.vectors, unbounded.vectors);
  EXPECT_EQ(bounded.block_reads, 64u);
  EXPECT_EQ(unbounded.block_reads, 64u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto want = values.vector_bytes_view(ids[i]);
    ASSERT_EQ(std::memcmp(bounded.vectors[0].data() + i * 128, want.data(),
                          128),
              0)
        << "vector " << ids[i];
  }
  // The request exceeds the queue-depth cap and the shallow gate exposes
  // the per-read completion overhead, so its simulated latency strictly
  // exceeds the unbounded-submission latency (same rng seed, same service
  // draws — only the admission gate differs).
  EXPECT_GT(unbounded.service_latency_us, 0.0);
  EXPECT_GT(bounded.service_latency_us, unbounded.service_latency_us);
}

TEST(StoreAdmission, RequestWithinTheCapIsUnaffected) {
  TableWorkloadConfig wl;
  wl.num_vectors = 2048;
  wl.dim = 32;
  TraceGenerator gen(wl, 22);
  const EmbeddingTable values = gen.make_embeddings();
  TablePolicy policy;
  policy.cache_vectors = 1;
  policy.policy = PrefetchPolicy::kNone;

  MultiGetRequest req;
  req.add(0, std::vector<VectorId>{0, 32, 64});  // 3 blocks <= 2x2 cap

  auto serve = [&](unsigned depth) {
    Store store(admission_config(depth), /*seed=*/78);
    store.add_table(values, BlockLayout::identity(2048, 32), policy);
    return store.multi_get(req).service_latency_us;
  };
  EXPECT_DOUBLE_EQ(serve(0), serve(2));
}

}  // namespace
}  // namespace bandana
