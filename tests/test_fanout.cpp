#include "partition/fanout.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

TEST(Fanout, HandExample) {
  // 8 vectors, 4 per block: block0 = {0..3}, block1 = {4..7}.
  const auto layout = BlockLayout::identity(8, 4);
  Trace t;
  const VectorId q0[] = {0, 1, 2};     // fanout 1
  const VectorId q1[] = {0, 4};        // fanout 2
  const VectorId q2[] = {5, 5, 5};     // fanout 1 (duplicates)
  t.add_query(q0);
  t.add_query(q1);
  t.add_query(q2);
  const auto s = compute_fanout(t, layout);
  EXPECT_EQ(s.total_block_touches, 4u);
  EXPECT_NEAR(s.avg_fanout, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.avg_unique_lookups, (3 + 2 + 1) / 3.0, 1e-12);
}

TEST(Fanout, PerfectPackingReachesLowerBound) {
  // Queries exactly aligned with blocks -> fanout == 1.
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  for (int q = 0; q < 8; ++q) {
    std::vector<VectorId> ids;
    for (int i = 0; i < 8; ++i) ids.push_back(q * 8 + i);
    t.add_query(ids);
  }
  const auto s = compute_fanout(t, layout);
  EXPECT_NEAR(s.avg_fanout, 1.0, 1e-12);
  EXPECT_NEAR(s.blocks_per_unique_lookup(), 1.0 / 8.0, 1e-12);
}

TEST(Fanout, WorstCaseScattered) {
  // Each lookup in a different block.
  const auto layout = BlockLayout::identity(64, 8);
  Trace t;
  const VectorId q[] = {0, 8, 16, 24};
  t.add_query(q);
  EXPECT_NEAR(compute_fanout(t, layout).avg_fanout, 4.0, 1e-12);
}

TEST(Fanout, EmptyTrace) {
  const auto layout = BlockLayout::identity(8, 4);
  const auto s = compute_fanout(Trace{}, layout);
  EXPECT_EQ(s.avg_fanout, 0.0);
  EXPECT_EQ(s.total_block_touches, 0u);
}

}  // namespace
}  // namespace bandana
