#include "partition/shp.h"

#include <gtest/gtest.h>

#include <set>

#include "partition/fanout.h"
#include "partition/layout.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

/// Workload with strong co-access structure for SHP to find.
Trace structured_trace(std::uint32_t num_vectors, std::size_t queries,
                       std::uint64_t seed) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = num_vectors;
  cfg.mean_lookups_per_query = 16;
  cfg.new_vector_prob = 0.02;
  cfg.num_profiles = num_vectors / 50;
  cfg.profile_size = 64;
  cfg.profile_frac = 0.85;
  TraceGenerator g(cfg, seed);
  return g.generate(queries);
}

TEST(Shp, OrderIsPermutation) {
  const Trace t = structured_trace(5000, 2000, 1);
  ShpConfig cfg;
  cfg.vectors_per_block = 32;
  const auto r = run_shp(t, 5000, cfg);
  std::set<VectorId> seen(r.order.begin(), r.order.end());
  EXPECT_EQ(seen.size(), 5000u);
  EXPECT_EQ(r.access_counts.size(), 5000u);
}

TEST(Shp, ReducesFanoutSubstantially) {
  const Trace t = structured_trace(5000, 4000, 2);
  ShpConfig cfg;
  cfg.vectors_per_block = 32;
  const auto r = run_shp(t, 5000, cfg);
  EXPECT_LT(r.final_avg_fanout, 0.6 * r.initial_avg_fanout);
  // And the reported fanout matches an independent measurement.
  const auto layout = BlockLayout::from_order(r.order, 32);
  const auto measured = compute_fanout(t, layout);
  EXPECT_NEAR(measured.avg_fanout, r.final_avg_fanout,
              0.35 * r.final_avg_fanout);  // run_shp drops tiny/singleton edges
}

TEST(Shp, GeneralizesToHeldOutTrace) {
  // Train and eval traces share profile structure; SHP must help unseen
  // queries, not just the training set.
  TableWorkloadConfig cfg;
  cfg.num_vectors = 5000;
  cfg.mean_lookups_per_query = 16;
  cfg.new_vector_prob = 0.02;
  cfg.num_profiles = 100;
  cfg.profile_size = 64;
  cfg.profile_frac = 0.85;
  TraceGenerator g(cfg, 3);
  const Trace train = g.generate(4000);
  const Trace eval = g.generate(1000);

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto r = run_shp(train, 5000, sc);
  const auto shp_layout = BlockLayout::from_order(r.order, 32);
  const auto random_layout = BlockLayout::random(5000, 32, 99);
  const double shp_fanout = compute_fanout(eval, shp_layout).avg_fanout;
  const double rnd_fanout = compute_fanout(eval, random_layout).avg_fanout;
  EXPECT_LT(shp_fanout, 0.75 * rnd_fanout);
}

TEST(Shp, Deterministic) {
  const Trace t = structured_trace(2000, 1000, 4);
  ShpConfig cfg;
  cfg.vectors_per_block = 16;
  const auto a = run_shp(t, 2000, cfg);
  const auto b = run_shp(t, 2000, cfg);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.total_swaps, b.total_swaps);
}

TEST(Shp, ParallelMatchesSequential) {
  const Trace t = structured_trace(2000, 1000, 5);
  ShpConfig cfg;
  cfg.vectors_per_block = 16;
  const auto seq = run_shp(t, 2000, cfg, nullptr);
  ThreadPool pool(4);
  const auto par = run_shp(t, 2000, cfg, &pool);
  EXPECT_EQ(seq.order, par.order);
}

TEST(Shp, AccessCountsAreQueryDegrees) {
  Trace t;
  const VectorId q0[] = {1, 2, 2, 3};  // dedup: {1,2,3}
  const VectorId q1[] = {2, 3};
  const VectorId q2[] = {5};  // singleton, dropped from hypergraph
  t.add_query(q0);
  t.add_query(q1);
  t.add_query(q2);
  ShpConfig cfg;
  cfg.vectors_per_block = 2;
  const auto r = run_shp(t, 8, cfg);
  EXPECT_EQ(r.access_counts[1], 1u);
  EXPECT_EQ(r.access_counts[2], 2u);
  EXPECT_EQ(r.access_counts[3], 2u);
  EXPECT_EQ(r.access_counts[5], 0u);  // singleton query dropped
  EXPECT_EQ(r.access_counts[0], 0u);
}

TEST(Shp, MoreIterationsDoNotHurt) {
  const Trace t = structured_trace(3000, 2000, 6);
  ShpConfig weak, strong;
  weak.vectors_per_block = strong.vectors_per_block = 32;
  weak.iters_per_level = 1;
  strong.iters_per_level = 16;
  const auto rw = run_shp(t, 3000, weak);
  const auto rs = run_shp(t, 3000, strong);
  EXPECT_LE(rs.final_avg_fanout, rw.final_avg_fanout * 1.02);
}

TEST(Shp, TinyTableSingleBlock) {
  Trace t;
  const VectorId q[] = {0, 1, 2};
  t.add_query(q);
  ShpConfig cfg;
  cfg.vectors_per_block = 8;
  const auto r = run_shp(t, 4, cfg);  // fits in one block: nothing to split
  EXPECT_EQ(r.order.size(), 4u);
  EXPECT_NEAR(r.final_avg_fanout, 1.0, 1e-9);
}

TEST(Shp, PerfectlySeparableWorkload) {
  // Queries touch disjoint groups of exactly block size; SHP should reach
  // fanout ~1.
  Trace t;
  Rng rng(7);
  const std::uint32_t groups = 64, vpb = 8;
  for (int rep = 0; rep < 2000; ++rep) {
    const std::uint32_t g = static_cast<std::uint32_t>(rng.next_below(groups));
    std::vector<VectorId> ids;
    for (std::uint32_t i = 0; i < vpb; ++i) {
      if (rng.next_bernoulli(0.7)) ids.push_back(g * vpb + i);
    }
    if (ids.size() >= 2) t.add_query(ids);
  }
  ShpConfig cfg;
  cfg.vectors_per_block = vpb;
  // Tiny ranges converge best with undamped swaps; damping is for large
  // sparse hypergraphs.
  cfg.max_swap_fraction = 1.0;
  cfg.iters_per_level = 32;
  const auto r = run_shp(t, groups * vpb, cfg);
  EXPECT_LT(r.final_avg_fanout, 1.35);
}

}  // namespace
}  // namespace bandana
