#include "core/store_builder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/thread_pool.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TableWorkloadConfig table_config(std::uint32_t vectors) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = vectors;
  cfg.dim = 32;  // 128 B vectors
  cfg.mean_lookups_per_query = 8;
  cfg.num_profiles = 50;
  return cfg;
}

bool bytes_match(const EmbeddingTable& values, VectorId v,
                 std::span<const std::byte> got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got.data(), want.data(), want.size()) == 0;
}

/// Every vector of every table, served one by one, must round-trip.
void expect_full_roundtrip(Store& store,
                           const std::vector<EmbeddingTable>& values) {
  ASSERT_EQ(store.num_tables(), values.size());
  std::vector<std::byte> out(store.config().vector_bytes);
  for (TableId t = 0; t < values.size(); ++t) {
    for (VectorId v = 0; v < values[t].num_vectors(); ++v) {
      store.lookup(t, v, out);
      ASSERT_TRUE(bytes_match(values[t], v, out))
          << "table " << t << " vector " << v;
    }
  }
}

TEST(StoreBuilder, RoundTripsATrainedPlan) {
  const std::uint32_t sizes[2] = {1024, 2048};
  std::vector<Trace> train;
  std::vector<EmbeddingTable> values;
  for (int i = 0; i < 2; ++i) {
    TraceGenerator gen(table_config(sizes[i]), 11 + i);
    train.push_back(gen.generate(2'000));
    values.push_back(gen.make_embeddings());
  }

  StoreConfig store_cfg;
  store_cfg.simulate_timing = false;
  TrainerConfig trainer_cfg;
  trainer_cfg.total_cache_vectors = 512;
  ThreadPool pool(2);

  // train_and_add runs the whole offline pipeline inside the builder.
  TrainerStats tstats;
  Store store = StoreBuilder(store_cfg)
                    .train_and_add(trainer_cfg, train, values, &pool, &tstats)
                    .build();
  EXPECT_GT(tstats.partition_us, 0.0);
  EXPECT_GT(tstats.peak_training_bytes, 0u);
  expect_full_roundtrip(store, values);

  // An explicit Trainer + add_plan must produce the identical store shape,
  // and from_plan is the same one-shot path.
  Trainer trainer(store_cfg, trainer_cfg);
  const StorePlan plan = trainer.train(train, sizes, &pool);
  std::uint64_t want_blocks = 0;
  for (const auto& t : plan.tables) want_blocks += t.layout.num_blocks();
  EXPECT_EQ(store.storage().num_blocks(), want_blocks);
  Store again = Store::from_plan(store_cfg, plan, values);
  expect_full_roundtrip(again, values);
}

TEST(StoreBuilder, TrainAndAddRejectsMismatchedTraceCount) {
  std::vector<EmbeddingTable> values;
  values.push_back(TraceGenerator(table_config(512), 60).make_embeddings());
  StoreBuilder builder;
  EXPECT_THROW(builder.train_and_add(TrainerConfig{}, {}, values),
               std::invalid_argument);
}

TEST(StoreBuilder, AllocatesStorageExactlyOnce) {
  std::vector<EmbeddingTable> values;
  for (int i = 0; i < 3; ++i) {
    values.push_back(
        TraceGenerator(table_config(512), 20 + i).make_embeddings());
  }
  TablePolicy policy;
  policy.cache_vectors = 32;
  policy.policy = PrefetchPolicy::kNone;

  int builder_calls = 0;
  StoreConfig cfg;
  cfg.simulate_timing = false;
  StoreBuilder builder(cfg);
  builder.storage([&](std::uint64_t blocks, std::size_t block_bytes) {
    ++builder_calls;
    return std::make_unique<MemoryBlockStorage>(blocks, block_bytes);
  });
  for (int i = 0; i < 3; ++i) {
    builder.add_table(values[i], TablePlan{BlockLayout::identity(512, 32),
                                           /*access_counts=*/{}, policy,
                                           /*shp_train_fanout=*/0.0});
  }
  EXPECT_EQ(builder.total_blocks(), 3u * 16u);
  Store built = builder.build();
  EXPECT_EQ(builder_calls, 1);
  expect_full_roundtrip(built, values);

  // The incremental add_table path re-sizes storage on every call — the
  // ceremony the builder removes.
  int incremental_calls = 0;
  Store incremental(cfg, [&](std::uint64_t blocks, std::size_t block_bytes) {
    ++incremental_calls;
    return std::make_unique<MemoryBlockStorage>(blocks, block_bytes);
  });
  for (int i = 0; i < 3; ++i) {
    incremental.add_table(values[i], BlockLayout::identity(512, 32), policy);
  }
  EXPECT_EQ(incremental_calls, 3);
  expect_full_roundtrip(incremental, values);
}

TEST(StoreBuilder, FailedStorageGrowthLeavesStoreServing) {
  std::vector<EmbeddingTable> values;
  for (int i = 0; i < 2; ++i) {
    values.push_back(
        TraceGenerator(table_config(512), 40 + i).make_embeddings());
  }
  TablePolicy policy;
  policy.cache_vectors = 32;
  policy.policy = PrefetchPolicy::kNone;

  StoreConfig cfg;
  cfg.simulate_timing = false;
  int calls = 0;
  Store store(cfg, [&](std::uint64_t blocks, std::size_t block_bytes)
                       -> std::unique_ptr<BlockStorage> {
    if (++calls > 1) throw std::runtime_error("disk full");
    return std::make_unique<MemoryBlockStorage>(blocks, block_bytes);
  });
  store.add_table(values[0], BlockLayout::identity(512, 32), policy);
  EXPECT_THROW(
      store.add_table(values[1], BlockLayout::identity(512, 32), policy),
      std::runtime_error);
  // The failed growth must not have torn down the working storage.
  EXPECT_EQ(store.num_tables(), 1u);
  expect_full_roundtrip(store, {values.begin(), values.begin() + 1});
}

TEST(StoreBuilder, FileStorageBuildsSizedFileAndRoundTrips) {
  const std::string path = ::testing::TempDir() + "/bandana_builder.bin";
  std::vector<EmbeddingTable> values;
  values.push_back(TraceGenerator(table_config(1024), 30).make_embeddings());
  values.push_back(TraceGenerator(table_config(512), 31).make_embeddings());

  StoreConfig cfg;
  cfg.simulate_timing = false;
  StoreBuilder builder(cfg);
  builder.file_storage(path);
  TablePolicy file_policy;
  file_policy.cache_vectors = 64;
  file_policy.policy = PrefetchPolicy::kNone;
  for (const auto& v : values) {
    builder.add_table(
        v, TablePlan{BlockLayout::identity(v.num_vectors(), 32),
                     /*access_counts=*/{}, file_policy,
                     /*shp_train_fanout=*/0.0});
  }
  const std::uint64_t total_blocks = builder.total_blocks();
  Store store = builder.build();
  EXPECT_EQ(std::filesystem::file_size(path),
            total_blocks * cfg.block_bytes);
  expect_full_roundtrip(store, values);
  std::remove(path.c_str());
}

StorePlan one_entry_plan() {
  StorePlan plan;
  plan.tables.push_back(TablePlan{BlockLayout::identity(32, 32),
                                  /*access_counts=*/{}, TablePolicy{},
                                  /*shp_train_fanout=*/0.0});
  return plan;
}

TEST(StoreBuilder, AddPlanRejectsMismatchedValueCount) {
  StoreBuilder builder;
  EXPECT_THROW(builder.add_plan(one_entry_plan(), {}), std::invalid_argument);
}

TEST(StoreBuilder, FromPlanRejectsMismatchedValueCount) {
  EXPECT_THROW(Store::from_plan(StoreConfig{}, one_entry_plan(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bandana
