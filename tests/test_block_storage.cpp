#include "nvm/block_storage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

namespace bandana {
namespace {

void fill_pattern(std::vector<std::byte>& buf, std::uint8_t tag) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((tag + i) & 0xFF);
  }
}

template <typename Storage>
void roundtrip_test(Storage& s) {
  ASSERT_EQ(s.block_bytes(), 512u);
  ASSERT_EQ(s.num_blocks(), 8u);
  std::vector<std::byte> in(512), out(512);
  for (BlockId b = 0; b < 8; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 3 + 1));
    s.write_block(b, in);
  }
  for (BlockId b = 0; b < 8; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 3 + 1));
    s.read_block(b, out);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0) << "block " << b;
  }
}

TEST(MemoryBlockStorage, Roundtrip) {
  MemoryBlockStorage s(8, 512);
  roundtrip_test(s);
}

TEST(MemoryBlockStorage, ZeroInitialized) {
  MemoryBlockStorage s(2, 64);
  std::vector<std::byte> out(64, std::byte{0xFF});
  s.read_block(1, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(MemoryBlockStorage, BlockView) {
  MemoryBlockStorage s(4, 128);
  std::vector<std::byte> in(128);
  fill_pattern(in, 9);
  s.write_block(2, in);
  auto view = s.block_view(2);
  EXPECT_EQ(view.size(), 128u);
  EXPECT_EQ(std::memcmp(view.data(), in.data(), 128), 0);
}

TEST(FileBlockStorage, Roundtrip) {
  const std::string path = ::testing::TempDir() + "/bandana_blocks.bin";
  {
    FileBlockStorage s(path, 8, 512);
    roundtrip_test(s);
  }
  std::remove(path.c_str());
}

TEST(FileBlockStorage, BadPathThrows) {
  EXPECT_THROW(FileBlockStorage("/nonexistent_dir/x/y.bin", 1, 512),
               std::runtime_error);
}

TEST(StorageFactory, MemoryFactoryProducesWorkingBackend) {
  const BlockStorageFactory factory = memory_storage_factory();
  const auto storage = factory(8, 512);
  ASSERT_NE(storage, nullptr);
  roundtrip_test(*storage);
}

TEST(StorageFactory, FileFactoryProducesWorkingBackend) {
  const std::string path = ::testing::TempDir() + "/bandana_factory.bin";
  const BlockStorageFactory factory = file_storage_factory(path);
  {
    const auto storage = factory(8, 512);
    ASSERT_NE(storage, nullptr);
    roundtrip_test(*storage);
  }
  std::remove(path.c_str());
}

TEST(StorageFactory, FactoryIsReusableWithNewGeometry) {
  const BlockStorageFactory factory = memory_storage_factory();
  EXPECT_EQ(factory(4, 256)->num_blocks(), 4u);
  EXPECT_EQ(factory(16, 1024)->num_blocks(), 16u);
  EXPECT_EQ(factory(16, 1024)->block_bytes(), 1024u);
}

}  // namespace
}  // namespace bandana
