#include "nvm/block_storage.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "core/store.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

void fill_pattern(std::vector<std::byte>& buf, std::uint8_t tag) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((tag + i) & 0xFF);
  }
}

template <typename Storage>
void roundtrip_test(Storage& s) {
  ASSERT_EQ(s.block_bytes(), 512u);
  ASSERT_EQ(s.num_blocks(), 8u);
  std::vector<std::byte> in(512), out(512);
  for (BlockId b = 0; b < 8; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 3 + 1));
    s.write_block(b, in);
  }
  for (BlockId b = 0; b < 8; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 3 + 1));
    s.read_block(b, out);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0) << "block " << b;
  }
}

TEST(MemoryBlockStorage, Roundtrip) {
  MemoryBlockStorage s(8, 512);
  roundtrip_test(s);
}

TEST(MemoryBlockStorage, ZeroInitialized) {
  MemoryBlockStorage s(2, 64);
  std::vector<std::byte> out(64, std::byte{0xFF});
  s.read_block(1, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(MemoryBlockStorage, BlockView) {
  MemoryBlockStorage s(4, 128);
  std::vector<std::byte> in(128);
  fill_pattern(in, 9);
  s.write_block(2, in);
  auto view = s.block_view(2);
  EXPECT_EQ(view.size(), 128u);
  EXPECT_EQ(std::memcmp(view.data(), in.data(), 128), 0);
}

TEST(FileBlockStorage, Roundtrip) {
  const std::string path = ::testing::TempDir() + "/bandana_blocks.bin";
  {
    FileBlockStorage s(path, 8, 512);
    roundtrip_test(s);
  }
  std::remove(path.c_str());
}

TEST(FileBlockStorage, BadPathThrows) {
  EXPECT_THROW(FileBlockStorage("/nonexistent_dir/x/y.bin", 1, 512),
               std::runtime_error);
}

TEST(StorageFactory, MemoryFactoryProducesWorkingBackend) {
  const BlockStorageFactory factory = memory_storage_factory();
  const auto storage = factory(8, 512);
  ASSERT_NE(storage, nullptr);
  roundtrip_test(*storage);
}

TEST(StorageFactory, FileFactoryProducesWorkingBackend) {
  const std::string path = ::testing::TempDir() + "/bandana_factory.bin";
  const BlockStorageFactory factory = file_storage_factory(path);
  {
    const auto storage = factory(8, 512);
    ASSERT_NE(storage, nullptr);
    roundtrip_test(*storage);
  }
  std::remove(path.c_str());
}

TEST(StorageFactory, FactoryIsReusableWithNewGeometry) {
  const BlockStorageFactory factory = memory_storage_factory();
  EXPECT_EQ(factory(4, 256)->num_blocks(), 4u);
  EXPECT_EQ(factory(16, 1024)->num_blocks(), 16u);
  EXPECT_EQ(factory(16, 1024)->block_bytes(), 1024u);
}

TEST(StorageFactory, FileFactoryRegrowthPreservesPublishedBlocks) {
  const std::string path = ::testing::TempDir() + "/bandana_regrow.bin";
  BlockStorageFactory factory = file_storage_factory(path);
  std::vector<std::byte> in(512), out(512);

  // First invocation truncates; publish a pattern.
  auto original = factory(4, 512);
  for (BlockId b = 0; b < 4; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b + 1));
    original->write_block(b, in);
  }
  // Growth invocation while the old storage is still open (the store
  // streams blocks between the two): the published bytes must survive.
  auto grown = factory(8, 512);
  ASSERT_EQ(grown->num_blocks(), 8u);
  for (BlockId b = 0; b < 4; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b + 1));
    grown->read_block(b, out);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0) << "block " << b;
  }
  original.reset();
  grown.reset();
  std::remove(path.c_str());
}

TEST(StorageFactory, SameBackingDetectsSharedInode) {
  const std::string path = ::testing::TempDir() + "/bandana_inode.bin";
  BlockStorageFactory factory = file_storage_factory(path);
  auto a = factory(4, 512);
  auto b = factory(8, 512);  // growth reopens the same file
  EXPECT_TRUE(b->same_backing(*a));
  EXPECT_TRUE(a->same_backing(*a));

  const std::string other = ::testing::TempDir() + "/bandana_inode2.bin";
  auto c = file_storage_factory(other)(4, 512);
  EXPECT_FALSE(c->same_backing(*a));

  auto mem = memory_storage_factory()(4, 512);
  EXPECT_FALSE(mem->same_backing(*a));   // distinct backends
  EXPECT_FALSE(a->same_backing(*mem));
  EXPECT_TRUE(mem->same_backing(*mem));
  a.reset();
  b.reset();
  c.reset();
  std::remove(path.c_str());
  std::remove(other.c_str());
}

TEST(StorageFactory, FreshFileFactoryTruncatesStaleBytes) {
  const std::string path = ::testing::TempDir() + "/bandana_stale.bin";
  {
    auto stale = file_storage_factory(path)(2, 512);
    std::vector<std::byte> in(512);
    fill_pattern(in, 0xAB);
    stale->write_block(0, in);
  }
  // A *new* factory on the same path starts from a clean slate.
  auto fresh = file_storage_factory(path)(2, 512);
  std::vector<std::byte> out(512, std::byte{0xFF});
  fresh->read_block(0, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  fresh.reset();
  std::remove(path.c_str());
}

TEST(StoreGrowth, IncrementalAddTableStreamsOldBlocksOnFileBackend) {
  // The incremental add_table growth path: table A's published blocks must
  // still be served after the backing file is regrown for table B (the
  // store streams them through a bounded chunk buffer, not a full drain).
  const std::string path = ::testing::TempDir() + "/bandana_growth.bin";
  TableWorkloadConfig wl;
  wl.num_vectors = 2048;
  wl.dim = 32;
  TraceGenerator gen_a(wl, 31), gen_b(wl, 32);
  const EmbeddingTable values_a = gen_a.make_embeddings();
  const EmbeddingTable values_b = gen_b.make_embeddings();

  StoreConfig cfg;
  cfg.simulate_timing = false;
  Store store(cfg, file_storage_factory(path));
  TablePolicy policy;
  policy.cache_vectors = 1;  // force NVM reads: bytes come from the file
  policy.policy = PrefetchPolicy::kNone;
  const TableId a =
      store.add_table(values_a, BlockLayout::identity(2048, 32), policy);
  const TableId b =
      store.add_table(values_b, BlockLayout::random(2048, 32, 4), policy);
  ASSERT_EQ(store.storage().num_blocks(), 128u);

  std::vector<std::byte> out(128);
  for (const VectorId v : {0u, 33u, 1024u, 2047u}) {
    store.lookup(a, v, out);
    EXPECT_EQ(std::memcmp(out.data(), values_a.vector_bytes_view(v).data(),
                          128),
              0)
        << "table A vector " << v << " lost in growth";
    store.lookup(b, v, out);
    EXPECT_EQ(std::memcmp(out.data(), values_b.vector_bytes_view(v).data(),
                          128),
              0)
        << "table B vector " << v;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bandana
