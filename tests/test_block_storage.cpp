#include "nvm/block_storage.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "core/store.h"
#include "core/store_builder.h"
#include "nvm/async_file_storage.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

void fill_pattern(std::vector<std::byte>& buf, std::uint8_t tag) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>((tag + i) & 0xFF);
  }
}

template <typename Storage>
void roundtrip_test(Storage& s) {
  ASSERT_EQ(s.block_bytes(), 512u);
  ASSERT_EQ(s.num_blocks(), 8u);
  std::vector<std::byte> in(512), out(512);
  for (BlockId b = 0; b < 8; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 3 + 1));
    s.write_block(b, in);
  }
  for (BlockId b = 0; b < 8; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 3 + 1));
    s.read_block(b, out);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0) << "block " << b;
  }
}

TEST(MemoryBlockStorage, Roundtrip) {
  MemoryBlockStorage s(8, 512);
  roundtrip_test(s);
}

TEST(MemoryBlockStorage, ZeroInitialized) {
  MemoryBlockStorage s(2, 64);
  std::vector<std::byte> out(64, std::byte{0xFF});
  s.read_block(1, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(MemoryBlockStorage, BlockView) {
  MemoryBlockStorage s(4, 128);
  std::vector<std::byte> in(128);
  fill_pattern(in, 9);
  s.write_block(2, in);
  auto view = s.block_view(2);
  EXPECT_EQ(view.size(), 128u);
  EXPECT_EQ(std::memcmp(view.data(), in.data(), 128), 0);
}

TEST(FileBlockStorage, Roundtrip) {
  const std::string path = ::testing::TempDir() + "/bandana_blocks.bin";
  {
    FileBlockStorage s(path, 8, 512);
    roundtrip_test(s);
  }
  std::remove(path.c_str());
}

TEST(FileBlockStorage, BadPathThrows) {
  EXPECT_THROW(FileBlockStorage("/nonexistent_dir/x/y.bin", 1, 512),
               std::runtime_error);
}

TEST(StorageFactory, MemoryFactoryProducesWorkingBackend) {
  const BlockStorageFactory factory = memory_storage_factory();
  const auto storage = factory(8, 512);
  ASSERT_NE(storage, nullptr);
  roundtrip_test(*storage);
}

TEST(StorageFactory, FileFactoryProducesWorkingBackend) {
  const std::string path = ::testing::TempDir() + "/bandana_factory.bin";
  const BlockStorageFactory factory = file_storage_factory(path);
  {
    const auto storage = factory(8, 512);
    ASSERT_NE(storage, nullptr);
    roundtrip_test(*storage);
  }
  std::remove(path.c_str());
}

TEST(StorageFactory, FactoryIsReusableWithNewGeometry) {
  const BlockStorageFactory factory = memory_storage_factory();
  EXPECT_EQ(factory(4, 256)->num_blocks(), 4u);
  EXPECT_EQ(factory(16, 1024)->num_blocks(), 16u);
  EXPECT_EQ(factory(16, 1024)->block_bytes(), 1024u);
}

TEST(StorageFactory, FileFactoryRegrowthPreservesPublishedBlocks) {
  const std::string path = ::testing::TempDir() + "/bandana_regrow.bin";
  BlockStorageFactory factory = file_storage_factory(path);
  std::vector<std::byte> in(512), out(512);

  // First invocation truncates; publish a pattern.
  auto original = factory(4, 512);
  for (BlockId b = 0; b < 4; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b + 1));
    original->write_block(b, in);
  }
  // Growth invocation while the old storage is still open (the store
  // streams blocks between the two): the published bytes must survive.
  auto grown = factory(8, 512);
  ASSERT_EQ(grown->num_blocks(), 8u);
  for (BlockId b = 0; b < 4; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b + 1));
    grown->read_block(b, out);
    EXPECT_EQ(std::memcmp(in.data(), out.data(), 512), 0) << "block " << b;
  }
  original.reset();
  grown.reset();
  std::remove(path.c_str());
}

TEST(StorageFactory, SameBackingDetectsSharedInode) {
  const std::string path = ::testing::TempDir() + "/bandana_inode.bin";
  BlockStorageFactory factory = file_storage_factory(path);
  auto a = factory(4, 512);
  auto b = factory(8, 512);  // growth reopens the same file
  EXPECT_TRUE(b->same_backing(*a));
  EXPECT_TRUE(a->same_backing(*a));

  const std::string other = ::testing::TempDir() + "/bandana_inode2.bin";
  auto c = file_storage_factory(other)(4, 512);
  EXPECT_FALSE(c->same_backing(*a));

  auto mem = memory_storage_factory()(4, 512);
  EXPECT_FALSE(mem->same_backing(*a));   // distinct backends
  EXPECT_FALSE(a->same_backing(*mem));
  EXPECT_TRUE(mem->same_backing(*mem));
  a.reset();
  b.reset();
  c.reset();
  std::remove(path.c_str());
  std::remove(other.c_str());
}

TEST(StorageFactory, FreshFileFactoryTruncatesStaleBytes) {
  const std::string path = ::testing::TempDir() + "/bandana_stale.bin";
  {
    auto stale = file_storage_factory(path)(2, 512);
    std::vector<std::byte> in(512);
    fill_pattern(in, 0xAB);
    stale->write_block(0, in);
  }
  // A *new* factory on the same path starts from a clean slate.
  auto fresh = file_storage_factory(path)(2, 512);
  std::vector<std::byte> out(512, std::byte{0xFF});
  fresh->read_block(0, out);
  for (auto b : out) EXPECT_EQ(b, std::byte{0});
  fresh.reset();
  std::remove(path.c_str());
}

// ---- AsyncFileBlockStorage: byte-equivalent overlapped reads. ----

AsyncFileBlockStorage::Options thread_pool_options() {
  AsyncFileBlockStorage::Options options;
  options.force_thread_pool = true;
  options.fallback_threads = 3;
  return options;
}

TEST(AsyncFileBlockStorage, RoundtripBothPaths) {
  for (const bool force_threads : {false, true}) {
    const std::string path = ::testing::TempDir() + "/bandana_async.bin";
    {
      AsyncFileBlockStorage::Options options;
      options.force_thread_pool = force_threads;
      AsyncFileBlockStorage s(path, 8, 512, /*preserve_contents=*/false,
                              options);
      ASSERT_TRUE(s.prefers_batched_reads());
      if (force_threads) ASSERT_FALSE(s.io_uring_active());
      roundtrip_test(s);
    }
    std::remove(path.c_str());
  }
}

TEST(AsyncFileBlockStorage, IoUringPathServesBatchedReads) {
  const std::string path = ::testing::TempDir() + "/bandana_uring.bin";
  AsyncFileBlockStorage s(path, 16, 512);
  if (!s.io_uring_active()) {
    std::remove(path.c_str());
    GTEST_SKIP() << "io_uring unavailable (syscall blocked or pre-5.6 "
                    "kernel); thread-pool fallback is covered elsewhere";
  }
  std::vector<std::byte> in(512);
  for (BlockId b = 0; b < 16; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(7 * b + 3));
    s.write_block(b, in);
  }
  // A shuffled batch with duplicate block ids: one ring submission.
  const std::vector<BlockId> want = {9, 1, 14, 1, 0, 15, 9, 7, 3, 11};
  std::vector<std::byte> out(want.size() * 512);
  std::vector<BlockReadOp> ops(want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ops[i] = {want[i], std::span<std::byte>(out).subspan(i * 512, 512)};
  }
  s.read_blocks(ops);
  for (std::size_t i = 0; i < want.size(); ++i) {
    fill_pattern(in, static_cast<std::uint8_t>(7 * want[i] + 3));
    EXPECT_EQ(std::memcmp(in.data(), out.data() + i * 512, 512), 0)
        << "batched op " << i << " (block " << want[i] << ")";
  }
  std::remove(path.c_str());
}

TEST(AsyncFileBlockStorage, WavesLargerThanTheRingAreChunked) {
  const std::string path = ::testing::TempDir() + "/bandana_bigwave.bin";
  AsyncFileBlockStorage::Options options;
  options.ring_entries = 4;  // force multiple chunks per wave
  AsyncFileBlockStorage s(path, 64, 256, false, options);
  std::vector<std::byte> in(256);
  for (BlockId b = 0; b < 64; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b));
    s.write_block(b, in);
  }
  std::vector<std::byte> out(64 * 256);
  std::vector<BlockReadOp> ops(64);
  for (BlockId b = 0; b < 64; ++b) {
    ops[b] = {63 - b, std::span<std::byte>(out).subspan(b * 256, 256)};
  }
  s.read_blocks(ops);
  for (BlockId b = 0; b < 64; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(63 - b));
    EXPECT_EQ(std::memcmp(in.data(), out.data() + b * 256, 256), 0);
  }
  std::remove(path.c_str());
}

/// Drives the same pinned-RNG sequence of write / batched-read / grow
/// operations against every backend and asserts byte equivalence
/// throughout, including the in-place-growth preserve contract.
TEST(AsyncFileBlockStorage, RandomOpsByteEquivalentAcrossAllBackends) {
  const std::string file_path = ::testing::TempDir() + "/bandana_equiv_f.bin";
  const std::string async_path = ::testing::TempDir() + "/bandana_equiv_a.bin";
  const std::string fallback_path =
      ::testing::TempDir() + "/bandana_equiv_t.bin";
  constexpr std::size_t kBlock = 384;

  BlockStorageFactory factories[] = {
      memory_storage_factory(), file_storage_factory(file_path),
      async_file_storage_factory(async_path),
      async_file_storage_factory(fallback_path, thread_pool_options())};
  std::uint64_t blocks = 6;
  std::vector<std::unique_ptr<BlockStorage>> backends;
  for (auto& factory : factories) backends.push_back(factory(blocks, kBlock));

  Rng rng(2024);
  std::vector<std::byte> buf(kBlock), expect(kBlock);
  for (int step = 0; step < 300; ++step) {
    const auto op = rng.next_below(10);
    if (op < 5) {  // write one random block everywhere
      const BlockId b = static_cast<BlockId>(rng.next_below(blocks));
      fill_pattern(buf, static_cast<std::uint8_t>(rng.next_below(256)));
      for (auto& backend : backends) backend->write_block(b, buf);
    } else if (op < 9) {  // batched read of random blocks, compare all
      const std::size_t n = 1 + rng.next_below(8);
      std::vector<BlockId> ids(n);
      for (auto& id : ids) id = static_cast<BlockId>(rng.next_below(blocks));
      std::vector<std::vector<std::byte>> outs(
          backends.size(), std::vector<std::byte>(n * kBlock));
      for (std::size_t k = 0; k < backends.size(); ++k) {
        std::vector<BlockReadOp> ops(n);
        for (std::size_t i = 0; i < n; ++i) {
          ops[i] = {ids[i],
                    std::span<std::byte>(outs[k]).subspan(i * kBlock, kBlock)};
        }
        backends[k]->read_blocks(ops);
      }
      for (std::size_t k = 1; k < backends.size(); ++k) {
        ASSERT_EQ(outs[k], outs[0]) << "backend " << k << " step " << step;
      }
    } else {  // grow: file factories must preserve published blocks in
      // place (same backing); distinct backings are migrated the way the
      // store migrates them, so all backends stay byte-identical.
      const std::uint64_t old_blocks = blocks;
      blocks += 1 + rng.next_below(4);
      for (std::size_t k = 0; k < backends.size(); ++k) {
        auto grown = factories[k](blocks, kBlock);
        if (!grown->same_backing(*backends[k])) {
          for (BlockId b = 0; b < old_blocks; ++b) {
            backends[k]->read_block(b, buf);
            grown->write_block(b, buf);
          }
        }
        backends[k] = std::move(grown);
      }
    }
  }
  // Final sweep: every block byte-identical across backends.
  for (BlockId b = 0; b < blocks; ++b) {
    backends[0]->read_block(b, expect);
    for (std::size_t k = 1; k < backends.size(); ++k) {
      backends[k]->read_block(b, buf);
      ASSERT_EQ(buf, expect) << "backend " << k << " block " << b;
    }
  }
  backends.clear();
  std::remove(file_path.c_str());
  std::remove(async_path.c_str());
  std::remove(fallback_path.c_str());
}

TEST(AsyncFileBlockStorage, ConcurrentBatchedReadersAreSafe) {
  const std::string path = ::testing::TempDir() + "/bandana_async_mt.bin";
  AsyncFileBlockStorage s(path, 32, 256);
  std::vector<std::byte> in(256);
  for (BlockId b = 0; b < 32; ++b) {
    fill_pattern(in, static_cast<std::uint8_t>(b * 5 + 1));
    s.write_block(b, in);
  }
  std::vector<std::thread> readers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&s, t, &failures] {
      std::vector<std::byte> want(256), out(8 * 256);
      for (int iter = 0; iter < 50; ++iter) {
        std::vector<BlockReadOp> ops(8);
        for (std::size_t i = 0; i < 8; ++i) {
          const BlockId b = static_cast<BlockId>((t * 7 + iter + i * 3) % 32);
          ops[i] = {b, std::span<std::byte>(out).subspan(i * 256, 256)};
        }
        s.read_blocks(ops);
        for (std::size_t i = 0; i < 8; ++i) {
          fill_pattern(want, static_cast<std::uint8_t>(ops[i].block * 5 + 1));
          if (std::memcmp(want.data(), out.data() + i * 256, 256) != 0) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

TEST(AsyncFileBlockStorage, SameBackingInteroperatesWithFileStorage) {
  const std::string path = ::testing::TempDir() + "/bandana_async_inode.bin";
  auto a = async_file_storage_factory(path)(4, 512);
  FileBlockStorage plain(path, 4, 512, /*preserve_contents=*/true);
  EXPECT_TRUE(a->same_backing(plain));
  EXPECT_TRUE(plain.same_backing(*a));
  a.reset();
  std::remove(path.c_str());
}

TEST(AsyncFileBlockStorage, StoreServesIdenticalBytesOnAsyncBackend) {
  // End-to-end: the store's staged read pipeline (peek misses -> batched
  // admission waves -> lookups consume staged bytes) must serve exactly
  // the bytes the memory backend serves, for both async paths.
  TableWorkloadConfig wl;
  wl.num_vectors = 4096;
  wl.dim = 32;
  TraceGenerator gen(wl, 91);
  const EmbeddingTable values = gen.make_embeddings();
  const Trace trace = gen.generate(300);
  TablePolicy policy;
  policy.cache_vectors = 256;
  policy.policy = PrefetchPolicy::kPosition;
  policy.insertion_position = 0.5;
  StoreConfig cfg;
  cfg.cache_shards = 1;
  cfg.device.channels = 2;
  cfg.device.queue_depth = 2;  // tiny waves: many read_blocks calls

  const auto serve = [&](BlockStorageFactory factory) {
    StoreBuilder builder(cfg);
    if (factory) builder.storage(std::move(factory));
    builder.add_table(values,
                      TablePlan{BlockLayout::random(4096, 32, 6), {}, policy,
                                0.0});
    Store store = builder.build();
    std::vector<std::vector<std::byte>> responses;
    std::uint64_t reads = 0;
    for (std::size_t q = 0; q < trace.num_queries(); ++q) {
      MultiGetRequest req;
      req.add(0, trace.query(q));
      const MultiGetResult res = store.multi_get(req);
      responses.push_back(res.vectors[0]);
      reads += res.block_reads;
    }
    return std::make_pair(responses, reads);
  };

  const std::string uring_path = ::testing::TempDir() + "/bandana_store_u.bin";
  const std::string pool_path = ::testing::TempDir() + "/bandana_store_p.bin";
  const auto memory = serve(nullptr);
  const auto uring = serve(async_file_storage_factory(uring_path));
  const auto pool =
      serve(async_file_storage_factory(pool_path, thread_pool_options()));
  EXPECT_EQ(uring.first, memory.first);
  EXPECT_EQ(pool.first, memory.first);
  // Both staged backends run the identical deterministic pipeline.
  EXPECT_EQ(uring.second, pool.second);
  // Against the unstaged memory backend the counts may drift by a hair:
  // a lookup whose block was evicted *by an earlier lookup of the same
  // request* (cached at peek time, gone at lookup time) is served through
  // an end-of-request retry wave instead of an inline read at its
  // original position, which perturbs the LRU insertion order slightly.
  // The bytes never change, and the drift is bounded.
  const auto diff = uring.second > memory.second
                        ? uring.second - memory.second
                        : memory.second - uring.second;
  EXPECT_LE(diff, memory.second / 100);
  std::remove(uring_path.c_str());
  std::remove(pool_path.c_str());
}

// ---- Batched write path: write_blocks equivalence + zero-copy leases. ----

TEST(WriteBlocks, DefaultLoopBackendsWriteExactBytes) {
  MemoryBlockStorage s(8, 256);
  EXPECT_FALSE(s.prefers_batched_writes());
  EXPECT_EQ(s.write_stats().short_resubmits, 0u);
  EXPECT_FALSE(s.write_stats().registered_buffers_active);
  EXPECT_FALSE(s.lease_wave_buffer(256));

  std::vector<std::byte> src(3 * 256), out(256), want(256);
  std::vector<BlockWriteOp> ops;
  const BlockId ids[] = {5, 0, 3};
  for (std::size_t i = 0; i < 3; ++i) {
    auto img = std::span<std::byte>(src).subspan(i * 256, 256);
    for (std::size_t j = 0; j < img.size(); ++j) {
      img[j] = static_cast<std::byte>((ids[i] * 11 + j) & 0xFF);
    }
    ops.push_back({ids[i], img});
  }
  s.write_blocks(ops);
  for (std::size_t i = 0; i < 3; ++i) {
    fill_pattern(want, 0);
    for (std::size_t j = 0; j < want.size(); ++j) {
      want[j] = static_cast<std::byte>((ids[i] * 11 + j) & 0xFF);
    }
    s.read_block(ids[i], out);
    EXPECT_EQ(out, want) << "block " << ids[i];
  }
}

/// Pinned-RNG sequence of batched writes (distinct blocks per batch, as
/// the contract requires) against every backend, checked block-for-block
/// against a shadow model and across backends.
TEST(WriteBlocks, RandomBatchesByteEquivalentAcrossAllBackends) {
  const std::string file_path = ::testing::TempDir() + "/bandana_wequiv_f.bin";
  const std::string async_path = ::testing::TempDir() + "/bandana_wequiv_a.bin";
  const std::string fallback_path =
      ::testing::TempDir() + "/bandana_wequiv_t.bin";
  constexpr std::size_t kBlock = 384;
  constexpr std::uint64_t kBlocks = 24;

  BlockStorageFactory factories[] = {
      memory_storage_factory(), file_storage_factory(file_path),
      async_file_storage_factory(async_path),
      async_file_storage_factory(fallback_path, thread_pool_options())};
  std::vector<std::unique_ptr<BlockStorage>> backends;
  for (auto& factory : factories) backends.push_back(factory(kBlocks, kBlock));

  Rng rng(777);
  std::vector<std::vector<std::byte>> model(kBlocks,
                                            std::vector<std::byte>(kBlock));
  std::vector<BlockId> ids(kBlocks);
  for (BlockId b = 0; b < kBlocks; ++b) ids[b] = b;
  std::vector<std::byte> src(kBlocks * kBlock);
  for (int step = 0; step < 200; ++step) {
    // Distinct block ids per batch (partial Fisher-Yates).
    const std::size_t n = 1 + rng.next_below(10);
    for (std::size_t i = 0; i < n; ++i) {
      std::swap(ids[i], ids[i + rng.next_below(kBlocks - i)]);
    }
    std::vector<BlockWriteOp> ops;
    for (std::size_t i = 0; i < n; ++i) {
      auto img = std::span<std::byte>(src).subspan(i * kBlock, kBlock);
      const auto tag = static_cast<std::uint8_t>(rng.next_below(256));
      for (std::size_t j = 0; j < kBlock; ++j) {
        img[j] = static_cast<std::byte>((tag + j) & 0xFF);
      }
      std::memcpy(model[ids[i]].data(), img.data(), kBlock);
      ops.push_back({ids[i], img});
    }
    for (auto& backend : backends) backend->write_blocks(ops);
  }
  std::vector<std::byte> out(kBlock);
  for (BlockId b = 0; b < kBlocks; ++b) {
    for (std::size_t k = 0; k < backends.size(); ++k) {
      backends[k]->read_block(b, out);
      ASSERT_EQ(out, model[b]) << "backend " << k << " block " << b;
    }
  }
  backends.clear();
  std::remove(file_path.c_str());
  std::remove(async_path.c_str());
  std::remove(fallback_path.c_str());
}

TEST(WriteBlocks, WavesLargerThanTheRingAreChunked) {
  const std::string path = ::testing::TempDir() + "/bandana_bigwwave.bin";
  AsyncFileBlockStorage::Options options;
  options.ring_entries = 4;  // force multiple chunks per write wave
  AsyncFileBlockStorage s(path, 64, 256, false, options);
  EXPECT_TRUE(s.prefers_batched_writes());
  std::vector<std::byte> src(64 * 256), in(256), out(256);
  std::vector<BlockWriteOp> ops(64);
  for (BlockId b = 0; b < 64; ++b) {
    auto img = std::span<std::byte>(src).subspan(b * 256, 256);
    for (std::size_t j = 0; j < img.size(); ++j) {
      img[j] = static_cast<std::byte>((b * 7 + j) & 0xFF);
    }
    ops[b] = {63 - b, std::span<std::byte>(src).subspan((63 - b) * 256, 256)};
  }
  s.write_blocks(ops);
  for (BlockId b = 0; b < 64; ++b) {
    for (std::size_t j = 0; j < in.size(); ++j) {
      in[j] = static_cast<std::byte>((b * 7 + j) & 0xFF);
    }
    s.read_block(b, out);
    EXPECT_EQ(out, in) << "block " << b;
  }
  std::remove(path.c_str());
}

TEST(WriteBlocks, ShortWriteInjectionResubmitsRemainder) {
  const std::string path = ::testing::TempDir() + "/bandana_short.bin";
  AsyncFileBlockStorage::Options options;
  options.max_write_bytes_per_sqe = 100;  // 512-byte blocks: >= 5 SQEs each
  AsyncFileBlockStorage s(path, 16, 512, false, options);
  if (!s.io_uring_active()) {
    std::remove(path.c_str());
    GTEST_SKIP() << "io_uring unavailable; the injection knob only caps "
                    "ring SQEs";
  }
  std::vector<std::byte> src(16 * 512), in(512), out(512);
  std::vector<BlockWriteOp> ops(16);
  for (BlockId b = 0; b < 16; ++b) {
    auto img = std::span<std::byte>(src).subspan(b * 512, 512);
    for (std::size_t j = 0; j < img.size(); ++j) {
      img[j] = static_cast<std::byte>((b * 13 + j) & 0xFF);
    }
    ops[b] = {b, img};
  }
  s.write_blocks(ops);
  // Every block needed its remainder resubmitted at least 4 times.
  EXPECT_GE(s.write_stats().short_resubmits, 16u * 4u);
  for (BlockId b = 0; b < 16; ++b) {
    for (std::size_t j = 0; j < in.size(); ++j) {
      in[j] = static_cast<std::byte>((b * 13 + j) & 0xFF);
    }
    s.read_block(b, out);
    EXPECT_EQ(out, in) << "block " << b;
  }
  std::remove(path.c_str());
}

TEST(WriteBlocks, LeasedWaveBuffersComposeAndRecycle) {
  const std::string path = ::testing::TempDir() + "/bandana_lease.bin";
  AsyncFileBlockStorage::Options options;
  options.wave_buffer_blocks = 8;
  options.wave_buffer_count = 2;
  AsyncFileBlockStorage s(path, 16, 512, false, options);

  // The pool exists on every path (uring or fallback); registration is a
  // uring-only extra.
  EXPECT_EQ(s.write_stats().registered_buffers_active,
            s.registered_buffers_active());
  if (!s.io_uring_active()) EXPECT_FALSE(s.registered_buffers_active());

  // A wave-sized lease succeeds; an oversized request falls back (empty).
  auto lease = s.lease_wave_buffer(8 * 512);
  ASSERT_TRUE(lease);
  ASSERT_GE(lease.bytes().size(), 8u * 512u);
  EXPECT_FALSE(s.lease_wave_buffer(8 * 512 + 1));

  // Pool exhaustion: the second buffer leases, the third request is empty
  // until a lease is returned.
  auto second = s.lease_wave_buffer(512);
  ASSERT_TRUE(second);
  EXPECT_FALSE(s.lease_wave_buffer(512));
  second = BlockStorage::WaveBufferLease();  // return it
  EXPECT_TRUE(s.lease_wave_buffer(512));

  // Compose a wave inside the lease and write it: this is the zero-copy
  // path (WRITE_FIXED) when registration is live, plain writes otherwise —
  // bytes are identical either way.
  auto buf = lease.bytes().first(8 * 512);
  std::vector<BlockWriteOp> ops;
  for (BlockId b = 0; b < 8; ++b) {
    auto img = buf.subspan(b * 512, 512);
    for (std::size_t j = 0; j < img.size(); ++j) {
      img[j] = static_cast<std::byte>((b * 17 + j + 5) & 0xFF);
    }
    ops.push_back({static_cast<BlockId>(b * 2), img});
  }
  s.write_blocks(ops);
  std::vector<std::byte> in(512), out(512);
  for (BlockId b = 0; b < 8; ++b) {
    for (std::size_t j = 0; j < in.size(); ++j) {
      in[j] = static_cast<std::byte>((b * 17 + j + 5) & 0xFF);
    }
    s.read_block(b * 2, out);
    EXPECT_EQ(out, in) << "block " << b * 2;
  }
  std::remove(path.c_str());
}

TEST(WriteBlocks, ContiguousRunsCoalesceIntoOneSqe) {
  // Ops with consecutive blocks AND consecutive source bytes go out as one
  // SQE. Observable through the short-write cap: one coalesced 8-block run
  // (4096 bytes) under a 1024-byte cap takes 4 completions = 3 resubmits,
  // while 8 independent 512-byte blocks fit under the cap and take none.
  const std::string path = ::testing::TempDir() + "/bandana_coalesce.bin";
  AsyncFileBlockStorage::Options options;
  options.wave_buffer_blocks = 8;
  options.wave_buffer_count = 1;
  options.max_write_bytes_per_sqe = 1024;
  AsyncFileBlockStorage s(path, 16, 512, false, options);
  if (!s.io_uring_active()) {
    GTEST_SKIP() << "io_uring unavailable; cap applies to uring SQEs only";
  }

  auto lease = s.lease_wave_buffer(8 * 512);
  ASSERT_TRUE(lease);
  auto buf = lease.bytes().first(8 * 512);
  std::vector<BlockWriteOp> ops;
  for (BlockId b = 0; b < 8; ++b) {
    auto img = buf.subspan(b * 512, 512);
    for (std::size_t j = 0; j < img.size(); ++j) {
      img[j] = static_cast<std::byte>((b * 31 + j + 7) & 0xFF);
    }
    ops.push_back({static_cast<BlockId>(4 + b), img});  // blocks 4..11
  }
  s.write_blocks(ops);
  EXPECT_EQ(s.write_stats().short_resubmits, 3u);

  // Same images to scattered (odd) blocks: every op is its own run, each
  // under the cap — no further resubmits, bytes land identically.
  for (BlockId b = 0; b < 8; ++b) ops[b].block = 2 * b;
  s.write_blocks(ops);
  EXPECT_EQ(s.write_stats().short_resubmits, 3u);

  std::vector<std::byte> in(512), out(512);
  for (BlockId b = 0; b < 8; ++b) {
    for (std::size_t j = 0; j < in.size(); ++j) {
      in[j] = static_cast<std::byte>((b * 31 + j + 7) & 0xFF);
    }
    s.read_block(2 * b, out);
    EXPECT_EQ(out, in) << "scattered block " << 2 * b;
    if ((4 + b) % 2 != 0) {  // odd coalesced blocks survived the 2nd batch
      s.read_block(4 + b, out);
      EXPECT_EQ(out, in) << "coalesced block " << 4 + b;
    }
  }
  std::remove(path.c_str());
}

TEST(StoreGrowth, IncrementalAddTableStreamsOldBlocksOnFileBackend) {
  // The incremental add_table growth path: table A's published blocks must
  // still be served after the backing file is regrown for table B (the
  // store streams them through a bounded chunk buffer, not a full drain).
  const std::string path = ::testing::TempDir() + "/bandana_growth.bin";
  TableWorkloadConfig wl;
  wl.num_vectors = 2048;
  wl.dim = 32;
  TraceGenerator gen_a(wl, 31), gen_b(wl, 32);
  const EmbeddingTable values_a = gen_a.make_embeddings();
  const EmbeddingTable values_b = gen_b.make_embeddings();

  StoreConfig cfg;
  cfg.simulate_timing = false;
  Store store(cfg, file_storage_factory(path));
  TablePolicy policy;
  policy.cache_vectors = 1;  // force NVM reads: bytes come from the file
  policy.policy = PrefetchPolicy::kNone;
  const TableId a =
      store.add_table(values_a, BlockLayout::identity(2048, 32), policy);
  const TableId b =
      store.add_table(values_b, BlockLayout::random(2048, 32, 4), policy);
  ASSERT_EQ(store.storage().num_blocks(), 128u);

  std::vector<std::byte> out(128);
  for (const VectorId v : {0u, 33u, 1024u, 2047u}) {
    store.lookup(a, v, out);
    EXPECT_EQ(std::memcmp(out.data(), values_a.vector_bytes_view(v).data(),
                          128),
              0)
        << "table A vector " << v << " lost in growth";
    store.lookup(b, v, out);
    EXPECT_EQ(std::memcmp(out.data(), values_b.vector_bytes_view(v).data(),
                          128),
              0)
        << "table B vector " << v;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bandana
