#include "nvm/endurance.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bandana {
namespace {

constexpr std::uint64_t kGB = 1000ULL * 1000 * 1000;

TEST(Endurance, ObservedDwpd) {
  EnduranceTracker t(100 * kGB, 30.0);
  // 10 full device writes over 2 days -> 5 DWPD.
  t.record_write(500 * kGB, 0.0);
  t.record_write(500 * kGB, 2.0);
  EXPECT_NEAR(t.observed_dwpd(), 5.0, 1e-9);
  EXPECT_TRUE(t.within_budget());
}

TEST(Endurance, OverBudget) {
  EnduranceTracker t(10 * kGB, 30.0);
  t.record_write(400 * kGB, 0.0);
  t.record_write(0, 1.0);
  EXPECT_GT(t.observed_dwpd(), 30.0);
  EXPECT_FALSE(t.within_budget());
}

TEST(Endurance, PaperRepublishRateIsSafe) {
  // Paper §2.2: tables are updated 10-20x/day against a 30 DWPD budget.
  EnduranceTracker t(375 * kGB, 30.0);
  for (int day = 0; day < 10; ++day) {
    for (int i = 0; i < 20; ++i) {
      t.record_write(375 * kGB, day + i / 20.0);
    }
  }
  EXPECT_TRUE(t.within_budget());
  EXPECT_NEAR(t.observed_dwpd(), 20.0, 2.5);
}

TEST(Endurance, LifetimeProjection) {
  EnduranceTracker t(100 * kGB, 30.0, 5 * 365.0);
  // 6000 GB over a 2-day window = 30 DWPD -> lifetime = rated 5 years.
  t.record_write(3000 * kGB, 0.0);
  t.record_write(3000 * kGB, 2.0);
  EXPECT_NEAR(t.projected_lifetime_years(), 5.0, 0.2);
}

TEST(Endurance, NoWritesInfiniteLifetime) {
  EnduranceTracker t(kGB, 30.0);
  EXPECT_TRUE(std::isinf(t.projected_lifetime_years()));
  EXPECT_EQ(t.observed_dwpd(), 0.0);
}

}  // namespace
}  // namespace bandana
