#include "partition/layout.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

namespace bandana {
namespace {

TEST(BlockLayout, Identity) {
  const auto l = BlockLayout::identity(100, 32);
  EXPECT_EQ(l.num_vectors(), 100u);
  EXPECT_EQ(l.num_blocks(), 4u);  // ceil(100/32)
  EXPECT_EQ(l.block_of(0), 0u);
  EXPECT_EQ(l.block_of(31), 0u);
  EXPECT_EQ(l.block_of(32), 1u);
  EXPECT_EQ(l.block_of(99), 3u);
  EXPECT_EQ(l.position_of(77), 77u);
}

TEST(BlockLayout, BlockMembers) {
  const auto l = BlockLayout::identity(100, 32);
  auto b0 = l.block_members(0);
  ASSERT_EQ(b0.size(), 32u);
  EXPECT_EQ(b0[0], 0u);
  EXPECT_EQ(b0[31], 31u);
  auto last = l.block_members(3);
  ASSERT_EQ(last.size(), 4u);  // partial tail block
  EXPECT_EQ(last[0], 96u);
}

TEST(BlockLayout, FromOrder) {
  std::vector<VectorId> order = {3, 1, 0, 2};
  const auto l = BlockLayout::from_order(order, 2);
  EXPECT_EQ(l.num_blocks(), 2u);
  EXPECT_EQ(l.block_of(3), 0u);
  EXPECT_EQ(l.block_of(1), 0u);
  EXPECT_EQ(l.block_of(0), 1u);
  EXPECT_EQ(l.block_of(2), 1u);
  EXPECT_EQ(l.position_of(0), 2u);
}

TEST(BlockLayout, RejectsNonPermutation) {
  EXPECT_THROW(BlockLayout::from_order({0, 0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(BlockLayout::from_order({0, 5, 1}, 2), std::invalid_argument);
}

TEST(BlockLayout, RandomIsPermutationAndDeterministic) {
  const auto a = BlockLayout::random(1000, 32, 7);
  const auto b = BlockLayout::random(1000, 32, 7);
  EXPECT_EQ(a.order(), b.order());
  const auto c = BlockLayout::random(1000, 32, 8);
  EXPECT_NE(a.order(), c.order());
  std::set<VectorId> seen(a.order().begin(), a.order().end());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(BlockLayout, MembersRoundtrip) {
  const auto l = BlockLayout::random(500, 16, 3);
  for (BlockId b = 0; b < l.num_blocks(); ++b) {
    for (VectorId v : l.block_members(b)) {
      EXPECT_EQ(l.block_of(v), b);
    }
  }
}

}  // namespace
}  // namespace bandana
