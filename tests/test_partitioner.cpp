// The Partitioner seam: backend selection, parallel-SHP determinism, the
// streaming (reservoir-sampled) training mode, and config validation.
#include "partition/partitioner.h"

#include <gtest/gtest.h>

#include <set>

#include "core/trainer.h"
#include "partition/fanout.h"
#include "partition/layout.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

Trace structured_trace(std::uint32_t num_vectors, std::size_t queries,
                       std::uint64_t seed) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = num_vectors;
  cfg.mean_lookups_per_query = 16;
  cfg.new_vector_prob = 0.02;
  cfg.num_profiles = num_vectors / 50;
  cfg.profile_size = 64;
  cfg.profile_frac = 0.85;
  TraceGenerator g(cfg, seed);
  return g.generate(queries);
}

void expect_permutation(const std::vector<VectorId>& order, std::uint32_t n) {
  std::set<VectorId> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), n);
  EXPECT_EQ(seen.size(), n);
}

// ---------------------------------------------------------------- parallel SHP

// The seed pin: the ShpPartitioner with one worker thread must reproduce
// the bare sequential run_shp byte for byte.
TEST(Partitioner, ShpSingleThreadMatchesSeedRunShp) {
  const Trace t = structured_trace(4096, 4000, 11);
  ShpConfig sc;
  sc.vectors_per_block = 16;
  const ShpResult seed = run_shp(t, 4096, sc, nullptr);

  ThreadPool pool(1);
  const ShpPartitioner part(sc);
  const PartitionResult r = part.partition(t, 4096, nullptr, &pool);
  EXPECT_EQ(r.order, seed.order);
  EXPECT_EQ(r.access_counts, seed.access_counts);
  EXPECT_EQ(r.final_avg_fanout, seed.final_avg_fanout);
}

// The parallel decomposition is value-exact: any thread count (2, 4, 8)
// yields the same plan, equal to the sequential one, and duplicate runs at
// the same thread count are stable.
TEST(Partitioner, ParallelShpDeterministicAcrossThreadCounts) {
  const Trace t = structured_trace(4096, 4000, 12);
  ShpConfig sc;
  sc.vectors_per_block = 16;
  const ShpResult seq = run_shp(t, 4096, sc, nullptr);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const ShpResult a = run_shp(t, 4096, sc, &pool);
    const ShpResult b = run_shp(t, 4096, sc, &pool);
    EXPECT_EQ(a.order, seq.order) << threads << " threads vs sequential";
    EXPECT_EQ(a.order, b.order) << threads << " threads, duplicate run";
    EXPECT_EQ(a.total_swaps, seq.total_swaps);
    EXPECT_EQ(a.final_avg_fanout, seq.final_avg_fanout);
  }
}

// ------------------------------------------------------------------- backends

TEST(Partitioner, AllBackendsProduceValidPlans) {
  const std::uint32_t n = 2048;
  const Trace t = structured_trace(n, 3000, 13);
  TableWorkloadConfig wc;
  wc.num_vectors = n;
  const EmbeddingTable values = TraceGenerator(wc, 13).make_embeddings();

  for (const PartitionerBackend backend :
       {PartitionerBackend::kShp, PartitionerBackend::kRecursiveKMeans,
        PartitionerBackend::kHypergraph}) {
    PartitionerConfig pc;
    pc.backend = backend;
    pc.kmeans.top_clusters = 8;
    pc.kmeans.total_leaves = 64;
    const auto part = make_partitioner(pc, 32);
    const PartitionResult r = part->partition(t, n, &values, nullptr);
    expect_permutation(r.order, n);
    EXPECT_EQ(r.access_counts.size(), n) << backend_name(backend);
    // Every backend reports its fanout on the training co-access graph.
    EXPECT_GT(r.initial_avg_fanout, 0.0) << backend_name(backend);
    EXPECT_GT(r.final_avg_fanout, 0.0) << backend_name(backend);
    EXPECT_GT(r.peak_training_bytes, 0u) << backend_name(backend);
  }
}

TEST(Partitioner, HypergraphBeatsIdentityOrderOnStructuredWorkload) {
  const std::uint32_t n = 4096;
  const Trace t = structured_trace(n, 4000, 14);
  HypergraphConfig hc;
  hc.vectors_per_block = 32;
  const HypergraphResult r = run_hypergraph(t, n, hc);
  expect_permutation(r.order, n);
  EXPECT_LT(r.final_avg_fanout, 0.8 * r.initial_avg_fanout);
  // And the greedy placement generalizes: held-out queries also see lower
  // fanout than a random layout.
  const Trace eval = structured_trace(n, 1000, 14);
  const auto layout = BlockLayout::from_order(r.order, 32);
  const auto random_layout = BlockLayout::random(n, 32, 99);
  EXPECT_LT(compute_fanout(eval, layout).avg_fanout,
            compute_fanout(eval, random_layout).avg_fanout);
}

TEST(Partitioner, KMeansBackendRequiresValues) {
  const Trace t = structured_trace(512, 500, 15);
  PartitionerConfig pc;
  pc.backend = PartitionerBackend::kRecursiveKMeans;
  pc.kmeans.top_clusters = 4;
  pc.kmeans.total_leaves = 16;
  const auto part = make_partitioner(pc, 32);
  EXPECT_THROW(part->partition(t, 512, nullptr, nullptr),
               std::invalid_argument);
}

// ----------------------------------------------------------------- validation

TEST(Partitioner, RejectsDegenerateConfigs) {
  {
    ShpConfig sc;
    sc.vectors_per_block = 0;
    EXPECT_THROW(validate(sc), std::invalid_argument);
  }
  {
    ShpConfig sc;
    sc.iters_per_level = 0;
    EXPECT_THROW(validate(sc), std::invalid_argument);
  }
  {
    ShpConfig sc;
    sc.max_swap_fraction = 0.0;
    EXPECT_THROW(validate(sc), std::invalid_argument);
  }
  {
    KMeansConfig kc;
    kc.k = 0;
    EXPECT_THROW(validate(kc), std::invalid_argument);
  }
  {
    KMeansConfig kc;
    kc.max_iters = 0;
    EXPECT_THROW(validate(kc), std::invalid_argument);
  }
  {
    RecursiveKMeansConfig rc;
    rc.total_leaves = 0;
    EXPECT_THROW(validate(rc), std::invalid_argument);
  }
  {
    RecursiveKMeansConfig rc;
    rc.top_clusters = 8;
    rc.total_leaves = 4;  // fewer leaves than parents
    EXPECT_THROW(validate(rc), std::invalid_argument);
  }
  {
    HypergraphConfig hc;
    hc.vectors_per_block = 0;
    EXPECT_THROW(validate(hc), std::invalid_argument);
  }
  {
    PartitionerConfig pc;
    pc.chunk_queries = 0;
    EXPECT_THROW(validate(pc), std::invalid_argument);
  }
}

TEST(Partitioner, RejectsEmptyTrainingTrace) {
  const Trace empty;
  EXPECT_THROW(run_shp(empty, 64, ShpConfig{}), std::invalid_argument);
  EXPECT_THROW(run_hypergraph(empty, 64, HypergraphConfig{}),
               std::invalid_argument);
  PartitionerConfig pc;
  pc.backend = PartitionerBackend::kRecursiveKMeans;
  TableWorkloadConfig wc;
  wc.num_vectors = 64;
  const EmbeddingTable values = TraceGenerator(wc, 16).make_embeddings();
  EXPECT_THROW(
      make_partitioner(pc, 32)->partition(empty, 64, &values, nullptr),
      std::invalid_argument);
}

// ------------------------------------------------------------------ streaming

TEST(Partitioner, StreamingPeakMemoryStaysBelowFullMaterialization) {
  const std::uint32_t n = 4096;
  const Trace big = structured_trace(n, 30'000, 17);
  PartitionerConfig pc;
  pc.max_train_queries = 1'000;
  pc.chunk_queries = 512;
  const auto part = make_partitioner(pc, 32);

  const PartitionResult full = part->partition(big, n, nullptr, nullptr);
  TraceRefSource source(big);
  const PartitionResult streamed =
      part->partition_stream(source, n, pc, nullptr, nullptr);

  expect_permutation(streamed.order, n);
  EXPECT_EQ(streamed.stream_queries, big.num_queries());
  EXPECT_EQ(streamed.sampled_queries, pc.max_train_queries);
  // The bounded-memory claim, pinned: the reservoir path's peak stays
  // well under training on the materialized trace.
  EXPECT_LT(streamed.peak_training_bytes, full.peak_training_bytes / 2);
}

TEST(Partitioner, StreamingIsDeterministicAndCountsFullStream) {
  const std::uint32_t n = 1024;
  const Trace big = structured_trace(n, 8'000, 18);
  PartitionerConfig pc;
  pc.max_train_queries = 500;
  pc.chunk_queries = 256;
  const auto part = make_partitioner(pc, 32);

  TraceRefSource s1(big), s2(big);
  const PartitionResult a = part->partition_stream(s1, n, pc, nullptr, nullptr);
  const PartitionResult b = part->partition_stream(s2, n, pc, nullptr, nullptr);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.access_counts, b.access_counts);

  // Access counts come from the FULL stream, not the sample: their sum is
  // the total deduplicated lookups of the whole trace.
  std::uint64_t total = 0;
  for (const std::uint32_t c : a.access_counts) total += c;
  std::uint64_t want = 0;
  std::vector<VectorId> dedup;
  for (std::size_t q = 0; q < big.num_queries(); ++q) {
    const auto ids = big.query(q);
    dedup.assign(ids.begin(), ids.end());
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
    want += dedup.size();
  }
  EXPECT_EQ(total, want);
}

TEST(Partitioner, StreamRequiresReservoirCapacity) {
  const Trace t = structured_trace(256, 200, 19);
  PartitionerConfig pc;  // max_train_queries defaults to 0
  const auto part = make_partitioner(pc, 32);
  TraceRefSource source(t);
  EXPECT_THROW(part->partition_stream(source, 256, pc, nullptr, nullptr),
               std::invalid_argument);
}

// -------------------------------------------------------------------- trainer

TEST(Partitioner, TrainerRunsEveryBackend) {
  const std::uint32_t sizes[1] = {1024};
  const Trace traces[1] = {structured_trace(1024, 1500, 20)};
  TableWorkloadConfig wc;
  wc.num_vectors = 1024;
  const EmbeddingTable values = TraceGenerator(wc, 20).make_embeddings();
  const EmbeddingTable* vals[1] = {&values};

  for (const PartitionerBackend backend :
       {PartitionerBackend::kShp, PartitionerBackend::kRecursiveKMeans,
        PartitionerBackend::kHypergraph}) {
    TrainerConfig tc;
    tc.total_cache_vectors = 256;
    tc.partitioner.backend = backend;
    tc.partitioner.kmeans.top_clusters = 4;
    tc.partitioner.kmeans.total_leaves = 32;
    const Trainer trainer(StoreConfig{}, tc);
    TrainerStats stats;
    const StorePlan plan = trainer.train(traces, sizes, nullptr, vals, &stats);
    ASSERT_EQ(plan.tables.size(), 1u) << backend_name(backend);
    EXPECT_EQ(plan.tables[0].layout.num_vectors(), 1024u);
    EXPECT_GT(stats.partition_us, 0.0);
    EXPECT_GT(stats.tune_us, 0.0);
    EXPECT_GT(stats.peak_training_bytes, 0u);
  }
}

// The default-configured Trainer must be byte-identical to the pre-seam
// pipeline: same per-table seed derivation, same SHP, same plan.
TEST(Partitioner, TrainerDefaultMatchesDirectShp) {
  const std::uint32_t sizes[2] = {1024, 512};
  const Trace traces[2] = {structured_trace(1024, 1500, 21),
                           structured_trace(512, 1000, 22)};
  TrainerConfig tc;
  tc.total_cache_vectors = 256;
  const Trainer trainer(StoreConfig{}, tc);
  const StorePlan plan = trainer.train(traces, sizes);

  for (std::size_t i = 0; i < 2; ++i) {
    ShpConfig sc = tc.partitioner.shp;
    sc.vectors_per_block = StoreConfig{}.vectors_per_block();
    sc.seed = splitmix64(tc.partitioner.shp.seed + i);
    const ShpResult direct = run_shp(traces[i], sizes[i], sc, nullptr);
    EXPECT_EQ(plan.tables[i].access_counts, direct.access_counts);
    EXPECT_EQ(plan.tables[i].shp_train_fanout, direct.final_avg_fanout);
    EXPECT_EQ(plan.tables[i].layout.order(), direct.order);
  }
}

TEST(Partitioner, TrainerStreamTrainsFromSources) {
  const std::uint32_t sizes[2] = {1024, 1024};
  SyntheticTraceSource s0(1024, 6'000, 12, 31);
  SyntheticTraceSource s1(1024, 6'000, 12, 32);
  TraceSource* sources[2] = {&s0, &s1};

  TrainerConfig tc;
  tc.total_cache_vectors = 256;
  tc.partitioner.max_train_queries = 600;
  tc.partitioner.chunk_queries = 500;
  const Trainer trainer(StoreConfig{}, tc);
  TrainerStats stats;
  const StorePlan plan =
      trainer.train_stream(sources, sizes, nullptr, {}, &stats);
  ASSERT_EQ(plan.tables.size(), 2u);
  for (const auto& t : plan.tables) {
    EXPECT_EQ(t.layout.num_vectors(), 1024u);
  }
  EXPECT_EQ(stats.stream_queries, 12'000u);
  EXPECT_EQ(stats.sampled_queries, 1'200u);
  EXPECT_GT(stats.peak_training_bytes, 0u);
}

}  // namespace
}  // namespace bandana
