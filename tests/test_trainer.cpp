#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/store.h"
#include "trace/paper_workload.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TEST(Trainer, ProducesUsablePlan) {
  PaperWorkloadOptions opts;
  opts.scale = 0.05;  // tiny tables for test speed
  auto tables = paper_tables(opts);
  tables.resize(3);

  std::vector<TraceGenerator> gens;
  std::vector<Trace> train;
  std::vector<std::uint32_t> sizes;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    gens.emplace_back(tables[i], 100 + i);
    train.push_back(gens.back().generate(2000));
    sizes.push_back(tables[i].num_vectors);
  }

  StoreConfig store_cfg;
  store_cfg.simulate_timing = false;
  TrainerConfig tc;
  tc.total_cache_vectors = 4000;
  tc.alloc_chunk = 256;
  tc.tuner.sampling_rate = 0.05;
  Trainer trainer(store_cfg, tc);
  ThreadPool pool(4);
  const StorePlan plan = trainer.train(train, sizes, &pool);

  ASSERT_EQ(plan.tables.size(), 3u);
  std::uint64_t total_cache = 0;
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    const auto& tp = plan.tables[i];
    EXPECT_EQ(tp.layout.num_vectors(), sizes[i]);
    EXPECT_EQ(tp.layout.vectors_per_block(), 32u);
    EXPECT_EQ(tp.access_counts.size(), sizes[i]);
    EXPECT_EQ(tp.policy.policy, PrefetchPolicy::kThreshold);
    EXPECT_GT(tp.policy.cache_vectors, 0u);
    total_cache += tp.policy.cache_vectors;
  }
  // Budget respected up to the per-table minimum floor.
  EXPECT_LE(total_cache, tc.total_cache_vectors + 3 * 1024);

  // The plan boots a working store.
  Store store(store_cfg);
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    const EmbeddingTable values = gens[i].make_embeddings();
    store.add_table(values, plan.tables[i].layout, plan.tables[i].policy,
                    plan.tables[i].access_counts);
  }
  std::vector<std::byte> out(128 * 64);
  for (std::size_t i = 0; i < plan.tables.size(); ++i) {
    const Trace eval = gens[i].generate(50);
    for (std::size_t q = 0; q < eval.num_queries(); ++q) {
      if (eval.query(q).size() * 128 > out.size()) continue;
      store.lookup_batch(static_cast<TableId>(i), eval.query(q), out);
    }
    EXPECT_GT(store.table_metrics(static_cast<TableId>(i)).lookups, 0u);
  }
}

TEST(Trainer, AllocatorGivesCacheableTableMore) {
  // Table A reuses heavily; table B is nearly all compulsory misses. The
  // DRAM split must favor A.
  TableWorkloadConfig a, b;
  a.num_vectors = b.num_vectors = 10'000;
  a.new_vector_prob = 0.02;
  a.popularity_skew = 1.0;
  b.new_vector_prob = 0.7;
  b.popularity_skew = 0.1;
  b.profile_frac = 0.1;
  TraceGenerator ga(a, 1), gb(b, 2);
  std::vector<Trace> train;
  train.push_back(ga.generate(4000));
  train.push_back(gb.generate(4000));
  const std::vector<std::uint32_t> sizes{10'000, 10'000};

  StoreConfig sc;
  TrainerConfig tc;
  // Small enough budget that the tables compete for DRAM: the reusable
  // table's marginal hit gain dominates the near-uniform one's.
  tc.total_cache_vectors = 2000;
  tc.alloc_chunk = 250;
  tc.hrc_sampling_rate = 1.0;
  Trainer trainer(sc, tc);
  const StorePlan plan = trainer.train(train, sizes);
  // Table B bottoms out near the 1024-vector floor while A takes most of
  // the contested budget.
  EXPECT_GT(plan.tables[0].policy.cache_vectors,
            1.5 * plan.tables[1].policy.cache_vectors);
}

}  // namespace
}  // namespace bandana
