#include "cache/dram_allocator.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

/// Curve where every access has stack distance 1..n uniformly: hits(c)
/// grows linearly to a cap.
HitRateCurve linear_curve(std::uint64_t n, std::uint64_t per_distance) {
  std::vector<std::uint64_t> hist(n, per_distance);
  return HitRateCurve(hist, n * per_distance, 0);
}

TEST(DramAllocator, PrefersSteeperCurve) {
  // Table A gains 10 hits per vector, table B gains 1: all DRAM goes to A
  // until A is saturated.
  std::vector<HitRateCurve> curves;
  curves.push_back(linear_curve(1000, 10));
  curves.push_back(linear_curve(1000, 1));
  const auto alloc = allocate_dram(curves, 1000, 100);
  EXPECT_EQ(alloc.per_table[0], 1000u);
  EXPECT_EQ(alloc.per_table[1], 0u);
  EXPECT_EQ(alloc.expected_hits, 10'000u);
}

TEST(DramAllocator, SplitsAfterSaturation) {
  std::vector<HitRateCurve> curves;
  curves.push_back(linear_curve(500, 10));  // saturates at 500
  curves.push_back(linear_curve(2000, 1));
  const auto alloc = allocate_dram(curves, 1500, 100);
  EXPECT_EQ(alloc.per_table[0], 500u);
  EXPECT_EQ(alloc.per_table[1], 1000u);
}

TEST(DramAllocator, StopsWhenNoMarginalGain) {
  std::vector<HitRateCurve> curves;
  curves.push_back(linear_curve(100, 5));
  const auto alloc = allocate_dram(curves, 100000, 100);
  EXPECT_EQ(alloc.per_table[0], 100u);
}

TEST(DramAllocator, BudgetRespected) {
  std::vector<HitRateCurve> curves;
  for (int i = 0; i < 4; ++i) curves.push_back(linear_curve(10000, i + 1));
  const auto alloc = allocate_dram(curves, 8000, 512);
  std::uint64_t total = 0;
  for (auto v : alloc.per_table) total += v;
  EXPECT_LE(total, 8000u);
}

TEST(DramAllocator, BeatsUniformOnSkewedCurves) {
  std::vector<HitRateCurve> curves;
  curves.push_back(linear_curve(4000, 50));
  curves.push_back(linear_curve(4000, 1));
  curves.push_back(linear_curve(4000, 1));
  curves.push_back(linear_curve(4000, 1));
  const auto greedy = allocate_dram(curves, 4000, 100);
  const auto uniform = allocate_uniform(curves, 4000);
  EXPECT_GT(greedy.expected_hits, uniform.expected_hits);
}

TEST(DramAllocator, EmptyInputs) {
  EXPECT_TRUE(allocate_dram({}, 1000).per_table.empty());
  EXPECT_TRUE(allocate_uniform({}, 1000).per_table.empty());
}

}  // namespace
}  // namespace bandana
