// Placement-layer unit tests: plan slicing, hot-table selection, range
// lookup, and the two placement policies' shapes (replica rings, range
// splits, bin-packing balance, determinism).
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/placement.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TablePlan make_plan(std::uint32_t vectors, std::uint64_t layout_seed,
                    std::vector<std::uint32_t> counts = {},
                    std::uint64_t cache_vectors = 0) {
  TablePolicy policy;
  policy.cache_vectors = cache_vectors;
  policy.policy = PrefetchPolicy::kNone;
  return TablePlan{layout_seed == 0
                       ? BlockLayout::identity(vectors, 32)
                       : BlockLayout::random(vectors, 32, layout_seed),
                   std::move(counts), policy, 0.0};
}

TEST(SliceTablePlan, FullRangeIsTheIdentity) {
  const TablePlan plan = make_plan(256, 5, std::vector<std::uint32_t>(256, 1),
                                   /*cache_vectors=*/64);
  const TablePlan sliced = slice_table_plan(plan, 0, 256, 32);
  EXPECT_EQ(sliced.layout.order(), plan.layout.order());
  EXPECT_EQ(sliced.access_counts, plan.access_counts);
  EXPECT_EQ(sliced.policy.cache_vectors, plan.policy.cache_vectors);
}

TEST(SliceTablePlan, RebasesAndPreservesTrainedOrder) {
  const TablePlan plan = make_plan(256, 5);
  const TablePlan sliced = slice_table_plan(plan, 64, 192, 32);
  // The slice's order is the trained order filtered to [64, 192), each id
  // re-based by -64 — SHP co-location survives the split.
  std::vector<VectorId> want;
  for (const VectorId v : plan.layout.order()) {
    if (v >= 64 && v < 192) want.push_back(v - 64);
  }
  EXPECT_EQ(sliced.layout.order(), want);
  EXPECT_EQ(sliced.layout.num_vectors(), 128u);
}

TEST(SliceTablePlan, SlicesCountsAndSplitsCacheProportionally) {
  std::vector<std::uint32_t> counts(256);
  std::iota(counts.begin(), counts.end(), 0);
  const TablePlan plan = make_plan(256, 0, counts, /*cache_vectors=*/100);
  const TablePlan sliced = slice_table_plan(plan, 32, 96, 32);
  ASSERT_EQ(sliced.access_counts.size(), 64u);
  EXPECT_EQ(sliced.access_counts.front(), 32u);
  EXPECT_EQ(sliced.access_counts.back(), 95u);
  EXPECT_EQ(sliced.policy.cache_vectors, 100u * 64 / 256);
  // A tiny slice of a tiny budget still gets one vector of DRAM.
  EXPECT_EQ(slice_table_plan(plan, 0, 1, 32).policy.cache_vectors, 1u);
  // A zero budget stays zero (no cache materializes out of thin air).
  const TablePlan uncached = make_plan(256, 0);
  EXPECT_EQ(slice_table_plan(uncached, 0, 128, 32).policy.cache_vectors, 0u);

  EXPECT_THROW(slice_table_plan(plan, 96, 32, 32), std::invalid_argument);
  EXPECT_THROW(slice_table_plan(plan, 0, 999, 32), std::invalid_argument);
}

TEST(SliceEmbeddingTable, CopiesTheRows) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 64;
  cfg.dim = 8;
  const EmbeddingTable values = TraceGenerator(cfg, 3).make_embeddings();
  const EmbeddingTable sliced = slice_embedding_table(values, 16, 40);
  ASSERT_EQ(sliced.num_vectors(), 24u);
  ASSERT_EQ(sliced.dim(), 8u);
  for (VectorId v = 0; v < 24; ++v) {
    const auto got = sliced.vector(v);
    const auto want = values.vector(16 + v);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(HotTableFlags, PicksTopMassWithLowIdTieBreak) {
  StorePlan plan;
  plan.tables.push_back(make_plan(64, 0, std::vector<std::uint32_t>(64, 2)));
  plan.tables.push_back(make_plan(64, 0, std::vector<std::uint32_t>(64, 9)));
  plan.tables.push_back(make_plan(64, 0, std::vector<std::uint32_t>(64, 2)));
  plan.tables.push_back(make_plan(64, 0, std::vector<std::uint32_t>(64, 5)));
  EXPECT_EQ(hot_table_flags(plan, 0), (std::vector<std::uint8_t>{0, 0, 0, 0}));
  EXPECT_EQ(hot_table_flags(plan, 2), (std::vector<std::uint8_t>{0, 1, 0, 1}));
  // The 2-vs-2 tie goes to the lower table id.
  EXPECT_EQ(hot_table_flags(plan, 3), (std::vector<std::uint8_t>{1, 1, 0, 1}));
  EXPECT_EQ(hot_table_flags(plan, 99),
            (std::vector<std::uint8_t>{1, 1, 1, 1}));
}

TEST(PlacementMap, RangeLookupFindsTheOwningRange) {
  PlacementMap map;
  map.tables.resize(1);
  map.tables[0].push_back({0, 100, {0}, {0}});
  map.tables[0].push_back({100, 150, {1}, {0}});
  map.tables[0].push_back({150, 400, {2}, {0}});
  EXPECT_EQ(map.range_index_of(0, 0), 0u);
  EXPECT_EQ(map.range_index_of(0, 99), 0u);
  EXPECT_EQ(map.range_index_of(0, 100), 1u);
  EXPECT_EQ(map.range_index_of(0, 149), 1u);
  EXPECT_EQ(map.range_index_of(0, 399), 2u);
  EXPECT_EQ(map.range_of(0, 150).nodes[0], 2u);
}

ClusterConfig topo(std::uint32_t nodes, std::uint32_t replicas,
                   std::uint32_t hot_tables, PlacementKind kind) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.replicas = replicas;
  cfg.hot_tables = hot_tables;
  cfg.placement = kind;
  return cfg;
}

TEST(HashPlacement, ReplicatesHotTablesOnDistinctNodes) {
  StorePlan plan;
  plan.tables.push_back(make_plan(64, 0, std::vector<std::uint32_t>(64, 9)));
  plan.tables.push_back(make_plan(64, 0, std::vector<std::uint32_t>(64, 1)));
  // replicas > nodes clamps to the node count; replicas are distinct.
  const ClusterConfig cfg = topo(3, 5, 1, PlacementKind::kHash);
  const PlacementMap map = HashPlacement().place(plan, {}, cfg);
  ASSERT_EQ(map.tables[0].size(), 1u);
  const auto& hot = map.tables[0][0];
  ASSERT_EQ(hot.nodes.size(), 3u);
  EXPECT_NE(hot.nodes[0], hot.nodes[1]);
  EXPECT_NE(hot.nodes[1], hot.nodes[2]);
  EXPECT_NE(hot.nodes[0], hot.nodes[2]);
  // The cold table stays single-copy.
  EXPECT_EQ(map.tables[1][0].nodes.size(), 1u);
}

TEST(PlanAwarePlacement, BinPacksSmallTablesEvenly) {
  StorePlan plan;
  for (int t = 0; t < 12; ++t) plan.tables.push_back(make_plan(64, 0));
  const ClusterConfig cfg = topo(4, 1, 0, PlacementKind::kPlanAware);
  const PlacementMap map = PlanAwarePlacement().place(plan, {}, cfg);
  std::vector<int> tables_on(4, 0);
  for (const auto& ranges : map.tables) {
    ASSERT_EQ(ranges.size(), 1u);  // under split_min_vectors: whole table
    ++tables_on[ranges[0].nodes[0]];
  }
  // 12 equal tables over 4 nodes: the greedy pack lands 3 on each.
  for (int n = 0; n < 4; ++n) EXPECT_EQ(tables_on[n], 3);
}

TEST(PlacementPolicies, PlaceIsDeterministic) {
  StorePlan plan;
  std::vector<std::uint32_t> counts(2048, 1);
  for (int t = 0; t < 6; ++t) plan.tables.push_back(make_plan(2048, t, counts));
  for (const PlacementKind kind :
       {PlacementKind::kHash, PlacementKind::kPlanAware}) {
    ClusterConfig cfg = topo(4, 2, 2, kind);
    cfg.split_min_vectors = 512;
    const auto policy = make_placement_policy(cfg);
    EXPECT_EQ(policy->place(plan, {}, cfg), policy->place(plan, {}, cfg));
  }
}

}  // namespace
}  // namespace bandana
