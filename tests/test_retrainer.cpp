// Online-retraining subsystem unit + property suite: the trickle rate
// limiter (per-interval admission caps over random configs), the layout
// plan diff, the republish no-op early-out, exactly-once trickle writes
// (every diff block written once, none skipped, none doubled — pinned by a
// write-counting storage shim), the epoch-swap consistency guarantee
// (old-plan bytes until the swap, new-plan bytes after), replacement-block
// recycling (double buffering), and the TrafficSampler / OnlineRetrainer
// loop itself.
#include "core/retrainer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "core/store_builder.h"
#include "partition/layout.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

constexpr std::uint32_t kVectors = 2048;
constexpr std::uint32_t kVpb = 32;
constexpr std::size_t kVecBytes = 128;

EmbeddingTable patterned_table(std::uint32_t vectors, float offset) {
  EmbeddingTable values(vectors, 32);
  for (VectorId v = 0; v < vectors; ++v) {
    auto row = values.vector(v);
    for (std::uint16_t d = 0; d < 32; ++d) {
      row[d] = offset + static_cast<float>(v) + 0.25f * static_cast<float>(d);
    }
  }
  return values;
}

bool bytes_match(const EmbeddingTable& values, VectorId v,
                 std::span<const std::byte> got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got.data(), want.data(), want.size()) == 0;
}

/// Memory storage that counts write_block calls per block id — the
/// exactly-once pin of the trickle property tests.
class WriteCountingStorage final : public BlockStorage {
 public:
  struct Counters {
    std::mutex mu;
    std::map<BlockId, std::uint64_t> writes;
  };

  WriteCountingStorage(std::uint64_t num_blocks, std::size_t block_bytes,
                       std::shared_ptr<Counters> counters)
      : inner_(num_blocks, block_bytes), counters_(std::move(counters)) {}

  std::size_t block_bytes() const override { return inner_.block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_.num_blocks(); }
  void read_block(BlockId b, std::span<std::byte> out) const override {
    inner_.read_block(b, out);
  }
  void write_block(BlockId b, std::span<const std::byte> in) override {
    {
      std::lock_guard lock(counters_->mu);
      ++counters_->writes[b];
    }
    inner_.write_block(b, in);
  }

 private:
  MemoryBlockStorage inner_;
  std::shared_ptr<Counters> counters_;
};

BlockStorageFactory write_counting_factory(
    std::shared_ptr<WriteCountingStorage::Counters> counters) {
  return [counters](std::uint64_t num_blocks, std::size_t block_bytes) {
    return std::make_unique<WriteCountingStorage>(num_blocks, block_bytes,
                                                  counters);
  };
}

StoreConfig store_config(bool timing = true) {
  StoreConfig cfg;
  cfg.simulate_timing = timing;
  cfg.cache_shards = 1;
  return cfg;
}

TablePolicy plain_policy(std::uint64_t cache_vectors) {
  TablePolicy policy;
  policy.cache_vectors = cache_vectors;
  policy.policy = PrefetchPolicy::kAll;
  return policy;
}

TablePlan make_plan(BlockLayout layout, std::uint64_t cache_vectors) {
  return TablePlan{std::move(layout), {}, plain_policy(cache_vectors), 0.0};
}

// ---------------------------------------------------------------------------
// TrickleRateLimiter properties.

TEST(TrickleRateLimiter, UnlimitedWhenBlocksPerIntervalZero) {
  TrickleRateLimiter limiter(RepublishConfig{0, 5.0});
  EXPECT_TRUE(limiter.unlimited());
  EXPECT_EQ(limiter.allowance(0.0), std::numeric_limits<std::uint64_t>::max());
  limiter.consume(0.0, 1'000'000);  // no-op
  EXPECT_EQ(limiter.allowance(123.0),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(TrickleRateLimiter, RejectsNonPositiveInterval) {
  EXPECT_THROW(TrickleRateLimiter(RepublishConfig{4, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(TrickleRateLimiter(RepublishConfig{4, -1.0}),
               std::invalid_argument);
}

TEST(TrickleRateLimiter, PerIntervalAdmissionsNeverExceedCapRandomized) {
  Rng rng(20240731);
  for (int round = 0; round < 200; ++round) {
    RepublishConfig cfg;
    cfg.blocks_per_interval = 1 + static_cast<std::uint32_t>(
        rng.next_below(64));
    cfg.interval_us = 1.0 + rng.next_double() * 500.0;
    TrickleRateLimiter limiter(cfg);

    std::map<std::int64_t, std::uint64_t> admitted_per_interval;
    double now = rng.next_double() * 100.0;
    for (int step = 0; step < 100; ++step) {
      // Random monotone clock: sometimes stay inside the interval,
      // sometimes jump several intervals ahead.
      now += rng.next_double() * cfg.interval_us * 2.0;
      const auto interval =
          static_cast<std::int64_t>(std::floor(now / cfg.interval_us));
      const std::uint64_t allowance = limiter.allowance(now);
      ASSERT_LE(allowance, cfg.blocks_per_interval);
      // Consume a random admissible amount.
      const std::uint64_t take =
          allowance == 0 ? 0 : rng.next_below(allowance + 1);
      limiter.consume(now, take);
      admitted_per_interval[interval] += take;
      ASSERT_LE(admitted_per_interval[interval], cfg.blocks_per_interval)
          << "interval " << interval << " over-admitted (cap "
          << cfg.blocks_per_interval << ")";
      // The remaining allowance must reflect what this interval already
      // admitted.
      ASSERT_EQ(limiter.allowance(now),
                cfg.blocks_per_interval - admitted_per_interval[interval]);
    }
  }
}

TEST(TrickleRateLimiter, IdleGapCannotBankACatchUpBurst) {
  // Regression: a pump stalled across many intervals must come back to ONE
  // interval's budget, not the sum of the missed ones — and a pump that
  // sized its wave from a stale pre-gap allowance must have its consume()
  // saturate at the cap instead of banking the excess.
  RepublishConfig cfg;
  cfg.blocks_per_interval = 8;
  cfg.interval_us = 100.0;
  TrickleRateLimiter limiter(cfg);
  EXPECT_EQ(limiter.allowance(0.0), 8u);
  limiter.consume(0.0, 8);
  EXPECT_EQ(limiter.allowance(50.0), 0u);

  // 40 idle intervals later: the allowance is one budget, not 40x.
  const double later = 40.5 * cfg.interval_us;
  EXPECT_EQ(limiter.allowance(later), 8u);
  limiter.consume(later, 8);
  EXPECT_EQ(limiter.allowance(later), 0u);

  // A stale oversized grant replayed into the exhausted interval:
  // consumption saturates (no underflow into a huge allowance), and the
  // next interval resets to exactly one budget.
  limiter.consume(later, 8);
  EXPECT_EQ(limiter.allowance(later), 0u);
  EXPECT_EQ(limiter.allowance(later + cfg.interval_us), 8u);
}

// ---------------------------------------------------------------------------
// Layout plan diff.

TEST(LayoutDiff, IdenticalLayoutsHaveNoChangedBlocks) {
  const BlockLayout a = BlockLayout::random(kVectors, kVpb, 7);
  EXPECT_EQ(count_changed_blocks(a, a), 0u);
  const auto changed = changed_blocks(a, a);
  EXPECT_TRUE(std::all_of(changed.begin(), changed.end(),
                          [](std::uint8_t c) { return c == 0; }));
}

TEST(LayoutDiff, SwappingTwoVectorsChangesOnlyTheirBlocks) {
  const BlockLayout a = BlockLayout::identity(kVectors, kVpb);
  // Swap one vector of block 0 with one of block 5.
  std::vector<VectorId> order = a.order();
  std::swap(order[3], order[5 * kVpb + 7]);
  const BlockLayout b = BlockLayout::from_order(std::move(order), kVpb);
  const auto changed = changed_blocks(a, b);
  EXPECT_EQ(count_changed_blocks(a, b), 2u);
  EXPECT_TRUE(changed[0]);
  EXPECT_TRUE(changed[5]);
}

TEST(LayoutDiff, DisjointBlockCountsMarkTailChanged) {
  const BlockLayout a = BlockLayout::identity(kVpb * 4, kVpb);
  const BlockLayout b = BlockLayout::identity(kVpb * 6, kVpb);
  const auto changed = changed_blocks(a, b);
  ASSERT_EQ(changed.size(), 6u);
  EXPECT_EQ(count_changed_blocks(a, b), 2u);
  EXPECT_TRUE(changed[4]);
  EXPECT_TRUE(changed[5]);
}

// ---------------------------------------------------------------------------
// One-shot republish plan-diff early-out.

TEST(RepublishDiff, IdenticalValuesAreANoOpWithZeroLengthWave) {
  const EmbeddingTable values = patterned_table(kVectors, 0.0f);
  Store store(store_config());
  const TableId t = store.add_table(values, BlockLayout::identity(kVectors, kVpb),
                                    plain_policy(256));
  // Warm one vector so we can prove the cache survived.
  std::vector<std::byte> out(kVecBytes);
  store.lookup(t, 42, out);
  const auto warm_hits = store.table_metrics(t).hits;

  const auto endurance_before = store.endurance().total_bytes_written();
  const auto waves_before = store.store_metrics().write_waves;
  const auto wave_count_before = store.write_latency_us().count();

  const double latency = store.republish(t, values);

  EXPECT_EQ(latency, 0.0);
  EXPECT_EQ(store.endurance().total_bytes_written(), endurance_before);
  const StoreMetrics sm = store.store_metrics();
  EXPECT_EQ(sm.write_waves, waves_before + 1);  // zero-length wave recorded
  EXPECT_EQ(sm.republish_skipped_blocks, std::uint64_t{kVectors / kVpb});
  EXPECT_EQ(store.write_latency_us().count(), wave_count_before + 1);
  EXPECT_EQ(store.table_metrics(t).republish_writes, 0u);

  // The cache was not flushed: vector 42 is still a hit.
  store.lookup(t, 42, out);
  EXPECT_EQ(store.table_metrics(t).hits, warm_hits + 1);
}

TEST(RepublishDiff, RewritesOnlyChangedBlocksAndFlushesOnlyTheirMembers) {
  const EmbeddingTable values = patterned_table(kVectors, 0.0f);
  EmbeddingTable updated = patterned_table(kVectors, 0.0f);
  // Change exactly one vector -> exactly one block differs.
  updated.vector(100)[0] += 1000.0f;

  StoreConfig cfg = store_config();
  Store store(cfg);
  TablePolicy policy = plain_policy(256);
  policy.policy = PrefetchPolicy::kNone;  // keep cache contents predictable
  const TableId t = store.add_table(values, BlockLayout::identity(kVectors, kVpb),
                                    policy);
  std::vector<std::byte> out(kVecBytes);
  store.lookup(t, 100, out);  // same block as the change (identity layout)
  store.lookup(t, 500, out);  // different block: must stay warm

  const auto endurance_before = store.endurance().total_bytes_written();
  store.republish(t, updated);
  EXPECT_EQ(store.endurance().total_bytes_written(),
            endurance_before + cfg.block_bytes);  // one block rewritten
  EXPECT_EQ(store.table_metrics(t).republish_writes, std::uint64_t{kVpb});

  const auto hits_before = store.table_metrics(t).hits;
  store.lookup(t, 500, out);  // unchanged block: still cached
  EXPECT_EQ(store.table_metrics(t).hits, hits_before + 1);
  store.lookup(t, 100, out);  // changed block: flushed, re-read fresh bytes
  EXPECT_EQ(store.table_metrics(t).hits, hits_before + 1);
  EXPECT_TRUE(bytes_match(updated, 100, out));
}

// ---------------------------------------------------------------------------
// Trickle republish sessions.

TEST(TrickleRepublish, OldPlanServedUntilSwapNewPlanAfter) {
  const EmbeddingTable values_a = patterned_table(kVectors, 0.0f);
  const EmbeddingTable values_b = patterned_table(kVectors, 5000.0f);
  Store store(store_config());
  const TableId t = store.add_table(
      values_a, BlockLayout::identity(kVectors, kVpb), plain_policy(64));

  RepublishConfig rate;
  rate.blocks_per_interval = 8;
  rate.interval_us = 100.0;
  TrickleRepublish session = store.begin_trickle_republish(
      t, values_b, make_plan(BlockLayout::random(kVectors, kVpb, 3), 64),
      rate);
  ASSERT_FALSE(session.done());
  ASSERT_GT(session.total_blocks(), 0u);

  std::vector<std::byte> out(kVecBytes);
  // Mid-trickle: a few waves land, but every lookup still serves the OLD
  // plan's bytes — the consistency guarantee of the epoch swap.
  for (int wave = 0; wave < 3; ++wave) {
    session.pump();
    store.advance_time_us(rate.interval_us);
    for (const VectorId v : {0u, 100u, 999u, kVectors - 1}) {
      store.lookup(t, v, out);
      ASSERT_TRUE(bytes_match(values_a, v, out)) << "vector " << v;
    }
  }
  ASSERT_FALSE(session.done());

  // Drain the push.
  while (!session.done()) {
    if (session.pump() == 0) store.advance_time_us(rate.interval_us);
  }
  EXPECT_EQ(session.written_blocks(), session.total_blocks());

  // Post-swap: everything serves the NEW plan's bytes.
  for (const VectorId v : {0u, 100u, 999u, kVectors - 1}) {
    store.lookup(t, v, out);
    ASSERT_TRUE(bytes_match(values_b, v, out)) << "vector " << v;
  }
  EXPECT_EQ(store.store_metrics().mapping_swaps, 1u);
}

TEST(TrickleRepublish, PropertyEveryDiffBlockWrittenExactlyOnceUnderCap) {
  Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    auto counters = std::make_shared<WriteCountingStorage::Counters>();
    const EmbeddingTable values_a = patterned_table(kVectors, 0.0f);
    const EmbeddingTable values_b =
        patterned_table(kVectors, 1000.0f * (1 + round));
    Store store(store_config(), write_counting_factory(counters));
    const TableId t = store.add_table(
        values_a, BlockLayout::random(kVectors, kVpb, 11 + round),
        plain_policy(64));

    RepublishConfig rate;
    rate.blocks_per_interval =
        1 + static_cast<std::uint32_t>(rng.next_below(24));
    rate.interval_us = 1.0 + rng.next_double() * 200.0;
    TrickleRepublish session = store.begin_trickle_republish(
        t, values_b,
        make_plan(BlockLayout::random(kVectors, kVpb, 77 + round), 64), rate);

    const std::uint64_t total = session.total_blocks();
    ASSERT_EQ(total + session.skipped_blocks(), kVectors / kVpb);

    // Snapshot per-block write counts before the trickle (publish wrote the
    // initial image).
    std::map<BlockId, std::uint64_t> before;
    {
      std::lock_guard lock(counters->mu);
      before = counters->writes;
    }

    std::map<std::int64_t, std::uint64_t> per_interval;
    while (!session.done()) {
      const double now = store.now_us();
      const std::size_t wrote = session.pump();
      per_interval[static_cast<std::int64_t>(
          std::floor(now / rate.interval_us))] += wrote;
      if (wrote == 0) {
        store.advance_time_us(rng.next_double() * rate.interval_us * 1.5);
      }
    }
    EXPECT_EQ(session.written_blocks(), total);

    // Rate limit respected in every interval.
    for (const auto& [interval, blocks] : per_interval) {
      EXPECT_LE(blocks, rate.blocks_per_interval) << "interval " << interval;
    }

    // Exactly-once: the trickle wrote each replacement block once, and
    // exactly `total` distinct blocks got new writes.
    std::lock_guard lock(counters->mu);
    std::uint64_t touched = 0;
    for (const auto& [block, count] : counters->writes) {
      const auto it = before.find(block);
      const std::uint64_t delta = count - (it == before.end() ? 0 : it->second);
      if (delta == 0) continue;
      EXPECT_EQ(delta, 1u) << "block " << block << " written " << delta
                           << " times by the trickle";
      ++touched;
    }
    EXPECT_EQ(touched, total);
  }
}

TEST(TrickleRepublish, RecyclesReplacementBlocksAcrossPushes) {
  const EmbeddingTable values_a = patterned_table(kVectors, 0.0f);
  const EmbeddingTable values_b = patterned_table(kVectors, 1000.0f);
  const EmbeddingTable values_c = patterned_table(kVectors, 2000.0f);
  Store store(store_config());
  const TableId t = store.add_table(
      values_a, BlockLayout::identity(kVectors, kVpb), plain_policy(64));

  const auto run_push = [&](const EmbeddingTable& values, std::uint64_t seed) {
    TrickleRepublish session = store.begin_trickle_republish(
        t, values, make_plan(BlockLayout::random(kVectors, kVpb, seed), 64),
        RepublishConfig{16, 50.0});
    while (!session.done()) {
      if (session.pump() == 0) store.advance_time_us(50.0);
    }
  };
  run_push(values_b, 5);
  const std::uint64_t blocks_after_first = store.storage().num_blocks();
  // The second and third pushes recycle the blocks retired by the swap:
  // storage must not grow again (double buffering reached steady state).
  run_push(values_c, 6);
  EXPECT_EQ(store.storage().num_blocks(), blocks_after_first);
  run_push(values_a, 7);
  EXPECT_EQ(store.storage().num_blocks(), blocks_after_first);

  std::vector<std::byte> out(kVecBytes);
  store.lookup(t, 7, out);
  EXPECT_TRUE(bytes_match(values_a, 7, out));
}

TEST(TrickleRepublish, IdenticalPlanIsNoOpAndKeepsCacheWarm) {
  const EmbeddingTable values = patterned_table(kVectors, 0.0f);
  Store store(store_config());
  const BlockLayout layout = BlockLayout::random(kVectors, kVpb, 4);
  const TableId t = store.add_table(values, layout, plain_policy(256));
  std::vector<std::byte> out(kVecBytes);
  store.lookup(t, 9, out);
  const auto hits_before = store.table_metrics(t).hits;

  TrickleRepublish session = store.begin_trickle_republish(
      t, values, make_plan(BlockLayout::random(kVectors, kVpb, 4), 256),
      RepublishConfig{4, 10.0});
  EXPECT_TRUE(session.done());
  EXPECT_EQ(session.total_blocks(), 0u);
  EXPECT_EQ(session.skipped_blocks(), std::uint64_t{kVectors / kVpb});
  EXPECT_EQ(store.store_metrics().mapping_swaps, 0u);

  store.lookup(t, 9, out);  // still warm: no swap, no flush
  EXPECT_EQ(store.table_metrics(t).hits, hits_before + 1);
}

TEST(TrickleRepublish, OneSessionPerTableAndRepublishExclusion) {
  const EmbeddingTable values = patterned_table(kVectors, 0.0f);
  const EmbeddingTable updated = patterned_table(kVectors, 1.0f);
  Store store(store_config());
  const TableId t = store.add_table(
      values, BlockLayout::identity(kVectors, kVpb), plain_policy(64));

  TrickleRepublish session = store.begin_trickle_republish(
      t, updated, make_plan(BlockLayout::random(kVectors, kVpb, 2), 64),
      RepublishConfig{4, 10.0});
  ASSERT_FALSE(session.done());
  EXPECT_THROW(
      store.begin_trickle_republish(
          t, updated, make_plan(BlockLayout::random(kVectors, kVpb, 3), 64),
          RepublishConfig{4, 10.0}),
      std::logic_error);
  EXPECT_THROW(store.republish(t, updated), std::logic_error);
}

TEST(TrickleRepublish, AbandonedSessionLeavesOldPlanAndRecyclesBlocks) {
  const EmbeddingTable values_a = patterned_table(kVectors, 0.0f);
  const EmbeddingTable values_b = patterned_table(kVectors, 1000.0f);
  Store store(store_config());
  const TableId t = store.add_table(
      values_a, BlockLayout::identity(kVectors, kVpb), plain_policy(64));

  std::uint64_t blocks_after_abandon = 0;
  {
    TrickleRepublish session = store.begin_trickle_republish(
        t, values_b, make_plan(BlockLayout::random(kVectors, kVpb, 8), 64),
        RepublishConfig{4, 10.0});
    session.pump();  // a couple of waves land, then the session dies
    blocks_after_abandon = store.storage().num_blocks();
  }
  // Old plan still serves.
  std::vector<std::byte> out(kVecBytes);
  store.lookup(t, 11, out);
  EXPECT_TRUE(bytes_match(values_a, 11, out));
  EXPECT_EQ(store.store_metrics().mapping_swaps, 0u);

  // The abandoned session's replacement blocks are recycled: a full push
  // fits into the already-grown storage.
  TrickleRepublish session = store.begin_trickle_republish(
      t, values_b, make_plan(BlockLayout::random(kVectors, kVpb, 8), 64),
      RepublishConfig{0, 10.0});
  while (!session.done()) session.pump();
  EXPECT_EQ(store.storage().num_blocks(), blocks_after_abandon);
  store.lookup(t, 11, out);
  EXPECT_TRUE(bytes_match(values_b, 11, out));
}

TEST(TrickleRepublish, PeakWaveMemoryBoundedByAdmissionWave) {
  const EmbeddingTable values_a = patterned_table(kVectors, 0.0f);
  const EmbeddingTable values_b = patterned_table(kVectors, 1000.0f);
  StoreConfig cfg = store_config();
  cfg.device.queue_depth = 4;
  cfg.device.channels = 2;  // admission wave: 8 blocks per write_blocks call
  Store store(cfg);
  const TableId t = store.add_table(
      values_a, BlockLayout::identity(kVectors, kVpb), plain_policy(64));

  // Unlimited rate: the whole diff is admitted as fast as pump is called,
  // which is exactly when an eagerly-buffered push would hold every
  // replacement image at once.
  TrickleRepublish session = store.begin_trickle_republish(
      t, values_b, make_plan(BlockLayout::random(kVectors, kVpb, 12), 64),
      RepublishConfig{0, 10.0});
  const std::uint64_t total = session.total_blocks();
  ASSERT_GT(total, 8u);
  while (!session.done()) {
    if (session.pump() == 0) store.advance_time_us(10.0);
  }
  EXPECT_EQ(session.written_blocks(), total);

  // Lazy wave composition: the push buffered at most one admission wave of
  // block images at a time, never the whole diff.
  const std::uint64_t wave_bytes = 8ull * cfg.block_bytes;
  EXPECT_GT(session.peak_wave_bytes(), 0u);
  EXPECT_LE(session.peak_wave_bytes(), wave_bytes);
  EXPECT_LT(session.peak_wave_bytes(), total * cfg.block_bytes);
}

// ---------------------------------------------------------------------------
// TrafficSampler.

TEST(TrafficSampler, ReservoirBoundedAndCountersTrack) {
  SamplerConfig cfg;
  cfg.reservoir_queries = 16;
  TrafficSampler sampler(2, cfg);
  std::vector<VectorId> ids{1, 2, 3, 4};
  for (int i = 0; i < 100; ++i) {
    sampler.on_table_get(0, ids, /*hits=*/3, /*misses=*/1);
  }
  EXPECT_EQ(sampler.reservoir_size(0), 16u);
  EXPECT_EQ(sampler.reservoir_size(1), 0u);
  const TableTrafficStats stats = sampler.traffic(0);
  EXPECT_EQ(stats.seen_queries, 100u);
  EXPECT_EQ(stats.lookups, 400u);
  EXPECT_EQ(stats.hits, 300u);
  EXPECT_NEAR(stats.hit_rate(), 0.75, 1e-12);
  EXPECT_EQ(sampler.total_sampled(), 100u);

  auto traces = sampler.drain();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].num_queries(), 16u);
  EXPECT_EQ(traces[1].num_queries(), 0u);
  EXPECT_EQ(sampler.reservoir_size(0), 0u);  // drained
  // Counters are cumulative.
  EXPECT_EQ(sampler.traffic(0).seen_queries, 100u);
}

TEST(TrafficSampler, DeterministicPerSeedAndSamplingRateGates) {
  SamplerConfig cfg;
  cfg.reservoir_queries = 8;
  cfg.sampling_rate = 0.25;
  cfg.seed = 7;
  const auto run = [&] {
    TrafficSampler sampler(1, cfg);
    for (VectorId q = 0; q < 200; ++q) {
      const std::vector<VectorId> ids{q, q + 1};
      sampler.on_table_get(0, ids, 1, 1);
    }
    auto traces = sampler.drain();
    return std::make_pair(sampler.total_sampled(), std::move(traces[0]));
  };
  const auto [sampled_a, trace_a] = run();
  const auto [sampled_b, trace_b] = run();
  EXPECT_EQ(sampled_a, sampled_b);
  EXPECT_TRUE(trace_a == trace_b);  // bit-identical replay
  // The gate admits roughly sampling_rate of the stream.
  EXPECT_GT(sampled_a, 20u);
  EXPECT_LT(sampled_a, 90u);
}

// ---------------------------------------------------------------------------
// OnlineRetrainer end-to-end (synchronous mode).

TEST(OnlineRetrainer, RetrainNowRepacksFromSampledTrafficAndPushes) {
  TableWorkloadConfig wl;
  wl.num_vectors = kVectors;
  wl.dim = 32;
  wl.mean_lookups_per_query = 12;
  wl.num_profiles = 64;
  TraceGenerator gen(wl, 21);
  const EmbeddingTable values = gen.make_embeddings();

  StoreConfig cfg = store_config();
  Store store(cfg);
  TablePolicy policy = plain_policy(256);
  policy.policy = PrefetchPolicy::kPosition;
  policy.insertion_position = 0.5;
  const TableId t = store.add_table(
      values, BlockLayout::identity(kVectors, kVpb), policy);
  const std::vector<VectorId> old_order = store.table(t).layout().order();

  RetrainerConfig rc;
  rc.sampler.reservoir_queries = 512;
  rc.republish.blocks_per_interval = 16;
  rc.republish.interval_us = 50.0;
  rc.trainer.partitioner.shp.iters_per_level = 4;
  OnlineRetrainer retrainer(store, rc,
                            [&](TableId) -> const EmbeddingTable& {
                              return values;
                            });

  // Serve traffic through the tap.
  const Trace trace = gen.generate(400);
  std::vector<std::byte> out(kVecBytes * 256);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    const auto ids = trace.query(q);
    store.lookup_batch(t, ids, {out.data(), ids.size() * kVecBytes});
  }
  EXPECT_EQ(retrainer.sampler().traffic(t).seen_queries,
            trace.num_queries());

  ASSERT_EQ(retrainer.retrain_now(), 1u);  // SHP moved blocks -> one session
  EXPECT_TRUE(retrainer.republishing());
  while (retrainer.republishing()) {
    if (retrainer.pump() == 0) store.advance_time_us(50.0);
  }
  const RetrainerStats stats = retrainer.stats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_GT(stats.blocks_written, 0u);
  EXPECT_EQ(stats.blocks_written + stats.blocks_skipped,
            std::uint64_t{kVectors / kVpb});

  // The latency budget breaks the retrain into phases and surfaces the
  // same telemetry through StoreMetrics.
  EXPECT_GT(stats.drain_us, 0.0);
  EXPECT_GT(stats.train_us, 0.0);
  EXPECT_GT(stats.diff_us, 0.0);
  EXPECT_GT(stats.peak_training_bytes, 0u);
  const StoreMetrics sm = store.store_metrics();
  EXPECT_EQ(sm.retrain_runs, 1u);
  EXPECT_GT(sm.retrain_train_us, 0.0);
  EXPECT_EQ(sm.retrain_peak_training_bytes, stats.peak_training_bytes);
  EXPECT_EQ(sm.retrain_budget_overruns, stats.budget_overruns);

  // A second retrain with no new sampled traffic is a no-op (checked
  // before the verification lookups below, which feed the sampler again).
  EXPECT_EQ(retrainer.retrain_now(), 0u);

  // The layout actually changed and lookups still serve correct bytes.
  EXPECT_NE(store.table(t).layout().order(), old_order);
  for (const VectorId v : {0u, 17u, 1000u, kVectors - 1}) {
    store.lookup(t, v, {out.data(), kVecBytes});
    EXPECT_TRUE(bytes_match(values, v, {out.data(), kVecBytes}));
  }
}

}  // namespace
}  // namespace bandana
