#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bandana {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double o = rng.next_double_open();
    EXPECT_GT(o, 0.0);
    EXPECT_LE(o, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) below += rng.next_lognormal(std::log(6.4), 0.3) < 6.4;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(Rng, ForkIndependent) {
  Rng a(23);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int yes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) yes += rng.next_bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(yes) / n, 0.3, 0.01);
}

TEST(Splitmix, DistinctAndDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(splitmix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

}  // namespace
}  // namespace bandana
