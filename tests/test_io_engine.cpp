// Device-model regression suite for the event-driven per-channel engine.
//
// The legacy single-dispatch-queue model (submit_read / submit_reads) is
// kept in the tree as the reference: with channels = 1 the engine must
// reproduce its completion order and latencies bit-for-bit on a pinned-RNG
// trace. On top of that, per-channel FIFO ordering, admission bounds,
// cross-stream fairness and the Fig. 2 saturation shape are pinned as
// properties.
#include "nvm/io_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "nvm/admission.h"

namespace bandana {
namespace {

NvmDeviceConfig one_channel_config(unsigned queue_depth = 0) {
  NvmDeviceConfig cfg;
  cfg.channels = 1;
  cfg.queue_depth = queue_depth;
  return cfg;
}

// ---- Rng seeding audit: every engine stream derives from the run seed. ----

TEST(ChannelStreamSeed, ChannelZeroKeepsTheRunSeed) {
  EXPECT_EQ(channel_stream_seed(42, 0), 42u);
  EXPECT_EQ(channel_stream_seed(0xDEADBEEF, 0), 0xDEADBEEFull);
}

TEST(ChannelStreamSeed, StreamsAreDistinctAndPure) {
  std::vector<std::uint64_t> seeds;
  for (unsigned c = 0; c < 16; ++c) {
    seeds.push_back(channel_stream_seed(7, c));
    // Pure function of (run seed, channel): replayable, no global state.
    EXPECT_EQ(seeds.back(), channel_stream_seed(7, c));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(arrival_stream_seed(7), channel_stream_seed(7, 0));
}

TEST(NvmIoEngine, ReplayableFromSeedAlone) {
  const NvmDeviceConfig cfg;  // 4 channels, bounded gate
  NvmIoEngine a(cfg, 99), b(cfg, 99), c(cfg, 100);
  bool any_differs = false;
  for (int i = 0; i < 500; ++i) {
    const double arrival = 3.0 * i;
    a.submit(arrival);
    b.submit(arrival);
    c.submit(arrival);
  }
  while (auto done_a = a.next_completion()) {
    const auto done_b = b.next_completion();
    const auto done_c = c.next_completion();
    ASSERT_TRUE(done_b.has_value());
    ASSERT_TRUE(done_c.has_value());
    EXPECT_EQ(done_a->id, done_b->id);
    EXPECT_EQ(done_a->channel, done_b->channel);
    EXPECT_DOUBLE_EQ(done_a->complete_us, done_b->complete_us);
    any_differs |= done_a->complete_us != done_c->complete_us;
  }
  EXPECT_TRUE(any_differs);  // a different seed is a different device run
}

TEST(NvmIoEngine, ResetReplaysTheSameRun) {
  NvmIoEngine engine(NvmDeviceConfig{}, 5);
  std::vector<double> first;
  for (int i = 0; i < 100; ++i) engine.submit(2.0 * i);
  while (auto done = engine.next_completion()) {
    first.push_back(done->complete_us);
  }
  engine.reset();
  EXPECT_EQ(engine.submitted(), 0u);
  std::size_t i = 0;
  for (int k = 0; k < 100; ++k) engine.submit(2.0 * k);
  while (auto done = engine.next_completion()) {
    ASSERT_LT(i, first.size());
    EXPECT_DOUBLE_EQ(done->complete_us, first[i++]);
  }
  EXPECT_EQ(i, first.size());
}

// ---- channels=1 equivalence with the legacy dispatch-queue model
// (run_closed_loop_legacy, the canonical pre-engine implementation). ----

TEST(Equivalence, SingleChannelClosedLoopMatchesLegacyBitForBit) {
  // Pinned-RNG trace: both models draw the identical service sequence
  // (channel 0's stream IS the run seed's stream) in the identical order.
  // The device-config admission depth is irrelevant here — the drivers
  // are raw characterization sweeps and run the engine ungated, exactly
  // like the legacy loop.
  auto cfg = one_channel_config();
  cfg.queue_depth = 5;
  for (const unsigned qd : {1u, 2u, 4u, 8u}) {
    const auto legacy = run_closed_loop_legacy(cfg, qd, 2000, 123);
    const auto engine_run = run_closed_loop(cfg, qd, 2000, 123);
    // Engine latencies are recorded in completion order; with one channel
    // that is exactly the legacy submission order, so both recorders saw
    // the same sequence and must agree bit-for-bit on every statistic.
    const LatencyRecorder& reference = legacy.latency_us;
    ASSERT_EQ(engine_run.latency_us.count(), reference.count());
    EXPECT_DOUBLE_EQ(engine_run.latency_us.mean(), reference.mean());
    EXPECT_DOUBLE_EQ(engine_run.latency_us.max(), reference.max());
    EXPECT_DOUBLE_EQ(engine_run.latency_us.percentile(0.99),
                     reference.percentile(0.99));
    EXPECT_DOUBLE_EQ(engine_run.latency_us.percentile(0.5),
                     reference.percentile(0.5));
    EXPECT_DOUBLE_EQ(engine_run.elapsed_us, legacy.elapsed_us);
  }
}

TEST(Equivalence, SingleChannelCompletionOrderAndTimesMatchLegacy) {
  const auto cfg = one_channel_config();
  NvmLatencyModel model(cfg);
  Rng legacy_rng(321);
  std::vector<double> channel_free(cfg.channels, 0.0);
  NvmIoEngine engine(cfg, 321);

  // Pinned arrival trace (deterministic, bursty): compare every IO's
  // completion time and the delivery order, not just aggregates.
  std::vector<double> arrivals;
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    t += (i % 7 == 0) ? 0.0 : 4.5;  // occasional same-instant bursts
    arrivals.push_back(t);
  }
  std::vector<double> legacy_done;
  for (const double a : arrivals) {
    legacy_done.push_back(submit_read(model, a, channel_free, legacy_rng));
    engine.submit(a);
  }
  std::size_t i = 0;
  while (auto done = engine.next_completion()) {
    ASSERT_LT(i, legacy_done.size());
    EXPECT_EQ(done->id, i);  // FIFO: delivery order == submission order
    EXPECT_DOUBLE_EQ(done->complete_us, legacy_done[i]);
    EXPECT_DOUBLE_EQ(done->arrival_us, arrivals[i]);
    ++i;
  }
  EXPECT_EQ(i, legacy_done.size());
}

TEST(Equivalence, SingleChannelWaveMatchesLegacySubmitReads) {
  for (const unsigned depth : {0u, 1u, 3u}) {
    const auto cfg = one_channel_config(depth);
    NvmLatencyModel model(cfg);
    Rng legacy_rng(77);
    std::vector<double> channel_free(cfg.channels, 0.0);
    AdmissionController gate(cfg.channels, depth);
    NvmIoEngine engine(cfg, 77);

    // Three consecutive waves, including out-of-order wave overlap (wave 2
    // arrives before wave 1's reads have completed).
    for (const double arrival : {0.0, 30.0, 500.0}) {
      const double legacy_done = submit_reads(model, arrival, 24,
                                              channel_free, gate, legacy_rng);
      EXPECT_DOUBLE_EQ(engine.submit_wave(arrival, 24), legacy_done)
          << "depth " << depth << " wave at " << arrival;
    }
  }
}

// ---- Per-channel FIFO order and admission bounds. ----

TEST(NvmIoEngine, PerChannelCompletionsAreFifo) {
  NvmDeviceConfig cfg;
  cfg.channels = 4;
  cfg.queue_depth = 2;
  NvmIoEngine engine(cfg, 9);
  for (int i = 0; i < 400; ++i) engine.submit(1.5 * i);

  std::map<unsigned, std::vector<IoCompletion>> by_channel;
  while (auto done = engine.next_completion()) {
    by_channel[done->channel].push_back(*done);
  }
  EXPECT_EQ(by_channel.size(), 4u);
  for (auto& [channel, ios] : by_channel) {
    std::sort(ios.begin(), ios.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    for (std::size_t i = 1; i < ios.size(); ++i) {
      // FIFO service: a later-routed read never starts before, or
      // completes before, an earlier read of the same channel.
      EXPECT_GE(ios[i].start_us, ios[i - 1].start_us);
      EXPECT_GE(ios[i].complete_us, ios[i - 1].complete_us);
      // No time travel inside one IO's event timeline.
      EXPECT_GE(ios[i].submit_us, ios[i].arrival_us);
      EXPECT_GE(ios[i].start_us, ios[i].submit_us);
      EXPECT_GT(ios[i].complete_us, ios[i].start_us);
    }
  }
}

TEST(NvmIoEngine, AdmissionGateBoundsOutstandingReads) {
  NvmDeviceConfig cfg;
  cfg.channels = 2;
  cfg.queue_depth = 1;  // cap: 2 outstanding reads
  NvmIoEngine engine(cfg, 13);
  std::vector<IoCompletion> all;
  engine.submit_wave(0.0, 50, &all);
  ASSERT_EQ(all.size(), 50u);

  // A slot is held from admission release to completion; replay the event
  // timeline and check the cap (completions free slots before a release at
  // the same instant, matching the gate's <= drain).
  std::vector<std::pair<double, int>> events;
  for (const auto& io : all) {
    events.emplace_back(io.submit_us, +1);
    events.emplace_back(io.complete_us, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // -1 (free) before +1 (acquire)
            });
  int outstanding = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    outstanding += delta;
    peak = std::max(peak, outstanding);
  }
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(outstanding, 0);
}

TEST(NvmIoEngine, FairnessAcrossConcurrentStreamsAtFixedQueueDepth) {
  // Four request streams submit round-robin at a rate near saturation.
  // The admission gate + per-channel FIFOs must spread the queueing delay
  // evenly: no stream's p99 may run away from the others (the
  // cross-request fairness the single global dispatch queue could not
  // express).
  NvmDeviceConfig cfg;
  cfg.channels = 4;
  cfg.queue_depth = 2;
  NvmIoEngine engine(cfg, 31);
  constexpr int kStreams = 4;
  constexpr int kPerStream = 2000;
  const double interarrival_us = cfg.mean_service_us() / cfg.channels / 0.9;
  for (int i = 0; i < kStreams * kPerStream; ++i) {
    engine.submit(interarrival_us * static_cast<double>(i / kStreams));
  }
  std::vector<LatencyRecorder> stream_latency(kStreams);
  while (auto done = engine.next_completion()) {
    stream_latency[done->id % kStreams].add(done->latency_us());
  }
  double min_p99 = 1e300, max_p99 = 0.0;
  for (const auto& rec : stream_latency) {
    EXPECT_EQ(rec.count(), static_cast<std::uint64_t>(kPerStream));
    min_p99 = std::min(min_p99, rec.percentile(0.99));
    max_p99 = std::max(max_p99, rec.percentile(0.99));
  }
  EXPECT_GT(min_p99, 0.0);
  EXPECT_LT(max_p99 / min_p99, 1.15)
      << "p99 spread across concurrent streams: " << min_p99 << " .. "
      << max_p99;
}

// ---- Fig. 2 shape: bandwidth saturates past `channels` outstanding. ----

TEST(NvmIoEngine, ClosedLoopBandwidthSaturatesPastChannels) {
  NvmDeviceConfig cfg;  // 4 channels
  const double peak = cfg.peak_bandwidth_bytes_per_s();
  const auto bw = [&](unsigned qd) {
    return run_closed_loop(cfg, qd, 30000, 17)
        .bandwidth_bytes_per_s(cfg.block_bytes);
  };
  const double bw1 = bw(1), bw4 = bw(4), bw16 = bw(16);
  EXPECT_LT(bw1, 0.45 * peak);   // one outstanding IO: channels idle
  EXPECT_GT(bw4, 1.8 * bw1);     // scales while channels fill
  EXPECT_GT(bw16, 0.90 * peak);  // saturated past `channels` outstanding
  EXPECT_LT(bw16, 1.05 * peak);
}

// ---- Write-aware channel model: writes share FIFOs and the gate, but
// never perturb the read service draws. ----

TEST(ChannelStreamSeed, WriteStreamsDisjointFromReadStreams) {
  std::vector<std::uint64_t> seeds;
  for (unsigned c = 0; c < 16; ++c) {
    seeds.push_back(channel_stream_seed(7, c));
    seeds.push_back(channel_write_stream_seed(7, c));
    // Pure function of (run seed, channel).
    EXPECT_EQ(seeds.back(), channel_write_stream_seed(7, c));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(WriteAwareEngine, ReadOnlyTrafficBitIdenticalWithWriteModelConfigured) {
  // The write model is purely additive: a read-only trace on a config with
  // a (different) write service distribution replays the legacy dispatch
  // queue bit-for-bit, exactly like the pre-write engine.
  auto cfg = one_channel_config();
  cfg.write_service_median_us = 99.0;  // any value: reads never draw it
  cfg.write_service_sigma = 1.0;
  NvmLatencyModel model(cfg);
  Rng legacy_rng(321);
  std::vector<double> channel_free(cfg.channels, 0.0);
  NvmIoEngine engine(cfg, 321);
  double t = 0.0;
  std::vector<double> legacy_done;
  for (int i = 0; i < 500; ++i) {
    t += (i % 5 == 0) ? 0.0 : 4.5;
    legacy_done.push_back(submit_read(model, t, channel_free, legacy_rng));
    engine.submit(t);
  }
  std::size_t i = 0;
  while (auto done = engine.next_completion()) {
    ASSERT_LT(i, legacy_done.size());
    EXPECT_EQ(done->kind, IoKind::kRead);
    EXPECT_DOUBLE_EQ(done->complete_us, legacy_done[i]);
    ++i;
  }
  EXPECT_EQ(i, legacy_done.size());
}

TEST(WriteAwareEngine, InterleavedWritesDelayReadsButKeepTheirServiceDraws) {
  // channels = 1, unbounded gate: interleaving writes into a read trace
  // must not change any read's media service time (writes draw from a
  // disjoint stream) — only its queueing delay, which can only grow.
  auto cfg = one_channel_config(/*queue_depth=*/0);
  NvmIoEngine reads_only(cfg, 55), mixed(cfg, 55);
  const double step = cfg.mean_service_us();  // near saturation
  for (int i = 0; i < 400; ++i) {
    const double arrival = step * i;
    reads_only.submit(arrival, IoKind::kRead);
    mixed.submit(arrival, IoKind::kRead);
    if (i % 4 == 0) mixed.submit(arrival, IoKind::kWrite);
  }
  std::vector<IoCompletion> ref, got;
  while (auto done = reads_only.next_completion()) ref.push_back(*done);
  while (auto done = mixed.next_completion()) {
    if (done->kind == IoKind::kRead) got.push_back(*done);
  }
  ASSERT_EQ(got.size(), ref.size());
  bool any_delayed = false;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    // Same media service draw (single channel: stream order is fixed).
    // NEAR, not DOUBLE_EQ: the draw is recovered as complete - start,
    // and the two runs compute it at different absolute clock offsets,
    // so the subtraction differs in the last ulps.
    EXPECT_NEAR(got[i].complete_us - got[i].start_us,
                ref[i].complete_us - ref[i].start_us, 1e-9);
    // Contention is one-directional: writes only ever push reads later.
    EXPECT_GE(got[i].complete_us, ref[i].complete_us);
    any_delayed |= got[i].complete_us > ref[i].complete_us;
  }
  EXPECT_TRUE(any_delayed);
}

TEST(WriteAwareEngine, PerChannelFifoHoldsAcrossKinds) {
  NvmDeviceConfig cfg;
  cfg.channels = 4;
  cfg.queue_depth = 2;
  NvmIoEngine engine(cfg, 9);
  for (int i = 0; i < 400; ++i) {
    engine.submit(1.5 * i, i % 3 == 0 ? IoKind::kWrite : IoKind::kRead);
  }
  std::map<unsigned, std::vector<IoCompletion>> by_channel;
  std::uint64_t reads = 0, writes = 0;
  while (auto done = engine.next_completion()) {
    (done->kind == IoKind::kWrite ? writes : reads) += 1;
    by_channel[done->channel].push_back(*done);
  }
  EXPECT_EQ(reads + writes, 400u);
  EXPECT_GT(writes, 0u);
  for (auto& [channel, ios] : by_channel) {
    std::sort(ios.begin(), ios.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });
    for (std::size_t i = 1; i < ios.size(); ++i) {
      // FIFO across kinds: a later IO never starts or completes before an
      // earlier IO of the same channel, read or write.
      EXPECT_GE(ios[i].start_us, ios[i - 1].start_us);
      EXPECT_GE(ios[i].complete_us, ios[i - 1].complete_us);
    }
  }
}

TEST(WriteAwareEngine, WritesHoldAdmissionGateSlots) {
  NvmDeviceConfig cfg;
  cfg.channels = 2;
  cfg.queue_depth = 1;  // cap: 2 outstanding IOs, reads plus writes
  NvmIoEngine engine(cfg, 13);
  std::vector<IoCompletion> all;
  for (int i = 0; i < 25; ++i) {
    engine.submit(0.0, IoKind::kRead);
    engine.submit(0.0, IoKind::kWrite);
  }
  while (auto done = engine.next_completion()) all.push_back(*done);
  ASSERT_EQ(all.size(), 50u);
  std::vector<std::pair<double, int>> events;
  for (const auto& io : all) {
    events.emplace_back(io.submit_us, +1);
    events.emplace_back(io.complete_us, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  int outstanding = 0, peak = 0;
  for (const auto& [time, delta] : events) {
    outstanding += delta;
    peak = std::max(peak, outstanding);
  }
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(outstanding, 0);
}

TEST(WriteAwareEngine, ChannelStatsSplitReadsAndWrites) {
  NvmDeviceConfig cfg;
  cfg.channels = 2;
  NvmIoEngine engine(cfg, 11);
  engine.submit_wave(0.0, 60);
  engine.submit_wave(0.0, 40, nullptr, IoKind::kWrite);
  std::uint64_t reads = 0, writes = 0;
  double write_busy = 0.0;
  for (unsigned c = 0; c < engine.channels(); ++c) {
    const auto stats = engine.channel_stats(c);
    reads += stats.ios;
    writes += stats.writes;
    write_busy += stats.write_busy_us;
  }
  EXPECT_EQ(reads, 60u);
  EXPECT_EQ(writes, 40u);
  EXPECT_GT(write_busy, 0.0);
  EXPECT_EQ(engine.submitted(), 100u);
  EXPECT_EQ(engine.completed(), 100u);
}

TEST(NvmIoEngine, WaveOnIdleEngineReturnsArrival) {
  NvmIoEngine engine(NvmDeviceConfig{}, 3);
  EXPECT_DOUBLE_EQ(engine.submit_wave(125.0, 0), 125.0);
}

TEST(NvmIoEngine, ChannelStatsAccumulate) {
  NvmDeviceConfig cfg;
  cfg.channels = 2;
  NvmIoEngine engine(cfg, 11);
  engine.submit_wave(0.0, 100);
  std::uint64_t total = 0;
  for (unsigned c = 0; c < engine.channels(); ++c) {
    const auto stats = engine.channel_stats(c);
    EXPECT_GT(stats.ios, 0u);
    EXPECT_GT(stats.busy_us, 0.0);
    total += stats.ios;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(engine.submitted(), 100u);
  EXPECT_EQ(engine.completed(), 100u);
  EXPECT_EQ(engine.pending_completions(), 0u);
}

}  // namespace
}  // namespace bandana
