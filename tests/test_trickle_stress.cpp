// Concurrency stress for the trickle-republish mapping swap: reader
// threads hammer multi_get_async while a trickle republish (new layout AND
// new values) runs to completion — repeatedly, with block recycling across
// pushes. The torn-vector assertion: every embedding a request returns is
// byte-for-byte the OLD plan's value or the NEW plan's value, never a mix
// of the two — a lookup serves entirely from one consistent mapping. After
// the final swap quiesces, every lookup must serve the final values.
//
// Runs on the plain memory backend (inline reads under the shard locks)
// and on a batched-read backend (the staged_only pipeline, where a swap
// between the staging peek and the lookup forces deferred retry waves).
// The suite is in the `concurrency` + `retraining` ctest labels and must
// be TSan-clean.
#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/retrainer.h"
#include "core/store.h"
#include "core/trainer.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

constexpr std::uint32_t kVectors = 4096;
constexpr std::uint32_t kVpb = 32;
constexpr std::size_t kVecBytes = 128;

EmbeddingTable patterned_table(std::uint32_t vectors, float offset) {
  EmbeddingTable values(vectors, 32);
  for (VectorId v = 0; v < vectors; ++v) {
    auto row = values.vector(v);
    for (std::uint16_t d = 0; d < 32; ++d) {
      row[d] = offset + static_cast<float>(v) + 0.25f * static_cast<float>(d);
    }
  }
  return values;
}

bool equals_value(const EmbeddingTable& values, VectorId v,
                  std::span<const std::byte> got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got.data(), want.data(), want.size()) == 0;
}

/// Memory storage that advertises batched reads, so the store runs the
/// staged_only pipeline (deferral + retry waves) against it.
class BatchedMemoryStorage final : public BlockStorage {
 public:
  BatchedMemoryStorage(std::uint64_t num_blocks, std::size_t block_bytes)
      : inner_(num_blocks, block_bytes) {}

  std::size_t block_bytes() const override { return inner_.block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_.num_blocks(); }
  void read_block(BlockId b, std::span<std::byte> out) const override {
    inner_.read_block(b, out);
  }
  void write_block(BlockId b, std::span<const std::byte> in) override {
    inner_.write_block(b, in);
  }
  void read_blocks(std::span<const BlockReadOp> ops) const override {
    for (const auto& op : ops) inner_.read_block(op.block, op.out);
  }
  bool prefers_batched_reads() const override { return true; }

 private:
  MemoryBlockStorage inner_;
};

TablePlan make_plan(BlockLayout layout, std::uint64_t cache_vectors) {
  TablePolicy policy;
  policy.cache_vectors = cache_vectors;
  policy.policy = PrefetchPolicy::kAll;  // max admission churn per block read
  return TablePlan{std::move(layout), {}, policy, 0.0};
}

void run_swap_stress(BlockStorageFactory factory, std::uint64_t seed) {
  const EmbeddingTable values_a = patterned_table(kVectors, 0.0f);
  const EmbeddingTable values_b = patterned_table(kVectors, 1.0e6f);

  StoreConfig cfg;
  cfg.simulate_timing = false;  // pure serving-path concurrency
  cfg.cache_shards = 4;
  Store store(cfg, std::move(factory));
  TablePolicy policy;
  policy.cache_vectors = 512;  // heavy eviction churn
  policy.policy = PrefetchPolicy::kAll;
  const TableId t = store.add_table(
      values_a, BlockLayout::random(kVectors, kVpb, seed), policy);

  constexpr std::size_t kRequests = 900;
  constexpr std::size_t kIdsPerRequest = 24;
  constexpr std::size_t kWindow = 16;
  ThreadPool pool(4);
  Rng rng(seed);

  // Pre-build deterministic request id lists; interleaving with the pushes
  // is what the threads randomize.
  std::vector<std::vector<VectorId>> all_ids(kRequests);
  for (auto& ids : all_ids) {
    ids.reserve(kIdsPerRequest);
    for (std::size_t i = 0; i < kIdsPerRequest; ++i) {
      ids.push_back(static_cast<VectorId>(rng.next_below(kVectors)));
    }
  }

  struct InFlight {
    std::future<MultiGetResult> future;
    const std::vector<VectorId>* ids;
  };
  std::vector<InFlight> inflight;
  std::size_t checked = 0;
  const auto settle_one = [&](const EmbeddingTable& old_values,
                              const EmbeddingTable& new_values) {
    InFlight f = std::move(inflight.front());
    inflight.erase(inflight.begin());
    const MultiGetResult res = f.future.get();
    ASSERT_EQ(res.vectors.size(), 1u);
    const auto& bytes = res.vectors[0];
    ASSERT_EQ(bytes.size(), f.ids->size() * kVecBytes);
    for (std::size_t i = 0; i < f.ids->size(); ++i) {
      const std::span<const std::byte> got{bytes.data() + i * kVecBytes,
                                           kVecBytes};
      const VectorId v = (*f.ids)[i];
      // The torn-vector assertion: old-plan bytes or new-plan bytes,
      // never a mix (equals_value compares the full 128 B).
      ASSERT_TRUE(equals_value(old_values, v, got) ||
                  equals_value(new_values, v, got))
          << "torn vector " << v << " (request " << checked << ")";
    }
    ++checked;
  };

  // Three consecutive pushes (A -> B -> A -> B) with block recycling,
  // readers hammering throughout.
  const EmbeddingTable* live = &values_a;
  std::size_t q = 0;
  for (int push = 0; push < 3; ++push) {
    const EmbeddingTable& next = (push % 2 == 0) ? values_b : values_a;
    RepublishConfig rate;
    rate.blocks_per_interval = 8;
    rate.interval_us = 25.0;
    TrickleRepublish session = store.begin_trickle_republish(
        t, next, make_plan(BlockLayout::random(kVectors, kVpb, seed + push), 512),
        rate);
    while (!session.done()) {
      // Keep the reader window full.
      while (inflight.size() < kWindow && q < kRequests) {
        MultiGetRequest req;
        req.add(t, all_ids[q]);
        inflight.push_back(
            {store.multi_get_async(std::move(req), pool), &all_ids[q]});
        ++q;
      }
      if (!inflight.empty()) settle_one(*live, next);
      if (session.pump() == 0) store.advance_time_us(rate.interval_us);
    }
    // Drain the window before asserting the post-swap state: in-flight
    // requests may still carry pre-swap bytes.
    while (!inflight.empty()) settle_one(*live, next);
    live = &next;

    // Quiesced after the swap: everything serves the new plan exactly.
    std::vector<std::byte> out(kVecBytes);
    for (const VectorId v : {0u, 17u, 2048u, kVectors - 1}) {
      store.lookup(t, v, out);
      ASSERT_TRUE(equals_value(*live, v, out)) << "post-swap vector " << v;
    }
  }
  EXPECT_GE(checked, kWindow);
  EXPECT_EQ(store.store_metrics().mapping_swaps, 3u);

  // Pipeline hygiene under the swap: the staged path may defer (and the
  // metric proves the stress exercised it), but truncation never happens
  // at these sizes.
  EXPECT_EQ(store.store_metrics().stage_truncated_blocks, 0u);
}

TEST(TrickleSwapStress, NoTornVectorsOnInlineBackend) {
  run_swap_stress(memory_storage_factory(), 0xA11CE);
}

TEST(TrickleSwapStress, NoTornVectorsOnBatchedStagedBackend) {
  run_swap_stress(
      [](std::uint64_t num_blocks, std::size_t block_bytes) {
        return std::make_unique<BatchedMemoryStorage>(num_blocks, block_bytes);
      },
      0xBEE5);
}

/// The background retrainer thread end-to-end: serving threads feed the
/// sampler while the retrainer auto-retrains and pumps its own trickle —
/// the full concurrency boundary (serving pool vs retrain thread) under
/// TSan.
TEST(TrickleSwapStress, BackgroundRetrainerThreadSwapsWhileServing) {
  TableWorkloadConfig wl;
  wl.num_vectors = kVectors;
  wl.dim = 32;
  wl.mean_lookups_per_query = 16;
  wl.num_profiles = 64;
  TraceGenerator gen(wl, 5);
  const EmbeddingTable values = gen.make_embeddings();

  StoreConfig cfg;
  cfg.simulate_timing = false;
  cfg.cache_shards = 4;
  Store store(cfg);
  TablePolicy policy;
  policy.cache_vectors = 512;
  policy.policy = PrefetchPolicy::kPosition;
  policy.insertion_position = 0.5;
  const TableId t = store.add_table(
      values, BlockLayout::identity(kVectors, kVpb), policy);

  RetrainerConfig rc;
  rc.sampler.reservoir_queries = 256;
  rc.trainer.partitioner.shp.iters_per_level = 2;
  rc.republish.blocks_per_interval = 16;
  rc.republish.interval_us = 10.0;
  rc.min_sampled_queries = 200;
  rc.poll_interval_ms = 0.2;
  OnlineRetrainer retrainer(
      store, rc, [&](TableId) -> const EmbeddingTable& { return values; });
  retrainer.start();

  const Trace trace = gen.generate(1200);
  ThreadPool pool(4);
  std::vector<std::future<MultiGetResult>> inflight;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(t, trace.query(q));
    inflight.push_back(store.multi_get_async(std::move(req), pool));
    if (inflight.size() >= 32) {
      // Values never change in this test, so every byte must match.
      const MultiGetResult res = inflight.front().get();
      inflight.erase(inflight.begin());
      ASSERT_FALSE(res.vectors.empty());
      store.advance_time_us(5.0);  // drive the trickle's simulated clock
    }
  }
  for (auto& f : inflight) f.get();
  retrainer.stop();
  // Drain any session the thread left mid-flight so the swap count below
  // is stable, then verify bytes.
  while (retrainer.republishing()) {
    if (retrainer.pump() == 0) store.advance_time_us(10.0);
  }
  std::vector<std::byte> out(kVecBytes);
  for (const VectorId v : {1u, 333u, kVectors - 1}) {
    store.lookup(t, v, out);
    EXPECT_TRUE(equals_value(values, v, out));
  }
  // The background thread really retrained (sampled traffic was ample).
  EXPECT_GE(retrainer.stats().retrains, 1u);
}

}  // namespace
}  // namespace bandana
