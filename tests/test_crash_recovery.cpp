// Kill-9-style crash injection for the persistence layer: a fault-injecting
// BlockStorage wrapper dies (throws, and stays dead) at every write-wave
// boundary of a trickle republish and a live add_table publish, plus the two
// manifest-commit boundaries (just before / just after the rename pointer
// flip). After each simulated crash the store is reopened from the durable
// manifest and every vector of every table must read back as EXACTLY the old
// plan's bytes or EXACTLY the new plan's bytes — never a torn mix — with the
// flip as the dividing line: any crash before it recovers entirely-old, any
// crash after it entirely-new. Runs across the File and AsyncFile backends.
//
// Also pins the satellite storage fixes this PR ships: EINTR-safe
// pread/pwrite loops distinguishing EOF from errors, overflow-checked file
// sizing, and the manifest-routed fresh-vs-preserve decision in the file
// factories (truncate-on-first-invocation destroyed recoverable stores).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/manifest.h"
#include "core/store.h"
#include "core/store_builder.h"
#include "core/trainer.h"
#include "nvm/async_file_storage.h"
#include "nvm/block_storage.h"
#include "partition/layout.h"
#include "trace/embedding_table.h"

namespace bandana {
namespace {

constexpr std::uint32_t kVectors = 1024;
constexpr std::uint16_t kDim = 32;  // 128 B vectors, 32 per 4 KB block
constexpr std::uint32_t kVpb = 32;
constexpr std::uint32_t kTableBlocks = kVectors / kVpb;  // 32
constexpr std::size_t kTables = 2;

StoreConfig test_config() {
  StoreConfig cfg;
  cfg.cache_shards = 1;
  cfg.simulate_timing = false;
  // Small admission wave (queue_depth x channels = 8 blocks) so a 32-block
  // publish / trickle push spans several write_blocks calls — each one a
  // crash point for the sweep.
  cfg.device.queue_depth = 4;
  cfg.device.channels = 2;
  return cfg;
}

TablePolicy test_policy() {
  TablePolicy pol;
  pol.cache_vectors = 256;
  pol.policy = PrefetchPolicy::kNone;
  return pol;
}

TablePlan identity_plan() {
  return {BlockLayout::identity(kVectors, kVpb), {}, test_policy(), 0.0};
}

TablePlan shuffled_plan() {
  return {BlockLayout::random(kVectors, kVpb, 0xF00D), {}, test_policy(), 0.0};
}

/// Deterministic value matrix; distinct tags give byte-distinct tables.
EmbeddingTable make_values(std::uint32_t tag) {
  EmbeddingTable e(kVectors, kDim);
  for (std::uint32_t v = 0; v < kVectors; ++v) {
    auto row = e.vector(v);
    for (std::uint16_t d = 0; d < kDim; ++d) {
      row[d] = static_cast<float>(tag) * 1000.0f + static_cast<float>(v) +
               static_cast<float>(d) * 0.5f;
    }
  }
  return e;
}

/// The simulated power cut: thrown once the armed write call is reached;
/// every later write through the dead storage throws it again (a crashed
/// process issues no more IO).
struct CrashInjected : std::runtime_error {
  explicit CrashInjected(const std::string& what) : std::runtime_error(what) {}
};

struct FaultPlan {
  bool armed = false;
  std::uint64_t crash_at = 0;  ///< 1-based write call to die on (0 = never).
  std::uint64_t calls = 0;     ///< Write calls observed while armed.
  bool dead = false;
};

/// Transparent BlockStorage wrapper that forwards everything to a real
/// backend and injects the crash on the plan's armed write call.
class FaultInjectedStorage final : public BlockStorage {
 public:
  FaultInjectedStorage(std::unique_ptr<BlockStorage> inner,
                       std::shared_ptr<FaultPlan> plan)
      : inner_(std::move(inner)), plan_(std::move(plan)) {}

  std::size_t block_bytes() const override { return inner_->block_bytes(); }
  std::uint64_t num_blocks() const override { return inner_->num_blocks(); }
  void read_block(BlockId b, std::span<std::byte> out) const override {
    inner_->read_block(b, out);
  }
  void read_blocks(std::span<const BlockReadOp> ops) const override {
    inner_->read_blocks(ops);
  }
  void write_block(BlockId b, std::span<const std::byte> in) override {
    before_write();
    inner_->write_block(b, in);
  }
  void write_blocks(std::span<const BlockWriteOp> ops) override {
    before_write();
    inner_->write_blocks(ops);
  }
  bool prefers_batched_reads() const override {
    return inner_->prefers_batched_reads();
  }
  bool prefers_batched_writes() const override {
    return inner_->prefers_batched_writes();
  }
  BlockStorageWriteStats write_stats() const override {
    return inner_->write_stats();
  }
  void sync() override {
    if (plan_->dead) throw CrashInjected("sync on dead storage");
    inner_->sync();
  }
  WaveBufferLease lease_wave_buffer(std::size_t bytes) const override {
    return inner_->lease_wave_buffer(bytes);
  }
  bool same_backing(const BlockStorage& other) const override {
    // Unwrap both sides so growth re-invocations on the same file still
    // detect in-place resizing (no spurious block migration).
    const auto* w = dynamic_cast<const FaultInjectedStorage*>(&other);
    return inner_->same_backing(w != nullptr ? *w->inner_ : other);
  }

 private:
  void before_write() {
    if (!plan_->armed) return;
    if (plan_->dead) throw CrashInjected("write on dead storage");
    ++plan_->calls;
    if (plan_->crash_at != 0 && plan_->calls >= plan_->crash_at) {
      plan_->dead = true;
      throw CrashInjected("injected crash at write call " +
                          std::to_string(plan_->calls));
    }
  }

  std::unique_ptr<BlockStorage> inner_;
  std::shared_ptr<FaultPlan> plan_;
};

enum class Backend { kFile, kAsyncFile };

struct Paths {
  std::string block;
  std::string manifest;
};

Paths test_paths(const std::string& name) {
  const std::string base =
      "/tmp/bandana_crash_" + std::to_string(::getpid()) + "_" + name;
  return {base + ".bin", base + ".manifest"};
}

void cleanup(const Paths& p) {
  std::remove(p.block.c_str());
  std::remove(p.manifest.c_str());
  std::remove((p.manifest + ".tmp").c_str());
}

BlockStorageFactory real_factory(Backend be, const Paths& p) {
  if (be == Backend::kFile) return file_storage_factory(p.block, p.manifest);
  return async_file_storage_factory(p.block, {}, p.manifest);
}

BlockStorageFactory faulty_factory(Backend be, const Paths& p,
                                   std::shared_ptr<FaultPlan> plan) {
  return [real = real_factory(be, p), plan = std::move(plan)](
             std::uint64_t num_blocks, std::size_t block_bytes) mutable
             -> std::unique_ptr<BlockStorage> {
    return std::make_unique<FaultInjectedStorage>(real(num_blocks, block_bytes),
                                                  plan);
  };
}

/// Reads every vector of table `t` from the store and classifies the bytes:
/// 'A' = exactly values `a`, 'B' = exactly values `b`, 'X' = torn/neither.
char classify(Store& s, TableId t, const EmbeddingTable& a,
              const EmbeddingTable& b) {
  std::vector<VectorId> ids(kVectors);
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::byte> out(std::size_t{kVectors} * a.vector_bytes());
  s.lookup_batch(t, ids, out);
  const auto matches = [&](const EmbeddingTable& v) {
    return std::memcmp(out.data(), v.raw().data(), out.size()) == 0;
  };
  if (matches(a)) return 'A';
  if (matches(b)) return 'B';
  return 'X';
}

enum class HookCrash { kNone, kBeforeFlip, kAfterFlip };

struct CrashRun {
  bool crashed = false;
  std::uint64_t write_calls = 0;  ///< Trickle-phase write calls observed.
};

/// Build a persisted 2-table store (values 1 and 2, identity layouts),
/// pre-size the replacement region, then trickle table 0 to values 3 on a
/// shuffled layout with the fault armed. Returns whether the injected crash
/// fired and how many write calls the trickle phase issued.
CrashRun run_trickle_with_faults(Backend be, const Paths& p,
                                 std::uint64_t crash_at_write, HookCrash hook) {
  cleanup(p);
  auto fault = std::make_shared<FaultPlan>();
  const EmbeddingTable v1a = make_values(1);
  const EmbeddingTable v1b = make_values(2);
  const EmbeddingTable v2 = make_values(3);

  Store store = StoreBuilder(test_config())
                    .storage(faulty_factory(be, p, fault))
                    .manifest(p.manifest)
                    .add_table(v1a, identity_plan())
                    .add_table(v1b, identity_plan())
                    .build();
  // Pre-size the replacement region so the trickle itself never regrows
  // storage: the armed phase then contains exactly the republish write
  // waves plus the finishing manifest commit.
  store.reserve_blocks(2 * kTables * kTableBlocks);

  if (hook != HookCrash::kNone) {
    ManifestCommitHooks hooks;
    auto die = [] { throw CrashInjected("injected crash at manifest flip"); };
    if (hook == HookCrash::kBeforeFlip) hooks.before_flip = die;
    if (hook == HookCrash::kAfterFlip) hooks.after_flip = die;
    store.set_manifest_fault_hooks(hooks);
  }
  fault->armed = true;
  fault->crash_at = crash_at_write;

  CrashRun r;
  try {
    TrickleRepublish session = store.begin_trickle_republish(
        0, v2, shuffled_plan(), RepublishConfig{});
    while (!session.done()) session.pump();
  } catch (const CrashInjected&) {
    r.crashed = true;
  }
  r.write_calls = fault->calls;
  return r;
}

/// Reopen from the durable manifest and check exactly-old/exactly-new.
void expect_recovered(Backend be, const Paths& p, char expect_t0,
                      std::uint64_t expect_epoch) {
  Store s = Store::open(test_config(), p.manifest, real_factory(be, p));
  ASSERT_EQ(s.num_tables(), kTables);
  EXPECT_EQ(s.trickle_epoch(), expect_epoch);
  EXPECT_EQ(s.storage().num_blocks(), 2 * kTables * kTableBlocks);
  const char t0 = classify(s, 0, make_values(1), make_values(3));
  EXPECT_NE(t0, 'X') << "table 0 recovered torn";
  EXPECT_EQ(t0, expect_t0);
  // Table 1 was never republished: always its original bytes.
  EXPECT_EQ(classify(s, 1, make_values(2), make_values(3)), 'A');
}

class CrashRecoveryTest : public ::testing::TestWithParam<Backend> {};

TEST_P(CrashRecoveryTest, TrickleCrashAtEveryWaveBoundary) {
  const Backend be = GetParam();
  const Paths p = test_paths(be == Backend::kFile ? "wave_file" : "wave_async");

  // Dry run: no crash — the trickle completes, the flip lands, recovery
  // serves the new plan. Its write-call count defines the sweep range.
  const CrashRun dry = run_trickle_with_faults(be, p, 0, HookCrash::kNone);
  ASSERT_FALSE(dry.crashed);
  // All 32 blocks change (new values AND new layout), chunked to the 8-block
  // admission wave: the boundary sweep must have several points.
  ASSERT_GE(dry.write_calls, 2u);
  expect_recovered(be, p, 'B', 1);

  // Crash at every write-wave boundary. Every one of these predates the
  // manifest flip (replacement blocks are written before the finishing
  // commit), so recovery must serve entirely the OLD plan.
  for (std::uint64_t k = 1; k <= dry.write_calls; ++k) {
    SCOPED_TRACE("crash at write call " + std::to_string(k));
    const CrashRun run = run_trickle_with_faults(be, p, k, HookCrash::kNone);
    EXPECT_TRUE(run.crashed);
    expect_recovered(be, p, 'A', 0);
  }

  // The recovered store is a first-class store: re-run the interrupted
  // republish to completion and the next reopen serves the new plan.
  {
    Store s = Store::open(test_config(), p.manifest, real_factory(be, p));
    const EmbeddingTable v2 = make_values(3);
    TrickleRepublish session =
        s.begin_trickle_republish(0, v2, shuffled_plan(), RepublishConfig{});
    while (!session.done()) session.pump();
    EXPECT_TRUE(session.mapping_swapped());
  }
  expect_recovered(be, p, 'B', 1);
  cleanup(p);
}

TEST_P(CrashRecoveryTest, ManifestFlipBoundariesSplitOldFromNew) {
  const Backend be = GetParam();
  const Paths p = test_paths(be == Backend::kFile ? "flip_file" : "flip_async");

  // Die with the new manifest fully written to the tmp file but the rename
  // not yet issued: the durable pointer still names the old plan.
  CrashRun run = run_trickle_with_faults(be, p, 0, HookCrash::kBeforeFlip);
  EXPECT_TRUE(run.crashed);
  expect_recovered(be, p, 'A', 0);

  // Die immediately after the rename: the flip is the commit point, so the
  // new plan is already durable.
  run = run_trickle_with_faults(be, p, 0, HookCrash::kAfterFlip);
  EXPECT_TRUE(run.crashed);
  expect_recovered(be, p, 'B', 1);
  cleanup(p);
}

INSTANTIATE_TEST_SUITE_P(Backends, CrashRecoveryTest,
                         ::testing::Values(Backend::kFile,
                                           Backend::kAsyncFile),
                         [](const auto& info) {
                           return info.param == Backend::kFile ? "File"
                                                               : "AsyncFile";
                         });

TEST(CrashRecovery, MidPublishCrashRecoversToFewerTables) {
  const Paths p = test_paths("publish");
  cleanup(p);
  auto fault = std::make_shared<FaultPlan>();
  const EmbeddingTable v1 = make_values(1);
  const EmbeddingTable v_new = make_values(4);

  Store store = StoreBuilder(test_config())
                    .storage(faulty_factory(Backend::kFile, p, fault))
                    .manifest(p.manifest)
                    .add_table(v1, identity_plan())
                    .build();
  store.reserve_blocks(2 * kTableBlocks);
  fault->armed = true;
  fault->crash_at = 2;  // second write wave of the new table's publish
  EXPECT_THROW(store.add_table(v_new, BlockLayout::identity(kVectors, kVpb),
                               test_policy()),
               CrashInjected);

  // The new table never reached a committed manifest: recovery simply does
  // not know it, and the original table's bytes are intact.
  Store s = Store::open(test_config(), p.manifest,
                        real_factory(Backend::kFile, p));
  ASSERT_EQ(s.num_tables(), 1u);
  EXPECT_EQ(classify(s, 0, v1, v_new), 'A');
  cleanup(p);
}

TEST(WarmRestart, OpenOrBuildIgnoresQueuedPlansWhenManifestIsValid) {
  const Paths p = test_paths("warm");
  cleanup(p);
  const EmbeddingTable va = make_values(1);
  const EmbeddingTable vb = make_values(2);
  const EmbeddingTable fresh = make_values(9);

  {
    Store s = StoreBuilder(test_config())
                  .file_storage(p.block)
                  .manifest(p.manifest)
                  .add_table(va, identity_plan())
                  .add_table(vb, identity_plan())
                  .build();
    EXPECT_GT(s.store_metrics().manifest_commits, 0u);
  }
  {
    // Warm restart: the queued (different!) values must be ignored — the
    // committed store comes back without retraining and without a single
    // block write.
    Store s = StoreBuilder(test_config())
                  .file_storage(p.block)
                  .manifest(p.manifest)
                  .add_table(fresh, identity_plan())
                  .add_table(fresh, identity_plan())
                  .open_or_build();
    ASSERT_EQ(s.num_tables(), kTables);
    EXPECT_EQ(classify(s, 0, va, fresh), 'A');
    EXPECT_EQ(classify(s, 1, vb, fresh), 'A');
    EXPECT_EQ(s.store_metrics().write_blocks, 0u);
    EXPECT_EQ(s.store_metrics().manifest_commits, 0u);
    EXPECT_EQ(s.endurance().total_bytes_written(), 0u);
  }
  // No manifest -> open_or_build falls back to a cold build of the queued
  // plans (and the factory truncates: nothing recoverable remains).
  std::remove(p.manifest.c_str());
  {
    Store s = StoreBuilder(test_config())
                  .file_storage(p.block)
                  .manifest(p.manifest)
                  .add_table(fresh, identity_plan())
                  .open_or_build();
    ASSERT_EQ(s.num_tables(), 1u);
    EXPECT_EQ(classify(s, 0, fresh, va), 'A');
    EXPECT_GT(s.store_metrics().write_blocks, 0u);
  }
  cleanup(p);
}

TEST(WarmRestart, OpenRejectsGeometryMismatchAndCorruption) {
  const Paths p = test_paths("reject");
  cleanup(p);
  const EmbeddingTable va = make_values(1);
  {
    Store s = StoreBuilder(test_config())
                  .file_storage(p.block)
                  .manifest(p.manifest)
                  .add_table(va, identity_plan())
                  .build();
  }
  StoreConfig bad = test_config();
  bad.vector_bytes = 256;
  EXPECT_THROW(Store::open(bad, p.manifest), std::runtime_error);

  // A flipped byte anywhere fails the checksum: open refuses to serve it.
  {
    FILE* f = std::fopen(p.manifest.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }
  EXPECT_THROW(Store::open(test_config(), p.manifest), std::runtime_error);
  cleanup(p);
}

// ---- Satellite storage-bugfix regressions ----------------------------------

TEST(StorageGeometry, FileSizeOverflowIsRejected) {
  // uint64 wrap.
  EXPECT_THROW(detail::checked_file_bytes(std::uint64_t{1} << 62, 4096),
               std::runtime_error);
  // Fits uint64 but exceeds off_t.
  EXPECT_THROW(detail::checked_file_bytes((std::uint64_t{1} << 51) + 1, 4096),
               std::runtime_error);
  EXPECT_EQ(detail::checked_file_bytes(4, 4096), 16384u);
  // The constructor path checks BEFORE touching the filesystem.
  EXPECT_THROW(FileBlockStorage("/tmp/bandana_never_created.bin",
                                std::uint64_t{1} << 62, 4096),
               std::runtime_error);
}

TEST(StorageGeometry, ShortFileReadReportsEofNotGarbage) {
  const std::string path = "/tmp/bandana_crash_eof_" +
                           std::to_string(::getpid()) + ".bin";
  FileBlockStorage s(path, 4, 256);
  std::vector<std::byte> buf(256, std::byte{0xAB});
  s.write_block(3, buf);
  // Shrink the file under the storage's feet: a read past the new EOF must
  // say so (pread returning 0 used to spin or surface a bogus errno).
  ASSERT_EQ(::truncate(path.c_str(), 256), 0);
  try {
    s.read_block(3, buf);
    FAIL() << "read past EOF did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hit EOF"), std::string::npos) << what;
    EXPECT_NE(what.find("block 3"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ManifestRouting, FactoryPreservesOnlyWithAValidManifest) {
  const Paths p = test_paths("routing");
  cleanup(p);
  const std::vector<std::byte> pattern(512, std::byte{0x5C});
  std::vector<std::byte> got(512);

  // preserve_for_first_open: no manifest path / no manifest file => fresh.
  EXPECT_FALSE(detail::preserve_for_first_open(p.block, "", 2, 512));
  EXPECT_FALSE(detail::preserve_for_first_open(p.block, p.manifest, 2, 512));

  // Without a valid manifest the first invocation truncates: earlier bytes
  // (from a store nothing can recover) are consciously discarded.
  {
    auto s = file_storage_factory(p.block, p.manifest)(2, 512);
    s->write_block(0, pattern);
    s->sync();
  }
  {
    auto s = file_storage_factory(p.block, p.manifest)(2, 512);
    s->read_block(0, got);
    EXPECT_EQ(std::count(got.begin(), got.end(), std::byte{0}), 512);
    s->write_block(0, pattern);
    s->sync();
  }

  // Drop a checksum-valid manifest next to the file: now the factory MUST
  // preserve — a recoverable store must survive being reopened.
  Manifest m;
  m.block_bytes = 512;
  m.vector_bytes = 128;
  m.storage_blocks = 2;
  m.block_file = p.block;
  write_manifest(p.manifest, m);
  EXPECT_TRUE(detail::preserve_for_first_open(p.block, p.manifest, 2, 512));
  {
    auto s = file_storage_factory(p.block, p.manifest)(2, 512);
    s->read_block(0, got);
    EXPECT_EQ(std::memcmp(got.data(), pattern.data(), 512), 0);
  }

  // Valid manifest but the block file is too small for the requested
  // geometry: refuse loudly instead of serving a short file.
  EXPECT_THROW(file_storage_factory(p.block, p.manifest)(1024, 512),
               std::runtime_error);
  // Valid manifest but the block file is gone entirely: same.
  std::remove(p.block.c_str());
  EXPECT_THROW(file_storage_factory(p.block, p.manifest)(2, 512),
               std::runtime_error);
  cleanup(p);
}

}  // namespace
}  // namespace bandana
