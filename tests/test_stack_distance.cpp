#include "trace/stack_distance.h"

#include <gtest/gtest.h>

#include <list>

#include "common/rng.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TEST(StackDistance, HandComputedSequence) {
  StackDistanceAnalyzer a(10);
  EXPECT_EQ(a.access(1), 0u);  // compulsory
  EXPECT_EQ(a.access(2), 0u);
  EXPECT_EQ(a.access(1), 2u);  // one distinct vector (2) in between + itself
  EXPECT_EQ(a.access(1), 1u);  // immediate re-access: top of stack
  EXPECT_EQ(a.access(3), 0u);
  EXPECT_EQ(a.access(2), 3u);  // stack: 3,1,2
  EXPECT_EQ(a.compulsory_misses(), 3u);
  EXPECT_EQ(a.total_accesses(), 6u);
}

/// Reference: simulate an actual infinite LRU stack.
std::uint64_t reference_distance(std::list<VectorId>& stack, VectorId v) {
  std::uint64_t pos = 0;
  for (auto it = stack.begin(); it != stack.end(); ++it) {
    ++pos;
    if (*it == v) {
      stack.erase(it);
      stack.push_front(v);
      return pos;
    }
  }
  stack.push_front(v);
  return 0;
}

TEST(StackDistance, MatchesReferenceLruStack) {
  const std::uint32_t n = 100;
  StackDistanceAnalyzer a(n, 0 /* force timestamp compaction paths */);
  std::list<VectorId> stack;
  Rng rng(33);
  for (int i = 0; i < 20000; ++i) {
    // Skewed accesses so re-references are common.
    const VectorId v = static_cast<VectorId>(rng.next_below(rng.next_below(n) + 1));
    ASSERT_EQ(a.access(v), reference_distance(stack, v)) << "step " << i;
  }
}

TEST(HitRateCurve, MatchesLruCacheHits) {
  // hits(C) from the curve == hits of an LRU cache of capacity C.
  const std::uint32_t n = 50;
  Rng rng(44);
  std::vector<VectorId> accesses;
  for (int i = 0; i < 5000; ++i) {
    accesses.push_back(static_cast<VectorId>(rng.next_below(n)));
  }
  StackDistanceAnalyzer a(n);
  for (VectorId v : accesses) a.access(v);
  const HitRateCurve curve = a.curve();

  for (std::uint64_t cap : {1ULL, 5ULL, 20ULL, 50ULL}) {
    std::list<VectorId> stack;  // LRU of capacity cap
    std::uint64_t hits = 0;
    for (VectorId v : accesses) {
      const std::uint64_t d = reference_distance(stack, v);
      if (d != 0 && d <= cap) ++hits;
      if (stack.size() > cap) stack.pop_back();
    }
    EXPECT_EQ(curve.hits(cap), hits) << "capacity " << cap;
  }
}

TEST(HitRateCurve, MonotoneAndBounded) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 5000;
  cfg.num_profiles = 100;
  TraceGenerator g(cfg, 5);
  const Trace t = g.generate(2000);
  const HitRateCurve curve = compute_hit_rate_curve(t, cfg.num_vectors);
  double prev = -1.0;
  for (std::uint64_t c = 0; c <= cfg.num_vectors; c += 250) {
    const double hr = curve.hit_rate(c);
    EXPECT_GE(hr, prev);
    EXPECT_LE(hr, 1.0);
    prev = hr;
  }
  // At full capacity, only compulsory misses remain.
  EXPECT_NEAR(curve.hit_rate(cfg.num_vectors),
              1.0 - static_cast<double>(curve.compulsory_misses()) /
                        curve.total_accesses(),
              1e-9);
}

TEST(HitRateCurve, ZeroCapacityZeroHits) {
  StackDistanceAnalyzer a(4);
  a.access(1);
  a.access(1);
  EXPECT_EQ(a.curve().hits(0), 0u);
}

TEST(HitRateCurve, MarginalHits) {
  StackDistanceAnalyzer a(8);
  for (int round = 0; round < 10; ++round) {
    for (VectorId v = 0; v < 4; ++v) a.access(v);
  }
  const HitRateCurve c = a.curve();
  EXPECT_EQ(c.marginal_hits(0, 8), c.hits(8));
  EXPECT_EQ(c.hits(4), c.hits(3) + c.marginal_hits(3, 1));
}

TEST(HitRateCurve, ScaledCurveApproximatesFull) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 20'000;
  cfg.popularity_skew = 0.9;
  TraceGenerator g(cfg, 6);
  const Trace t = g.generate(20'000);
  const HitRateCurve exact = compute_hit_rate_curve(t, cfg.num_vectors);
  // Scaled query at matching coordinates: a curve scaled by r reports
  // approximately the full curve's hit rate at capacity C.
  const HitRateCurve approx = exact.scaled(1.0);  // identity scaling
  EXPECT_NEAR(approx.hit_rate(4000), exact.hit_rate(4000), 1e-12);
}

}  // namespace
}  // namespace bandana
