#include "trace/trace_generator.h"

#include <gtest/gtest.h>

#include <map>

#include "trace/characterizer.h"
#include "trace/paper_workload.h"

namespace bandana {
namespace {

TableWorkloadConfig small_config() {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 10'000;
  cfg.mean_lookups_per_query = 12.0;
  cfg.new_vector_prob = 0.1;
  cfg.num_profiles = 200;
  cfg.profile_size = 64;
  return cfg;
}

TEST(Poisson, MeanApproximatelyCorrect) {
  Rng rng(1);
  for (double mean : {0.5, 3.0, 20.0, 90.0}) {
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) sum += poisson_sample(rng, mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(TraceGenerator, DeterministicPerSeed) {
  TraceGenerator a(small_config(), 42), b(small_config(), 42);
  EXPECT_EQ(a.generate(500), b.generate(500));
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  TraceGenerator a(small_config(), 1), b(small_config(), 2);
  EXPECT_NE(a.generate(100), b.generate(100));
}

TEST(TraceGenerator, IdsInRange) {
  TraceGenerator g(small_config(), 3);
  const Trace t = g.generate(2000);
  for (VectorId v : t.all_lookups()) EXPECT_LT(v, 10'000u);
}

TEST(TraceGenerator, MeanLookupsMatchesConfig) {
  TraceGenerator g(small_config(), 4);
  const Trace t = g.generate(5000);
  const double avg =
      static_cast<double>(t.total_lookups()) / t.num_queries();
  EXPECT_NEAR(avg, 12.0, 0.5);
}

TEST(TraceGenerator, CompulsoryRateTracksNewVectorProb) {
  auto cfg = small_config();
  cfg.new_vector_prob = 0.3;
  TraceGenerator g(cfg, 5);
  const Trace t = g.generate(3000);
  const auto c = characterize(t, cfg.num_vectors);
  // Fresh draws dominate uniqueness; profile/popular draws add a little.
  EXPECT_GT(c.compulsory_miss_rate(), 0.2);
  EXPECT_LT(c.compulsory_miss_rate(), 0.5);
}

TEST(TraceGenerator, LowNewVectorProbIsCacheable) {
  auto cfg = small_config();
  cfg.new_vector_prob = 0.02;
  TraceGenerator g(cfg, 6);
  const Trace t = g.generate(5000);
  const auto c = characterize(t, cfg.num_vectors);
  EXPECT_LT(c.compulsory_miss_rate(), 0.16);
}

TEST(TraceGenerator, StreamContinuesAcrossCalls) {
  // Two successive generate() calls must not repeat the fresh stack:
  // uniqueness over the concatenation should not double-count.
  TraceGenerator g(small_config(), 7);
  const Trace t1 = g.generate(1000);
  const Trace t2 = g.generate(1000);
  std::vector<bool> seen(10'000, false);
  std::uint64_t unique = 0;
  for (const Trace* t : {&t1, &t2}) {
    for (VectorId v : t->all_lookups()) {
      if (!seen[v]) {
        seen[v] = true;
        ++unique;
      }
    }
  }
  const auto c1 = characterize(t1, 10'000);
  // Unique vectors grow sub-linearly (shared profiles), not 2x.
  EXPECT_LT(unique, 2 * c1.unique_vectors);
}

TEST(TraceGenerator, EmbeddingsClusterByCommunity) {
  auto cfg = small_config();
  cfg.embedding_noise = 0.05;
  TraceGenerator g(cfg, 8);
  const EmbeddingTable e = g.make_embeddings();
  ASSERT_EQ(e.num_vectors(), cfg.num_vectors);
  // Vectors in the same community must be far closer than across
  // communities on average.
  Rng rng(9);
  double same = 0, cross = 0;
  int ns = 0, nc = 0;
  for (int i = 0; i < 3000; ++i) {
    const VectorId a = static_cast<VectorId>(rng.next_below(cfg.num_vectors));
    const VectorId b = static_cast<VectorId>(rng.next_below(cfg.num_vectors));
    if (a == b) continue;
    double d = 0;
    for (std::uint16_t k = 0; k < cfg.dim; ++k) {
      const double diff = e.vector(a)[k] - e.vector(b)[k];
      d += diff * diff;
    }
    if (g.community_of(a) == g.community_of(b)) {
      same += d;
      ++ns;
    } else {
      cross += d;
      ++nc;
    }
  }
  ASSERT_GT(ns, 0);
  ASSERT_GT(nc, 0);
  EXPECT_LT(same / ns, 0.2 * (cross / nc));
}

TEST(TraceGenerator, EmbeddingsDeterministic) {
  TraceGenerator g1(small_config(), 10), g2(small_config(), 10);
  g2.generate(100);  // consuming trace RNG must not perturb values
  const EmbeddingTable a = g1.make_embeddings();
  const EmbeddingTable b = g2.make_embeddings();
  EXPECT_EQ(a.raw(), b.raw());
}

TEST(PaperWorkload, EightTablesWithPaperShape) {
  const auto tables = paper_tables();
  ASSERT_EQ(tables.size(), 8u);
  // Table 2 has the highest lookup volume, table 8 the worst reuse.
  EXPECT_GT(tables[1].mean_lookups_per_query, tables[0].mean_lookups_per_query);
  EXPECT_GT(tables[7].new_vector_prob, 0.5);
  EXPECT_LT(tables[1].new_vector_prob, 0.05);
  for (const auto& t : tables) {
    EXPECT_GT(t.num_vectors, 0u);
    EXPECT_EQ(t.vector_bytes(), 128u);
  }
}

TEST(PaperWorkload, ScaleOption) {
  PaperWorkloadOptions opts;
  opts.scale = 0.1;
  const auto tables = paper_tables(opts);
  EXPECT_EQ(tables[0].num_vectors, 10'000u);
  opts.dim = 16;
  EXPECT_EQ(paper_tables(opts)[0].vector_bytes(), 64u);
}

TEST(PaperWorkload, QueriesForLookups) {
  const auto tables = paper_tables();
  double per_query = 0;
  for (const auto& t : tables) per_query += t.mean_lookups_per_query;
  const std::size_t q = queries_for_lookups(tables, 1'000'000);
  EXPECT_NEAR(static_cast<double>(q) * per_query, 1'000'000.0, per_query + 1);
}

}  // namespace
}  // namespace bandana
