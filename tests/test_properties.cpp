// Parameterized property tests: invariants that must hold for every policy,
// capacity, block size, and workload mix.
#include <gtest/gtest.h>

#include <tuple>

#include "cache/cache_sim.h"
#include "partition/fanout.h"
#include "partition/shp.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

struct PropertyCase {
  PrefetchPolicy policy;
  std::uint64_t capacity;
  std::uint32_t vectors_per_block;
};

class CacheSimProperties
    : public ::testing::TestWithParam<
          std::tuple<PrefetchPolicy, std::uint64_t, std::uint32_t>> {
 protected:
  static constexpr std::uint32_t kVectors = 8000;

  static const Trace& trace() {
    static const Trace t = [] {
      TableWorkloadConfig cfg;
      cfg.num_vectors = kVectors;
      cfg.mean_lookups_per_query = 14;
      cfg.new_vector_prob = 0.08;
      cfg.num_profiles = 160;
      TraceGenerator g(cfg, 71);
      return g.generate(3000);
    }();
    return t;
  }

  static const std::vector<std::uint32_t>& counts() {
    static const std::vector<std::uint32_t> c = [] {
      ShpConfig sc;
      sc.vectors_per_block = 32;
      return run_shp(trace(), kVectors, sc).access_counts;
    }();
    return c;
  }
};

TEST_P(CacheSimProperties, Invariants) {
  const auto [policy, capacity, vpb] = GetParam();
  const auto layout = BlockLayout::random(kVectors, vpb, 5);
  CachePolicyConfig pc;
  pc.policy = policy;
  pc.capacity_vectors = capacity;
  pc.access_threshold = 5;
  pc.insertion_position = 0.5;
  const auto r = simulate_cache(trace(), layout, pc, counts());

  // Conservation invariants.
  EXPECT_EQ(r.lookups, trace().total_lookups());
  EXPECT_LE(r.unique_lookups, r.lookups);
  EXPECT_LE(r.hits, r.unique_lookups);
  // Every miss costs at most one block read; batching can only reduce.
  EXPECT_LE(r.nvm_block_reads, r.unique_lookups - r.hits);
  EXPECT_GT(r.nvm_block_reads, 0u);
  EXPECT_LE(r.prefetch_hits, r.prefetch_inserted);
  if (policy == PrefetchPolicy::kNone) {
    EXPECT_EQ(r.prefetch_inserted, 0u);
  }
  // Effective bandwidth fraction cannot exceed 1 nor vpb * baseline.
  const double ebw = r.effective_bandwidth(128, 128 * vpb);
  EXPECT_GE(ebw, 0.0);
  EXPECT_LE(ebw, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheSimProperties,
    ::testing::Combine(
        ::testing::Values(PrefetchPolicy::kNone, PrefetchPolicy::kAll,
                          PrefetchPolicy::kPosition, PrefetchPolicy::kShadow,
                          PrefetchPolicy::kShadowPosition,
                          PrefetchPolicy::kThreshold),
        ::testing::Values(64, 400, 4000),
        ::testing::Values(8, 32)));

class UnlimitedDominates
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnlimitedDominates, LargerCacheNeverReadsMore) {
  // For the no-prefetch policy, LRU has no Belady anomaly: more capacity
  // means fewer block reads.
  TableWorkloadConfig cfg;
  cfg.num_vectors = 5000;
  TraceGenerator g(cfg, GetParam());
  const Trace t = g.generate(2500);
  const auto layout = BlockLayout::identity(cfg.num_vectors, 32);
  std::uint64_t prev = UINT64_MAX;
  for (std::uint64_t cap : {100ULL, 500ULL, 2500ULL, 5000ULL}) {
    CachePolicyConfig pc;
    pc.capacity_vectors = cap;
    pc.policy = PrefetchPolicy::kNone;
    const auto reads = simulate_cache(t, layout, pc).nvm_block_reads;
    EXPECT_LE(reads, prev) << "capacity " << cap;
    prev = reads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnlimitedDominates,
                         ::testing::Values(1, 2, 3, 4, 5));

class ShpProperties : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShpProperties, PermutationAndFanoutBoundsAtAnyBlockSize) {
  const std::uint32_t vpb = GetParam();
  TableWorkloadConfig cfg;
  cfg.num_vectors = 3000;
  cfg.mean_lookups_per_query = 12;
  TraceGenerator g(cfg, 101);
  const Trace t = g.generate(1500);
  ShpConfig sc;
  sc.vectors_per_block = vpb;
  const auto r = run_shp(t, cfg.num_vectors, sc);

  std::vector<bool> seen(cfg.num_vectors, false);
  for (VectorId v : r.order) {
    ASSERT_LT(v, cfg.num_vectors);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
  const auto layout = BlockLayout::from_order(r.order, vpb);
  const auto f = compute_fanout(t, layout);
  // Fanout is at least ceil(unique/vpb) per query on average and at most
  // the unique lookup count.
  EXPECT_GE(f.avg_fanout, f.avg_unique_lookups / vpb - 1e-9);
  EXPECT_LE(f.avg_fanout, f.avg_unique_lookups + 1e-9);
  // Refinement never loses to the random initial order.
  EXPECT_LE(r.final_avg_fanout, r.initial_avg_fanout * 1.01);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, ShpProperties,
                         ::testing::Values(4, 8, 16, 32, 64));

}  // namespace
}  // namespace bandana
