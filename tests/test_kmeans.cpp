#include "partition/kmeans.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace bandana {
namespace {

/// Builds a table with `k` well-separated Gaussian blobs.
EmbeddingTable blobs(std::uint32_t n, std::uint16_t dim, std::uint32_t k,
                     std::uint64_t seed, std::vector<std::uint32_t>* truth) {
  EmbeddingTable t(n, dim);
  Rng rng(seed);
  std::vector<float> centers(static_cast<std::size_t>(k) * dim);
  for (auto& c : centers) c = static_cast<float>(rng.next_normal() * 20.0);
  truth->resize(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t c = static_cast<std::uint32_t>(rng.next_below(k));
    (*truth)[v] = c;
    for (std::uint16_t d = 0; d < dim; ++d) {
      t.vector(v)[d] = centers[std::size_t{c} * dim + d] +
                       static_cast<float>(rng.next_normal() * 0.1);
    }
  }
  return t;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  std::vector<std::uint32_t> truth;
  const auto table = blobs(2000, 8, 5, 11, &truth);
  KMeansConfig cfg;
  cfg.k = 5;
  cfg.seed = 2;
  const auto r = kmeans(table, cfg);
  ASSERT_EQ(r.k, 5u);
  // All members of a true blob must land in the same k-means cluster.
  std::vector<std::int64_t> blob_to_cluster(5, -1);
  int violations = 0;
  for (std::uint32_t v = 0; v < 2000; ++v) {
    auto& mapped = blob_to_cluster[truth[v]];
    if (mapped < 0) {
      mapped = r.assignment[v];
    } else if (mapped != r.assignment[v]) {
      ++violations;
    }
  }
  EXPECT_EQ(violations, 0);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  std::vector<std::uint32_t> truth;
  const auto table = blobs(3000, 8, 16, 12, &truth);
  KMeansConfig few, many;
  few.k = 2;
  many.k = 32;
  few.seed = many.seed = 3;
  EXPECT_GT(kmeans(table, few).inertia, kmeans(table, many).inertia);
}

TEST(KMeans, DeterministicAndParallelConsistent) {
  std::vector<std::uint32_t> truth;
  const auto table = blobs(1500, 8, 4, 13, &truth);
  KMeansConfig cfg;
  cfg.k = 8;
  cfg.seed = 5;
  const auto seq = kmeans(table, cfg, nullptr);
  ThreadPool pool(4);
  const auto par = kmeans(table, cfg, &pool);
  EXPECT_EQ(seq.assignment, par.assignment);
  EXPECT_EQ(seq.inertia, par.inertia);
}

TEST(KMeans, KLargerThanNClamps) {
  std::vector<std::uint32_t> truth;
  const auto table = blobs(10, 4, 2, 14, &truth);
  KMeansConfig cfg;
  cfg.k = 100;
  const auto r = kmeans(table, cfg);
  EXPECT_EQ(r.k, 10u);
}

TEST(ClusterMajorOrder, IsPermutationGroupedByCluster) {
  const std::vector<std::uint32_t> assignment = {2, 0, 1, 0, 2, 1};
  const auto order = cluster_major_order(assignment, 3);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 1u);  // cluster 0: ids 1, 3
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);  // cluster 1: ids 2, 5
  EXPECT_EQ(order[3], 5u);
  EXPECT_EQ(order[4], 0u);  // cluster 2: ids 0, 4
  EXPECT_EQ(order[5], 4u);
}

TEST(RecursiveKMeans, OrderIsPermutation) {
  std::vector<std::uint32_t> truth;
  const auto table = blobs(4000, 8, 10, 15, &truth);
  RecursiveKMeansConfig cfg;
  cfg.top_clusters = 8;
  cfg.total_leaves = 64;
  const auto r = recursive_kmeans(table, cfg);
  std::set<VectorId> seen(r.order.begin(), r.order.end());
  EXPECT_EQ(seen.size(), 4000u);
  EXPECT_GT(r.leaves, 8u);
  EXPECT_LE(r.leaves, 80u);
}

TEST(RecursiveKMeans, GroupsBlobsContiguously) {
  std::vector<std::uint32_t> truth;
  const auto table = blobs(2000, 8, 4, 16, &truth);
  RecursiveKMeansConfig cfg;
  cfg.top_clusters = 4;
  cfg.total_leaves = 16;
  const auto r = recursive_kmeans(table, cfg);
  // Count truth-blob transitions along the order; contiguous grouping has
  // ~#blobs transitions, a random order ~n * (1 - 1/k).
  int transitions = 0;
  for (std::size_t i = 1; i < r.order.size(); ++i) {
    transitions += truth[r.order[i]] != truth[r.order[i - 1]];
  }
  EXPECT_LT(transitions, 50);
}

}  // namespace
}  // namespace bandana
