#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace bandana {
namespace {

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) touched[i].fetch_add(1);
  });
  for (auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

TEST(ThreadPool, SubmitAndWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
      std::size_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, ChunkBoundariesDeterministic) {
  // Static chunking: recording chunk boundaries twice gives the same set.
  auto boundaries = [](ThreadPool& pool) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> out;
    pool.parallel_for(101, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      out.emplace_back(b, e);
    });
    std::sort(out.begin(), out.end());
    return out;
  };
  ThreadPool pool(4);
  EXPECT_EQ(boundaries(pool), boundaries(pool));
}

}  // namespace
}  // namespace bandana
