#include "trace/characterizer.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

Trace make_trace() {
  Trace t;
  const VectorId q0[] = {0, 1, 2};
  const VectorId q1[] = {1, 1, 3};
  const VectorId q2[] = {2};
  t.add_query(q0);
  t.add_query(q1);
  t.add_query(q2);
  return t;
}

TEST(Characterizer, CountsAndRates) {
  const auto c = characterize(make_trace(), 10);
  EXPECT_EQ(c.num_queries, 3u);
  EXPECT_EQ(c.total_lookups, 7u);
  EXPECT_EQ(c.unique_vectors, 4u);
  EXPECT_NEAR(c.avg_lookups_per_query(), 7.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.compulsory_miss_rate(), 4.0 / 7.0, 1e-12);
}

TEST(Characterizer, EmptyTrace) {
  const auto c = characterize(Trace{}, 5);
  EXPECT_EQ(c.total_lookups, 0u);
  EXPECT_EQ(c.avg_lookups_per_query(), 0.0);
  EXPECT_EQ(c.compulsory_miss_rate(), 0.0);
}

TEST(AccessCounts, PerVector) {
  const auto counts = access_counts(make_trace(), 10);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 3u);  // duplicates within a query count individually
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 0u);
}

TEST(AccessHistogram, SkipsZeroCountVectors) {
  const auto counts = access_counts(make_trace(), 10);
  const auto h = access_histogram(counts, 10, 5);
  EXPECT_EQ(h.total(), 4u);  // only 4 vectors were ever accessed
}

}  // namespace
}  // namespace bandana
