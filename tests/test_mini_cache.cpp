#include "cache/mini_cache.h"

#include <gtest/gtest.h>

#include "partition/shp.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TEST(SampleTrace, RateZeroPointFiveKeepsAboutHalfTheVectors) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 10'000;
  TraceGenerator g(cfg, 1);
  const Trace t = g.generate(2000);
  const Trace s = sample_trace(t, 0.5, 7);
  const double ratio = static_cast<double>(s.total_lookups()) /
                       static_cast<double>(t.total_lookups());
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST(SampleTrace, SpatialSamplingIsConsistentPerVector) {
  // A vector is either always kept or always dropped.
  Trace t;
  for (int rep = 0; rep < 10; ++rep) {
    const VectorId q[] = {1, 2, 3, 4, 5, 6, 7, 8};
    t.add_query(q);
  }
  const Trace s = sample_trace(t, 0.5, 3);
  if (s.num_queries() > 0) {
    for (std::size_t q = 1; q < s.num_queries(); ++q) {
      EXPECT_TRUE(std::equal(s.query(q).begin(), s.query(q).end(),
                             s.query(0).begin(), s.query(0).end()));
    }
  }
}

TEST(SampleTrace, RateOneKeepsEverything) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 1000;
  TraceGenerator g(cfg, 2);
  const Trace t = g.generate(100);
  EXPECT_EQ(sample_trace(t, 1.0, 5).total_lookups(), t.total_lookups());
}

TEST(InSample, DeterministicAndSaltSensitive) {
  int both = 0, differ = 0;
  for (VectorId v = 0; v < 1000; ++v) {
    EXPECT_EQ(in_sample(v, 0.3, 1), in_sample(v, 0.3, 1));
    if (in_sample(v, 0.3, 1) != in_sample(v, 0.3, 2)) ++differ;
    both += in_sample(v, 0.3, 1);
  }
  EXPECT_NEAR(both, 300, 60);
  EXPECT_GT(differ, 100);  // different salts sample differently
}

class MiniCacheTuning : public ::testing::Test {
 protected:
  void SetUp() override {
    TableWorkloadConfig cfg;
    cfg.num_vectors = 20'000;
    cfg.mean_lookups_per_query = 20;
    cfg.new_vector_prob = 0.03;
    cfg.num_profiles = 400;
    cfg.profile_frac = 0.8;
    TraceGenerator g(cfg, 3);
    train_ = g.generate(10'000);
    eval_ = g.generate(5'000);
    ShpConfig sc;
    sc.vectors_per_block = 32;
    shp_ = run_shp(train_, cfg.num_vectors, sc);
    layout_ = std::make_unique<BlockLayout>(
        BlockLayout::from_order(shp_.order, 32));
  }

  Trace train_, eval_;
  ShpResult shp_;
  std::unique_ptr<BlockLayout> layout_;
};

TEST_F(MiniCacheTuning, SampledChoiceCloseToOracle) {
  const std::uint64_t capacity = 2000;
  MiniCacheTunerConfig full;
  full.sampling_rate = 1.0;
  const auto oracle =
      tune_threshold(eval_, *layout_, shp_.access_counts, capacity, full);

  MiniCacheTunerConfig mini;
  mini.sampling_rate = 0.05;
  const auto choice =
      tune_threshold(eval_, *layout_, shp_.access_counts, capacity, mini);

  // Apply both thresholds at full size; the mini choice must be within 15%
  // of the oracle's block reads.
  auto reads_at = [&](std::uint32_t t) {
    CachePolicyConfig pc;
    pc.capacity_vectors = capacity;
    pc.policy = PrefetchPolicy::kThreshold;
    pc.access_threshold = t;
    return simulate_cache(eval_, *layout_, pc, shp_.access_counts)
        .nvm_block_reads;
  };
  const auto oracle_reads = reads_at(oracle.threshold);
  const auto mini_reads = reads_at(choice.threshold);
  EXPECT_LE(static_cast<double>(mini_reads),
            1.15 * static_cast<double>(oracle_reads));
}

TEST_F(MiniCacheTuning, MiniSimulationIsActuallySmall) {
  MiniCacheTunerConfig mini;
  mini.sampling_rate = 0.01;
  const auto choice =
      tune_threshold(eval_, *layout_, shp_.access_counts, 2000, mini);
  // The winning mini simulation replayed ~1% of the lookups.
  EXPECT_LT(choice.mini_result.lookups, eval_.total_lookups() / 20);
}

TEST(ApproximateHrc, SampledCurveNearExact) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 20'000;
  cfg.popularity_skew = 0.9;
  cfg.new_vector_prob = 0.05;
  TraceGenerator g(cfg, 4);
  const Trace t = g.generate(20'000);
  const auto exact = approximate_hit_rate_curve(t, cfg.num_vectors, 1.0);
  const auto approx = approximate_hit_rate_curve(t, cfg.num_vectors, 0.1);
  // SHARDS scaling is unbiased under well-mixed reuse; our bursty profile
  // workload correlates short reuse distances, so small-capacity estimates
  // carry a visible (but bounded) bias. The allocator only needs relative
  // ranking across tables.
  for (std::uint64_t c : {500ULL, 2000ULL, 8000ULL}) {
    EXPECT_NEAR(approx.hit_rate(c), exact.hit_rate(c), 0.12)
        << "capacity " << c;
  }
  // And the curves must agree on ordering of capacities.
  EXPECT_LT(approx.hit_rate(500), approx.hit_rate(8000));
}

}  // namespace
}  // namespace bandana
