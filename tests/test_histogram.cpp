#include "common/histogram.h"

#include <gtest/gtest.h>

namespace bandana {
namespace {

TEST(LinearHistogram, BucketsAndOverflow) {
  LinearHistogram h(100, 10);  // width 10
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(99);
  h.add(100);   // overflow
  h.add(5000);  // overflow
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 1u);
  EXPECT_EQ(h.bucket_value(9), 1u);
  EXPECT_EQ(h.bucket_value(10), 2u);  // overflow bucket
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket_range(1).first, 10u);
  EXPECT_EQ(h.bucket_range(1).second, 20u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h(10, 2);
  h.add(3, 7);
  EXPECT_EQ(h.bucket_value(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(Log2Histogram, PowerOfTwoBuckets) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  h.add(1024);
  EXPECT_EQ(h.bucket_value(0), 2u);  // {0,1}
  EXPECT_EQ(h.bucket_value(1), 2u);  // [2,4)
  EXPECT_EQ(h.bucket_value(2), 1u);  // [4,8)
  EXPECT_EQ(h.bucket_value(9), 1u);  // [512,1024)
  EXPECT_EQ(h.bucket_value(10), 1u); // [1024,2048)
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucket_range(3).first, 8u);
  EXPECT_EQ(h.bucket_range(3).second, 16u);
}

}  // namespace
}  // namespace bandana
