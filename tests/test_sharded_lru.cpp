#include "cache/sharded_lru.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "cache/lru_cache.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/store.h"
#include "partition/layout.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

// ---- Shard-equivalence: one shard must BE the seed InsertionLru. ----

TEST(ShardedLru, SingleShardTraceIsByteIdenticalToSeedLru) {
  const std::uint32_t universe = 512;
  const std::uint64_t capacity = 64;
  const std::vector<double> points = {0.0, 0.5};
  InsertionLru seed(universe, capacity, points);
  ShardedInsertionLru sharded(universe, capacity, points);
  ASSERT_EQ(sharded.num_shards(), 1u);
  ASSERT_EQ(sharded.capacity(), capacity);

  Rng rng(7);
  ZipfSampler zipf(universe, 0.8);
  for (int op = 0; op < 20'000; ++op) {
    const auto v = static_cast<VectorId>(zipf(rng));
    if (rng.next_bernoulli(0.05)) {
      ASSERT_EQ(seed.erase(v), sharded.erase(v)) << "op " << op;
      continue;
    }
    const bool hit = seed.access(v);
    ASSERT_EQ(hit, sharded.access(v)) << "op " << op;
    if (!hit) {
      const std::size_t point = rng.next_bernoulli(0.5) ? 1 : 0;
      // Same eviction victim on every insert == same eviction order.
      ASSERT_EQ(seed.insert(v, point), sharded.insert(v, point)) << "op " << op;
    }
    if (op % 997 == 0) {
      ASSERT_EQ(seed.contents(), sharded.contents()) << "op " << op;
    }
  }
  EXPECT_EQ(seed.size(), sharded.size());
  EXPECT_EQ(seed.contents(), sharded.contents());
}

TEST(ShardedLru, RejectsBadConfig) {
  EXPECT_THROW(ShardedInsertionLru(16, 0), std::invalid_argument);
  EXPECT_THROW(ShardedInsertionLru(16, 4, {0.0}, {}, 0),
               std::invalid_argument);
  // >1 shard needs an assignment covering the universe.
  EXPECT_THROW(ShardedInsertionLru(16, 4, {0.0}, {}, 2),
               std::invalid_argument);
  EXPECT_THROW(ShardedInsertionLru(16, 4, {0.0}, {0, 1}, 2),
               std::invalid_argument);
  // Assignment referencing a shard out of range.
  std::vector<std::uint32_t> bad(16, 0);
  bad[3] = 5;
  EXPECT_THROW(ShardedInsertionLru(16, 4, {0.0}, bad, 2),
               std::invalid_argument);
}

TEST(ShardedLru, CapacitySplitsProportionallyAcrossShards) {
  // Shard 0 holds 3/4 of the universe, shard 1 the remaining 1/4.
  const std::uint32_t universe = 400;
  std::vector<std::uint32_t> shard_of(universe);
  for (VectorId v = 0; v < universe; ++v) shard_of[v] = v < 300 ? 0 : 1;
  ShardedInsertionLru cache(universe, 100, {0.0}, shard_of, 2);
  EXPECT_EQ(cache.capacity(), 100u);
  EXPECT_EQ(cache.shard_capacity(0), 75u);
  EXPECT_EQ(cache.shard_capacity(1), 25u);
}

TEST(ShardedLru, EveryShardGetsAtLeastOneEntry) {
  std::vector<std::uint32_t> shard_of = {0, 1, 2, 3};
  ShardedInsertionLru cache(4, 2, {0.0}, shard_of, 4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GE(cache.shard_capacity(s), 1u);
  }
}

TEST(ShardedLru, ShardsEvictIndependentlyAndStatsRoll) {
  const std::uint32_t universe = 64;
  std::vector<std::uint32_t> shard_of(universe);
  for (VectorId v = 0; v < universe; ++v) shard_of[v] = v % 4;
  ShardedInsertionLru cache(universe, 16, {0.0}, shard_of, 4);

  // Fill shard 0 (ids 0,4,8,...) past its capacity: evictions stay inside
  // shard 0 while the other shards are untouched.
  std::set<VectorId> evicted;
  for (VectorId v = 0; v < universe; v += 4) {
    const VectorId victim = cache.insert(v);
    if (victim != kInvalidVector) evicted.insert(victim);
  }
  EXPECT_EQ(evicted.size(), 16 - cache.shard_capacity(0));
  for (const VectorId v : evicted) EXPECT_EQ(cache.shard_of(v), 0u);
  EXPECT_EQ(cache.shard_contents(1), std::vector<VectorId>{});

  const CacheShardStats s0 = cache.shard_stats(0);
  EXPECT_EQ(s0.inserts, 16u);
  EXPECT_EQ(s0.evictions, evicted.size());
  EXPECT_EQ(s0.size, cache.shard_capacity(0));
  const CacheShardStats total = cache.rollup();
  EXPECT_EQ(total.inserts, 16u);
  EXPECT_EQ(total.size, cache.size());
  EXPECT_EQ(total.capacity, cache.capacity());
}

// ---- Store-level equivalence and tolerance. ----

TableWorkloadConfig workload_config() {
  TableWorkloadConfig cfg;
  cfg.num_vectors = 4096;
  cfg.dim = 32;  // 128 B vectors
  cfg.mean_lookups_per_query = 12;
  cfg.num_profiles = 80;
  return cfg;
}

StoreConfig sharded_config(std::uint32_t shards) {
  StoreConfig cfg;
  cfg.simulate_timing = false;
  cfg.cache_shards = shards;
  return cfg;
}

/// Replays `trace` against the seed semantics (policy kNone: plain LRU,
/// per-query block-read dedup) using the unsharded InsertionLru directly.
struct SeedReplay {
  std::uint64_t hits = 0;
  std::uint64_t block_reads = 0;
  std::vector<VectorId> final_contents;
};

SeedReplay replay_seed(const Trace& trace, const BlockLayout& layout,
                       std::uint64_t capacity) {
  InsertionLru lru(layout.num_vectors(), capacity);
  SeedReplay r;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    std::set<BlockId> blocks_read;
    for (const VectorId v : trace.query(q)) {
      if (lru.access(v)) {
        ++r.hits;
        continue;
      }
      if (blocks_read.insert(layout.block_of(v)).second) ++r.block_reads;
      lru.insert(v, 0);
    }
  }
  r.final_contents = lru.contents();
  return r;
}

TEST(ShardedStore, OneShardReproducesSeedHitMissAndEvictionTrace) {
  TraceGenerator gen(workload_config(), 11);
  const EmbeddingTable values = gen.make_embeddings();
  const Trace trace = gen.generate(800);
  const auto layout = BlockLayout::random(4096, 32, 3);

  Store store(sharded_config(/*shards=*/1));
  TablePolicy policy;
  policy.cache_vectors = 400;
  policy.policy = PrefetchPolicy::kNone;
  const TableId t = store.add_table(values, layout, policy);
  ASSERT_EQ(store.table(t).num_shards(), 1u);

  std::vector<std::byte> out(128 * 256);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    store.lookup_batch(t, trace.query(q), out);
  }

  const SeedReplay want = replay_seed(trace, layout, 400);
  const TableMetrics m = store.table_metrics(t);
  EXPECT_EQ(m.hits, want.hits);
  EXPECT_EQ(m.nvm_block_reads, want.block_reads);
  // Not just the same counts: the exact same residents in the exact same
  // MRU->LRU order, i.e. the eviction order matched step for step.
  EXPECT_EQ(store.table(t).cache_contents(), want.final_contents);
}

TEST(ShardedStore, ShardedHitRateStaysWithinToleranceOfSeed) {
  TraceGenerator gen(workload_config(), 12);
  const EmbeddingTable values = gen.make_embeddings();
  const Trace trace = gen.generate(2000);
  const auto layout = BlockLayout::random(4096, 32, 5);
  TablePolicy policy;
  policy.cache_vectors = 512;
  policy.policy = PrefetchPolicy::kPosition;
  policy.insertion_position = 0.5;

  auto run = [&](std::uint32_t shards) {
    Store store(sharded_config(shards));
    const TableId t = store.add_table(values, layout, policy);
    std::vector<std::byte> out(128 * 256);
    for (std::size_t q = 0; q < trace.num_queries(); ++q) {
      store.lookup_batch(t, trace.query(q), out);
    }
    return store.table_metrics(t);
  };

  const TableMetrics seed = run(1);
  const TableMetrics sharded = run(8);
  EXPECT_EQ(seed.lookups, sharded.lookups);
  EXPECT_NEAR(seed.hit_rate(), sharded.hit_rate(), 0.05);
  // Sharding must not change what a miss costs, only who may run
  // concurrently: reads stay in the same ballpark too.
  EXPECT_NEAR(
      static_cast<double>(sharded.nvm_block_reads),
      static_cast<double>(seed.nvm_block_reads),
      0.15 * static_cast<double>(seed.nvm_block_reads));
}

class ShardedPolicyTest : public ::testing::TestWithParam<PrefetchPolicy> {};

TEST_P(ShardedPolicyTest, ServesCorrectBytesWithManyShards) {
  TraceGenerator gen(workload_config(), 13);
  const EmbeddingTable values = gen.make_embeddings();
  Store store(sharded_config(/*shards=*/8));
  TablePolicy policy;
  policy.cache_vectors = 256;
  policy.policy = GetParam();
  std::vector<std::uint32_t> counts(4096);
  for (VectorId v = 0; v < 4096; ++v) counts[v] = v % 40;
  const TableId t = store.add_table(
      values, BlockLayout::random(4096, 32, 9), policy, counts);
  EXPECT_GT(store.table(t).num_shards(), 1u);

  const Trace trace = gen.generate(400);
  std::vector<std::byte> out(128 * 256);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    const auto ids = trace.query(q);
    store.lookup_batch(t, ids, out);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto want = values.vector_bytes_view(ids[i]);
      ASSERT_EQ(std::memcmp(out.data() + i * 128, want.data(), 128), 0)
          << "policy " << to_string(GetParam()) << " vector " << ids[i];
    }
  }
  // Sharded caches still cache: the workload is skewed enough to hit.
  EXPECT_GT(store.table_metrics(t).hits, 0u);
  // The shard rollup agrees with the table metrics on traffic volume.
  const CacheShardStats stats = store.table(t).cache_stats();
  EXPECT_EQ(stats.hits, store.table_metrics(t).hits);
  EXPECT_LE(stats.size, stats.capacity);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ShardedPolicyTest,
    ::testing::Values(PrefetchPolicy::kNone, PrefetchPolicy::kAll,
                      PrefetchPolicy::kPosition, PrefetchPolicy::kShadow,
                      PrefetchPolicy::kShadowPosition,
                      PrefetchPolicy::kThreshold),
    [](const auto& info) {
      std::string s = to_string(info.param);
      for (char& c : s) {
        if (c == '+') c = '_';
      }
      return s;
    });

}  // namespace
}  // namespace bandana
