// Cross-module integration tests asserting the paper's headline behaviours
// end-to-end on held-out traces.
#include <gtest/gtest.h>

#include "cache/cache_sim.h"
#include "cache/mini_cache.h"
#include "partition/fanout.h"
#include "partition/kmeans.h"
#include "partition/shp.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

struct Workload {
  TableWorkloadConfig cfg;
  Trace train;
  Trace eval;
  std::unique_ptr<TraceGenerator> gen;
};

Workload make_workload(std::uint64_t seed, double semantic_strength = 0.55) {
  Workload w;
  w.cfg.num_vectors = 20'000;
  w.cfg.mean_lookups_per_query = 20;
  w.cfg.popularity_skew = 1.1;
  w.cfg.new_vector_prob = 0.02;
  w.cfg.num_profiles = 600;
  w.cfg.profile_size = 32;
  w.cfg.profile_frac = 0.9;
  w.cfg.profile_skew = 0.7;
  w.cfg.semantic_strength = semantic_strength;
  w.gen = std::make_unique<TraceGenerator>(w.cfg, seed);
  w.train = w.gen->generate(12000);
  w.eval = w.gen->generate(4000);
  return w;
}

std::uint64_t baseline_reads(const Workload& w, std::uint64_t capacity) {
  CachePolicyConfig pc;
  pc.capacity_vectors = capacity;
  pc.policy = PrefetchPolicy::kNone;
  const auto layout = BlockLayout::identity(w.cfg.num_vectors, 32);
  return simulate_cache(w.eval, layout, pc).nvm_block_reads;
}

TEST(Integration, ShpBeatsKMeansBeatsOriginal_UnlimitedCache) {
  // The paper's §4.2 ordering: SHP > K-means > original layout, measured as
  // effective bandwidth increase over the single-vector-read baseline with
  // an unlimited cache (Figs. 6 and 9). Partitioning pays off because a
  // query's co-located misses share one 4 KB block read. Moderate semantic
  // alignment: K-means sees part of the structure, SHP sees all of it.
  Workload w = make_workload(11, /*semantic_strength=*/0.4);

  const std::uint64_t base =
      simulate_cache(w.eval, BlockLayout::identity(w.cfg.num_vectors, 32),
                     baseline_policy(0, /*unlimited=*/true))
          .nvm_block_reads;

  CachePolicyConfig batched;
  batched.unlimited = true;
  batched.policy = PrefetchPolicy::kNone;

  const auto identity = BlockLayout::identity(w.cfg.num_vectors, 32);
  const std::uint64_t original =
      simulate_cache(w.eval, identity, batched).nvm_block_reads;

  const EmbeddingTable values = w.gen->make_embeddings();
  KMeansConfig kc;
  kc.k = 512;
  kc.max_iters = 10;
  const auto km = kmeans(values, kc);
  const auto km_layout = BlockLayout::from_order(
      cluster_major_order(km.assignment, km.k), 32);
  const std::uint64_t kmeans_reads =
      simulate_cache(w.eval, km_layout, batched).nvm_block_reads;

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(w.train, w.cfg.num_vectors, sc);
  const auto shp_layout = BlockLayout::from_order(shp.order, 32);
  const std::uint64_t shp_reads =
      simulate_cache(w.eval, shp_layout, batched).nvm_block_reads;

  const double ebw_original = effective_bw_increase(base, original);
  const double ebw_kmeans = effective_bw_increase(base, kmeans_reads);
  const double ebw_shp = effective_bw_increase(base, shp_reads);

  EXPECT_GT(ebw_kmeans, ebw_original + 0.05);
  EXPECT_GT(ebw_shp, ebw_kmeans + 0.03);
  EXPECT_GT(ebw_shp, 0.2);  // a structured table gains substantially
}

TEST(Integration, PrefetchAllHurtsWithLimitedCache) {
  // Fig. 10: with a small cache, caching all 32 co-located vectors evicts
  // hot entries and *reduces* effective bandwidth vs no prefetching at all,
  // especially for the unpartitioned table.
  Workload w = make_workload(12);
  const std::uint64_t capacity = w.cfg.num_vectors / 50;

  const auto identity = BlockLayout::identity(w.cfg.num_vectors, 32);
  CachePolicyConfig all;
  all.capacity_vectors = capacity;
  all.policy = PrefetchPolicy::kAll;

  const auto base =
      simulate_cache(w.eval, identity, baseline_policy(capacity))
          .nvm_block_reads;
  const auto original_all = simulate_cache(w.eval, identity, all).nvm_block_reads;
  EXPECT_LT(effective_bw_increase(base, original_all), -0.2);
}

TEST(Integration, ThresholdAdmissionBeatsPrefetchAllAtLimitedCache) {
  // §4.3.2: filtering prefetches by SHP-run access count recovers the
  // locality benefit without the cache pollution.
  Workload w = make_workload(13);
  const std::uint64_t capacity = w.cfg.num_vectors / 20;

  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto shp = run_shp(w.train, w.cfg.num_vectors, sc);
  const auto layout = BlockLayout::from_order(shp.order, 32);

  CachePolicyConfig none, all, thresh;
  none.capacity_vectors = all.capacity_vectors = thresh.capacity_vectors =
      capacity;
  none.policy = PrefetchPolicy::kNone;
  all.policy = PrefetchPolicy::kAll;
  thresh.policy = PrefetchPolicy::kThreshold;
  thresh.access_threshold = 5;

  const auto base = simulate_cache(w.eval, layout, none).nvm_block_reads;
  const auto all_reads = simulate_cache(w.eval, layout, all).nvm_block_reads;
  const auto thresh_reads =
      simulate_cache(w.eval, layout, thresh, shp.access_counts).nvm_block_reads;

  EXPECT_LT(thresh_reads, all_reads);
  EXPECT_LT(thresh_reads, base);  // positive effective bandwidth increase
}

TEST(Integration, ShpTrainedOnMoreDataIsBetter) {
  // Fig. 9 / Fig. 15: more training requests -> higher effective bandwidth.
  Workload w = make_workload(14);
  ShpConfig sc;
  sc.vectors_per_block = 32;
  const auto small = run_shp(w.train.head(500), w.cfg.num_vectors, sc);
  const auto large = run_shp(w.train, w.cfg.num_vectors, sc);
  const auto small_layout = BlockLayout::from_order(small.order, 32);
  const auto large_layout = BlockLayout::from_order(large.order, 32);
  const double f_small = compute_fanout(w.eval, small_layout).avg_fanout;
  const double f_large = compute_fanout(w.eval, large_layout).avg_fanout;
  EXPECT_LT(f_large, f_small);
}

TEST(Integration, SemanticAlignmentControlsKMeansBenefit) {
  // Tables whose co-access correlates with embedding space (paper tables
  // 1-2) benefit from K-means; tables without that correlation do not
  // (Fig. 6's spread across tables).
  Workload aligned = make_workload(15, /*semantic_strength=*/0.95);
  Workload misaligned = make_workload(16, /*semantic_strength=*/0.05);

  auto kmeans_gain = [](Workload& w) {
    CachePolicyConfig none, all;
    none.unlimited = all.unlimited = true;
    none.policy = PrefetchPolicy::kNone;
    all.policy = PrefetchPolicy::kAll;
    const auto identity = BlockLayout::identity(w.cfg.num_vectors, 32);
    const auto base = simulate_cache(w.eval, identity, none).nvm_block_reads;
    const EmbeddingTable values = w.gen->make_embeddings();
    KMeansConfig kc;
    kc.k = 256;
    kc.max_iters = 8;
    const auto km = kmeans(values, kc);
    const auto layout =
        BlockLayout::from_order(cluster_major_order(km.assignment, km.k), 32);
    return effective_bw_increase(
        base, simulate_cache(w.eval, layout, all).nvm_block_reads);
  };
  EXPECT_GT(kmeans_gain(aligned), kmeans_gain(misaligned) + 0.15);
}

TEST(Integration, BaselineReadsScaleWithCacheSize) {
  Workload w = make_workload(17);
  EXPECT_GT(baseline_reads(w, 200), baseline_reads(w, 2000));
  EXPECT_GT(baseline_reads(w, 2000), baseline_reads(w, 10000));
}

}  // namespace
}  // namespace bandana
