#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <future>

#include "core/store.h"
#include "core/store_builder.h"
#include "trace/trace_generator.h"

namespace bandana {
namespace {

TableWorkloadConfig table_config(std::uint32_t vectors = 2048) {
  TableWorkloadConfig cfg;
  cfg.num_vectors = vectors;
  cfg.dim = 32;  // 128 B vectors
  cfg.mean_lookups_per_query = 10;
  cfg.num_profiles = 64;
  return cfg;
}

StoreConfig store_config(bool timing = false) {
  StoreConfig cfg;
  cfg.simulate_timing = timing;
  return cfg;
}

TablePlan simple_plan(std::uint32_t vectors, std::uint64_t cache_vectors,
                      std::uint64_t layout_seed) {
  TablePolicy policy;
  policy.cache_vectors = cache_vectors;
  policy.policy = PrefetchPolicy::kNone;
  return TablePlan{layout_seed == 0
                       ? BlockLayout::identity(vectors, 32)
                       : BlockLayout::random(vectors, 32, layout_seed),
                   /*access_counts=*/{}, policy, /*shp_train_fanout=*/0.0};
}

bool bytes_match(const EmbeddingTable& values, VectorId v,
                 std::span<const std::byte> got) {
  const auto want = values.vector_bytes_view(v);
  return std::memcmp(got.data(), want.data(), want.size()) == 0;
}

/// Two tables over distinct value sets, memory-backed by default.
Store two_table_store(const std::vector<EmbeddingTable>& values,
                      BlockStorageFactory factory = nullptr,
                      bool timing = false) {
  StoreBuilder builder(store_config(timing));
  if (factory) builder.storage(std::move(factory));
  builder.add_table(values[0], simple_plan(2048, 256, 0));
  builder.add_table(values[1], simple_plan(2048, 256, 7));
  return builder.build();
}

std::vector<EmbeddingTable> two_value_sets() {
  std::vector<EmbeddingTable> values;
  values.push_back(TraceGenerator(table_config(), 1).make_embeddings());
  values.push_back(TraceGenerator(table_config(), 2).make_embeddings());
  return values;
}

TEST(MultiGet, ServesCorrectBytesAcrossTables) {
  const auto values = two_value_sets();
  Store store = two_table_store(values);
  TraceGenerator gen(table_config(), 3);
  const Trace trace = gen.generate(200);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    const MultiGetResult res = store.multi_get(req);
    ASSERT_EQ(res.vectors.size(), 2u);
    ASSERT_EQ(res.per_table.size(), 2u);
    const auto ids = trace.query(q);
    for (int t = 0; t < 2; ++t) {
      ASSERT_EQ(res.vectors[t].size(), ids.size() * 128);
      EXPECT_EQ(res.per_table[t].hits + res.per_table[t].misses, ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        ASSERT_TRUE(bytes_match(values[t], ids[i],
                                {res.vectors[t].data() + i * 128, 128}))
            << "table " << t << " vector " << ids[i];
      }
    }
    EXPECT_EQ(res.block_reads,
              res.per_table[0].block_reads + res.per_table[1].block_reads);
  }
}

TEST(MultiGet, MemoryAndFileBackendsAreByteIdentical) {
  const auto values = two_value_sets();
  const std::string path = ::testing::TempDir() + "/bandana_multiget.bin";
  Store mem = two_table_store(values);
  Store file = two_table_store(values, file_storage_factory(path));

  TraceGenerator gen(table_config(), 4);
  const Trace trace = gen.generate(100);
  std::uint64_t mem_reads = 0, file_reads = 0;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    const MultiGetResult a = mem.multi_get(req);
    const MultiGetResult b = file.multi_get(req);
    ASSERT_EQ(a.vectors, b.vectors) << "request " << q;
    mem_reads += a.block_reads;
    file_reads += b.block_reads;
  }
  // Same plan + same request stream: the backends must behave identically,
  // not just return the same bytes.
  EXPECT_EQ(mem_reads, file_reads);
  std::remove(path.c_str());
}

TEST(MultiGet, DedupsBlockReadsAcrossRequestVsLookupBatchSequence) {
  const auto values = two_value_sets();
  // cache_vectors=1 so the second id list cannot be served from DRAM: only
  // the request-wide read dedup can avoid the second block read.
  auto tiny = [&] {
    StoreBuilder builder(store_config());
    builder.add_table(values[0], simple_plan(2048, 1, 0));
    builder.add_table(values[1], simple_plan(2048, 1, 0));
    return builder.build();
  };
  Store via_multi_get = tiny();
  Store via_batches = tiny();

  // Both id lists of table 0 live in block 0 (identity layout, 32 per
  // block); the same table appears twice in one request.
  const std::vector<VectorId> first = {0, 1};
  const std::vector<VectorId> second = {2, 3};
  MultiGetRequest req;
  req.add(0, first).add(0, second);
  const MultiGetResult res = via_multi_get.multi_get(req);

  std::vector<std::byte> out(128 * 2);
  via_batches.lookup_batch(0, first, out);
  via_batches.lookup_batch(0, second, out);

  const auto reads_multi = via_multi_get.table_metrics(0).nvm_block_reads;
  const auto reads_batch = via_batches.table_metrics(0).nvm_block_reads;
  EXPECT_EQ(res.block_reads, reads_multi);
  EXPECT_LE(reads_multi, reads_batch);
  EXPECT_EQ(reads_multi, 1u);   // one block serves all four ids
  EXPECT_EQ(reads_batch, 2u);   // per-batch epochs cannot see each other
}

TEST(MultiGet, NeverReadsMoreBlocksThanLookupBatchSequence) {
  const auto values = two_value_sets();
  Store via_multi_get = two_table_store(values);
  Store via_batches = two_table_store(values);

  TraceGenerator gen(table_config(), 5);
  const Trace trace = gen.generate(300);
  std::vector<std::byte> out(128 * 512);
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    const auto ids = trace.query(q);
    MultiGetRequest req;
    req.add(0, ids).add(1, ids);
    via_multi_get.multi_get(req);
    via_batches.lookup_batch(0, ids, out);
    via_batches.lookup_batch(1, ids, out);
  }
  EXPECT_LE(via_multi_get.total_metrics().nvm_block_reads,
            via_batches.total_metrics().nvm_block_reads);
  EXPECT_EQ(via_multi_get.total_metrics().lookups,
            via_batches.total_metrics().lookups);
}

TEST(MultiGet, RecordsServiceLatencyWhenTimingIsOn) {
  const auto values = two_value_sets();
  Store store = two_table_store(values, nullptr, /*timing=*/true);
  MultiGetRequest req;
  req.add(0, std::vector<VectorId>{0, 100, 500});
  req.add(1, std::vector<VectorId>{0, 100, 500});
  const MultiGetResult res = store.multi_get(req);
  EXPECT_GT(res.service_latency_us, 0.0);  // cold store: all misses
  EXPECT_EQ(store.request_latency_us().count(), 1u);
  EXPECT_DOUBLE_EQ(store.request_latency_us().max(), res.service_latency_us);
}

TEST(MultiGet, AsyncStreamMatchesSyncBytes) {
  const auto values = two_value_sets();
  Store sync_store = two_table_store(values);
  Store async_store = two_table_store(values);
  ThreadPool pool(2);

  TraceGenerator gen(table_config(), 6);
  const Trace trace = gen.generate(100);
  std::vector<std::future<MultiGetResult>> futures;
  std::vector<MultiGetResult> sync_results;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q)).add(1, trace.query(q));
    sync_results.push_back(sync_store.multi_get(req));
    futures.push_back(async_store.multi_get_async(std::move(req), pool));
  }
  std::uint64_t async_lookups = 0;
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const MultiGetResult res = futures[q].get();
    // Scheduling order may change hit/miss counts, never the bytes.
    EXPECT_EQ(res.vectors, sync_results[q].vectors) << "request " << q;
    async_lookups += res.lookups();
  }
  EXPECT_EQ(async_lookups, async_store.total_metrics().lookups);
  EXPECT_EQ(async_lookups, sync_store.total_metrics().lookups);
}

TEST(MultiGet, ValidatesBeforeServing) {
  const auto values = two_value_sets();
  Store store = two_table_store(values);
  MultiGetRequest bad_table;
  bad_table.add(0, std::vector<VectorId>{0, 1}).add(9, std::vector<VectorId>{0});
  EXPECT_THROW(store.multi_get(bad_table), std::out_of_range);
  MultiGetRequest bad_vector;
  bad_vector.add(0, std::vector<VectorId>{0}).add(1, std::vector<VectorId>{99'999});
  EXPECT_THROW(store.multi_get(bad_vector), std::out_of_range);
  // The bad entries were rejected up front: nothing was served or counted.
  EXPECT_EQ(store.total_metrics().lookups, 0u);
}

TEST(MultiGet, AsyncPropagatesValidationErrors) {
  const auto values = two_value_sets();
  Store store = two_table_store(values);
  ThreadPool pool(1);
  MultiGetRequest bad;
  bad.add(42, std::vector<VectorId>{0});
  auto future = store.multi_get_async(std::move(bad), pool);
  EXPECT_THROW(future.get(), std::out_of_range);
}

TEST(MultiGet, ConcurrentRequestsToOneShardedTableServeCorrectBytes) {
  // The TSan target for intra-table sharding: many threads hammer a single
  // table whose cache is split across shards, so lookups to different
  // shards genuinely interleave (with the seed's per-table lock this was
  // fully serialized).
  TraceGenerator gen(table_config(8192), 7);
  const EmbeddingTable values = gen.make_embeddings();
  StoreConfig cfg = store_config(/*timing=*/true);
  cfg.cache_shards = 8;
  StoreBuilder builder(cfg);
  builder.add_table(values, simple_plan(8192, 1024, 3));
  Store store = builder.build();
  ASSERT_GT(store.table(0).num_shards(), 1u);

  ThreadPool pool(4);
  const Trace trace = gen.generate(400);
  std::vector<std::future<MultiGetResult>> futures;
  std::uint64_t total_ids = 0;
  for (std::size_t q = 0; q < trace.num_queries(); ++q) {
    MultiGetRequest req;
    req.add(0, trace.query(q));
    total_ids += trace.query(q).size();
    futures.push_back(store.multi_get_async(std::move(req), pool));
  }
  std::uint64_t served = 0;
  for (std::size_t q = 0; q < futures.size(); ++q) {
    const MultiGetResult res = futures[q].get();
    const auto ids = trace.query(q);
    ASSERT_EQ(res.vectors[0].size(), ids.size() * 128);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      ASSERT_TRUE(bytes_match(values, ids[i],
                              {res.vectors[0].data() + i * 128, 128}))
          << "request " << q << " vector " << ids[i];
    }
    served += res.lookups();
  }
  EXPECT_EQ(served, total_ids);
  EXPECT_EQ(store.total_metrics().lookups, total_ids);
  // Metrics snapshots stayed lock-free and consistent under concurrency.
  const auto m = store.table_metrics(0);
  EXPECT_EQ(m.hits + (m.miss_bytes / 128), m.lookups);
}

TEST(MultiGet, EmptyRequestIsANoop) {
  const auto values = two_value_sets();
  Store store = two_table_store(values);
  const MultiGetResult res = store.multi_get(MultiGetRequest{});
  EXPECT_TRUE(res.vectors.empty());
  EXPECT_EQ(res.block_reads, 0u);
  EXPECT_EQ(store.total_metrics().lookups, 0u);
}

}  // namespace
}  // namespace bandana
