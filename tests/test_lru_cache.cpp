#include "cache/lru_cache.h"

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "common/rng.h"

namespace bandana {
namespace {

TEST(InsertionLru, BasicLruEviction) {
  InsertionLru c(100, 3);
  EXPECT_EQ(c.insert(1), kInvalidVector);
  EXPECT_EQ(c.insert(2), kInvalidVector);
  EXPECT_EQ(c.insert(3), kInvalidVector);
  EXPECT_EQ(c.size(), 3u);
  // 1 is now LRU.
  EXPECT_EQ(c.insert(4), 1u);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(4));
}

TEST(InsertionLru, AccessPromotes) {
  InsertionLru c(100, 3);
  c.insert(1);
  c.insert(2);
  c.insert(3);
  EXPECT_TRUE(c.access(1));  // 2 becomes LRU
  EXPECT_EQ(c.insert(4), 2u);
  EXPECT_TRUE(c.contains(1));
}

TEST(InsertionLru, AccessMissingReturnsFalse) {
  InsertionLru c(10, 2);
  EXPECT_FALSE(c.access(5));
}

TEST(InsertionLru, ContentsMruToLru) {
  InsertionLru c(100, 4);
  c.insert(1);
  c.insert(2);
  c.insert(3);
  c.access(1);
  EXPECT_EQ(c.contents(), (std::vector<VectorId>{1, 3, 2}));
}

TEST(InsertionLru, Erase) {
  InsertionLru c(10, 3);
  c.insert(1);
  c.insert(2);
  EXPECT_TRUE(c.erase(1));
  EXPECT_FALSE(c.erase(1));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_FALSE(c.contains(1));
  // Freed capacity is reusable.
  c.insert(3);
  c.insert(4);
  EXPECT_EQ(c.size(), 3u);
}

TEST(InsertionLru, MidQueueInsertionEvictedBeforeTop) {
  // Capacity 10, insertion point at 0.5: prefetched entries enter at depth
  // 5 and must be evicted before the 5 MRU entries inserted at the top.
  InsertionLru c(100, 10, {0.0, 0.5});
  for (VectorId v = 0; v < 5; ++v) c.insert(v, 0);
  c.insert(50, 1);
  c.insert(51, 1);
  // Fill up: 3 more at top.
  for (VectorId v = 5; v < 8; ++v) c.insert(v, 0);
  EXPECT_EQ(c.size(), 10u);
  // Next insert evicts the mid-queue entries first (50/51 sank to bottom).
  const VectorId e1 = c.insert(90, 0);
  EXPECT_TRUE(e1 == 50 || e1 == 51) << e1;
}

TEST(InsertionLru, MidQueueEntryPromotedOnAccess) {
  InsertionLru c(100, 10, {0.0, 0.5});
  for (VectorId v = 0; v < 10; ++v) c.insert(v, 0);
  c.insert(42, 1);  // evicts someone, enters mid-queue
  EXPECT_TRUE(c.access(42));
  EXPECT_EQ(c.contents().front(), 42u);
}

TEST(InsertionLru, InsertionPositionDepthIsRespected) {
  // Fill a capacity-8 cache via the top; then an insert at 0.5 must land at
  // depth 4 (i.e. 4 entries are younger).
  InsertionLru c(100, 8, {0.0, 0.5});
  for (VectorId v = 0; v < 8; ++v) c.insert(v, 0);
  c.insert(42, 1);
  const auto contents = c.contents();
  ASSERT_EQ(contents.size(), 8u);
  // MRU order: 7 6 5 4 then 42 at depth 4.
  EXPECT_EQ(contents[4], 42u);
}

TEST(InsertionLru, InvalidConfigsThrow) {
  EXPECT_THROW(InsertionLru(10, 0), std::invalid_argument);
  EXPECT_THROW(InsertionLru(10, 5, {0.5}), std::invalid_argument);
  EXPECT_THROW(InsertionLru(10, 5, {0.0, 0.5, 0.4}), std::invalid_argument);
  EXPECT_THROW(InsertionLru(10, 5, {0.0, 1.0}), std::invalid_argument);
}

TEST(InsertionLru, CapacityOneWorks) {
  InsertionLru c(10, 1);
  c.insert(1);
  EXPECT_EQ(c.insert(2), 1u);
  EXPECT_TRUE(c.contains(2));
  EXPECT_EQ(c.size(), 1u);
}

/// Reference model: std::list as a single LRU queue with positional insert.
struct RefLru {
  std::list<VectorId> q;  // front = MRU
  std::uint64_t cap;
  std::vector<double> points;

  explicit RefLru(std::uint64_t c, std::vector<double> p)
      : cap(c), points(std::move(p)) {}

  bool access(VectorId v) {
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == v) {
        q.erase(it);
        q.push_front(v);
        return true;
      }
    }
    return false;
  }
  VectorId insert(VectorId v, std::size_t point) {
    VectorId evicted = kInvalidVector;
    if (q.size() == cap) {
      evicted = q.back();
      q.pop_back();
    }
    // Depth = min(#entries younger than the insertion boundary, size).
    std::size_t depth = static_cast<std::size_t>(
        std::floor(points[point] * static_cast<double>(cap)));
    depth = std::min(depth, q.size());
    auto it = q.begin();
    std::advance(it, depth);
    q.insert(it, v);
    return evicted;
  }
};

TEST(InsertionLru, MatchesReferenceModelPlainLru) {
  // With a single insertion point the segmented structure must behave
  // exactly like a textbook LRU.
  InsertionLru c(50, 8);
  RefLru ref(8, {0.0});
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const VectorId v = static_cast<VectorId>(rng.next_below(50));
    const bool hit = c.access(v);
    const bool ref_hit = ref.access(v);
    ASSERT_EQ(hit, ref_hit) << "step " << i;
    if (!hit) {
      ASSERT_EQ(c.insert(v), ref.insert(v, 0)) << "step " << i;
    }
    ASSERT_EQ(c.size(), ref.q.size());
  }
}

TEST(InsertionLru, SizeNeverExceedsCapacity) {
  InsertionLru c(1000, 37, {0.0, 0.3, 0.7});
  Rng rng(19);
  for (int i = 0; i < 30000; ++i) {
    const VectorId v = static_cast<VectorId>(rng.next_below(1000));
    if (!c.access(v)) {
      c.insert(v, rng.next_below(3));
    }
    ASSERT_LE(c.size(), 37u);
  }
  EXPECT_EQ(c.size(), 37u);  // warm by now
}

TEST(InsertionLru, ContentsMatchesContains) {
  InsertionLru c(200, 20, {0.0, 0.5});
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const VectorId v = static_cast<VectorId>(rng.next_below(200));
    if (!c.access(v)) c.insert(v, rng.next_below(2));
  }
  const auto contents = c.contents();
  EXPECT_EQ(contents.size(), c.size());
  for (VectorId v : contents) EXPECT_TRUE(c.contains(v));
}

}  // namespace
}  // namespace bandana
